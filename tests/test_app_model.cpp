/** Tests of the BenchmarkSpec/TraceOp application model. */

#include <gtest/gtest.h>

#include <string>

#include "sim/logging.hh"
#include "sim/types.hh"
#include "trace/app_model.hh"

using namespace gpump;
using namespace gpump::trace;

namespace {

KernelProfile
makeKernel(const std::string &name, int launches)
{
    KernelProfile k;
    k.benchmark = "bench";
    k.kernel = name;
    k.launches = launches;
    k.numThreadBlocks = 8;
    k.timePerTbUs = 25.0;
    k.regsPerTb = 4096;
    k.sharedMemPerTb = 8192;
    k.threadsPerTb = 256;
    return k;
}

TraceOp
launchOp(int index)
{
    TraceOp op;
    op.kind = TraceOp::Kind::KernelLaunch;
    op.kernelIndex = index;
    return op;
}

TraceOp
copyOp(TraceOp::Kind kind, std::int64_t bytes, bool sync)
{
    TraceOp op;
    op.kind = kind;
    op.bytes = bytes;
    op.synchronous = sync;
    return op;
}

TraceOp
cpuOp(sim::SimTime duration)
{
    TraceOp op;
    op.kind = TraceOp::Kind::CpuPhase;
    op.duration = duration;
    return op;
}

} // namespace

TEST(AppModel, DurationClassNames)
{
    EXPECT_STREQ(durationClassName(DurationClass::Short), "SHORT");
    EXPECT_STREQ(durationClassName(DurationClass::Medium), "MEDIUM");
    EXPECT_STREQ(durationClassName(DurationClass::Long), "LONG");
}

TEST(AppModel, AggregatesCountSyncAndAsyncCopies)
{
    BenchmarkSpec spec;
    spec.ops.push_back(copyOp(TraceOp::Kind::MemcpyH2D, 100, true));
    spec.ops.push_back(copyOp(TraceOp::Kind::MemcpyH2D, 50, false));
    spec.ops.push_back(copyOp(TraceOp::Kind::MemcpyD2H, 30, true));
    spec.ops.push_back(copyOp(TraceOp::Kind::MemcpyD2H, 7, false));

    EXPECT_EQ(spec.bytesH2D(), 150);
    EXPECT_EQ(spec.bytesD2H(), 37);
}

TEST(AppModel, CpuTimeSumsAllPhases)
{
    BenchmarkSpec spec;
    spec.ops.push_back(cpuOp(sim::microseconds(100)));
    spec.ops.push_back(copyOp(TraceOp::Kind::MemcpyH2D, 10, true));
    spec.ops.push_back(cpuOp(sim::microseconds(250)));
    EXPECT_EQ(spec.cpuTime(), sim::microseconds(350));
}

TEST(AppModel, TotalLaunchesCountsOnlyLaunchOps)
{
    BenchmarkSpec spec;
    spec.kernels.push_back(makeKernel("k0", 2));
    spec.ops.push_back(launchOp(0));
    spec.ops.push_back(copyOp(TraceOp::Kind::MemcpyD2H, 10, true));
    spec.ops.push_back(launchOp(0));
    EXPECT_EQ(spec.totalLaunches(), 2);
}

TEST(AppModel, ValidateAcceptsConsistentSpec)
{
    BenchmarkSpec spec;
    spec.name = "bench";
    spec.kernels.push_back(makeKernel("k0", 2));
    spec.kernels.push_back(makeKernel("k1", 1));
    spec.ops.push_back(launchOp(0));
    spec.ops.push_back(launchOp(1));
    spec.ops.push_back(launchOp(0));
    EXPECT_NO_THROW(spec.validate());
}

TEST(AppModel, ValidateRejectsOutOfRangeKernelIndex)
{
    BenchmarkSpec spec;
    spec.name = "bench";
    spec.kernels.push_back(makeKernel("k0", 1));
    spec.ops.push_back(launchOp(3));
    EXPECT_THROW(spec.validate(), sim::FatalError);
}

TEST(AppModel, ValidateRejectsNegativeQuantities)
{
    {
        BenchmarkSpec spec;
        spec.name = "bench";
        spec.ops.push_back(cpuOp(-1));
        EXPECT_THROW(spec.validate(), sim::FatalError);
    }
    {
        BenchmarkSpec spec;
        spec.name = "bench";
        spec.ops.push_back(copyOp(TraceOp::Kind::MemcpyH2D, -8, true));
        EXPECT_THROW(spec.validate(), sim::FatalError);
    }
}

TEST(AppModel, ValidateRejectsLaunchCountMismatch)
{
    BenchmarkSpec spec;
    spec.name = "bench";
    spec.kernels.push_back(makeKernel("k0", 3));
    spec.ops.push_back(launchOp(0));
    EXPECT_THROW(spec.validate(), sim::FatalError);
}

TEST(AppModel, ContextBytesCombineRegistersAndSharedMemory)
{
    KernelProfile k = makeKernel("k0", 1);
    EXPECT_EQ(k.contextBytesPerTb(),
              bytesPerRegister * k.regsPerTb + k.sharedMemPerTb);
    EXPECT_EQ(k.tbDuration(), sim::microseconds(k.timePerTbUs));
    EXPECT_EQ(k.fullName(), "bench.k0");
}
