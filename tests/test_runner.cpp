/**
 * Tests of the declarative Suite/Runner batch API: grid expansion,
 * request-order preservation, serial-vs-parallel bit-identity, the
 * thread-safe isolated-baseline cache and a pinned golden aggregate
 * (so future perf work cannot silently change results).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <thread>
#include <vector>

#include <set>
#include <string>

#include "core/policy.hh"
#include "core/preemption.hh"
#include "harness/suite.hh"
#include "sim/logging.hh"

using namespace gpump;
using namespace gpump::harness;

namespace {

/** The small grid shared by the determinism tests. */
Batch
smallGrid()
{
    Suite suite("grid");
    suite.sizes({2})
        .uniform(/*count=*/3, /*base_seed=*/20140614)
        .minReplays(1)
        .scheme("FCFS", {"fcfs", "context_switch", "fcfs"})
        .scheme("DSS-CS", {"dss", "context_switch", "fcfs"});
    return suite.build();
}

} // namespace

TEST(Suite, BuildsOrderedGridWithTags)
{
    Suite suite("s");
    suite.sizes({2, 4})
        .uniform(2, 7)
        .minReplays(5)
        .scheme("A", {"fcfs", "context_switch", "fcfs"})
        .scheme("B", {"dss", "draining", "fcfs"});
    Batch batch = suite.build();

    // 2 sizes x 2 plans x 2 schemes, size-major then plan then scheme.
    ASSERT_EQ(batch.requests.size(), 8u);
    ASSERT_EQ(batch.sizes.size(), 2u);
    EXPECT_EQ(batch.numPlans(0), 2u);
    for (std::size_t i = 0; i < batch.requests.size(); ++i)
        EXPECT_EQ(batch.requests[i].index, i);
    EXPECT_EQ(batch.requests[0].tag, "s/size=2/plan=0/A");
    EXPECT_EQ(batch.requests[1].tag, "s/size=2/plan=0/B");
    EXPECT_EQ(batch.requests[4].tag, "s/size=4/plan=0/A");
    EXPECT_EQ(batch.indexOf(1, 1, 1), 7u);
    EXPECT_EQ(batch.requests[batch.indexOf(1, 1, 1)].tag,
              "s/size=4/plan=1/B");
    EXPECT_EQ(batch.requests[2].minReplays, 5);

    // Plans of a size bucket are shared across schemes.
    EXPECT_EQ(batch.requests[0].plan.benchmarks,
              batch.requests[1].plan.benchmarks);
    EXPECT_EQ(batch.requests[0].plan.seed, batch.requests[1].plan.seed);
}

TEST(Suite, NonprioritizedSchemeDropsPriorities)
{
    Suite suite("s");
    suite.sizes({2})
        .prioritized(/*per_bench=*/1, /*base_seed=*/1)
        .schemeNonprioritized("BASE", {"fcfs", "context_switch", "fcfs"})
        .scheme("NPQ", {"npq", "context_switch", "priority"});
    Batch batch = suite.build();

    const RunRequest &base = batch.requests[batch.indexOf(0, 0, 0)];
    const RunRequest &npq = batch.requests[batch.indexOf(0, 0, 1)];
    EXPECT_EQ(base.plan.highPriorityIndex, -1);
    EXPECT_TRUE(base.plan.priorities().empty());
    EXPECT_EQ(npq.plan.highPriorityIndex, 0);
    // Same workload otherwise.
    EXPECT_EQ(base.plan.benchmarks, npq.plan.benchmarks);
    EXPECT_EQ(base.plan.seed, npq.plan.seed);
}

TEST(Suite, BuildWithoutPlansOrSchemesPanics)
{
    Suite no_plans("s");
    no_plans.scheme("A", Scheme());
    EXPECT_THROW(no_plans.build(), sim::PanicError);

    Suite no_schemes("s");
    no_schemes.uniform(1, 1);
    EXPECT_THROW(no_schemes.build(), sim::PanicError);
}

TEST(IsolatedBaselineCache, ConcurrentFirstAccessComputesOnce)
{
    IsolatedBaselineCache cache;
    sim::Config cfg;
    constexpr int kThreads = 4;
    std::vector<double> values(kThreads, 0.0);

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, &cfg, &values, t] {
            values[static_cast<std::size_t>(t)] =
                cache.timeUs("sgemm", cfg, 1);
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_GT(values[0], 0.0);
    for (int t = 1; t < kThreads; ++t)
        EXPECT_DOUBLE_EQ(values[0], values[static_cast<std::size_t>(t)]);
    // All four first accesses shared one computation.
    EXPECT_EQ(cache.computations(), 1u);

    // A different config is a different cache entry.
    sim::Config small;
    small.set("gpu.num_sms", static_cast<std::int64_t>(2));
    EXPECT_NE(cache.timeUs("sgemm", small, 1), values[0]);
    EXPECT_EQ(cache.computations(), 2u);
}

TEST(Runner, ParallelBatchBitIdenticalToSerialAndOrdered)
{
    Batch batch = smallGrid();

    Runner serial(sim::Config(), /*jobs=*/1);
    auto expected = serial.run(batch.requests);

    Runner parallel(sim::Config(), /*jobs=*/4);
    std::mutex mu;
    std::vector<std::size_t> done_values;
    parallel.setProgress([&](std::size_t done, std::size_t total,
                             const RunRequest &, const RunResult &res) {
        std::lock_guard<std::mutex> lock(mu);
        EXPECT_EQ(total, batch.requests.size());
        // Throughput telemetry rides along with every finished run.
        EXPECT_GT(res.sys.eventsExecuted, 0u);
        EXPECT_GE(res.wallSeconds, 0.0);
        done_values.push_back(done);
    });
    auto actual = parallel.run(batch.requests);

    // Request order is preserved regardless of completion order.
    ASSERT_EQ(actual.size(), batch.requests.size());
    for (std::size_t i = 0; i < actual.size(); ++i) {
        EXPECT_EQ(actual[i].index, i);
        EXPECT_EQ(actual[i].tag, batch.requests[i].tag);
    }

    // Bit-identical results for any job count.
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        const auto &e = expected[i];
        const auto &a = actual[i];
        EXPECT_EQ(e.metrics.antt, a.metrics.antt);
        EXPECT_EQ(e.metrics.stp, a.metrics.stp);
        EXPECT_EQ(e.metrics.fairness, a.metrics.fairness);
        EXPECT_EQ(e.metrics.ntt, a.metrics.ntt);
        EXPECT_EQ(e.isolatedUs, a.isolatedUs);
        EXPECT_EQ(e.sys.meanTurnaroundUs, a.sys.meanTurnaroundUs);
        EXPECT_EQ(e.sys.endTime, a.sys.endTime);
        EXPECT_EQ(e.sys.preemptions, a.sys.preemptions);
        EXPECT_EQ(e.sys.kernelsCompleted, a.sys.kernelsCompleted);
        EXPECT_EQ(e.sys.eventsExecuted, a.sys.eventsExecuted);
    }

    // The atomic progress counter hit every value 1..N exactly once.
    std::sort(done_values.begin(), done_values.end());
    ASSERT_EQ(done_values.size(), batch.requests.size());
    for (std::size_t i = 0; i < done_values.size(); ++i)
        EXPECT_EQ(done_values[i], i + 1);
}

TEST(Runner, PerSchemeOverridesReachTheSimulation)
{
    workload::WorkloadPlan plan;
    plan.benchmarks = {"sgemm"};
    plan.seed = 7;

    sim::Config small;
    small.set("gpu.num_sms", static_cast<std::int64_t>(2));

    Suite suite("cfg");
    suite.fixedPlans({plan})
        .minReplays(1)
        .scheme("full", {"fcfs", "context_switch", "fcfs"})
        .scheme("small", {"fcfs", "context_switch", "fcfs"}, small);
    Batch batch = suite.build();

    Runner runner;
    auto results = runner.run(batch.requests);
    // Shrinking the GPU must slow the run down; and each scheme's
    // isolated baseline is computed under its own effective config.
    EXPECT_GT(results[1].sys.meanTurnaroundUs[0],
              results[0].sys.meanTurnaroundUs[0]);
    EXPECT_GT(results[1].isolatedUs[0], results[0].isolatedUs[0]);
    EXPECT_EQ(runner.baselines().computations(), 2u);
}

TEST(Runner, FailingRequestAbortsAndRethrows)
{
    workload::WorkloadPlan plan;
    plan.benchmarks = {"sgemm"};

    RunRequest req;
    req.plan = plan;
    req.minReplays = 1;
    req.limit = 10; // far too short a horizon: the run cannot finish
    Runner runner;
    EXPECT_THROW(runner.run({req}), sim::FatalError);
}

TEST(Runner, GoldenFig5QuickAggregatePinned)
{
    // The AVERAGE-group, 2-process cell of `fig5_ppq_ntt --quick`:
    // mean NTT improvement of PPQ/context-switch over the
    // nonprioritized FCFS baseline across the ten prioritized plans.
    // The simulator is deterministic by construction (portable RNG,
    // per-run seeds), so this value is pinned exactly; a change means
    // the simulation's behavior changed, not just its performance.
    sim::Config cfg;
    cfg.set("gpu.tb_time_cv", 0.25); // figureConfig default

    Suite suite("fig5");
    suite.sizes({2})
        .prioritized(/*per_bench=*/1, /*base_seed=*/20140614)
        .minReplays(2) // --quick
        .schemeNonprioritized("BASE", {"fcfs", "context_switch", "fcfs"})
        .scheme("PPQ-CS", {"ppq_excl", "context_switch", "priority"});
    Batch batch = suite.build();

    Runner runner(cfg, /*jobs=*/2);
    auto results = runner.run(batch.requests);

    double sum = 0;
    for (std::size_t pi = 0; pi < batch.numPlans(0); ++pi) {
        double base = results[batch.indexOf(0, pi, 0)].metrics.ntt[0];
        double ppq = results[batch.indexOf(0, pi, 1)].metrics.ntt[0];
        sum += base / ppq;
    }
    double avg = sum / static_cast<double>(batch.numPlans(0));

    constexpr double kGolden = 1.4130172243592014;
    EXPECT_NEAR(avg, kGolden, 1e-9) << "pinned fig5 aggregate moved";
}

TEST(Runner, IntraRunShardingBitIdenticalForAnyShardCount)
{
    // One multiprogrammed plan whose isolated-baseline replays are
    // computed serially (shards = 1) vs. on 2 and 4 shard workers
    // concurrently with the run: every RunResult stream must be
    // identical (wall-clock telemetry excluded by contract).
    workload::WorkloadPlan plan;
    plan.benchmarks = {"sgemm", "histo", "spmv", "mri-q"};
    plan.seed = 20140614;

    RunRequest req;
    req.plan = plan;
    req.scheme = {"dss", "context_switch", "fcfs"};
    req.minReplays = 2;

    RunResult baseline;
    bool have_baseline = false;
    for (int shards : {1, 2, 4}) {
        Runner runner;
        runner.setRunShards(shards);
        EXPECT_EQ(runner.runShards(), shards);
        RunResult res = runner.runOne(req);
        // Each distinct benchmark's baseline computed exactly once,
        // regardless of how many workers raced for it.
        EXPECT_EQ(runner.baselines().computations(),
                  plan.benchmarks.size());
        if (!have_baseline) {
            baseline = res;
            have_baseline = true;
            continue;
        }
        EXPECT_EQ(baseline.metrics.antt, res.metrics.antt) << shards;
        EXPECT_EQ(baseline.metrics.stp, res.metrics.stp) << shards;
        EXPECT_EQ(baseline.metrics.ntt, res.metrics.ntt) << shards;
        EXPECT_EQ(baseline.metrics.fairness, res.metrics.fairness)
            << shards;
        EXPECT_EQ(baseline.isolatedUs, res.isolatedUs) << shards;
        EXPECT_EQ(baseline.sys.meanTurnaroundUs,
                  res.sys.meanTurnaroundUs)
            << shards;
        EXPECT_EQ(baseline.sys.endTime, res.sys.endTime) << shards;
        EXPECT_EQ(baseline.sys.eventsExecuted, res.sys.eventsExecuted)
            << shards;
        EXPECT_EQ(baseline.sys.preemptions, res.sys.preemptions)
            << shards;
        ASSERT_EQ(baseline.sys.runs.size(), res.sys.runs.size());
        for (std::size_t p = 0; p < baseline.sys.runs.size(); ++p) {
            ASSERT_EQ(baseline.sys.runs[p].size(),
                      res.sys.runs[p].size());
            for (std::size_t i = 0; i < baseline.sys.runs[p].size();
                 ++i) {
                EXPECT_EQ(baseline.sys.runs[p][i].start,
                          res.sys.runs[p][i].start);
                EXPECT_EQ(baseline.sys.runs[p][i].end,
                          res.sys.runs[p][i].end);
            }
        }
    }
}

TEST(Runner, ShardingComposesWithParallelBatches)
{
    // --jobs and --shards together: batch-level and intra-run
    // parallelism compose without perturbing results.
    Batch batch = smallGrid();

    Runner serial(sim::Config(), /*jobs=*/1);
    auto expected = serial.run(batch.requests);

    Runner sharded(sim::Config(), /*jobs=*/2);
    sharded.setRunShards(2);
    auto actual = sharded.run(batch.requests);

    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected[i].metrics.antt, actual[i].metrics.antt);
        EXPECT_EQ(expected[i].metrics.ntt, actual[i].metrics.ntt);
        EXPECT_EQ(expected[i].isolatedUs, actual[i].isolatedUs);
        EXPECT_EQ(expected[i].sys.eventsExecuted,
                  actual[i].sys.eventsExecuted);
    }
}

TEST(Suite, AllSchemesSpansTheRegistryCrossProduct)
{
    // No manual linkBuiltin* calls: allSchemes() itself must make the
    // built-in registrars visible.
    Suite suite("all");
    suite.sizes({2}).uniform(1, 1).allSchemes();
    Batch batch = suite.build();

    // Expected column count: preempting policies x mechanisms, plus
    // one column per non-preemptive policy.
    std::size_t expected = 0;
    for (const std::string &p : core::policyRegistry().list()) {
        expected += core::policyRegistry().at(p).usesMechanism
            ? core::mechanismRegistry().list().size()
            : 1;
    }
    EXPECT_EQ(batch.schemes.size(), expected);
    EXPECT_GE(batch.schemes.size(),
              6u + 2u * (core::mechanismRegistry().size() - 1));

    // Column names are the labels, and they are unique.
    std::set<std::string> names;
    for (const auto &spec : batch.schemes) {
        EXPECT_EQ(spec.name, spec.scheme.label());
        EXPECT_TRUE(names.insert(spec.name).second) << spec.name;
    }
}

TEST(Suite, BuildValidatesSchemeNamesAndCollisions)
{
    // Unknown policy: rejected at build time, before any simulation.
    Suite bad_policy("s");
    bad_policy.uniform(1, 1).scheme(
        "X", {"not_a_policy", "context_switch", "fcfs"});
    EXPECT_THROW(bad_policy.build(), sim::FatalError);

    Suite bad_mech("s");
    bad_mech.uniform(1, 1).scheme("X", {"fcfs", "not_a_mech", "fcfs"});
    EXPECT_THROW(bad_mech.build(), sim::FatalError);

    // Two columns with the same name are indistinguishable in
    // reports.
    Suite dup_name("s");
    dup_name.uniform(1, 1)
        .scheme("X", {"fcfs", "context_switch", "fcfs"})
        .scheme("X", {"dss", "context_switch", "fcfs"});
    EXPECT_THROW(dup_name.build(), sim::FatalError);

    // Two columns that are the same scheme end to end (label +
    // overrides + prioritization) are a bug even under distinct
    // names; alias spellings count as the same scheme.
    Suite dup_scheme("s");
    dup_scheme.uniform(1, 1)
        .scheme("A", {"dss", "context_switch", "fcfs"})
        .scheme("B", {"dss", "cs", "fcfs"});
    EXPECT_THROW(dup_scheme.build(), sim::FatalError);

    // ... but differing overrides make a legitimate ablation pair.
    sim::Config ablate;
    ablate.set("dss.retarget", false);
    Suite ablation("s");
    ablation.sizes({2}).uniform(1, 1)
        .scheme("A", {"dss", "context_switch", "fcfs"})
        .scheme("B", {"dss", "context_switch", "fcfs"}, ablate);
    EXPECT_NO_THROW(ablation.build());
}

TEST(Runner, GoldenFig7QuickAggregatePinned)
{
    // Second pinned figure aggregate (see GoldenFig5QuickAggregate):
    // the 2-process cell of `fig7_dss --quick`, mean ANTT improvement
    // of DSS/context-switch over FCFS across the three uniform plans.
    sim::Config cfg;
    cfg.set("gpu.tb_time_cv", 0.25); // figureConfig default

    Suite suite("fig7");
    suite.sizes({2})
        .uniform(/*count=*/3, /*base_seed=*/20140614)
        .minReplays(2) // --quick
        .scheme("FCFS", {"fcfs", "context_switch", "fcfs"})
        .scheme("DSS-CS", {"dss", "context_switch", "fcfs"});
    Batch batch = suite.build();

    Runner runner(cfg, /*jobs=*/2);
    auto results = runner.run(batch.requests);

    double sum = 0;
    for (std::size_t pi = 0; pi < batch.numPlans(0); ++pi) {
        double base = results[batch.indexOf(0, pi, 0)].metrics.antt;
        double dss = results[batch.indexOf(0, pi, 1)].metrics.antt;
        sum += base / dss;
    }
    double avg = sum / static_cast<double>(batch.numPlans(0));

    constexpr double kGolden = 1.0022550475518892;
    EXPECT_NEAR(avg, kGolden, 1e-9) << "pinned fig7 aggregate moved";
}

TEST(Runner, GoldenFig6QuickAggregatePinned)
{
    // Third pinned figure aggregate: the 2-process cell of
    // `fig6_ppq_stp --quick`, mean STP degradation of exclusive-mode
    // PPQ/context-switch over NPQ across the ten prioritized plans.
    // Together with the fig5 (NTT) and fig7 (ANTT) goldens this pins
    // each of the paper's headline aggregates exactly.
    sim::Config cfg;
    cfg.set("gpu.tb_time_cv", 0.25); // figureConfig default

    Suite suite("fig6");
    suite.sizes({2})
        .prioritized(/*per_bench=*/1, /*base_seed=*/20140614)
        .minReplays(2) // --quick
        .scheme("NPQ", {"npq", "context_switch", "priority"})
        .scheme("excl/CS", {"ppq_excl", "context_switch", "priority"});
    Batch batch = suite.build();

    Runner runner(cfg, /*jobs=*/2);
    auto results = runner.run(batch.requests);

    double sum = 0;
    for (std::size_t pi = 0; pi < batch.numPlans(0); ++pi) {
        double npq = results[batch.indexOf(0, pi, 0)].metrics.stp;
        double ppq = results[batch.indexOf(0, pi, 1)].metrics.stp;
        sum += npq / ppq;
    }
    double avg = sum / static_cast<double>(batch.numPlans(0));

    constexpr double kGolden = 1.0498411090168349;
    EXPECT_NEAR(avg, kGolden, 1e-9) << "pinned fig6 aggregate moved";
}
