/** Tests of the experiment harness, argument parsing and reporting. */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/args.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "sim/logging.hh"

using namespace gpump;
using namespace gpump::harness;

TEST(Args, SplitsFlagsAndConfig)
{
    const char *argv[] = {"prog", "--workloads=20", "--csv",
                          "gpu.num_sms=8", "dss.retarget=false"};
    Args args(5, const_cast<char **>(argv));
    EXPECT_EQ(args.flagInt("workloads", 5), 20);
    EXPECT_TRUE(args.hasFlag("csv"));
    EXPECT_EQ(args.flag("csv", ""), "true");
    EXPECT_FALSE(args.hasFlag("missing"));
    EXPECT_EQ(args.config().getInt("gpu.num_sms", 13), 8);
    EXPECT_FALSE(args.config().getBool("dss.retarget", true));
}

TEST(Args, MalformedTokenIsFatal)
{
    const char *argv[] = {"prog", "oops"};
    EXPECT_THROW(Args(2, const_cast<char **>(argv)), sim::FatalError);
}

TEST(Args, FlagTypeValidation)
{
    const char *argv[] = {"prog", "--n=abc"};
    Args args(2, const_cast<char **>(argv));
    EXPECT_THROW(args.flagInt("n", 0), sim::FatalError);
    EXPECT_THROW(args.flagDouble("n", 0), sim::FatalError);
    EXPECT_THROW(args.flagIntList("n", {}), sim::FatalError);
}

TEST(Args, FlagIntList)
{
    const char *argv[] = {"prog", "--sizes=2,4,8", "--one=6"};
    Args args(3, const_cast<char **>(argv));
    EXPECT_EQ(args.flagIntList("sizes", {}),
              (std::vector<int>{2, 4, 8}));
    EXPECT_EQ(args.flagIntList("one", {}), (std::vector<int>{6}));
    EXPECT_EQ(args.flagIntList("missing", {1, 2}),
              (std::vector<int>{1, 2}));
}

TEST(Report, TableAlignsAndCsvEscapesNothing)
{
    AsciiTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addSeparator();
    t.addRow({"beta-long-name", "2.50"});
    EXPECT_EQ(t.rows(), 3u);

    std::ostringstream os;
    t.print(os);
    std::string text = os.str();
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("beta-long-name"), std::string::npos);
    EXPECT_NE(text.find("----"), std::string::npos);

    std::ostringstream csv;
    t.printCsv(csv);
    EXPECT_EQ(csv.str(), "name,value\nalpha,1\nbeta-long-name,2.50\n");
}

TEST(Report, RowArityChecked)
{
    AsciiTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), sim::PanicError);
}

TEST(Report, Formatting)
{
    EXPECT_EQ(fmt(1.2345, 2), "1.23");
    EXPECT_EQ(fmt(1.0, 0), "1");
    EXPECT_EQ(fmtTimes(2.5), "2.50x");
}

TEST(Report, JsonObjectRendering)
{
    JsonObject o;
    o.add("name", "al\"pha\n")
        .add("x", 1.5)
        .add("n", static_cast<std::int64_t>(-3))
        .add("ok", true)
        .add("v", std::vector<double>{1.0, 2.5})
        .add("s", std::vector<std::string>{"a", "b"});
    EXPECT_EQ(o.str(),
              "{\"name\":\"al\\\"pha\\n\",\"x\":1.5,\"n\":-3,"
              "\"ok\":true,\"v\":[1,2.5],\"s\":[\"a\",\"b\"]}");
}

TEST(Report, TableJsonlKeyedByHeaders)
{
    AsciiTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addSeparator(); // separators are omitted from JSONL
    t.addRow({"beta", "2.50"});

    std::ostringstream os;
    t.printJsonl(os);
    EXPECT_EQ(os.str(),
              "{\"name\":\"alpha\",\"value\":\"1\"}\n"
              "{\"name\":\"beta\",\"value\":\"2.50\"}\n");
}

TEST(Experiment, IsolatedTimesCachedAndPositive)
{
    Experiment exp;
    exp.setMinReplays(1);
    double t1 = exp.isolatedTimeUs("sgemm");
    double t2 = exp.isolatedTimeUs("sgemm");
    EXPECT_GT(t1, 0.0);
    EXPECT_DOUBLE_EQ(t1, t2);
}

TEST(Experiment, SchemeLabels)
{
    Scheme s;
    s.policy = "fcfs";
    EXPECT_EQ(s.label(), "fcfs");
    s.policy = "dss";
    s.mechanism = "draining";
    EXPECT_EQ(s.label(), "dss/draining");
}

TEST(Experiment, SchemeLabelIncludesNonDefaultTransferPolicy)
{
    // Two schemes differing only in transfer policy must not collide.
    Scheme fcfs_xfer{"ppq_excl", "context_switch", "fcfs"};
    Scheme prio_xfer{"ppq_excl", "context_switch", "priority"};
    EXPECT_EQ(fcfs_xfer.label(), "ppq_excl/context_switch");
    EXPECT_EQ(prio_xfer.label(),
              "ppq_excl/context_switch/priority-xfer");
    EXPECT_NE(fcfs_xfer.label(), prio_xfer.label());

    Scheme npq{"npq", "context_switch", "priority"};
    EXPECT_EQ(npq.label(), "npq/priority-xfer");
}

TEST(Experiment, RunProducesConsistentMetrics)
{
    Experiment exp;
    exp.setMinReplays(2);

    workload::WorkloadPlan plan;
    plan.benchmarks = {"sgemm", "spmv"};
    plan.seed = 7;

    Scheme scheme;
    scheme.policy = "dss";
    auto result = exp.run(plan, scheme);

    ASSERT_EQ(result.metrics.ntt.size(), 2u);
    for (double ntt : result.metrics.ntt)
        EXPECT_GT(ntt, 0.9);
    EXPECT_GT(result.metrics.stp, 0.0);
    EXPECT_LE(result.metrics.stp, 2.0 + 1e-9);
    EXPECT_GE(result.metrics.fairness, 0.0);
    EXPECT_LE(result.metrics.fairness, 1.0);
    EXPECT_GT(result.kernelsCompleted, 0u);
}

TEST(Experiment, ConfigOverridesReachSimulation)
{
    // Shrinking the GPU must slow the isolated run down.
    Experiment big;
    big.setMinReplays(1);
    double t13 = big.isolatedTimeUs("sgemm");

    sim::Config small_cfg;
    small_cfg.set("gpu.num_sms", static_cast<std::int64_t>(2));
    Experiment small(small_cfg);
    small.setMinReplays(1);
    double t2 = small.isolatedTimeUs("sgemm");

    EXPECT_GT(t2, t13);
}
