/** Tests of the workload generator (Section 4.1 methodology). */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sim/logging.hh"
#include "trace/parboil.hh"
#include "workload/generator.hh"

using namespace gpump;
using namespace gpump::workload;

TEST(Generator, PrioritizedPlansCoverEveryBenchmarkEqually)
{
    auto plans = makePrioritizedPlans(4, 3, 42);
    EXPECT_EQ(plans.size(), 30u); // 10 benchmarks x 3

    std::map<std::string, int> hp_counts;
    for (const auto &p : plans) {
        ASSERT_EQ(p.benchmarks.size(), 4u);
        ASSERT_EQ(p.highPriorityIndex, 0);
        ++hp_counts[p.benchmarks[0]];
    }
    // "All the benchmark applications appear the same number of times
    // as the high-priority process" (Section 4.2).
    for (const auto &kv : hp_counts)
        EXPECT_EQ(kv.second, 3) << kv.first;
}

TEST(Generator, PlansContainDistinctBenchmarks)
{
    for (auto &plans : {makePrioritizedPlans(8, 2, 7),
                        makeUniformPlans(8, 20, 7)}) {
        for (const auto &p : plans) {
            std::set<std::string> s(p.benchmarks.begin(),
                                    p.benchmarks.end());
            EXPECT_EQ(s.size(), p.benchmarks.size())
                << "duplicate benchmark within one workload";
        }
    }
}

TEST(Generator, DeterministicForSameSeed)
{
    auto a = makeUniformPlans(4, 10, 99);
    auto b = makeUniformPlans(4, 10, 99);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].benchmarks, b[i].benchmarks);
        EXPECT_EQ(a[i].seed, b[i].seed);
    }
}

TEST(Generator, DifferentSeedsDiffer)
{
    auto a = makeUniformPlans(4, 10, 1);
    auto b = makeUniformPlans(4, 10, 2);
    int same = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].benchmarks == b[i].benchmarks)
            ++same;
    }
    EXPECT_LT(same, 5);
}

TEST(Generator, UniformPlansHaveNoPriorities)
{
    auto plans = makeUniformPlans(6, 5, 3);
    for (const auto &p : plans) {
        EXPECT_EQ(p.highPriorityIndex, -1);
        EXPECT_TRUE(p.priorities().empty());
    }
}

TEST(Generator, PrioritiesVectorMarksTheHighOne)
{
    auto plans = makePrioritizedPlans(4, 1, 5);
    for (const auto &p : plans) {
        auto prio = p.priorities();
        ASSERT_EQ(prio.size(), 4u);
        EXPECT_EQ(prio[0], 1);
        EXPECT_EQ(prio[1], 0);
    }
}

TEST(Generator, ValidatesProcessCounts)
{
    EXPECT_THROW(makePrioritizedPlans(1, 1, 0), sim::FatalError);
    EXPECT_THROW(makePrioritizedPlans(11, 1, 0), sim::FatalError);
    EXPECT_THROW(makeUniformPlans(0, 1, 0), sim::FatalError);
    EXPECT_THROW(makeUniformPlans(11, 1, 0), sim::FatalError);
}

TEST(Generator, AllBenchmarksReachableInUniformPlans)
{
    auto plans = makeUniformPlans(8, 40, 11);
    std::set<std::string> seen;
    for (const auto &p : plans)
        seen.insert(p.benchmarks.begin(), p.benchmarks.end());
    EXPECT_EQ(seen.size(), trace::parboilSuite().size());
}

TEST(Generator, PlanSeedsAreDistinctAndDeterministic)
{
    // Each workload gets its own simulation seed so runs are
    // independent, and re-generating with the same base seed must
    // reproduce the exact seed assignment.
    auto a = makePrioritizedPlans(4, 2, 17);
    auto b = makePrioritizedPlans(4, 2, 17);
    std::set<std::uint64_t> seeds;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].seed, b[i].seed);
        seeds.insert(a[i].seed);
    }
    EXPECT_EQ(seeds.size(), a.size()) << "duplicate per-plan seeds";
}

TEST(Generator, PlanBenchmarksComeFromTheParboilSuite)
{
    std::set<std::string> suite;
    for (const auto &spec : trace::parboilSuite())
        suite.insert(spec.name);

    for (auto &plans : {makePrioritizedPlans(6, 2, 23),
                        makeUniformPlans(6, 12, 23)}) {
        for (const auto &p : plans)
            for (const auto &name : p.benchmarks)
                EXPECT_TRUE(suite.count(name))
                    << name << " is not a Parboil benchmark";
    }
}

TEST(Generator, UniformPlanCountAndWidthAreHonoured)
{
    auto plans = makeUniformPlans(5, 13, 31);
    ASSERT_EQ(plans.size(), 13u);
    for (const auto &p : plans)
        EXPECT_EQ(p.benchmarks.size(), 5u);
}
