/**
 * Tests of the framework's extension policies: round-robin time
 * multiplexing and priority-weighted DSS token grants.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/dss.hh"
#include "core/timemux.hh"
#include "sim/logging.hh"
#include "tests/test_util.hh"
#include "workload/system.hh"

using namespace gpump;
using test::DeviceRig;

namespace {

std::map<sim::ContextId, int>
smShares(core::SchedulingFramework &fw)
{
    std::map<sim::ContextId, int> shares;
    for (const auto &sm : fw.sms()) {
        if (sm->kernel != nullptr)
            ++shares[sm->kernel->ctx()];
    }
    return shares;
}

} // namespace

TEST(TimeMux, RotatesOwnershipBetweenKernels)
{
    sim::Config cfg;
    cfg.set("tmux.quantum_us", 100.0);
    DeviceRig rig("tmux", "context_switch", cfg);

    auto ka = test::makeProfile("a", 40000, 20.0);
    auto kb = test::makeProfile("b", 40000, 20.0);
    rig.launch(rig.queueFor(0), &ka);
    rig.launch(rig.queueFor(1), &kb);

    // Slice 1: kernel a owns the engine.
    rig.run(sim::microseconds(50.0));
    auto shares = smShares(rig.framework);
    EXPECT_EQ(shares[0], 13);
    EXPECT_EQ(shares[1], 0);

    // After one quantum + preemption round-trip (and before the next
    // rotation at ~217 us): kernel b owns the engine.
    rig.run(sim::microseconds(150.0));
    shares = smShares(rig.framework);
    EXPECT_EQ(shares[1], 13)
        << "quantum expiry must hand the engine to the next kernel";
    EXPECT_EQ(shares[0], 0);

    auto *tmux =
        dynamic_cast<core::TimeMuxPolicy *>(&rig.framework.policy());
    ASSERT_NE(tmux, nullptr);
    EXPECT_GE(tmux->rotations(), 1u);
}

TEST(TimeMux, LoneKernelKeepsEngineWithoutRotation)
{
    sim::Config cfg;
    cfg.set("tmux.quantum_us", 50.0);
    DeviceRig rig("tmux", "context_switch", cfg);
    auto k = test::makeProfile("k", 40000, 20.0);
    rig.launch(rig.queueFor(0), &k);
    rig.run(sim::microseconds(500.0));
    EXPECT_EQ(rig.framework.preemptions(), 0u)
        << "no contention, no preemption";
    EXPECT_EQ(smShares(rig.framework)[0], 13);
    rig.run();
}

TEST(TimeMux, BackfillsWhenOwnerLacksWork)
{
    sim::Config cfg;
    cfg.set("tmux.quantum_us", 1000.0);
    DeviceRig rig("tmux", "context_switch", cfg);
    // Owner only fills 3 SMs; the other kernel back-fills the rest.
    auto small = test::makeProfile("small", 3 * 16, 500.0);
    auto big = test::makeProfile("big", 4000, 20.0);
    rig.launch(rig.queueFor(0), &small);
    rig.launch(rig.queueFor(1), &big);
    rig.run(sim::microseconds(100.0));
    auto shares = smShares(rig.framework);
    EXPECT_EQ(shares[0], 3);
    EXPECT_EQ(shares[1], 10) << "idle SMs must be back-filled";
}

TEST(TimeMux, WorksWithDrainingAndFinishesEverything)
{
    sim::Config cfg;
    cfg.set("tmux.quantum_us", 100.0);
    DeviceRig rig("tmux", "draining", cfg);
    auto ka = test::makeProfile("a", 2000, 20.0);
    auto kb = test::makeProfile("b", 2000, 20.0);
    rig.launch(rig.queueFor(0), &ka);
    rig.launch(rig.queueFor(1), &kb);
    rig.run();
    EXPECT_EQ(rig.framework.kernelsCompleted(), 2u);
    EXPECT_EQ(rig.framework.tbsCompleted(), 4000u);
}

TEST(TimeMux, EndToEndWorkload)
{
    workload::SystemSpec spec;
    spec.benchmarks = {"sgemm", "histo", "spmv"};
    spec.policy = "tmux";
    spec.minReplays = 2;
    workload::System system(spec);
    auto result = system.run(sim::seconds(60.0));
    for (const auto &runs : result.runs)
        EXPECT_GE(runs.size(), 2u);
}

TEST(TimeMux, FactoryValidatesQuantum)
{
    sim::Config cfg;
    cfg.set("tmux.quantum_us", -5.0);
    EXPECT_THROW(core::makePolicy("tmux", cfg), sim::FatalError);
}

TEST(WeightedDss, SharesProportionalToPriority)
{
    sim::Config cfg;
    cfg.set("dss.tokens_per_kernel", static_cast<std::int64_t>(4));
    cfg.set("dss.bonus_tokens", static_cast<std::int64_t>(0));
    cfg.set("dss.weight_by_priority", true);
    DeviceRig rig("dss", "context_switch", cfg);

    // Priority 0 -> 4 tokens; priority 1 -> 8 tokens.
    auto lo = test::makeProfile("lo", 40000, 50.0);
    auto hi = test::makeProfile("hi", 40000, 50.0);
    rig.launch(rig.queueFor(0), &lo, /*priority=*/0);
    rig.run(sim::microseconds(300.0));
    rig.launch(rig.queueFor(1), &hi, /*priority=*/1);
    rig.run(rig.sim.now() + sim::milliseconds(2.0));

    auto shares = smShares(rig.framework);
    // Steady state follows the grants: 13 SMs split ~ 4 : 8.
    EXPECT_EQ(shares[0] + shares[1], 13);
    EXPECT_GE(shares[1], 8);
    EXPECT_LE(shares[1], 9);
}

TEST(WeightedDss, UnweightedIgnoresPriority)
{
    sim::Config cfg;
    cfg.set("dss.tokens_per_kernel", static_cast<std::int64_t>(6));
    cfg.set("dss.bonus_tokens", static_cast<std::int64_t>(1));
    DeviceRig rig("dss", "context_switch", cfg);
    auto lo = test::makeProfile("lo", 40000, 50.0);
    auto hi = test::makeProfile("hi", 40000, 50.0);
    rig.launch(rig.queueFor(0), &lo, 0);
    rig.run(sim::microseconds(300.0));
    rig.launch(rig.queueFor(1), &hi, 7);
    rig.run(rig.sim.now() + sim::milliseconds(2.0));
    auto shares = smShares(rig.framework);
    EXPECT_EQ(shares[0], 7);
    EXPECT_EQ(shares[1], 6)
        << "equal sharing must ignore process priorities";
}
