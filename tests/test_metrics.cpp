/** Unit tests for the Eyerman-Eeckhout metric calculations. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "metrics/metrics.hh"
#include "sim/logging.hh"

using namespace gpump;
using namespace gpump::metrics;

TEST(Metrics, SingleProcessBaseline)
{
    auto m = computeMetrics({100.0}, {100.0});
    ASSERT_EQ(m.ntt.size(), 1u);
    EXPECT_DOUBLE_EQ(m.ntt[0], 1.0);
    EXPECT_DOUBLE_EQ(m.antt, 1.0);
    EXPECT_DOUBLE_EQ(m.stp, 1.0);
    EXPECT_DOUBLE_EQ(m.fairness, 1.0);
}

TEST(Metrics, KnownTwoProcessCase)
{
    // P0 slowed 2x, P1 slowed 4x.
    auto m = computeMetrics({100.0, 50.0}, {200.0, 200.0});
    EXPECT_DOUBLE_EQ(m.ntt[0], 2.0);
    EXPECT_DOUBLE_EQ(m.ntt[1], 4.0);
    EXPECT_DOUBLE_EQ(m.antt, 3.0);
    EXPECT_DOUBLE_EQ(m.stp, 0.5 + 0.25);
    EXPECT_DOUBLE_EQ(m.fairness, 0.5);
}

TEST(Metrics, PerfectSharingOfNProcesses)
{
    // n processes each slowed exactly n times: STP stays 1 (the
    // machine does one process-worth of work per unit time), ANTT =
    // n, fairness = 1.
    const int n = 4;
    std::vector<double> iso(n, 10.0), multi(n, 40.0);
    auto m = computeMetrics(iso, multi);
    EXPECT_DOUBLE_EQ(m.antt, 4.0);
    EXPECT_DOUBLE_EQ(m.stp, 1.0);
    EXPECT_DOUBLE_EQ(m.fairness, 1.0);
}

TEST(Metrics, StpBoundedByProcessCount)
{
    // Even with no slowdown at all, STP cannot exceed n.
    auto m = computeMetrics({10.0, 20.0, 30.0}, {10.0, 20.0, 30.0});
    EXPECT_DOUBLE_EQ(m.stp, 3.0);
    EXPECT_DOUBLE_EQ(m.antt, 1.0);
}

TEST(Metrics, FairnessApproachesZeroUnderStarvation)
{
    auto m = computeMetrics({10.0, 10.0}, {10.0, 1e7});
    EXPECT_LT(m.fairness, 1e-5);
    EXPECT_GT(m.fairness, 0.0);
}

TEST(Metrics, FairnessIsMinOverMaxOfSlowdowns)
{
    auto m = computeMetrics({10.0, 10.0, 10.0}, {20.0, 30.0, 60.0});
    // slowdowns 2, 3, 6 -> min/max = 1/3.
    EXPECT_NEAR(m.fairness, 2.0 / 6.0, 1e-12);
}

TEST(Metrics, ValidationErrors)
{
    EXPECT_THROW(computeMetrics({1.0}, {1.0, 2.0}), sim::FatalError);
    EXPECT_THROW(computeMetrics({}, {}), sim::FatalError);
}

TEST(Metrics, DegenerateTimesYieldNanNotFatal)
{
    // A zero isolated baseline (empty/degenerate plan) or turnaround
    // must not abort a whole batch; the affected metrics become quiet
    // NaN instead (serialized as JSON null by the report layer).
    for (auto &[iso, multi] :
         std::vector<std::pair<std::vector<double>, std::vector<double>>>{
             {{0.0}, {1.0}},
             {{1.0}, {-1.0}},
             {{std::numeric_limits<double>::infinity()}, {1.0}},
             {{1.0}, {std::numeric_limits<double>::quiet_NaN()}}}) {
        SystemMetrics m;
        ASSERT_NO_THROW(m = computeMetrics(iso, multi));
        ASSERT_EQ(m.ntt.size(), 1u);
        EXPECT_TRUE(std::isnan(m.ntt[0]));
        EXPECT_TRUE(std::isnan(m.antt));
        EXPECT_TRUE(std::isnan(m.stp));
        EXPECT_TRUE(std::isnan(m.fairness));
    }
}

TEST(Metrics, DegenerateCellPoisonsOnlyItsOwnNtt)
{
    // One broken process out of three: its NTT is NaN and the
    // aggregates are NaN, but the healthy per-process ratios survive
    // for diagnosis.
    auto m = computeMetrics({10.0, 0.0, 10.0}, {20.0, 5.0, 40.0});
    ASSERT_EQ(m.ntt.size(), 3u);
    EXPECT_DOUBLE_EQ(m.ntt[0], 2.0);
    EXPECT_TRUE(std::isnan(m.ntt[1]));
    EXPECT_DOUBLE_EQ(m.ntt[2], 4.0);
    EXPECT_TRUE(std::isnan(m.antt));
    EXPECT_TRUE(std::isnan(m.stp));
    EXPECT_TRUE(std::isnan(m.fairness));
}

TEST(Metrics, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({1.0, 4.0}), 2.0);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_THROW(mean({}), sim::PanicError);
    EXPECT_THROW(geomean({0.0}), sim::PanicError);
}
