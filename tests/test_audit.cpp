/**
 * Tests of the compile-time-gated invariant-audit layer
 * (core/audit.hh, DESIGN.md §12).
 *
 * The file compiles in both flavors and tests each side of the gate:
 *
 *  - default build (GPUMP_AUDIT_BUILD off): the macro must generate no
 *    code and never evaluate its condition, and simulation output must
 *    match the pinned golden aggregates — the audit layer's existence
 *    cannot perturb results;
 *  - audit build: a deliberately corrupted EventQueue entry and a
 *    deliberately over-admitted ResidencyManager must abort through
 *    auditFail (EXPECT_DEATH), and the same golden aggregate must
 *    still hold — enabled audits observe, they do not mutate.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/audit.hh"
#include "harness/suite.hh"
#include "memory/gpu_memory.hh"
#include "memory/page_table.hh"
#include "memory/residency.hh"
#include "sim/event.hh"
#include "sim/stats.hh"

using namespace gpump;

TEST(Audit, ConditionIsNeverEvaluatedWhenDisabled)
{
#if GPUMP_AUDIT_ENABLED
    GTEST_SKIP() << "audit build: conditions are evaluated by design";
#else
    int evaluations = 0;
    // A failing condition with a side effect: in a default build the
    // condition sits in an unevaluated sizeof, so the counter must
    // stay untouched and nothing aborts.
    GPUMP_AUDIT((++evaluations, false), "must not fire when disabled");
    EXPECT_EQ(evaluations, 0);
#endif
}

TEST(Audit, PassingAuditIsSilentWhenEnabled)
{
#if GPUMP_AUDIT_ENABLED
    int evaluations = 0;
    GPUMP_AUDIT((++evaluations, true), "a holding invariant is silent");
    EXPECT_EQ(evaluations, 1);
#else
    GTEST_SKIP() << "default build: GPUMP_AUDIT generates no code";
#endif
}

TEST(Audit, GoldenAggregateIdenticalWithAndWithoutAudits)
{
    // The fig7 --quick 2-process aggregate pinned since the figure
    // landed.  Running it from this file in BOTH build flavors pins
    // the contract that matters here: -DGPUMP_AUDIT_BUILD=ON must be
    // observation-only, and the default build's output must not move
    // because an audit expression was misplaced outside its gate.
    sim::Config cfg;
    cfg.set("gpu.tb_time_cv", 0.25); // figureConfig default

    harness::Suite suite("audit-golden");
    suite.sizes({2})
        .uniform(/*count=*/3, /*base_seed=*/20140614)
        .minReplays(2) // --quick
        .scheme("FCFS", {"fcfs", "context_switch", "fcfs"})
        .scheme("DSS-CS", {"dss", "context_switch", "fcfs"});
    harness::Batch batch = suite.build();

    harness::Runner runner(cfg, /*jobs=*/2);
    auto results = runner.run(batch.requests);

    double sum = 0;
    for (std::size_t pi = 0; pi < batch.numPlans(0); ++pi) {
        double base = results[batch.indexOf(0, pi, 0)].metrics.antt;
        double dss = results[batch.indexOf(0, pi, 1)].metrics.antt;
        sum += base / dss;
    }
    double avg = sum / static_cast<double>(batch.numPlans(0));

    constexpr double kGolden = 1.0022550475518892;
    EXPECT_NEAR(avg, kGolden, 1e-9)
        << "audit layer perturbed simulation output (GPUMP_AUDIT_ENABLED="
        << GPUMP_AUDIT_ENABLED << ")";
}

#if GPUMP_AUDIT_ENABLED

namespace {

constexpr std::int64_t kPage = static_cast<std::int64_t>(memory::gpuPageBytes);

/** GpuMemory + frames + a manager whose swap transfers are recorded,
 *  mirroring test_residency.cpp's rig. */
struct AuditResidencyRig
{
    sim::StatRegistry reg;
    memory::GpuMemory gmem;
    memory::FrameAllocator frames;
    memory::ResidencyManager rm;

    explicit AuditResidencyRig(std::int64_t capacity_pages)
        : gmem(reg, paramsFor(capacity_pages)),
          frames(static_cast<std::size_t>(capacity_pages)),
          rm(reg, gmem,
             [](sim::ContextId, int, std::int64_t, bool,
                std::function<void()>) {})
    {
    }

    static memory::GpuMemoryParams paramsFor(std::int64_t pages)
    {
        memory::GpuMemoryParams p;
        p.capacity = pages * kPage;
        return p;
    }
};

} // namespace

using AuditDeathTest = ::testing::Test;

TEST(AuditDeathTest, CorruptedEventQueueEntryAborts)
{
    sim::EventQueue q;
    int fired = 0;
    q.schedule(100, [&fired] { ++fired; });
    q.schedule(200, [&fired] { ++fired; });
    ASSERT_TRUE(q.step());
    ASSERT_EQ(q.now(), 100);

    // Zero the pending entry's firing key: the queue now claims its
    // next event fires at t=0 while time already reached t=100, and
    // the two-tier ordering audit in step() must catch it.
    q.auditCorruptFrontKeyForTest();
    EXPECT_DEATH(q.step(), "two-tier ordering violated");
}

TEST(AuditDeathTest, OverCapacityResidencyAborts)
{
    AuditResidencyRig rig(8);
    memory::PageTable pt0(rig.frames);
    memory::PageTable pt1(rig.frames);
    rig.rm.registerContext(0, 0, 6 * kPage, pt0); // admitted resident
    rig.rm.registerContext(1, 0, 6 * kPage, pt1); // parked swapped-out
    ASSERT_TRUE(rig.rm.resident(0));
    ASSERT_FALSE(rig.rm.resident(1));

    // Force the second context Resident without an allocation: 12
    // pages of "resident" footprint on an 8-page device.  The next
    // mutator's capacity walk must abort.
    rig.rm.auditForceResidentForTest(1);
    EXPECT_DEATH(rig.rm.ensureResident(0, [] {}),
                 "exceeds device capacity");
}

#endif // GPUMP_AUDIT_ENABLED
