/**
 * Concurrency stress tests, written to run under ThreadSanitizer (the
 * ci tsan job builds the suite with -DGPUMP_SANITIZE=thread).
 *
 * The simulator itself is single-threaded by design; the only code
 * that runs concurrently is the harness layer (Runner's job pool, the
 * intra-run shard pool, the memoizing baseline cache) and the
 * process-wide Logger.  These tests drive exactly those seams harder
 * than the functional suite does — maximum pool sizes, deliberate
 * first-access herds, level flips racing emission — so a data race
 * shows up as a TSan report here rather than as a once-a-month flaky
 * batch result.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "harness/suite.hh"
#include "sim/logging.hh"

using namespace gpump;
using namespace gpump::harness;

namespace {

/** Grid with enough requests and distinct benchmarks that an 8-job x
 *  4-shard runner keeps every pool busy at once. */
Batch
contentionGrid()
{
    Suite suite("stress");
    suite.sizes({4})
        .uniform(/*count=*/3, /*base_seed=*/20140614)
        .minReplays(1)
        .scheme("FCFS", {"fcfs", "context_switch", "fcfs"})
        .scheme("DSS-CS", {"dss", "context_switch", "fcfs"});
    return suite.build();
}

} // namespace

TEST(ConcurrencyStress, JobsTimesShardsBitIdenticalUnderContention)
{
    // jobs=8 batch workers, each running shards=4 baseline workers,
    // all sharing one memoizing cache: the heaviest thread shape the
    // harness supports.  The determinism contract says the results
    // must still be bit-identical to the fully serial run.
    Batch batch = contentionGrid();

    Runner serial(sim::Config(), /*jobs=*/1);
    auto expected = serial.run(batch.requests);

    Runner stressed(sim::Config(), /*jobs=*/8);
    stressed.setRunShards(4);
    auto actual = stressed.run(batch.requests);

    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected[i].metrics.antt, actual[i].metrics.antt) << i;
        EXPECT_EQ(expected[i].metrics.stp, actual[i].metrics.stp) << i;
        EXPECT_EQ(expected[i].metrics.ntt, actual[i].metrics.ntt) << i;
        EXPECT_EQ(expected[i].isolatedUs, actual[i].isolatedUs) << i;
        EXPECT_EQ(expected[i].sys.meanTurnaroundUs,
                  actual[i].sys.meanTurnaroundUs)
            << i;
        EXPECT_EQ(expected[i].sys.endTime, actual[i].sys.endTime) << i;
        EXPECT_EQ(expected[i].sys.eventsExecuted,
                  actual[i].sys.eventsExecuted)
            << i;
    }

    // Every distinct benchmark across the whole batch computed its
    // isolated baseline exactly once, no matter how many of the 8x4
    // workers raced for it.
    std::vector<std::string> distinct;
    for (const auto &req : batch.requests) {
        for (const auto &b : req.plan.benchmarks) {
            if (std::find(distinct.begin(), distinct.end(), b) ==
                distinct.end())
                distinct.push_back(b);
        }
    }
    EXPECT_EQ(stressed.baselines().computations(), distinct.size());
}

TEST(ConcurrencyStress, BaselineCacheFirstAccessHerd)
{
    // All threads released at once onto the same two cold keys: the
    // shared_future handoff must serialize each key to one computation
    // with every waiter observing that one value.
    IsolatedBaselineCache cache;
    sim::Config cfg;
    constexpr int kThreads = 8;
    const char *benchmarks[] = {"sgemm", "histo"};

    std::atomic<bool> go{false};
    std::vector<double> values(kThreads, 0.0);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            while (!go.load(std::memory_order_acquire)) {
            }
            values[static_cast<std::size_t>(t)] =
                cache.timeUs(benchmarks[t % 2], cfg, 1);
        });
    }
    go.store(true, std::memory_order_release);
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(cache.computations(), 2u);
    for (int t = 2; t < kThreads; ++t) {
        EXPECT_DOUBLE_EQ(values[static_cast<std::size_t>(t)],
                         values[static_cast<std::size_t>(t % 2)]);
    }
    EXPECT_GT(values[0], 0.0);
    EXPECT_GT(values[1], 0.0);
    EXPECT_NE(values[0], values[1]);
}

TEST(ConcurrencyStress, LoggerLevelFlipsRaceEmission)
{
    // The Logger is the one object shared by every concurrent run.
    // Hammer emit() from four threads while a fifth flips the level:
    // the atomic threshold and the emission mutex must keep this free
    // of data races (TSan enforces; the test itself just must not
    // crash or emit — both levels used are below the message level).
    sim::Logger log;
    log.setLevel(sim::LogLevel::Silent);

    std::atomic<bool> stop{false};
    std::thread flipper([&] {
        bool warn = false;
        while (!stop.load(std::memory_order_relaxed)) {
            log.setLevel(warn ? sim::LogLevel::Warn
                              : sim::LogLevel::Silent);
            warn = !warn;
        }
    });

    std::vector<std::thread> emitters;
    for (int t = 0; t < 4; ++t) {
        emitters.emplace_back([&log] {
            for (int i = 0; i < 2000; ++i) {
                // Inform is never enabled at Silent or Warn, so the
                // stress stays quiet; the level check itself is the
                // contended read.
                log.emit(sim::LogLevel::Inform, "stress");
                if (log.enabled(sim::LogLevel::Trace))
                    ADD_FAILURE() << "Trace can never be enabled here";
            }
        });
    }
    for (auto &t : emitters)
        t.join();
    stop.store(true, std::memory_order_relaxed);
    flipper.join();

    sim::LogLevel final_level = log.level();
    EXPECT_TRUE(final_level == sim::LogLevel::Silent ||
                final_level == sim::LogLevel::Warn);
}
