/** Unit tests for the data transfer engine. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/logging.hh"
#include "tests/test_util.hh"

using namespace gpump;
using test::DeviceRig;

namespace {

gpu::CommandPtr
memcpyCmd(sim::ContextId ctx, int priority, std::int64_t bytes,
          std::vector<std::string> *order, const std::string &tag)
{
    auto cmd = gpu::Command::makeMemcpy(
        ctx, priority, gpu::Command::Kind::MemcpyH2D, bytes);
    cmd->onComplete = [order, tag] { order->push_back(tag); };
    return cmd;
}

} // namespace

TEST(TransferEngine, SingleTransferTiming)
{
    DeviceRig rig;
    auto *q = rig.queueFor(0);
    std::vector<std::string> order;
    rig.dispatcher.enqueue(q, memcpyCmd(0, 0, 1 << 20, &order, "a"));
    sim::SimTime end = rig.run();
    ASSERT_EQ(order.size(), 1u);
    // 1 MiB = 256 bursts * 256 ns + 2 us setup = 67536 ns.
    EXPECT_EQ(end, 65536 + 2000);
}

TEST(TransferEngine, FcfsOrder)
{
    DeviceRig rig;
    auto *q0 = rig.queueFor(0);
    auto *q1 = rig.queueFor(1);
    auto *q2 = rig.queueFor(2);
    std::vector<std::string> order;
    // Low priority arrives first; FCFS ignores priorities.
    rig.dispatcher.enqueue(q0, memcpyCmd(0, 0, 4096, &order, "lo1"));
    rig.dispatcher.enqueue(q1, memcpyCmd(1, 5, 4096, &order, "hi"));
    rig.dispatcher.enqueue(q2, memcpyCmd(2, 0, 4096, &order, "lo2"));
    rig.run();
    EXPECT_EQ(order, (std::vector<std::string>{"lo1", "hi", "lo2"}));
}

TEST(TransferEngine, PriorityPolicyReordersQueue)
{
    DeviceRig rig("fcfs", "context_switch", sim::Config(), 1,
                  gpu::TransferEngine::Policy::Priority);
    auto *q0 = rig.queueFor(0);
    auto *q1 = rig.queueFor(1);
    auto *q2 = rig.queueFor(2);
    std::vector<std::string> order;
    // First transfer starts immediately (engine idle); while it is on
    // the wire the other two queue up and the high-priority one must
    // win the next slot.
    rig.dispatcher.enqueue(q0, memcpyCmd(0, 0, 1 << 20, &order, "first"));
    rig.dispatcher.enqueue(q1, memcpyCmd(1, 0, 4096, &order, "lo"));
    rig.dispatcher.enqueue(q2, memcpyCmd(2, 7, 4096, &order, "hi"));
    rig.run();
    EXPECT_EQ(order, (std::vector<std::string>{"first", "hi", "lo"}));
}

TEST(TransferEngine, PriorityTiesBrokenByArrival)
{
    DeviceRig rig("fcfs", "context_switch", sim::Config(), 1,
                  gpu::TransferEngine::Policy::Priority);
    auto *q0 = rig.queueFor(0);
    auto *q1 = rig.queueFor(1);
    auto *q2 = rig.queueFor(2);
    std::vector<std::string> order;
    rig.dispatcher.enqueue(q0, memcpyCmd(0, 0, 1 << 20, &order, "first"));
    rig.dispatcher.enqueue(q1, memcpyCmd(1, 3, 4096, &order, "a"));
    rig.dispatcher.enqueue(q2, memcpyCmd(2, 3, 4096, &order, "b"));
    rig.run();
    EXPECT_EQ(order, (std::vector<std::string>{"first", "a", "b"}));
}

TEST(TransferEngine, OverlapsWithKernelExecution)
{
    // Commands targeting different engines proceed concurrently
    // (Section 2.2): a transfer from ctx 1 must not wait for ctx 0's
    // kernel occupying the execution engine.
    DeviceRig rig;
    auto *q0 = rig.queueFor(0);
    auto *q1 = rig.queueFor(1);

    auto k = test::makeProfile("k", 13, 1000.0); // 1 ms kernel
    rig.launch(q0, &k);

    std::vector<std::string> order;
    sim::SimTime xfer_done = -1;
    auto cmd = gpu::Command::makeMemcpy(1, 0,
                                        gpu::Command::Kind::MemcpyD2H,
                                        4096);
    cmd->onComplete = [&] { xfer_done = rig.sim.now(); };
    rig.dispatcher.enqueue(q1, cmd);

    rig.run();
    ASSERT_GE(xfer_done, 0);
    EXPECT_LT(xfer_done, sim::microseconds(100.0))
        << "transfer must complete while the kernel is still running";
}

TEST(TransferEngine, RejectsKernelCommands)
{
    DeviceRig rig;
    auto k = test::makeProfile("k", 1, 1.0);
    auto cmd = gpu::Command::makeKernel(0, 0, &k);
    EXPECT_THROW(rig.xfer.submit(cmd), sim::PanicError);
}

TEST(TransferEngine, PolicyNameParsing)
{
    using TE = gpu::TransferEngine;
    EXPECT_EQ(TE::policyFromName("fcfs"), TE::Policy::Fcfs);
    EXPECT_EQ(TE::policyFromName("priority"), TE::Policy::Priority);
    EXPECT_THROW(TE::policyFromName("bogus"), sim::FatalError);
}
