/**
 * Strict-JSON validity of the report layer.
 *
 * Regression target: non-finite metrics (a degenerate plan's NaN/inf
 * ANTT, an unmeasurable run's events/sec) must serialize as JSON
 * null — a bare `nan` token is invalid JSON and silently breaks every
 * downstream consumer.  A minimal strict RFC 8259 parser (which, by
 * construction, rejects the NaN/Infinity extensions some parsers
 * accept) round-trips everything the JSONL writer emits.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "harness/report.hh"
#include "harness/suite.hh"

using namespace gpump;
using namespace gpump::harness;

namespace {

/** Minimal strict JSON validator (RFC 8259; no NaN/Infinity, no
 *  trailing garbage, no unquoted tokens beyond true/false/null). */
class StrictJson
{
  public:
    static bool valid(const std::string &text)
    {
        StrictJson p(text);
        return p.value() && (p.ws(), p.pos_ == text.size());
    }

  private:
    explicit StrictJson(const std::string &t) : text_(t) {}

    const std::string &text_;
    std::size_t pos_ = 0;

    int peek() const
    {
        return pos_ < text_.size()
            ? static_cast<unsigned char>(text_[pos_])
            : -1;
    }
    bool eat(char c)
    {
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }
    void ws()
    {
        while (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
               peek() == '\r')
            ++pos_;
    }
    bool literal(const char *s)
    {
        std::size_t n = std::string(s).size();
        if (text_.compare(pos_, n, s) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool value()
    {
        ws();
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool object()
    {
        if (!eat('{'))
            return false;
        ws();
        if (eat('}'))
            return true;
        for (;;) {
            ws();
            if (!string())
                return false;
            ws();
            if (!eat(':') || !value())
                return false;
            ws();
            if (eat(','))
                continue;
            return eat('}');
        }
    }

    bool array()
    {
        if (!eat('['))
            return false;
        ws();
        if (eat(']'))
            return true;
        for (;;) {
            if (!value())
                return false;
            ws();
            if (eat(','))
                continue;
            return eat(']');
        }
    }

    bool string()
    {
        if (!eat('"'))
            return false;
        for (;;) {
            int c = peek();
            if (c < 0 || c < 0x20)
                return false; // unterminated or raw control char
            ++pos_;
            if (c == '"')
                return true;
            if (c == '\\') {
                int e = peek();
                ++pos_;
                switch (e) {
                  case '"': case '\\': case '/': case 'b': case 'f':
                  case 'n': case 'r': case 't':
                    break;
                  case 'u': {
                    for (int i = 0; i < 4; ++i) {
                        if (!std::isxdigit(peek()))
                            return false;
                        ++pos_;
                    }
                    break;
                  }
                  default:
                    return false;
                }
            }
        }
    }

    bool digits()
    {
        if (!std::isdigit(peek()))
            return false;
        while (std::isdigit(peek()))
            ++pos_;
        return true;
    }

    bool number()
    {
        eat('-');
        if (eat('0')) {
            // no leading zeros
        } else if (!digits()) {
            return false; // rejects nan, inf, +1, .5, ...
        }
        if (eat('.') && !digits())
            return false;
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!digits())
                return false;
        }
        return true;
    }
};

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty())
            lines.push_back(line);
    }
    return lines;
}

} // namespace

TEST(StrictJsonParser, SelfTest)
{
    EXPECT_TRUE(StrictJson::valid("{\"a\":1,\"b\":[1.5e-3,null,true]}"));
    EXPECT_TRUE(StrictJson::valid("{\"s\":\"x\\n\\u00e9\"}"));
    EXPECT_TRUE(StrictJson::valid("-0.25"));
    // The whole point: bare non-finite tokens are NOT valid JSON.
    EXPECT_FALSE(StrictJson::valid("{\"a\":nan}"));
    EXPECT_FALSE(StrictJson::valid("{\"a\":-nan}"));
    EXPECT_FALSE(StrictJson::valid("{\"a\":inf}"));
    EXPECT_FALSE(StrictJson::valid("{\"a\":Infinity}"));
    EXPECT_FALSE(StrictJson::valid("{\"a\":1,}"));
    EXPECT_FALSE(StrictJson::valid("{\"a\":01}"));
    EXPECT_FALSE(StrictJson::valid("{\"a\":1} trailing"));
}

TEST(Report, NonFiniteDoublesSerializeAsNull)
{
    constexpr double nan = std::numeric_limits<double>::quiet_NaN();
    constexpr double inf = std::numeric_limits<double>::infinity();
    JsonObject o;
    o.add("ok", 1.25)
        .add("bad", nan)
        .add("worse", inf)
        .add("mixed", std::vector<double>{1.0, nan, -inf});
    std::string s = o.str();
    EXPECT_TRUE(StrictJson::valid(s)) << s;
    EXPECT_EQ(s,
              "{\"ok\":1.25,\"bad\":null,\"worse\":null,"
              "\"mixed\":[1,null,null]}");
}

TEST(Report, DegenerateResultRoundTripsThroughJsonlWriter)
{
    // A degenerate run — zero isolated baseline, zero wall time —
    // produces NaN metrics and NaN events/sec.  The full batch writer
    // must still emit strictly valid JSON lines with null in the
    // non-finite fields.
    workload::WorkloadPlan plan;
    plan.benchmarks = {"sgemm", "histo"};
    plan.seed = 1;

    Suite suite("degenerate");
    suite.fixedPlans({plan}).minReplays(1).scheme(
        "FCFS", {"fcfs", "context_switch", "fcfs"});
    Batch batch = suite.build();
    ASSERT_EQ(batch.requests.size(), 1u);

    RunResult r;
    r.index = 0;
    r.tag = batch.requests[0].tag;
    r.scheme = batch.requests[0].scheme;
    r.isolatedUs = {0.0, 0.0}; // degenerate baseline
    r.sys.meanTurnaroundUs = {125.0, 250.0};
    r.sys.eventsExecuted = 42;
    r.wallSeconds = 0.0; // unmeasurable -> eventsPerSec() is NaN
    r.metrics = metrics::computeMetrics(r.isolatedUs,
                                        r.sys.meanTurnaroundUs);
    ASSERT_TRUE(std::isnan(r.metrics.antt));
    ASSERT_TRUE(std::isnan(r.eventsPerSec()));

    std::string path =
        testing::TempDir() + "/gpump_degenerate_roundtrip.jsonl";
    writeResultsJsonl(path, batch, {r});

    auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 1u);
    const std::string &line = lines[0];
    EXPECT_TRUE(StrictJson::valid(line)) << line;
    EXPECT_NE(line.find("\"antt\":null"), std::string::npos) << line;
    EXPECT_NE(line.find("\"stp\":null"), std::string::npos) << line;
    EXPECT_NE(line.find("\"ntt\":[null,null]"), std::string::npos)
        << line;
    EXPECT_NE(line.find("\"events_per_sec\":null"), std::string::npos)
        << line;
    EXPECT_EQ(line.find("nan"), std::string::npos) << line;
    EXPECT_EQ(line.find("inf"), std::string::npos) << line;
    std::remove(path.c_str());
}

TEST(Report, HealthyResultsStayStrictlyValid)
{
    // End-to-end: a real (healthy) run through the writer parses
    // strictly too — the guard is not only for the degenerate path.
    workload::WorkloadPlan plan;
    plan.benchmarks = {"sgemm"};
    plan.seed = 3;

    Suite suite("healthy");
    suite.fixedPlans({plan}).minReplays(1).scheme(
        "FCFS", {"fcfs", "context_switch", "fcfs"});
    Batch batch = suite.build();

    Runner runner;
    auto results = runner.run(batch.requests);

    std::string path = testing::TempDir() + "/gpump_healthy.jsonl";
    writeResultsJsonl(path, batch, results);
    auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_TRUE(StrictJson::valid(lines[0])) << lines[0];
    std::remove(path.c_str());
}
