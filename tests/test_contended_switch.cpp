/**
 * Tests of the contended-switch model (gmem.contended_switch):
 * context save/restore bytes ride the transfer engine as driver-
 * originated commands, so preemption latency includes PCIe queueing;
 * plus the proactive_mem mechanism built on top of it, the per-SM TLB
 * flush contract, and the byte-identity guard for the default (off)
 * configuration.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>

#include "core/proactive_mem.hh"
#include "sim/logging.hh"
#include "tests/test_util.hh"
#include "workload/system.hh"

using namespace gpump;
using test::DeviceRig;

namespace {

sim::Config
contendedConfig()
{
    sim::Config cfg;
    cfg.set("gmem.contended_switch", true);
    return cfg;
}

/** Records the first preemption request time and per-SM latencies. */
struct PreemptionProbe : core::EngineObserver
{
    sim::Simulation *sim = nullptr;
    sim::SimTime requestAt = -1;
    std::vector<sim::SimTime> latencies;

    void preemptionRequested(const gpu::Sm &, const gpu::KernelExec &,
                             const gpu::KernelExec &) override
    {
        if (requestAt < 0)
            requestAt = sim->now();
    }
    void preemptionCompleted(const gpu::Sm &) override
    {
        latencies.push_back(sim->now() - requestAt);
    }
};

} // namespace

TEST(ContendedSwitch, SavesSerializeOnTheTransferEngine)
{
    // Under the share model every SM saves in parallel at its
    // bandwidth share (SaveLatencyMatchesContextSize).  Under the
    // contended model each SM's save is one transfer command on an
    // engine that moves one transfer at a time, so thirteen
    // simultaneous preemptions complete in a staircase: SM i waits
    // for i earlier saves.
    DeviceRig rig("ppq_excl", "context_switch", contendedConfig());
    PreemptionProbe probe;
    probe.sim = &rig.sim;
    rig.framework.setObserver(&probe);

    // Occupancy 4 (512 threads/TB), 16 KiB of regs per TB ->
    // 64 KiB of context per SM.
    // Occupancy 4 (512 threads/TB), 16 KiB of regs per TB ->
    // 64 KiB of context per SM; hi at occupancy 1 (2048 threads/TB)
    // with 13 TBs needs every SM.
    auto lo = test::makeProfile("lo", 2000, 1000.0, 4096, 0, 512);
    auto hi = test::makeProfile("hi", 13, 1.0, 4096, 0, 2048);
    rig.launch(rig.queueFor(0), &lo, 0);
    rig.run(sim::microseconds(100.0));
    rig.launch(rig.queueFor(1), &hi, 9);
    rig.run();

    const std::int64_t bytes = 4 * 4096 * 4;
    const sim::SimTime drain = rig.params.pipelineDrainLatency;
    const sim::SimTime per_save = rig.pcie.transferDuration(bytes);
    ASSERT_EQ(probe.latencies.size(),
              static_cast<std::size_t>(rig.params.numSms));
    EXPECT_TRUE(std::is_sorted(probe.latencies.begin(),
                               probe.latencies.end()));
    for (std::size_t i = 0; i < probe.latencies.size(); ++i)
        EXPECT_EQ(probe.latencies[i],
                  drain + static_cast<sim::SimTime>(i + 1) * per_save)
            << "save " << i << " must queue behind the earlier saves";
}

TEST(ContendedSwitch, SaveQueuesBehindWorkloadCopy)
{
    // A big application memcpy in flight when the preemption lands
    // must delay the save: that queueing is the whole point of the
    // contended model (the share model would ignore it entirely).
    DeviceRig rig("ppq_excl", "context_switch", contendedConfig());
    PreemptionProbe probe;
    probe.sim = &rig.sim;
    rig.framework.setObserver(&probe);

    auto lo = test::makeProfile("lo", 2000, 1000.0, 4096, 0, 512);
    auto hi = test::makeProfile("hi", 13, 1.0, 4096, 0, 2048);
    rig.launch(rig.queueFor(0), &lo, 0);
    rig.run(sim::microseconds(100.0));

    const std::int64_t copy_bytes = 8ll << 20;
    auto copy = gpu::Command::makeMemcpy(
        2, 0, gpu::Command::Kind::MemcpyH2D, copy_bytes);
    rig.dispatcher.enqueue(rig.queueFor(2), copy);
    rig.launch(rig.queueFor(1), &hi, 9);
    rig.run();

    // The copy starts the instant it is enqueued (idle engine) and
    // the preemption is requested at the same instant, so the first
    // save begins exactly when the copy finishes.
    const std::int64_t bytes = 4 * 4096 * 4;
    const sim::SimTime copy_time = rig.pcie.transferDuration(copy_bytes);
    const sim::SimTime per_save = rig.pcie.transferDuration(bytes);
    ASSERT_EQ(probe.latencies.size(),
              static_cast<std::size_t>(rig.params.numSms));
    for (std::size_t i = 0; i < probe.latencies.size(); ++i)
        EXPECT_EQ(probe.latencies[i],
                  copy_time +
                      static_cast<sim::SimTime>(i + 1) * per_save);
}

TEST(ContendedSwitch, PreemptedWorkResumesViaRestoreFetches)
{
    DeviceRig rig("ppq_excl", "context_switch", contendedConfig());
    auto lo = test::makeProfile("lo", 100, 200.0);
    auto hi = test::makeProfile("hi", 26, 50.0);
    bool lo_done = false;
    auto lo_cmd = gpu::Command::makeKernel(0, 0, &lo);
    lo_cmd->onComplete = [&] { lo_done = true; };
    rig.dispatcher.enqueue(rig.queueFor(0), lo_cmd);
    rig.run(sim::microseconds(50.0));
    rig.launch(rig.queueFor(1), &hi, 5);
    rig.run();

    EXPECT_TRUE(lo_done);
    EXPECT_EQ(rig.framework.tbsCompleted(), 126u)
        << "every preempted TB must complete exactly once under the "
           "contended model too";
    EXPECT_EQ(rig.framework.kernelsCompleted(), 2u);
    EXPECT_GT(rig.framework.tbsPrefetched(), 0u)
        << "preempted TBs re-issue only after their restore fetch "
           "lands";
    // Saves + restore fetches all ride the engine as driver commands.
    EXPECT_GT(rig.framework.contextTransfers(),
              rig.framework.preemptions())
        << "expected one save per preemption plus restore fetches";
}

TEST(ProactiveMem, StagesRestoresForTheReservationTarget)
{
    // Round-robin time slicing between two long kernels: from the
    // second rotation on, the reservation target has a non-empty
    // PTBQ, so the mechanism must stage restore fetches ahead of the
    // switch (share model here; the contended variant is below).
    DeviceRig rig("tmux", "proactive_mem");
    auto a = test::makeProfile("a", 2000, 50.0);
    auto b = test::makeProfile("b", 2000, 50.0);
    rig.launch(rig.queueFor(0), &a, 0);
    rig.launch(rig.queueFor(1), &b, 0);
    rig.run();

    EXPECT_EQ(rig.framework.kernelsCompleted(), 2u);
    auto &mech = dynamic_cast<core::ProactiveMemMechanism &>(
        rig.framework.mechanism());
    EXPECT_GT(mech.prefetchesIssued(), 0u)
        << "rotations after the first must find preempted TBs to "
           "stage";
    EXPECT_GT(mech.tbsStaged(), 0u);
    EXPECT_LE(mech.prefetchesIssued() + mech.prefetchesSkipped(),
              rig.framework.preemptions())
        << "each preemption takes at most one staging decision";
    EXPECT_GT(rig.framework.tbsPrefetched(), 0u);
}

TEST(ProactiveMem, WorksUnderTheContendedModel)
{
    DeviceRig rig("tmux", "proactive_mem", contendedConfig());
    auto a = test::makeProfile("a", 2000, 50.0);
    auto b = test::makeProfile("b", 2000, 50.0);
    rig.launch(rig.queueFor(0), &a, 0);
    rig.launch(rig.queueFor(1), &b, 0);
    rig.run();

    EXPECT_EQ(rig.framework.kernelsCompleted(), 2u);
    auto &mech = dynamic_cast<core::ProactiveMemMechanism &>(
        rig.framework.mechanism());
    EXPECT_GT(mech.prefetchesIssued(), 0u);
    EXPECT_GT(rig.framework.contextTransfers(), 0u)
        << "prefetches must be real transfer commands when contended";
}

TEST(ProactiveMem, UnknownTunableIsRejectedWithSuggestion)
{
    sim::Config cfg;
    cfg.set("proactive_mem.lookahed", static_cast<std::int64_t>(8));
    std::string msg;
    try {
        core::makeMechanism("proactive_mem", cfg);
        ADD_FAILURE() << "expected sim::FatalError";
    } catch (const sim::FatalError &e) {
        msg = e.what();
    }
    EXPECT_NE(msg.find("proactive_mem.lookahed"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("proactive_mem.lookahead"), std::string::npos)
        << "the near-miss key should be suggested: " << msg;
}

TEST(ProactiveMem, NonPositiveLookaheadIsFatal)
{
    sim::Config cfg;
    cfg.set("proactive_mem.lookahead", static_cast<std::int64_t>(0));
    EXPECT_THROW(core::makeMechanism("proactive_mem", cfg),
                 sim::FatalError);
}

TEST(TlbFlush, EveryContextChangingAssignmentFlushesOnce)
{
    // Two SMs (the KSRT holds one kernel per SM, so one SM could
    // never admit the preemptor) and a fully deterministic sequence:
    // ctx0 takes both SMs, ctx1 preempts SM 0, finishes, ctx0 gets
    // SM 0 back.  That is four context-changing assignments in total
    // — SM 0 flushes three times, SM 1 once — and nothing else may
    // flush.
    sim::Config cfg;
    cfg.set("gpu.num_sms", static_cast<std::int64_t>(2));
    DeviceRig rig("ppq_excl", "context_switch", std::move(cfg));
    auto flushes = [&] {
        return rig.framework.sm(0)->tlb().flushes() +
               rig.framework.sm(1)->tlb().flushes();
    };
    EXPECT_EQ(flushes(), 0u);

    auto lo = test::makeProfile("lo", 40, 10.0, 4096, 0, 512);
    auto hi = test::makeProfile("hi", 4, 1.0, 4096, 0, 512);
    rig.launch(rig.queueFor(0), &lo, 0);
    rig.run(sim::microseconds(50.0));
    EXPECT_EQ(flushes(), 2u)
        << "first assignment of each SM loads ctx 0";

    rig.launch(rig.queueFor(1), &hi, 9);
    rig.run();
    EXPECT_EQ(rig.framework.kernelsCompleted(), 2u);
    EXPECT_EQ(rig.framework.preemptions(), 1u)
        << "hi needs one SM, so exactly one preemption";
    EXPECT_EQ(rig.framework.sm(0)->tlb().flushes(), 3u)
        << "SM 0: assign ctx0, preempt->assign ctx1, re-assign ctx0";
    EXPECT_EQ(rig.framework.sm(1)->tlb().flushes(), 1u)
        << "SM 1 keeps running ctx0 throughout";

    // Both SMs last ran ctx 0 and keep its translations: launching
    // another ctx-0 kernel must not flush.
    auto lo2 = test::makeProfile("lo2", 8, 1.0, 4096, 0, 512);
    rig.launch(rig.queueFor(0), &lo2, 0);
    rig.run();
    EXPECT_EQ(flushes(), 4u)
        << "same-context relaunch must reuse the loaded context";
}

TEST(ContendedSwitch, DefaultOffIsIdenticalToExplicitOff)
{
    // The tunable defaults to off and off must be indistinguishable
    // from the seed model: same schedule, same event count, same
    // metrics.  This is the in-tree tripwire for the golden-file
    // byte-identity requirement.
    workload::SystemSpec spec;
    spec.benchmarks = {"sgemm", "histo", "spmv"};
    spec.priorities = {2, 0, 1};
    spec.policy = "ppq_excl";
    spec.minReplays = 2;

    auto a = workload::System(spec).run();
    sim::Config off;
    off.set("gmem.contended_switch", false);
    auto b = workload::System(spec, off).run();

    EXPECT_EQ(a.endTime, b.endTime);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_EQ(a.preemptions, b.preemptions);
    ASSERT_EQ(a.meanTurnaroundUs.size(), b.meanTurnaroundUs.size());
    for (std::size_t i = 0; i < a.meanTurnaroundUs.size(); ++i)
        EXPECT_EQ(a.meanTurnaroundUs[i], b.meanTurnaroundUs[i])
            << "process " << i;

    ASSERT_GT(a.preemptions, 0u)
        << "the workload must actually preempt, or this guard "
           "proves nothing";
    // And the contended model must actually change the schedule —
    // otherwise the tunable is dead code.
    sim::Config on;
    on.set("gmem.contended_switch", true);
    auto c = workload::System(spec, on).run();
    EXPECT_TRUE(c.endTime != a.endTime ||
                c.eventsExecuted != a.eventsExecuted)
        << "gmem.contended_switch=1 changed nothing";
}
