/** Tests of the process trace-replay machinery and the host CPU. */

#include <gtest/gtest.h>

#include <map>

#include "sim/logging.hh"
#include "trace/parboil.hh"
#include "workload/host_cpu.hh"
#include "workload/system.hh"

using namespace gpump;
using namespace gpump::workload;

TEST(HostCpu, Table2Defaults)
{
    CpuParams p;
    EXPECT_EQ(p.cores, 4);
    EXPECT_EQ(p.threadsPerCore, 2);
    EXPECT_EQ(p.hwThreads(), 8);
    EXPECT_DOUBLE_EQ(p.clockGhz, 2.8);
}

TEST(HostCpu, NoSlowdownUpToHwThreads)
{
    sim::Simulation sim;
    HostCpu cpu(sim, CpuParams{});
    for (int i = 0; i < 8; ++i)
        cpu.beginPhase();
    EXPECT_DOUBLE_EQ(cpu.slowdownFactor(), 1.0);
    cpu.beginPhase(); // ninth thread oversubscribes
    EXPECT_DOUBLE_EQ(cpu.slowdownFactor(), 9.0 / 8.0);
    for (int i = 0; i < 9; ++i)
        cpu.endPhase();
    EXPECT_THROW(cpu.endPhase(), sim::PanicError);
}

TEST(HostCpu, ContentionCanBeDisabled)
{
    sim::Simulation sim;
    CpuParams p;
    p.modelContention = false;
    HostCpu cpu(sim, p);
    for (int i = 0; i < 20; ++i)
        cpu.beginPhase();
    EXPECT_DOUBLE_EQ(cpu.slowdownFactor(), 1.0);
}

TEST(Process, SingleRunOfEveryBenchmarkCompletes)
{
    for (const auto &bench : trace::parboilSuite()) {
        SystemSpec spec;
        spec.benchmarks = {bench.name};
        spec.minReplays = 1;
        System system(spec);
        auto result = system.run(sim::seconds(10.0));
        ASSERT_EQ(result.runs.size(), 1u) << bench.name;
        EXPECT_EQ(result.runs[0].size(), 1u) << bench.name;
        EXPECT_GT(result.meanTurnaroundUs[0], 0.0) << bench.name;
    }
}

TEST(Process, ReplaysAccumulateRecords)
{
    SystemSpec spec;
    spec.benchmarks = {"sgemm"};
    spec.minReplays = 3;
    System system(spec);
    auto result = system.run(sim::seconds(10.0));
    EXPECT_EQ(result.runs[0].size(), 3u);
    // Replays of an isolated run are identical to each other (the
    // machine is deterministic and unloaded).  The first run may be
    // marginally longer: it pays the one-time SM context load.
    ASSERT_GE(result.runs[0].size(), 2u);
    auto t1 = result.runs[0][1].turnaround();
    EXPECT_GE(result.runs[0][0].turnaround(), t1);
    for (std::size_t i = 1; i < result.runs[0].size(); ++i)
        EXPECT_EQ(result.runs[0][i].turnaround(), t1);
}

TEST(Process, RunRecordsAreContiguous)
{
    SystemSpec spec;
    spec.benchmarks = {"spmv"};
    spec.minReplays = 3;
    System system(spec);
    auto result = system.run(sim::seconds(10.0));
    const auto &runs = result.runs[0];
    ASSERT_EQ(runs.size(), 3u);
    EXPECT_EQ(runs[0].start, 0);
    for (std::size_t i = 1; i < runs.size(); ++i)
        EXPECT_EQ(runs[i].start, runs[i - 1].end)
            << "replay must start when the previous run ends";
}

TEST(Process, IsolatedTimesLandInPaperClasses)
{
    // Class 2 grouping (Table 1): in simulated terms, SHORT apps are
    // the three below ~2 ms, LONG apps above ~8 ms (see DESIGN.md).
    std::map<std::string, double> times;
    for (const auto &bench : trace::parboilSuite()) {
        SystemSpec spec;
        spec.benchmarks = {bench.name};
        spec.minReplays = 1;
        System system(spec);
        times[bench.name] =
            system.run(sim::seconds(10.0)).meanTurnaroundUs[0];
    }
    double shortest_medium = 1e18, longest_short = 0;
    double shortest_long = 1e18, longest_medium = 0;
    for (const auto &bench : trace::parboilSuite()) {
        double t = times[bench.name];
        switch (bench.appClass) {
          case trace::DurationClass::Short:
            longest_short = std::max(longest_short, t);
            break;
          case trace::DurationClass::Medium:
            shortest_medium = std::min(shortest_medium, t);
            longest_medium = std::max(longest_medium, t);
            break;
          case trace::DurationClass::Long:
            shortest_long = std::min(shortest_long, t);
            break;
        }
    }
    EXPECT_LT(longest_short, shortest_medium)
        << "SHORT apps must be shorter than every MEDIUM app";
    EXPECT_LT(longest_medium, shortest_long)
        << "MEDIUM apps must be shorter than every LONG app";
}

TEST(Process, CommandPoolRecyclesAcrossReplays)
{
    // The replay hot path must not allocate per command in steady
    // state: the pool's block count plateaus at the peak number of
    // concurrently live commands, independent of how many replays
    // (and therefore how many commands) the run retires.
    auto blocks_for = [](int replays) {
        SystemSpec spec;
        spec.benchmarks = {"sgemm"};
        spec.minReplays = replays;
        System system(spec);
        system.run(sim::seconds(20.0));
        // (Commands of the replay the stop condition interrupted are
        // still live, so free < allocated here; the plateau is the
        // meaningful number.)
        return system.commandPool().blocksAllocated();
    };
    std::size_t two = blocks_for(2);
    std::size_t eight = blocks_for(8);
    EXPECT_GT(two, 0u);
    EXPECT_EQ(two, eight)
        << "4x the replays must not grow the command pool";
}

TEST(Process, SystemValidatesSpec)
{
    SystemSpec empty;
    EXPECT_THROW(System{empty}, sim::FatalError);

    SystemSpec mismatch;
    mismatch.benchmarks = {"sgemm", "spmv"};
    mismatch.priorities = {1};
    EXPECT_THROW(System{mismatch}, sim::FatalError);

    SystemSpec bad_replays;
    bad_replays.benchmarks = {"sgemm"};
    bad_replays.minReplays = 0;
    EXPECT_THROW(System{bad_replays}, sim::FatalError);

    SystemSpec unknown;
    unknown.benchmarks = {"doom"};
    EXPECT_THROW(System{unknown}, sim::FatalError);
}

TEST(Process, HorizonViolationIsFatal)
{
    SystemSpec spec;
    spec.benchmarks = {"lbm"};
    spec.minReplays = 1;
    System system(spec);
    EXPECT_THROW(system.run(sim::microseconds(10.0)), sim::FatalError);
}
