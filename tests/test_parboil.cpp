/** Tests for the Parboil benchmark application models. */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sim/logging.hh"
#include "trace/parboil.hh"

using namespace gpump;
using namespace gpump::trace;

TEST(Parboil, SuiteHasTenBenchmarksInTableOrder)
{
    const auto &suite = parboilSuite();
    ASSERT_EQ(suite.size(), 10u);
    const char *expected[] = {"lbm", "histo", "tpacf", "spmv", "mri-q",
                              "sad", "sgemm", "stencil", "cutcp",
                              "mri-gridding"};
    for (std::size_t i = 0; i < suite.size(); ++i)
        EXPECT_EQ(suite[i].name, expected[i]);
}

TEST(Parboil, EverySpecValidates)
{
    for (const auto &s : parboilSuite())
        EXPECT_NO_THROW(s.validate()) << s.name;
}

TEST(Parboil, LaunchCountsMatchTable1)
{
    // Spot checks of the published launch counts.
    std::map<std::string, int> expected = {
        {"lbm.StreamCollide", 100},
        {"histo.final", 20},
        {"tpacf.genhists", 1},
        {"spmv.spmvjds", 50},
        {"mri-q.ComputeQ", 2},
        {"mri-q.ComputePhiMag", 1},
        {"sad.mbsadcalc", 1},
        {"sgemm.mysgemmNT", 1},
        {"stencil.block2Dregtiling", 100},
        {"cutcp.lattice6overlap", 11},
        {"mri-gridding.scaninter1", 9},
        {"mri-gridding.scanL1", 8},
        {"mri-gridding.uniformAdd", 8},
        {"mri-gridding.splitSort", 7},
        {"mri-gridding.splitRearrange", 7},
        {"mri-gridding.scaninter2", 9},
        {"mri-gridding.griddingGPU", 1},
    };
    for (const auto *k : allKernelProfiles()) {
        auto it = expected.find(k->fullName());
        if (it != expected.end()) {
            EXPECT_EQ(k->launches, it->second) << k->fullName();
        }
    }
}

TEST(Parboil, TraceLaunchCountsEqualProfileLaunches)
{
    // validate() checks this, but assert the invariant explicitly for
    // a benchmark with a complex loop structure.
    const BenchmarkSpec &mg = findBenchmark("mri-gridding");
    std::map<int, int> counts;
    for (const auto &op : mg.ops) {
        if (op.kind == TraceOp::Kind::KernelLaunch)
            ++counts[op.kernelIndex];
    }
    for (std::size_t i = 0; i < mg.kernels.size(); ++i)
        EXPECT_EQ(counts[static_cast<int>(i)], mg.kernels[i].launches)
            << mg.kernels[i].kernel;
}

TEST(Parboil, DurationClassesMatchTable1)
{
    // Class 1 (kernel execution time) and Class 2 (application
    // execution time) from Table 1.
    std::map<std::string, std::pair<DurationClass, DurationClass>>
        expected = {
            {"lbm", {DurationClass::Medium, DurationClass::Long}},
            {"histo", {DurationClass::Short, DurationClass::Medium}},
            {"tpacf", {DurationClass::Long, DurationClass::Medium}},
            {"spmv", {DurationClass::Short, DurationClass::Short}},
            {"mri-q", {DurationClass::Medium, DurationClass::Short}},
            {"sad", {DurationClass::Long, DurationClass::Long}},
            {"sgemm", {DurationClass::Medium, DurationClass::Short}},
            {"stencil", {DurationClass::Medium, DurationClass::Long}},
            {"cutcp", {DurationClass::Medium, DurationClass::Medium}},
            {"mri-gridding", {DurationClass::Long, DurationClass::Long}},
        };
    for (const auto &s : parboilSuite()) {
        auto it = expected.find(s.name);
        ASSERT_NE(it, expected.end());
        EXPECT_EQ(s.kernelClass, it->second.first) << s.name;
        EXPECT_EQ(s.appClass, it->second.second) << s.name;
    }
}

TEST(Parboil, TracesBeginAndEndOnHostSide)
{
    // Every application trace is bracketed by host activity: setup
    // before the first device op, post-processing after the last.
    for (const auto &s : parboilSuite()) {
        ASSERT_FALSE(s.ops.empty());
        EXPECT_EQ(s.ops.front().kind, TraceOp::Kind::CpuPhase) << s.name;
        EXPECT_EQ(s.ops.back().kind, TraceOp::Kind::CpuPhase) << s.name;
    }
}

TEST(Parboil, EveryAppTransfersInAndOut)
{
    for (const auto &s : parboilSuite()) {
        EXPECT_GT(s.bytesH2D(), 0) << s.name;
        EXPECT_GT(s.bytesD2H(), 0) << s.name;
        EXPECT_GT(s.cpuTime(), 0) << s.name;
    }
}

TEST(Parboil, FindBenchmarkLookups)
{
    EXPECT_EQ(findBenchmark("sgemm").name, "sgemm");
    EXPECT_THROW(findBenchmark("nope"), sim::FatalError);
}

TEST(Parboil, KernelNamesUnique)
{
    std::set<std::string> names;
    for (const auto *k : allKernelProfiles())
        EXPECT_TRUE(names.insert(k->fullName()).second) << k->fullName();
}

TEST(Parboil, DurationClassNames)
{
    EXPECT_STREQ(durationClassName(DurationClass::Short), "SHORT");
    EXPECT_STREQ(durationClassName(DurationClass::Medium), "MEDIUM");
    EXPECT_STREQ(durationClassName(DurationClass::Long), "LONG");
}
