/** Unit tests for the GPU memory model. */

#include <gtest/gtest.h>

#include <limits>

#include "memory/gpu_memory.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace gpump;
using namespace gpump::memory;

TEST(GpuMemory, AllocationAccounting)
{
    sim::StatRegistry reg;
    GpuMemory m(reg, GpuMemoryParams{});
    m.allocate(0, 1000);
    m.allocate(1, 500);
    m.allocate(0, 200);
    EXPECT_EQ(m.allocated(0), 1200);
    EXPECT_EQ(m.allocated(1), 500);
    EXPECT_EQ(m.totalAllocated(), 1700);
    m.free(0, 1200);
    EXPECT_EQ(m.allocated(0), 0);
    m.freeAll(1);
    EXPECT_EQ(m.totalAllocated(), 0);
}

TEST(GpuMemory, NoDemandPagingOverflowIsFatal)
{
    sim::StatRegistry reg;
    GpuMemoryParams p;
    p.capacity = 1000;
    GpuMemory m(reg, p);
    m.allocate(0, 900);
    EXPECT_THROW(m.allocate(1, 200), sim::FatalError)
        << "allocations from all contexts must fit in physical memory";
    EXPECT_EQ(m.totalAllocated(), 900) << "failed alloc changes nothing";
}

TEST(GpuMemory, CapacityCheckDoesNotOverflow)
{
    // The admission check is `bytes > capacity - total_`, not
    // `total_ + bytes > capacity`: the sum form overflows std::int64_t
    // for adversarial capacity/allocation pairs (signed overflow is
    // UB, and with wrapping semantics the oversized allocation would
    // be ADMITTED because the sum goes negative).
    sim::StatRegistry reg;
    GpuMemoryParams p;
    p.capacity = std::numeric_limits<std::int64_t>::max() - 10;
    GpuMemory m(reg, p);
    m.allocate(0, 1000);
    EXPECT_THROW(
        m.allocate(1, std::numeric_limits<std::int64_t>::max() - 500),
        sim::FatalError)
        << "near-INT64_MAX allocation must be rejected, not wrapped";
    EXPECT_EQ(m.totalAllocated(), 1000);
}

TEST(GpuMemory, CapacityBoundaryIsExact)
{
    sim::StatRegistry reg;
    GpuMemoryParams p;
    p.capacity = 1000;
    GpuMemory m(reg, p);
    m.allocate(0, 999);
    m.allocate(1, 1); // exactly full is legal
    EXPECT_EQ(m.totalAllocated(), 1000);
    EXPECT_THROW(m.allocate(2, 1), sim::FatalError)
        << "one byte past capacity must fail";
    m.free(1, 1);
    m.allocate(2, 1); // freed byte is reusable
    EXPECT_EQ(m.totalAllocated(), 1000);
}

TEST(GpuMemory, NegativeMoveBytesPanics)
{
    sim::StatRegistry reg;
    GpuMemory m(reg, GpuMemoryParams{});
    EXPECT_THROW(m.moveTime(-1, 13), sim::PanicError)
        << "a negative payload is a caller bug, not a zero-time move";
}

TEST(GpuMemory, FreeingUnownedPanics)
{
    sim::StatRegistry reg;
    GpuMemory m(reg, GpuMemoryParams{});
    m.allocate(0, 100);
    EXPECT_THROW(m.free(0, 200), sim::PanicError);
    EXPECT_THROW(m.free(3, 1), sim::PanicError);
}

TEST(GpuMemory, BandwidthShareMatchesTable1Model)
{
    sim::StatRegistry reg;
    GpuMemory m(reg, GpuMemoryParams{}); // 208 GB/s
    // One of 13 SMs gets 16 GB/s.
    EXPECT_DOUBLE_EQ(m.bandwidthShare(13), 16e9);
    // lbm.StreamCollide: (4*4320 regs + 0 shmem) * 15 TBs = 259200 B
    // at 16 GB/s = 16.2 us, the Table 1 "Save Time" value.
    EXPECT_EQ(m.moveTime(259200, 13), sim::microseconds(16.2));
}

TEST(GpuMemory, FullContextSaveTimeIsPaper44us)
{
    sim::StatRegistry reg;
    GpuMemory m(reg, GpuMemoryParams{});
    // The introduction quotes ~44 us to move the full 256 KB register
    // file + 48 KB shared memory of an SM at *peak* bandwidth... at
    // the full 208 GB/s the 304 KiB move takes ~1.5 us; the 44 us
    // figure assumes save + restore of all 13 SMs' worth of state.
    // What our model must reproduce exactly is the per-SM share case:
    std::int64_t full_sm = (256 + 48) * 1024;
    EXPECT_EQ(m.moveTime(full_sm, 13), 19456); // 19.456 us
}

TEST(GpuMemory, MoveTimeRoundsUp)
{
    sim::StatRegistry reg;
    GpuMemory m(reg, GpuMemoryParams{});
    EXPECT_EQ(m.moveTime(1, 13), 1) << "sub-ns moves round up to 1 ns";
    EXPECT_EQ(m.moveTime(0, 13), 0);
}

TEST(GpuMemory, InvalidShareCountPanics)
{
    sim::StatRegistry reg;
    GpuMemory m(reg, GpuMemoryParams{});
    EXPECT_THROW(m.bandwidthShare(0), sim::PanicError);
}
