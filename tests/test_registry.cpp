/**
 * Tests of the pluggable scheme registry (core/registry.hh): fail-fast
 * duplicate registration, sorted stable listings, tunable-default
 * round-trips through Config::merge, construction-time validation of
 * unknown/ill-typed tunables (with nearest-key suggestions), label
 * uniqueness across the registered cross-product, and out-of-tree
 * registration through the public surface only.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/adaptive.hh"
#include "core/policy.hh"
#include "core/timemux.hh"
#include "core/preemption.hh"
#include "harness/runner.hh"
#include "sim/logging.hh"
#include "workload/system.hh"

using namespace gpump;
using namespace gpump::core;

namespace {

/** Fatal-message helper: run @p fn, return the FatalError text. */
template <typename Fn>
std::string
fatalMessageOf(Fn &&fn)
{
    try {
        fn();
    } catch (const sim::FatalError &e) {
        return e.what();
    }
    ADD_FAILURE() << "expected sim::FatalError";
    return "";
}

struct Dummy
{
    virtual ~Dummy() = default;
};

using DummyRegistry = SchemeRegistry<Dummy>;

DummyRegistry::Descriptor
dummyDescriptor(const std::string &name)
{
    DummyRegistry::Descriptor d;
    d.name = name;
    d.doc = "a dummy";
    d.factory = [](const sim::Config &) {
        return std::make_unique<Dummy>();
    };
    return d;
}

} // namespace

TEST(SchemeRegistry, DuplicateRegistrationFailsFast)
{
    DummyRegistry reg("dummy");
    reg.add(dummyDescriptor("alpha"));
    EXPECT_THROW(reg.add(dummyDescriptor("alpha")), sim::FatalError);

    auto aliased = dummyDescriptor("beta");
    aliased.aliases = {"b"};
    reg.add(std::move(aliased));
    // Both the canonical name and the alias are reserved.
    EXPECT_THROW(reg.add(dummyDescriptor("b")), sim::FatalError);
    auto clash = dummyDescriptor("gamma");
    clash.aliases = {"beta"};
    EXPECT_THROW(reg.add(std::move(clash)), sim::FatalError);

    // Self-duplicates fail fast too: an alias equal to the own name,
    // or repeated within the alias list.
    auto self_alias = dummyDescriptor("delta");
    self_alias.aliases = {"delta"};
    EXPECT_THROW(reg.add(std::move(self_alias)), sim::FatalError);
    auto repeated = dummyDescriptor("epsilon");
    repeated.aliases = {"e", "e"};
    EXPECT_THROW(reg.add(std::move(repeated)), sim::FatalError);
}

TEST(SchemeRegistry, RejectsEmptyNameMissingFactoryAndStrayTunable)
{
    DummyRegistry reg("dummy");
    EXPECT_THROW(reg.add(dummyDescriptor("")), sim::FatalError);

    auto no_factory = dummyDescriptor("nf");
    no_factory.factory = nullptr;
    EXPECT_THROW(reg.add(std::move(no_factory)), sim::FatalError);

    // A tunable outside the claimed namespace could never be
    // validated; registration refuses it up front.
    auto stray = dummyDescriptor("stray");
    stray.configPrefix = "stray";
    stray.tunables = {{"other.knob", TunableType::Int, "1", "doc"}};
    EXPECT_THROW(reg.add(std::move(stray)), sim::FatalError);

    // A dotted prefix would never match validate()'s first-segment
    // lookup, silently disabling validation for the registrant.
    auto dotted = dummyDescriptor("dotted");
    dotted.configPrefix = "a.b";
    EXPECT_THROW(reg.add(std::move(dotted)), sim::FatalError);

    // Two registrants cannot claim the same namespace: validation
    // binds a prefix to exactly one owner, so the second claimant's
    // tunables would be rejected as typos of the first's.
    auto first = dummyDescriptor("first");
    first.configPrefix = "shared";
    first.tunables = {{"shared.a", TunableType::Int, "1", "doc"}};
    reg.add(std::move(first));
    auto second = dummyDescriptor("second");
    second.configPrefix = "shared";
    second.tunables = {{"shared.b", TunableType::Int, "2", "doc"}};
    EXPECT_THROW(reg.add(std::move(second)), sim::FatalError);
}

TEST(SchemeRegistry, ListIsSortedStableAndAliasesResolve)
{
    DummyRegistry reg("dummy");
    reg.add(dummyDescriptor("zeta"));
    reg.add(dummyDescriptor("alpha"));
    auto mid = dummyDescriptor("mid");
    mid.aliases = {"m"};
    reg.add(std::move(mid));

    std::vector<std::string> names = reg.list();
    EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zeta"}));
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    EXPECT_EQ(reg.list(), names); // stable across calls

    ASSERT_NE(reg.find("m"), nullptr);
    EXPECT_EQ(reg.find("m")->name, "mid"); // alias -> canonical
    EXPECT_EQ(reg.find("nope"), nullptr);
    EXPECT_EQ(reg.size(), 3u); // aliases not counted
}

TEST(SchemeRegistry, UnknownNameErrorListsEveryEntry)
{
    std::string msg = fatalMessageOf(
        [] { makePolicy("lottery", sim::Config()); });
    // The error enumerates the live registry so users see what exists.
    for (const std::string &name : policyRegistry().list())
        EXPECT_NE(msg.find(name), std::string::npos) << msg;

    msg = fatalMessageOf([] { makeMechanism("bogus"); });
    for (const std::string &name : mechanismRegistry().list())
        EXPECT_NE(msg.find(name), std::string::npos) << msg;
}

TEST(SchemeRegistry, BuiltinsAreRegistered)
{
    core::linkBuiltinPolicies();
    core::linkBuiltinMechanisms();
    std::vector<std::string> policies = policyRegistry().list();
    for (const char *p : {"fcfs", "npq", "ppq_excl", "ppq_shared",
                          "dss", "tmux", "ppq_aging"}) {
        EXPECT_TRUE(std::find(policies.begin(), policies.end(), p) !=
                    policies.end())
            << p;
    }
    EXPECT_GE(policies.size(), 6u);

    std::vector<std::string> mechanisms = mechanismRegistry().list();
    for (const char *m : {"context_switch", "draining", "adaptive"}) {
        EXPECT_TRUE(std::find(mechanisms.begin(), mechanisms.end(),
                              m) != mechanisms.end())
            << m;
    }
    EXPECT_GE(mechanisms.size(), 3u);

    // Every registrant documents itself.
    for (const std::string &p : policies)
        EXPECT_FALSE(policyRegistry().at(p).doc.empty()) << p;
    for (const std::string &m : mechanisms)
        EXPECT_FALSE(mechanismRegistry().at(m).doc.empty()) << m;
}

TEST(SchemeRegistry, TunableDefaultsRoundTripThroughMerge)
{
    core::linkBuiltinPolicies();
    core::linkBuiltinMechanisms();
    auto check = [](const Tunable &t) {
        if (t.def.empty())
            return; // contextual default, set at assembly
        sim::Config defaults;
        defaults.set(t.key, t.def);
        sim::Config merged;
        merged.set("unrelated.key", static_cast<std::int64_t>(7));
        merged.merge(defaults);
        // The default survives a merge and parses as its declared
        // type; construction-time validation does the same getter
        // calls, so a bad default would also fail every build.
        switch (t.type) {
          case TunableType::Int:
            EXPECT_EQ(merged.getInt(t.key, -1),
                      defaults.getInt(t.key, -2))
                << t.key;
            break;
          case TunableType::Double:
            EXPECT_EQ(merged.getDouble(t.key, -1.0),
                      defaults.getDouble(t.key, -2.0))
                << t.key;
            break;
          case TunableType::Bool:
            EXPECT_EQ(merged.getBool(t.key, false),
                      defaults.getBool(t.key, true))
                << t.key;
            break;
          case TunableType::String:
            EXPECT_EQ(merged.getString(t.key, "a"), t.def) << t.key;
            break;
        }
    };
    for (const std::string &p : policyRegistry().list())
        for (const Tunable &t : policyRegistry().at(p).tunables)
            check(t);
    for (const std::string &m : mechanismRegistry().list())
        for (const Tunable &t : mechanismRegistry().at(m).tunables)
            check(t);
}

TEST(SchemeRegistry, UnknownDssKeyIsRejectedWithSuggestion)
{
    // Regression: unknown keys under a claimed namespace used to be
    // silently ignored (a typo'd ablation ran the default instead).
    sim::Config cfg;
    cfg.set("dss.tokens_per_kerel", static_cast<std::int64_t>(2));
    std::string msg =
        fatalMessageOf([&] { makePolicy("dss", cfg); });
    EXPECT_NE(msg.find("dss.tokens_per_kerel"), std::string::npos)
        << msg;
    // ... and the nearest declared tunable is suggested.
    EXPECT_NE(msg.find("dss.tokens_per_kernel"), std::string::npos)
        << msg;

    // The same config is rejected even when constructing a *different*
    // policy: the namespace is claimed, so the key cannot be a no-op.
    EXPECT_THROW(makePolicy("fcfs", cfg), sim::FatalError);

    // A key nothing like any declared tunable gets no misleading
    // "did you mean"; the error enumerates the declared keys instead.
    sim::Config far_off;
    far_off.set("dss.verbose", std::string("yes"));
    std::string far_msg =
        fatalMessageOf([&] { makePolicy("dss", far_off); });
    EXPECT_EQ(far_msg.find("did you mean"), std::string::npos)
        << far_msg;
    EXPECT_NE(far_msg.find("dss.retarget"), std::string::npos)
        << far_msg;

    // And through the full System assembly path.
    workload::SystemSpec spec;
    spec.benchmarks = {"sgemm"};
    spec.policy = "dss";
    EXPECT_THROW(workload::System(spec, cfg), sim::FatalError);
}

TEST(SchemeRegistry, IllTypedTunableValueIsRejected)
{
    sim::Config cfg;
    cfg.set("dss.retarget", std::string("banana"));
    EXPECT_THROW(makePolicy("dss", cfg), sim::FatalError);

    sim::Config mcfg;
    mcfg.set("adaptive.bias", std::string("fast"));
    EXPECT_THROW(makeMechanism("adaptive", mcfg), sim::FatalError);

    // Unclaimed namespaces stay untouched: other subsystems own them.
    sim::Config other;
    other.set("gpu.num_sms", static_cast<std::int64_t>(4));
    other.set("unclaimed.whatever", "fine");
    EXPECT_NO_THROW(makePolicy("fcfs", other));
}

TEST(SchemeRegistry, SchemeLabelsNeverCollideAcrossRegistry)
{
    core::linkBuiltinPolicies();
    core::linkBuiltinMechanisms();
    std::set<std::string> labels;
    std::size_t combos = 0;
    for (const std::string &p : policyRegistry().list()) {
        const auto &pd = policyRegistry().at(p);
        std::vector<std::string> mechs =
            pd.usesMechanism ? mechanismRegistry().list()
                             : std::vector<std::string>{
                                   "context_switch"};
        for (const std::string &m : mechs) {
            for (const char *xfer : {"fcfs", "priority"}) {
                harness::Scheme s{p, m, xfer};
                EXPECT_TRUE(labels.insert(s.label()).second)
                    << "label collision: " << s.label();
                ++combos;
            }
        }
    }
    EXPECT_EQ(labels.size(), combos);

    // Aliases canonicalize to the same label as the full name, so an
    // aliased spelling is the *same* scheme, not a colliding one.
    harness::Scheme cs{"dss", "context_switch", "fcfs"};
    harness::Scheme cs_alias{"dss", "cs", "fcfs"};
    EXPECT_EQ(cs.label(), cs_alias.label());
}

TEST(SchemeRegistry, OutOfTreeRegistrationConstructsAndRuns)
{
    // The examples/custom_policy.cpp recipe, in miniature: register
    // through the public surface only, then run by name.
    static bool constructed = false;
    PolicyRegistry::Descriptor d;
    d.name = "test_fcfs_clone";
    d.doc = "registered from a test";
    d.usesMechanism = false;
    d.factory = [](const sim::Config &) {
        constructed = true;
        // Reuse a built-in implementation: the registry only needs a
        // working factory, not a new class.
        return policyRegistry().at("fcfs").factory(sim::Config());
    };
    policyRegistry().add(std::move(d));

    workload::SystemSpec spec;
    spec.benchmarks = {"sgemm"};
    spec.policy = "test_fcfs_clone";
    spec.minReplays = 1;
    workload::System system(spec);
    auto result = system.run(sim::seconds(60.0));
    EXPECT_TRUE(constructed);
    EXPECT_EQ(result.runs.size(), 1u);
    EXPECT_GT(result.meanTurnaroundUs.at(0), 0.0);
}

TEST(SchemeRegistry, DeclaredDefaultsReachTheFactory)
{
    // make() merges the declared non-contextual defaults into the
    // factory's config, so the Tunable.def a scheme advertises is the
    // value a default construction actually uses.
    auto policy = makePolicy("tmux", sim::Config());
    auto *tmux = dynamic_cast<core::TimeMuxPolicy *>(policy.get());
    ASSERT_NE(tmux, nullptr);
    EXPECT_EQ(tmux->quantum(), sim::microseconds(200.0));

    auto mech = makeMechanism("adaptive");
    auto *adaptive =
        dynamic_cast<core::AdaptiveMechanism *>(mech.get());
    ASSERT_NE(adaptive, nullptr);
    EXPECT_EQ(adaptive->bias(), 1.0);
}

TEST(SchemeRegistry, AdaptiveMechanismHasDeclaredBias)
{
    const auto &d = mechanismRegistry().at("adaptive");
    ASSERT_EQ(d.tunables.size(), 1u);
    EXPECT_EQ(d.tunables[0].key, "adaptive.bias");
    EXPECT_EQ(d.tunables[0].type, TunableType::Double);
    EXPECT_THROW(
        [] {
            sim::Config cfg;
            cfg.set("adaptive.bias", -1.0);
            makeMechanism("adaptive", cfg);
        }(),
        sim::FatalError);
}
