/**
 * @file
 * Shared test fixtures: synthetic kernel profiles and a miniature
 * device rig (dispatcher + engines + framework) that tests drive by
 * enqueueing commands directly, without the workload layer.
 */

#ifndef GPUMP_TESTS_TEST_UTIL_HH
#define GPUMP_TESTS_TEST_UTIL_HH

#include <memory>
#include <string>
#include <vector>

#include "core/framework.hh"
#include "core/policy.hh"
#include "core/preemption.hh"
#include "gpu/dispatcher.hh"
#include "gpu/transfer_engine.hh"
#include "memory/gpu_memory.hh"
#include "memory/pcie.hh"
#include "sim/simulation.hh"
#include "trace/kernel_profile.hh"

namespace gpump {
namespace test {

/** A synthetic kernel profile with direct control of the knobs that
 *  matter to scheduling tests. */
inline trace::KernelProfile
makeProfile(const std::string &name, int num_tbs, double tb_us,
            int regs_per_tb = 4096, int shmem_per_tb = 0,
            int threads_per_tb = 128)
{
    trace::KernelProfile k;
    k.benchmark = "test";
    k.kernel = name;
    k.launches = 1;
    k.numThreadBlocks = num_tbs;
    k.timePerTbUs = tb_us;
    k.avgTimeUs = tb_us * num_tbs;
    k.sharedMemPerTb = shmem_per_tb;
    k.regsPerTb = regs_per_tb;
    k.threadsPerTb = threads_per_tb;
    return k;
}

/** A self-contained device: everything but processes. */
struct DeviceRig
{
    sim::Simulation sim;
    gpu::GpuParams params;
    memory::GpuMemory gmem;
    memory::PcieBus pcie;
    gpu::TransferEngine xfer;
    gpu::Dispatcher dispatcher;
    core::SchedulingFramework framework;

    explicit DeviceRig(const std::string &policy = "fcfs",
                       const std::string &mechanism = "context_switch",
                       sim::Config cfg = sim::Config(),
                       std::uint64_t seed = 1,
                       gpu::TransferEngine::Policy xfer_policy =
                           gpu::TransferEngine::Policy::Fcfs)
        : sim(seed, std::move(cfg)),
          params(gpu::GpuParams::fromConfig(sim.config())),
          gmem(sim.stats(),
               memory::GpuMemoryParams::fromConfig(sim.config())),
          pcie(sim.stats(), memory::PcieParams::fromConfig(sim.config())),
          xfer(sim, pcie, xfer_policy),
          dispatcher(sim, xfer),
          framework(sim, params, gmem, dispatcher)
    {
        xfer.setCompletionNotifier([this](gpu::CommandQueue *q) {
            dispatcher.onCommandCompleted(q);
        });
        framework.setTransferEngine(&xfer);
        framework.setMechanism(
            core::makeMechanism(mechanism, sim.config()));
        framework.setPolicy(core::makePolicy(policy, sim.config()));
    }

    /** Create a hardware queue for a context. */
    gpu::CommandQueue *queueFor(sim::ContextId ctx)
    {
        return dispatcher.createQueue(ctx, params.numHwQueues);
    }

    /** Enqueue a kernel command now; returns the command. */
    gpu::CommandPtr
    launch(gpu::CommandQueue *q, const trace::KernelProfile *profile,
           int priority = 0)
    {
        auto cmd = gpu::Command::makeKernel(q->ctx(), priority, profile);
        dispatcher.enqueue(q, cmd);
        return cmd;
    }

    /** Run the event loop to completion (or a time limit). */
    sim::SimTime run(sim::SimTime limit = sim::maxTime)
    {
        return sim.run(limit);
    }
};

} // namespace test
} // namespace gpump

#endif // GPUMP_TESTS_TEST_UTIL_HH
