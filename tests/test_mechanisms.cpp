/**
 * Tests of the two preemption mechanisms (Section 3.2): latency
 * models, state handling and the PTBQ round trip.
 */

#include <gtest/gtest.h>

#include <utility>

#include "core/adaptive.hh"
#include "sim/logging.hh"
#include "tests/test_util.hh"
#include "workload/system.hh"

using namespace gpump;
using test::DeviceRig;

namespace {

/**
 * Launch a long low-priority kernel, let it occupy the engine, then
 * launch a high-priority kernel under PPQ to force preemption of all
 * SMs.  Returns the observed per-SM preemption latencies.
 */
struct PreemptionProbe : core::EngineObserver
{
    sim::Simulation *sim = nullptr;
    sim::SimTime requestAt = -1;
    std::vector<sim::SimTime> latencies;

    void preemptionRequested(const gpu::Sm &, const gpu::KernelExec &,
                             const gpu::KernelExec &) override
    {
        if (requestAt < 0)
            requestAt = sim->now();
    }
    void preemptionCompleted(const gpu::Sm &) override
    {
        latencies.push_back(sim->now() - requestAt);
    }
};

} // namespace

TEST(ContextSwitch, SaveLatencyMatchesContextSize)
{
    DeviceRig rig("ppq_excl", "context_switch");
    PreemptionProbe probe;
    probe.sim = &rig.sim;
    rig.framework.setObserver(&probe);

    // lo: occupancy 4 (512 threads/TB), 16 KiB of regs per TB ->
    // context = 4 TBs * 4096 regs * 4 B = 64 KiB per SM.
    auto lo = test::makeProfile("lo", 2000, 1000.0, 4096, 0, 512);
    auto hi = test::makeProfile("hi", 13, 1.0);
    rig.launch(rig.queueFor(0), &lo, 0);
    rig.run(sim::microseconds(100.0));
    rig.launch(rig.queueFor(1), &hi, 9);
    rig.run();

    ASSERT_FALSE(probe.latencies.empty());
    // Expected: pipeline drain (0.5 us) + 65536 B / 16 GB/s = 4.096 us.
    sim::SimTime expected = rig.params.pipelineDrainLatency +
        rig.gmem.moveTime(4 * 4096 * 4, rig.params.numSms);
    for (sim::SimTime lat : probe.latencies)
        EXPECT_EQ(lat, expected);
}

TEST(ContextSwitch, SavedBytesAccounted)
{
    DeviceRig rig("ppq_excl", "context_switch");
    auto lo = test::makeProfile("lo", 2000, 1000.0, 4096, 256, 512);
    // hi at occupancy 1 (2048 threads/TB) with 13 TBs needs all SMs.
    auto hi = test::makeProfile("hi", 13, 1.0, 4096, 0, 2048);
    rig.launch(rig.queueFor(0), &lo, 0);
    rig.run(sim::microseconds(100.0));
    ASSERT_EQ(rig.framework.preemptions(), 0u);
    rig.launch(rig.queueFor(1), &hi, 9);
    rig.run();

    EXPECT_EQ(rig.framework.preemptions(), 13u)
        << "PPQ must preempt every SM of the low-priority kernel";
    // 13 SMs x 4 TBs x (4*4096 + 256) B.
    EXPECT_DOUBLE_EQ(rig.framework.contextBytesSaved(),
                     13.0 * 4.0 * (4.0 * 4096.0 + 256.0));
    EXPECT_EQ(rig.framework.kernelsCompleted(), 2u);
}

TEST(ContextSwitch, PreemptedWorkResumesAndCompletes)
{
    DeviceRig rig("ppq_excl", "context_switch");
    auto lo = test::makeProfile("lo", 100, 200.0);
    auto hi = test::makeProfile("hi", 26, 50.0);
    bool lo_done = false;
    auto lo_cmd = gpu::Command::makeKernel(0, 0, &lo);
    lo_cmd->onComplete = [&] { lo_done = true; };
    rig.dispatcher.enqueue(rig.queueFor(0), lo_cmd);
    rig.run(sim::microseconds(50.0));
    rig.launch(rig.queueFor(1), &hi, 5);
    rig.run();
    EXPECT_TRUE(lo_done);
    EXPECT_EQ(rig.framework.tbsCompleted(), 126u)
        << "every preempted TB must eventually complete exactly once";
}

TEST(ContextSwitch, RemainingWorkIsPreservedNotRestarted)
{
    // A TB preempted near its end must finish after (restore +
    // remainder), not after a full re-execution.
    DeviceRig rig("ppq_excl", "context_switch");
    // One TB per SM (threads 2048): 13 TBs of 100 us.
    auto lo = test::makeProfile("lo", 13, 100.0, 4096, 0, 2048);
    auto hi = test::makeProfile("hi", 13, 1.0, 4096, 0, 2048);

    sim::SimTime lo_end = -1;
    auto lo_cmd = gpu::Command::makeKernel(0, 0, &lo);
    lo_cmd->onComplete = [&] { lo_end = rig.sim.now(); };
    rig.dispatcher.enqueue(rig.queueFor(0), lo_cmd);
    // Preempt at t=80us: 20us of work remains per TB.
    rig.run(sim::microseconds(80.0));
    rig.launch(rig.queueFor(1), &hi, 5);
    rig.run();

    ASSERT_GT(lo_end, 0);
    // Generous upper bound: far below a full 100 us re-execution on
    // top of the preemption round trip.
    EXPECT_LT(lo_end, sim::microseconds(80.0 + 1.0 + 10.0 + 2.0 + 5.0 +
                                        20.0 + 30.0))
        << "preempted TBs appear to restart from scratch";
}

TEST(Draining, LatencyBoundedByResidentRemainder)
{
    DeviceRig rig("ppq_excl", "draining");
    PreemptionProbe probe;
    probe.sim = &rig.sim;
    rig.framework.setObserver(&probe);

    auto lo = test::makeProfile("lo", 2000, 50.0);
    auto hi = test::makeProfile("hi", 13, 1.0);
    rig.launch(rig.queueFor(0), &lo, 0);
    rig.run(sim::microseconds(10.0));
    rig.launch(rig.queueFor(1), &hi, 9);
    rig.run();

    ASSERT_FALSE(probe.latencies.empty());
    for (sim::SimTime lat : probe.latencies) {
        EXPECT_LE(lat, sim::microseconds(50.0))
            << "drain cannot exceed the longest resident TB remainder";
        EXPECT_GT(lat, 0);
    }
}

TEST(Draining, NoContextTrafficAndNoPtbq)
{
    DeviceRig rig("ppq_excl", "draining");
    auto lo = test::makeProfile("lo", 2000, 50.0);
    auto hi = test::makeProfile("hi", 13, 1.0);
    rig.launch(rig.queueFor(0), &lo, 0);
    rig.run(sim::microseconds(10.0));
    rig.launch(rig.queueFor(1), &hi, 9);
    rig.run(sim::microseconds(200.0));

    EXPECT_GT(rig.framework.preemptions(), 0u);
    EXPECT_DOUBLE_EQ(rig.framework.contextBytesSaved(), 0.0)
        << "draining must not move any context bytes";
    rig.run();
}

TEST(Draining, DrainedTbsRunExactlyOnce)
{
    DeviceRig rig("ppq_excl", "draining");
    auto lo = test::makeProfile("lo", 100, 60.0);
    auto hi = test::makeProfile("hi", 26, 20.0);
    rig.launch(rig.queueFor(0), &lo, 0);
    rig.run(sim::microseconds(30.0));
    rig.launch(rig.queueFor(1), &hi, 5);
    rig.run();
    EXPECT_EQ(rig.framework.tbsCompleted(), 126u);
    EXPECT_EQ(rig.framework.kernelsCompleted(), 2u);
}

TEST(Mechanisms, FactoryNamesAndAliases)
{
    EXPECT_STREQ(core::makeMechanism("context_switch")->name(),
                 "context_switch");
    EXPECT_STREQ(core::makeMechanism("cs")->name(), "context_switch");
    EXPECT_STREQ(core::makeMechanism("draining")->name(), "draining");
    EXPECT_STREQ(core::makeMechanism("drain")->name(), "draining");
    EXPECT_STREQ(core::makeMechanism("adaptive")->name(), "adaptive");
    EXPECT_THROW(core::makeMechanism("bogus"), sim::FatalError);
    EXPECT_TRUE(core::makeMechanism("cs")->savesContext());
    EXPECT_FALSE(core::makeMechanism("draining")->savesContext());
    // Adaptive may context-switch, so the PTBQs must exist.
    EXPECT_TRUE(core::makeMechanism("adaptive")->savesContext());
}

namespace {

/** Install an AdaptiveMechanism on a rig, keeping a typed handle. */
core::AdaptiveMechanism *
installAdaptive(DeviceRig &rig, double bias)
{
    auto mech = std::make_unique<core::AdaptiveMechanism>(bias);
    core::AdaptiveMechanism *raw = mech.get();
    rig.framework.setMechanism(std::move(mech));
    return raw;
}

} // namespace

TEST(Adaptive, DrainsWhenResidentRemainderIsCheap)
{
    DeviceRig rig("ppq_excl", "context_switch");
    core::AdaptiveMechanism *mech = installAdaptive(rig, 1.0);

    // Short TBs (2 us) with a fat context: 16 TBs/SM x 16 KiB = 256
    // KiB per SM -> modeled save ~16.5 us.  Draining (<= 2 us) wins.
    auto lo = test::makeProfile("lo", 2000, 2.0, 4096, 0, 128);
    auto hi = test::makeProfile("hi", 13, 1.0);
    rig.launch(rig.queueFor(0), &lo, 0);
    rig.run(sim::microseconds(10.0));
    rig.launch(rig.queueFor(1), &hi, 9);
    rig.run();

    EXPECT_GT(mech->drainsChosen(), 0u);
    EXPECT_EQ(mech->switchesChosen(), 0u);
    EXPECT_DOUBLE_EQ(rig.framework.contextBytesSaved(), 0.0)
        << "cheap drains must not move context bytes";
    EXPECT_EQ(rig.framework.kernelsCompleted(), 2u);
}

TEST(Adaptive, SwitchesWhenDrainingWouldStall)
{
    DeviceRig rig("ppq_excl", "context_switch");
    core::AdaptiveMechanism *mech = installAdaptive(rig, 1.0);

    // Long TBs (1000 us) with a slim context: 4 TBs/SM x 16 KiB = 64
    // KiB per SM -> modeled save ~4.6 us.  Context switch wins.
    auto lo = test::makeProfile("lo", 2000, 1000.0, 4096, 0, 512);
    auto hi = test::makeProfile("hi", 13, 1.0);
    rig.launch(rig.queueFor(0), &lo, 0);
    rig.run(sim::microseconds(100.0));
    rig.launch(rig.queueFor(1), &hi, 9);
    rig.run(sim::milliseconds(20.0));

    EXPECT_GT(mech->switchesChosen(), 0u);
    EXPECT_EQ(mech->drainsChosen(), 0u);
    EXPECT_GT(rig.framework.contextBytesSaved(), 0.0);
}

TEST(Adaptive, BiasSkewsTheDecision)
{
    // Same workload, two biases: bias 0 can only drain when the SM is
    // already at a block boundary (estimate 0), so it context-switches
    // here; a huge bias always drains.
    auto run_with = [](double bias) {
        DeviceRig rig("ppq_excl", "context_switch");
        core::AdaptiveMechanism *mech = installAdaptive(rig, bias);
        auto lo = test::makeProfile("lo", 2000, 50.0);
        auto hi = test::makeProfile("hi", 13, 1.0);
        rig.launch(rig.queueFor(0), &lo, 0);
        rig.run(sim::microseconds(10.0));
        rig.launch(rig.queueFor(1), &hi, 9);
        rig.run(sim::milliseconds(10.0));
        return std::make_pair(mech->drainsChosen(),
                              mech->switchesChosen());
    };
    auto [drains0, switches0] = run_with(0.0);
    EXPECT_EQ(drains0, 0u);
    EXPECT_GT(switches0, 0u);
    auto [drainsInf, switchesInf] = run_with(1e12);
    EXPECT_GT(drainsInf, 0u);
    EXPECT_EQ(switchesInf, 0u);
}

TEST(Adaptive, ContendedSaveEstimateCountsTransferBacklog)
{
    // Under gmem.contended_switch the real save rides the transfer
    // engine behind whatever is already queued, so the drain-vs-switch
    // comparison must price that backlog in.  Same workload twice:
    // long TBs (drain estimate ~900 us) that adaptive would normally
    // context-switch away (save ~ one small transfer), except that a
    // 32 MiB application copy occupies the engine, pushing the true
    // save cost past the drain estimate.  A backlog-blind estimate
    // (the pre-queue-aware model) picks the switch and then stalls
    // behind the copy anyway.
    auto run_with = [](std::int64_t copy_bytes) {
        sim::Config cfg;
        cfg.set("gmem.contended_switch", true);
        DeviceRig rig("ppq_excl", "context_switch", cfg);
        core::AdaptiveMechanism *mech = installAdaptive(rig, 1.0);
        auto lo = test::makeProfile("lo", 2000, 1000.0, 4096, 0, 512);
        auto hi = test::makeProfile("hi", 13, 1.0, 4096, 0, 2048);
        rig.launch(rig.queueFor(0), &lo, 0);
        rig.run(sim::microseconds(100.0));
        if (copy_bytes > 0) {
            auto copy = gpu::Command::makeMemcpy(
                2, 0, gpu::Command::Kind::MemcpyH2D, copy_bytes);
            rig.dispatcher.enqueue(rig.queueFor(2), copy);
        }
        rig.launch(rig.queueFor(1), &hi, 9);
        rig.run(sim::milliseconds(50.0));
        return std::make_pair(mech->drainsChosen(),
                              mech->switchesChosen());
    };

    auto [drains_idle, switches_idle] = run_with(0);
    EXPECT_EQ(drains_idle, 0u) << "idle engine: the switch stays cheap";
    EXPECT_GT(switches_idle, 0u);

    auto [drains_busy, switches_busy] = run_with(32ll << 20);
    EXPECT_GT(drains_busy, 0u)
        << "a queued 32 MiB copy must make draining the cheaper choice";
    EXPECT_EQ(switches_busy, 0u);
}

TEST(Adaptive, EndToEndThroughSystemSpec)
{
    // The mechanism resolves by name through the full workload stack
    // and finishes a real multiprogrammed run.
    workload::SystemSpec spec;
    spec.benchmarks = {"sgemm", "mri-q"};
    spec.priorities = {0, 5};
    spec.policy = "ppq_shared";
    spec.mechanism = "adaptive";
    spec.minReplays = 2;
    workload::System system(spec);
    auto result = system.run(sim::seconds(60.0));
    for (const auto &runs : result.runs)
        EXPECT_GE(runs.size(), 2u);
}

TEST(Mechanisms, ContextSwitchBeatsDrainingForLongTbs)
{
    // The paper's central comparison: for kernels with long thread
    // blocks, context switch preempts faster than draining.
    auto run_with = [](const std::string &mech) {
        DeviceRig rig("ppq_excl", mech);
        PreemptionProbe probe;
        probe.sim = &rig.sim;
        rig.framework.setObserver(&probe);
        // sgemm-like: 98.56 us TBs, low register use.
        auto lo = test::makeProfile("lo", 2000, 98.56, 4480, 512, 128);
        auto hi = test::makeProfile("hi", 13, 1.0);
        rig.launch(rig.queueFor(0), &lo, 0);
        rig.run(sim::microseconds(5.0));
        rig.launch(rig.queueFor(1), &hi, 9);
        rig.run(sim::milliseconds(5.0));
        double sum = 0;
        for (auto l : probe.latencies)
            sum += static_cast<double>(l);
        return probe.latencies.empty()
            ? 1e18
            : sum / static_cast<double>(probe.latencies.size());
    };
    double cs = run_with("context_switch");
    double drain = run_with("draining");
    EXPECT_LT(cs, drain)
        << "context switch must preempt long-TB kernels faster";
}
