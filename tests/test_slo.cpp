/**
 * Unit tests for metrics/slo.hh: exact nearest-rank percentiles with
 * pinned small-sample semantics (the PR's percentile edge cases:
 * n < 100, empty sets, single samples).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "metrics/slo.hh"

using namespace gpump;
using metrics::percentileSorted;
using metrics::summarizeLatencies;

TEST(Percentile, EmptyIsNaN)
{
    EXPECT_TRUE(std::isnan(percentileSorted({}, 0.5)));
    EXPECT_TRUE(std::isnan(percentileSorted({}, 0.99)));
}

TEST(Percentile, SingleSampleIsEveryPercentile)
{
    std::vector<double> one{7.5};
    EXPECT_EQ(percentileSorted(one, 0.0), 7.5);
    EXPECT_EQ(percentileSorted(one, 0.5), 7.5);
    EXPECT_EQ(percentileSorted(one, 0.99), 7.5);
    EXPECT_EQ(percentileSorted(one, 0.999), 7.5);
    EXPECT_EQ(percentileSorted(one, 1.0), 7.5);
}

TEST(Percentile, NearestRankOnSmallSets)
{
    std::vector<double> v{10, 20, 30, 40};
    // ceil(0.5 * 4) = 2 -> second smallest.
    EXPECT_EQ(percentileSorted(v, 0.50), 20);
    // ceil(0.25 * 4) = 1 -> minimum.
    EXPECT_EQ(percentileSorted(v, 0.25), 10);
    // Any q with ceil(q n) = n -> maximum; for n < 100 that includes
    // p99 and p999 — tails degrade to the max, never interpolate.
    EXPECT_EQ(percentileSorted(v, 0.99), 40);
    EXPECT_EQ(percentileSorted(v, 0.999), 40);
}

TEST(Percentile, ExactRanksAtScale)
{
    std::vector<double> v;
    for (int i = 1; i <= 1000; ++i)
        v.push_back(i); // sorted 1..1000
    EXPECT_EQ(percentileSorted(v, 0.50), 500);
    EXPECT_EQ(percentileSorted(v, 0.99), 990);
    EXPECT_EQ(percentileSorted(v, 0.999), 999);
    EXPECT_EQ(percentileSorted(v, 1.0), 1000);
}

TEST(Percentile, OutOfRangeQuantilesClampToExtremes)
{
    std::vector<double> v{1, 2, 3};
    EXPECT_EQ(percentileSorted(v, -0.5), 1);
    EXPECT_EQ(percentileSorted(v, 0.0), 1);
    EXPECT_EQ(percentileSorted(v, 1.5), 3);
}

TEST(Summary, EmptyIsAllNaNWithZeroCount)
{
    metrics::LatencySummary s = summarizeLatencies({});
    EXPECT_EQ(s.n, 0);
    EXPECT_TRUE(std::isnan(s.mean));
    EXPECT_TRUE(std::isnan(s.p50));
    EXPECT_TRUE(std::isnan(s.p99));
    EXPECT_TRUE(std::isnan(s.p999));
    EXPECT_TRUE(std::isnan(s.max));
}

TEST(Summary, SingleRequestStream)
{
    metrics::LatencySummary s = summarizeLatencies({42.0});
    EXPECT_EQ(s.n, 1);
    EXPECT_EQ(s.mean, 42.0);
    EXPECT_EQ(s.p50, 42.0);
    EXPECT_EQ(s.p99, 42.0);
    EXPECT_EQ(s.p999, 42.0);
    EXPECT_EQ(s.max, 42.0);
}

TEST(Summary, SortsInputAndComputesExactOrderStatistics)
{
    metrics::LatencySummary s =
        summarizeLatencies({30.0, 10.0, 40.0, 20.0});
    EXPECT_EQ(s.n, 4);
    EXPECT_EQ(s.mean, 25.0);
    EXPECT_EQ(s.p50, 20.0);
    EXPECT_EQ(s.p99, 40.0); // n < 100: tail percentiles = max
    EXPECT_EQ(s.p999, 40.0);
    EXPECT_EQ(s.max, 40.0);
}

TEST(Summary, TailSeparatesFromMedianAtScale)
{
    std::vector<double> v(999, 1.0);
    v.push_back(1000.0); // one straggler in a thousand
    metrics::LatencySummary s = summarizeLatencies(v);
    EXPECT_EQ(s.p50, 1.0);
    EXPECT_EQ(s.p99, 1.0);
    EXPECT_EQ(s.p999, 1.0); // rank 999 of 1000
    EXPECT_EQ(s.max, 1000.0);
}
