/** Tests of the Dynamic Spatial Sharing policy (Section 3.4). */

#include <gtest/gtest.h>

#include <map>

#include "core/dss.hh"
#include "sim/logging.hh"
#include "tests/test_util.hh"
#include "workload/system.hh"

using namespace gpump;
using test::DeviceRig;

namespace {

/** DSS rig with explicit token configuration (equal sharing for
 *  @p nprocs processes on 13 SMs). */
DeviceRig
dssRig(int nprocs, const std::string &mechanism = "context_switch")
{
    sim::Config cfg;
    cfg.set("dss.tokens_per_kernel",
            static_cast<std::int64_t>(13 / nprocs));
    cfg.set("dss.bonus_tokens", static_cast<std::int64_t>(13 % nprocs));
    return DeviceRig("dss", mechanism, cfg);
}

/** SMs currently held per context. */
std::map<sim::ContextId, int>
smShares(core::SchedulingFramework &fw)
{
    std::map<sim::ContextId, int> shares;
    for (const auto &sm : fw.sms()) {
        if (sm->kernel != nullptr)
            ++shares[sm->kernel->ctx()];
    }
    return shares;
}

} // namespace

TEST(Dss, LoneKernelTakesWholeGpuThroughDebt)
{
    // tc = 6 for a 2-process setup, but only one kernel is present:
    // debt lets it occupy all 13 SMs (Section 3.4).
    auto rig = dssRig(2);
    auto k = test::makeProfile("k", 2000, 100.0);
    rig.launch(rig.queueFor(0), &k);
    rig.run(sim::microseconds(10.0));

    auto shares = smShares(rig.framework);
    EXPECT_EQ(shares[0], 13);
    const auto &active = rig.framework.activeKernels();
    ASSERT_EQ(active.size(), 1u);
    // 7 tokens granted (6 + bonus), 13 SMs held -> tokens = -6.
    EXPECT_EQ(active[0]->tokens, 7 - 13);
}

TEST(Dss, TwoKernelsSplitSevenSix)
{
    auto rig = dssRig(2);
    auto ka = test::makeProfile("a", 4000, 50.0);
    auto kb = test::makeProfile("b", 4000, 50.0);
    rig.launch(rig.queueFor(0), &ka);
    rig.run(sim::microseconds(200.0));
    rig.launch(rig.queueFor(1), &kb);
    // Let the repartitioning preemptions complete.
    rig.run(sim::milliseconds(1.0));

    auto shares = smShares(rig.framework);
    // First-admitted kernel holds the bonus token: 7 vs 6.
    EXPECT_EQ(shares[0], 7);
    EXPECT_EQ(shares[1], 6);
}

TEST(Dss, FourKernelsSplitFourThreeThreeThree)
{
    auto rig = dssRig(4);
    auto k = test::makeProfile("k", 8000, 50.0);
    for (int c = 0; c < 4; ++c) {
        rig.launch(rig.queueFor(c), &k);
        rig.run(rig.sim.now() + sim::microseconds(100.0));
    }
    rig.run(rig.sim.now() + sim::milliseconds(2.0));

    auto shares = smShares(rig.framework);
    EXPECT_EQ(shares[0], 4) << "first kernel keeps the bonus SM";
    EXPECT_EQ(shares[1], 3);
    EXPECT_EQ(shares[2], 3);
    EXPECT_EQ(shares[3], 3);
}

TEST(Dss, SteadyStateSpreadAtMostOne)
{
    auto rig = dssRig(6);
    auto k = test::makeProfile("k", 8000, 50.0);
    for (int c = 0; c < 6; ++c) {
        rig.launch(rig.queueFor(c), &k);
        rig.run(rig.sim.now() + sim::microseconds(50.0));
    }
    rig.run(rig.sim.now() + sim::milliseconds(2.0));

    auto shares = smShares(rig.framework);
    int lo = 99, hi = 0, total = 0;
    for (const auto &kv : shares) {
        lo = std::min(lo, kv.second);
        hi = std::max(hi, kv.second);
        total += kv.second;
    }
    EXPECT_EQ(total, 13) << "all SMs in use (work-conserving)";
    EXPECT_LE(hi - lo, 1) << "equal sharing: spread at most one SM";
}

TEST(Dss, TokenConservationInvariant)
{
    // granted = tokens + held(unreserved-for-others) + reserved-for-me
    // holds at every quiet point.
    auto rig = dssRig(2);
    auto k = test::makeProfile("k", 4000, 50.0);
    rig.launch(rig.queueFor(0), &k);
    rig.run(sim::microseconds(300.0));
    rig.launch(rig.queueFor(1), &k);
    rig.run(rig.sim.now() + sim::milliseconds(1.0));

    for (const gpu::KernelExec *ke : rig.framework.activeKernels()) {
        int held_not_leaving = 0;
        for (const auto &sm : rig.framework.sms()) {
            if (sm->kernel == ke && !sm->reserved)
                ++held_not_leaving;
        }
        int granted = 6 + (ke->hasBonusToken ? 1 : 0);
        EXPECT_EQ(ke->tokens + held_not_leaving + ke->smsReserved,
                  granted)
            << "token ledger out of balance for ctx " << ke->ctx();
    }
}

TEST(Dss, DifferentContextsShareEngineConcurrently)
{
    // The whole point of the extensions: kernels of different
    // processes run on disjoint SM sets at the same time.
    auto rig = dssRig(2);
    auto ka = test::makeProfile("a", 4000, 50.0);
    auto kb = test::makeProfile("b", 4000, 50.0);
    rig.launch(rig.queueFor(0), &ka);
    rig.launch(rig.queueFor(1), &kb);
    rig.run(sim::milliseconds(1.0));

    auto shares = smShares(rig.framework);
    EXPECT_GE(shares[0], 1);
    EXPECT_GE(shares[1], 1);
}

TEST(Dss, BonusTokenRecycles)
{
    auto rig = dssRig(2);
    auto short_k = test::makeProfile("s", 13, 5.0);
    auto long_k = test::makeProfile("l", 4000, 50.0);
    rig.launch(rig.queueFor(0), &short_k); // takes the bonus
    rig.launch(rig.queueFor(1), &long_k);
    rig.run(sim::microseconds(200.0)); // short kernel finished

    auto *dss =
        dynamic_cast<core::DssPolicy *>(&rig.framework.policy());
    ASSERT_NE(dss, nullptr);
    // The bonus either returned to the pool or was granted to a newly
    // admitted kernel; with only the long kernel active it must be
    // back in the pool... the long kernel was admitted while the
    // short one still held it, so the pool has it now.
    EXPECT_EQ(dss->bonusPool(), 1);
    rig.run();
}

TEST(Dss, WorksWithDraining)
{
    auto rig = dssRig(2, "draining");
    auto ka = test::makeProfile("a", 20000, 50.0);
    auto kb = test::makeProfile("b", 20000, 50.0);
    rig.launch(rig.queueFor(0), &ka);
    rig.run(sim::microseconds(300.0));
    rig.launch(rig.queueFor(1), &kb);
    rig.run(rig.sim.now() + sim::milliseconds(1.0));

    auto shares = smShares(rig.framework);
    EXPECT_EQ(shares[0], 7);
    EXPECT_EQ(shares[1], 6);
    EXPECT_DOUBLE_EQ(rig.framework.contextBytesSaved(), 0.0);
}

TEST(Dss, RedistributesWhenKernelFinishes)
{
    auto rig = dssRig(2);
    auto short_k = test::makeProfile("s", 7 * 16, 100.0);
    auto long_k = test::makeProfile("l", 20000, 50.0);
    rig.launch(rig.queueFor(0), &short_k);
    rig.run(sim::microseconds(50.0));
    rig.launch(rig.queueFor(1), &long_k);
    // Run past the short kernel's completion (~200 us + preemptions)
    // but not past the long kernel's (~5 ms of work).
    rig.run(sim::milliseconds(3.0));

    auto shares = smShares(rig.framework);
    EXPECT_EQ(shares[1], 13)
        << "survivor takes over the whole engine via debt";
}

TEST(Dss, FactoryReadsConfig)
{
    sim::Config cfg;
    cfg.set("dss.tokens_per_kernel", static_cast<std::int64_t>(3));
    cfg.set("dss.bonus_tokens", static_cast<std::int64_t>(1));
    auto policy = core::makePolicy("dss", cfg);
    EXPECT_STREQ(policy->name(), "dss");
    auto *dss = dynamic_cast<core::DssPolicy *>(policy.get());
    ASSERT_NE(dss, nullptr);
    EXPECT_EQ(dss->bonusPool(), 1);
}

TEST(Policies, FactoryRejectsUnknown)
{
    sim::Config cfg;
    EXPECT_THROW(core::makePolicy("lottery", cfg), sim::FatalError);
}

TEST(Dss, AssemblyDefaultsRespectExplicitOverrides)
{
    // The registered assemblyDefaults hook fills the equal-share pair
    // (tc = floor(NSMs/Np), r = NSMs mod Np) only for keys the caller
    // left unset; an explicit override is never clobbered.
    auto bonus_pool_of = [](const sim::Config &overrides) {
        workload::SystemSpec spec;
        spec.benchmarks = {"sgemm", "spmv"};
        spec.policy = "dss";
        workload::System system(spec, overrides);
        auto *dss = dynamic_cast<core::DssPolicy *>(
            &system.framework().policy());
        EXPECT_NE(dss, nullptr);
        return dss == nullptr ? -1 : dss->bonusPool();
    };

    // Neither key set: 13 SMs over 2 processes -> remainder 1.
    EXPECT_EQ(bonus_pool_of(sim::Config()), 1);

    // Explicit bonus, default tokens: the override survives.
    sim::Config bonus_only;
    bonus_only.set("dss.bonus_tokens", static_cast<std::int64_t>(5));
    EXPECT_EQ(bonus_pool_of(bonus_only), 5);

    // Explicit tokens, default bonus: the remainder is meaningless
    // next to a caller-chosen budget, so bonus falls back to 0.
    sim::Config tokens_only;
    tokens_only.set("dss.tokens_per_kernel",
                    static_cast<std::int64_t>(4));
    EXPECT_EQ(bonus_pool_of(tokens_only), 0);
}
