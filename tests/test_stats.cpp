/** Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace gpump;
using namespace gpump::sim;

TEST(Stats, ScalarAccumulates)
{
    StatRegistry reg;
    Scalar s(reg, "a.b", "test");
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    s += 2.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.set(7.0);
    EXPECT_DOUBLE_EQ(s.value(), 7.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, DistributionMoments)
{
    StatRegistry reg;
    Distribution d(reg, "d", "test");
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    EXPECT_NEAR(d.stddev(), 2.0, 1e-12); // classic Welford example
}

TEST(Stats, DistributionEmptyIsSafe)
{
    StatRegistry reg;
    Distribution d(reg, "d", "test");
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(Stats, HistogramBinning)
{
    StatRegistry reg;
    Histogram h(reg, "h", "test", 0.0, 10.0, 5);
    h.sample(-1.0); // underflow
    h.sample(0.0);  // bin 0
    h.sample(1.99); // bin 0
    h.sample(5.0);  // bin 2
    h.sample(9.99); // bin 4
    h.sample(10.0); // overflow
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bins()[0], 2u);
    EXPECT_EQ(h.bins()[2], 1u);
    EXPECT_EQ(h.bins()[4], 1u);
}

TEST(Stats, HistogramValidation)
{
    StatRegistry reg;
    EXPECT_THROW(Histogram(reg, "bad", "", 5.0, 5.0, 4), PanicError);
    EXPECT_THROW(Histogram(reg, "bad2", "", 0.0, 1.0, 0), PanicError);
}

TEST(Stats, RegistryFindsAndDumps)
{
    StatRegistry reg;
    Scalar a(reg, "x.count", "things");
    Distribution d(reg, "x.lat", "latency");
    a += 3;
    d.sample(1.0);

    EXPECT_EQ(reg.find("x.count"), &a);
    EXPECT_EQ(reg.find("missing"), nullptr);

    std::ostringstream os;
    reg.dump(os);
    std::string text = os.str();
    EXPECT_NE(text.find("x.count 3"), std::string::npos);
    EXPECT_NE(text.find("x.lat.count 1"), std::string::npos);
}

TEST(Stats, DuplicateNamePanics)
{
    StatRegistry reg;
    Scalar a(reg, "dup", "");
    EXPECT_THROW(Scalar(reg, "dup", ""), PanicError);
}

TEST(Stats, ResetAll)
{
    StatRegistry reg;
    Scalar a(reg, "a", "");
    Distribution d(reg, "b", "");
    a += 5;
    d.sample(2.0);
    reg.resetAll();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_EQ(d.count(), 0u);
}

TEST(Stats, WelfordStableForLargeStreams)
{
    StatRegistry reg;
    Distribution d(reg, "big", "");
    // Large offset stresses naive sum-of-squares; Welford handles it.
    for (int i = 0; i < 100000; ++i)
        d.sample(1e9 + (i % 2 == 0 ? 1.0 : -1.0));
    EXPECT_NEAR(d.mean(), 1e9, 1e-3);
    EXPECT_NEAR(d.stddev(), 1.0, 1e-6);
}

TEST(Stats, DestroyedStatUnregistersItself)
{
    // A stat that dies before its registry must drop out of it:
    // otherwise the registry dangles (caught by ASan as a
    // use-after-scope when a throwing Histogram constructor left its
    // half-built object registered).
    StatRegistry reg;
    {
        Scalar tmp(reg, "x.tmp", "scoped");
        EXPECT_EQ(reg.find("x.tmp"), &tmp);
    }
    EXPECT_EQ(reg.find("x.tmp"), nullptr);

    // The name is reusable afterwards, including after a derived
    // constructor threw past the base-class registration.
    EXPECT_THROW(Histogram(reg, "x.tmp", "", 5.0, 5.0, 4), PanicError);
    Scalar again(reg, "x.tmp", "reused");
    EXPECT_EQ(reg.find("x.tmp"), &again);
}
