/**
 * Tests of the command path: streams, hardware queues, dispatcher
 * gating, context synchronisation and the end-to-end kernel flow
 * through the framework (FCFS policy, single context).
 */

#include <gtest/gtest.h>

#include "gpu/gpu_context.hh"
#include "gpu/stream.hh"
#include "sim/logging.hh"
#include "tests/test_util.hh"

using namespace gpump;
using test::DeviceRig;

namespace {

/** 13-SM-filling kernel: 26 TBs at occupancy 2 -> one full wave. */
trace::KernelProfile
wideKernel(const char *name, int tbs, double tb_us)
{
    return test::makeProfile(name, tbs, tb_us, 30000, 0, 512);
}

} // namespace

TEST(CommandPath, SingleKernelRunsToCompletion)
{
    DeviceRig rig;
    auto *q = rig.queueFor(0);
    auto k = test::makeProfile("k", 26, 10.0); // occupancy >2, 1 wave
    bool completed = false;
    auto cmd = gpu::Command::makeKernel(0, 0, &k);
    cmd->onComplete = [&] { completed = true; };
    rig.dispatcher.enqueue(q, cmd);
    rig.run();
    EXPECT_TRUE(completed);
    EXPECT_EQ(rig.framework.kernelsCompleted(), 1u);
    EXPECT_EQ(rig.framework.tbsCompleted(), 26u);
}

TEST(CommandPath, KernelTimingIsWavesTimesTbTime)
{
    DeviceRig rig;
    auto *q = rig.queueFor(0);
    // occupancy 2 (512 threads/TB? -> use wideKernel: 30000 regs ->
    // 65536/30000 = 2, threads 2048/512 = 4 -> occ 2).  52 TBs on
    // 13 SMs x 2 = 26 slots -> exactly 2 waves of 100 us.
    auto k = wideKernel("k", 52, 100.0);
    sim::SimTime done_at = -1;
    auto cmd = gpu::Command::makeKernel(0, 0, &k);
    cmd->onComplete = [&] { done_at = rig.sim.now(); };
    rig.dispatcher.enqueue(q, cmd);
    rig.run();
    ASSERT_GE(done_at, 0);
    // Overheads: setup (1 us) + context load (0.5 us); waves 2x100 us.
    sim::SimTime expected = rig.params.smSetupLatency +
        rig.params.contextLoadLatency + sim::microseconds(200.0);
    EXPECT_EQ(done_at, expected);
}

TEST(CommandPath, SameQueueCommandsSerializeInOrder)
{
    DeviceRig rig;
    auto *q = rig.queueFor(0);
    auto k1 = test::makeProfile("k1", 13, 10.0);
    auto k2 = test::makeProfile("k2", 13, 10.0);
    std::vector<std::string> order;
    auto c1 = gpu::Command::makeKernel(0, 0, &k1);
    c1->onComplete = [&] { order.push_back("k1"); };
    auto c2 = gpu::Command::makeKernel(0, 0, &k2);
    c2->onComplete = [&] { order.push_back("k2"); };
    rig.dispatcher.enqueue(q, c1);
    rig.dispatcher.enqueue(q, c2);
    rig.run();
    EXPECT_EQ(order, (std::vector<std::string>{"k1", "k2"}));
}

TEST(CommandPath, StreamChargesSubmissionLatencyAndTracksContext)
{
    DeviceRig rig;
    memory::FrameAllocator frames(128);
    gpu::GpuContext ctx(0, 0, 0, frames);
    auto *q = rig.queueFor(0);
    gpu::Stream stream(rig.sim, ctx, rig.dispatcher, q,
                       rig.params.commandSubmitLatency);

    auto k = test::makeProfile("k", 13, 10.0);
    auto cmd = gpu::Command::makeKernel(0, 0, &k);
    stream.enqueue(cmd);
    EXPECT_EQ(ctx.outstanding(), 1);

    bool synced = false;
    ctx.waitIdle([&] { synced = true; });
    EXPECT_FALSE(synced);

    rig.run();
    EXPECT_TRUE(synced);
    EXPECT_EQ(ctx.outstanding(), 0);
    // Submission latency delays arrival at the hardware queue.
    EXPECT_GE(cmd->enqueuedAt, rig.params.commandSubmitLatency);
}

TEST(CommandPath, WaitIdleOnIdleContextFiresImmediately)
{
    memory::FrameAllocator frames(16);
    gpu::GpuContext ctx(0, 0, 0, frames);
    bool fired = false;
    ctx.waitIdle([&] { fired = true; });
    EXPECT_TRUE(fired);
}

TEST(CommandPath, CommandsStampedWithArrivalSequence)
{
    DeviceRig rig;
    auto *q0 = rig.queueFor(0);
    auto *q1 = rig.queueFor(1);
    auto k = test::makeProfile("k", 1, 1.0);
    auto a = rig.launch(q0, &k);
    auto b = rig.launch(q1, &k);
    EXPECT_LT(a->seq, b->seq);
    rig.run();
}

TEST(CommandPath, QueueExhaustionIsFatal)
{
    DeviceRig rig;
    for (int i = 0; i < rig.params.numHwQueues; ++i)
        rig.queueFor(i);
    EXPECT_THROW(rig.queueFor(99), sim::FatalError);
}

TEST(CommandPath, TwoContextsSerializeUnderFcfs)
{
    DeviceRig rig;
    auto *q0 = rig.queueFor(0);
    auto *q1 = rig.queueFor(1);
    // Both kernels leave idle SMs (1 TB each) -- but FCFS must not
    // co-schedule two contexts on the engine.
    auto k1 = test::makeProfile("k1", 1, 50.0);
    auto k2 = test::makeProfile("k2", 1, 50.0);
    sim::SimTime start2 = -1, end1 = -1;

    class Obs : public core::EngineObserver
    {
      public:
        sim::SimTime *start2;
        sim::Simulation *sim;
        void kernelStarted(const gpu::KernelExec &k) override
        {
            if (k.profile().kernel == "k2")
                *start2 = sim->now();
        }
    } obs;
    obs.start2 = &start2;
    obs.sim = &rig.sim;
    rig.framework.setObserver(&obs);

    auto c1 = gpu::Command::makeKernel(0, 0, &k1);
    c1->onComplete = [&] { end1 = rig.sim.now(); };
    rig.dispatcher.enqueue(q0, c1);
    auto c2 = gpu::Command::makeKernel(1, 0, &k2);
    rig.dispatcher.enqueue(q1, c2);
    rig.run();

    ASSERT_GE(start2, 0);
    ASSERT_GE(end1, 0);
    EXPECT_GE(start2, end1)
        << "baseline engine must drain context 0 before context 1 runs";
}

TEST(CommandPath, EngineContextReflectsOccupancy)
{
    DeviceRig rig;
    EXPECT_EQ(rig.framework.engineContext(), sim::invalidContext);
    auto *q = rig.queueFor(7);
    auto k = test::makeProfile("k", 130, 100.0);
    rig.launch(q, &k);
    // Admission and SM assignment happen synchronously with the
    // enqueue (the hardware reacts within the same instant).
    EXPECT_EQ(rig.framework.engineContext(), 7);
    rig.run(sim::microseconds(20.0));
    EXPECT_EQ(rig.framework.engineContext(), 7)
        << "kernel still occupies the engine mid-execution";
    rig.run();
    EXPECT_EQ(rig.framework.engineContext(), sim::invalidContext);
}
