/**
 * Tests of the multi-process sweep executor (harness/exec): the
 * bit-exact wire codec, the crash-safe on-disk result cache, and —
 * via fault injection — the coordinator's whole robustness envelope:
 * SIGKILLed workers, wedged workers past the watchdog, interrupted
 * sweeps resuming from cache, and degradation to in-process
 * execution.  Every recovery path must end byte-identical to a clean
 * single-process run.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "harness/args.hh"
#include "harness/exec/cache.hh"
#include "harness/exec/coordinator.hh"
#include "harness/exec/wire.hh"
#include "harness/interrupt.hh"
#include "harness/suite.hh"
#include "sim/logging.hh"

using namespace gpump;
using namespace gpump::harness;

namespace {

/** The small grid shared by the executor tests (2 schemes x 3 plans). */
Batch
smallGrid()
{
    Suite suite("grid");
    suite.sizes({2})
        .uniform(/*count=*/3, /*base_seed=*/20140614)
        .minReplays(1)
        .scheme("FCFS", {"fcfs", "context_switch", "fcfs"})
        .scheme("DSS-CS", {"dss", "context_switch", "fcfs"});
    return suite.build();
}

/** Canonical rendering of a result for cross-run comparison:
 *  wallSeconds is host-timing noise (explicitly outside the
 *  determinism contract), everything else must match bit-for-bit. */
std::string
canon(RunResult r)
{
    r.wallSeconds = 0.0;
    return exec::encodeResult(r);
}

std::vector<std::string>
canonAll(const std::vector<RunResult> &results)
{
    std::vector<std::string> out;
    out.reserve(results.size());
    for (const RunResult &r : results)
        out.push_back(canon(r));
    return out;
}

/** Fresh scratch directory under the system temp dir; removed on
 *  destruction. */
struct TempDir
{
    std::filesystem::path path;

    explicit TempDir(const std::string &name)
        : path(std::filesystem::temp_directory_path() /
               (name + "." + std::to_string(::getpid())))
    {
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }

    ~TempDir() { std::filesystem::remove_all(path); }

    std::string str() const { return path.string(); }
};

/** A RunResult exercising every codec field, including the values
 *  decimal formatting would mangle: NaN, infinities, denormals and
 *  full-precision doubles. */
RunResult
fullResult()
{
    RunResult r;
    r.index = 7;
    r.tag = "grid/size=2/plan=1/\"quoted\"\n\ttag";
    r.scheme = {"dss", "context_switch", "priority"};
    r.metrics.ntt = {1.0000000000000002, 2.5,
                     std::numeric_limits<double>::quiet_NaN()};
    r.metrics.antt = std::numeric_limits<double>::infinity();
    r.metrics.stp = -std::numeric_limits<double>::infinity();
    r.metrics.fairness = 5e-324; // smallest denormal
    r.isolatedUs = {123.4567891234567, 0.1};
    r.sys.meanTurnaroundUs = {1.0 / 3.0, 2.0 / 3.0};
    r.sys.meanLatencyUs = {9.999999999999998};
    r.sys.droppedRequests = {0, 42};
    r.sys.runs = {{{1, 2, 3}, {40, 50, 60}}, {}, {{7, 8, 9}}};
    r.sys.endTime = 9223372036854775807LL; // INT64_MAX survives
    r.sys.eventsExecuted = 123456789;
    r.sys.kernelsCompleted = 17;
    r.sys.preemptions = 3;
    r.sys.contextBytesSaved = 1.5e9;
    r.sys.maxPtbqDepth = 12.0;
    r.wallSeconds = 0.25;
    r.servingRun = true;
    serve::ClassMetrics c;
    c.name = "latency-critical";
    c.requests = 100;
    c.completed = 95;
    c.dropped = 5;
    c.deadlineMisses = 2;
    c.latency = {95, 10.5, 9.0, 30.000000000000004, 40.0, 41.5};
    c.missRate = 0.02105263157894737;
    c.throughputPerSec = 950.0;
    c.goodputPerSec = std::numeric_limits<double>::quiet_NaN();
    r.serving.classes.push_back(c);
    r.serving.windowFairness = 0.875;
    r.serving.windowUs = 1e6;
    return r;
}

} // namespace

// ---------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------

TEST(ExecWire, HexDoubleRoundTripsEveryValueClass)
{
    const double cases[] = {0.0,
                            -0.0,
                            1.0,
                            1.0 / 3.0,
                            -123.456789123456789,
                            5e-324,
                            std::numeric_limits<double>::max(),
                            std::numeric_limits<double>::min(),
                            std::numeric_limits<double>::infinity(),
                            -std::numeric_limits<double>::infinity()};
    for (double v : cases) {
        double back = exec::parseHexDouble(exec::encodeHexDouble(v),
                                           "test");
        // Bit-exact, including the sign of zero.
        EXPECT_EQ(std::signbit(back), std::signbit(v));
        EXPECT_EQ(back, v) << exec::encodeHexDouble(v);
    }
    double nan_back = exec::parseHexDouble(
        exec::encodeHexDouble(std::numeric_limits<double>::quiet_NaN()),
        "test");
    EXPECT_TRUE(std::isnan(nan_back));
    EXPECT_THROW(exec::parseHexDouble("bogus", "test"),
                 sim::FatalError);
    EXPECT_THROW(exec::parseHexDouble("", "test"), sim::FatalError);
}

TEST(ExecWire, ResultRoundTripsBitExactIncludingServing)
{
    RunResult r = fullResult();
    std::string line = exec::encodeResult(r);
    RunResult back = exec::decodeResult(line);
    // Re-encoding the decoded result must reproduce the original line
    // byte-for-byte — string equality sidesteps NaN != NaN while still
    // asserting bit-exactness of every field.
    EXPECT_EQ(exec::encodeResult(back), line);
    EXPECT_EQ(back.tag, r.tag);
    EXPECT_EQ(back.sys.runs, r.sys.runs);
    EXPECT_EQ(back.sys.endTime, r.sys.endTime);
    ASSERT_EQ(back.serving.classes.size(), 1u);
    EXPECT_EQ(back.serving.classes[0].name, "latency-critical");
}

TEST(ExecWire, RejectsMalformedAndVersionMismatch)
{
    EXPECT_THROW(exec::parseJson("{\"a\":}"), sim::FatalError);
    EXPECT_THROW(exec::parseJson("{} trailing"), sim::FatalError);
    EXPECT_THROW(exec::parseJson(""), sim::FatalError);
    EXPECT_THROW(exec::decodeResult(std::string("{\"v\":999}")),
                 sim::FatalError);

    RunResult out;
    EXPECT_FALSE(exec::tryDecodeResult("not json", out));
    EXPECT_FALSE(exec::tryDecodeResult("{\"v\":1}", out));
    std::string line = exec::encodeResult(fullResult());
    EXPECT_TRUE(exec::tryDecodeResult(line, out));
    EXPECT_FALSE(
        exec::tryDecodeResult(line.substr(0, line.size() / 2), out));
}

// ---------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------

TEST(ExecCache, StoreLookupRoundTripAndTelemetry)
{
    TempDir dir("gpump_exec_cache");
    exec::ResultCache cache(dir.str());

    RunResult r = fullResult();
    EXPECT_FALSE(cache.lookup("key-a", r));
    EXPECT_EQ(cache.misses(), 1u);

    cache.store("key-a", fullResult());
    EXPECT_EQ(cache.stores(), 1u);
    RunResult back;
    ASSERT_TRUE(cache.lookup("key-a", back));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(exec::encodeResult(back),
              exec::encodeResult(fullResult()));
}

TEST(ExecCache, CorruptAndTruncatedEntriesDegradeToMisses)
{
    TempDir dir("gpump_exec_corrupt");
    exec::ResultCache cache(dir.str());
    cache.store("key-a", fullResult());
    std::string entry =
        (dir.path / (exec::hashKey("key-a") + ".entry")).string();
    ASSERT_TRUE(std::filesystem::exists(entry));

    // Truncate mid-payload: a torn write must read as a miss and the
    // offending file must be deleted so the rerun can replace it.
    {
        auto size = std::filesystem::file_size(entry);
        std::filesystem::resize_file(entry, size / 2);
    }
    RunResult back;
    EXPECT_FALSE(cache.lookup("key-a", back));
    EXPECT_FALSE(std::filesystem::exists(entry));

    // Corrupt payload under an intact header: same contract.
    cache.store("key-a", fullResult());
    {
        std::ofstream os(entry, std::ios::trunc);
        os << "gpump-exec-cache v1\nkey-a\n{\"v\":1,garbage\nok\n";
    }
    EXPECT_FALSE(cache.lookup("key-a", back));
    EXPECT_FALSE(std::filesystem::exists(entry));

    // A colliding entry (same hash bucket, different key) is a miss
    // but must NOT be deleted — it belongs to some other request.
    cache.store("key-a", fullResult());
    {
        std::ofstream os(entry, std::ios::trunc);
        os << "gpump-exec-cache v1\nkey-b\n"
           << exec::encodeResult(fullResult()) << "\nok\n";
    }
    EXPECT_FALSE(cache.lookup("key-a", back));
    EXPECT_TRUE(std::filesystem::exists(entry));
}

TEST(ExecCache, RequestKeyCoversEverythingThatChangesAResult)
{
    Batch batch = smallGrid();
    sim::Config base;
    std::string k0 = exec::requestKey(base, batch.requests[0]);
    EXPECT_EQ(k0, exec::requestKey(base, batch.requests[0]));

    // Distinct scheme, plan or replay count => distinct key.
    EXPECT_NE(k0, exec::requestKey(base, batch.requests[1]));
    EXPECT_NE(k0, exec::requestKey(base, batch.requests[2]));
    RunRequest tweaked = batch.requests[0];
    tweaked.minReplays += 1;
    EXPECT_NE(k0, exec::requestKey(base, tweaked));
    tweaked = batch.requests[0];
    tweaked.overrides.set("gpu.num_sms", std::int64_t{4});
    EXPECT_NE(k0, exec::requestKey(base, tweaked));
    // ... and a *base*-config change reaches the key too.
    sim::Config other;
    other.set("gpu.num_sms", std::int64_t{4});
    EXPECT_NE(k0, exec::requestKey(other, batch.requests[0]));
}

TEST(ExecCache, StaleEntriesAreDetected)
{
    TempDir dir("gpump_exec_stale");
    exec::ResultCache cache(dir.str());
    cache.store("live-key", fullResult());
    cache.store("stale-key", fullResult());

    auto stale = cache.staleEntries({"live-key"});
    ASSERT_EQ(stale.size(), 1u);
    EXPECT_EQ(stale[0],
              (dir.path / (exec::hashKey("stale-key") + ".entry"))
                  .string());
    EXPECT_TRUE(cache.staleEntries({"live-key", "stale-key"}).empty());
}

// ---------------------------------------------------------------------
// Coordinator: identity and crash recovery
// ---------------------------------------------------------------------

TEST(ExecCoordinator, WorkersMatchThreadPoolByteForByte)
{
    Batch batch = smallGrid();
    Runner plain(sim::Config(), /*jobs=*/2);
    auto expected = canonAll(plain.run(batch.requests));

    Runner runner(sim::Config(), /*jobs=*/1);
    exec::ExecOptions opt;
    opt.workers = 3;
    exec::ExecStats stats;
    auto results =
        exec::runBatch(runner, batch.requests, opt, &stats);
    EXPECT_EQ(canonAll(results), expected);
    EXPECT_EQ(stats.computed, batch.requests.size());
    EXPECT_EQ(stats.requeues, 0u);
}

TEST(ExecCoordinator, SigkilledWorkerMidSweepIsRequeued)
{
    Batch batch = smallGrid();
    Runner plain(sim::Config(), /*jobs=*/1);
    auto expected = canonAll(plain.run(batch.requests));

    Runner runner(sim::Config(), /*jobs=*/1);
    exec::ExecOptions opt;
    opt.workers = 2;
    opt.backoffBaseSec = 0.01;
    opt.testKillAfterResults = 1; // SIGKILL a busy worker mid-sweep
    exec::ExecStats stats;
    auto results =
        exec::runBatch(runner, batch.requests, opt, &stats);
    EXPECT_EQ(canonAll(results), expected);
    EXPECT_GE(stats.requeues, 1u);
    EXPECT_GE(stats.respawns, 1u);
}

TEST(ExecCoordinator, WedgedWorkerTimesOutThenDegradesInProcess)
{
    Batch batch = smallGrid();
    Runner plain(sim::Config(), /*jobs=*/1);
    auto expected = canonAll(plain.run(batch.requests));

    // Every worker wedges on request 0, so the watchdog fires, the
    // retry budget drains, and the coordinator must finish request 0
    // itself (in-process) — with output still byte-identical.
    Runner runner(sim::Config(), /*jobs=*/1);
    exec::ExecOptions opt;
    opt.workers = 2;
    opt.requestTimeoutSec = 0.25;
    opt.maxRetries = 1;
    opt.backoffBaseSec = 0.01;
    opt.testHangOnIndex = 0;
    exec::ExecStats stats;
    auto results =
        exec::runBatch(runner, batch.requests, opt, &stats);
    EXPECT_EQ(canonAll(results), expected);
    EXPECT_GE(stats.timeouts, 2u); // initial try + one retry
    EXPECT_GE(stats.inProcess, 1u);
}

TEST(ExecCoordinator, InterruptedSweepResumesFromCacheByteIdentical)
{
    Batch batch = smallGrid();
    Runner plain(sim::Config(), /*jobs=*/1);
    auto expected = canonAll(plain.run(batch.requests));

    TempDir dir("gpump_exec_resume");

    // Phase 1 runs in a forked child that the abort hook _exit(3)s
    // right after the 2nd result hits the cache — a sweep killed
    // mid-run, with a genuinely half-populated cache directory.
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        Runner child(sim::Config(), /*jobs=*/1);
        exec::ExecOptions opt;
        opt.workers = 1;
        opt.cacheDir = dir.str();
        opt.testAbortAfterResults = 2;
        exec::runBatch(child, batch.requests, opt);
        ::_exit(0); // hook failed to fire: report it as a status
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 3);

    std::size_t entries = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir.path))
        entries += e.path().extension() == ".entry" ? 1 : 0;
    EXPECT_EQ(entries, 2u);

    // Phase 2: rerun against the same directory; the two completed
    // results load from cache, the rest compute, and the merged batch
    // is byte-identical to the uninterrupted single-process run.
    Runner runner(sim::Config(), /*jobs=*/1);
    exec::ExecOptions opt;
    opt.workers = 2;
    opt.cacheDir = dir.str();
    exec::ExecStats stats;
    auto results =
        exec::runBatch(runner, batch.requests, opt, &stats);
    EXPECT_EQ(canonAll(results), expected);
    EXPECT_EQ(stats.cacheHits, 2u);
    EXPECT_EQ(stats.computed, batch.requests.size() - 2);

    // Phase 3: a third run is all hits.
    Runner again(sim::Config(), /*jobs=*/1);
    exec::ExecStats stats2;
    auto cached =
        exec::runBatch(again, batch.requests, opt, &stats2);
    EXPECT_EQ(canonAll(cached), expected);
    EXPECT_EQ(stats2.cacheHits, batch.requests.size());
    EXPECT_EQ(stats2.computed, 0u);
}

TEST(ExecCoordinator, StrictModeFailsOnStaleCacheEntries)
{
    Batch batch = smallGrid();
    TempDir dir("gpump_exec_strictstale");

    Runner runner(sim::Config(), /*jobs=*/1);
    exec::ExecOptions opt;
    opt.workers = 2;
    opt.cacheDir = dir.str();
    exec::runBatch(runner, batch.requests, opt);

    // Plant an entry whose key matches no request of the sweep (a
    // fingerprint from some other config/code revision).
    exec::ResultCache(dir.str()).store("stale-key", fullResult());

    exec::ExecStats stats;
    Runner lax(sim::Config(), /*jobs=*/1);
    exec::runBatch(lax, batch.requests, opt, &stats);
    EXPECT_EQ(stats.staleEntries, 1u);

    opt.strictCache = true;
    Runner strict(sim::Config(), /*jobs=*/1);
    EXPECT_THROW(exec::runBatch(strict, batch.requests, opt),
                 sim::FatalError);
}

// ---------------------------------------------------------------------
// Flag validation and graceful interruption
// ---------------------------------------------------------------------

TEST(ExecFlags, ParallelismFlagsRejectNonPositiveValues)
{
    auto argsFor = [](const char *flag) {
        const char *argv[] = {"prog", flag};
        return Args(2, const_cast<char **>(argv));
    };
    EXPECT_THROW(argsFor("--jobs=0").flagPositiveInt("jobs", 1),
                 sim::FatalError);
    EXPECT_THROW(argsFor("--workers=-3").flagPositiveInt("workers", 0),
                 sim::FatalError);
    EXPECT_THROW(argsFor("--shards=zap").flagPositiveInt("shards", 1),
                 sim::FatalError);
    EXPECT_EQ(argsFor("--jobs=8").flagPositiveInt("jobs", 1), 8);
    // Absent flag: default passes through unvalidated (0 means "off"
    // for --workers).
    EXPECT_EQ(argsFor("--jobs=8").flagPositiveInt("workers", 0), 0);
}

TEST(ExecInterrupt, RunnerStopsCleanlyAndReportsTheSignal)
{
    Batch batch = smallGrid();
    Runner runner(sim::Config(), /*jobs=*/2);

    installInterruptHandlers();
    ASSERT_FALSE(interruptRequested());
    ::raise(SIGTERM); // handler records it; SA_RESETHAND re-arms dfl
    ASSERT_TRUE(interruptRequested());

    try {
        runner.run(batch.requests);
        FAIL() << "expected InterruptedError";
    } catch (const InterruptedError &e) {
        EXPECT_EQ(e.signal(), SIGTERM);
    }

    // Cleared, the same Runner completes normally.
    clearInterruptForTesting();
    EXPECT_EQ(runner.run(batch.requests).size(),
              batch.requests.size());
}

TEST(ExecInterrupt, CoordinatorStopsCleanlyAndReportsTheSignal)
{
    Batch batch = smallGrid();
    Runner runner(sim::Config(), /*jobs=*/1);
    exec::ExecOptions opt;
    opt.workers = 2;

    installInterruptHandlers();
    ::raise(SIGTERM);
    ASSERT_TRUE(interruptRequested());
    EXPECT_THROW(exec::runBatch(runner, batch.requests, opt),
                 InterruptedError);
    clearInterruptForTesting();
}
