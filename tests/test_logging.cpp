/** Unit tests for logging and error reporting. */

#include <gtest/gtest.h>

#include "sim/logging.hh"

using namespace gpump;
using namespace gpump::sim;

TEST(Logging, StrformatFormats)
{
    EXPECT_EQ(strformat("x=%d y=%s", 42, "ok"), "x=42 y=ok");
    EXPECT_EQ(strformat("%.2f", 1.239), "1.24");
    EXPECT_EQ(strformat("plain"), "plain");
}

TEST(Logging, FatalThrowsFatalError)
{
    try {
        fatal("bad input %d", 7);
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "bad input 7");
    }
}

TEST(Logging, PanicThrowsPanicError)
{
    try {
        panic("invariant %s broken", "X");
        FAIL() << "panic did not throw";
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "invariant X broken");
    }
}

TEST(Logging, PanicIsNotFatal)
{
    // The two error kinds are distinct: tests and callers can tell
    // user errors from simulator bugs.
    EXPECT_THROW(panic("x"), PanicError);
    EXPECT_THROW(fatal("x"), FatalError);
    bool caught_wrong = false;
    try {
        panic("x");
    } catch (const FatalError &) {
        caught_wrong = true;
    } catch (const PanicError &) {
    }
    EXPECT_FALSE(caught_wrong);
}

TEST(Logging, AssertMacro)
{
    EXPECT_NO_THROW(GPUMP_ASSERT(1 + 1 == 2, "math works"));
    EXPECT_THROW(GPUMP_ASSERT(false, "must fire"), PanicError);
}

TEST(Logging, LevelsGateEmission)
{
    Logger &log = Logger::global();
    LogLevel saved = log.level();
    log.setLevel(LogLevel::Silent);
    EXPECT_FALSE(log.enabled(LogLevel::Warn));
    log.setLevel(LogLevel::Debug);
    EXPECT_TRUE(log.enabled(LogLevel::Warn));
    EXPECT_TRUE(log.enabled(LogLevel::Debug));
    EXPECT_FALSE(log.enabled(LogLevel::Trace));
    log.setLevel(saved);
}
