/** Tests of the sim/types.hh unit helpers. */

#include <gtest/gtest.h>

#include "sim/types.hh"

using namespace gpump::sim;

TEST(Types, UnitConstructorsScaleToNanoseconds)
{
    EXPECT_EQ(nanoseconds(7), 7);
    EXPECT_EQ(microseconds(1.0), 1000);
    EXPECT_EQ(milliseconds(1.0), 1000000);
    EXPECT_EQ(seconds(1.0), 1000000000);
}

TEST(Types, ConstructorsRoundToNearestNanosecond)
{
    EXPECT_EQ(microseconds(0.0004), 0);
    EXPECT_EQ(microseconds(0.0006), 1);
    EXPECT_EQ(microseconds(-0.0006), -1);
    EXPECT_EQ(milliseconds(0.0000006), 1);
}

TEST(Types, ExtractorsInvertConstructors)
{
    EXPECT_DOUBLE_EQ(toMicroseconds(microseconds(123.0)), 123.0);
    EXPECT_DOUBLE_EQ(toMilliseconds(milliseconds(4.5)), 4.5);
    EXPECT_DOUBLE_EQ(toSeconds(seconds(2.0)), 2.0);
}

TEST(Types, TransferTimeRoundsUpToAWholeNanosecond)
{
    // 1 byte at 1 GB/s is exactly 1 ns.
    EXPECT_EQ(transferTime(1.0, 1e9), 1);
    // Any fractional remainder must round *up*: a nonzero payload can
    // never fabricate a zero-cost transfer.
    EXPECT_EQ(transferTime(1.0, 2e9), 1);
    EXPECT_EQ(transferTime(3.0, 2e9), 2);
    EXPECT_GE(transferTime(1e-6, 1e12), 1);
    EXPECT_EQ(transferTime(0.0, 1e9), 0);
    EXPECT_EQ(transferTime(-5.0, 1e9), 0);
}

TEST(Types, SentinelsAreNegative)
{
    EXPECT_LT(invalidContext, 0);
    EXPECT_LT(invalidSm, 0);
    EXPECT_LT(invalidKsr, 0);
    EXPECT_LT(invalidProcess, 0);
    EXPECT_GT(maxTime, 0);
}
