/**
 * Scenario-level integration tests: the paper's Figure 2 ordering,
 * asynchronous command traces, mixed-engine stream ordering, DSS
 * reservation retargeting and time-quantum monotonicity.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/timemux.hh"
#include "sim/logging.hh"
#include "tests/test_util.hh"
#include "trace/trace_builder.hh"
#include "workload/system.hh"

using namespace gpump;
using test::DeviceRig;

namespace {

struct SpanProbe : core::EngineObserver
{
    sim::Simulation *sim = nullptr;
    std::vector<std::pair<std::string, sim::SimTime>> starts;
    std::vector<std::pair<std::string, sim::SimTime>> finishes;

    void kernelStarted(const gpu::KernelExec &k) override
    {
        starts.emplace_back(k.profile().kernel, sim->now());
    }
    void kernelFinished(const gpu::KernelExec &k) override
    {
        finishes.emplace_back(k.profile().kernel, sim->now());
    }
    sim::SimTime startOf(const std::string &n) const
    {
        for (auto &s : starts)
            if (s.first == n)
                return s.second;
        return -1;
    }
    sim::SimTime finishOf(const std::string &n) const
    {
        for (auto &f : finishes)
            if (f.first == n)
                return f.second;
        return -1;
    }
};

/** The Figure 2 scenario under a given policy; returns K3's
 *  submission-to-completion latency. */
sim::SimTime
figure2Latency(const std::string &policy)
{
    DeviceRig rig(policy, "context_switch");
    SpanProbe probe;
    probe.sim = &rig.sim;
    rig.framework.setObserver(&probe);

    static auto k1 = test::makeProfile("K1", 13 * 16 * 16, 25.0);
    static auto k2 = test::makeProfile("K2", 13 * 16 * 8, 25.0);
    static auto k3 = test::makeProfile("K3", 13 * 16 / 2, 25.0);

    auto *q1 = rig.queueFor(0);
    auto *q2 = rig.queueFor(1);
    auto *q3 = rig.queueFor(2);
    rig.launch(q1, &k1, 0);
    rig.sim.events().schedule(sim::microseconds(50.0), [&rig, q2] {
        rig.launch(q2, &k2, 0);
    });
    sim::SimTime submit3 = sim::microseconds(100.0);
    rig.sim.events().schedule(submit3, [&rig, q3] {
        rig.launch(q3, &k3, 5);
    });
    rig.run();
    return probe.finishOf("K3") - submit3;
}

} // namespace

TEST(Figure2, LatencyOrderingFcfsNpqPpq)
{
    sim::SimTime fcfs = figure2Latency("fcfs");
    sim::SimTime npq = figure2Latency("npq");
    sim::SimTime ppq = figure2Latency("ppq_excl");

    // Figure 2: each step of scheduler sophistication cuts K3's
    // latency, and preemption decouples it from K1's length entirely.
    EXPECT_LT(npq, fcfs);
    EXPECT_LT(ppq, npq);
    EXPECT_LT(ppq, sim::microseconds(60.0))
        << "preemptive latency must not depend on K1's remaining time";
    EXPECT_GT(fcfs, sim::microseconds(400.0))
        << "FCFS must wait for both queued kernels";
}

TEST(Scenarios, AsyncTransfersOverlapKernels)
{
    // A custom app that uploads asynchronously while kernels run:
    // the async path of Process/TraceOp.
    trace::BenchmarkSpec app;
    app.name = "pipelined";
    app.dataset = "test";
    trace::KernelProfile k;
    k.benchmark = "pipelined";
    k.kernel = "stage";
    k.launches = 4;
    k.numThreadBlocks = 208;
    k.timePerTbUs = 50.0;
    k.regsPerTb = 4096;
    k.threadsPerTb = 128;
    app.kernels.push_back(k);
    trace::TraceBuilder b(app);
    b.cpu(100).h2d(trace::mib(1));
    for (int i = 0; i < 4; ++i)
        b.h2dAsync(trace::mib(4)).launch(0);
    b.sync().d2h(trace::mib(1)).cpu(50);
    app.validate();

    workload::SystemSpec spec;
    spec.customSpecs = {&app};
    spec.minReplays = 2;
    workload::System system(spec);
    auto result = system.run(sim::seconds(10.0));
    EXPECT_EQ(result.runs[0].size(), 2u);
    EXPECT_EQ(result.kernelsCompleted, 8u);
}

TEST(Scenarios, StreamOrdersAcrossEngines)
{
    // In one hardware queue, a kernel enqueued after a memcpy must
    // not start until the memcpy completed (in-order streams), even
    // though the two commands target different engines.
    DeviceRig rig;
    SpanProbe probe;
    probe.sim = &rig.sim;
    rig.framework.setObserver(&probe);

    auto *q = rig.queueFor(0);
    sim::SimTime copy_done = -1;
    auto copy = gpu::Command::makeMemcpy(
        0, 0, gpu::Command::Kind::MemcpyH2D, 16 << 20);
    copy->onComplete = [&] { copy_done = rig.sim.now(); };
    rig.dispatcher.enqueue(q, copy);

    auto k = test::makeProfile("after_copy", 13, 5.0);
    rig.launch(q, &k);
    rig.run();

    ASSERT_GE(copy_done, 0);
    EXPECT_GE(probe.startOf("after_copy"), copy_done)
        << "stream order violated across engines";
}

TEST(Scenarios, IndependentQueuesDoNotOrder)
{
    // The same two commands in different queues (different contexts)
    // overlap freely.
    DeviceRig rig;
    SpanProbe probe;
    probe.sim = &rig.sim;
    rig.framework.setObserver(&probe);

    auto copy = gpu::Command::makeMemcpy(
        0, 0, gpu::Command::Kind::MemcpyH2D, 16 << 20);
    sim::SimTime copy_done = -1;
    copy->onComplete = [&] { copy_done = rig.sim.now(); };
    rig.dispatcher.enqueue(rig.queueFor(0), copy);

    auto k = test::makeProfile("parallel", 13, 5.0);
    rig.launch(rig.queueFor(1), &k);
    rig.run();

    EXPECT_LT(probe.startOf("parallel"), copy_done)
        << "independent engines must overlap (Section 2.2)";
}

TEST(Scenarios, DssRetargetRecoversOrphanReservations)
{
    // A draining reservation whose beneficiary finishes mid-drain:
    // with retargeting the SM is redirected; either way the system
    // must settle with every SM busy on the survivor.
    for (bool retarget : {true, false}) {
        sim::Config cfg;
        cfg.set("dss.tokens_per_kernel", static_cast<std::int64_t>(4));
        cfg.set("dss.bonus_tokens", static_cast<std::int64_t>(1));
        cfg.set("dss.retarget", retarget);
        DeviceRig rig("dss", "draining", cfg);

        auto long_a = test::makeProfile("a", 40000, 100.0);
        auto tiny = test::makeProfile("t", 13, 5.0);
        auto long_b = test::makeProfile("b", 40000, 100.0);
        rig.launch(rig.queueFor(0), &long_a);
        rig.run(sim::microseconds(200.0));
        // tiny triggers reservations, then finishes long before the
        // 100 us drains complete -> orphans.
        rig.launch(rig.queueFor(1), &tiny);
        rig.launch(rig.queueFor(2), &long_b);
        rig.run(rig.sim.now() + sim::milliseconds(3.0));

        int busy = 0;
        for (const auto &sm : rig.framework.sms()) {
            if (sm->kernel != nullptr)
                ++busy;
        }
        EXPECT_EQ(busy, 13)
            << "orphaned reservations leaked SMs (retarget="
            << retarget << ")";
    }
}

TEST(Scenarios, SmallerQuantumMeansMoreRotations)
{
    auto rotations_with = [](double quantum_us) {
        sim::Config cfg;
        cfg.set("tmux.quantum_us", quantum_us);
        DeviceRig rig("tmux", "context_switch", cfg);
        auto ka = test::makeProfile("a", 20000, 20.0);
        auto kb = test::makeProfile("b", 20000, 20.0);
        rig.launch(rig.queueFor(0), &ka);
        rig.launch(rig.queueFor(1), &kb);
        rig.run(sim::milliseconds(4.0));
        auto *tm = dynamic_cast<core::TimeMuxPolicy *>(
            &rig.framework.policy());
        return tm->rotations();
    };
    auto fast = rotations_with(100.0);
    auto slow = rotations_with(800.0);
    EXPECT_GT(fast, slow)
        << "quantum must control the multiplexing rate";
    EXPECT_GT(slow, 0u);
}

TEST(Scenarios, FcfsIsolatedEqualsSoloBaseline)
{
    // Sanity anchor for all NTT metrics: a 1-process "workload" under
    // every policy matches the FCFS isolated time (policies must not
    // perturb uncontended execution).
    double fcfs_us = 0;
    for (const char *policy : {"fcfs", "npq", "ppq_excl", "dss",
                               "tmux"}) {
        workload::SystemSpec spec;
        spec.benchmarks = {"histo"};
        spec.policy = policy;
        spec.minReplays = 2;
        workload::System system(spec);
        double t = system.run(sim::seconds(30.0)).meanTurnaroundUs[0];
        if (fcfs_us == 0)
            fcfs_us = t;
        EXPECT_NEAR(t, fcfs_us, fcfs_us * 0.01) << policy;
    }
}
