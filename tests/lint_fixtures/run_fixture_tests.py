#!/usr/bin/env python3
"""Test driver for scripts/lint_determinism.py.

Runs the linter over the fixture tree (a miniature repo root, so the
path-scoped rules see harness/exec/wire.cc and metrics/ files at their
real locations) and asserts, per fixture, the EXACT multiset of rule
IDs that fire.  Registered as a ctest target (test_lint_fixtures).

Also asserts the meta-properties the CI lint job depends on: exit
status 1 when any fixture fires, exit status 0 on the clean fixture
subset, and a nonempty --list-rules table.
"""

import collections
import re
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent.parent
LINTER = REPO / "scripts" / "lint_determinism.py"

# fixture path (relative to the fixture root) -> expected Counter of
# rule IDs.  An entry with an empty Counter must lint clean.
EXPECTED = {
    "src/core/wall_clock.cc": collections.Counter({"wall-clock": 4}),
    "src/core/raw_rand.cc": collections.Counter({"raw-rand": 3}),
    "src/metrics/unordered_output.cc":
        collections.Counter({"unordered-output": 4}),
    "src/harness/exec/wire.cc": collections.Counter({"float-format": 3}),
    "src/core/ptr_sort.cc": collections.Counter({"ptr-sort": 2}),
    "src/core/allow_pragmas.cc": collections.Counter(),
    "src/core/stale_pragma.cc":
        collections.Counter({"stale-pragma": 1, "bad-pragma": 1}),
}

FINDING_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): \[(?P<rule>[a-z-]+)\]")


def run_linter(paths):
    cmd = [sys.executable, str(LINTER), "--repo-root", str(HERE)]
    cmd += [str(HERE / p) for p in paths]
    return subprocess.run(cmd, capture_output=True, text=True)


def main():
    failures = []

    # --list-rules prints the documented rule table.
    res = subprocess.run([sys.executable, str(LINTER), "--list-rules"],
                         capture_output=True, text=True)
    if res.returncode != 0 or "wall-clock" not in res.stdout:
        failures.append("--list-rules did not print the rule table")

    # Per-fixture exactness.
    for rel, expected in sorted(EXPECTED.items()):
        res = run_linter([rel])
        got = collections.Counter()
        for line in res.stdout.splitlines():
            m = FINDING_RE.match(line)
            if m:
                got[m.group("rule")] += 1
        if got != expected:
            failures.append(
                f"{rel}: expected {dict(expected)}, got {dict(got)}\n"
                f"  stdout: {res.stdout.strip()!r}")
        want_rc = 1 if expected else 0
        if res.returncode != want_rc:
            failures.append(
                f"{rel}: expected exit {want_rc}, got {res.returncode}")

    # Whole-tree run: every firing fixture's findings show up together
    # and the exit status is 1.
    res = run_linter(["src"])
    total_expected = sum((c for c in EXPECTED.values()),
                         collections.Counter())
    got = collections.Counter()
    for line in res.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            got[m.group("rule")] += 1
    if got != total_expected:
        failures.append(
            f"whole tree: expected {dict(total_expected)}, "
            f"got {dict(got)}")
    if res.returncode != 1:
        failures.append(f"whole tree: expected exit 1, got {res.returncode}")

    # The real source tree must be clean (the CI gate).
    res = subprocess.run(
        [sys.executable, str(LINTER), "--repo-root", str(REPO),
         str(REPO / "src")],
        capture_output=True, text=True)
    if res.returncode != 0:
        failures.append(
            f"src/ at HEAD is not lint-clean:\n{res.stdout}")

    if failures:
        print("FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"ok: {len(EXPECTED)} fixtures + whole-tree + src/ clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
