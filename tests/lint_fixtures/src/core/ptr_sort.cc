// Fixture: std::sort over raw-pointer containers.
// Expected findings: ptr-sort x2 (the comparator-less sorts).
#include <algorithm>
#include <vector>

namespace fixture {

struct Node
{
    int key;
};

void sortNodes(std::vector<Node *> &nodes, std::vector<Node *> &more)
{
    std::sort(nodes.begin(), nodes.end());        // FINDING ptr-sort
    std::stable_sort(more.begin(), more.end());   // FINDING ptr-sort
    // With an explicit key the order is value-determined and fine:
    std::sort(nodes.begin(), nodes.end(),
              [](const Node *a, const Node *b) { return a->key < b->key; });
    // Sorting values (not pointers) is always fine:
    std::vector<int> keys;
    std::sort(keys.begin(), keys.end());
}

} // namespace fixture
