// Fixture: pragmas that suppress nothing (and one for a rule that
// does not exist) are themselves findings, so allowlist entries
// cannot rot in place.
// Expected findings: stale-pragma x1, bad-pragma x1.
namespace fixture {

int nothingWrongHere()
{
    int x = 1; // gpump-lint: allow(wall-clock)
    int y = 2; // gpump-lint: allow(made-up-rule)
    return x + y;
}

} // namespace fixture
