// Fixture: every form of wall-clock read the lint must reject.
// Expected findings: wall-clock x4 (lines marked below).
#include <chrono>
#include <ctime>
#include <sys/time.h>

namespace fixture {

long wallClockReads()
{
    std::time_t t = time(nullptr);                       // FINDING wall-clock
    auto tp = std::chrono::system_clock::now();          // FINDING wall-clock
    struct timeval tv;
    gettimeofday(&tv, nullptr);                          // FINDING wall-clock
    auto hr = std::chrono::high_resolution_clock::now(); // FINDING wall-clock
    // steady_clock is monotonic and allowed (wallSeconds telemetry):
    auto ok = std::chrono::steady_clock::now();
    (void)tp;
    (void)hr;
    (void)ok;
    return static_cast<long>(t) + tv.tv_sec;
}

} // namespace fixture
