// Fixture: every banned pattern suppressed by its per-line pragma.
// Expected findings: none — each allow() covers exactly its line.
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

int suppressedEverywhere()
{
    std::time_t t = time(nullptr); // gpump-lint: allow(wall-clock)
    srand(7);                      // gpump-lint: allow(raw-rand)
    int a = rand();                // gpump-lint: allow(raw-rand)
    std::random_device rd;         // gpump-lint: allow(raw-rand)
    return static_cast<int>(t) + a + static_cast<int>(rd());
}

} // namespace fixture
