// Fixture: raw randomness outside sim::Rng.
// Expected findings: raw-rand x3.
#include <cstdlib>
#include <random>

namespace fixture {

int rawRandomness()
{
    srand(42);                    // FINDING raw-rand
    int a = rand();               // FINDING raw-rand
    std::random_device rd;        // FINDING raw-rand
    return a + static_cast<int>(rd());
}

} // namespace fixture
