// Fixture: decimal double formatting inside the wire codec (the file
// set held to the hexfloat-only contract).
// Expected findings: float-format x3.
#include <cstdio>
#include <string>

namespace fixture {

std::string encodeDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%f", v);     // FINDING float-format
    std::snprintf(buf, sizeof(buf), "%.17g", v);  // FINDING float-format
    std::snprintf(buf, sizeof(buf), "%-12.6e", v); // FINDING float-format
    // Hexfloat round-trips bit-exactly and is the one permitted form:
    std::snprintf(buf, sizeof(buf), "%a", v);
    // Integer conversions are fine too:
    std::snprintf(buf, sizeof(buf), "%d %s %llu", 1, "x", 2ull);
    return buf;
}

} // namespace fixture
