// Fixture: unordered containers in an output-feeding file (metrics/
// feeds the report/JSONL path).  Expected findings: unordered-output x2.
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

double sumValues()
{
    std::unordered_map<std::string, double> byName; // FINDING unordered-output
    std::unordered_set<int> seen;                   // FINDING unordered-output
    byName["a"] = 1.0;
    seen.insert(1);
    double total = 0.0;
    for (const auto &kv : byName)
        total += kv.second;
    return total + static_cast<double>(seen.size());
}

} // namespace fixture
