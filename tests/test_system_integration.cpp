/**
 * Full-stack integration tests: multiprogrammed workloads end to end,
 * reproducing the paper's qualitative claims on small configurations.
 */

#include <gtest/gtest.h>

#include "metrics/metrics.hh"
#include "sim/logging.hh"
#include "workload/system.hh"

using namespace gpump;
using namespace gpump::workload;

namespace {

SystemResult
runSpec(SystemSpec spec, sim::Config cfg = sim::Config())
{
    System system(spec, cfg);
    return system.run(sim::seconds(60.0));
}

double
isolatedUs(const std::string &bench)
{
    SystemSpec spec;
    spec.benchmarks = {bench};
    spec.minReplays = 3;
    return runSpec(spec).meanTurnaroundUs[0];
}

} // namespace

TEST(SystemIntegration, TwoProcessFcfsWorkloadCompletes)
{
    SystemSpec spec;
    spec.benchmarks = {"sgemm", "spmv"};
    spec.minReplays = 3;
    auto result = runSpec(spec);
    EXPECT_GE(result.runs[0].size(), 3u);
    EXPECT_GE(result.runs[1].size(), 3u);
    EXPECT_EQ(result.preemptions, 0u);
}

TEST(SystemIntegration, EveryPolicyMechanismComboRuns)
{
    for (const char *policy :
         {"fcfs", "npq", "ppq_excl", "ppq_shared", "dss"}) {
        for (const char *mech : {"context_switch", "draining"}) {
            SystemSpec spec;
            spec.benchmarks = {"sgemm", "histo", "spmv"};
            spec.priorities = {1, 0, 0};
            spec.policy = policy;
            spec.mechanism = mech;
            spec.minReplays = 2;
            auto result = runSpec(spec);
            for (const auto &runs : result.runs)
                EXPECT_GE(runs.size(), 2u) << policy << "/" << mech;
        }
    }
}

TEST(SystemIntegration, SlowdownsAreAtLeastOne)
{
    SystemSpec spec;
    spec.benchmarks = {"sgemm", "mri-q", "spmv", "histo"};
    spec.minReplays = 3;
    auto result = runSpec(spec);
    for (std::size_t i = 0; i < spec.benchmarks.size(); ++i) {
        double ntt = result.meanTurnaroundUs[i] /
            isolatedUs(spec.benchmarks[i]);
        EXPECT_GT(ntt, 0.99)
            << spec.benchmarks[i]
            << " ran faster multiprogrammed than alone";
    }
}

TEST(SystemIntegration, PpqCutsHighPriorityTurnaround)
{
    // The Figure 5 effect on one workload: prioritizing a short app
    // against long ones, PPQ < NPQ < FCFS turnaround.
    SystemSpec spec;
    spec.benchmarks = {"sgemm", "lbm", "stencil", "mri-gridding"};
    spec.priorities = {1, 0, 0, 0};
    spec.minReplays = 3;

    spec.policy = "fcfs";
    double fcfs = runSpec(spec).meanTurnaroundUs[0];
    spec.policy = "npq";
    spec.transferPolicy = "priority";
    double npq = runSpec(spec).meanTurnaroundUs[0];
    spec.policy = "ppq_excl";
    double ppq = runSpec(spec).meanTurnaroundUs[0];

    EXPECT_LT(npq, fcfs) << "priority reordering must help";
    EXPECT_LT(ppq, npq * 1.001) << "preemption must help at least as "
                                   "much as reordering";
    EXPECT_LT(ppq, fcfs * 0.55)
        << "preemptive prioritization should cut turnaround strongly";
}

TEST(SystemIntegration, DssImprovesFairnessOverFcfs)
{
    SystemSpec spec;
    spec.benchmarks = {"sgemm", "spmv", "lbm", "stencil"};
    spec.minReplays = 3;

    std::vector<double> iso;
    for (const auto &b : spec.benchmarks)
        iso.push_back(isolatedUs(b));

    spec.policy = "fcfs";
    auto fcfs = runSpec(spec);
    spec.policy = "dss";
    auto dss = runSpec(spec);

    auto m_fcfs = metrics::computeMetrics(iso, fcfs.meanTurnaroundUs);
    auto m_dss = metrics::computeMetrics(iso, dss.meanTurnaroundUs);

    EXPECT_GT(m_dss.fairness, m_fcfs.fairness)
        << "equal spatial sharing must improve fairness";
    EXPECT_LT(m_dss.antt, m_fcfs.antt)
        << "short apps' waiting time dominates ANTT here";
    EXPECT_GT(dss.preemptions, 0u);
}

TEST(SystemIntegration, DssThroughputCostIsBounded)
{
    SystemSpec spec;
    spec.benchmarks = {"histo", "cutcp", "tpacf", "sad"};
    spec.minReplays = 2;

    std::vector<double> iso;
    for (const auto &b : spec.benchmarks)
        iso.push_back(isolatedUs(b));

    spec.policy = "fcfs";
    auto m_fcfs = metrics::computeMetrics(
        iso, runSpec(spec).meanTurnaroundUs);
    spec.policy = "dss";
    auto m_dss = metrics::computeMetrics(
        iso, runSpec(spec).meanTurnaroundUs);

    // Paper Figure 7c: STP degradation exists but stays moderate.
    EXPECT_LT(m_fcfs.stp / m_dss.stp, 2.0);
}

TEST(SystemIntegration, DeterministicAcrossRuns)
{
    SystemSpec spec;
    spec.benchmarks = {"sgemm", "histo", "spmv"};
    spec.policy = "dss";
    spec.seed = 12345;
    spec.minReplays = 2;
    auto a = runSpec(spec);
    auto b = runSpec(spec);
    EXPECT_EQ(a.endTime, b.endTime);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_EQ(a.meanTurnaroundUs, b.meanTurnaroundUs);
}

TEST(SystemIntegration, TbVariabilityKeepsWorking)
{
    sim::Config cfg;
    cfg.set("gpu.tb_time_cv", 0.2);
    SystemSpec spec;
    spec.benchmarks = {"sgemm", "spmv"};
    spec.policy = "dss";
    spec.minReplays = 2;
    auto result = runSpec(spec, cfg);
    EXPECT_GE(result.runs[0].size(), 2u);
    EXPECT_GE(result.runs[1].size(), 2u);
}

TEST(SystemIntegration, EightProcessWorkloadRuns)
{
    SystemSpec spec;
    spec.benchmarks = {"sgemm", "spmv",   "mri-q", "histo",
                       "cutcp", "stencil", "lbm",  "sad"};
    spec.policy = "dss";
    spec.mechanism = "draining";
    spec.minReplays = 2;
    auto result = runSpec(spec);
    for (const auto &runs : result.runs)
        EXPECT_GE(runs.size(), 2u);
    EXPECT_GT(result.preemptions, 0u);
}
