/** Unit tests for the discrete-event core. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event.hh"
#include "sim/logging.hh"

using namespace gpump;
using sim::EventQueue;

TEST(EventQueue, StartsEmptyAtTimeZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, SameTimeOrderedByPriorityThenFifo)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(3); }, sim::prioDefault);
    q.schedule(5, [&] { order.push_back(1); }, sim::prioCompletion);
    q.schedule(5, [&] { order.push_back(4); }, sim::prioDefault);
    q.schedule(5, [&] { order.push_back(2); }, sim::prioDriver);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueue, NowAdvancesDuringExecution)
{
    EventQueue q;
    sim::SimTime seen = -1;
    q.schedule(42, [&] { seen = q.now(); });
    q.run();
    EXPECT_EQ(seen, 42);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.run();
    EXPECT_THROW(q.schedule(5, [] {}), sim::PanicError);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    auto h = q.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(h.pending());
    EXPECT_TRUE(h.cancel());
    EXPECT_FALSE(h.pending());
    EXPECT_FALSE(h.cancel()) << "double cancel must report failure";
    q.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(q.executed(), 0u);
}

TEST(EventQueue, CancelMaintainsPendingCount)
{
    EventQueue q;
    auto h1 = q.schedule(10, [] {});
    auto h2 = q.schedule(20, [] {});
    EXPECT_EQ(q.pending(), 2u);
    h1.cancel();
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_TRUE(q.empty());
    (void)h2;
}

TEST(EventQueue, CancelledHeadDoesNotAdvanceTime)
{
    EventQueue q;
    auto h = q.schedule(10, [] {});
    q.schedule(20, [] {});
    h.cancel();
    q.run();
    EXPECT_EQ(q.now(), 20);
}

TEST(EventQueue, RunHonoursLimit)
{
    EventQueue q;
    int count = 0;
    q.schedule(10, [&] { ++count; });
    q.schedule(20, [&] { ++count; });
    q.schedule(30, [&] { ++count; });
    q.run(20);
    EXPECT_EQ(count, 2) << "events at the limit must run";
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    std::vector<sim::SimTime> times;
    q.schedule(10, [&] {
        times.push_back(q.now());
        q.scheduleIn(5, [&] { times.push_back(q.now()); });
    });
    q.run();
    EXPECT_EQ(times, (std::vector<sim::SimTime>{10, 15}));
}

TEST(EventQueue, ScheduleInUsesCurrentTime)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.run();
    sim::SimTime fired = 0;
    q.scheduleIn(7, [&] { fired = q.now(); });
    q.run();
    EXPECT_EQ(fired, 107);
}

TEST(EventQueue, HandleOutlivesExecution)
{
    EventQueue q;
    auto h = q.schedule(1, [] {});
    q.run();
    EXPECT_FALSE(h.pending());
    EXPECT_FALSE(h.cancel());
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue q;
    sim::SimTime last = -1;
    bool monotone = true;
    for (int i = 0; i < 10000; ++i) {
        // Deterministic scattered times with collisions.
        sim::SimTime t = (i * 7919) % 1000;
        q.schedule(t, [&, t] {
            if (q.now() < last)
                monotone = false;
            last = q.now();
        });
    }
    q.run();
    EXPECT_TRUE(monotone);
    EXPECT_EQ(q.executed(), 10000u);
}

TEST(EventQueue, NullCallbackPanics)
{
    EventQueue q;
    EXPECT_THROW(q.schedule(1, EventQueue::Callback()), sim::PanicError);
}

TEST(EventQueue, NegativeDelayPanics)
{
    EventQueue q;
    EXPECT_THROW(q.scheduleIn(-1, [] {}), sim::PanicError);
}
