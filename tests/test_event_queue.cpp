/** Unit tests for the discrete-event core. */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/event.hh"
#include "sim/logging.hh"

using namespace gpump;
using sim::EventQueue;

TEST(EventQueue, StartsEmptyAtTimeZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, SameTimeOrderedByPriorityThenFifo)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(3); }, sim::prioDefault);
    q.schedule(5, [&] { order.push_back(1); }, sim::prioCompletion);
    q.schedule(5, [&] { order.push_back(4); }, sim::prioDefault);
    q.schedule(5, [&] { order.push_back(2); }, sim::prioDriver);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueue, NowAdvancesDuringExecution)
{
    EventQueue q;
    sim::SimTime seen = -1;
    q.schedule(42, [&] { seen = q.now(); });
    q.run();
    EXPECT_EQ(seen, 42);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.run();
    EXPECT_THROW(q.schedule(5, [] {}), sim::PanicError);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    auto h = q.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(h.pending());
    EXPECT_TRUE(h.cancel());
    EXPECT_FALSE(h.pending());
    EXPECT_FALSE(h.cancel()) << "double cancel must report failure";
    q.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(q.executed(), 0u);
}

TEST(EventQueue, CancelMaintainsPendingCount)
{
    EventQueue q;
    auto h1 = q.schedule(10, [] {});
    auto h2 = q.schedule(20, [] {});
    EXPECT_EQ(q.pending(), 2u);
    h1.cancel();
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_TRUE(q.empty());
    (void)h2;
}

TEST(EventQueue, CancelledHeadDoesNotAdvanceTime)
{
    EventQueue q;
    auto h = q.schedule(10, [] {});
    q.schedule(20, [] {});
    h.cancel();
    q.run();
    EXPECT_EQ(q.now(), 20);
}

TEST(EventQueue, RunHonoursLimit)
{
    EventQueue q;
    int count = 0;
    q.schedule(10, [&] { ++count; });
    q.schedule(20, [&] { ++count; });
    q.schedule(30, [&] { ++count; });
    q.run(20);
    EXPECT_EQ(count, 2) << "events at the limit must run";
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    std::vector<sim::SimTime> times;
    q.schedule(10, [&] {
        times.push_back(q.now());
        q.scheduleIn(5, [&] { times.push_back(q.now()); });
    });
    q.run();
    EXPECT_EQ(times, (std::vector<sim::SimTime>{10, 15}));
}

TEST(EventQueue, ScheduleInUsesCurrentTime)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.run();
    sim::SimTime fired = 0;
    q.scheduleIn(7, [&] { fired = q.now(); });
    q.run();
    EXPECT_EQ(fired, 107);
}

TEST(EventQueue, HandleOutlivesExecution)
{
    EventQueue q;
    auto h = q.schedule(1, [] {});
    q.run();
    EXPECT_FALSE(h.pending());
    EXPECT_FALSE(h.cancel());
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue q;
    sim::SimTime last = -1;
    bool monotone = true;
    for (int i = 0; i < 10000; ++i) {
        // Deterministic scattered times with collisions.
        sim::SimTime t = (i * 7919) % 1000;
        q.schedule(t, [&, t] {
            if (q.now() < last)
                monotone = false;
            last = q.now();
        });
    }
    q.run();
    EXPECT_TRUE(monotone);
    EXPECT_EQ(q.executed(), 10000u);
}

TEST(EventQueue, NullCallbackPanics)
{
    EventQueue q;
    EXPECT_THROW(q.schedule(1, EventQueue::Callback()), sim::PanicError);
}

TEST(EventQueue, NegativeDelayPanics)
{
    EventQueue q;
    EXPECT_THROW(q.scheduleIn(-1, [] {}), sim::PanicError);
}

TEST(EventQueue, StaleHandleAfterSlotReuseIsInert)
{
    EventQueue q;
    auto h1 = q.schedule(10, [] {});
    q.run(); // h1's slot is recycled
    bool ran = false;
    auto h2 = q.schedule(20, [&] { ran = true; });
    // h1 now points at a reused slot; the generation counter must
    // keep it from observing or cancelling h2's event.
    EXPECT_FALSE(h1.pending());
    EXPECT_FALSE(h1.cancel());
    EXPECT_TRUE(h2.pending());
    q.run();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, CancelledSlotReuseKeepsOldHandleInert)
{
    EventQueue q;
    auto h1 = q.schedule(10, [] {});
    h1.cancel();
    int fired = 0;
    // Schedule/cancel/run enough times that h1's slot is certainly
    // recycled several times over.
    for (int i = 0; i < 20; ++i) {
        q.schedule(10 + i, [&] { ++fired; });
        EXPECT_FALSE(h1.pending());
        EXPECT_FALSE(h1.cancel());
    }
    q.run();
    EXPECT_EQ(fired, 20);
}

TEST(EventQueue, SlotsAreRecycledInSteadyState)
{
    EventQueue q;
    // Never more than one event in flight: the slab must not grow
    // beyond its peak concurrency no matter how many events run.
    for (int i = 0; i < 1000; ++i)
        q.schedule(i, [] {});
    q.run();
    std::size_t peak = q.slotsAllocated();
    for (int i = 0; i < 1000; ++i) {
        q.scheduleIn(1, [] {});
        q.run();
    }
    EXPECT_EQ(q.slotsAllocated(), peak)
        << "slots leaked instead of recycling through the free list";
}

TEST(EventQueue, MassCancellationCompactsTheHeap)
{
    EventQueue q;
    std::vector<EventQueue::Handle> handles;
    const std::size_t n = 1000;
    for (std::size_t i = 0; i < n; ++i) {
        handles.push_back(
            q.schedule(static_cast<sim::SimTime>(1000000 + i), [] {}));
    }
    EXPECT_EQ(q.heapEntries(), n);
    // Cancel all but the last: dead entries must not accumulate until
    // popped (they used to sit in the heap until their far-future
    // timestamps came up).
    for (std::size_t i = 0; i + 1 < n; ++i)
        handles[i].cancel();
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_LT(q.heapEntries(), 64u)
        << "cancelled far-future entries were not compacted away";
    bool ran = false;
    q.schedule(2000000, [&] { ran = true; }); // behind every cancelled one
    q.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(q.executed(), 2u);
}

TEST(EventQueue, LargeCapturesFallBackTransparently)
{
    EventQueue q;
    // A capture bigger than the inline buffer must still work (heap
    // fallback path of EventCallback).
    struct Big
    {
        char bytes[128];
    } big = {};
    big.bytes[0] = 42;
    char seen = 0;
    q.schedule(1, [big, &seen] { seen = big.bytes[0]; });
    static_assert(sizeof(Big) > sim::EventCallback::inlineBytes,
                  "capture intended to exceed the inline buffer");
    q.run();
    EXPECT_EQ(seen, 42);
}

TEST(EventQueue, ReservedSequencesBreakTiesInReservationOrder)
{
    EventQueue q;
    std::vector<int> order;
    // Reserve two sequence numbers, then arm them in reverse order:
    // ties at equal (time, priority) must fire in reservation order,
    // not scheduling order.
    std::uint64_t s1 = q.reserveSeq();
    std::uint64_t s2 = q.reserveSeq();
    q.scheduleWithSeq(5, s2, [&] { order.push_back(2); },
                      sim::prioCompletion);
    q.scheduleWithSeq(5, s1, [&] { order.push_back(1); },
                      sim::prioCompletion);
    q.schedule(5, [&] { order.push_back(3); }, sim::prioCompletion);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

/**
 * Randomized property test: arbitrary schedule/cancel/step
 * interleavings must fire exactly the events a naive reference model
 * predicts, in exactly the model's (time, priority, seq) order.
 */
TEST(EventQueueProperty, RandomInterleavingsMatchReferenceModel)
{
    std::uint64_t lcg = 0x9e3779b97f4a7c15ull;
    auto rnd = [&lcg](std::uint64_t mod) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return (lcg >> 33) % mod;
    };
    const int prios[] = {sim::prioCompletion, sim::prioDriver,
                         sim::prioPolicy, sim::prioDefault};

    for (int round = 0; round < 25; ++round) {
        EventQueue q;
        struct ModelEvent
        {
            sim::SimTime when;
            int priority;
            std::uint64_t seq;
            int id;
            bool alive;
        };
        std::vector<ModelEvent> model;
        std::vector<EventQueue::Handle> handles;
        std::vector<int> fired;
        std::uint64_t seqCounter = 0; // mirrors the queue's counter

        auto modelNext = [&]() -> ModelEvent * {
            ModelEvent *best = nullptr;
            for (auto &e : model) {
                if (!e.alive)
                    continue;
                if (!best || e.when < best->when ||
                    (e.when == best->when &&
                     (e.priority < best->priority ||
                      (e.priority == best->priority &&
                       e.seq < best->seq)))) {
                    best = &e;
                }
            }
            return best;
        };

        for (int op = 0; op < 400; ++op) {
            std::uint64_t what = rnd(10);
            if (what < 6) { // schedule
                sim::SimTime when =
                    q.now() + static_cast<sim::SimTime>(rnd(50));
                int priority =
                    prios[rnd(sizeof(prios) / sizeof(prios[0]))];
                int id = static_cast<int>(model.size());
                std::uint64_t seq;
                if (rnd(4) == 0) {
                    // Exercise the reserve-then-arm path.
                    seq = q.reserveSeq();
                    ASSERT_EQ(seq, seqCounter++);
                    handles.push_back(q.scheduleWithSeq(
                        when, seq,
                        [&fired, id] { fired.push_back(id); },
                        priority));
                } else {
                    seq = seqCounter++;
                    handles.push_back(q.schedule(
                        when, [&fired, id] { fired.push_back(id); },
                        priority));
                }
                model.push_back({when, priority, seq, id, true});
            } else if (what < 8 && !model.empty()) { // cancel
                std::uint64_t pick = rnd(model.size());
                bool expect = model[pick].alive;
                EXPECT_EQ(handles[pick].cancel(), expect);
                EXPECT_FALSE(handles[pick].pending());
                model[pick].alive = false;
            } else { // step
                ModelEvent *next = modelNext();
                if (next == nullptr) {
                    EXPECT_FALSE(q.step());
                    EXPECT_TRUE(q.empty());
                } else {
                    ASSERT_TRUE(q.step());
                    EXPECT_EQ(q.now(), next->when);
                    ASSERT_FALSE(fired.empty());
                    EXPECT_EQ(fired.back(), next->id);
                    next->alive = false;
                }
            }
            // The live count always matches the model's.
            std::size_t alive = 0;
            for (const auto &e : model)
                alive += e.alive ? 1 : 0;
            ASSERT_EQ(q.pending(), alive);
        }

        // Drain; the tail must also fire in model order.
        while (ModelEvent *next = modelNext()) {
            ASSERT_TRUE(q.step());
            EXPECT_EQ(fired.back(), next->id);
            next->alive = false;
        }
        EXPECT_FALSE(q.step());
        EXPECT_TRUE(q.empty());
    }
}
