/**
 * Tests of device-memory residency (memory/residency.hh): per-context
 * admission, LRU eviction with pinning, swap-in completion plumbing,
 * and the end-to-end oversubscribed run where swap traffic is charged
 * on the PCIe transfer path.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "memory/gpu_memory.hh"
#include "memory/page_table.hh"
#include "memory/residency.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "trace/app_model.hh"
#include "workload/system.hh"

using namespace gpump;
using namespace gpump::memory;

namespace {

constexpr std::int64_t kPage = static_cast<std::int64_t>(gpuPageBytes);

/** One recorded swap submission. */
struct SwapRec
{
    sim::ContextId ctx;
    std::int64_t bytes;
    bool toDevice;
    std::function<void()> done;
};

/** GpuMemory + frame allocator + a manager whose swap transfers are
 *  recorded instead of simulated; tests complete them by hand. */
struct ResidencyRig
{
    sim::StatRegistry reg;
    GpuMemory gmem;
    FrameAllocator frames;
    std::vector<SwapRec> swaps;
    ResidencyManager rm;

    explicit ResidencyRig(std::int64_t capacity_pages)
        : gmem(reg, paramsFor(capacity_pages)),
          frames(static_cast<std::size_t>(capacity_pages)),
          rm(reg, gmem,
             [this](sim::ContextId ctx, int, std::int64_t bytes,
                    bool to_device, std::function<void()> done) {
                 swaps.push_back(
                     {ctx, bytes, to_device, std::move(done)});
             })
    {
    }

    static GpuMemoryParams paramsFor(std::int64_t pages)
    {
        GpuMemoryParams p;
        p.capacity = pages * kPage;
        return p;
    }

    /** Run every pending swap-completion callback, in order. */
    void completeSwaps()
    {
        // Callbacks can submit follow-up swaps; drain by index.
        for (std::size_t i = 0; i < swaps.size(); ++i) {
            if (swaps[i].done) {
                auto done = std::move(swaps[i].done);
                swaps[i].done = nullptr;
                done();
            }
        }
    }
};

} // namespace

TEST(Residency, FootprintBeyondCapacityIsFatal)
{
    ResidencyRig rig(8);
    PageTable pt(rig.frames);
    EXPECT_THROW(rig.rm.registerContext(0, 0, 9 * kPage, pt),
                 sim::FatalError)
        << "a footprint no eviction can ever make room for must be "
           "rejected at admission";
}

TEST(Residency, OversubscribedContextIsAdmittedSwappedOut)
{
    // The seed refused workloads whose combined footprints exceed
    // capacity.  Now only the per-context bound is fatal: the second
    // context is admitted without device memory.
    ResidencyRig rig(8);
    PageTable pt0(rig.frames), pt1(rig.frames);
    rig.rm.registerContext(0, 0, 5 * kPage, pt0);
    rig.rm.registerContext(1, 0, 5 * kPage, pt1);

    EXPECT_TRUE(rig.rm.resident(0));
    EXPECT_FALSE(rig.rm.resident(1));
    EXPECT_EQ(rig.gmem.totalAllocated(), 5 * kPage);
    EXPECT_EQ(pt0.mappedPages(), 5u);
    EXPECT_EQ(pt1.mappedPages(), 0u);
    EXPECT_TRUE(rig.swaps.empty()) << "admission moves no data";

    bool ready = false;
    rig.rm.ensureResident(0, [&] { ready = true; });
    EXPECT_TRUE(ready) << "resident contexts are ready synchronously";
    EXPECT_TRUE(rig.swaps.empty());
}

TEST(Residency, SwapInEvictsLruAndRunsWaitersOnCompletion)
{
    ResidencyRig rig(8);
    PageTable pt0(rig.frames), pt1(rig.frames);
    rig.rm.registerContext(0, 0, 5 * kPage, pt0);
    rig.rm.registerContext(1, 0, 5 * kPage, pt1);

    int ready = 0;
    rig.rm.ensureResident(1, [&] { ++ready; });
    // Both directions submitted: write back the victim, fetch the
    // incoming context.
    ASSERT_EQ(rig.swaps.size(), 2u);
    EXPECT_EQ(rig.swaps[0].ctx, 0);
    EXPECT_FALSE(rig.swaps[0].toDevice);
    EXPECT_EQ(rig.swaps[0].bytes, 5 * kPage);
    EXPECT_EQ(rig.swaps[1].ctx, 1);
    EXPECT_TRUE(rig.swaps[1].toDevice);
    EXPECT_EQ(rig.swaps[1].bytes, 5 * kPage);

    // Eviction is immediate (frames reused for the incoming context);
    // readiness is not.
    EXPECT_FALSE(rig.rm.resident(0));
    EXPECT_EQ(pt0.mappedPages(), 0u);
    EXPECT_EQ(pt1.mappedPages(), 5u);
    EXPECT_EQ(rig.gmem.totalAllocated(), 5 * kPage);
    EXPECT_EQ(ready, 0) << "not ready until the swap-in lands";

    // A second request while the swap-in is in flight just waits;
    // it must not submit another transfer.
    rig.rm.ensureResident(1, [&] { ++ready; });
    EXPECT_EQ(rig.swaps.size(), 2u);

    rig.completeSwaps();
    EXPECT_TRUE(rig.rm.resident(1));
    EXPECT_EQ(ready, 2) << "every waiter runs exactly once";
    EXPECT_EQ(rig.rm.swapIns(), 1u);
    EXPECT_EQ(rig.rm.swapOuts(), 1u);
    EXPECT_DOUBLE_EQ(rig.rm.swapBytes(),
                     static_cast<double>(10 * kPage));
}

TEST(Residency, PinnedResidentsParkTheRequestUntilRelease)
{
    ResidencyRig rig(8);
    PageTable pt0(rig.frames), pt1(rig.frames);
    bool pinned = true;
    rig.rm.setPinQuery(
        [&](sim::ContextId ctx) { return ctx == 0 && pinned; });
    rig.rm.registerContext(0, 0, 5 * kPage, pt0);
    rig.rm.registerContext(1, 0, 5 * kPage, pt1);

    bool ready = false;
    rig.rm.ensureResident(1, [&] { ready = true; });
    EXPECT_EQ(rig.rm.parkedRequests(), 1u)
        << "the only victim is pinned: the request must park, not "
           "evict";
    EXPECT_TRUE(rig.swaps.empty());
    EXPECT_TRUE(rig.rm.resident(0));

    // Releasing the pin retries the parked request.
    pinned = false;
    rig.rm.onPinsReleased();
    EXPECT_EQ(rig.rm.parkedRequests(), 0u);
    ASSERT_EQ(rig.swaps.size(), 2u);
    rig.completeSwaps();
    EXPECT_TRUE(ready);
    EXPECT_TRUE(rig.rm.resident(1));
    EXPECT_FALSE(rig.rm.resident(0));
}

TEST(Residency, RemapNotifierFiresWhenAVictimLosesItsFrames)
{
    ResidencyRig rig(8);
    PageTable pt0(rig.frames), pt1(rig.frames);
    std::vector<sim::ContextId> remapped;
    rig.rm.setRemapNotifier(
        [&](sim::ContextId ctx) { remapped.push_back(ctx); });
    rig.rm.registerContext(0, 0, 5 * kPage, pt0);
    rig.rm.registerContext(1, 0, 5 * kPage, pt1);

    rig.rm.ensureResident(1, [] {});
    ASSERT_EQ(remapped.size(), 1u)
        << "exactly the evicted context is remapped";
    EXPECT_EQ(remapped[0], 0);
}

TEST(Residency, UnregisteredContextsAreAlwaysResident)
{
    // Contexts without a footprint (tests, driver-internal work)
    // never swap.
    ResidencyRig rig(8);
    EXPECT_TRUE(rig.rm.resident(42));
    bool ready = false;
    rig.rm.ensureResident(42, [&] { ready = true; });
    EXPECT_TRUE(ready);
    EXPECT_TRUE(rig.swaps.empty());
}

namespace {

/** A synthetic app with a large device footprint: 96 MiB of inputs,
 *  32 MiB of outputs, one 52-TB kernel in between. */
const trace::BenchmarkSpec &
bigFootprintSpec()
{
    static const trace::BenchmarkSpec spec = [] {
        trace::BenchmarkSpec s;
        s.name = "swapper";
        s.dataset = "synthetic";
        trace::KernelProfile k;
        k.benchmark = s.name;
        k.kernel = "crunch";
        k.launches = 1;
        k.numThreadBlocks = 52;
        k.timePerTbUs = 20.0;
        k.regsPerTb = 4096;
        k.threadsPerTb = 512;
        s.kernels.push_back(k);
        using Kind = trace::TraceOp::Kind;
        s.ops.push_back({Kind::MemcpyH2D, 0, 96ll << 20, -1, true});
        s.ops.push_back({Kind::KernelLaunch, 0, 0, 0, true});
        s.ops.push_back({Kind::DeviceSync, 0, 0, -1, true});
        s.ops.push_back({Kind::MemcpyD2H, 0, 32ll << 20, -1, true});
        s.validate();
        return s;
    }();
    return spec;
}

} // namespace

TEST(ResidencySystem, OversubscribedProcessesCompleteWithSwaps)
{
    // Two 128 MiB-footprint processes on a 192 MiB device: the seed
    // would have refused this workload outright.  Now exactly one
    // context fits at a time, so every hand-over of the engine swaps
    // the other context in over the PCIe path — and the run still
    // completes.
    sim::Config cfg;
    cfg.set("gmem.capacity", static_cast<std::int64_t>(192) << 20);
    cfg.set("process.scratch_bytes", static_cast<std::int64_t>(0));
    workload::SystemSpec spec;
    spec.customSpecs = {&bigFootprintSpec(), &bigFootprintSpec()};
    spec.minReplays = 2;
    workload::System system(spec, cfg);
    auto result = system.run(sim::seconds(30.0));

    ASSERT_EQ(result.runs.size(), 2u);
    for (const auto &runs : result.runs)
        EXPECT_GE(runs.size(), 2u)
            << "both processes must finish their replays";
    EXPECT_GE(system.residency().swapIns(), 1u);
    EXPECT_GE(system.residency().swapOuts(), 1u);
    EXPECT_EQ(system.residency().parkedRequests(), 0u)
        << "nothing may end the run still waiting for memory";
    // Swap traffic is charged on the transfer path as driver
    // commands, one per swap direction.
    EXPECT_GE(system.framework().contextTransfers(),
              system.residency().swapIns() +
                  system.residency().swapOuts());
}

TEST(ResidencySystem, ResidentWorkloadsNeverSwap)
{
    // The same workload with the default (ample) capacity must not
    // touch the swap path at all.
    sim::Config cfg;
    cfg.set("process.scratch_bytes", static_cast<std::int64_t>(0));
    workload::SystemSpec spec;
    spec.customSpecs = {&bigFootprintSpec(), &bigFootprintSpec()};
    spec.minReplays = 2;
    workload::System system(spec, cfg);
    auto result = system.run(sim::seconds(30.0));

    ASSERT_EQ(result.runs.size(), 2u);
    EXPECT_EQ(system.residency().swapIns(), 0u);
    EXPECT_EQ(system.residency().swapOuts(), 0u);
    EXPECT_EQ(system.framework().contextTransfers(), 0u)
        << "no driver-originated transfers at defaults";
}
