/** Tests of the baseline FCFS policy (Section 2.3 semantics). */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/logging.hh"
#include "tests/test_util.hh"

using namespace gpump;
using test::DeviceRig;

namespace {

/** Records kernel start/finish order with timestamps. */
struct OrderProbe : core::EngineObserver
{
    sim::Simulation *sim = nullptr;
    std::vector<std::pair<std::string, sim::SimTime>> starts;
    std::vector<std::pair<std::string, sim::SimTime>> finishes;

    void kernelStarted(const gpu::KernelExec &k) override
    {
        starts.emplace_back(k.profile().kernel, sim->now());
    }
    void kernelFinished(const gpu::KernelExec &k) override
    {
        finishes.emplace_back(k.profile().kernel, sim->now());
    }
};

} // namespace

TEST(Fcfs, ArrivalOrderAcrossContexts)
{
    DeviceRig rig("fcfs", "context_switch");
    OrderProbe probe;
    probe.sim = &rig.sim;
    rig.framework.setObserver(&probe);

    auto k1 = test::makeProfile("k1", 260, 50.0);
    auto k2 = test::makeProfile("k2", 26, 10.0);
    auto k3 = test::makeProfile("k3", 26, 10.0);
    rig.launch(rig.queueFor(0), &k1);
    rig.launch(rig.queueFor(1), &k2);
    rig.launch(rig.queueFor(2), &k3);
    rig.run();

    ASSERT_EQ(probe.starts.size(), 3u);
    EXPECT_EQ(probe.starts[0].first, "k1");
    EXPECT_EQ(probe.starts[1].first, "k2");
    EXPECT_EQ(probe.starts[2].first, "k3");
    // Strict serialization across contexts: each successor starts
    // only after the predecessor's last TB finished.
    EXPECT_GE(probe.starts[1].second, probe.finishes[0].second);
    EXPECT_GE(probe.starts[2].second, probe.finishes[1].second);
}

TEST(Fcfs, NeverPreempts)
{
    DeviceRig rig("fcfs", "context_switch");
    auto k1 = test::makeProfile("k1", 130, 20.0);
    auto k2 = test::makeProfile("k2", 13, 5.0);
    rig.launch(rig.queueFor(0), &k1, /*priority=*/0);
    rig.launch(rig.queueFor(1), &k2, /*priority=*/99);
    rig.run();
    EXPECT_EQ(rig.framework.preemptions(), 0u)
        << "FCFS ignores priorities and never preempts";
}

TEST(Fcfs, PriorityDoesNotReorder)
{
    DeviceRig rig("fcfs", "context_switch");
    OrderProbe probe;
    probe.sim = &rig.sim;
    rig.framework.setObserver(&probe);
    auto k1 = test::makeProfile("k1", 130, 20.0);
    auto k2 = test::makeProfile("k2", 13, 5.0);
    rig.launch(rig.queueFor(0), &k1, 0);
    rig.launch(rig.queueFor(1), &k2, 99);
    rig.run();
    ASSERT_EQ(probe.starts.size(), 2u);
    EXPECT_EQ(probe.starts[0].first, "k1")
        << "Figure 2a: the high-priority kernel must wait its turn";
}

TEST(Fcfs, BackToBackWithinContext)
{
    // Independent kernels of the same context may run concurrently
    // on free SMs (Section 2.3 back-to-back execution).  Two small
    // kernels from different queues of one context:
    DeviceRig rig("fcfs", "context_switch");
    OrderProbe probe;
    probe.sim = &rig.sim;
    rig.framework.setObserver(&probe);

    auto k1 = test::makeProfile("k1", 6 * 16, 100.0); // 6 SMs
    auto k2 = test::makeProfile("k2", 4 * 16, 100.0); // 4 SMs
    rig.launch(rig.queueFor(0), &k1);
    auto *q0b = rig.dispatcher.createQueue(0, rig.params.numHwQueues);
    rig.launch(q0b, &k2);
    rig.run();

    ASSERT_EQ(probe.starts.size(), 2u);
    // k2 starts while k1 is still running: same context co-residency.
    EXPECT_LT(probe.starts[1].second, probe.finishes[0].second);
}

TEST(Fcfs, HeadOfLineBlocksOtherContextEvenWithIdleSms)
{
    // k1 leaves 10 SMs idle, but k2 (other context) must still wait:
    // the baseline engine hosts one context at a time.
    DeviceRig rig("fcfs", "context_switch");
    OrderProbe probe;
    probe.sim = &rig.sim;
    rig.framework.setObserver(&probe);

    auto k1 = test::makeProfile("k1", 3 * 16, 100.0); // 3 SMs
    auto k2 = test::makeProfile("k2", 16, 10.0);      // 1 SM
    rig.launch(rig.queueFor(0), &k1);
    rig.launch(rig.queueFor(1), &k2);
    rig.run();

    ASSERT_EQ(probe.starts.size(), 2u);
    EXPECT_GE(probe.starts[1].second, probe.finishes[0].second)
        << "cross-context back-to-back is not possible on the baseline";
}

TEST(Fcfs, ManyKernelsAllComplete)
{
    DeviceRig rig("fcfs", "context_switch");
    auto k = test::makeProfile("k", 40, 5.0);
    std::vector<gpu::CommandQueue *> queues;
    int completed = 0;
    for (int c = 0; c < 8; ++c) {
        queues.push_back(rig.queueFor(c));
        for (int i = 0; i < 4; ++i) {
            auto cmd = gpu::Command::makeKernel(c, 0, &k);
            cmd->onComplete = [&completed] { ++completed; };
            rig.dispatcher.enqueue(queues.back(), cmd);
        }
    }
    rig.run();
    EXPECT_EQ(completed, 32);
    EXPECT_EQ(rig.framework.kernelsCompleted(), 32u);
    EXPECT_EQ(rig.framework.tbsCompleted(), 32u * 40u);
}
