/** Tests of the fluent trace builder used by parboil.cc and examples. */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "sim/types.hh"
#include "trace/app_model.hh"
#include "trace/trace_builder.hh"

using namespace gpump;
using namespace gpump::trace;

namespace {

KernelProfile
makeKernel(const std::string &name, int launches)
{
    KernelProfile k;
    k.benchmark = "testbench";
    k.kernel = name;
    k.launches = launches;
    k.numThreadBlocks = 4;
    k.timePerTbUs = 10.0;
    k.regsPerTb = 2048;
    k.sharedMemPerTb = 4096;
    k.threadsPerTb = 128;
    return k;
}

} // namespace

TEST(TraceBuilder, AppendsOpsInCallOrder)
{
    BenchmarkSpec spec;
    spec.kernels.push_back(makeKernel("k0", 1));

    TraceBuilder(spec)
        .cpu(300)
        .h2d(mib(2))
        .launch(0)
        .sync()
        .d2h(kib(256));

    ASSERT_EQ(spec.ops.size(), 5u);
    EXPECT_EQ(spec.ops[0].kind, TraceOp::Kind::CpuPhase);
    EXPECT_EQ(spec.ops[1].kind, TraceOp::Kind::MemcpyH2D);
    EXPECT_EQ(spec.ops[2].kind, TraceOp::Kind::KernelLaunch);
    EXPECT_EQ(spec.ops[3].kind, TraceOp::Kind::DeviceSync);
    EXPECT_EQ(spec.ops[4].kind, TraceOp::Kind::MemcpyD2H);
}

TEST(TraceBuilder, CpuPhaseIsConvertedToNanoseconds)
{
    BenchmarkSpec spec;
    TraceBuilder(spec).cpu(300);
    ASSERT_EQ(spec.ops.size(), 1u);
    EXPECT_EQ(spec.ops[0].duration, sim::microseconds(300));
}

TEST(TraceBuilder, BlockingAndAsyncCopiesSetSynchronousFlag)
{
    BenchmarkSpec spec;
    TraceBuilder(spec)
        .h2d(kib(1))
        .d2h(kib(2))
        .h2dAsync(kib(3))
        .d2hAsync(kib(4));

    ASSERT_EQ(spec.ops.size(), 4u);
    EXPECT_TRUE(spec.ops[0].synchronous);
    EXPECT_TRUE(spec.ops[1].synchronous);
    EXPECT_FALSE(spec.ops[2].synchronous);
    EXPECT_FALSE(spec.ops[3].synchronous);
    EXPECT_EQ(spec.ops[0].bytes, kib(1));
    EXPECT_EQ(spec.ops[3].bytes, kib(4));
}

TEST(TraceBuilder, LaunchRecordsKernelIndex)
{
    BenchmarkSpec spec;
    spec.kernels.push_back(makeKernel("k0", 1));
    spec.kernels.push_back(makeKernel("k1", 1));

    TraceBuilder(spec).launch(1).launch(0);

    ASSERT_EQ(spec.ops.size(), 2u);
    EXPECT_EQ(spec.ops[0].kernelIndex, 1);
    EXPECT_EQ(spec.ops[1].kernelIndex, 0);
}

TEST(TraceBuilder, LaunchOfUnknownKernelPanics)
{
    // GPUMP_ASSERT flags internal bugs, so it raises PanicError
    // (std::logic_error), not the user-facing FatalError.
    BenchmarkSpec spec;
    spec.kernels.push_back(makeKernel("k0", 1));
    EXPECT_THROW(TraceBuilder(spec).launch(1), sim::PanicError);
    EXPECT_THROW(TraceBuilder(spec).launch(-1), sim::PanicError);
}

TEST(TraceBuilder, NegativeCpuPhasePanics)
{
    BenchmarkSpec spec;
    EXPECT_THROW(TraceBuilder(spec).cpu(-1.0), sim::PanicError);
}

TEST(TraceBuilder, ByteHelpersMatchBinaryUnits)
{
    EXPECT_EQ(kib(1), 1024);
    EXPECT_EQ(kib(256), 256 * 1024);
    EXPECT_EQ(mib(1), 1024 * 1024);
    EXPECT_EQ(mib(2), 2 * 1024 * 1024);
}

TEST(TraceBuilder, BuiltTraceSatisfiesSpecValidation)
{
    BenchmarkSpec spec;
    spec.name = "testbench";
    spec.kernels.push_back(makeKernel("k0", 2));
    spec.kernels.push_back(makeKernel("k1", 1));

    TraceBuilder(spec)
        .cpu(100)
        .h2d(mib(1))
        .launch(0)
        .launch(1)
        .launch(0)
        .sync()
        .d2h(mib(1));

    EXPECT_NO_THROW(spec.validate());
    EXPECT_EQ(spec.totalLaunches(), 3);
    EXPECT_EQ(spec.bytesH2D(), mib(1));
    EXPECT_EQ(spec.bytesD2H(), mib(1));
    EXPECT_EQ(spec.cpuTime(), sim::microseconds(100));
}

TEST(TraceBuilder, LaunchCountMismatchFailsSpecValidation)
{
    BenchmarkSpec spec;
    spec.name = "testbench";
    spec.kernels.push_back(makeKernel("k0", 2));

    TraceBuilder(spec).launch(0); // Table says 2 launches, trace has 1.

    EXPECT_THROW(spec.validate(), sim::FatalError);
}
