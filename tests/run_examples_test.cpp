/**
 * End-to-end runs of every examples/ binary.
 *
 * The build injects GPUMP_EXAMPLES_BINDIR (directory holding the
 * example_<name> binaries) and GPUMP_EXAMPLE_LIST (comma-separated
 * example names).  Each example must run to completion and exit 0;
 * this keeps the examples from silently rotting as the simulator
 * evolves.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#ifndef GPUMP_EXAMPLE_LIST
#error "build must define GPUMP_EXAMPLE_LIST"
#endif
#ifndef GPUMP_EXAMPLES_BINDIR
#error "build must define GPUMP_EXAMPLES_BINDIR"
#endif

namespace {

std::vector<std::string>
exampleNames()
{
    std::vector<std::string> names;
    std::stringstream ss(GPUMP_EXAMPLE_LIST);
    std::string name;
    while (std::getline(ss, name, ','))
        if (!name.empty())
            names.push_back(name);
    return names;
}

class RunExample : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RunExample, ExitsZero)
{
    const std::string binary =
        std::string(GPUMP_EXAMPLES_BINDIR) + "/example_" + GetParam();
    // Quote the path: the build tree may live under a directory with
    // spaces, and std::system goes through the shell.
    const std::string command = "\"" + binary + "\"";
    const int status = std::system(command.c_str());
    ASSERT_NE(status, -1) << "failed to spawn " << binary;
#ifdef WIFEXITED
    ASSERT_TRUE(WIFEXITED(status))
        << binary << " terminated abnormally (status " << status << ")";
    EXPECT_EQ(WEXITSTATUS(status), 0) << binary << " exited non-zero";
#else
    EXPECT_EQ(status, 0) << binary << " exited non-zero";
#endif
}

INSTANTIATE_TEST_SUITE_P(Examples, RunExample,
                         ::testing::ValuesIn(exampleNames()),
                         [](const auto &info) { return info.param; });

} // namespace

// ValuesIn on an empty list would make the suite vacuous; fail loudly
// instead if the build wired up no examples.
TEST(RunExampleSetup, AtLeastOneExampleConfigured)
{
    EXPECT_FALSE(exampleNames().empty());
}
