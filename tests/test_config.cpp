/** Unit tests for the configuration store. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/config.hh"
#include "sim/logging.hh"

using namespace gpump;
using sim::Config;

TEST(Config, DefaultsWhenAbsent)
{
    Config c;
    EXPECT_EQ(c.getString("k", "dflt"), "dflt");
    EXPECT_DOUBLE_EQ(c.getDouble("k", 2.5), 2.5);
    EXPECT_EQ(c.getInt("k", 7), 7);
    EXPECT_TRUE(c.getBool("k", true));
    EXPECT_FALSE(c.has("k"));
}

TEST(Config, TypedRoundTrips)
{
    Config c;
    c.set("s", std::string("hello"));
    c.set("d", 3.25);
    c.set("i", static_cast<std::int64_t>(-42));
    c.set("b", true);
    EXPECT_EQ(c.getString("s", ""), "hello");
    EXPECT_DOUBLE_EQ(c.getDouble("d", 0), 3.25);
    EXPECT_EQ(c.getInt("i", 0), -42);
    EXPECT_TRUE(c.getBool("b", false));
}

TEST(Config, ParseTokens)
{
    Config c;
    EXPECT_TRUE(c.parse("gpu.num_sms=13"));
    EXPECT_EQ(c.getInt("gpu.num_sms", 0), 13);
    EXPECT_FALSE(c.parse("no-equals"));
    EXPECT_FALSE(c.parse("=value"));
    // Value may itself contain '='.
    EXPECT_TRUE(c.parse("expr=a=b"));
    EXPECT_EQ(c.getString("expr", ""), "a=b");
}

TEST(Config, ParseAllRejectsMalformed)
{
    Config c;
    EXPECT_THROW(c.parseAll({"good=1", "bad"}), sim::FatalError);
}

TEST(Config, ConversionErrorsAreFatal)
{
    Config c;
    c.set("x", std::string("not-a-number"));
    EXPECT_THROW(c.getDouble("x", 0), sim::FatalError);
    EXPECT_THROW(c.getInt("x", 0), sim::FatalError);
    EXPECT_THROW(c.getBool("x", false), sim::FatalError);
}

TEST(Config, BoolSpellings)
{
    Config c;
    for (const char *t : {"true", "1", "yes", "on"}) {
        c.set("b", std::string(t));
        EXPECT_TRUE(c.getBool("b", false)) << t;
    }
    for (const char *f : {"false", "0", "no", "off"}) {
        c.set("b", std::string(f));
        EXPECT_FALSE(c.getBool("b", true)) << f;
    }
}

TEST(Config, IntParsesHex)
{
    Config c;
    c.set("h", std::string("0x10"));
    EXPECT_EQ(c.getInt("h", 0), 16);
}

TEST(Config, MergeOverlayWins)
{
    Config base;
    base.set("a", static_cast<std::int64_t>(1));
    base.set("b", static_cast<std::int64_t>(2));
    Config overlay;
    overlay.set("b", static_cast<std::int64_t>(20));
    overlay.set("c", static_cast<std::int64_t>(30));

    base.merge(overlay);
    EXPECT_EQ(base.getInt("a", 0), 1);
    EXPECT_EQ(base.getInt("b", 0), 20);
    EXPECT_EQ(base.getInt("c", 0), 30);
    // The overlay itself is untouched.
    EXPECT_FALSE(overlay.has("a"));
}

TEST(Config, FingerprintCanonical)
{
    Config a, b;
    a.set("zeta", static_cast<std::int64_t>(1));
    a.set("alpha", std::string("x"));
    b.set("alpha", std::string("x"));
    b.set("zeta", static_cast<std::int64_t>(1));
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    EXPECT_EQ(a.fingerprint(), "alpha=x;zeta=1;");
    EXPECT_EQ(Config().fingerprint(), "");

    b.set("zeta", static_cast<std::int64_t>(2));
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(Config, FingerprintEscapesSeparators)
{
    // {"a": "1;b=2"} must not collide with {"a": "1", "b": "2"}.
    Config tricky;
    tricky.set("a", std::string("1;b=2"));
    Config plain;
    plain.set("a", std::string("1"));
    plain.set("b", std::string("2"));
    EXPECT_NE(tricky.fingerprint(), plain.fingerprint());
    EXPECT_EQ(tricky.fingerprint(), "a=1\\;b\\=2;");
}

TEST(Config, KeysSortedAndDump)
{
    Config c;
    c.set("zeta", static_cast<std::int64_t>(1));
    c.set("alpha", static_cast<std::int64_t>(2));
    auto keys = c.keys();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "alpha");
    EXPECT_EQ(keys[1], "zeta");

    std::ostringstream os;
    c.dump(os);
    EXPECT_EQ(os.str(), "alpha = 2\nzeta = 1\n");
}
