/**
 * Tests of the scheduling framework: command buffers, active queue /
 * KSRT bookkeeping, the SM driver's issue logic and the SRAM cost
 * model of Section 3.3.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "core/tables.hh"
#include "sim/logging.hh"
#include "tests/test_util.hh"

using namespace gpump;
using test::DeviceRig;

TEST(FrameworkTables, SramCostsMatchPaperClaims)
{
    gpu::GpuParams p; // GK110: 13 SMs, 16 TB slots
    core::FrameworkSramCosts c = core::frameworkSramCosts(p);

    // Section 3.3: command buffers + KSRT + SMST + active queue take
    // less than 0.5 KB of on-chip SRAM...
    EXPECT_LT(c.coreBytes(), 512);
    EXPECT_GT(c.coreBytes(), 256) << "suspiciously small: check widths";

    // ...and the PTBQs take 21 KB (13 queues x 13*16 entries x 8 B).
    EXPECT_EQ(c.ptbqBytes, 13 * 13 * 16 * 8);
    EXPECT_NEAR(static_cast<double>(c.ptbqBytes) / 1024.0, 21.0, 0.2);
}

TEST(FrameworkTables, GeometryScalesWithSms)
{
    gpu::GpuParams p;
    p.numSms = 1; // mobile GPU with one SM (Section 3.3 discussion)
    EXPECT_EQ(core::maxActiveKernels(p), 1);
    EXPECT_EQ(core::ptbqCapacityPerKernel(p), 16);
}

TEST(Framework, CommandBufferHoldsOneCommandPerContext)
{
    DeviceRig rig;
    auto k = test::makeProfile("k", 2000, 50.0);
    // Fill the active queue (13 kernels from 13 contexts) plus one
    // buffered command each for two more contexts.
    std::vector<gpu::CommandQueue *> queues;
    for (int c = 0; c < 15; ++c)
        queues.push_back(rig.queueFor(c));
    for (int c = 0; c < 15; ++c)
        rig.launch(queues[static_cast<size_t>(c)], &k);

    EXPECT_EQ(rig.framework.numActiveKernels(), 13);
    EXPECT_TRUE(rig.framework.activeQueueFull());
    auto waiting = rig.framework.waitingBuffers();
    ASSERT_EQ(waiting.size(), 2u);
    EXPECT_EQ(waiting[0], 13);
    EXPECT_EQ(waiting[1], 14);
    EXPECT_TRUE(rig.framework.hasBufferedCommand(13));

    // A second command from context 13's queue must stay in the
    // hardware queue: its buffer is occupied.
    rig.launch(queues[13], &k);
    EXPECT_EQ(rig.dispatcher.pendingCommands(), 1u);
}

TEST(Framework, AdmitBeyondCapacityPanics)
{
    DeviceRig rig;
    auto k = test::makeProfile("k", 2000, 50.0);
    for (int c = 0; c < 14; ++c)
        rig.launch(rig.queueFor(c), &k);
    ASSERT_TRUE(rig.framework.activeQueueFull());
    EXPECT_THROW(rig.framework.admit(13), sim::PanicError);
}

TEST(Framework, UnallocatedTbsAccountsGrantedCapacity)
{
    DeviceRig rig;
    auto *q = rig.queueFor(0);
    // Occupancy 16, 40 TBs: needs ceil(40/16) = 3 SMs.
    auto k = test::makeProfile("k", 40, 100.0);
    rig.launch(q, &k);
    const auto &active = rig.framework.activeKernels();
    ASSERT_EQ(active.size(), 1u);
    // FCFS assigned 3 SMs synchronously; the remaining TBs are covered.
    EXPECT_EQ(active[0]->smsHeld, 3);
    EXPECT_EQ(rig.framework.unallocatedTbs(active[0]), 0);
    rig.run();
}

TEST(Framework, PreemptedTbsIssueBeforeFreshOnes)
{
    // Two-context scenario under PPQ/context switch: the low-priority
    // kernel is preempted, then resumes; its PTBQ blocks must be
    // re-issued before fresh blocks.
    DeviceRig rig("ppq_excl", "context_switch");
    auto *q0 = rig.queueFor(0);
    auto *q1 = rig.queueFor(1);

    // occupancy 16 -> 13 SMs busy with 208 resident TBs, 292 fresh left.
    auto lo = test::makeProfile("lo", 500, 100.0);
    auto hi = test::makeProfile("hi", 13, 20.0);

    rig.launch(q0, &lo, /*priority=*/0);
    rig.run(sim::microseconds(10.0));
    const auto *lo_exec = rig.framework.activeKernels().at(0);
    int fresh_before = lo_exec->issuedFresh();

    rig.launch(q1, &hi, /*priority=*/5);
    rig.run(sim::microseconds(40.0)); // hi done; lo resumes

    // After resumption the kernel must drain its PTBQ first: no new
    // fresh TBs may be taken while preempted ones remain.
    const auto &active = rig.framework.activeKernels();
    ASSERT_FALSE(active.empty());
    const auto *lo_after = active.front();
    if (lo_after->hasPreemptedTbs()) {
        EXPECT_EQ(lo_after->issuedFresh(), fresh_before)
            << "fresh TBs issued while the PTBQ was non-empty";
    }
    rig.run();
    EXPECT_EQ(rig.framework.kernelsCompleted(), 2u);
}

TEST(Framework, KernelExecTbAccounting)
{
    gpu::GpuParams params;
    auto prof = test::makeProfile("k", 4, 1.0);
    auto cmd = gpu::Command::makeKernel(0, 0, &prof);
    gpu::KernelExec k(0, cmd, params, 8);

    EXPECT_EQ(k.totalTbs(), 4);
    EXPECT_TRUE(k.hasFreshTbs());
    EXPECT_FALSE(k.hasPreemptedTbs());

    EXPECT_EQ(k.takeFreshTb(), 0);
    EXPECT_EQ(k.takeFreshTb(), 1);
    k.tbStarted();
    k.tbStarted();
    k.tbEnded(true);
    k.tbEnded(false); // preempted, not completed
    EXPECT_EQ(k.completed(), 1);

    k.pushPreemptedTb({1, sim::microseconds(0.5)});
    EXPECT_TRUE(k.hasPreemptedTbs());
    auto pt = k.takePreemptedTb();
    EXPECT_EQ(pt.tbIndex, 1);
    EXPECT_FALSE(k.finished());
}

TEST(Framework, PtbqOverflowPanics)
{
    gpu::GpuParams params;
    auto prof = test::makeProfile("k", 100, 1.0);
    auto cmd = gpu::Command::makeKernel(0, 0, &prof);
    gpu::KernelExec k(0, cmd, params, 2);
    k.pushPreemptedTb({0, 1});
    k.pushPreemptedTb({1, 1});
    EXPECT_THROW(k.pushPreemptedTb({2, 1}), sim::PanicError);
}

TEST(Framework, ObserverSeesLifecycle)
{
    struct Obs : core::EngineObserver
    {
        int admitted = 0, started = 0, finished = 0, assigned = 0;
        void kernelAdmitted(const gpu::KernelExec &) override
        {
            ++admitted;
        }
        void kernelStarted(const gpu::KernelExec &) override
        {
            ++started;
        }
        void kernelFinished(const gpu::KernelExec &) override
        {
            ++finished;
        }
        void smAssigned(const gpu::Sm &, const gpu::KernelExec &) override
        {
            ++assigned;
        }
    } obs;

    DeviceRig rig;
    rig.framework.setObserver(&obs);
    auto k = test::makeProfile("k", 40, 10.0);
    rig.launch(rig.queueFor(0), &k);
    rig.run();
    EXPECT_EQ(obs.admitted, 1);
    EXPECT_EQ(obs.started, 1);
    EXPECT_EQ(obs.finished, 1);
    EXPECT_EQ(obs.assigned, 3);
}

TEST(Framework, SetupLatencySkippedForSameContext)
{
    // Back-to-back kernels of one context must not pay the context
    // load again: only the base SM setup.
    DeviceRig rig;
    auto *q = rig.queueFor(0);
    auto k1 = test::makeProfile("k1", 13, 10.0);
    auto k2 = test::makeProfile("k2", 13, 10.0);
    sim::SimTime end1 = -1, end2 = -1;
    auto c1 = gpu::Command::makeKernel(0, 0, &k1);
    c1->onComplete = [&] { end1 = rig.sim.now(); };
    auto c2 = gpu::Command::makeKernel(0, 0, &k2);
    c2->onComplete = [&] { end2 = rig.sim.now(); };
    rig.dispatcher.enqueue(q, c1);
    rig.dispatcher.enqueue(q, c2);
    rig.run();
    // k1: setup + ctx load + 10 us.  k2: setup only + 10 us.
    sim::SimTime k1_time = rig.params.smSetupLatency +
        rig.params.contextLoadLatency + sim::microseconds(10.0);
    sim::SimTime k2_time =
        rig.params.smSetupLatency + sim::microseconds(10.0);
    EXPECT_EQ(end1, k1_time);
    EXPECT_EQ(end2, k1_time + k2_time);
}

TEST(Framework, CompletionTimelineKeepsQueuePressureBounded)
{
    // The per-SM completion timeline arms exactly one event per busy
    // SM, so the global event queue holds O(SMs) live events instead
    // of O(resident TBs) — with 13 SMs at occupancy 16 the old design
    // kept ~208 completion events pending.
    DeviceRig rig;
    auto *q = rig.queueFor(0);
    auto k = test::makeProfile("big", 2000, 50.0);
    rig.launch(q, &k);

    std::size_t peak = 0;
    std::function<void()> sample = [&] {
        std::size_t p = rig.sim.events().pending();
        peak = std::max(peak, p);
        if (p > 0) {
            rig.sim.events().scheduleIn(sim::microseconds(25.0),
                                        [&] { sample(); });
        }
    };
    sample();
    rig.run();

    EXPECT_EQ(rig.framework.kernelsCompleted(), 1u);
    std::size_t sms =
        static_cast<std::size_t>(rig.framework.numSms());
    EXPECT_LE(peak, sms + 8u)
        << "queue pressure is not O(SMs): completion events are not "
           "being coalesced per SM";
    EXPECT_GT(peak, 2u) << "probe never saw the engine busy";
}
