/** Unit tests for the PCIe bus timing model. */

#include <gtest/gtest.h>

#include "memory/pcie.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace gpump;
using namespace gpump::memory;

namespace {

PcieBus
makeBus(sim::StatRegistry &reg, double setup_us = 0.0)
{
    PcieParams p; // Table 2 defaults: 500 MHz, 32 lanes, 4 KB bursts
    p.setupLatency = sim::microseconds(setup_us);
    return PcieBus(reg, p);
}

} // namespace

TEST(Pcie, Table2BandwidthIs16GBps)
{
    PcieParams p;
    EXPECT_DOUBLE_EQ(p.bandwidth(), 16e9);
}

TEST(Pcie, SingleBurstDuration)
{
    sim::StatRegistry reg;
    PcieBus bus = makeBus(reg);
    // 4 KB at 16 GB/s = 256 ns.
    EXPECT_EQ(bus.transferDuration(4096), 256);
    // A 1-byte transfer still moves a whole burst.
    EXPECT_EQ(bus.transferDuration(1), 256);
}

TEST(Pcie, DurationScalesWithBursts)
{
    sim::StatRegistry reg;
    PcieBus bus = makeBus(reg);
    EXPECT_EQ(bus.transferDuration(8192), 512);
    EXPECT_EQ(bus.transferDuration(4097), 512) << "partial burst pads";
    // 1 MiB = 256 bursts = 65536 ns.
    EXPECT_EQ(bus.transferDuration(1 << 20), 65536);
}

TEST(Pcie, SetupLatencyAdds)
{
    sim::StatRegistry reg;
    PcieBus bus = makeBus(reg, 2.0);
    EXPECT_EQ(bus.transferDuration(4096), 2000 + 256);
    EXPECT_EQ(bus.transferDuration(0), 2000)
        << "zero-byte transfers still pay the API/DMA setup";
}

TEST(Pcie, NegativeSizePanics)
{
    sim::StatRegistry reg;
    PcieBus bus = makeBus(reg);
    EXPECT_THROW(bus.transferDuration(-1), sim::PanicError);
}

TEST(Pcie, UtilizationAccounting)
{
    sim::StatRegistry reg;
    PcieBus bus = makeBus(reg);
    bus.recordTransfer(4096, 256);
    bus.recordTransfer(8192, 512);
    EXPECT_DOUBLE_EQ(bus.bytesMoved(), 12288.0);
    EXPECT_EQ(bus.busyTime(), 768);
}

TEST(Pcie, ConfigOverrides)
{
    sim::Config cfg;
    cfg.parse("pcie.lanes=16");
    cfg.parse("pcie.clock_hz=1e9");
    cfg.parse("pcie.setup_latency_us=1.5");
    PcieParams p = PcieParams::fromConfig(cfg);
    EXPECT_EQ(p.lanes, 16);
    EXPECT_DOUBLE_EQ(p.bandwidth(), 16e9);
    EXPECT_EQ(p.setupLatency, sim::microseconds(1.5));
}

TEST(Pcie, InvalidConfigIsFatal)
{
    sim::Config cfg;
    cfg.parse("pcie.lanes=0");
    EXPECT_THROW(PcieParams::fromConfig(cfg), sim::FatalError);
}
