/**
 * Golden tests against Table 1 of the paper.
 *
 * For every one of the 24 kernels, the occupancy (TBs/SM), SM
 * resource fraction (Resour./SM %) and projected context save time
 * must match the published values to the table's printed precision.
 * These three derived quantities pin the whole context-switch cost
 * model, so they are tested exhaustively (parameterized over the
 * suite).
 */

#include <gtest/gtest.h>

#include <string>

#include "gpu/gpu_config.hh"
#include "memory/gpu_memory.hh"
#include "sim/stats.hh"
#include "trace/parboil.hh"

using namespace gpump;

namespace {

/** One expected Table 1 row (derived columns only). */
struct Table1Row
{
    const char *fullName;
    int tbsPerSm;      // "TBs /SM"
    double resourcePct; // "Resour. /SM (%)"
    double saveTimeUs; // "Save Time (us)"
};

// Transcribed from Table 1 of the paper.
const Table1Row table1Rows[] = {
    {"lbm.StreamCollide", 15, 83.26, 16.20},
    {"histo.final", 3, 75.00, 14.59},
    {"histo.prescan", 4, 52.63, 10.24},
    {"histo.intermediates", 4, 46.07, 8.96},
    {"histo.main", 1, 29.61, 5.76},
    {"tpacf.genhists", 1, 14.14, 2.75},
    {"spmv.spmvjds", 16, 19.08, 3.71},
    {"mri-q.ComputeQ", 8, 55.26, 10.75},
    {"mri-q.ComputePhiMag", 4, 31.58, 6.14},
    {"sad.largersadcalc8", 16, 68.42, 13.31},
    {"sad.largersadcalc16", 16, 17.11, 3.33},
    {"sad.mbsadcalc", 7, 24.20, 4.71},
    {"sgemm.mysgemmNT", 14, 82.89, 16.13},
    {"stencil.block2Dregtiling", 1, 53.95, 10.50},
    {"cutcp.lattice6overlap", 3, 16.80, 3.27},
    {"mri-gridding.binning", 4, 21.05, 4.10},
    {"mri-gridding.scaninter1", 16, 27.54, 5.36},
    {"mri-gridding.scanL1", 3, 39.74, 7.73},
    {"mri-gridding.uniformAdd", 4, 21.07, 4.10},
    {"mri-gridding.reorder", 4, 42.11, 8.19},
    {"mri-gridding.splitSort", 3, 43.79, 8.52},
    {"mri-gridding.griddingGPU", 10, 51.81, 10.08},
    {"mri-gridding.splitRearrange", 3, 26.71, 5.20},
    {"mri-gridding.scaninter2", 16, 27.54, 5.36},
};

const trace::KernelProfile &
profileByName(const std::string &full_name)
{
    for (const trace::KernelProfile *k : trace::allKernelProfiles()) {
        if (k->fullName() == full_name)
            return *k;
    }
    ADD_FAILURE() << "kernel " << full_name << " not in the suite";
    static trace::KernelProfile dummy;
    return dummy;
}

class Table1Test : public ::testing::TestWithParam<Table1Row>
{
};

} // namespace

TEST_P(Table1Test, OccupancyMatchesPublishedTbsPerSm)
{
    const Table1Row &row = GetParam();
    const trace::KernelProfile &k = profileByName(row.fullName);
    gpu::GpuParams params;
    EXPECT_EQ(gpu::maxTbsPerSm(k, params), row.tbsPerSm);
}

TEST_P(Table1Test, ResourceFractionMatchesPublishedPercent)
{
    const Table1Row &row = GetParam();
    const trace::KernelProfile &k = profileByName(row.fullName);
    gpu::GpuParams params;
    double pct = 100.0 * gpu::smResourceFraction(k, params);
    EXPECT_NEAR(pct, row.resourcePct, 0.05)
        << "context footprint model diverges from Table 1";
}

TEST_P(Table1Test, SaveTimeMatchesPublishedMicroseconds)
{
    const Table1Row &row = GetParam();
    const trace::KernelProfile &k = profileByName(row.fullName);
    gpu::GpuParams params;
    sim::StatRegistry reg;
    memory::GpuMemory gmem(reg, memory::GpuMemoryParams{});
    sim::SimTime save =
        gmem.moveTime(gpu::smContextBytes(k, params), params.numSms);
    EXPECT_NEAR(sim::toMicroseconds(save), row.saveTimeUs, 0.01)
        << "save time = contextBytes / (208 GB/s / 13) violated";
}

TEST_P(Table1Test, TimePerTbConsistentWithSingleSmSerialization)
{
    // The authors derived Time/TB as AvgTime * TBsPerSM / numTBs
    // (see DESIGN.md); our transcription must satisfy the same
    // relation to the table's printed precision.
    const Table1Row &row = GetParam();
    const trace::KernelProfile &k = profileByName(row.fullName);
    gpu::GpuParams params;
    double derived = k.avgTimeUs *
        static_cast<double>(gpu::maxTbsPerSm(k, params)) /
        static_cast<double>(k.numThreadBlocks);
    // Tolerance note: the relation is exact to rounding for 22 of 24
    // rows; the two tiny scaninter kernels (29 TBs) deviate by up to
    // 0.06 us in the published table itself.
    EXPECT_NEAR(derived, k.timePerTbUs, 0.07)
        << "Avg Time, TBs and Time/TB columns are inconsistent";
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, Table1Test, ::testing::ValuesIn(table1Rows),
    [](const ::testing::TestParamInfo<Table1Row> &info) {
        std::string name = info.param.fullName;
        for (char &c : name) {
            if (c == '.' || c == '-')
                c = '_';
        }
        return name;
    });

TEST(Table1, SuiteHasExactly24Kernels)
{
    EXPECT_EQ(trace::allKernelProfiles().size(), 24u);
    EXPECT_EQ(sizeof(table1Rows) / sizeof(table1Rows[0]), 24u);
}

TEST(Table1, ContextBytesFormula)
{
    // 4 bytes per register plus the shared-memory partition.
    trace::KernelProfile k;
    k.regsPerTb = 100;
    k.sharedMemPerTb = 77;
    EXPECT_EQ(k.contextBytesPerTb(), 477);
}
