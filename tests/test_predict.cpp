/**
 * Tests of the predict/ subsystem: the online runtime predictor, the
 * BORE-style burst estimator, and the measurement-fed registrants
 * (pred_adaptive, bore_burst) built on the completion-observation
 * hook.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <utility>

#include "core/framework.hh"
#include "harness/runner.hh"
#include "harness/suite.hh"
#include "predict/bore_burst.hh"
#include "predict/burst.hh"
#include "predict/pred_adaptive.hh"
#include "predict/predictor.hh"
#include "sim/logging.hh"
#include "tests/test_util.hh"
#include "workload/system.hh"

using namespace gpump;
using test::DeviceRig;

namespace {

/** Fatal-message helper: run @p fn, return the FatalError text. */
template <typename Fn>
std::string
fatalMessageOf(Fn &&fn)
{
    try {
        fn();
    } catch (const sim::FatalError &e) {
        return e.what();
    }
    ADD_FAILURE() << "expected sim::FatalError";
    return "";
}

/** A synthetic (Sm, KernelExec) pair for driving observeTb directly. */
struct ObservationRig
{
    trace::KernelProfile profile;
    gpu::GpuParams params;
    gpu::CommandPtr cmd;
    gpu::KernelExec kernel;
    gpu::Sm sm;

    explicit ObservationRig(double declared_tb_us, int num_tbs = 64)
        : profile(test::makeProfile("synthetic", num_tbs,
                                    declared_tb_us)),
          cmd(gpu::Command::makeKernel(0, 0, &profile)),
          kernel(0, cmd, params, 64), sm(0, 32)
    {
        sm.kernel = &kernel;
    }

    /** Feed @p n completions of @p service_us each, back to back. */
    void feed(predict::RuntimePredictor &pred, int n, double service_us,
              sim::SimTime start = 0)
    {
        sim::SimTime t = start;
        for (int i = 0; i < n; ++i) {
            sim::SimTime begin = t;
            t += sim::microseconds(service_us);
            pred.observeTb(sm, kernel, begin, t);
        }
    }
};

predict::PredAdaptiveMechanism *
installPredAdaptive(DeviceRig &rig, double alpha, double cmin,
                    double bias)
{
    auto mech = std::make_unique<predict::PredAdaptiveMechanism>(
        alpha, cmin, bias);
    predict::PredAdaptiveMechanism *raw = mech.get();
    rig.framework.setMechanism(std::move(mech));
    return raw;
}

} // namespace

TEST(Predictor, ColdStartAnswersDeclaredPriorAtZeroConfidence)
{
    ObservationRig rig(250.0);
    predict::RuntimePredictor pred(0.25);
    predict::Estimate e = pred.tbEstimate(0, &rig.profile);
    EXPECT_DOUBLE_EQ(e.tbUs, 250.0);
    EXPECT_DOUBLE_EQ(e.confidence, 0.0);
    EXPECT_EQ(e.samples, 0u);
}

TEST(Predictor, ConvergesToObservedServiceTime)
{
    // Declared 100 us/TB, observed 40 us/TB: the EWMA must leave the
    // prior behind, and confidence must follow 1 - (1-alpha)^n
    // exactly (the prior's remaining mass).
    const double alpha = 0.25;
    ObservationRig rig(100.0);
    predict::RuntimePredictor pred(alpha);

    double expect_ewma = 100.0;
    for (int n = 1; n <= 40; ++n) {
        rig.feed(pred, 1, 40.0,
                 sim::microseconds(40.0) * (n - 1));
        expect_ewma = alpha * 40.0 + (1.0 - alpha) * expect_ewma;
        predict::Estimate e = pred.tbEstimate(0, &rig.profile);
        EXPECT_DOUBLE_EQ(e.tbUs, expect_ewma) << "after " << n;
        EXPECT_DOUBLE_EQ(e.confidence,
                         1.0 - std::pow(1.0 - alpha, n))
            << "after " << n;
        EXPECT_EQ(e.samples, static_cast<std::uint64_t>(n));
    }
    predict::Estimate e = pred.tbEstimate(0, &rig.profile);
    EXPECT_NEAR(e.tbUs, 40.0, 1e-3)
        << "40 samples must dominate the prior";
    EXPECT_GT(e.confidence, 0.99);
    EXPECT_EQ(pred.observations(), 40u);

    // Models are per (context, kernel): context 1 is still cold.
    EXPECT_DOUBLE_EQ(pred.tbEstimate(1, &rig.profile).confidence, 0.0);
}

TEST(Predictor, DrainEstimateUsesElapsedTimeNotTheOracle)
{
    // Two resident blocks, one fresh and one 30 us in.  The drain
    // estimate must be per-TB estimate minus elapsed, maximised over
    // the blocks — computed from startedAt alone.  endAt is set to a
    // nonsense value to prove the oracle field is never read.
    ObservationRig rig(40.0);
    predict::RuntimePredictor pred(0.5);
    rig.feed(pred, 8, 40.0); // warm the model at exactly 40 us
    const sim::SimTime now = sim::microseconds(1000.0);
    rig.sm.resident.clear();
    rig.sm.insertResident(
        {0, now - sim::microseconds(30.0), /*endAt=*/1, /*seq=*/0});
    rig.sm.insertResident({1, now, /*endAt=*/2, /*seq=*/1});

    EXPECT_NEAR(pred.estimatedDrainTimeUs(rig.sm, now), 40.0, 1e-6)
        << "the fresh block dominates: its full estimate remains";

    // Overrunning blocks clamp at zero instead of going negative.
    rig.sm.resident.clear();
    rig.sm.insertResident(
        {0, now - sim::microseconds(500.0), /*endAt=*/1, /*seq=*/0});
    EXPECT_DOUBLE_EQ(pred.estimatedDrainTimeUs(rig.sm, now), 0.0);

    // Structural remaining work: per-TB estimate x remaining grid.
    EXPECT_NEAR(pred.estimatedRemainingWorkUs(rig.kernel),
                40.0 * rig.kernel.totalTbs(), 1e-3);
}

TEST(Burst, BinaryShiftSmoothingAndLog2Bucketing)
{
    // smoothness 0: the average tracks the last burst exactly, and
    // the raw score is floor(log2(1 + avg_us)).
    predict::BurstEstimator b(/*smoothness=*/0, /*max_score=*/30,
                              /*decay_us=*/1000.0);
    ObservationRig rig(10.0);
    EXPECT_EQ(b.burstScore(0, 0), 0) << "unobserved contexts score 0";

    b.observeKernel(rig.kernel, 0, sim::microseconds(1000.0));
    EXPECT_DOUBLE_EQ(b.avgBurstUs(0), 1000.0);
    EXPECT_EQ(b.burstScore(0, sim::microseconds(1000.0)),
              static_cast<int>(std::floor(std::log2(1001.0))));

    // smoothness 2: each observation moves the average by 1/4 of the
    // error (bore.c's shift smoothing).
    predict::BurstEstimator s2(2, 30, 1000.0);
    s2.observeKernel(rig.kernel, 0, sim::microseconds(100.0));
    s2.observeKernel(rig.kernel, sim::microseconds(100.0),
                     sim::microseconds(300.0));
    EXPECT_DOUBLE_EQ(s2.avgBurstUs(0), 100.0 + (200.0 - 100.0) / 4.0);
    EXPECT_EQ(s2.observations(), 2u);
}

TEST(Burst, ScoreDecaysWhileIdleAndIsCapped)
{
    predict::BurstEstimator b(/*smoothness=*/0, /*max_score=*/30,
                              /*decay_us=*/100.0);
    ObservationRig rig(10.0);
    // A 1000 us burst: raw bucket floor(log2(1001)) = 9, then one
    // bucket back per 100 us of idleness, down to zero.
    const sim::SimTime done = sim::microseconds(1000.0);
    b.observeKernel(rig.kernel, 0, done);
    EXPECT_EQ(b.burstScore(0, done), 9);
    EXPECT_EQ(b.burstScore(0, done + sim::microseconds(100.0)), 8);
    EXPECT_EQ(b.burstScore(0, done + sim::microseconds(250.0)), 7);
    EXPECT_EQ(b.burstScore(0, done + sim::microseconds(10000.0)), 0);

    // The cap bounds the demotion of a runaway burst: a ~1 s burst
    // (raw bucket 19) scores max_score, not 19.
    predict::BurstEstimator capped(0, /*max_score=*/5, 100.0);
    capped.observeKernel(rig.kernel, 0, sim::microseconds(1e6));
    EXPECT_EQ(capped.burstScore(0, sim::microseconds(1e6)), 5);
}

TEST(PredAdaptive, ColdModelFallsBackToContextSwitch)
{
    // Long TBs (1000 us): nothing completes before the preemption, so
    // the model is cold (confidence 0 < 0.5) and the mechanism must
    // take the bounded-cost context switch, counting the cold start.
    DeviceRig rig("ppq_excl", "context_switch");
    auto *mech = installPredAdaptive(rig, 0.25, 0.5, 1.0);

    auto lo = test::makeProfile("lo", 2000, 1000.0, 4096, 0, 512);
    auto hi = test::makeProfile("hi", 13, 1.0);
    rig.launch(rig.queueFor(0), &lo, 0);
    rig.run(sim::microseconds(100.0));
    rig.launch(rig.queueFor(1), &hi, 9);
    rig.run();

    EXPECT_GT(mech->switchesChosen(), 0u);
    EXPECT_EQ(mech->coldStarts(), mech->switchesChosen())
        << "every switch here must be a cold-start fallback";
    EXPECT_EQ(mech->drainsChosen(), 0u);
    EXPECT_GT(rig.framework.contextBytesSaved(), 0.0);
    EXPECT_EQ(rig.framework.kernelsCompleted(), 2u);
}

TEST(PredAdaptive, WarmModelDrainsWhenPredictedDrainIsCheap)
{
    // Short TBs (2 us) with a fat context (save ~16.5 us): by the
    // time the high-priority kernel arrives the model has plenty of
    // observations, the predicted drain (~2 us) undercuts the save,
    // and the drains must all land within the misprediction audit.
    DeviceRig rig("ppq_excl", "context_switch");
    auto *mech = installPredAdaptive(rig, 0.25, 0.5, 1.0);

    auto lo = test::makeProfile("lo", 2000, 2.0, 4096, 0, 128);
    auto hi = test::makeProfile("hi", 13, 1.0);
    rig.launch(rig.queueFor(0), &lo, 0);
    rig.run(sim::microseconds(10.0));
    EXPECT_GT(mech->predictor().observations(), 0u);
    rig.launch(rig.queueFor(1), &hi, 9);
    rig.run();

    EXPECT_GT(mech->drainsChosen(), 0u);
    EXPECT_EQ(mech->switchesChosen(), 0u);
    EXPECT_EQ(mech->coldStarts(), 0u);
    EXPECT_EQ(mech->mispredictions(), 0u)
        << "constant-duration TBs must predict within 2x";
    EXPECT_DOUBLE_EQ(rig.framework.contextBytesSaved(), 0.0)
        << "predicted-cheap drains must not move context bytes";
    EXPECT_EQ(rig.framework.kernelsCompleted(), 2u);
}

TEST(PredAdaptive, ObservationHookDoesNotPerturbTheSchedule)
{
    // The completion-observer dispatch sits on the TB fast path; a
    // run with a registered no-op observer (and one with the full
    // predictor attached to a mechanism that is never asked to
    // preempt) must be cycle-identical to the unobserved run.
    auto timeline = [](bool with_observer) {
        DeviceRig rig("fcfs", "context_switch");
        predict::CompletionObserver noop;
        predict::RuntimePredictor pred(0.25);
        if (with_observer) {
            rig.framework.addCompletionObserver(&noop);
            rig.framework.addCompletionObserver(&pred);
        }
        auto a = test::makeProfile("a", 64, 7.0);
        auto b = test::makeProfile("b", 64, 3.0);
        rig.launch(rig.queueFor(0), &a, 0);
        rig.launch(rig.queueFor(1), &b, 0);
        sim::SimTime end = rig.run();
        return std::make_pair(end, rig.framework.tbsCompleted());
    };
    EXPECT_EQ(timeline(false), timeline(true));
}

TEST(PredAdaptive, DecisionsAreDeterministicAcrossJobsAndShards)
{
    // The predictor feeds on the completion stream, which is
    // deterministic per run; the whole pred_adaptive sweep must be
    // bit-identical for any --jobs/--shards partitioning.
    sim::Config cfg;
    cfg.set("gpu.tb_time_cv", 0.25);

    auto sweep = [&](int jobs, int shards) {
        harness::Suite suite("pred");
        suite.sizes({2, 4})
            .uniform(/*count=*/2, /*base_seed=*/20140614)
            .minReplays(1)
            .scheme("DSS-Pred", {"dss", "pred_adaptive", "fcfs"});
        harness::Batch batch = suite.build();
        harness::Runner runner(cfg, jobs);
        runner.setRunShards(shards);
        return runner.run(batch.requests);
    };

    auto base = sweep(1, 1);
    for (auto [jobs, shards] : {std::pair<int, int>{2, 1},
                                {1, 2},
                                {2, 4}}) {
        auto other = sweep(jobs, shards);
        ASSERT_EQ(base.size(), other.size());
        for (std::size_t i = 0; i < base.size(); ++i) {
            EXPECT_EQ(base[i].metrics.antt, other[i].metrics.antt)
                << jobs << "x" << shards;
            EXPECT_EQ(base[i].metrics.stp, other[i].metrics.stp);
            EXPECT_EQ(base[i].metrics.ntt, other[i].metrics.ntt);
            EXPECT_EQ(base[i].sys.eventsExecuted,
                      other[i].sys.eventsExecuted);
            EXPECT_EQ(base[i].sys.endTime, other[i].sys.endTime);
        }
    }
}

TEST(BoreBurst, LongKernelsDemoteTheirContext)
{
    sim::Config cfg;
    cfg.set("bore.smoothness", static_cast<std::int64_t>(0));
    cfg.set("bore.decay_us", 1e9); // no decay inside this test
    DeviceRig rig("bore_burst", "context_switch", cfg);
    auto *policy = dynamic_cast<predict::BoreBurstPolicy *>(
        &rig.framework.policy());
    ASSERT_NE(policy, nullptr);

    // Context 0 runs a long kernel (~1538 us of engine time); context
    // 1 a short one.  Afterwards context 0 must carry the bigger
    // burst score.
    auto big = test::makeProfile("big", 2000, 10.0);
    auto small = test::makeProfile("small", 13, 1.0);
    rig.launch(rig.queueFor(0), &big, 0);
    rig.run();
    rig.launch(rig.queueFor(1), &small, 0);
    rig.run();

    EXPECT_EQ(policy->burst().observations(), 2u);
    int big_score =
        policy->burst().burstScore(0, rig.sim.now());
    int small_score =
        policy->burst().burstScore(1, rig.sim.now());
    EXPECT_GT(big_score, small_score);
    EXPECT_GT(policy->burst().avgBurstUs(0),
              policy->burst().avgBurstUs(1));
}

TEST(Registry, PredictTunablesValidatedWithDidYouMean)
{
    // Typo'd keys under the claimed namespaces are fatal with a
    // suggestion, like every other registrant.
    sim::Config cfg;
    cfg.set("pred.ewma_alpa", 0.5);
    std::string msg = fatalMessageOf(
        [&] { core::makeMechanism("pred_adaptive", cfg); });
    EXPECT_NE(msg.find("pred.ewma_alpa"), std::string::npos) << msg;
    EXPECT_NE(msg.find("pred.ewma_alpha"), std::string::npos) << msg;

    sim::Config bore;
    bore.set("bore.smoothnes", static_cast<std::int64_t>(1));
    std::string bmsg =
        fatalMessageOf([&] { core::makePolicy("bore_burst", bore); });
    EXPECT_NE(bmsg.find("bore.smoothness"), std::string::npos) << bmsg;

    // Range validation in the factories.
    sim::Config bad;
    bad.set("pred.ewma_alpha", 0.0);
    EXPECT_THROW(core::makeMechanism("pred_adaptive", bad),
                 sim::FatalError);
    sim::Config badc;
    badc.set("pred.confidence_min", 1.5);
    EXPECT_THROW(core::makeMechanism("pred_adaptive", badc),
                 sim::FatalError);
    sim::Config badd;
    badd.set("bore.decay_us", 0.0);
    EXPECT_THROW(core::makePolicy("bore_burst", badd),
                 sim::FatalError);
}

TEST(Registry, MeasurementSchemesAssembleThroughSystemSpec)
{
    // End to end through the workload layer: both registrants must
    // assemble by name and complete a small mixed run.
    workload::SystemSpec spec;
    spec.benchmarks = {"sgemm", "mri-q"};
    spec.priorities = {0, 5};
    spec.policy = "bore_burst";
    spec.mechanism = "pred_adaptive";
    spec.minReplays = 1;
    workload::System system(spec, sim::Config());
    auto result = system.run();
    EXPECT_GT(result.eventsExecuted, 0u);
    EXPECT_EQ(result.meanTurnaroundUs.size(), 2u);
}
