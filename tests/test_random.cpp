/** Unit tests for the deterministic RNG and its distributions. */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/logging.hh"
#include "sim/random.hh"

using namespace gpump;
using sim::Rng;

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestoresStream)
{
    Rng a(7);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(a.next());
    a.seed(7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(99);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformIntBounds)
{
    Rng r(5);
    for (int i = 0; i < 10000; ++i) {
        auto v = r.uniformInt(static_cast<std::uint64_t>(13));
        ASSERT_LT(v, 13u);
    }
    for (int i = 0; i < 1000; ++i) {
        auto v = r.uniformInt(static_cast<std::int64_t>(-5), 5);
        ASSERT_GE(v, -5);
        ASSERT_LE(v, 5);
    }
}

TEST(Rng, UniformIntCoversRange)
{
    Rng r(17);
    std::vector<int> seen(6, 0);
    for (int i = 0; i < 6000; ++i)
        ++seen[static_cast<std::size_t>(r.uniformInt(
            static_cast<std::uint64_t>(6)))];
    for (int count : seen)
        EXPECT_GT(count, 800) << "a face of the die never came up";
}

TEST(Rng, NormalMoments)
{
    Rng r(23);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double x = r.normal();
        sum += x;
        sq += x * x;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.01);
    EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, LognormalMatchesMeanAndCv)
{
    Rng r(31);
    const double target_mean = 8.7, target_cv = 0.4;
    double sum = 0.0, sq = 0.0;
    const int n = 300000;
    for (int i = 0; i < n; ++i) {
        double x = r.lognormal(target_mean, target_cv);
        ASSERT_GT(x, 0.0);
        sum += x;
        sq += x * x;
    }
    double mean = sum / n;
    double cv = std::sqrt(sq / n - mean * mean) / mean;
    EXPECT_NEAR(mean, target_mean, target_mean * 0.02);
    EXPECT_NEAR(cv, target_cv, 0.02);
}

TEST(Rng, LognormalZeroCvIsDeterministic)
{
    Rng r(1);
    EXPECT_DOUBLE_EQ(r.lognormal(5.0, 0.0), 5.0);
}

TEST(Rng, ExponentialMean)
{
    Rng r(41);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(3.0);
    EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(55);
    Rng child = parent.fork();
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (parent.next() == child.next())
            ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, InvalidArgumentsPanic)
{
    Rng r(1);
    EXPECT_THROW(r.uniformInt(static_cast<std::uint64_t>(0)),
                 sim::PanicError);
    EXPECT_THROW(r.lognormal(-1.0, 0.5), sim::PanicError);
    EXPECT_THROW(r.lognormal(1.0, -0.5), sim::PanicError);
    EXPECT_THROW(r.exponential(0.0), sim::PanicError);
}
