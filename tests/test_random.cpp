/** Unit tests for the deterministic RNG and its distributions. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/logging.hh"
#include "sim/random.hh"

using namespace gpump;
using sim::Rng;

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestoresStream)
{
    Rng a(7);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(a.next());
    a.seed(7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(99);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformIntBounds)
{
    Rng r(5);
    for (int i = 0; i < 10000; ++i) {
        auto v = r.uniformInt(static_cast<std::uint64_t>(13));
        ASSERT_LT(v, 13u);
    }
    for (int i = 0; i < 1000; ++i) {
        auto v = r.uniformInt(static_cast<std::int64_t>(-5), 5);
        ASSERT_GE(v, -5);
        ASSERT_LE(v, 5);
    }
}

TEST(Rng, UniformIntCoversRange)
{
    Rng r(17);
    std::vector<int> seen(6, 0);
    for (int i = 0; i < 6000; ++i)
        ++seen[static_cast<std::size_t>(r.uniformInt(
            static_cast<std::uint64_t>(6)))];
    for (int count : seen)
        EXPECT_GT(count, 800) << "a face of the die never came up";
}

TEST(Rng, UniformIntSurvivesFullSignedRange)
{
    // Regression: the range width hi - lo + 1 used to be computed in
    // signed arithmetic, which overflows (UB) once the range spans
    // more than half the int64 domain; [INT64_MIN, INT64_MAX] then
    // collapsed to a zero-width uniformInt call and a panic.
    constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
    constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

    Rng r(2718);
    bool saw_negative = false, saw_positive = false;
    for (int i = 0; i < 1000; ++i) {
        std::int64_t v = r.uniformInt(kMin, kMax);
        saw_negative |= v < 0;
        saw_positive |= v > 0;
    }
    EXPECT_TRUE(saw_negative);
    EXPECT_TRUE(saw_positive);

    // The full-range draw consumes exactly one raw draw, offset from
    // lo in wrap-around arithmetic (lo + raw mod 2^64, i.e. the raw
    // sample with its top bit flipped for lo = INT64_MIN).
    Rng a(99), b(99);
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(a.uniformInt(kMin, kMax),
                  static_cast<std::int64_t>(b.next() ^ (1ull << 63)));
    }
}

TEST(Rng, UniformIntNearBoundaryRanges)
{
    Rng r(31337);
    constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
    constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

    // Degenerate single-value ranges at both extremes.
    EXPECT_EQ(r.uniformInt(kMin, kMin), kMin);
    EXPECT_EQ(r.uniformInt(kMax, kMax), kMax);

    // Small windows touching each boundary: every draw in range and
    // every value reachable.
    bool hit_lo[4] = {}, hit_hi[4] = {};
    for (int i = 0; i < 400; ++i) {
        std::int64_t lo = r.uniformInt(kMin, kMin + 3);
        ASSERT_GE(lo, kMin);
        ASSERT_LE(lo, kMin + 3);
        hit_lo[lo - kMin] = true;
        std::int64_t hi = r.uniformInt(kMax - 3, kMax);
        ASSERT_GE(hi, kMax - 3);
        ASSERT_LE(hi, kMax);
        hit_hi[kMax - hi] = true;
    }
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(hit_lo[i]) << i;
        EXPECT_TRUE(hit_hi[i]) << i;
    }

    // A window spanning most of the domain (width > INT64_MAX but not
    // the full 2^64): results stay in range.
    for (int i = 0; i < 400; ++i) {
        std::int64_t v = r.uniformInt(kMin + 1, kMax - 1);
        ASSERT_GE(v, kMin + 1);
        ASSERT_LE(v, kMax - 1);
    }
}

TEST(Rng, NormalMoments)
{
    Rng r(23);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double x = r.normal();
        sum += x;
        sq += x * x;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.01);
    EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, LognormalMatchesMeanAndCv)
{
    Rng r(31);
    const double target_mean = 8.7, target_cv = 0.4;
    double sum = 0.0, sq = 0.0;
    const int n = 300000;
    for (int i = 0; i < n; ++i) {
        double x = r.lognormal(target_mean, target_cv);
        ASSERT_GT(x, 0.0);
        sum += x;
        sq += x * x;
    }
    double mean = sum / n;
    double cv = std::sqrt(sq / n - mean * mean) / mean;
    EXPECT_NEAR(mean, target_mean, target_mean * 0.02);
    EXPECT_NEAR(cv, target_cv, 0.02);
}

TEST(Rng, LognormalZeroCvIsDeterministic)
{
    Rng r(1);
    EXPECT_DOUBLE_EQ(r.lognormal(5.0, 0.0), 5.0);
}

TEST(Rng, ExponentialMean)
{
    Rng r(41);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(3.0);
    EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, BatchedDrawsMatchSequentialBitForBit)
{
    // The fill* APIs must produce the exact stream sequential calls
    // produce: same raw-draw consumption, same per-sample arithmetic
    // (only the per-call parameter setup is hoisted).  Checked with
    // EXPECT_EQ on doubles, i.e. bit-for-bit.
    constexpr std::size_t n = 4096;
    std::vector<double> batched(n), sequential(n);

    {
        Rng a(7), b(7);
        a.fillUniform(batched.data(), n);
        for (auto &v : sequential)
            v = b.uniform();
        EXPECT_EQ(batched, sequential);
    }
    {
        Rng a(11), b(11);
        a.fillNormal(batched.data(), n, 5.0, 2.5);
        for (auto &v : sequential)
            v = b.normal(5.0, 2.5);
        EXPECT_EQ(batched, sequential);
    }
    {
        Rng a(13), b(13);
        a.fillLognormal(batched.data(), n, 8.7, 0.4);
        for (auto &v : sequential)
            v = b.lognormal(8.7, 0.4);
        EXPECT_EQ(batched, sequential);
    }
    {
        // cv == 0 degenerates to the constant mean in both paths.
        Rng a(17), b(17);
        a.fillLognormal(batched.data(), n, 3.0, 0.0);
        for (auto &v : sequential)
            v = b.lognormal(3.0, 0.0);
        EXPECT_EQ(batched, sequential);
        EXPECT_EQ(a.next(), b.next()) << "neither path may draw";
    }
    {
        Rng a(19), b(19);
        a.fillExponential(batched.data(), n, 3.0);
        for (auto &v : sequential)
            v = b.exponential(3.0);
        EXPECT_EQ(batched, sequential);
    }

    // Interleaving batched and sequential draws continues one stream.
    Rng interleaved(23), plain(23);
    double chunk[16];
    interleaved.fillLognormal(chunk, 16, 2.0, 0.3);
    double after_batch = interleaved.lognormal(2.0, 0.3);
    for (int i = 0; i < 16; ++i)
        plain.lognormal(2.0, 0.3);
    EXPECT_EQ(after_batch, plain.lognormal(2.0, 0.3));
}

TEST(Rng, BoxMullerZeroDrawStaysFinite)
{
    // Regression: uniform() returns exactly 0 with probability 2^-53;
    // log(0) = -inf would have produced an infinite normal (and an
    // infinite or zero lognormal TB duration).  The zero draw is
    // remapped to 2^-53, not redrawn, so the per-sample draw count
    // stays fixed.
    EXPECT_TRUE(std::isfinite(Rng::boxMuller(0.0, 0.25)));
    EXPECT_TRUE(std::isfinite(Rng::boxMuller(0.0, 0.0)));
    // The remap maps 0 to the smallest nonzero uniform, exactly.
    EXPECT_EQ(Rng::boxMuller(0.0, 0.75), Rng::boxMuller(0x1.0p-53, 0.75));
    // Nonzero draws are untouched.
    EXPECT_EQ(Rng::boxMuller(0.5, 0.5),
              std::sqrt(-2.0 * std::log(0.5)) *
                  std::cos(2.0 * 3.14159265358979323846 * 0.5));
}

TEST(Rng, NormalAndLognormalFiniteAcrossSeedSweep)
{
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        Rng r(seed);
        for (int i = 0; i < 2000; ++i) {
            double z = r.normal();
            ASSERT_TRUE(std::isfinite(z)) << "seed " << seed;
            double x = r.lognormal(10.0, 0.25);
            ASSERT_TRUE(std::isfinite(x)) << "seed " << seed;
            ASSERT_GT(x, 0.0) << "seed " << seed;
        }
    }
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(55);
    Rng child = parent.fork();
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (parent.next() == child.next())
            ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, InvalidArgumentsPanic)
{
    Rng r(1);
    EXPECT_THROW(r.uniformInt(static_cast<std::uint64_t>(0)),
                 sim::PanicError);
    EXPECT_THROW(r.lognormal(-1.0, 0.5), sim::PanicError);
    EXPECT_THROW(r.lognormal(1.0, -0.5), sim::PanicError);
    EXPECT_THROW(r.exponential(0.0), sim::PanicError);
}
