/** Unit tests for page tables and the per-SM TLB. */

#include <gtest/gtest.h>

#include "memory/page_table.hh"
#include "sim/logging.hh"

using namespace gpump;
using namespace gpump::memory;

TEST(FrameAllocator, HandsOutDistinctFrames)
{
    FrameAllocator fa(4);
    EXPECT_EQ(fa.totalFrames(), 4u);
    auto a = fa.allocate();
    auto b = fa.allocate();
    ASSERT_TRUE(a && b);
    EXPECT_NE(*a, *b);
    EXPECT_EQ(fa.freeFrames(), 2u);
}

TEST(FrameAllocator, ExhaustionAndRecycling)
{
    FrameAllocator fa(2);
    auto a = fa.allocate();
    auto b = fa.allocate();
    EXPECT_FALSE(fa.allocate().has_value());
    fa.release(*a);
    auto c = fa.allocate();
    ASSERT_TRUE(c);
    EXPECT_EQ(*c, *a);
    (void)b;
}

TEST(FrameAllocator, DoubleReleasePanics)
{
    // A double free would put the frame on the free list twice, and
    // two later allocations would hand the SAME physical frame to two
    // page tables — silent aliasing between address spaces.
    FrameAllocator fa(4);
    auto a = fa.allocate();
    ASSERT_TRUE(a);
    fa.release(*a);
    EXPECT_THROW(fa.release(*a), sim::PanicError);
    EXPECT_EQ(fa.freeFrames(), 4u) << "failed release changes nothing";
}

TEST(FrameAllocator, ReleaseOfUnalignedFramePanics)
{
    FrameAllocator fa(4);
    auto a = fa.allocate();
    ASSERT_TRUE(a);
    EXPECT_THROW(fa.release(*a + 1), sim::PanicError)
        << "frame bases are page-aligned by construction";
}

TEST(FrameAllocator, ReleaseOfNeverAllocatedFramePanics)
{
    FrameAllocator fa(4);
    (void)fa.allocate();
    // Frame base beyond anything the allocator ever handed out.
    EXPECT_THROW(fa.release(10 * gpuPageBytes), sim::PanicError);
}

TEST(PageTable, MapTranslateUnmap)
{
    FrameAllocator fa(16);
    PageTable pt(fa);
    ASSERT_TRUE(pt.map(0, 3 * gpuPageBytes));
    EXPECT_EQ(pt.mappedPages(), 3u);

    auto t0 = pt.translate(100);
    auto t1 = pt.translate(gpuPageBytes + 5);
    ASSERT_TRUE(t0 && t1);
    EXPECT_EQ(*t0 % gpuPageBytes, 100u);
    EXPECT_EQ(*t1 % gpuPageBytes, 5u);

    EXPECT_FALSE(pt.translate(10 * gpuPageBytes).has_value())
        << "unmapped access is a fault";

    pt.unmap(0, gpuPageBytes);
    EXPECT_FALSE(pt.translate(100).has_value());
    EXPECT_TRUE(pt.translate(gpuPageBytes + 5).has_value());
}

TEST(PageTable, PartialPageRoundsToWholePages)
{
    FrameAllocator fa(16);
    PageTable pt(fa);
    ASSERT_TRUE(pt.map(gpuPageBytes / 2, gpuPageBytes)); // spans 2 pages
    EXPECT_EQ(pt.mappedPages(), 2u);
}

TEST(PageTable, FailedMapRollsBack)
{
    FrameAllocator fa(2);
    PageTable pt(fa);
    EXPECT_FALSE(pt.map(0, 3 * gpuPageBytes));
    EXPECT_EQ(pt.mappedPages(), 0u);
    EXPECT_EQ(fa.freeFrames(), 2u) << "no frames leaked";
}

TEST(PageTable, SeparateAddressSpaces)
{
    FrameAllocator fa(16);
    PageTable a(fa), b(fa);
    ASSERT_TRUE(a.map(0, gpuPageBytes));
    ASSERT_TRUE(b.map(0, gpuPageBytes));
    auto ta = a.translate(0);
    auto tb = b.translate(0);
    ASSERT_TRUE(ta && tb);
    EXPECT_NE(*ta, *tb)
        << "same virtual page of two contexts maps to distinct frames";
}

TEST(PageTable, DestructorReleasesFrames)
{
    FrameAllocator fa(4);
    {
        PageTable pt(fa);
        ASSERT_TRUE(pt.map(0, 4 * gpuPageBytes));
        EXPECT_EQ(fa.freeFrames(), 0u);
    }
    EXPECT_EQ(fa.freeFrames(), 4u);
}

TEST(Tlb, HitsAfterFill)
{
    FrameAllocator fa(16);
    PageTable pt(fa);
    ASSERT_TRUE(pt.map(0, 2 * gpuPageBytes));
    Tlb tlb(8);

    auto t1 = tlb.access(pt, 10);
    ASSERT_TRUE(t1);
    EXPECT_EQ(tlb.misses(), 1u);
    auto t2 = tlb.access(pt, 20);
    ASSERT_TRUE(t2);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(*t2 - *t1, 10u);
}

TEST(Tlb, LruEviction)
{
    FrameAllocator fa(16);
    PageTable pt(fa);
    ASSERT_TRUE(pt.map(0, 4 * gpuPageBytes));
    Tlb tlb(2);

    tlb.access(pt, 0 * gpuPageBytes);                   // miss, cache A
    tlb.access(pt, 1 * gpuPageBytes);                   // miss, cache B
    tlb.access(pt, 0 * gpuPageBytes);                   // hit A
    tlb.access(pt, 2 * gpuPageBytes);                   // miss, evict B
    EXPECT_EQ(tlb.hits(), 1u);
    tlb.access(pt, 1 * gpuPageBytes);                   // miss again (B gone)
    EXPECT_EQ(tlb.misses(), 4u);
    tlb.access(pt, 0 * gpuPageBytes);                   // A still resident?
    // A was evicted by B's refill (capacity 2: {2, B} after miss on B).
    EXPECT_EQ(tlb.misses(), 5u);
}

TEST(Tlb, FlushDropsEverything)
{
    FrameAllocator fa(16);
    PageTable pt(fa);
    ASSERT_TRUE(pt.map(0, gpuPageBytes));
    Tlb tlb(8);
    tlb.access(pt, 0);
    tlb.flush();
    tlb.access(pt, 0);
    EXPECT_EQ(tlb.misses(), 2u);
    EXPECT_EQ(tlb.hits(), 0u);
}

TEST(Tlb, FlushCountIsObservable)
{
    FrameAllocator fa(8);
    PageTable pt(fa);
    ASSERT_TRUE(pt.map(0, 2 * gpuPageBytes));
    Tlb tlb(4);
    EXPECT_EQ(tlb.flushes(), 0u);
    (void)tlb.access(pt, 0);
    tlb.flush();
    tlb.flush(); // flushing an empty TLB still counts — the driver
                 // issued it, which is what the counter observes
    EXPECT_EQ(tlb.flushes(), 2u);
}

TEST(Tlb, FaultsAreNotCached)
{
    FrameAllocator fa(16);
    PageTable pt(fa);
    Tlb tlb(8);
    EXPECT_FALSE(tlb.access(pt, 0).has_value());
    EXPECT_FALSE(tlb.access(pt, 0).has_value());
    EXPECT_EQ(tlb.misses(), 2u) << "faulting page must not be cached";
}
