/** Unit tests for GPU parameters and the occupancy model. */

#include <gtest/gtest.h>

#include "gpu/gpu_config.hh"
#include "sim/logging.hh"
#include "tests/test_util.hh"

using namespace gpump;
using namespace gpump::gpu;

TEST(GpuConfig, Table2Defaults)
{
    GpuParams p;
    EXPECT_EQ(p.numSms, 13);
    EXPECT_DOUBLE_EQ(p.clockGhz, 0.706);
    EXPECT_EQ(p.pipelinesPerSm, 32);
    EXPECT_EQ(p.regsPerSm, 65536);
    EXPECT_EQ(p.maxThreadsPerSm, 2048);
    EXPECT_EQ(p.maxTbSlotsPerSm, 16);
    ASSERT_EQ(p.shmemConfigs.size(), 3u);
    EXPECT_EQ(p.shmemConfigs[0], 16 * 1024);
    EXPECT_EQ(p.shmemConfigs[2], 48 * 1024);
}

TEST(GpuConfig, ConfigOverrides)
{
    sim::Config cfg;
    cfg.parse("gpu.num_sms=4");
    cfg.parse("gpu.tb_time_cv=0.25");
    GpuParams p = GpuParams::fromConfig(cfg);
    EXPECT_EQ(p.numSms, 4);
    EXPECT_DOUBLE_EQ(p.tbTimeCv, 0.25);
}

TEST(GpuConfig, InvalidConfigIsFatal)
{
    sim::Config cfg;
    cfg.parse("gpu.num_sms=0");
    EXPECT_THROW(GpuParams::fromConfig(cfg), sim::FatalError);
    sim::Config cfg2;
    cfg2.parse("gpu.tb_time_cv=-1");
    EXPECT_THROW(GpuParams::fromConfig(cfg2), sim::FatalError);
}

TEST(GpuConfig, SharedMemoryConfigSelection)
{
    GpuParams p;
    // Footnote 1: first configuration that satisfies the requirement.
    auto k = test::makeProfile("k", 1, 1.0, 100, 0);
    EXPECT_EQ(selectShmemConfig(k, p), 16 * 1024);
    k.sharedMemPerTb = 16 * 1024;
    EXPECT_EQ(selectShmemConfig(k, p), 16 * 1024);
    k.sharedMemPerTb = 16 * 1024 + 1;
    EXPECT_EQ(selectShmemConfig(k, p), 32 * 1024);
    k.sharedMemPerTb = 24576; // histo.main
    EXPECT_EQ(selectShmemConfig(k, p), 32 * 1024);
    k.sharedMemPerTb = 48 * 1024;
    EXPECT_EQ(selectShmemConfig(k, p), 48 * 1024);
    k.sharedMemPerTb = 48 * 1024 + 1;
    EXPECT_THROW(selectShmemConfig(k, p), sim::FatalError);
}

TEST(GpuConfig, OccupancyLimitedByEachResource)
{
    GpuParams p;
    // Register-limited: 65536 / 5000 = 13.1 -> 13.
    EXPECT_EQ(maxTbsPerSm(test::makeProfile("r", 1, 1, 5000, 0, 64), p),
              13);
    // Shared-memory-limited: 16384 / 5000 = 3.
    EXPECT_EQ(maxTbsPerSm(test::makeProfile("s", 1, 1, 100, 5000, 64), p),
              3);
    // Thread-limited: 2048 / 512 = 4.
    EXPECT_EQ(maxTbsPerSm(test::makeProfile("t", 1, 1, 100, 0, 512), p),
              4);
    // Slot-limited: tiny TBs still cap at 16.
    EXPECT_EQ(maxTbsPerSm(test::makeProfile("z", 1, 1, 16, 0, 32), p),
              16);
}

TEST(GpuConfig, OccupancyUsesSelectedShmemConfig)
{
    GpuParams p;
    // 20000 B/TB forces the 32 KB configuration: 32768/20000 = 1.
    EXPECT_EQ(maxTbsPerSm(test::makeProfile("k", 1, 1, 100, 20000, 64),
                          p),
              1);
    // 9000 B/TB fits the 16 KB config once: 16384/9000 = 1... and the
    // model must NOT opportunistically jump to 48 KB for occupancy 5.
    EXPECT_EQ(maxTbsPerSm(test::makeProfile("k2", 1, 1, 100, 9000, 64),
                          p),
              1);
}

TEST(GpuConfig, ImpossibleKernelIsFatal)
{
    GpuParams p;
    auto k = test::makeProfile("huge", 1, 1, 70000, 0, 64);
    EXPECT_THROW(maxTbsPerSm(k, p), sim::FatalError);
}

TEST(GpuConfig, SmContextBytes)
{
    GpuParams p;
    // 4096 regs * 4 B = 16 KiB per TB; occupancy 4 (64 threads,
    // 65536/4096=16, slots 16 -> reg limit 16? threads 2048/64=32;
    // regs 16; slots 16 -> 16) -> use explicit numbers instead:
    auto k = test::makeProfile("k", 8, 1.0, 8192, 1024, 256);
    // regs: 65536/8192 = 8; shmem: 16384/1024 = 16; threads: 8 -> 8.
    EXPECT_EQ(maxTbsPerSm(k, p), 8);
    EXPECT_EQ(smContextBytes(k, p), (4 * 8192 + 1024) * 8);
}
