/**
 * Integration tests for the cloud-serving layer: open-loop request
 * semantics (latency vs service time, backlog, admission drops),
 * timeline determinism through the Runner under --jobs x --shards,
 * the overload ordering the subsystem exists to show (preemptive
 * prioritization beats FCFS on latency-class p99), a pinned golden,
 * and the serving fields of the results JSONL.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/suite.hh"
#include "serve/scenario.hh"
#include "serve/slo.hh"
#include "sim/logging.hh"

using namespace gpump;

namespace {

/** One mri-q stream with explicit arrivals; no contention. */
serve::ScenarioSpec
singleStream(std::vector<double> arrivals_us, int max_backlog = 0)
{
    serve::ScenarioSpec sc;
    sc.name = "single";
    sc.horizonUs = 100e3;
    sc.seed = 7;
    serve::TenantSpec t;
    t.benchmark = "mri-q";
    t.className = "latency";
    t.arrivals.kind = serve::ArrivalSpec::Kind::Trace;
    t.arrivals.traceUs = std::move(arrivals_us);
    t.maxBacklog = max_backlog;
    sc.tenants.push_back(t);
    return sc;
}

workload::SystemResult
run(const serve::ScenarioSpec &sc)
{
    return serve::runScenario(sc, "fcfs", "context_switch", "fcfs",
                              sim::Config());
}

/** The contended scenario used by the determinism/overload/golden
 *  tests: a deadlined latency stream near saturation plus a batch
 *  tenant, everything pinned numerically so the golden is stable. */
serve::ScenarioSpec
contendedScenario()
{
    serve::ScenarioSpec sc;
    sc.name = "contended";
    sc.horizonUs = 40e3;
    sc.seed = 20140614;

    serve::TenantSpec latency;
    latency.name = "latency";
    latency.benchmark = "mri-q";
    latency.className = "latency";
    latency.priority = 1;
    latency.deadlineUs = 4000.0;
    latency.maxBacklog = 8;
    latency.arrivals.kind = serve::ArrivalSpec::Kind::Poisson;
    latency.arrivals.ratePerSec = 460.0;
    sc.tenants.push_back(latency);

    serve::TenantSpec batch;
    batch.name = "batch";
    batch.benchmark = "sad";
    batch.className = "batch";
    batch.arrivals.kind = serve::ArrivalSpec::Kind::Poisson;
    batch.arrivals.ratePerSec = 45.0;
    sc.tenants.push_back(batch);
    return sc;
}

harness::Batch
contendedBatch()
{
    harness::Suite suite("serve_test");
    suite.serving({contendedScenario()})
        .scheme("FCFS", {"fcfs", "context_switch", "fcfs"})
        .scheme("PPQ-Aging/CS",
                {"ppq_aging", "context_switch", "priority"});
    return suite.build();
}

} // namespace

TEST(ServeOpenLoop, LightLoadLatencyEqualsServiceTime)
{
    // Arrivals far apart: every request finds the stream idle, so
    // release == runStart and latency == turnaround for each record.
    auto result = run(singleStream({0.0, 30e3, 60e3}));
    ASSERT_EQ(result.runs.size(), 1u);
    const auto &records = result.runs[0];
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(result.droppedRequests[0], 0);
    for (const auto &r : records) {
        EXPECT_EQ(r.release, r.start);
        EXPECT_EQ(r.latency(), r.turnaround());
    }
    EXPECT_EQ(records[1].release, sim::microseconds(30e3));
}

TEST(ServeOpenLoop, BacklogWaitIsPartOfLatency)
{
    // Both requests arrive at t=0; the second waits out the first, so
    // its latency strictly exceeds its service time by the first
    // request's full run.
    auto result = run(singleStream({0.0, 0.0}));
    const auto &records = result.runs[0];
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[1].release, 0);
    EXPECT_EQ(records[1].start, records[0].end);
    EXPECT_GT(records[1].latency(), records[1].turnaround());
    EXPECT_EQ(records[1].latency(),
              records[1].turnaround() + records[0].turnaround());
}

TEST(ServeOpenLoop, AdmissionControlDropsBeyondBacklogBound)
{
    // Six simultaneous arrivals, backlog bound 1: one runs, one
    // queues, four are rejected at arrival.
    auto result = run(singleStream({0, 0, 0, 0, 0, 0}, 1));
    EXPECT_EQ(result.runs[0].size(), 2u);
    EXPECT_EQ(result.droppedRequests[0], 4);

    serve::ServingMetrics m = serve::computeServingMetrics(
        singleStream({0, 0, 0, 0, 0, 0}, 1), result);
    ASSERT_EQ(m.classes.size(), 1u);
    EXPECT_EQ(m.classes[0].requests, 6);
    EXPECT_EQ(m.classes[0].completed, 2);
    EXPECT_EQ(m.classes[0].dropped, 4);
    // No deadline on the stream: misses == drops.
    EXPECT_DOUBLE_EQ(m.classes[0].missRate, 4.0 / 6.0);
    EXPECT_EQ(m.classes[0].latency.n, 2);
}

TEST(ServeScenario, TimelinesRegenerateBitIdentically)
{
    serve::ScenarioSpec sc = contendedScenario();
    auto a = serve::makeTimelines(sc);
    auto b = serve::makeTimelines(sc);
    EXPECT_EQ(a, b);
    ASSERT_EQ(a.size(), 2u);
    EXPECT_FALSE(a[0].empty());
    EXPECT_FALSE(a[1].empty());

    // Tenant timelines depend on (seed, index, spec) alone, never on
    // the scheme: the same SystemSpec arrivals under every policy.
    auto sys_a = serve::toSystemSpec(sc, "fcfs", "context_switch",
                                     "fcfs");
    auto sys_b = serve::toSystemSpec(sc, "ppq_aging", "context_switch",
                                     "priority");
    EXPECT_EQ(sys_a.arrivalSchedules, sys_b.arrivalSchedules);
}

TEST(ServeRunner, JobsAndShardsAreBitIdentical)
{
    harness::Batch batch = contendedBatch();

    harness::Runner serial(sim::Config(), /*jobs=*/1);
    auto base = serial.run(batch.requests);

    harness::Runner parallel(sim::Config(), /*jobs=*/4);
    parallel.setRunShards(2);
    auto par = parallel.run(batch.requests);

    ASSERT_EQ(base.size(), par.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        EXPECT_TRUE(base[i].servingRun);
        EXPECT_EQ(base[i].sys.runs, par[i].sys.runs);
        EXPECT_EQ(base[i].sys.droppedRequests,
                  par[i].sys.droppedRequests);
        EXPECT_EQ(base[i].isolatedUs, par[i].isolatedUs);
        ASSERT_EQ(base[i].serving.classes.size(),
                  par[i].serving.classes.size());
        for (std::size_t c = 0; c < base[i].serving.classes.size();
             ++c) {
            const auto &x = base[i].serving.classes[c];
            const auto &y = par[i].serving.classes[c];
            EXPECT_EQ(x.latency.p50, y.latency.p50);
            EXPECT_EQ(x.latency.p99, y.latency.p99);
            EXPECT_EQ(x.missRate, y.missRate);
            EXPECT_EQ(x.goodputPerSec, y.goodputPerSec);
        }
        EXPECT_EQ(base[i].serving.windowFairness,
                  par[i].serving.windowFairness);
    }
}

TEST(ServeRunner, PreemptivePrioritizationBeatsFcfsUnderLoad)
{
    harness::Batch batch = contendedBatch();
    harness::Runner runner(sim::Config(), /*jobs=*/2);
    auto results = runner.run(batch.requests);

    const auto &fcfs = results[batch.indexOf(0, 0, 0)];
    const auto &ppq = results[batch.indexOf(0, 0, 1)];
    int li = fcfs.serving.classIndex("latency");
    ASSERT_GE(li, 0);
    const auto &f = fcfs.serving.classes[static_cast<std::size_t>(li)];
    const auto &p = ppq.serving.classes[static_cast<std::size_t>(li)];

    // The subsystem's reason to exist: under load, preemptive
    // prioritization must cut the latency class's tail and misses.
    EXPECT_LT(p.latency.p99, f.latency.p99);
    EXPECT_LE(p.missRate, f.missRate);
    EXPECT_GE(p.goodputPerSec, f.goodputPerSec);
    // Identical offered load in both cells.
    EXPECT_EQ(p.requests, f.requests);
}

TEST(ServeRunner, GoldenLatencyTailIsPinned)
{
    // Pinned end-to-end aggregate over the whole serving path
    // (timeline generation -> open-loop simulation -> order-statistic
    // percentiles), like the fig5/fig7 goldens: any change to arrival
    // draws, scheduling, or percentile semantics moves this number
    // and must be acknowledged by updating it.
    harness::Batch batch = contendedBatch();
    harness::Runner runner(sim::Config(), /*jobs=*/2);
    auto results = runner.run(batch.requests);
    const auto &fcfs = results[batch.indexOf(0, 0, 0)];
    int li = fcfs.serving.classIndex("latency");
    constexpr double kGoldenP99Us = 3722.6320000000001;
    EXPECT_DOUBLE_EQ(
        fcfs.serving.classes[static_cast<std::size_t>(li)].latency.p99,
        kGoldenP99Us);
}

TEST(ServeJsonl, EmptyClassSerializesAsNull)
{
    // A tenant whose only arrival lies beyond the horizon completes
    // nothing: its class has n = 0, all-NaN latency, NaN miss rate —
    // and the JSONL writer must emit null, never NaN (the PR 5
    // strict-JSON contract).
    serve::ScenarioSpec sc;
    sc.name = "empty_class";
    sc.horizonUs = 20e3;
    sc.seed = 3;
    serve::TenantSpec active;
    active.benchmark = "mri-q";
    active.className = "active";
    active.arrivals.kind = serve::ArrivalSpec::Kind::Trace;
    active.arrivals.traceUs = {0.0};
    sc.tenants.push_back(active);
    serve::TenantSpec idle;
    idle.benchmark = "sgemm";
    idle.className = "idle";
    idle.arrivals.kind = serve::ArrivalSpec::Kind::Trace;
    idle.arrivals.traceUs = {50e3}; // past the horizon: no requests
    sc.tenants.push_back(idle);

    harness::Suite suite("serve_jsonl");
    suite.serving({sc}).scheme("FCFS",
                               {"fcfs", "context_switch", "fcfs"});
    harness::Batch batch = suite.build();
    harness::Runner runner(sim::Config(), 1);
    auto results = runner.run(batch.requests);

    ASSERT_TRUE(results[0].servingRun);
    const serve::ServingMetrics &m = results[0].serving;
    int idle_idx = m.classIndex("idle");
    ASSERT_GE(idle_idx, 0);
    const auto &c = m.classes[static_cast<std::size_t>(idle_idx)];
    EXPECT_EQ(c.requests, 0);
    EXPECT_TRUE(std::isnan(c.latency.p99));
    EXPECT_TRUE(std::isnan(c.missRate));

    const std::string path = "test_serve_scratch.jsonl";
    harness::writeResultsJsonl(path, batch, results);
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string line = ss.str();
    EXPECT_NE(line.find("\"classes\":[\"active\",\"idle\"]"),
              std::string::npos);
    // The idle class is the second vector slot: its percentile and
    // miss-rate entries must be the JSON null constant.
    EXPECT_NE(line.find(",null]"), std::string::npos);
    EXPECT_EQ(line.find("nan"), std::string::npos);
    EXPECT_EQ(line.find("inf"), std::string::npos);
    EXPECT_NE(line.find("\"window_fairness\":"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ServeSuite, ValidationFailsFast)
{
    // Unknown benchmark: caught by ScenarioSpec::validate before any
    // simulation runs.
    serve::ScenarioSpec bad = contendedScenario();
    bad.tenants[0].benchmark = "no-such-benchmark";
    EXPECT_THROW(serve::makeTimelines(bad), sim::FatalError);

    // Duplicate scenario names would collide in reports.
    harness::Suite suite("serve_dup");
    EXPECT_THROW(
        suite.serving({contendedScenario(), contendedScenario()}),
        sim::FatalError);

    // Admission backlogs without arrival schedules are meaningless.
    workload::SystemSpec sys;
    sys.benchmarks = {"mri-q"};
    sys.admissionBacklogs = {4};
    EXPECT_THROW(workload::System(sys, sim::Config()),
                 sim::FatalError);
}
