/** Tests of the NPQ and PPQ policies (Sections 2.4, 4.2, 4.3). */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/aging.hh"
#include "sim/logging.hh"
#include "tests/test_util.hh"
#include "workload/system.hh"

using namespace gpump;
using test::DeviceRig;

namespace {

struct OrderProbe : core::EngineObserver
{
    sim::Simulation *sim = nullptr;
    std::vector<std::pair<std::string, sim::SimTime>> starts;
    std::vector<std::pair<std::string, sim::SimTime>> finishes;

    void kernelStarted(const gpu::KernelExec &k) override
    {
        starts.emplace_back(k.profile().kernel, sim->now());
    }
    void kernelFinished(const gpu::KernelExec &k) override
    {
        finishes.emplace_back(k.profile().kernel, sim->now());
    }
    sim::SimTime startOf(const std::string &name) const
    {
        for (const auto &s : starts) {
            if (s.first == name)
                return s.second;
        }
        return -1;
    }
    sim::SimTime finishOf(const std::string &name) const
    {
        for (const auto &f : finishes) {
            if (f.first == name)
                return f.second;
        }
        return -1;
    }
};

} // namespace

TEST(Npq, ReordersByPriorityWithoutPreempting)
{
    // Figure 2b: K1 runs; K2 (low) and K3 (high) queued behind it.
    // NPQ runs K3 right after K1, before K2 -- but never cuts K1 short.
    DeviceRig rig("npq", "context_switch");
    OrderProbe probe;
    probe.sim = &rig.sim;
    rig.framework.setObserver(&probe);

    auto k1 = test::makeProfile("K1", 260, 50.0);
    auto k2 = test::makeProfile("K2", 130, 20.0);
    auto k3 = test::makeProfile("K3", 26, 10.0);
    rig.launch(rig.queueFor(0), &k1, 0);
    rig.launch(rig.queueFor(1), &k2, 0);
    rig.launch(rig.queueFor(2), &k3, 5);
    rig.run();

    EXPECT_EQ(rig.framework.preemptions(), 0u);
    ASSERT_EQ(probe.starts.size(), 3u);
    EXPECT_EQ(probe.starts[0].first, "K1");
    EXPECT_EQ(probe.starts[1].first, "K3") << "priority order after K1";
    EXPECT_EQ(probe.starts[2].first, "K2");
    EXPECT_GE(probe.startOf("K3"), probe.finishOf("K1"))
        << "nonpreemptive: K3 waits for the running kernel";
}

TEST(Npq, TwoProcessCaseDegeneratesToFcfs)
{
    // With 2 processes the NPQ scheduler "never has any choice"
    // (Section 4.2): one pending kernel at a time.
    DeviceRig rig("npq", "context_switch");
    OrderProbe probe;
    probe.sim = &rig.sim;
    rig.framework.setObserver(&probe);
    auto k1 = test::makeProfile("K1", 130, 50.0);
    auto k3 = test::makeProfile("K3", 26, 10.0);
    rig.launch(rig.queueFor(0), &k1, 0);
    rig.launch(rig.queueFor(1), &k3, 5);
    rig.run();
    EXPECT_GE(probe.startOf("K3"), probe.finishOf("K1"));
}

TEST(Ppq, PreemptsRunningLowPriorityKernel)
{
    // Figure 2c: K3's latency shrinks below the NPQ case because K1
    // is preempted rather than drained to completion.
    auto latency_under = [](const std::string &policy) {
        DeviceRig rig(policy, "context_switch");
        OrderProbe probe;
        probe.sim = &rig.sim;
        rig.framework.setObserver(&probe);
        auto k1 = test::makeProfile("K1", 520, 50.0);
        auto k3 = test::makeProfile("K3", 26, 10.0);
        rig.launch(rig.queueFor(0), &k1, 0);
        rig.run(sim::microseconds(20.0));
        sim::SimTime submit = rig.sim.now();
        rig.launch(rig.queueFor(1), &k3, 5);
        rig.run();
        return probe.finishOf("K3") - submit;
    };

    sim::SimTime npq = latency_under("npq");
    sim::SimTime ppq = latency_under("ppq_excl");
    EXPECT_LT(ppq, npq)
        << "preemption must cut the high-priority turnaround";
}

TEST(Ppq, ExclusiveModeBlocksBackfilling)
{
    // While the high-priority kernel is active, idle SMs must NOT be
    // given to low-priority kernels in exclusive mode.
    DeviceRig rig("ppq_excl", "context_switch");
    OrderProbe probe;
    probe.sim = &rig.sim;
    rig.framework.setObserver(&probe);

    // hi uses only 1 SM (16 TBs, occupancy 16) and runs long.
    auto hi = test::makeProfile("hi", 16, 500.0);
    auto lo = test::makeProfile("lo", 16, 10.0);
    rig.launch(rig.queueFor(0), &hi, 5);
    rig.run(sim::microseconds(1.0));
    rig.launch(rig.queueFor(1), &lo, 0);
    rig.run();

    EXPECT_GE(probe.startOf("lo"), probe.finishOf("hi"))
        << "exclusive access: low priority waits while high is active";
}

TEST(Ppq, SharedModeBackfillsIdleSms)
{
    DeviceRig rig("ppq_shared", "context_switch");
    OrderProbe probe;
    probe.sim = &rig.sim;
    rig.framework.setObserver(&probe);

    auto hi = test::makeProfile("hi", 16, 500.0);
    auto lo = test::makeProfile("lo", 16, 10.0);
    rig.launch(rig.queueFor(0), &hi, 5);
    rig.run(sim::microseconds(1.0));
    rig.launch(rig.queueFor(1), &lo, 0);
    rig.run();

    EXPECT_LT(probe.startOf("lo"), probe.finishOf("hi"))
        << "shared access: low priority back-fills free SMs";
}

TEST(Ppq, SharedModeReclaimsBackfilledSms)
{
    // After backfilling, a new high-priority kernel must reclaim the
    // SMs by preemption.
    DeviceRig rig("ppq_shared", "context_switch");
    auto lo = test::makeProfile("lo", 26 * 16, 100.0);
    auto hi = test::makeProfile("hi", 130, 20.0);
    rig.launch(rig.queueFor(0), &lo, 0);
    rig.run(sim::microseconds(5.0));
    rig.launch(rig.queueFor(1), &hi, 5);
    rig.run();
    EXPECT_GT(rig.framework.preemptions(), 0u);
    EXPECT_EQ(rig.framework.kernelsCompleted(), 2u);
}

TEST(Ppq, EqualPrioritiesDoNotPreemptEachOther)
{
    DeviceRig rig("ppq_excl", "context_switch");
    auto k1 = test::makeProfile("k1", 130, 20.0);
    auto k2 = test::makeProfile("k2", 130, 20.0);
    rig.launch(rig.queueFor(0), &k1, 3);
    rig.run(sim::microseconds(5.0));
    rig.launch(rig.queueFor(1), &k2, 3);
    rig.run();
    EXPECT_EQ(rig.framework.preemptions(), 0u)
        << "preemption requires strictly higher priority";
}

TEST(Ppq, PreemptsOnlyWhatItNeeds)
{
    // hi needs 2 SMs (32 TBs, occupancy 16); only 2 of lo's 13 SMs
    // should be preempted.
    DeviceRig rig("ppq_excl", "context_switch");
    auto lo = test::makeProfile("lo", 26 * 16, 200.0);
    auto hi = test::makeProfile("hi", 32, 10.0);
    rig.launch(rig.queueFor(0), &lo, 0);
    rig.run(sim::microseconds(5.0));
    rig.launch(rig.queueFor(1), &hi, 5);
    rig.run();
    EXPECT_EQ(rig.framework.preemptions(), 2u);
}

TEST(Ppq, WorksWithDrainingMechanism)
{
    DeviceRig rig("ppq_excl", "draining");
    OrderProbe probe;
    probe.sim = &rig.sim;
    rig.framework.setObserver(&probe);
    auto lo = test::makeProfile("lo", 520, 50.0);
    auto hi = test::makeProfile("hi", 26, 10.0);
    rig.launch(rig.queueFor(0), &lo, 0);
    rig.run(sim::microseconds(20.0));
    rig.launch(rig.queueFor(1), &hi, 5);
    rig.run();
    EXPECT_GT(rig.framework.preemptions(), 0u);
    EXPECT_DOUBLE_EQ(rig.framework.contextBytesSaved(), 0.0);
    EXPECT_EQ(rig.framework.kernelsCompleted(), 2u);
    // hi starts before lo fully finishes (it got drained SMs early).
    EXPECT_LT(probe.startOf("hi"), probe.finishOf("lo"));
}

TEST(Ppq, ThreePriorityLevelsStack)
{
    DeviceRig rig("ppq_excl", "context_switch");
    OrderProbe probe;
    probe.sim = &rig.sim;
    rig.framework.setObserver(&probe);
    auto low = test::makeProfile("low", 260, 50.0);
    auto mid = test::makeProfile("mid", 130, 20.0);
    auto top = test::makeProfile("top", 26, 5.0);
    rig.launch(rig.queueFor(0), &low, 0);
    rig.run(sim::microseconds(10.0));
    rig.launch(rig.queueFor(1), &mid, 3);
    rig.run(sim::microseconds(30.0));
    rig.launch(rig.queueFor(2), &top, 9);
    rig.run();
    // Completion order follows priority: top, then mid, then low.
    ASSERT_EQ(probe.finishes.size(), 3u);
    EXPECT_EQ(probe.finishes[0].first, "top");
    EXPECT_EQ(probe.finishes[1].first, "mid");
    EXPECT_EQ(probe.finishes[2].first, "low");
}

// ------------------------------------------------------- PPQ + aging

TEST(PpqAging, BoundsLowPriorityStarvation)
{
    // A long high-priority kernel hogs every SM.  Plain PPQ (shared
    // mode) never preempts on behalf of the low-priority kernel, so
    // it waits for the tail of the high-priority grid; with aging the
    // waiting kernel's effective priority climbs past the hog and the
    // ordinary PPQ preemption path schedules it long before that.
    auto turnaround_of_lo = [](const std::string &policy,
                               sim::Config cfg, std::uint64_t *preempts) {
        DeviceRig rig(policy, "context_switch", std::move(cfg));
        OrderProbe probe;
        probe.sim = &rig.sim;
        rig.framework.setObserver(&probe);
        auto hog = test::makeProfile("hog", 2000, 50.0);
        auto lo = test::makeProfile("lo", 13, 10.0);
        rig.launch(rig.queueFor(0), &hog, 9);
        rig.run(sim::microseconds(20.0));
        rig.launch(rig.queueFor(1), &lo, 0);
        rig.run();
        *preempts = rig.framework.preemptions();
        return probe.finishOf("lo");
    };

    std::uint64_t ppq_preempts = 0;
    sim::SimTime ppq_done =
        turnaround_of_lo("ppq_shared", sim::Config(), &ppq_preempts);
    // Shared-mode PPQ only back-fills: no preemption ever favours the
    // low-priority kernel.
    EXPECT_EQ(ppq_preempts, 0u);

    sim::Config aging;
    aging.set("ppq_aging.interval_us", 100.0);
    aging.set("ppq_aging.step", static_cast<std::int64_t>(5));
    aging.set("ppq_aging.max_boost", static_cast<std::int64_t>(50));
    std::uint64_t aging_preempts = 0;
    sim::SimTime aging_done =
        turnaround_of_lo("ppq_aging", aging, &aging_preempts);

    EXPECT_GT(aging_preempts, 0u)
        << "aging must eventually preempt the hog";
    EXPECT_LT(aging_done, ppq_done)
        << "aged low-priority kernel must finish well before the "
           "plain-PPQ tail";
}

TEST(PpqAging, ServedKernelsCarryNoBoost)
{
    // While a kernel holds SMs its effective priority is its launch
    // priority: a freshly boosted-and-served kernel must not invert
    // the order permanently.
    sim::Config cfg;
    cfg.set("ppq_aging.interval_us", 100.0);
    cfg.set("ppq_aging.step", static_cast<std::int64_t>(5));
    DeviceRig rig("ppq_aging", "context_switch", cfg);
    auto *policy =
        dynamic_cast<core::PpqAgingPolicy *>(&rig.framework.policy());
    ASSERT_NE(policy, nullptr);

    auto hog = test::makeProfile("hog", 2000, 50.0);
    rig.launch(rig.queueFor(0), &hog, 9);
    rig.run(sim::microseconds(20.0));
    // The only active kernel holds SMs: zero boost.
    ASSERT_EQ(rig.framework.activeKernels().size(), 1u);
    EXPECT_EQ(policy->boostOf(rig.framework.activeKernels()[0]), 0);

    auto lo = test::makeProfile("lo", 13, 10.0);
    rig.launch(rig.queueFor(1), &lo, 0);
    // One aging interval in (boost 5), below the hog's priority 9:
    // lo is still waiting, hog is still served boost-free.
    rig.run(sim::microseconds(180.0));
    ASSERT_EQ(rig.framework.activeKernels().size(), 2u);
    const gpu::KernelExec *hog_k = rig.framework.activeKernels()[0];
    const gpu::KernelExec *lo_k = rig.framework.activeKernels()[1];
    EXPECT_EQ(policy->boostOf(hog_k), 0);
    EXPECT_EQ(policy->boostOf(lo_k), 5);
    EXPECT_GT(policy->ticks(), 0u);
    rig.run();
}

TEST(PpqAging, FactoryValidatesTunables)
{
    sim::Config bad_interval;
    bad_interval.set("ppq_aging.interval_us", -1.0);
    EXPECT_THROW(core::makePolicy("ppq_aging", bad_interval),
                 sim::FatalError);

    sim::Config bad_step;
    bad_step.set("ppq_aging.step", static_cast<std::int64_t>(-2));
    EXPECT_THROW(core::makePolicy("ppq_aging", bad_step),
                 sim::FatalError);

    // Typo'd tunable: rejected with the nearest declared key named.
    sim::Config typo;
    typo.set("ppq_aging.intervalus", 10.0);
    try {
        core::makePolicy("ppq_aging", typo);
        FAIL() << "expected FatalError";
    } catch (const sim::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("ppq_aging.interval_us"),
                  std::string::npos)
            << e.what();
    }
}

TEST(PpqAging, EndToEndWorkload)
{
    workload::SystemSpec spec;
    spec.benchmarks = {"sgemm", "spmv", "mri-q"};
    spec.priorities = {0, 0, 9};
    spec.policy = "ppq_aging";
    spec.mechanism = "adaptive";
    spec.minReplays = 2;
    workload::System system(spec);
    auto result = system.run(sim::seconds(120.0));
    for (const auto &runs : result.runs)
        EXPECT_GE(runs.size(), 2u);
}
