/**
 * Unit tests for serve/arrival.hh: timeline determinism (regeneration
 * and chunk-size invariance), monotonicity and bounds, and the
 * arrival-trace file format round trip.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "serve/arrival.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

using namespace gpump;
using serve::ArrivalSpec;

namespace {

std::vector<sim::SimTime>
timeline(const ArrivalSpec &spec, std::uint64_t seed, double horizon_us,
         std::size_t cap = 1u << 20)
{
    sim::Rng rng(seed);
    return serve::makeTimeline(spec, rng, sim::microseconds(horizon_us),
                               cap);
}

/** A unique scratch path under the build tree. */
std::string
scratchPath(const std::string &name)
{
    return "test_arrival_scratch_" + name;
}

} // namespace

TEST(Arrival, PoissonRegenerationIsBitIdentical)
{
    ArrivalSpec spec;
    spec.kind = ArrivalSpec::Kind::Poisson;
    spec.ratePerSec = 2000.0;
    auto a = timeline(spec, 42, 50e3);
    auto b = timeline(spec, 42, 50e3);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(Arrival, PoissonMatchesSequentialDrawReference)
{
    // The generator draws gaps through the batched fillExponential;
    // the Rng contract says that is bit-identical to sequential
    // exponential() calls, so a hand-rolled sequential generator must
    // reproduce the timeline exactly — chunk size is invisible.
    ArrivalSpec spec;
    spec.kind = ArrivalSpec::Kind::Poisson;
    spec.ratePerSec = 1500.0;
    const double horizon_us = 80e3;
    auto generated = timeline(spec, 7, horizon_us);

    sim::Rng ref(7);
    std::vector<sim::SimTime> expected;
    double t_us = 0.0;
    for (;;) {
        t_us += ref.exponential(1e6 / spec.ratePerSec);
        if (t_us >= horizon_us)
            break;
        expected.push_back(sim::microseconds(t_us));
    }
    ASSERT_FALSE(expected.empty());
    EXPECT_EQ(generated, expected);
}

TEST(Arrival, TimelinesAreMonotoneAndInsideHorizon)
{
    for (auto kind :
         {ArrivalSpec::Kind::Poisson, ArrivalSpec::Kind::Bursty}) {
        ArrivalSpec spec;
        spec.kind = kind;
        spec.ratePerSec = 5000.0;
        spec.burstMeanUs = 2000.0;
        spec.idleMeanUs = 1000.0;
        const sim::SimTime horizon = sim::microseconds(40e3);
        sim::Rng rng(3);
        auto t = serve::makeTimeline(spec, rng, horizon);
        ASSERT_FALSE(t.empty());
        for (std::size_t i = 0; i < t.size(); ++i) {
            EXPECT_GE(t[i], 0);
            EXPECT_LT(t[i], horizon);
            if (i > 0) {
                EXPECT_GE(t[i], t[i - 1]);
            }
        }
    }
}

TEST(Arrival, MaxRequestsCapsTimelineLength)
{
    ArrivalSpec spec;
    spec.kind = ArrivalSpec::Kind::Poisson;
    spec.ratePerSec = 1e6; // one per microsecond: horizon won't bind
    auto t = timeline(spec, 11, 1e6, 100);
    EXPECT_EQ(t.size(), 100u);
}

TEST(Arrival, BurstyRegenerationIsBitIdentical)
{
    ArrivalSpec spec;
    spec.kind = ArrivalSpec::Kind::Bursty;
    spec.ratePerSec = 10000.0;
    spec.burstMeanUs = 500.0;
    spec.idleMeanUs = 1500.0;
    auto a = timeline(spec, 99, 60e3);
    auto b = timeline(spec, 99, 60e3);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(Arrival, BurstyIsActuallyBursty)
{
    // With ON periods much denser than the average rate, the largest
    // inter-arrival gap (an OFF period) should dwarf the median gap.
    ArrivalSpec spec;
    spec.kind = ArrivalSpec::Kind::Bursty;
    spec.ratePerSec = 50000.0;
    spec.burstMeanUs = 200.0;
    spec.idleMeanUs = 5000.0;
    auto t = timeline(spec, 5, 100e3);
    ASSERT_GT(t.size(), 20u);
    sim::SimTime max_gap = 0;
    for (std::size_t i = 1; i < t.size(); ++i)
        max_gap = std::max(max_gap, t[i] - t[i - 1]);
    // Mean ON gap is 20 us; an OFF dwell averages 5000 us.
    EXPECT_GT(max_gap, sim::microseconds(1000.0));
}

TEST(Arrival, InlineTraceConvertsAndCutsAtHorizon)
{
    ArrivalSpec spec;
    spec.kind = ArrivalSpec::Kind::Trace;
    spec.traceUs = {0.0, 10.5, 10.5, 99.0, 250.0};
    sim::Rng rng(1);
    auto t = serve::makeTimeline(spec, rng, sim::microseconds(100.0));
    ASSERT_EQ(t.size(), 4u); // 250 us is past the horizon
    EXPECT_EQ(t[0], 0);
    EXPECT_EQ(t[1], sim::microseconds(10.5));
    EXPECT_EQ(t[2], t[1]); // simultaneous arrivals are legal
    EXPECT_EQ(t[3], sim::microseconds(99.0));
}

TEST(Arrival, TraceConsumesNoRandomness)
{
    ArrivalSpec spec;
    spec.kind = ArrivalSpec::Kind::Trace;
    spec.traceUs = {1.0, 2.0, 3.0};
    sim::Rng rng(123);
    auto before = rng.next();
    sim::Rng rng2(123);
    serve::makeTimeline(spec, rng2, sim::microseconds(10.0));
    EXPECT_EQ(rng2.next(), before);
}

TEST(Arrival, TraceFileRoundTripsBitIdentically)
{
    // Generate a stochastic timeline, write it as a trace file, read
    // it back: the doubles and the resulting timeline must round-trip
    // exactly (%.17g), the determinism story for replayed production
    // logs.
    ArrivalSpec poisson;
    poisson.kind = ArrivalSpec::Kind::Poisson;
    poisson.ratePerSec = 3333.0;
    auto original = timeline(poisson, 2024, 30e3);
    ASSERT_FALSE(original.empty());

    std::vector<double> us;
    us.reserve(original.size());
    for (sim::SimTime t : original)
        us.push_back(sim::toMicroseconds(t));

    const std::string path = scratchPath("roundtrip.txt");
    serve::writeArrivalTrace(path, us);
    EXPECT_EQ(serve::readArrivalTrace(path), us);

    ArrivalSpec replay;
    replay.kind = ArrivalSpec::Kind::Trace;
    replay.traceFile = path;
    sim::Rng rng(0);
    auto replayed =
        serve::makeTimeline(replay, rng, sim::microseconds(30e3));
    EXPECT_EQ(replayed, original);
    std::remove(path.c_str());
}

TEST(Arrival, TraceFileSkipsCommentsAndBlanks)
{
    const std::string path = scratchPath("comments.txt");
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("# header\n\n1.5\n2.5 # trailing comment\n\n", f);
        std::fclose(f);
    }
    auto us = serve::readArrivalTrace(path);
    EXPECT_EQ(us, (std::vector<double>{1.5, 2.5}));
    std::remove(path.c_str());
}

TEST(Arrival, MalformedTracesAreFatal)
{
    auto write = [](const std::string &name, const char *content) {
        std::string path = scratchPath(name);
        std::FILE *f = std::fopen(path.c_str(), "w");
        EXPECT_NE(f, nullptr);
        std::fputs(content, f);
        std::fclose(f);
        return path;
    };

    std::string garbage = write("garbage.txt", "1.0\nbogus\n");
    EXPECT_THROW(serve::readArrivalTrace(garbage), sim::FatalError);
    std::remove(garbage.c_str());

    std::string trailing = write("trailing.txt", "1.0 2.0\n");
    EXPECT_THROW(serve::readArrivalTrace(trailing), sim::FatalError);
    std::remove(trailing.c_str());

    std::string negative = write("negative.txt", "-1.0\n");
    EXPECT_THROW(serve::readArrivalTrace(negative), sim::FatalError);
    std::remove(negative.c_str());

    std::string decreasing = write("decreasing.txt", "5.0\n4.0\n");
    EXPECT_THROW(serve::readArrivalTrace(decreasing), sim::FatalError);
    std::remove(decreasing.c_str());

    EXPECT_THROW(serve::readArrivalTrace("no_such_trace_file.txt"),
                 sim::FatalError);

    ArrivalSpec inline_bad;
    inline_bad.kind = ArrivalSpec::Kind::Trace;
    inline_bad.traceUs = {3.0, 1.0};
    sim::Rng rng(1);
    EXPECT_THROW(
        serve::makeTimeline(inline_bad, rng, sim::microseconds(10.0)),
        sim::FatalError);
}

TEST(Arrival, SpecValidationRejectsBadParameters)
{
    sim::Rng rng(1);
    const sim::SimTime horizon = sim::microseconds(10.0);

    ArrivalSpec zero_rate;
    zero_rate.ratePerSec = 0.0;
    EXPECT_THROW(serve::makeTimeline(zero_rate, rng, horizon),
                 sim::FatalError);

    ArrivalSpec bad_burst;
    bad_burst.kind = ArrivalSpec::Kind::Bursty;
    bad_burst.burstMeanUs = 0.0;
    EXPECT_THROW(serve::makeTimeline(bad_burst, rng, horizon),
                 sim::FatalError);

    ArrivalSpec empty_trace;
    empty_trace.kind = ArrivalSpec::Kind::Trace;
    EXPECT_THROW(serve::makeTimeline(empty_trace, rng, horizon),
                 sim::FatalError);

    ArrivalSpec ok;
    EXPECT_THROW(serve::makeTimeline(ok, rng, 0), sim::FatalError);
}
