/**
 * Property-based tests: invariants that must hold across randomized
 * kernels, workloads, policies and mechanisms.  Parameterized sweeps
 * (TEST_P) act as the property harness; each instantiation draws
 * deterministic pseudo-random scenarios from its seed.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "metrics/metrics.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "tests/test_util.hh"
#include "workload/generator.hh"
#include "workload/system.hh"

using namespace gpump;
using test::DeviceRig;

// ------------------------------------------------------------------
// Property: under any policy/mechanism, every issued TB completes
// exactly once, kernels all finish, and no SM is oversubscribed.
// ------------------------------------------------------------------

namespace {

struct InvariantProbe : core::EngineObserver
{
    core::SchedulingFramework *fw = nullptr;
    bool oversubscribed = false;
    void smAssigned(const gpu::Sm &sm, const gpu::KernelExec &k) override
    {
        if (static_cast<int>(sm.resident.size()) > k.occupancy())
            oversubscribed = true;
    }
};

} // namespace

class PolicyMechanismSweep
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string, std::uint64_t>>
{
};

TEST_P(PolicyMechanismSweep, ConservationAndCompletion)
{
    const auto &[policy, mechanism, seed] = GetParam();
    DeviceRig rig(policy, mechanism, sim::Config(), seed);
    InvariantProbe probe;
    probe.fw = &rig.framework;
    rig.framework.setObserver(&probe);

    sim::Rng rng(seed);
    std::vector<trace::KernelProfile> profiles;
    profiles.reserve(24);
    std::uint64_t expected_tbs = 0;
    int expected_kernels = 0;

    // 4 contexts x 6 random kernels each, random priorities, random
    // submission times.
    std::vector<gpu::CommandQueue *> queues;
    for (int c = 0; c < 4; ++c)
        queues.push_back(rig.queueFor(c));
    for (int c = 0; c < 4; ++c) {
        for (int i = 0; i < 6; ++i) {
            trace::KernelProfile k = test::makeProfile(
                sim::strformat("k%d_%d", c, i),
                static_cast<int>(rng.uniformInt(
                    static_cast<std::int64_t>(1), 400)),
                rng.uniform(0.5, 60.0),
                static_cast<int>(rng.uniformInt(
                    static_cast<std::int64_t>(512), 40000)),
                static_cast<int>(rng.uniformInt(
                    static_cast<std::int64_t>(0), 12000)),
                static_cast<int>(
                    64 << rng.uniformInt(static_cast<std::int64_t>(0),
                                         4)));
            profiles.push_back(k);
            expected_tbs +=
                static_cast<std::uint64_t>(k.numThreadBlocks);
            ++expected_kernels;
        }
    }
    std::size_t next = 0;
    for (int c = 0; c < 4; ++c) {
        for (int i = 0; i < 6; ++i) {
            const auto *prof = &profiles[next++];
            int prio = static_cast<int>(
                rng.uniformInt(static_cast<std::int64_t>(0), 2));
            sim::SimTime at = sim::microseconds(rng.uniform(0, 300.0));
            auto *q = queues[static_cast<std::size_t>(c)];
            rig.sim.events().schedule(at, [&rig, q, prof, prio] {
                auto cmd =
                    gpu::Command::makeKernel(q->ctx(), prio, prof);
                rig.dispatcher.enqueue(q, cmd);
            });
        }
    }

    rig.run();

    EXPECT_EQ(rig.framework.kernelsCompleted(),
              static_cast<std::uint64_t>(expected_kernels));
    EXPECT_EQ(rig.framework.tbsCompleted(), expected_tbs)
        << "thread blocks lost or duplicated";
    EXPECT_FALSE(probe.oversubscribed) << "SM occupancy violated";

    // Terminal state: engine fully drained.
    EXPECT_EQ(rig.framework.numActiveKernels(), 0);
    EXPECT_EQ(rig.framework.engineContext(), sim::invalidContext);
    for (const auto &sm : rig.framework.sms()) {
        EXPECT_EQ(sm->state, gpu::Sm::State::Idle);
        EXPECT_FALSE(sm->reserved);
        EXPECT_TRUE(sm->resident.empty());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PolicyMechanismSweep,
    ::testing::Combine(
        ::testing::Values("fcfs", "npq", "ppq_excl", "ppq_shared",
                          "dss"),
        ::testing::Values("context_switch", "draining"),
        ::testing::Values(1u, 42u, 20260610u)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" +
            std::get<1>(info.param) + "_" +
            std::to_string(std::get<2>(info.param));
    });

// ------------------------------------------------------------------
// Property: metric bounds hold on randomized multiprogrammed
// workloads of real benchmarks.
// ------------------------------------------------------------------

class WorkloadMetricSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
};

TEST_P(WorkloadMetricSweep, MetricBounds)
{
    const auto &[policy, nprocs] = GetParam();
    auto plans = workload::makeUniformPlans(nprocs, 1, 97);
    workload::SystemSpec spec;
    spec.benchmarks = plans[0].benchmarks;
    spec.policy = policy;
    spec.minReplays = 2;
    spec.seed = plans[0].seed;
    workload::System system(spec);
    auto result = system.run(sim::seconds(120.0));

    std::vector<double> iso;
    for (const auto &b : spec.benchmarks) {
        workload::SystemSpec iso_spec;
        iso_spec.benchmarks = {b};
        iso_spec.minReplays = 2;
        workload::System iso_sys(iso_spec);
        iso.push_back(iso_sys.run(sim::seconds(60.0))
                          .meanTurnaroundUs[0]);
    }
    auto m = metrics::computeMetrics(iso, result.meanTurnaroundUs);
    EXPECT_GE(m.fairness, 0.0);
    EXPECT_LE(m.fairness, 1.0);
    EXPECT_GT(m.stp, 0.0);
    EXPECT_LE(m.stp, static_cast<double>(nprocs) + 1e-9);
    for (double ntt : m.ntt)
        EXPECT_GT(ntt, 0.95) << "slowdown below 1 on a "
                                "work-conserving scheduler";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WorkloadMetricSweep,
    ::testing::Combine(::testing::Values("fcfs", "dss"),
                       ::testing::Values(2, 4)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" +
            std::to_string(std::get<1>(info.param)) + "proc";
    });

// ------------------------------------------------------------------
// Property: DSS shares sum to the SM count whenever every active
// kernel has abundant work (work conservation).
// ------------------------------------------------------------------

TEST(DssProperty, WorkConservingUnderSaturation)
{
    for (std::uint64_t seed : {3u, 17u, 291u}) {
        sim::Config cfg;
        cfg.set("dss.tokens_per_kernel", static_cast<std::int64_t>(3));
        cfg.set("dss.bonus_tokens", static_cast<std::int64_t>(1));
        DeviceRig rig("dss", "context_switch", cfg, seed);
        sim::Rng rng(seed);

        std::vector<trace::KernelProfile> profiles;
        for (int c = 0; c < 4; ++c) {
            profiles.push_back(test::makeProfile(
                sim::strformat("k%d", c), 30000,
                rng.uniform(20.0, 80.0),
                static_cast<int>(rng.uniformInt(
                    static_cast<std::int64_t>(2048), 30000))));
        }
        for (int c = 0; c < 4; ++c)
            rig.launch(rig.queueFor(c), &profiles[
                static_cast<std::size_t>(c)]);

        rig.run(sim::milliseconds(5.0));
        int held = 0;
        for (const auto &sm : rig.framework.sms()) {
            if (sm->kernel != nullptr)
                ++held;
        }
        EXPECT_EQ(held, rig.params.numSms)
            << "idle SMs while every kernel has work (seed " << seed
            << ")";
    }
}
