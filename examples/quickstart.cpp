/**
 * @file
 * Quickstart: define a custom GPU application, co-run two of them
 * under preemptive scheduling, and read out the multiprogramming
 * metrics.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 *
 * Everything shown here is public API:
 *  - harness::Suite / harness::Runner declare and execute experiment
 *    batches (with cached isolated baselines and ready-made metrics);
 *  - trace::BenchmarkSpec / TraceBuilder describe an application;
 *  - workload::System assembles one simulated machine when you need
 *    full control.
 */

#include <cstdio>

#include "harness/args.hh"
#include "harness/suite.hh"
#include "metrics/metrics.hh"
#include "trace/parboil.hh"
#include "trace/trace_builder.hh"
#include "workload/system.hh"

using namespace gpump;

int
main(int argc, char **argv)
{
    // --list-schemes and config key=value overrides work in every
    // example binary; Args handles the flag and exits, and the
    // collected overrides feed every simulation below.
    harness::Args args(argc, argv);

    // --- 1. A Runner memoizes isolated baselines: each benchmark ---
    //        alone on the machine, the denominator of every metric.
    harness::Runner runner(args.config());
    double sgemm_alone_us = runner.isolatedTimeUs("sgemm");
    std::printf("sgemm alone:            %8.1f us per execution\n",
                sgemm_alone_us);

    // --- 2. Declare the comparison: one workload (sgemm next to a --
    //        long benchmark) under today's FCFS GPUs and under
    //        Dynamic Spatial Sharing with context-switch preemption.
    workload::WorkloadPlan plan;
    plan.benchmarks = {"sgemm", "mri-gridding"};

    harness::Suite suite("quickstart");
    suite.fixedPlans({plan})
        .minReplays(3)
        .limit(sim::seconds(60.0))
        .scheme("fcfs", {"fcfs", "context_switch", "fcfs"})
        .scheme("dss", {"dss", "context_switch", "fcfs"});
    harness::Batch batch = suite.build();

    // --- 3. Run the batch.  Results come back in request order; ----
    //        metrics are already computed against the baselines.
    auto results = runner.run(batch.requests);
    const harness::RunResult &fcfs = results[batch.indexOf(0, 0, 0)];
    const harness::RunResult &dss = results[batch.indexOf(0, 0, 1)];

    std::printf("sgemm next to gridding/FCFS: %8.1f us per execution "
                "(%.2fx slowdown)\n",
                fcfs.sys.meanTurnaroundUs[0],
                fcfs.sys.meanTurnaroundUs[0] / sgemm_alone_us);
    std::printf("sgemm next to gridding/DSS :  %8.1f us per execution "
                "(%.2fx slowdown, %llu preemptions)\n",
                dss.sys.meanTurnaroundUs[0],
                dss.sys.meanTurnaroundUs[0] / sgemm_alone_us,
                static_cast<unsigned long long>(dss.sys.preemptions));

    // --- 4. System-level metrics for both runs. --------------------
    std::printf("\n%-6s  %-8s %-8s %-8s\n", "policy", "ANTT", "STP",
                "fairness");
    std::printf("%-6s  %-8.2f %-8.2f %-8.2f\n", "fcfs",
                fcfs.metrics.antt, fcfs.metrics.stp,
                fcfs.metrics.fairness);
    std::printf("%-6s  %-8.2f %-8.2f %-8.2f\n", "dss",
                dss.metrics.antt, dss.metrics.stp,
                dss.metrics.fairness);

    // --- 5. Define your own application and schedule it. -----------
    //        A small iterative solver: upload, 20 solver kernels,
    //        download.  (In a real project the kernel numbers would
    //        come from profiling, like Table 1 came from the K20c.)
    trace::BenchmarkSpec my_app;
    my_app.name = "my-solver";
    my_app.dataset = "demo";
    trace::KernelProfile k;
    k.benchmark = "my-solver";
    k.kernel = "jacobi";
    k.launches = 20;
    k.numThreadBlocks = 416; // 2 waves at occupancy 16 on 13 SMs
    k.timePerTbUs = 5.0;
    k.regsPerTb = 8192;
    k.sharedMemPerTb = 4096;
    k.threadsPerTb = 256;
    my_app.kernels.push_back(k);
    trace::TraceBuilder b(my_app);
    b.cpu(500).h2d(trace::mib(16));
    for (int i = 0; i < 20; ++i)
        b.cpu(10).launch(0);
    b.sync().d2h(trace::mib(16)).cpu(100);
    my_app.validate();

    std::printf("\nmy-solver: %d kernel launches, %.1f MiB in, "
                "%.1f MiB out, %.1f us host time\n",
                my_app.totalLaunches(),
                static_cast<double>(my_app.bytesH2D()) / (1 << 20),
                static_cast<double>(my_app.bytesD2H()) / (1 << 20),
                sim::toMicroseconds(my_app.cpuTime()));

    // Custom applications run through the low-level System API (the
    // machinery underneath the Runner).
    const trace::BenchmarkSpec &lbm = trace::findBenchmark("lbm");
    workload::SystemSpec custom;
    custom.customSpecs = {&my_app, &lbm};
    custom.policy = "dss";
    custom.minReplays = 3;
    workload::System custom_system(custom, args.config());
    auto custom_result = custom_system.run(sim::seconds(60.0));
    std::printf("my-solver next to lbm/DSS: %8.1f us per execution\n",
                custom_result.meanTurnaroundUs[0]);

    std::printf("\nquickstart done.\n");
    return 0;
}
