/**
 * @file
 * Quickstart: define a custom GPU application, co-run two of them
 * under preemptive scheduling, and read out the multiprogramming
 * metrics.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 *
 * Everything shown here is public API:
 *  - trace::BenchmarkSpec / TraceBuilder describe an application;
 *  - workload::System assembles the simulated machine;
 *  - metrics::computeMetrics turns turnarounds into ANTT/STP/fairness.
 */

#include <cstdio>

#include "metrics/metrics.hh"
#include "trace/parboil.hh"
#include "trace/trace_builder.hh"
#include "workload/system.hh"

using namespace gpump;

int
main()
{
    // --- 1. Run a Parboil benchmark alone to get its baseline. -----
    workload::SystemSpec solo;
    solo.benchmarks = {"sgemm"};
    solo.minReplays = 3;
    workload::System solo_system(solo);
    double sgemm_alone_us =
        solo_system.run(sim::seconds(10.0)).meanTurnaroundUs[0];
    std::printf("sgemm alone:            %8.1f us per execution\n",
                sgemm_alone_us);

    // --- 2. Co-run it with a long benchmark under the baseline ----
    //        FCFS scheduler (today's GPUs).
    workload::SystemSpec fcfs;
    fcfs.benchmarks = {"sgemm", "mri-gridding"};
    fcfs.policy = "fcfs";
    fcfs.minReplays = 3;
    workload::System fcfs_system(fcfs);
    auto fcfs_result = fcfs_system.run(sim::seconds(60.0));
    std::printf("sgemm next to gridding/FCFS: %8.1f us per execution "
                "(%.2fx slowdown)\n",
                fcfs_result.meanTurnaroundUs[0],
                fcfs_result.meanTurnaroundUs[0] / sgemm_alone_us);

    // --- 3. Same workload under Dynamic Spatial Sharing with the ---
    //        context-switch preemption mechanism.
    workload::SystemSpec dss = fcfs;
    dss.policy = "dss";
    dss.mechanism = "context_switch";
    workload::System dss_system(dss);
    auto dss_result = dss_system.run(sim::seconds(60.0));
    std::printf("sgemm next to gridding/DSS :  %8.1f us per execution "
                "(%.2fx slowdown, %llu preemptions)\n",
                dss_result.meanTurnaroundUs[0],
                dss_result.meanTurnaroundUs[0] / sgemm_alone_us,
                static_cast<unsigned long long>(dss_result.preemptions));

    // --- 4. System-level metrics for both runs. --------------------
    workload::SystemSpec lbm_solo;
    lbm_solo.benchmarks = {"mri-gridding"};
    lbm_solo.minReplays = 3;
    workload::System lbm_system(lbm_solo);
    double lbm_alone_us =
        lbm_system.run(sim::seconds(60.0)).meanTurnaroundUs[0];

    std::vector<double> iso = {sgemm_alone_us, lbm_alone_us};
    auto m_fcfs =
        metrics::computeMetrics(iso, fcfs_result.meanTurnaroundUs);
    auto m_dss =
        metrics::computeMetrics(iso, dss_result.meanTurnaroundUs);
    std::printf("\n%-6s  %-8s %-8s %-8s\n", "policy", "ANTT", "STP",
                "fairness");
    std::printf("%-6s  %-8.2f %-8.2f %-8.2f\n", "fcfs", m_fcfs.antt,
                m_fcfs.stp, m_fcfs.fairness);
    std::printf("%-6s  %-8.2f %-8.2f %-8.2f\n", "dss", m_dss.antt,
                m_dss.stp, m_dss.fairness);

    // --- 5. Define your own application and schedule it. -----------
    //        A small iterative solver: upload, 20 solver kernels,
    //        download.  (In a real project the kernel numbers would
    //        come from profiling, like Table 1 came from the K20c.)
    trace::BenchmarkSpec my_app;
    my_app.name = "my-solver";
    my_app.dataset = "demo";
    trace::KernelProfile k;
    k.benchmark = "my-solver";
    k.kernel = "jacobi";
    k.launches = 20;
    k.numThreadBlocks = 416; // 2 waves at occupancy 16 on 13 SMs
    k.timePerTbUs = 5.0;
    k.regsPerTb = 8192;
    k.sharedMemPerTb = 4096;
    k.threadsPerTb = 256;
    my_app.kernels.push_back(k);
    trace::TraceBuilder b(my_app);
    b.cpu(500).h2d(trace::mib(16));
    for (int i = 0; i < 20; ++i)
        b.cpu(10).launch(0);
    b.sync().d2h(trace::mib(16)).cpu(100);
    my_app.validate();

    std::printf("\nmy-solver: %d kernel launches, %.1f MiB in, "
                "%.1f MiB out, %.1f us host time\n",
                my_app.totalLaunches(),
                static_cast<double>(my_app.bytesH2D()) / (1 << 20),
                static_cast<double>(my_app.bytesD2H()) / (1 << 20),
                sim::toMicroseconds(my_app.cpuTime()));

    // Run it against lbm under DSS, through the same machinery.
    const trace::BenchmarkSpec &lbm = trace::findBenchmark("lbm");
    workload::SystemSpec custom;
    custom.customSpecs = {&my_app, &lbm};
    custom.policy = "dss";
    custom.minReplays = 3;
    workload::System custom_system(custom);
    auto custom_result = custom_system.run(sim::seconds(60.0));
    std::printf("my-solver next to lbm/DSS: %8.1f us per execution\n",
                custom_result.meanTurnaroundUs[0]);

    std::printf("\nquickstart done.\n");
    return 0;
}
