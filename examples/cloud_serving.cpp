/**
 * @file
 * Open-loop cloud serving: a latency-critical request stream
 * preempting a batch tenant (the serving story of Section 4.4, told
 * with serving metrics instead of turnaround).
 *
 * An inference-style tenant (mri-q, deadlined, high priority) receives
 * bursty requests while a batch tenant (sad) offers steady background
 * work.  Both streams are open-loop: requests arrive on a fixed
 * timeline whether or not the GPU keeps up, so queueing delay is part
 * of every latency sample — the number a serving operator actually
 * sees.  We run the identical arrival timelines under baseline FCFS
 * and under preemptive priorities with aging (ppq_aging/cs) and
 * compare per-class p99 latency, deadline-miss rate and goodput.
 *
 * Demonstrates the serve layer end to end: ArrivalSpec -> ScenarioSpec
 * -> Suite::serving() -> Runner -> per-class SLO metrics on each
 * RunResult.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "harness/args.hh"
#include "harness/report.hh"
#include "harness/suite.hh"
#include "serve/scenario.hh"

using namespace gpump;

int
main(int argc, char **argv)
{
    // --list-schemes and config key=value overrides work in every
    // example binary; Args handles the flag and exits, and the
    // collected overrides feed every simulation below.
    harness::Args args(argc, argv);

    // Size the offered load from the simulated machine: load factor =
    // arrival rate x isolated service time.
    harness::Runner runner(args.config(), /*jobs=*/2);
    const double latency_iso = runner.isolatedTimeUs("mri-q");
    const double batch_iso = runner.isolatedTimeUs("sad");

    serve::ScenarioSpec sc;
    sc.name = "serving";
    sc.horizonUs = 60.0 * latency_iso;
    sc.seed = 20140614;

    serve::TenantSpec latency;
    latency.name = "inference";
    latency.benchmark = "mri-q";
    latency.className = "latency";
    latency.priority = 1;
    latency.deadlineUs = 3.0 * latency_iso;
    latency.maxBacklog = 8; // drop rather than queue without bound
    latency.arrivals.kind = serve::ArrivalSpec::Kind::Bursty;
    latency.arrivals.ratePerSec = 1.2 / (latency_iso * 1e-6);
    latency.arrivals.burstMeanUs = 10.0 * latency_iso;
    latency.arrivals.idleMeanUs = 10.0 * latency_iso;
    sc.tenants.push_back(latency);

    serve::TenantSpec batch;
    batch.name = "analytics";
    batch.benchmark = "sad";
    batch.className = "batch";
    batch.arrivals.kind = serve::ArrivalSpec::Kind::Poisson;
    batch.arrivals.ratePerSec = 0.5 / (batch_iso * 1e-6);
    sc.tenants.push_back(batch);

    harness::Suite suite("cloud_serving");
    suite.serving({sc})
        .scheme("fcfs", {"fcfs", "context_switch", "fcfs"})
        .scheme("ppq_aging/cs",
                {"ppq_aging", "context_switch", "priority"});
    harness::Batch batch_reqs = suite.build();
    auto results = runner.run(batch_reqs.requests);

    std::printf("Open-loop serving: bursty inference vs steady "
                "batch\n");
    std::printf("==================================================\n"
                "\n");
    std::printf("inference: mri-q, %.0f us/request isolated, deadline "
                "3x isolated,\n           bursty arrivals at 1.2x "
                "load inside bursts, backlog bound 8\n",
                latency_iso);
    std::printf("batch:     sad, %.0f us/request isolated, Poisson at "
                "0.5x load\n\n", batch_iso);

    harness::AsciiTable t({"class", "scheme", "req", "drop",
                           "p50 (us)", "p99 (us)", "miss%",
                           "goodput/s"});
    for (std::size_t ci = 0; ci < batch_reqs.schemes.size(); ++ci) {
        const harness::RunResult &r =
            results[batch_reqs.indexOf(0, 0, ci)];
        for (const serve::ClassMetrics &c : r.serving.classes) {
            t.addRow({c.name, batch_reqs.schemes[ci].name,
                      std::to_string(c.requests),
                      std::to_string(c.dropped),
                      harness::fmt(c.latency.p50, 0),
                      harness::fmt(c.latency.p99, 0),
                      harness::fmt(100.0 * c.missRate, 1),
                      harness::fmt(c.goodputPerSec, 1)});
        }
        if (ci + 1 < batch_reqs.schemes.size())
            t.addSeparator();
    }
    t.print(std::cout);

    const harness::RunResult &fcfs = results[batch_reqs.indexOf(0, 0, 0)];
    const harness::RunResult &ppq = results[batch_reqs.indexOf(0, 0, 1)];
    int li = fcfs.serving.classIndex("latency");
    std::printf("\nlatency-class p99: %.0f us under fcfs vs %.0f us "
                "under ppq_aging/cs\n(identical arrival timelines; "
                "ANTT %.2f vs %.2f barely moves).\n",
                fcfs.serving.classes[li].latency.p99,
                ppq.serving.classes[li].latency.p99,
                fcfs.metrics.antt, ppq.metrics.antt);
    std::printf("\nPreemption is what turns priority into latency: "
                "under FCFS a burst's requests\nwait out whole batch "
                "kernels; with ppq_aging the batch tenant is "
                "preempted at\nthe next thread-block boundary and the "
                "burst drains at service speed.\n");
    return 0;
}
