/**
 * @file
 * Registering a scheduling policy from outside src/ — the "add a
 * policy in 30 lines" recipe (DESIGN.md §6).
 *
 * This file lives entirely outside the simulator library and touches
 * nothing under src/core/: it implements a shortest-job-first
 * admission policy against the public SchedulingPolicy + framework
 * surface, registers it (with a declared, validated tunable) through
 * the scheme registry, and then runs it by *name* through the same
 * harness::Suite / Runner machinery the paper's figures use.  The
 * policy shows up in --list-schemes of this binary like any built-in.
 *
 * Build & run:
 *   cmake -B build && cmake --build build --target example_custom_policy
 *   ./build/examples/custom_policy [--list-schemes]
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/framework.hh"
#include "core/policy.hh"
#include "harness/args.hh"
#include "harness/suite.hh"
#include "trace/parboil.hh"

using namespace gpump;

namespace {

/**
 * Shortest-job-first scheduling: whenever the engine frees up, the
 * active kernel with the least profiled work runs next (one context
 * at a time, no preemption — the baseline GPU with its arrival-order
 * queue replaced by a size-ordered one).  "sjf.by_remaining_tbs"
 * switches the job-size estimate from profiled kernel time to the
 * number of thread blocks still outstanding.
 */
class SjfPolicy : public core::SchedulingPolicy
{
  public:
    explicit SjfPolicy(bool by_tbs) : byTbs_(by_tbs) {}

    const char *name() const override { return "sjf"; }

    void onCommandWaiting(sim::ContextId) override { pump(); }
    void onSmIdle(gpu::Sm *) override { pump(); }
    void onKernelFinished(gpu::KernelExec *) override { pump(); }
    void onPreemptionComplete(gpu::Sm *, gpu::KernelExec *) override
    {
        sim::panic("SJF never reserves an SM");
    }

  private:
    double jobSize(const gpu::KernelExec *k) const
    {
        return byTbs_
            ? static_cast<double>(k->totalTbs() - k->completed())
            : k->profile().avgTimeUs;
    }

    void pump()
    {
        while (!fw_->activeQueueFull()) {
            auto waiting = fw_->waitingBuffers();
            if (waiting.empty())
                break;
            fw_->admit(waiting.front());
        }
        // Smallest job first; stable on the admission order so ties
        // stay deterministic.  One context at a time, like the
        // baseline GPU.
        std::vector<gpu::KernelExec *> order = fw_->activeKernels();
        std::stable_sort(order.begin(), order.end(),
                         [this](const gpu::KernelExec *a,
                                const gpu::KernelExec *b) {
                             return jobSize(a) < jobSize(b);
                         });
        sim::ContextId engine_ctx = fw_->engineContext();
        for (gpu::KernelExec *k : order) {
            if (engine_ctx != sim::invalidContext &&
                k->ctx() != engine_ctx)
                continue;
            while (fw_->unallocatedTbs(k) > 0) {
                gpu::Sm *sm = fw_->findIdleSm();
                if (!sm)
                    return;
                fw_->assignSm(sm, k);
                engine_ctx = k->ctx();
            }
        }
    }

    bool byTbs_;
};

// The whole registration: a descriptor handed to the registry from a
// static object.  No core file knows this policy exists.
const bool registered_sjf = [] {
    core::PolicyRegistry::Descriptor d;
    d.name = "sjf";
    d.doc = "Shortest-job-first (out-of-tree example policy): the "
            "smallest active kernel runs next whenever the engine "
            "frees up; no preemption";
    d.usesMechanism = false;
    d.configPrefix = "sjf";
    d.tunables = {
        {"sjf.by_remaining_tbs", core::TunableType::Bool, "false",
         "rank jobs by grid size instead of profiled kernel time"},
    };
    d.factory = [](const sim::Config &cfg) {
        return std::make_unique<SjfPolicy>(
            cfg.getBool("sjf.by_remaining_tbs", false));
    };
    core::policyRegistry().add(std::move(d));
    return true;
}();

} // namespace

int
main(int argc, char **argv)
{
    harness::Args args(argc, argv);
    if (!registered_sjf)
        return 1;

    // A mix the ordering matters for: a short-kernel job (spmv)
    // behind two long ones.  FCFS serves arrival order; SJF lets the
    // short job jump the queue.
    workload::WorkloadPlan plan;
    plan.benchmarks = {"tpacf", "sad", "mri-gridding", "spmv"};
    plan.seed = 20140614;

    harness::Suite suite("custom_policy");
    suite.fixedPlans({plan})
        .minReplays(2)
        .limit(sim::seconds(120.0))
        .scheme("FCFS", {"fcfs", "context_switch", "fcfs"})
        .scheme("SJF", {"sjf", "context_switch", "fcfs"});
    harness::Batch batch = suite.build();

    harness::Runner runner(args.config());
    auto results = runner.run(batch.requests);
    const harness::RunResult &fcfs = results[batch.indexOf(0, 0, 0)];
    const harness::RunResult &sjf = results[batch.indexOf(0, 0, 1)];

    std::printf("scheme  ANTT     spmv turnaround (us)  \n");
    std::printf("%-6s  %-7.2f  %10.1f\n", "fcfs", fcfs.metrics.antt,
                fcfs.sys.meanTurnaroundUs[3]);
    std::printf("%-6s  %-7.2f  %10.1f\n", "sjf", sjf.metrics.antt,
                sjf.sys.meanTurnaroundUs[3]);

    if (sjf.sys.meanTurnaroundUs[3] >= fcfs.sys.meanTurnaroundUs[3]) {
        std::fprintf(stderr, "SJF failed to speed up the short-kernel job\n");
        return 1;
    }

    // The registered tunable reaches the policy through the same
    // validated config path as any built-in knob.
    sim::Config by_tbs;
    by_tbs.set("sjf.by_remaining_tbs", true);
    harness::Runner runner2(by_tbs);
    harness::RunRequest req = batch.requests[1];
    auto alt = runner2.runOne(req);
    std::printf("%-6s  %-7.2f  %10.1f  (ranked by grid size)\n", "sjf",
                alt.metrics.antt, alt.sys.meanTurnaroundUs[3]);

    std::printf("\ncustom policy 'sjf' registered and scheduled "
                "without touching src/core.\n");
    return 0;
}
