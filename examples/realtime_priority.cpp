/**
 * @file
 * Soft real-time GPU work under multiprogramming (the paper's first
 * motivation, Section 2.4), expressed as a serving scenario.
 *
 * An interactive reconstruction task (mri-q, SHORT class) receives a
 * steady open-loop request stream — a frame to reconstruct every few
 * milliseconds, whether or not the GPU is free — while three batch
 * applications grind in the background.  We compare how predictably
 * frames complete under FCFS, NPQ and PPQ with both mechanisms.
 *
 * The serve layer does the bookkeeping the old hand-rolled version
 * did manually: the scenario declares the arrival process and the
 * deadline, every scheme runs the identical frame timeline, and each
 * RunResult carries the per-class latency percentiles and
 * deadline-miss rate directly.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "harness/args.hh"
#include "harness/report.hh"
#include "harness/suite.hh"
#include "serve/scenario.hh"

using namespace gpump;

int
main(int argc, char **argv)
{
    // --list-schemes and config key=value overrides work in every
    // example binary; Args handles the flag and exits, and the
    // collected overrides feed every simulation below.
    harness::Args args(argc, argv);

    harness::Runner runner(args.config(), /*jobs=*/2);
    const double frame_iso = runner.isolatedTimeUs("mri-q");

    // One frame every 2.5x the isolated reconstruction time (40%
    // load), deadline 5x isolated — "soft real time": late frames are
    // displayed anyway, but counted.
    serve::ScenarioSpec sc;
    sc.name = "realtime";
    sc.horizonUs = 80.0 * frame_iso;
    sc.seed = 20140614;

    serve::TenantSpec task;
    task.name = "reconstruction";
    task.benchmark = "mri-q";
    task.className = "realtime";
    task.priority = 1;
    task.deadlineUs = 5.0 * frame_iso;
    task.arrivals.kind = serve::ArrivalSpec::Kind::Poisson;
    task.arrivals.ratePerSec = 0.4 / (frame_iso * 1e-6);
    sc.tenants.push_back(task);

    for (const char *bench : {"lbm", "stencil", "mri-gridding"}) {
        serve::TenantSpec batch;
        batch.name = bench;
        batch.benchmark = bench;
        batch.className = "batch";
        // Batch work trickles in open-loop too, slowly enough that
        // each tenant is busy but not the bottleneck.
        batch.arrivals.kind = serve::ArrivalSpec::Kind::Poisson;
        batch.arrivals.ratePerSec =
            0.3 / (runner.isolatedTimeUs(bench) * 1e-6);
        sc.tenants.push_back(batch);
    }

    harness::Suite suite("realtime");
    suite.serving({sc})
        .limit(sim::seconds(120.0))
        .scheme("fcfs", {"fcfs", "context_switch", "fcfs"})
        .scheme("npq", {"npq", "context_switch", "priority"})
        .scheme("ppq/drain", {"ppq_excl", "draining", "priority"})
        .scheme("ppq/cs", {"ppq_excl", "context_switch", "priority"});
    harness::Batch batch = suite.build();
    auto results = runner.run(batch.requests);

    std::printf("Soft real-time mri-q frames against three batch "
                "apps\n");
    std::printf("==================================================="
                "\n\n");
    std::printf("mri-q alone: %.0f us per frame; one frame offered "
                "every %.0f us,\ndeadline 5x isolated\n\n", frame_iso,
                frame_iso / 0.4);

    harness::AsciiTable t({"scheduler", "mean (us)", "p50 (us)",
                           "p99 (us)", "worst (us)", "miss%"});
    for (std::size_t ci = 0; ci < batch.schemes.size(); ++ci) {
        const harness::RunResult &r = results[batch.indexOf(0, 0, ci)];
        int idx = r.serving.classIndex("realtime");
        const serve::ClassMetrics &c =
            r.serving.classes[static_cast<std::size_t>(idx)];
        t.addRow({batch.schemes[ci].name,
                  harness::fmt(c.latency.mean, 0),
                  harness::fmt(c.latency.p50, 0),
                  harness::fmt(c.latency.p99, 0),
                  harness::fmt(c.latency.max, 0),
                  harness::fmt(100.0 * c.missRate, 0) + "%"});
    }
    t.print(std::cout);

    std::printf("\nPreemptive prioritization makes frame latency "
                "short and predictable;\nwithout it, a frame's fate "
                "depends on whatever batch kernel happens to be\n"
                "running when it arrives.\n");
    return 0;
}
