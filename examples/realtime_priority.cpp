/**
 * @file
 * Soft real-time GPU work under multiprogramming (the paper's first
 * motivation, Section 2.4).
 *
 * An interactive reconstruction task (mri-q, SHORT class) shares the
 * GPU with three batch applications.  We compare how predictably the
 * task completes under FCFS, NPQ and PPQ with both mechanisms, and
 * report deadline-hit rates at several deadline budgets.
 *
 * The four schedulers are expressed as one declarative Suite over a
 * single prioritized plan; the Runner executes the batch and returns
 * the full per-execution records each scheme produced.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "harness/args.hh"
#include "harness/report.hh"
#include "harness/suite.hh"

using namespace gpump;

namespace {

struct Outcome
{
    std::string label;
    double mean_us = 0;
    double worst_us = 0;
    double hit2x = 0, hit5x = 0, hit15x = 0;
};

/** Deadline statistics of the task's executions under one scheme. */
Outcome
summarize(const std::string &label, const harness::RunResult &result,
          double isolated_us)
{
    Outcome o;
    o.label = label;
    const auto &runs = result.sys.runs[0];
    int n = static_cast<int>(runs.size());
    int hit2 = 0, hit5 = 0, hit15 = 0;
    for (const auto &r : runs) {
        double t = sim::toMicroseconds(r.turnaround());
        o.mean_us += t / n;
        o.worst_us = std::max(o.worst_us, t);
        hit2 += t <= 2 * isolated_us;
        hit5 += t <= 5 * isolated_us;
        hit15 += t <= 15 * isolated_us;
    }
    o.hit2x = 100.0 * hit2 / n;
    o.hit5x = 100.0 * hit5 / n;
    o.hit15x = 100.0 * hit15 / n;
    return o;
}

} // namespace

int
main(int argc, char **argv)
{
    // --list-schemes and config key=value overrides work in every
    // example binary; Args handles the flag and exits, and the
    // collected overrides feed every simulation below.
    harness::Args args(argc, argv);

    workload::WorkloadPlan plan;
    plan.benchmarks = {"mri-q", "lbm", "stencil", "mri-gridding"};
    plan.highPriorityIndex = 0;

    harness::Suite suite("realtime");
    suite.fixedPlans({plan})
        .minReplays(3)
        .limit(sim::seconds(120.0))
        .scheme("fcfs", {"fcfs", "context_switch", "fcfs"})
        .scheme("npq", {"npq", "context_switch", "priority"})
        .scheme("ppq/drain", {"ppq_excl", "draining", "priority"})
        .scheme("ppq/cs", {"ppq_excl", "context_switch", "priority"});
    harness::Batch batch = suite.build();

    harness::Runner runner(args.config(), /*jobs=*/2);
    double isolated_us = runner.isolatedTimeUs("mri-q");
    auto results = runner.run(batch.requests);

    std::printf("Soft real-time mri-q against three batch apps\n");
    std::printf("=============================================\n\n");
    std::printf("mri-q alone: %.0f us per frame\n\n", isolated_us);

    harness::AsciiTable t({"scheduler", "mean (us)", "worst (us)",
                           "<=2x iso", "<=5x iso", "<=15x iso"});
    for (std::size_t ci = 0; ci < batch.schemes.size(); ++ci) {
        Outcome o = summarize(batch.schemes[ci].name,
                              results[batch.indexOf(0, 0, ci)],
                              isolated_us);
        t.addRow({o.label, harness::fmt(o.mean_us, 0),
                  harness::fmt(o.worst_us, 0),
                  harness::fmt(o.hit2x, 0) + "%",
                  harness::fmt(o.hit5x, 0) + "%",
                  harness::fmt(o.hit15x, 0) + "%"});
    }
    t.print(std::cout);

    std::printf("\nPreemptive prioritization makes the task's latency "
                "short and predictable;\nwithout it, latency depends "
                "on whatever batch kernel happens to be running.\n");
    return 0;
}
