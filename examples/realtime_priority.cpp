/**
 * @file
 * Soft real-time GPU work under multiprogramming (the paper's first
 * motivation, Section 2.4).
 *
 * An interactive reconstruction task (mri-q, SHORT class) shares the
 * GPU with three batch applications.  We compare how predictably the
 * task completes under FCFS, NPQ and PPQ with both mechanisms, and
 * report deadline-hit rates at several deadline budgets.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "harness/report.hh"
#include "workload/system.hh"

using namespace gpump;

namespace {

struct Outcome
{
    std::string label;
    double mean_us = 0;
    double worst_us = 0;
    double hit2x = 0, hit5x = 0, hit15x = 0;
};

Outcome
runScheme(const std::string &label, const std::string &policy,
          const std::string &mechanism, double isolated_us)
{
    workload::SystemSpec spec;
    spec.benchmarks = {"mri-q", "lbm", "stencil", "mri-gridding"};
    spec.priorities = {1, 0, 0, 0};
    spec.policy = policy;
    spec.mechanism = mechanism;
    spec.transferPolicy = policy == "fcfs" ? "fcfs" : "priority";
    spec.minReplays = 3;
    workload::System system(spec);
    auto result = system.run(sim::seconds(120.0));

    Outcome o;
    o.label = label;
    const auto &runs = result.runs[0];
    int n = static_cast<int>(runs.size());
    int hit2 = 0, hit5 = 0, hit15 = 0;
    for (const auto &r : runs) {
        double t = sim::toMicroseconds(r.turnaround());
        o.mean_us += t / n;
        o.worst_us = std::max(o.worst_us, t);
        hit2 += t <= 2 * isolated_us;
        hit5 += t <= 5 * isolated_us;
        hit15 += t <= 15 * isolated_us;
    }
    o.hit2x = 100.0 * hit2 / n;
    o.hit5x = 100.0 * hit5 / n;
    o.hit15x = 100.0 * hit15 / n;
    return o;
}

} // namespace

int
main()
{
    // Baseline: the task alone on the GPU.
    workload::SystemSpec solo;
    solo.benchmarks = {"mri-q"};
    solo.minReplays = 3;
    workload::System solo_system(solo);
    double isolated_us =
        solo_system.run(sim::seconds(10.0)).meanTurnaroundUs[0];

    std::printf("Soft real-time mri-q against three batch apps\n");
    std::printf("=============================================\n\n");
    std::printf("mri-q alone: %.0f us per frame\n\n", isolated_us);

    std::vector<Outcome> outcomes = {
        runScheme("fcfs", "fcfs", "context_switch", isolated_us),
        runScheme("npq", "npq", "context_switch", isolated_us),
        runScheme("ppq/drain", "ppq_excl", "draining", isolated_us),
        runScheme("ppq/cs", "ppq_excl", "context_switch", isolated_us),
    };

    harness::AsciiTable t({"scheduler", "mean (us)", "worst (us)",
                           "<=2x iso", "<=5x iso", "<=15x iso"});
    for (const auto &o : outcomes) {
        t.addRow({o.label, harness::fmt(o.mean_us, 0),
                  harness::fmt(o.worst_us, 0),
                  harness::fmt(o.hit2x, 0) + "%",
                  harness::fmt(o.hit5x, 0) + "%",
                  harness::fmt(o.hit15x, 0) + "%"});
    }
    t.print(std::cout);

    std::printf("\nPreemptive prioritization makes the task's latency "
                "short and predictable;\nwithout it, latency depends "
                "on whatever batch kernel happens to be running.\n");
    return 0;
}
