/**
 * @file
 * Guaranteed forward progress vs. persistent kernels (the paper's
 * second motivation, Section 2.4).
 *
 * A "persistent threads" application occupies every SM with thread
 * blocks that spin forever waiting for work from the CPU.  Under the
 * draining mechanism such an SM can never be vacated: a small victim
 * kernel from another process starves.  The context-switch mechanism
 * preempts the spinning blocks like an OS would and the victim makes
 * progress.
 */

#include <cstdio>
#include <string>

#include "core/framework.hh"
#include "tests/test_util.hh"
#include "harness/args.hh"

using namespace gpump;

namespace {

/** Runs the scenario; returns the victim's completion time or -1 if
 *  it starved within the horizon. */
sim::SimTime
runScenario(const std::string &mechanism, sim::SimTime horizon,
            const sim::Config &overrides)
{
    sim::Config cfg;
    cfg.set("dss.tokens_per_kernel", static_cast<std::int64_t>(6));
    cfg.set("dss.bonus_tokens", static_cast<std::int64_t>(1));
    cfg.merge(overrides);
    test::DeviceRig rig("dss", mechanism, cfg);

    // The persistent kernel: fills all 13 SMs (occupancy 16) with
    // blocks that effectively never finish (an hour of "spinning").
    static auto persistent =
        test::makeProfile("spinner", 13 * 16, 3.6e9);
    // The victim: a short kernel from another user.
    static auto victim = test::makeProfile("victim", 26, 10.0);

    auto *q0 = rig.queueFor(0);
    auto *q1 = rig.queueFor(1);
    rig.launch(q0, &persistent);

    sim::SimTime victim_done = -1;
    rig.sim.events().schedule(sim::microseconds(100.0), [&] {
        auto cmd = gpu::Command::makeKernel(1, 0, &victim);
        cmd->onComplete = [&] { victim_done = rig.sim.now(); };
        rig.dispatcher.enqueue(q1, cmd);
    });

    rig.run(horizon);
    return victim_done;
}

} // namespace

int
main(int argc, char **argv)
{
    // --list-schemes and config key=value overrides work in every
    // example binary; Args handles the flag and exits, and the
    // collected overrides feed every simulation below.
    harness::Args args(argc, argv);

    const sim::SimTime horizon = sim::milliseconds(100.0);
    std::printf("Persistent kernel vs. a 260 us victim kernel "
                "(DSS equal sharing)\n");
    std::printf("================================================="
                "=============\n\n");

    sim::SimTime with_drain = runScenario("draining", horizon, args.config());
    sim::SimTime with_cs = runScenario("context_switch", horizon, args.config());

    if (with_drain < 0) {
        std::printf("draining:        victim STARVED for the whole "
                    "%.0f ms horizon\n",
                    sim::toMilliseconds(horizon));
        std::printf("                 (the spinning blocks never reach "
                    "a thread block boundary)\n");
    } else {
        std::printf("draining:        victim finished at %.1f us\n",
                    sim::toMicroseconds(with_drain));
    }

    if (with_cs < 0) {
        std::printf("context switch:  victim starved (unexpected!)\n");
        return 1;
    }
    std::printf("context switch:  victim finished at %.1f us "
                "(%.1f us after submission)\n",
                sim::toMicroseconds(with_cs),
                sim::toMicroseconds(with_cs) - 100.0);

    std::printf("\nOnly the context-switch mechanism guarantees "
                "forward progress against\npersistent or malicious "
                "kernels (Section 3.2).\n");
    return with_drain < 0 ? 0 : 0;
}
