/**
 * @file
 * Figure 2 of the paper as a live simulation: a soft real-time kernel
 * (K3, high priority) competes with two queued low-priority kernels
 * (K1 running, K2 queued) under three schedulers:
 *
 *   (a) FCFS                 - K3 waits for K1 and K2 (current GPUs);
 *   (b) nonpreemptive (NPQ)  - K3 jumps ahead of K2 but waits for K1;
 *   (c) preemptive (PPQ)     - K1 is preempted, K3 runs immediately.
 *
 * Prints an ASCII Gantt chart of the three timelines plus the
 * measured K3 latency under each scheduler.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/framework.hh"
#include "tests/test_util.hh"
#include "harness/args.hh"

using namespace gpump;

namespace {

struct Span
{
    std::string kernel;
    sim::SimTime start = -1;
    sim::SimTime end = -1;
};

struct TimelineProbe : core::EngineObserver
{
    sim::Simulation *sim = nullptr;
    std::map<std::string, Span> spans;

    void kernelStarted(const gpu::KernelExec &k) override
    {
        auto &s = spans[k.profile().kernel];
        s.kernel = k.profile().kernel;
        if (s.start < 0)
            s.start = sim->now();
    }
    void kernelFinished(const gpu::KernelExec &k) override
    {
        spans[k.profile().kernel].end = sim->now();
    }
};

/** Run the 3-kernel scenario; returns the kernel spans and K3's
 *  submission-to-completion latency. */
std::pair<std::map<std::string, Span>, sim::SimTime>
runScenario(const std::string &policy, const sim::Config &overrides)
{
    test::DeviceRig rig(policy, "context_switch", overrides);
    TimelineProbe probe;
    probe.sim = &rig.sim;
    rig.framework.setObserver(&probe);

    // K1: long, fills the GPU (16 waves of 25 us).  K2: medium.
    // K3: short, has a deadline.  All from different processes.
    static auto k1 = test::makeProfile("K1", 13 * 16 * 16, 25.0);
    static auto k2 = test::makeProfile("K2", 13 * 16 * 8, 25.0);
    static auto k3 = test::makeProfile("K3", 13 * 16 / 2, 25.0);

    auto *q1 = rig.queueFor(0);
    auto *q2 = rig.queueFor(1);
    auto *q3 = rig.queueFor(2);

    rig.launch(q1, &k1, 0);
    // K2 and K3 arrive shortly after K1 started.
    sim::SimTime submit3 = sim::microseconds(100.0);
    rig.sim.events().schedule(sim::microseconds(50.0), [&rig, q2] {
        rig.launch(q2, &k2, 0);
    });
    rig.sim.events().schedule(submit3, [&rig, q3] {
        rig.launch(q3, &k3, 5);
    });
    rig.run();

    sim::SimTime latency = probe.spans["K3"].end - submit3;
    return {probe.spans, latency};
}

void
printGantt(const char *title, const std::map<std::string, Span> &spans,
           sim::SimTime horizon)
{
    std::printf("%s\n", title);
    const int width = 64;
    for (const char *name : {"K1", "K2", "K3"}) {
        auto it = spans.find(name);
        if (it == spans.end())
            continue;
        const Span &s = it->second;
        int from = static_cast<int>(s.start * width / horizon);
        int to = std::max(from + 1,
                          static_cast<int>(s.end * width / horizon));
        std::string bar(static_cast<std::size_t>(width + 1), ' ');
        for (int i = from; i < std::min(to, width); ++i)
            bar[static_cast<std::size_t>(i)] = '#';
        std::printf("  %-3s |%s| %7.0f..%-7.0f us\n", name, bar.c_str(),
                    sim::toMicroseconds(s.start),
                    sim::toMicroseconds(s.end));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    // --list-schemes and config key=value overrides work in every
    // example binary; Args handles the flag and exits, and the
    // collected overrides feed every simulation below.
    harness::Args args(argc, argv);

    std::printf("Figure 2: scheduling a soft real-time kernel (K3)\n");
    std::printf("==================================================\n\n");

    auto [fcfs_spans, fcfs_lat] = runScenario("fcfs", args.config());
    auto [npq_spans, npq_lat] = runScenario("npq", args.config());
    auto [ppq_spans, ppq_lat] = runScenario("ppq_excl", args.config());

    sim::SimTime horizon = 0;
    for (const auto *spans : {&fcfs_spans, &npq_spans, &ppq_spans}) {
        for (const auto &kv : *spans)
            horizon = std::max(horizon, kv.second.end);
    }

    printGantt("(a) FCFS (current GPUs):", fcfs_spans, horizon);
    printGantt("\n(b) nonpreemptive priority (NPQ):", npq_spans,
               horizon);
    printGantt("\n(c) preemptive priority (PPQ, context switch):",
               ppq_spans, horizon);

    std::printf("\nK3 latency:  FCFS %.0f us   NPQ %.0f us   "
                "PPQ %.0f us\n",
                sim::toMicroseconds(fcfs_lat),
                sim::toMicroseconds(npq_lat),
                sim::toMicroseconds(ppq_lat));
    std::printf("Preemption decouples K3's latency from the length of "
                "the running kernel.\n");
    return 0;
}
