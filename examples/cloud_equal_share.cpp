/**
 * @file
 * Multi-tenant GPU node: four tenants with very different
 * applications share one GPU.  Compares the baseline FCFS engine
 * against DSS equal sharing with both preemption mechanisms — the
 * deployment scenario Section 4.4 argues for ("multi-tenant cloud or
 * server nodes").
 *
 * Demonstrates the declarative harness: the comparison is a Suite of
 * one fixed plan x three schemes, executed as a batch on two worker
 * threads (results are deterministic and ordered regardless of the
 * job count — see harness/runner.hh).
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "harness/args.hh"
#include "harness/report.hh"
#include "harness/suite.hh"
#include "trace/parboil.hh"

using namespace gpump;
using harness::AsciiTable;

int
main(int argc, char **argv)
{
    // --list-schemes and config key=value overrides work in every
    // example binary; Args handles the flag and exits, and the
    // collected overrides feed every simulation below.
    harness::Args args(argc, argv);

    // Tenants: an interactive analytics job (sgemm), a sparse solver
    // (spmv), a video pipeline (sad) and a long batch job (lbm).
    workload::WorkloadPlan tenants;
    tenants.benchmarks = {"sgemm", "spmv", "sad", "lbm"};
    tenants.seed = 2026;

    harness::Suite suite("cloud");
    suite.fixedPlans({tenants})
        .minReplays(3)
        .scheme("fcfs", {"fcfs", "context_switch", "fcfs"})
        .scheme("dss/cs", {"dss", "context_switch", "fcfs"})
        .scheme("dss/drain", {"dss", "draining", "fcfs"});
    harness::Batch batch = suite.build();

    harness::Runner runner(args.config(), /*jobs=*/2);
    std::vector<harness::RunResult> results =
        runner.run(batch.requests);

    AsciiTable per_tenant({"tenant", "class", "fcfs NTT",
                           "dss/cs NTT", "dss/drain NTT"});
    for (std::size_t i = 0; i < tenants.benchmarks.size(); ++i) {
        const auto &bench =
            trace::findBenchmark(tenants.benchmarks[i]);
        per_tenant.addRow(
            {bench.name, trace::durationClassName(bench.appClass),
             harness::fmt(results[0].metrics.ntt[i]),
             harness::fmt(results[1].metrics.ntt[i]),
             harness::fmt(results[2].metrics.ntt[i])});
    }

    std::printf("Four tenants sharing one GK110-class GPU\n");
    std::printf("========================================\n\n");
    std::printf("Per-tenant slowdown over running alone (NTT, lower "
                "is better):\n\n");
    per_tenant.print(std::cout);

    AsciiTable system_table(
        {"metric", "fcfs", "dss/cs", "dss/drain"});
    system_table.addRow({"ANTT", harness::fmt(results[0].metrics.antt),
                         harness::fmt(results[1].metrics.antt),
                         harness::fmt(results[2].metrics.antt)});
    system_table.addRow({"STP", harness::fmt(results[0].metrics.stp),
                         harness::fmt(results[1].metrics.stp),
                         harness::fmt(results[2].metrics.stp)});
    system_table.addRow(
        {"fairness", harness::fmt(results[0].metrics.fairness),
         harness::fmt(results[1].metrics.fairness),
         harness::fmt(results[2].metrics.fairness)});
    system_table.addRow(
        {"preemptions",
         harness::fmt(static_cast<double>(results[0].sys.preemptions),
                      0),
         harness::fmt(static_cast<double>(results[1].sys.preemptions),
                      0),
         harness::fmt(static_cast<double>(results[2].sys.preemptions),
                      0)});

    std::printf("\nSystem metrics:\n\n");
    system_table.print(std::cout);

    std::printf("\nEqual sharing trades a little total throughput for "
                "far better tenant isolation:\nshort interactive jobs "
                "stop paying for the batch job's monopoly.\n");
    return 0;
}
