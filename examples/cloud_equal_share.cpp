/**
 * @file
 * Multi-tenant GPU node: four tenants with very different
 * applications share one GPU.  Compares the baseline FCFS engine
 * against DSS equal sharing with both preemption mechanisms — the
 * deployment scenario Section 4.4 argues for ("multi-tenant cloud or
 * server nodes").
 *
 * Each tenant is an open-loop Poisson request stream built with the
 * serve layer, so the comparison is made under identical offered load
 * and every result carries per-tenant-class serving metrics (p99,
 * throughput) next to the paper's ANTT/STP — no hand-rolled scenario
 * setup or record walking.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "harness/args.hh"
#include "harness/report.hh"
#include "harness/suite.hh"
#include "serve/scenario.hh"
#include "trace/parboil.hh"

using namespace gpump;
using harness::AsciiTable;

int
main(int argc, char **argv)
{
    // --list-schemes and config key=value overrides work in every
    // example binary; Args handles the flag and exits, and the
    // collected overrides feed every simulation below.
    harness::Args args(argc, argv);

    harness::Runner runner(args.config(), /*jobs=*/2);

    // Tenants: an interactive analytics job (sgemm), a sparse solver
    // (spmv), a video pipeline (sad) and a long batch job (lbm), each
    // an open-loop request stream at 30% of its own service capacity.
    serve::ScenarioSpec sc;
    sc.name = "equal_share";
    sc.seed = 2026;
    const std::vector<std::string> tenants{"sgemm", "spmv", "sad",
                                           "lbm"};
    double longest_iso = 0.0;
    for (const std::string &bench : tenants)
        longest_iso =
            std::max(longest_iso, runner.isolatedTimeUs(bench));
    sc.horizonUs = 4.0 * longest_iso;
    for (const std::string &bench : tenants) {
        serve::TenantSpec t;
        t.name = bench;
        t.benchmark = bench;
        t.className = bench; // per-tenant metrics: one class each
        t.arrivals.kind = serve::ArrivalSpec::Kind::Poisson;
        t.arrivals.ratePerSec =
            0.3 / (runner.isolatedTimeUs(bench) * 1e-6);
        sc.tenants.push_back(t);
    }

    harness::Suite suite("cloud");
    suite.serving({sc})
        .scheme("fcfs", {"fcfs", "context_switch", "fcfs"})
        .scheme("dss/cs", {"dss", "context_switch", "fcfs"})
        .scheme("dss/drain", {"dss", "draining", "fcfs"});
    harness::Batch batch = suite.build();
    std::vector<harness::RunResult> results =
        runner.run(batch.requests);

    AsciiTable per_tenant({"tenant", "class", "fcfs p99 (us)",
                           "dss/cs p99 (us)", "dss/drain p99 (us)"});
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        const auto &bench = trace::findBenchmark(tenants[i]);
        std::vector<std::string> row{
            bench.name, trace::durationClassName(bench.appClass)};
        for (std::size_t ci = 0; ci < batch.schemes.size(); ++ci) {
            const auto &r = results[batch.indexOf(0, 0, ci)];
            int idx = r.serving.classIndex(tenants[i]);
            row.push_back(harness::fmt(
                r.serving.classes[static_cast<std::size_t>(idx)]
                    .latency.p99,
                0));
        }
        per_tenant.addRow(std::move(row));
    }

    std::printf("Four tenants sharing one GK110-class GPU\n");
    std::printf("========================================\n\n");
    std::printf("Per-tenant p99 request latency (open-loop Poisson "
                "streams at 30%% load each,\nidentical arrivals under "
                "every scheme; lower is better):\n\n");
    per_tenant.print(std::cout);

    AsciiTable system_table(
        {"metric", "fcfs", "dss/cs", "dss/drain"});
    system_table.addRow({"ANTT", harness::fmt(results[0].metrics.antt),
                         harness::fmt(results[1].metrics.antt),
                         harness::fmt(results[2].metrics.antt)});
    system_table.addRow({"STP", harness::fmt(results[0].metrics.stp),
                         harness::fmt(results[1].metrics.stp),
                         harness::fmt(results[2].metrics.stp)});
    system_table.addRow(
        {"fairness", harness::fmt(results[0].metrics.fairness),
         harness::fmt(results[1].metrics.fairness),
         harness::fmt(results[2].metrics.fairness)});
    system_table.addRow(
        {"worst-window fair",
         harness::fmt(results[0].serving.windowFairness),
         harness::fmt(results[1].serving.windowFairness),
         harness::fmt(results[2].serving.windowFairness)});
    system_table.addRow(
        {"preemptions",
         harness::fmt(static_cast<double>(results[0].sys.preemptions),
                      0),
         harness::fmt(static_cast<double>(results[1].sys.preemptions),
                      0),
         harness::fmt(static_cast<double>(results[2].sys.preemptions),
                      0)});

    std::printf("\nSystem metrics:\n\n");
    system_table.print(std::cout);

    std::printf("\nEqual sharing trades a little total throughput for "
                "far better tenant isolation:\nshort interactive jobs "
                "stop paying for the batch job's monopoly.\n");
    return 0;
}
