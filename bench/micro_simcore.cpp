/**
 * @file
 * google-benchmark micro-benchmarks of the simulator core: event
 * queue throughput, RNG sampling, occupancy/context derivation,
 * metric computation, the DSS partition step and a full end-to-end
 * isolated-application simulation (events per second).
 */

#include <benchmark/benchmark.h>

#include "gpu/gpu_config.hh"
#include "gpu/kernel_exec.hh"
#include "gpu/sm.hh"
#include "harness/suite.hh"
#include "metrics/metrics.hh"
#include "predict/predictor.hh"
#include "sim/event.hh"
#include "sim/random.hh"
#include "trace/parboil.hh"
#include "workload/system.hh"

using namespace gpump;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue q;
        std::uint64_t sink = 0;
        for (std::size_t i = 0; i < n; ++i) {
            q.schedule(static_cast<sim::SimTime>((i * 7919) % 10000),
                       [&sink] { ++sink; });
        }
        q.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                            state.iterations());
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void
BM_EventQueueCancelHalf(benchmark::State &state)
{
    const std::size_t n = 10000;
    for (auto _ : state) {
        sim::EventQueue q;
        std::vector<sim::EventQueue::Handle> handles;
        handles.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            handles.push_back(q.schedule(
                static_cast<sim::SimTime>(i), [] {}));
        }
        for (std::size_t i = 0; i < n; i += 2)
            handles[i].cancel();
        q.run();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                            state.iterations());
}
BENCHMARK(BM_EventQueueCancelHalf);

void
BM_RngLognormal(benchmark::State &state)
{
    sim::Rng rng(42);
    double sink = 0;
    for (auto _ : state)
        sink += rng.lognormal(10.0, 0.3);
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RngLognormal);

void
BM_OccupancyAllKernels(benchmark::State &state)
{
    gpu::GpuParams params;
    auto profiles = trace::allKernelProfiles();
    for (auto _ : state) {
        int sink = 0;
        for (const auto *k : profiles)
            sink += gpu::maxTbsPerSm(*k, params);
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(profiles.size()) *
        state.iterations());
}
BENCHMARK(BM_OccupancyAllKernels);

void
BM_MetricsCompute(benchmark::State &state)
{
    std::vector<double> iso(8), multi(8);
    for (int i = 0; i < 8; ++i) {
        iso[static_cast<std::size_t>(i)] = 100.0 + i;
        multi[static_cast<std::size_t>(i)] = 250.0 + 13 * i;
    }
    for (auto _ : state) {
        auto m = metrics::computeMetrics(iso, multi);
        benchmark::DoNotOptimize(m.antt);
    }
}
BENCHMARK(BM_MetricsCompute);

void
BM_PredictorUpdate(benchmark::State &state)
{
    // The predict/ observation hook rides the TB-completion fast path
    // (the hottest event in the simulator); this pins the cost of one
    // model update plus the drain-estimate query pred_adaptive makes
    // per decision.
    const trace::KernelProfile *prof =
        trace::allKernelProfiles().front();
    gpu::GpuParams params;
    gpu::CommandPtr cmd = gpu::Command::makeKernel(0, 0, prof);
    gpu::KernelExec k(0, cmd, params, 64);
    gpu::Sm sm(0, 32);
    sm.kernel = &k;
    sm.insertResident({0, 0, sim::microseconds(prof->timePerTbUs), 0});
    predict::RuntimePredictor pred(0.25);
    const sim::SimTime tb = sim::microseconds(prof->timePerTbUs);
    sim::SimTime now = 0;
    double sink = 0;
    for (auto _ : state) {
        now += tb;
        pred.observeTb(sm, k, now - tb, now);
        sink += pred.estimatedDrainTimeUs(sm, now);
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredictorUpdate);

void
BM_IsolatedRun(benchmark::State &state)
{
    // End-to-end single-application simulation; reports simulator
    // throughput in events/second.
    std::uint64_t events = 0;
    for (auto _ : state) {
        workload::SystemSpec spec;
        spec.benchmarks = {"histo"};
        spec.minReplays = 1;
        workload::System system(spec);
        auto result = system.run(sim::seconds(10.0));
        events += result.eventsExecuted;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_IsolatedRun)->Unit(benchmark::kMillisecond);

void
BM_MultiprogrammedDssRun(benchmark::State &state)
{
    std::uint64_t events = 0;
    for (auto _ : state) {
        workload::SystemSpec spec;
        spec.benchmarks = {"sgemm", "histo", "spmv", "mri-q"};
        spec.policy = "dss";
        spec.minReplays = 1;
        workload::System system(spec);
        auto result = system.run(sim::seconds(30.0));
        events += result.eventsExecuted;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_MultiprogrammedDssRun)->Unit(benchmark::kMillisecond);

void
BM_ContendedSwitch(benchmark::State &state)
{
    // The same multiprogrammed mix with context save/restore riding
    // the transfer engine (gmem.contended_switch): exercises the
    // driver-originated transfer path, restore credit and SM parking.
    std::uint64_t events = 0;
    for (auto _ : state) {
        workload::SystemSpec spec;
        spec.benchmarks = {"sgemm", "histo", "spmv", "mri-q"};
        spec.policy = "dss";
        spec.minReplays = 1;
        sim::Config cfg;
        cfg.set("gmem.contended_switch", true);
        workload::System system(spec, cfg);
        auto result = system.run(sim::seconds(30.0));
        events += result.eventsExecuted;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_ContendedSwitch)->Unit(benchmark::kMillisecond);

/** A replay-heavy synthetic application: many short trace ops (CPU
 *  phases, async copies, small kernel launches) per execution, so the
 *  per-op replay machinery — command creation, stream submission,
 *  dispatcher hand-off, replay bookkeeping — dominates over kernel
 *  simulation.  This is the workload-layer hot path in isolation. */
const trace::BenchmarkSpec &
replayHeavySpec()
{
    static const trace::BenchmarkSpec spec = [] {
        trace::BenchmarkSpec s;
        s.name = "replaybench";
        s.dataset = "synthetic";
        trace::KernelProfile k;
        k.benchmark = s.name;
        k.kernel = "tick";
        k.launches = 16;
        // A tiny grid: the point of this benchmark is the replay
        // machinery around each launch, not thread-block simulation
        // (BM_WorkloadIssueLoop and BM_MultiprogrammedDssRun cover
        // the TB-heavy mix).
        k.numThreadBlocks = 2;
        k.timePerTbUs = 4.0;
        k.regsPerTb = 2048;
        k.threadsPerTb = 128;
        s.kernels.push_back(k);
        using Kind = trace::TraceOp::Kind;
        for (int i = 0; i < k.launches; ++i) {
            s.ops.push_back(
                {Kind::CpuPhase, sim::microseconds(3.0), 0, -1, true});
            s.ops.push_back(
                {Kind::MemcpyH2D, 0, 64 * 1024, -1, false});
            s.ops.push_back({Kind::KernelLaunch, 0, 0, 0, true});
        }
        s.ops.push_back({Kind::DeviceSync, 0, 0, -1, true});
        s.ops.push_back({Kind::MemcpyD2H, 0, 256 * 1024, -1, true});
        s.validate();
        return s;
    }();
    return spec;
}

void
BM_ProcessReplay(benchmark::State &state)
{
    // Four processes replaying the synthetic trace 20 times each;
    // reports workload-layer throughput in events/second.
    const trace::BenchmarkSpec &app = replayHeavySpec();
    std::uint64_t events = 0;
    for (auto _ : state) {
        workload::SystemSpec spec;
        spec.customSpecs = {&app, &app, &app, &app};
        spec.minReplays = 20;
        workload::System system(spec);
        auto result = system.run(sim::seconds(60.0));
        events += result.eventsExecuted;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_ProcessReplay)->Unit(benchmark::kMillisecond);

void
BM_WorkloadIssueLoop(benchmark::State &state)
{
    // The figure benches' configuration (lognormal TB durations,
    // cv = 0.25): every fresh thread block issued draws from the RNG,
    // so this measures the batched-draw issue loop end to end.
    std::uint64_t events = 0;
    for (auto _ : state) {
        sim::Config cfg;
        cfg.set("gpu.tb_time_cv", 0.25);
        workload::SystemSpec spec;
        spec.benchmarks = {"sgemm", "histo", "spmv", "mri-q"};
        spec.policy = "dss";
        spec.minReplays = 1;
        workload::System system(spec, cfg);
        auto result = system.run(sim::seconds(30.0));
        events += result.eventsExecuted;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_WorkloadIssueLoop)->Unit(benchmark::kMillisecond);

void
BM_RunnerBatch(benchmark::State &state)
{
    // A small Suite grid through the batch Runner; the argument is
    // the job count, so 1 vs N shows the thread-pool speedup on a
    // multi-core host.
    const int jobs = static_cast<int>(state.range(0));
    for (auto _ : state) {
        harness::Suite suite("micro");
        suite.sizes({2})
            .uniform(4, 20140614)
            .minReplays(1)
            .scheme("FCFS", {"fcfs", "context_switch", "fcfs"})
            .scheme("DSS-CS", {"dss", "context_switch", "fcfs"});
        harness::Batch batch = suite.build();
        harness::Runner runner(sim::Config(), jobs);
        auto results = runner.run(batch.requests);
        benchmark::DoNotOptimize(results.front().metrics.antt);
    }
}
BENCHMARK(BM_RunnerBatch)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

} // namespace
