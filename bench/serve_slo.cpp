/**
 * @file
 * Cloud-serving sweep: schemes x offered load, tail latency next to
 * the paper's ANTT/STP.
 *
 * One latency-class request stream (mri-q, deadlined, high priority)
 * shares the GPU with two batch-class streams (sad, sgemm) that offer
 * a fixed background load.  The latency stream's arrival rate sweeps
 * from light load into overload; every (load, scheme) cell runs the
 * *same* deterministic arrival timelines, so the curves compare
 * schedulers under identical offered work.  This is the serving
 * question Section 4.4 motivates ("multi-tenant cloud or server
 * nodes"), asked with serving metrics: a scheduler is judged by the
 * latency class's p99 and deadline-miss rate, not only by ANTT.
 *
 * Rates are expressed as load factors (arrival rate x isolated
 * service time), so the sweep tracks the simulated machine rather
 * than hard-coding requests/second.
 *
 * Usage: serve_slo [--quick] [--loads=30,60,90,120] (percent)
 *                  [--horizon-mult=N] [--replays=N] [--seed=N]
 *                  [--jobs=N] [--shards=N] [--csv] [--jsonl[=path]]
 *                  [key=value ...]
 */

#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "harness/report.hh"
#include "harness/suite.hh"
#include "serve/scenario.hh"

using namespace gpump;
using namespace gpump::bench;

namespace {

constexpr const char *kLatencyBench = "mri-q";
constexpr const char *kBatchBenchA = "sad";
constexpr const char *kBatchBenchB = "sgemm";

/** The swept scenario at one latency-class load factor. */
serve::ScenarioSpec
scenarioAt(int load_pct, double horizon_mult, std::uint64_t seed,
           double latency_iso_us, double batch_a_iso_us,
           double batch_b_iso_us)
{
    const double load = load_pct / 100.0;
    serve::ScenarioSpec sc;
    sc.name = "load=" + std::to_string(load_pct);
    sc.horizonUs = horizon_mult * latency_iso_us;
    sc.seed = seed;

    serve::TenantSpec latency;
    latency.name = "latency";
    latency.benchmark = kLatencyBench;
    latency.className = "latency";
    latency.priority = 1;
    latency.deadlineUs = 3.0 * latency_iso_us;
    latency.arrivals.kind = serve::ArrivalSpec::Kind::Poisson;
    latency.arrivals.ratePerSec = load / (latency_iso_us * 1e-6);
    latency.maxBacklog = 8; // admission control under overload
    sc.tenants.push_back(latency);

    // Background batch work at a fixed 40% load each, whatever the
    // latency class offers.
    const char *benches[] = {kBatchBenchA, kBatchBenchB};
    const double isos[] = {batch_a_iso_us, batch_b_iso_us};
    for (int i = 0; i < 2; ++i) {
        serve::TenantSpec batch;
        batch.name = std::string("batch-") + benches[i];
        batch.benchmark = benches[i];
        batch.className = "batch";
        batch.priority = 0;
        batch.arrivals.kind = serve::ArrivalSpec::Kind::Poisson;
        batch.arrivals.ratePerSec = 0.4 / (isos[i] * 1e-6);
        sc.tenants.push_back(batch);
    }
    return sc;
}

} // namespace

int
main(int argc, char **argv)
{
    harness::Args args(argc, argv);
    BenchOptions opt = BenchOptions::fromArgs(args, "serve_slo");

    std::vector<int> loads{30, 60, 90, 120};
    double horizon_mult = 120.0;
    if (args.hasFlag("quick")) {
        loads = {60, 120};
        horizon_mult = 20.0;
    }
    loads = args.flagIntList("loads", loads);
    horizon_mult = args.flagDouble("horizon-mult", horizon_mult);

    harness::Runner runner(figureConfig(args), opt.jobs);
    opt.configureRunner(runner);

    // The load factors are anchored on the isolated service times;
    // these are pure functions of (benchmark, replays, config), so
    // the generated timelines — and with them the whole bench output
    // — stay bit-identical for any --jobs/--shards.
    const double latency_iso =
        runner.isolatedTimeUs(kLatencyBench, opt.replays);
    const double batch_a_iso =
        runner.isolatedTimeUs(kBatchBenchA, opt.replays);
    const double batch_b_iso =
        runner.isolatedTimeUs(kBatchBenchB, opt.replays);

    std::vector<serve::ScenarioSpec> scenarios;
    scenarios.reserve(loads.size());
    for (int pct : loads)
        scenarios.push_back(scenarioAt(pct, horizon_mult, opt.seed,
                                       latency_iso, batch_a_iso,
                                       batch_b_iso));

    harness::Suite suite("serve_slo");
    suite.serving(scenarios)
        .minReplays(opt.replays)
        .scheme("FCFS", {"fcfs", "context_switch", "fcfs"})
        .scheme("PPQ-Aging/CS",
                {"ppq_aging", "context_switch", "priority"})
        .scheme("DSS-CS", {"dss", "context_switch", "fcfs"})
        // Burst-demoted PPQ: the batch tenants' long kernels sink
        // below the latency class by measurement, not by the static
        // launch priority alone.
        .scheme("BORE-Burst/CS",
                {"bore_burst", "context_switch", "priority"});
    harness::Batch batch = suite.build();

    runner.setProgress(progressMeter("serve_slo"));
    auto results = bench::runAll(runner, batch.requests);

    std::cout << "Cloud serving: latency-class tail latency vs "
                 "offered load\n(latency tenant " << kLatencyBench
              << ", isolated " << harness::fmt(latency_iso, 0)
              << " us/request, deadline 3x isolated,\nbacklog bound 8; "
                 "batch tenants " << kBatchBenchA << "+"
              << kBatchBenchB << " at 40% load each)\n\n";

    harness::AsciiTable t(
        {"load", "scheme", "ANTT", "STP", "p50 (us)", "p99 (us)",
         "p999 (us)", "miss%", "goodput/s", "batch/s", "fair"});
    for (std::size_t pi = 0; pi < scenarios.size(); ++pi) {
        for (std::size_t ci = 0; ci < batch.schemes.size(); ++ci) {
            const harness::RunResult &r =
                results[batch.indexOf(0, pi, ci)];
            int li = r.serving.classIndex("latency");
            int bi = r.serving.classIndex("batch");
            const serve::ClassMetrics &lat =
                r.serving.classes[static_cast<std::size_t>(li)];
            const serve::ClassMetrics &bat =
                r.serving.classes[static_cast<std::size_t>(bi)];
            t.addRow({std::to_string(loads[pi]) + "%",
                      batch.schemes[ci].name,
                      harness::fmt(r.metrics.antt),
                      harness::fmt(r.metrics.stp),
                      harness::fmt(lat.latency.p50, 0),
                      harness::fmt(lat.latency.p99, 0),
                      harness::fmt(lat.latency.p999, 0),
                      harness::fmt(100.0 * lat.missRate, 1),
                      harness::fmt(lat.goodputPerSec, 1),
                      harness::fmt(bat.throughputPerSec, 1),
                      harness::fmt(r.serving.windowFairness)});
        }
        if (pi + 1 < scenarios.size())
            t.addSeparator();
    }
    emitTable(t, opt.csv);

    if (!opt.jsonl.empty())
        harness::writeResultsJsonl(opt.jsonl, batch, results);

    std::cout << "\nReading the curves: ANTT alone hides the serving "
                 "story.  Under light load all\nschemes look alike; "
                 "as load grows, FCFS lets batch kernels sit in front "
                 "of\nlatency requests and the latency p99 explodes "
                 "long before ANTT does.\nPreemptive prioritization "
                 "(PPQ-Aging) holds the latency class's p99 and "
                 "miss\nrate down into overload at a modest batch-"
                 "throughput cost.\n";
    return 0;
}
