/**
 * @file
 * Regenerates Figure 7: the effects of DSS equal spatial sharing
 * versus the FCFS baseline, with both preemption mechanisms:
 *  (a) per-application NTT improvement, grouped by application length
 *      class (Table 1, Class 2);
 *  (b) system fairness improvement;
 *  (c) system throughput degradation.
 *
 * Methodology (Section 4.4): random workloads of equal-priority
 * processes; tokens tc = floor(NSMs/Np) with the remainder going to
 * the first admitted kernels; FCFS on the transfer engine.
 *
 * Usage: fig7_dss [--quick] [--workloads=N] [--replays=N] [--seed=N]
 *                 [--sizes=2,4,...] [--jobs=N] [--csv]
 *                 [--jsonl[=path]] [key=value ...]
 */

#include <iostream>
#include <map>
#include <vector>

#include "bench/bench_util.hh"
#include "harness/report.hh"
#include "harness/suite.hh"

using namespace gpump;
using namespace gpump::bench;

int
main(int argc, char **argv)
{
    harness::Args args(argc, argv);
    BenchOptions opt = BenchOptions::fromArgs(args, "fig7_dss");

    harness::Suite suite("fig7");
    suite.sizes(opt.sizes)
        .uniform(opt.workloads, opt.seed)
        .minReplays(opt.replays)
        .scheme("FCFS", {"fcfs", "context_switch", "fcfs"})
        .scheme("DSS-CS", {"dss", "context_switch", "fcfs"})
        .scheme("DSS-Drain", {"dss", "draining", "fcfs"});
    harness::Batch batch = suite.build();

    harness::Runner runner(figureConfig(args), opt.jobs);
    opt.configureRunner(runner);
    runner.setProgress(progressMeter("fig7"));
    auto results = bench::runAll(runner, batch.requests);

    // ntt_impr[group][size][scheme], fair_impr[size][scheme],
    // stp_degr[size][scheme].
    const std::size_t nschemes = 2; // DSS-CS, DSS-Drain
    std::map<int, std::map<int, std::vector<std::vector<double>>>>
        ntt_impr;
    std::map<int, std::vector<std::vector<double>>> fair_impr;
    std::map<int, std::vector<std::vector<double>>> stp_degr;

    for (std::size_t si = 0; si < batch.sizes.size(); ++si) {
        int size = batch.sizes[si];
        fair_impr[size].resize(nschemes);
        stp_degr[size].resize(nschemes);
        for (std::size_t pi = 0; pi < batch.numPlans(si); ++pi) {
            const auto &plan = batch.plansBySize[si][pi];
            const auto &base = results[batch.indexOf(si, pi, 0)];
            for (std::size_t s = 0; s < nschemes; ++s) {
                const auto &r = results[batch.indexOf(si, pi, s + 1)];
                fair_impr[size][s].push_back(r.metrics.fairness /
                                             base.metrics.fairness);
                stp_degr[size][s].push_back(base.metrics.stp /
                                            r.metrics.stp);
                for (std::size_t i = 0; i < plan.benchmarks.size();
                     ++i) {
                    double impr =
                        base.metrics.ntt[i] / r.metrics.ntt[i];
                    int grp =
                        groupIndex(class2Of(plan.benchmarks[i]));
                    for (int g : {grp, groupAverage}) {
                        auto &bucket = ntt_impr[g][size];
                        bucket.resize(nschemes);
                        bucket[s].push_back(impr);
                    }
                }
            }
        }
    }

    std::cout << "Figure 7: effects of DSS equal sharing vs. FCFS\n\n";

    {
        harness::AsciiTable t({"Group", "Procs", "DSS-CS",
                               "DSS-Drain"});
        // Paper panel order: SHORT, MEDIUM, LONG, AVERAGE.
        for (int g : {2, 1, 0, groupAverage}) {
            for (int size : opt.sizes) {
                auto git = ntt_impr.find(g);
                if (git == ntt_impr.end() || !git->second.count(size))
                    continue;
                const auto &bucket = git->second.at(size);
                t.addRow({groupName(g), harness::fmt(size, 0),
                          harness::fmtTimes(meanOrZero(bucket[0])),
                          harness::fmtTimes(meanOrZero(bucket[1]))});
            }
            t.addSeparator();
        }
        std::cout << "(a) Turnaround time improvement (groups = "
                     "Class 2 of each app):\n\n";
        emitTable(t, opt.csv);
    }

    auto emit_by_size =
        [&](const char *title,
            std::map<int, std::vector<std::vector<double>>> &data) {
            harness::AsciiTable t({"Procs", "DSS-CS", "DSS-Drain"});
            for (int size : opt.sizes) {
                t.addRow({harness::fmt(size, 0),
                          harness::fmtTimes(meanOrZero(data[size][0])),
                          harness::fmtTimes(
                              meanOrZero(data[size][1]))});
            }
            std::cout << "\n" << title << "\n\n";
            emitTable(t, opt.csv);
        };

    emit_by_size("(b) System fairness improvement over FCFS:",
                 fair_impr);
    emit_by_size("(c) System throughput degradation over FCFS:",
                 stp_degr);
    if (!opt.jsonl.empty())
        harness::writeResultsJsonl(opt.jsonl, batch, results);

    std::cout << "\nPaper shape: SHORT apps gain most (CS 2.45-4x), "
                 "LONG apps degrade to ~0.55x;\naverage NTT "
                 "improvement CS 1.5-2x > Drain 1.4-1.65x; fairness "
                 "CS up to ~3.35x;\nSTP degradation CS 1.06-1.34x < "
                 "Drain 1.08-1.5x.\n";
    return 0;
}
