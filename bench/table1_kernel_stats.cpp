/**
 * @file
 * Regenerates Table 1 of the paper: statistics of all 24 kernels of
 * the benchmark suite.  The launch counts, grid sizes, per-TB times
 * and resource demands are model inputs (transcribed from the paper);
 * the occupancy (TBs/SM), the SM resource fraction and the projected
 * context save time are *derived* by the library's occupancy and
 * context models and must match the published values.
 *
 * Usage: table1_kernel_stats [--csv] [--jsonl[=path]] [key=value ...]
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "gpu/gpu_config.hh"
#include "harness/args.hh"
#include "harness/report.hh"
#include "memory/gpu_memory.hh"
#include "sim/stats.hh"
#include "trace/parboil.hh"

using namespace gpump;

int
main(int argc, char **argv)
{
    harness::Args args(argc, argv);
    gpu::GpuParams params = gpu::GpuParams::fromConfig(args.config());
    sim::StatRegistry reg;
    memory::GpuMemory gmem(
        reg, memory::GpuMemoryParams::fromConfig(args.config()));

    harness::AsciiTable t({"Benchmark", "Kernel", "Launches",
                           "AvgTime(us)", "TBs", "Time/TB(us)",
                           "ShMem/TB(B)", "Regs/TB", "Thr/TB",
                           "TBs/SM", "Resour(%)", "Save(us)", "Class1",
                           "Class2"});

    for (const auto &bench : trace::parboilSuite()) {
        for (const auto &k : bench.kernels) {
            int occ = gpu::maxTbsPerSm(k, params);
            double resour = 100.0 * gpu::smResourceFraction(k, params);
            sim::SimTime save = gmem.moveTime(
                gpu::smContextBytes(k, params), params.numSms);
            t.addRow({bench.name + " [" + bench.dataset + "]",
                      k.kernel, harness::fmt(k.launches, 0),
                      harness::fmt(k.avgTimeUs, 2),
                      harness::fmt(k.numThreadBlocks, 0),
                      harness::fmt(k.timePerTbUs, 2),
                      harness::fmt(k.sharedMemPerTb, 0),
                      harness::fmt(k.regsPerTb, 0),
                      harness::fmt(k.threadsPerTb, 0),
                      harness::fmt(occ, 0), harness::fmt(resour, 2),
                      harness::fmt(sim::toMicroseconds(save), 2),
                      trace::durationClassName(bench.kernelClass),
                      trace::durationClassName(bench.appClass)});
        }
        t.addSeparator();
    }

    std::cout << "Table 1: statistics of all kernels from the "
                 "benchmark applications\n"
                 "(TBs/SM, Resour(%) and Save(us) are derived by the "
                 "occupancy/context models)\n\n";
    bench::emitTable(
        t, args.hasFlag("csv"),
        bench::BenchOptions::jsonlPath(args, "table1_kernel_stats"));
    return 0;
}
