/**
 * @file
 * Regenerates Figure 6: system throughput (STP) degradation of the
 * preemptive priority-queue schedulers relative to NPQ, for (a) the
 * exclusive-access scheme and (b) the shared-access scheme that
 * back-fills free SMs with low-priority kernels.
 *
 * Same workloads as Figure 5 (one high-priority process per random
 * workload; NPQ on the transfer engine throughout).
 *
 * Usage: fig6_ppq_stp [--quick] [--per-bench=N] [--replays=N]
 *                     [--seed=N] [--sizes=2,4,...] [--jobs=N]
 *                     [--csv] [--jsonl[=path]] [key=value ...]
 */

#include <iostream>
#include <map>
#include <vector>

#include "bench/bench_util.hh"
#include "harness/report.hh"
#include "harness/suite.hh"

using namespace gpump;
using namespace gpump::bench;

int
main(int argc, char **argv)
{
    harness::Args args(argc, argv);
    BenchOptions opt = BenchOptions::fromArgs(args, "fig6_ppq_stp");

    harness::Suite suite("fig6");
    suite.sizes(opt.sizes)
        .prioritized(opt.perBench, opt.seed)
        .minReplays(opt.replays)
        .scheme("NPQ", {"npq", "context_switch", "priority"})
        .scheme("excl/CS", {"ppq_excl", "context_switch", "priority"})
        .scheme("excl/Drain", {"ppq_excl", "draining", "priority"})
        .scheme("shared/CS",
                {"ppq_shared", "context_switch", "priority"})
        .scheme("shared/Drain", {"ppq_shared", "draining", "priority"});
    harness::Batch batch = suite.build();

    harness::Runner runner(figureConfig(args), opt.jobs);
    opt.configureRunner(runner);
    runner.setProgress(progressMeter("fig6"));
    auto results = bench::runAll(runner, batch.requests);

    // degradation[size][scheme] -> samples of STP_npq / STP_scheme.
    const std::size_t nschemes = 4;
    std::map<int, std::vector<std::vector<double>>> degradation;

    for (std::size_t si = 0; si < batch.sizes.size(); ++si) {
        auto &buckets = degradation[batch.sizes[si]];
        buckets.resize(nschemes);
        for (std::size_t pi = 0; pi < batch.numPlans(si); ++pi) {
            double stp_npq =
                results[batch.indexOf(si, pi, 0)].metrics.stp;
            for (std::size_t s = 0; s < nschemes; ++s) {
                double stp = results[batch.indexOf(si, pi, s + 1)]
                                 .metrics.stp;
                buckets[s].push_back(stp_npq / stp);
            }
        }
    }

    auto emit = [&](const char *title, std::size_t cs_idx,
                    std::size_t drain_idx) {
        harness::AsciiTable t(
            {"Procs", "PPQ Context Switch", "PPQ Draining"});
        for (int size : opt.sizes) {
            t.addRow({harness::fmt(size, 0),
                      harness::fmtTimes(
                          meanOrZero(degradation[size][cs_idx])),
                      harness::fmtTimes(
                          meanOrZero(degradation[size][drain_idx]))});
        }
        std::cout << title << "\n\n";
        emitTable(t, opt.csv);
        std::cout << "\n";
    };

    std::cout << "Figure 6: STP degradation over NPQ (higher = more "
                 "throughput lost)\n\n";
    emit("(a) Exclusive access for the high-priority process:", 0, 1);
    emit("(b) Shared access (low-priority back-filling):", 2, 3);
    if (!opt.jsonl.empty())
        harness::writeResultsJsonl(opt.jsonl, batch, results);
    std::cout << "Paper shape: exclusive CS ~1.08-1.12x, exclusive "
                 "draining ~1.09-1.38x;\nthe shared scheme degrades "
                 "more than the exclusive one (preempted backfills\n"
                 "waste work).\n";
    return 0;
}
