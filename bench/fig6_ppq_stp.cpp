/**
 * @file
 * Regenerates Figure 6: system throughput (STP) degradation of the
 * preemptive priority-queue schedulers relative to NPQ, for (a) the
 * exclusive-access scheme and (b) the shared-access scheme that
 * back-fills free SMs with low-priority kernels.
 *
 * Same workloads as Figure 5 (one high-priority process per random
 * workload; NPQ on the transfer engine throughout).
 *
 * Usage: fig6_ppq_stp [--quick] [--per-bench=N] [--replays=N]
 *                     [--seed=N] [--csv] [key=value ...]
 */

#include <iostream>
#include <map>
#include <vector>

#include "bench/bench_util.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "workload/generator.hh"

using namespace gpump;
using namespace gpump::bench;

int
main(int argc, char **argv)
{
    harness::Args args(argc, argv);
    BenchOptions opt = BenchOptions::fromArgs(args);

    harness::Experiment exp(figureConfig(args));
    exp.setMinReplays(opt.replays);

    const harness::Scheme npq{"npq", "context_switch", "priority"};
    const std::vector<std::pair<std::string, harness::Scheme>> schemes =
        {
            {"excl/CS", {"ppq_excl", "context_switch", "priority"}},
            {"excl/Drain", {"ppq_excl", "draining", "priority"}},
            {"shared/CS", {"ppq_shared", "context_switch", "priority"}},
            {"shared/Drain", {"ppq_shared", "draining", "priority"}},
        };

    // degradation[size][scheme] -> samples of STP_npq / STP_scheme.
    std::map<int, std::vector<std::vector<double>>> degradation;

    for (int size : opt.sizes) {
        auto plans = workload::makePrioritizedPlans(
            size, opt.perBench, opt.seed + static_cast<unsigned>(size));
        degradation[size].resize(schemes.size());
        int done = 0;
        for (const auto &plan : plans) {
            double stp_npq = exp.run(plan, npq).metrics.stp;
            for (std::size_t i = 0; i < schemes.size(); ++i) {
                double stp =
                    exp.run(plan, schemes[i].second).metrics.stp;
                degradation[size][i].push_back(stp_npq / stp);
            }
            progress("fig6", size, ++done,
                     static_cast<int>(plans.size()));
        }
    }

    auto emit = [&](const char *title, std::size_t cs_idx,
                    std::size_t drain_idx) {
        harness::AsciiTable t(
            {"Procs", "PPQ Context Switch", "PPQ Draining"});
        for (int size : opt.sizes) {
            t.addRow({harness::fmt(size, 0),
                      harness::fmtTimes(
                          meanOrZero(degradation[size][cs_idx])),
                      harness::fmtTimes(
                          meanOrZero(degradation[size][drain_idx]))});
        }
        std::cout << title << "\n\n";
        if (opt.csv)
            t.printCsv(std::cout);
        else
            t.print(std::cout);
        std::cout << "\n";
    };

    std::cout << "Figure 6: STP degradation over NPQ (higher = more "
                 "throughput lost)\n\n";
    emit("(a) Exclusive access for the high-priority process:", 0, 1);
    emit("(b) Shared access (low-priority back-filling):", 2, 3);
    std::cout << "Paper shape: exclusive CS ~1.08-1.12x, exclusive "
                 "draining ~1.09-1.38x;\nthe shared scheme degrades "
                 "more than the exclusive one (preempted backfills\n"
                 "waste work).\n";
    return 0;
}
