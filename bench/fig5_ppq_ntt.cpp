/**
 * @file
 * Regenerates Figure 5: turnaround-time improvement of the
 * high-priority process over its nonprioritized execution, for the
 * NPQ, PPQ/context-switch and PPQ/draining schedulers on 2/4/6/8
 * process workloads, grouped by the high-priority benchmark's kernel
 * length class (Table 1, Class 1).
 *
 * Methodology (Section 4.2): random workloads in which one process
 * has higher priority; every benchmark appears the same number of
 * times as the high-priority process; the transfer engine runs NPQ in
 * all prioritized cases; the baseline is the same workload with no
 * prioritization under FCFS.
 *
 * Usage: fig5_ppq_ntt [--quick] [--per-bench=N] [--replays=N]
 *                     [--seed=N] [--sizes=2,4,...] [--jobs=N]
 *                     [--shards=N] [--csv] [--jsonl[=path]]
 *                     [--mechanism=NAME] [key=value ...]
 *
 * --mechanism=NAME swaps the context-switch column's preemption
 * mechanism for any registered one (e.g. --mechanism=adaptive; see
 * --list-schemes), relabelling that column "PPQ-NAME"; asking for
 * draining collapses the table to that single preemptive column
 * instead of duplicating the fixed PPQ-Drain one.  Without the flag
 * the output is the paper's figure, byte for byte.
 */

#include <iostream>
#include <map>
#include <vector>

#include "bench/bench_util.hh"
#include "core/preemption.hh"
#include "harness/report.hh"
#include "harness/suite.hh"

using namespace gpump;
using namespace gpump::bench;

int
main(int argc, char **argv)
{
    harness::Args args(argc, argv);
    BenchOptions opt = BenchOptions::fromArgs(args, "fig5_ppq_ntt");

    // The second preemptive column defaults to the paper's
    // context-switch mechanism; --mechanism swaps in any registered
    // one (the CI smoke runs the adaptive mechanism through here).
    // Asking for draining would duplicate the fixed PPQ-Drain
    // column, so that column is dropped in that case.
    std::string mech = args.flag("mechanism", "context_switch");
    if (const auto *md = core::mechanismRegistry().find(mech))
        mech = md->name; // canonicalize aliases (cs, drain, ...)
    std::string mech_col =
        mech == "context_switch" ? "PPQ-CS" : "PPQ-" + mech;
    std::vector<std::string> prio_cols{"NPQ", mech_col};

    harness::Suite suite("fig5");
    suite.sizes(opt.sizes)
        .prioritized(opt.perBench, opt.seed)
        .minReplays(opt.replays)
        .schemeNonprioritized("BASE",
                              {"fcfs", "context_switch", "fcfs"})
        .scheme("NPQ", {"npq", "context_switch", "priority"})
        .scheme(mech_col, {"ppq_excl", mech, "priority"});
    if (mech != "draining") {
        suite.scheme("PPQ-Drain", {"ppq_excl", "draining", "priority"});
        prio_cols.push_back("PPQ-Drain");
    }
    harness::Batch batch = suite.build();

    harness::Runner runner(figureConfig(args), opt.jobs);
    opt.configureRunner(runner);
    runner.setProgress(progressMeter("fig5"));
    auto results = bench::runAll(runner, batch.requests);

    // improvements[group][size][scheme] -> samples
    std::map<int, std::map<int, std::vector<std::vector<double>>>>
        improvements;
    const std::size_t nschemes = prio_cols.size();

    for (std::size_t si = 0; si < batch.sizes.size(); ++si) {
        for (std::size_t pi = 0; pi < batch.numPlans(si); ++pi) {
            const auto &plan = batch.plansBySize[si][pi];
            double ntt_base =
                results[batch.indexOf(si, pi, 0)].metrics.ntt[0];

            int grp = groupIndex(class1Of(plan.benchmarks[0]));
            for (int g : {grp, groupAverage}) {
                auto &bucket = improvements[g][batch.sizes[si]];
                bucket.resize(nschemes);
                for (std::size_t s = 0; s < nschemes; ++s) {
                    double ntt = results[batch.indexOf(si, pi, s + 1)]
                                     .metrics.ntt[0];
                    bucket[s].push_back(ntt_base / ntt);
                }
            }
        }
    }

    std::vector<std::string> headers{"Group", "Procs"};
    headers.insert(headers.end(), prio_cols.begin(), prio_cols.end());
    harness::AsciiTable t(headers);
    for (int g = 0; g < numGroups; ++g) {
        for (int size : opt.sizes) {
            auto it = improvements.find(g);
            if (it == improvements.end() ||
                !it->second.count(size)) {
                continue;
            }
            const auto &bucket = it->second.at(size);
            std::vector<std::string> row{groupName(g),
                                         harness::fmt(size, 0)};
            for (std::size_t s = 0; s < nschemes; ++s)
                row.push_back(harness::fmtTimes(meanOrZero(bucket[s])));
            t.addRow(row);
        }
        t.addSeparator();
    }

    std::cout << "Figure 5: NTT improvement of the high-priority "
                 "process over its\nnonprioritized (FCFS) execution.  "
                 "Groups = Class 1 of the prioritized benchmark.\n\n";
    emitTable(t, opt.csv);
    if (!opt.jsonl.empty())
        harness::writeResultsJsonl(opt.jsonl, batch, results);
    if (mech == "context_switch") {
        std::cout << "\nPaper shape: NPQ ~1.1-1.6x; PPQ-CS grows to "
                     "~15.6x and PPQ-Drain to ~6x at 8\nprocesses on "
                     "average; the SHORT group benefits most (CS up "
                     "to ~64x).\n";
    }
    return 0;
}
