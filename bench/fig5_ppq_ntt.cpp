/**
 * @file
 * Regenerates Figure 5: turnaround-time improvement of the
 * high-priority process over its nonprioritized execution, for the
 * NPQ, PPQ/context-switch and PPQ/draining schedulers on 2/4/6/8
 * process workloads, grouped by the high-priority benchmark's kernel
 * length class (Table 1, Class 1).
 *
 * Methodology (Section 4.2): random workloads in which one process
 * has higher priority; every benchmark appears the same number of
 * times as the high-priority process; the transfer engine runs NPQ in
 * all prioritized cases; the baseline is the same workload with no
 * prioritization under FCFS.
 *
 * Usage: fig5_ppq_ntt [--quick] [--per-bench=N] [--replays=N]
 *                     [--seed=N] [--csv] [key=value ...]
 */

#include <iostream>
#include <map>
#include <vector>

#include "bench/bench_util.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "workload/generator.hh"

using namespace gpump;
using namespace gpump::bench;

int
main(int argc, char **argv)
{
    harness::Args args(argc, argv);
    BenchOptions opt = BenchOptions::fromArgs(args);

    harness::Experiment exp(figureConfig(args));
    exp.setMinReplays(opt.replays);

    const std::vector<std::pair<std::string, harness::Scheme>> schemes =
        {
            {"NPQ", {"npq", "context_switch", "priority"}},
            {"PPQ-CS", {"ppq_excl", "context_switch", "priority"}},
            {"PPQ-Drain", {"ppq_excl", "draining", "priority"}},
        };
    const harness::Scheme baseline{"fcfs", "context_switch", "fcfs"};

    // improvements[group][size][scheme] -> samples
    std::map<int, std::map<int, std::vector<std::vector<double>>>>
        improvements;

    for (int size : opt.sizes) {
        auto plans = workload::makePrioritizedPlans(
            size, opt.perBench, opt.seed + static_cast<unsigned>(size));
        int done = 0;
        for (const auto &plan : plans) {
            // Nonprioritized execution of the same workload.
            workload::WorkloadPlan base_plan = plan;
            base_plan.highPriorityIndex = -1;
            double ntt_base =
                exp.run(base_plan, baseline).metrics.ntt[0];

            std::vector<double> impr;
            impr.reserve(schemes.size());
            for (const auto &s : schemes) {
                double ntt = exp.run(plan, s.second).metrics.ntt[0];
                impr.push_back(ntt_base / ntt);
            }

            int grp = groupIndex(class1Of(plan.benchmarks[0]));
            for (int g : {grp, groupAverage}) {
                auto &bucket = improvements[g][size];
                bucket.resize(schemes.size());
                for (std::size_t i = 0; i < schemes.size(); ++i)
                    bucket[i].push_back(impr[i]);
            }
            progress("fig5", size, ++done,
                     static_cast<int>(plans.size()));
        }
    }

    harness::AsciiTable t({"Group", "Procs", "NPQ", "PPQ-CS",
                           "PPQ-Drain"});
    for (int g = 0; g < numGroups; ++g) {
        for (int size : opt.sizes) {
            auto it = improvements.find(g);
            if (it == improvements.end() ||
                !it->second.count(size)) {
                continue;
            }
            const auto &bucket = it->second.at(size);
            t.addRow({groupName(g), harness::fmt(size, 0),
                      harness::fmtTimes(meanOrZero(bucket[0])),
                      harness::fmtTimes(meanOrZero(bucket[1])),
                      harness::fmtTimes(meanOrZero(bucket[2]))});
        }
        t.addSeparator();
    }

    std::cout << "Figure 5: NTT improvement of the high-priority "
                 "process over its\nnonprioritized (FCFS) execution.  "
                 "Groups = Class 1 of the prioritized benchmark.\n\n";
    if (opt.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    std::cout << "\nPaper shape: NPQ ~1.1-1.6x; PPQ-CS grows to "
                 "~15.6x and PPQ-Drain to ~6x at 8\nprocesses on "
                 "average; the SHORT group benefits most (CS up to "
                 "~64x).\n";
    return 0;
}
