/**
 * @file
 * Ablation: why preempted thread blocks are issued *before* fresh
 * ones (Section 3.3).
 *
 * The paper keeps PTBQ handlers on chip by bounding each queue at
 * NSMs x Tmax entries, which is only safe because preempted blocks
 * are re-issued first.  This bench flips the order (fresh-first) and
 * measures (1) the deepest PTBQ the hardware would have needed and
 * (2) what the reordering buys in ANTT/STP — quantifying the design
 * choice.
 *
 * Usage: ablation_ptbq_order [--workloads=N] [--replays=N] [--seed=N]
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "core/tables.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "metrics/metrics.hh"
#include "workload/generator.hh"
#include "workload/system.hh"

using namespace gpump;
using namespace gpump::bench;

int
main(int argc, char **argv)
{
    harness::Args args(argc, argv);
    BenchOptions opt = BenchOptions::fromArgs(args);
    int nprocs = 4;

    gpu::GpuParams params = gpu::GpuParams::fromConfig(args.config());
    int onchip = core::ptbqCapacityPerKernel(params);

    harness::AsciiTable t({"order", "mean ANTT", "mean STP",
                           "max PTBQ depth", "fits on chip"});

    for (bool preempted_first : {true, false}) {
        sim::Config cfg = args.config();
        cfg.set("engine.preempted_first", preempted_first);
        harness::Experiment exp(cfg);
        exp.setMinReplays(opt.replays);

        auto plans = workload::makeUniformPlans(nprocs, opt.workloads,
                                                opt.seed);
        double antt_sum = 0, stp_sum = 0, max_depth = 0;
        int done = 0;
        for (const auto &plan : plans) {
            workload::SystemSpec spec;
            spec.benchmarks = plan.benchmarks;
            spec.policy = "dss";
            spec.mechanism = "context_switch";
            spec.seed = plan.seed;
            spec.minReplays = opt.replays;
            workload::System system(spec, cfg);
            auto result = system.run(sim::seconds(120.0));

            std::vector<double> iso;
            for (const auto &b : plan.benchmarks)
                iso.push_back(exp.isolatedTimeUs(b));
            auto m = metrics::computeMetrics(iso,
                                             result.meanTurnaroundUs);
            antt_sum += m.antt;
            stp_sum += m.stp;
            max_depth = std::max(max_depth, result.maxPtbqDepth);
            progress("ablation_ptbq", nprocs, ++done,
                     static_cast<int>(plans.size()));
        }
        double n = static_cast<double>(opt.workloads);
        t.addRow({preempted_first ? "preempted-first (paper)"
                                  : "fresh-first (ablated)",
                  harness::fmt(antt_sum / n),
                  harness::fmt(stp_sum / n),
                  harness::fmt(max_depth, 0),
                  max_depth <= onchip ? "yes" : "NO"});
    }

    std::cout << "Ablation: PTBQ issue order (4-process DSS/context-"
                 "switch workloads)\n\nOn-chip PTBQ capacity per "
                 "kernel: "
              << onchip << " entries\n\n";
    t.print(std::cout);
    std::cout << "\nIssuing preempted blocks first bounds the PTBQ "
                 "(on-chip storage stays\nsufficient) at no "
                 "throughput cost; fresh-first can exceed the bound "
                 "and\nwould force the handlers off chip.\n";
    return 0;
}
