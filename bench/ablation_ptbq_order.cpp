/**
 * @file
 * Ablation: why preempted thread blocks are issued *before* fresh
 * ones (Section 3.3).
 *
 * The paper keeps PTBQ handlers on chip by bounding each queue at
 * NSMs x Tmax entries, which is only safe because preempted blocks
 * are re-issued first.  This bench flips the order (fresh-first) and
 * measures (1) the deepest PTBQ the hardware would have needed and
 * (2) what the reordering buys in ANTT/STP — quantifying the design
 * choice.
 *
 * Usage: ablation_ptbq_order [--workloads=N] [--replays=N] [--seed=N]
 *                            [--jobs=N] [--csv] [--jsonl[=path]]
 */

#include <algorithm>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/tables.hh"
#include "harness/report.hh"
#include "harness/suite.hh"

using namespace gpump;
using namespace gpump::bench;

int
main(int argc, char **argv)
{
    harness::Args args(argc, argv);
    BenchOptions opt =
        BenchOptions::fromArgs(args, "ablation_ptbq_order");
    int nprocs = 4;

    gpu::GpuParams params = gpu::GpuParams::fromConfig(args.config());
    int onchip = core::ptbqCapacityPerKernel(params);

    sim::Config preempted_first_cfg, fresh_first_cfg;
    preempted_first_cfg.set("engine.preempted_first", true);
    fresh_first_cfg.set("engine.preempted_first", false);

    harness::Suite suite("ablation_ptbq");
    suite
        .fixedPlans(workload::makeUniformPlans(nprocs, opt.workloads,
                                               opt.seed))
        .minReplays(opt.replays)
        .limit(sim::seconds(120.0))
        .scheme("preempted-first", {"dss", "context_switch", "fcfs"},
                preempted_first_cfg)
        .scheme("fresh-first", {"dss", "context_switch", "fcfs"},
                fresh_first_cfg);
    harness::Batch batch = suite.build();

    harness::Runner runner(args.config(), opt.jobs);
    opt.configureRunner(runner);
    runner.setProgress(progressMeter("ablation_ptbq"));
    auto results = bench::runAll(runner, batch.requests);

    harness::AsciiTable t({"order", "mean ANTT", "mean STP",
                           "max PTBQ depth", "fits on chip"});

    for (std::size_t ci = 0; ci < batch.schemes.size(); ++ci) {
        double antt_sum = 0, stp_sum = 0, max_depth = 0;
        for (std::size_t pi = 0; pi < batch.numPlans(0); ++pi) {
            const auto &r = results[batch.indexOf(0, pi, ci)];
            antt_sum += r.metrics.antt;
            stp_sum += r.metrics.stp;
            max_depth = std::max(max_depth, r.sys.maxPtbqDepth);
        }
        double n = static_cast<double>(batch.numPlans(0));
        bool preempted_first = batch.schemes[ci].overrides.getBool(
            "engine.preempted_first", true);
        t.addRow({preempted_first ? "preempted-first (paper)"
                                  : "fresh-first (ablated)",
                  harness::fmt(antt_sum / n),
                  harness::fmt(stp_sum / n),
                  harness::fmt(max_depth, 0),
                  max_depth <= onchip ? "yes" : "NO"});
    }

    std::cout << "Ablation: PTBQ issue order (4-process DSS/context-"
                 "switch workloads)\n\nOn-chip PTBQ capacity per "
                 "kernel: "
              << onchip << " entries\n\n";
    emitTable(t, opt.csv, opt.jsonl);
    std::cout << "\nIssuing preempted blocks first bounds the PTBQ "
                 "(on-chip storage stays\nsufficient) at no "
                 "throughput cost; fresh-first can exceed the bound "
                 "and\nwould force the handlers off chip.\n";
    return 0;
}
