/**
 * @file
 * Ablation: what does the adaptive mechanism lose when its oracle is
 * replaced by the online runtime predictor?
 *
 * The "adaptive" mechanism decides drain-vs-switch from the resident
 * blocks' *scheduled* completion times — information no real driver
 * has.  "pred_adaptive" makes the same decision from the predict/
 * subsystem's measured model (EWMA of observed per-TB service times,
 * cold-start prior from the launch profile).  This bench quantifies
 * the prediction-to-oracle gap on the Figure 7 methodology: random
 * equal-priority DSS workloads, ANTT / fairness / STP vs. the FCFS
 * baseline, for the static mechanisms (CS, Drain), the oracle
 * adaptive, and the predictor-driven adaptive.
 *
 * Usage: ablation_prediction [--quick] [--workloads=N] [--replays=N]
 *                            [--seed=N] [--sizes=2,4,...] [--jobs=N]
 *                            [--csv] [--jsonl[=path]] [key=value ...]
 */

#include <iostream>
#include <map>
#include <vector>

#include "bench/bench_util.hh"
#include "harness/report.hh"
#include "harness/suite.hh"

using namespace gpump;
using namespace gpump::bench;

int
main(int argc, char **argv)
{
    harness::Args args(argc, argv);
    BenchOptions opt = BenchOptions::fromArgs(args,
                                              "ablation_prediction");

    harness::Suite suite("ablation_prediction");
    suite.sizes(opt.sizes)
        .uniform(opt.workloads, opt.seed)
        .minReplays(opt.replays)
        .scheme("FCFS", {"fcfs", "context_switch", "fcfs"})
        .scheme("DSS-CS", {"dss", "context_switch", "fcfs"})
        .scheme("DSS-Drain", {"dss", "draining", "fcfs"})
        .scheme("DSS-Adaptive", {"dss", "adaptive", "fcfs"})
        .scheme("DSS-PredAdaptive", {"dss", "pred_adaptive", "fcfs"});
    harness::Batch batch = suite.build();

    harness::Runner runner(figureConfig(args), opt.jobs);
    opt.configureRunner(runner);
    runner.setProgress(progressMeter("ablation_prediction"));
    auto results = bench::runAll(runner, batch.requests);

    // Improvements over the FCFS baseline (scheme 0), by size:
    // antt_impr/fair_impr/stp_degr[size][scheme].
    const std::size_t nschemes = batch.schemes.size() - 1;
    std::map<int, std::vector<std::vector<double>>> antt_impr;
    std::map<int, std::vector<std::vector<double>>> fair_impr;
    std::map<int, std::vector<std::vector<double>>> stp_degr;
    // Per-workload oracle-vs-predictor ANTT ratio (gap < 1 means the
    // predictor-driven runs had worse, i.e. higher, ANTT).
    std::map<int, std::vector<double>> gap;

    const std::size_t oracle = 3, predicted = 4; // scheme indices

    for (std::size_t si = 0; si < batch.sizes.size(); ++si) {
        int size = batch.sizes[si];
        antt_impr[size].resize(nschemes);
        fair_impr[size].resize(nschemes);
        stp_degr[size].resize(nschemes);
        for (std::size_t pi = 0; pi < batch.numPlans(si); ++pi) {
            const auto &base = results[batch.indexOf(si, pi, 0)];
            for (std::size_t s = 0; s < nschemes; ++s) {
                const auto &r = results[batch.indexOf(si, pi, s + 1)];
                antt_impr[size][s].push_back(base.metrics.antt /
                                             r.metrics.antt);
                fair_impr[size][s].push_back(r.metrics.fairness /
                                             base.metrics.fairness);
                stp_degr[size][s].push_back(base.metrics.stp /
                                            r.metrics.stp);
            }
            const auto &orc = results[batch.indexOf(si, pi, oracle)];
            const auto &prd =
                results[batch.indexOf(si, pi, predicted)];
            gap[size].push_back(orc.metrics.antt / prd.metrics.antt);
        }
    }

    std::cout << "Prediction ablation: oracle adaptive vs. online "
                 "runtime prediction\n(Figure 7 methodology, "
                 "equal-priority DSS workloads)\n\n";

    auto emit_by_size =
        [&](const char *title,
            std::map<int, std::vector<std::vector<double>>> &data) {
            harness::AsciiTable t({"Procs", "DSS-CS", "DSS-Drain",
                                   "DSS-Adaptive",
                                   "DSS-PredAdaptive"});
            for (int size : opt.sizes) {
                t.addRow({harness::fmt(size, 0),
                          harness::fmtTimes(meanOrZero(data[size][0])),
                          harness::fmtTimes(meanOrZero(data[size][1])),
                          harness::fmtTimes(meanOrZero(data[size][2])),
                          harness::fmtTimes(
                              meanOrZero(data[size][3]))});
            }
            std::cout << title << "\n\n";
            emitTable(t, opt.csv);
            std::cout << "\n";
        };

    emit_by_size("(a) ANTT improvement over FCFS:", antt_impr);
    emit_by_size("(b) System fairness improvement over FCFS:",
                 fair_impr);
    emit_by_size("(c) System throughput degradation over FCFS:",
                 stp_degr);

    {
        harness::AsciiTable t({"Procs", "Oracle/Predicted ANTT"});
        for (int size : opt.sizes) {
            t.addRow({harness::fmt(size, 0),
                      harness::fmtTimes(meanOrZero(gap[size]), 4)});
        }
        std::cout << "(d) Prediction-to-oracle gap (oracle ANTT / "
                     "predicted ANTT;\n    1.00x = the predictor "
                     "matches the oracle, <1x = predictor worse):\n\n";
        emitTable(t, opt.csv);
    }

    if (!opt.jsonl.empty())
        harness::writeResultsJsonl(opt.jsonl, batch, results);

    std::cout << "\nExpected shape: adaptive between CS and Drain on "
                 "every metric, and\npred_adaptive within a few "
                 "percent of oracle adaptive once its per-kernel\n"
                 "models warm up (cold starts fall back to context "
                 "switching).\n";
    return 0;
}
