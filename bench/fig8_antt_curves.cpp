/**
 * @file
 * Regenerates Figure 8: the ANTT of every simulated workload under
 * FCFS, DSS/context-switch and DSS/draining, for 2/4/6/8 process
 * workloads.  Each policy's series is sorted ascending (the paper's
 * S-curves over "% of workloads"), which makes the crossing point
 * between the two mechanisms visible.
 *
 * Usage: fig8_antt_curves [--quick] [--workloads=N] [--replays=N]
 *                         [--seed=N] [--sizes=2,4,...] [--jobs=N]
 *                         [--csv] [--jsonl[=path]] [key=value ...]
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "harness/report.hh"
#include "harness/suite.hh"

using namespace gpump;
using namespace gpump::bench;

int
main(int argc, char **argv)
{
    harness::Args args(argc, argv);
    BenchOptions opt = BenchOptions::fromArgs(args, "fig8_antt_curves");

    harness::Suite suite("fig8");
    suite.sizes(opt.sizes)
        .uniform(opt.workloads, opt.seed)
        .minReplays(opt.replays)
        .scheme("FCFS", {"fcfs", "context_switch", "fcfs"})
        .scheme("DSS-CS", {"dss", "context_switch", "fcfs"})
        .scheme("DSS-Drain", {"dss", "draining", "fcfs"});
    harness::Batch batch = suite.build();

    harness::Runner runner(figureConfig(args), opt.jobs);
    opt.configureRunner(runner);
    runner.setProgress(progressMeter("fig8"));
    auto results = bench::runAll(runner, batch.requests);

    std::cout << "Figure 8: ANTT for all simulated workloads (each "
                 "series sorted ascending,\nposition = percentile of "
                 "workloads)\n";

    const std::size_t nschemes = batch.schemes.size();
    for (std::size_t si = 0; si < batch.sizes.size(); ++si) {
        std::vector<std::vector<double>> antt(nschemes);
        for (std::size_t pi = 0; pi < batch.numPlans(si); ++pi) {
            for (std::size_t s = 0; s < nschemes; ++s) {
                antt[s].push_back(
                    results[batch.indexOf(si, pi, s)].metrics.antt);
            }
        }
        for (auto &series : antt)
            std::sort(series.begin(), series.end());

        harness::AsciiTable t({"% workloads", "FCFS", "DSS-CS",
                               "DSS-Drain"});
        int n = static_cast<int>(batch.numPlans(si));
        for (int i = 0; i < n; ++i) {
            double pct = n == 1
                ? 100.0
                : 100.0 * static_cast<double>(i) /
                    static_cast<double>(n - 1);
            t.addRow({harness::fmt(pct, 0) + "%",
                      harness::fmt(antt[0][static_cast<size_t>(i)]),
                      harness::fmt(antt[1][static_cast<size_t>(i)]),
                      harness::fmt(antt[2][static_cast<size_t>(i)])});
        }

        // How many workloads improved over FCFS, and where the two
        // mechanisms cross (the paper's qualitative observations).
        int improved_cs = 0, improved_drain = 0, drain_wins = 0;
        for (int i = 0; i < n; ++i) {
            auto idx = static_cast<std::size_t>(i);
            improved_cs += antt[1][idx] < antt[0][idx];
            improved_drain += antt[2][idx] < antt[0][idx];
            drain_wins += antt[2][idx] < antt[1][idx];
        }

        std::cout << "\n--- " << batch.sizes[si]
                  << "-process workloads ---\n\n";
        emitTable(t, opt.csv);
        std::cout << "\nsorted-position comparison: DSS-CS below FCFS "
                  << "at " << improved_cs << "/" << n
                  << " positions, DSS-Drain at " << improved_drain
                  << "/" << n << ";\nDrain below CS at " << drain_wins
                  << "/" << n << " positions (the Figure 8 "
                  << "cross-over).\n";
    }
    if (!opt.jsonl.empty())
        harness::writeResultsJsonl(opt.jsonl, batch, results);

    std::cout << "\nPaper shape: at 2 processes only ~20% of "
                 "workloads improve; the fraction\ngrows with "
                 "process count until nearly all workloads improve "
                 "at 6-8; the\ndraining curve drops below the "
                 "context-switch curve around the middle of\nthe "
                 "improved range.\n";
    return 0;
}
