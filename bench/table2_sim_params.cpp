/**
 * @file
 * Regenerates Table 2 of the paper: the simulation parameters of the
 * modelled platform (CPU, PCIe bus, GPU).  Values come from the live
 * parameter structs, so any key=value override on the command line is
 * reflected — the printed table is always what the simulator actually
 * uses.
 *
 * Usage: table2_sim_params [--csv] [--jsonl[=path]] [key=value ...]
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "gpu/gpu_config.hh"
#include "harness/args.hh"
#include "harness/report.hh"
#include "memory/gpu_memory.hh"
#include "memory/pcie.hh"
#include "workload/host_cpu.hh"

using namespace gpump;

int
main(int argc, char **argv)
{
    harness::Args args(argc, argv);
    const sim::Config &cfg = args.config();
    auto gpu_params = gpu::GpuParams::fromConfig(cfg);
    auto pcie = memory::PcieParams::fromConfig(cfg);
    auto gmem = memory::GpuMemoryParams::fromConfig(cfg);
    auto cpu = workload::CpuParams::fromConfig(cfg);

    harness::AsciiTable t({"Component", "Parameter", "Value"});
    t.addRow({"CPU", "Clock", harness::fmt(cpu.clockGhz, 1) + " GHz"});
    t.addRow({"CPU", "Cores", harness::fmt(cpu.cores, 0)});
    t.addRow({"CPU", "Threading",
              harness::fmt(cpu.threadsPerCore, 0) + "-way"});
    t.addSeparator();
    t.addRow({"PCIe Bus", "Clock",
              harness::fmt(pcie.clockHz / 1e6, 0) + " MHz"});
    t.addRow({"PCIe Bus", "Lanes", harness::fmt(pcie.lanes, 0)});
    t.addRow({"PCIe Bus", "Burst",
              harness::fmt(static_cast<double>(pcie.burstBytes) / 1024,
                           0) +
                  " KB"});
    t.addSeparator();
    t.addRow({"GPU", "Clock",
              harness::fmt(gpu_params.clockGhz * 1000, 0) + " MHz"});
    t.addRow({"GPU", "Cores (SMs)",
              harness::fmt(gpu_params.numSms, 0) + " (" +
                  harness::fmt(gpu_params.pipelinesPerSm, 0) +
                  " pipelines each)"});
    t.addRow({"GPU", "Memory Bandwidth",
              harness::fmt(gmem.bandwidth / 1e9, 0) + " GB/s"});
    t.addRow({"GPU", "Registers (per SM)",
              harness::fmt(gpu_params.regsPerSm, 0)});
    t.addRow({"GPU", "Thread Blocks (per SM)",
              harness::fmt(gpu_params.maxTbSlotsPerSm, 0)});
    t.addRow({"GPU", "Threads (per SM)",
              harness::fmt(gpu_params.maxThreadsPerSm, 0)});
    {
        std::string cfgs;
        for (std::size_t i = 0; i < gpu_params.shmemConfigs.size();
             ++i) {
            cfgs += (i ? " / " : "") +
                harness::fmt(gpu_params.shmemConfigs[i] / 1024.0, 0) +
                "KB";
        }
        t.addRow({"GPU", "Shared memory (per SM)",
                  cfgs + " (default " +
                      harness::fmt(gpu_params.shmemConfigs.front() /
                                       1024.0,
                                   0) +
                      "KB)"});
    }

    std::cout << "Table 2: simulation parameters used in the "
                 "experimental evaluation\n\n";
    bench::emitTable(
        t, args.hasFlag("csv"),
        bench::BenchOptions::jsonlPath(args, "table2_sim_params"));
    return 0;
}
