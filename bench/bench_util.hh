/**
 * @file
 * Shared helpers for the figure-regeneration benches: common CLI
 * options, Class 1/2 lookups, thread-safe progress reporting and
 * table emission.
 */

#ifndef GPUMP_BENCH_BENCH_UTIL_HH
#define GPUMP_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "harness/args.hh"
#include "harness/interrupt.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "sim/logging.hh"
#include "trace/parboil.hh"

namespace gpump {
namespace bench {

/** Options every figure bench accepts. */
struct BenchOptions
{
    /** Workload sizes (process counts), as in the paper. */
    std::vector<int> sizes{2, 4, 6, 8};
    /** Prioritized workloads per benchmark per size (Figures 5/6). */
    int perBench = 1;
    /** Uniform workloads per size (Figures 7/8).  The default is
     *  sized so the whole bench suite finishes in well under an hour
     *  on one core; raise it for tighter confidence intervals. */
    int workloads = 5;
    /** Executions each process must complete (Section 4.1: 3). */
    int replays = 3;
    std::uint64_t seed = 20140614; // ISCA 2014
    bool csv = false;
    /** Worker threads for the batch runner (--jobs=N; default 1). */
    int jobs = 1;
    /** Intra-run shard workers (--shards=N; default 1 = off): each
     *  run's independent isolated-baseline replays execute on this
     *  many workers concurrently with the run itself, with a
     *  deterministic merge — output is byte-identical for any value
     *  (see Runner::setRunShards). */
    int shards = 1;
    /** JSON-lines output path; empty = disabled.  Bare --jsonl picks
     *  results/<bench>.jsonl. */
    std::string jsonl;
    /** Forked worker processes (--workers=N; default 0 = in-process
     *  thread pool).  Results are merged in request order, so output
     *  is byte-identical to --jobs for any worker count; workers add
     *  crash isolation and requeue/retry (DESIGN.md §10). */
    int workers = 0;
    /** On-disk result cache directory (--cache-dir=PATH; empty =
     *  off).  Completed runs are persisted under their request
     *  fingerprint, so rerunning an interrupted sweep against the
     *  same directory resumes instead of recomputing. */
    std::string cacheDir;
    /** Per-request watchdog for worker processes, seconds
     *  (--timeout=S; 0 = off): a wedged worker is killed and its
     *  request requeued. */
    double timeoutSec = 0.0;

    /**
     * Parse from args: --quick shrinks everything for smoke runs;
     * --sizes/--per-bench/--workloads/--replays/--seed/--csv/--jobs/
     * --shards/--workers/--cache-dir/--timeout/--jsonl[=path]
     * override.  --jobs/--shards/--workers share one validator:
     * anything but a positive integer is fatal.  @p bench_name names
     * the default JSONL file.
     */
    static BenchOptions fromArgs(const harness::Args &args,
                                 const std::string &bench_name)
    {
        BenchOptions o;
        if (args.hasFlag("quick")) {
            o.sizes = {2, 4};
            o.workloads = 3;
            o.replays = 2;
        }
        o.sizes = args.flagIntList("sizes", o.sizes);
        o.perBench = static_cast<int>(
            args.flagInt("per-bench", o.perBench));
        o.workloads = static_cast<int>(
            args.flagInt("workloads", o.workloads));
        o.replays =
            static_cast<int>(args.flagInt("replays", o.replays));
        o.seed = static_cast<std::uint64_t>(
            args.flagInt("seed", static_cast<std::int64_t>(o.seed)));
        o.csv = args.hasFlag("csv");
        o.jobs = static_cast<int>(args.flagPositiveInt("jobs", o.jobs));
        o.shards =
            static_cast<int>(args.flagPositiveInt("shards", o.shards));
        o.workers = static_cast<int>(
            args.flagPositiveInt("workers", o.workers));
        o.cacheDir = args.flag("cache-dir", "");
        o.timeoutSec = args.flagDouble("timeout", o.timeoutSec);
        if (o.timeoutSec < 0.0)
            sim::fatal("flag --timeout expects a non-negative number "
                       "of seconds, got %g",
                       o.timeoutSec);
        o.jsonl = jsonlPath(args, bench_name);
        return o;
    }

    /** Apply the parallelism knobs (--jobs is passed at construction;
     *  --shards is a setter) and the multi-process backend options
     *  (--workers/--cache-dir/--timeout) to @p runner. */
    void configureRunner(harness::Runner &runner) const
    {
        runner.setRunShards(shards);
        harness::exec::ExecOptions ex;
        ex.workers = workers;
        ex.cacheDir = cacheDir;
        ex.requestTimeoutSec = timeoutSec;
        runner.setExec(ex);
    }

    static std::string jsonlPath(const harness::Args &args,
                                 const std::string &bench_name)
    {
        if (!args.hasFlag("jsonl"))
            return "";
        std::string p = args.flag("jsonl", "");
        if (p.empty() || p == "true")
            p = "results/" + bench_name + ".jsonl";
        return p;
    }
};

/**
 * Config for the figure-regeneration experiments.
 *
 * Defaults the thread-block duration variability to a lognormal
 * CV of 0.25 unless the caller overrides gpu.tb_time_cv.  The paper's
 * simulator replayed *measured* per-TB times, which vary; with a
 * deterministic replay (cv = 0) all blocks of a wave finish at the
 * same instant and draining an SM becomes unrealistically cheap,
 * hiding the context-switch mechanism's latency advantage that
 * Sections 4.2-4.3 analyse.
 */
inline sim::Config
figureConfig(const harness::Args &args)
{
    sim::Config cfg = args.config();
    if (!cfg.has("gpu.tb_time_cv"))
        cfg.set("gpu.tb_time_cv", 0.25);
    return cfg;
}

/** Class 1 (kernel length) of a benchmark, from Table 1. */
inline trace::DurationClass
class1Of(const std::string &bench)
{
    return trace::findBenchmark(bench).kernelClass;
}

/** Class 2 (application length) of a benchmark, from Table 1. */
inline trace::DurationClass
class2Of(const std::string &bench)
{
    return trace::findBenchmark(bench).appClass;
}

/** Group index helpers: LONG=0, MEDIUM=1, SHORT=2, AVERAGE=3. */
constexpr int numGroups = 4;
constexpr int groupAverage = 3;

inline int
groupIndex(trace::DurationClass c)
{
    switch (c) {
      case trace::DurationClass::Long: return 0;
      case trace::DurationClass::Medium: return 1;
      case trace::DurationClass::Short: return 2;
    }
    return groupAverage;
}

inline const char *
groupName(int idx)
{
    switch (idx) {
      case 0: return "LONG";
      case 1: return "MEDIUM";
      case 2: return "SHORT";
      default: return "AVERAGE";
    }
}

/**
 * Thread-safe, jobs-aware progress meter for Runner::setProgress.
 *
 * `done` comes from the Runner's atomic completion counter (runs
 * finish out of order under --jobs), and each update is a single
 * fprintf so concurrent lines never interleave.  stderr only: stdout
 * stays machine-clean.  Each line carries the finished run's
 * simulator throughput so perf regressions show up mid-campaign.
 */
inline harness::Runner::ProgressFn
progressMeter(std::string what)
{
    return [what = std::move(what)](std::size_t done, std::size_t total,
                                    const harness::RunRequest &req,
                                    const harness::RunResult &res) {
        // eventsPerSec is NaN when the run took no measurable wall
        // time; print 0 rather than "nan" in the human meter.
        double evps = res.eventsPerSec();
        if (!std::isfinite(evps))
            evps = 0.0;
        std::fprintf(stderr, "[%s] %zu/%zu done (%s) %.2fM ev/s\n",
                     what.c_str(), done, total, req.tag.c_str(),
                     evps / 1e6);
    };
}

/**
 * Run a batch with graceful interruption: installs the SIGINT/SIGTERM
 * handlers, and when the sweep is interrupted — dispatch stops,
 * in-flight runs finish, outputs end on record boundaries — reports
 * the partial progress on stderr and exits 128+signal, shell style.
 * Every bench main routes its Runner::run call through here.
 */
inline std::vector<harness::RunResult>
runAll(harness::Runner &runner,
       const std::vector<harness::RunRequest> &requests)
{
    harness::installInterruptHandlers();
    try {
        return runner.run(requests);
    } catch (const harness::InterruptedError &e) {
        std::fprintf(stderr, "interrupted: %s\n", e.what());
        std::exit(128 + e.signal());
    }
}

/** Print @p t as text or CSV, and to @p jsonl_path when non-empty. */
inline void
emitTable(const harness::AsciiTable &t, bool csv,
          const std::string &jsonl_path = "")
{
    if (csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    if (!jsonl_path.empty()) {
        harness::JsonlWriter w(jsonl_path);
        t.printJsonl(w.stream());
        std::fprintf(stderr, "wrote %s\n", jsonl_path.c_str());
    }
}

/** Mean of a vector; 0 for empty (group absent at this size). */
inline double
meanOrZero(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

} // namespace bench
} // namespace gpump

#endif // GPUMP_BENCH_BENCH_UTIL_HH
