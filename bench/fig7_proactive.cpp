/**
 * @file
 * Figure-7-style sweep of the memory-aware preemption schemes under
 * the contended-switch model (gmem.contended_switch): context save and
 * restore bytes travel as first-class transfer commands, so preemption
 * latency includes queueing behind workload copies.  Compares, against
 * the FCFS baseline:
 *   DSS-CS         plain save/restore preemption,
 *   DSS-Adaptive   per-SM drain-vs-switch selection,
 *   DSS-Proactive  save/restore with restore prefetch for the
 *                  reservation target (proactive_mem).
 *
 * Every scheme column runs with the contended model on; pass
 * gmem.contended_switch=0 to sweep the share model instead (the
 * bare key=value overrides win over the per-scheme default).
 *
 * Usage: fig7_proactive [--quick] [--workloads=N] [--replays=N]
 *                       [--seed=N] [--sizes=2,4,...] [--jobs=N]
 *                       [--csv] [--jsonl[=path]] [key=value ...]
 */

#include <iostream>
#include <map>
#include <vector>

#include "bench/bench_util.hh"
#include "harness/report.hh"
#include "harness/suite.hh"

using namespace gpump;
using namespace gpump::bench;

int
main(int argc, char **argv)
{
    harness::Args args(argc, argv);
    BenchOptions opt = BenchOptions::fromArgs(args, "fig7_proactive");

    sim::Config contended;
    contended.set("gmem.contended_switch", true);

    harness::Suite suite("fig7p");
    suite.sizes(opt.sizes)
        .uniform(opt.workloads, opt.seed)
        .minReplays(opt.replays)
        .scheme("FCFS", {"fcfs", "context_switch", "fcfs"}, contended)
        .scheme("DSS-CS", {"dss", "context_switch", "fcfs"}, contended)
        .scheme("DSS-Adaptive", {"dss", "adaptive", "fcfs"}, contended)
        .scheme("DSS-Proactive", {"dss", "proactive_mem", "fcfs"},
                contended);
    harness::Batch batch = suite.build();

    harness::Runner runner(figureConfig(args), opt.jobs);
    opt.configureRunner(runner);
    runner.setProgress(progressMeter("fig7p"));
    auto results = bench::runAll(runner, batch.requests);

    const std::vector<std::string> schemes = {"DSS-CS", "DSS-Adaptive",
                                              "DSS-Proactive"};
    const std::size_t nschemes = schemes.size();
    // ntt_impr[group][size][scheme], fair_impr[size][scheme],
    // stp_degr[size][scheme] — all relative to contended FCFS.
    std::map<int, std::map<int, std::vector<std::vector<double>>>>
        ntt_impr;
    std::map<int, std::vector<std::vector<double>>> fair_impr;
    std::map<int, std::vector<std::vector<double>>> stp_degr;

    for (std::size_t si = 0; si < batch.sizes.size(); ++si) {
        int size = batch.sizes[si];
        fair_impr[size].resize(nschemes);
        stp_degr[size].resize(nschemes);
        for (std::size_t pi = 0; pi < batch.numPlans(si); ++pi) {
            const auto &plan = batch.plansBySize[si][pi];
            const auto &base = results[batch.indexOf(si, pi, 0)];
            for (std::size_t s = 0; s < nschemes; ++s) {
                const auto &r = results[batch.indexOf(si, pi, s + 1)];
                fair_impr[size][s].push_back(r.metrics.fairness /
                                             base.metrics.fairness);
                stp_degr[size][s].push_back(base.metrics.stp /
                                            r.metrics.stp);
                for (std::size_t i = 0; i < plan.benchmarks.size();
                     ++i) {
                    double impr =
                        base.metrics.ntt[i] / r.metrics.ntt[i];
                    int grp =
                        groupIndex(class2Of(plan.benchmarks[i]));
                    for (int g : {grp, groupAverage}) {
                        auto &bucket = ntt_impr[g][size];
                        bucket.resize(nschemes);
                        bucket[s].push_back(impr);
                    }
                }
            }
        }
    }

    std::cout << "Memory-aware preemption under the contended-switch "
                 "model (vs. FCFS)\n\n";

    {
        harness::AsciiTable t({"Group", "Procs", "DSS-CS",
                               "DSS-Adaptive", "DSS-Proactive"});
        // Paper panel order: SHORT, MEDIUM, LONG, AVERAGE.
        for (int g : {2, 1, 0, groupAverage}) {
            for (int size : opt.sizes) {
                auto git = ntt_impr.find(g);
                if (git == ntt_impr.end() || !git->second.count(size))
                    continue;
                const auto &bucket = git->second.at(size);
                t.addRow({groupName(g), harness::fmt(size, 0),
                          harness::fmtTimes(meanOrZero(bucket[0])),
                          harness::fmtTimes(meanOrZero(bucket[1])),
                          harness::fmtTimes(meanOrZero(bucket[2]))});
            }
            t.addSeparator();
        }
        std::cout << "(a) Turnaround time improvement (groups = "
                     "Class 2 of each app):\n\n";
        emitTable(t, opt.csv);
    }

    auto emit_by_size =
        [&](const char *title,
            std::map<int, std::vector<std::vector<double>>> &data) {
            harness::AsciiTable t({"Procs", "DSS-CS", "DSS-Adaptive",
                                   "DSS-Proactive"});
            for (int size : opt.sizes) {
                t.addRow({harness::fmt(size, 0),
                          harness::fmtTimes(meanOrZero(data[size][0])),
                          harness::fmtTimes(meanOrZero(data[size][1])),
                          harness::fmtTimes(
                              meanOrZero(data[size][2]))});
            }
            std::cout << "\n" << title << "\n\n";
            emitTable(t, opt.csv);
        };

    emit_by_size("(b) System fairness improvement over FCFS:",
                 fair_impr);
    emit_by_size("(c) System throughput degradation over FCFS:",
                 stp_degr);
    if (!opt.jsonl.empty())
        harness::writeResultsJsonl(opt.jsonl, batch, results);

    std::cout << "\nReading: Proactive should close part of the gap "
                 "contention opens between\nCS and Drain-leaning "
                 "Adaptive — its restore prefetch overlaps the "
                 "incoming\nkernel's H2D fetch with the victim's save "
                 "instead of serialising them.\n";
    return 0;
}
