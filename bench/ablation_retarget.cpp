/**
 * @file
 * Ablation: reservation retargeting (Section 3.4).
 *
 * DSS allows the scheduler to change the kernel an SM is reserved
 * for while the preemption is still in flight ("This optimization
 * helps to cope with dynamic nature of the system and long latency
 * operations").  This bench runs the same DSS workloads with the
 * optimization on and off, for both mechanisms — draining's long
 * preemption latencies are where retargeting should matter.
 *
 * Usage: ablation_retarget [--workloads=N] [--replays=N] [--seed=N]
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "workload/generator.hh"

using namespace gpump;
using namespace gpump::bench;

int
main(int argc, char **argv)
{
    harness::Args args(argc, argv);
    BenchOptions opt = BenchOptions::fromArgs(args);
    int nprocs = 6;

    harness::AsciiTable t({"mechanism", "retarget", "mean ANTT",
                           "mean STP", "mean fairness",
                           "preemptions/workload"});

    for (const char *mech : {"context_switch", "draining"}) {
        for (bool retarget : {true, false}) {
            sim::Config cfg = args.config();
            cfg.set("dss.retarget", retarget);
            harness::Experiment exp(cfg);
            exp.setMinReplays(opt.replays);

            auto plans = workload::makeUniformPlans(
                nprocs, opt.workloads, opt.seed);
            double antt = 0, stp = 0, fair = 0, preempts = 0;
            int done = 0;
            for (const auto &plan : plans) {
                harness::Scheme scheme{"dss", mech, "fcfs"};
                auto r = exp.run(plan, scheme);
                antt += r.metrics.antt;
                stp += r.metrics.stp;
                fair += r.metrics.fairness;
                preempts += static_cast<double>(r.preemptions);
                progress("ablation_retarget", nprocs, ++done,
                         static_cast<int>(plans.size()));
            }
            double n = static_cast<double>(opt.workloads);
            t.addRow({mech, retarget ? "on" : "off",
                      harness::fmt(antt / n), harness::fmt(stp / n),
                      harness::fmt(fair / n),
                      harness::fmt(preempts / n, 0)});
        }
    }

    std::cout << "Ablation: DSS reservation retargeting (6-process "
                 "workloads)\n\n";
    t.print(std::cout);
    std::cout << "\nWithout retargeting, an SM drained for a kernel "
                 "that meanwhile finished or\nran out of work goes "
                 "through an extra idle/repartition round before it "
                 "is\nuseful again.\n";
    return 0;
}
