/**
 * @file
 * Ablation: reservation retargeting (Section 3.4).
 *
 * DSS allows the scheduler to change the kernel an SM is reserved
 * for while the preemption is still in flight ("This optimization
 * helps to cope with dynamic nature of the system and long latency
 * operations").  This bench runs the same DSS workloads with the
 * optimization on and off, for both mechanisms — draining's long
 * preemption latencies are where retargeting should matter.
 *
 * Usage: ablation_retarget [--workloads=N] [--replays=N] [--seed=N]
 *                          [--jobs=N] [--csv] [--jsonl[=path]]
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "harness/report.hh"
#include "harness/suite.hh"

using namespace gpump;
using namespace gpump::bench;

int
main(int argc, char **argv)
{
    harness::Args args(argc, argv);
    BenchOptions opt =
        BenchOptions::fromArgs(args, "ablation_retarget");
    int nprocs = 6;

    sim::Config on_cfg, off_cfg;
    on_cfg.set("dss.retarget", true);
    off_cfg.set("dss.retarget", false);

    harness::Suite suite("ablation_retarget");
    suite
        .fixedPlans(workload::makeUniformPlans(nprocs, opt.workloads,
                                               opt.seed))
        .minReplays(opt.replays)
        .scheme("cs/on", {"dss", "context_switch", "fcfs"}, on_cfg)
        .scheme("cs/off", {"dss", "context_switch", "fcfs"}, off_cfg)
        .scheme("drain/on", {"dss", "draining", "fcfs"}, on_cfg)
        .scheme("drain/off", {"dss", "draining", "fcfs"}, off_cfg);
    harness::Batch batch = suite.build();

    harness::Runner runner(args.config(), opt.jobs);
    opt.configureRunner(runner);
    runner.setProgress(progressMeter("ablation_retarget"));
    auto results = bench::runAll(runner, batch.requests);

    harness::AsciiTable t({"mechanism", "retarget", "mean ANTT",
                           "mean STP", "mean fairness",
                           "preemptions/workload"});

    for (std::size_t ci = 0; ci < batch.schemes.size(); ++ci) {
        double antt = 0, stp = 0, fair = 0, preempts = 0;
        for (std::size_t pi = 0; pi < batch.numPlans(0); ++pi) {
            const auto &r = results[batch.indexOf(0, pi, ci)];
            antt += r.metrics.antt;
            stp += r.metrics.stp;
            fair += r.metrics.fairness;
            preempts += static_cast<double>(r.sys.preemptions);
        }
        double n = static_cast<double>(batch.numPlans(0));
        const auto &spec = batch.schemes[ci];
        t.addRow({spec.scheme.mechanism,
                  spec.overrides.getBool("dss.retarget", true)
                      ? "on"
                      : "off",
                  harness::fmt(antt / n), harness::fmt(stp / n),
                  harness::fmt(fair / n),
                  harness::fmt(preempts / n, 0)});
    }

    std::cout << "Ablation: DSS reservation retargeting (6-process "
                 "workloads)\n\n";
    emitTable(t, opt.csv, opt.jsonl);
    std::cout << "\nWithout retargeting, an SM drained for a kernel "
                 "that meanwhile finished or\nran out of work goes "
                 "through an extra idle/repartition round before it "
                 "is\nuseful again.\n";
    return 0;
}
