/**
 * @file
 * Ablation: thread-block duration variability.
 *
 * The paper attributes part of the draining mechanism's throughput
 * loss to "the variable execution times of the thread blocks"
 * leaving draining SMs underutilized (Section 4.3).  The profile
 * replays are deterministic by default (cv = 0); this bench sweeps a
 * lognormal coefficient of variation over the per-TB durations and
 * compares the two mechanisms under DSS, showing that draining's
 * disadvantage grows with variability while context switch is
 * insensitive to it.
 *
 * Usage: ablation_variability [--workloads=N] [--replays=N] [--seed=N]
 *                             [--jobs=N] [--csv] [--jsonl[=path]]
 */

#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "harness/report.hh"
#include "harness/suite.hh"

using namespace gpump;
using namespace gpump::bench;

int
main(int argc, char **argv)
{
    harness::Args args(argc, argv);
    BenchOptions opt =
        BenchOptions::fromArgs(args, "ablation_variability");
    int nprocs = 4;
    const std::vector<double> cvs = {0.0, 0.2, 0.5};

    harness::Suite suite("ablation_cv");
    suite
        .fixedPlans(workload::makeUniformPlans(nprocs, opt.workloads,
                                               opt.seed))
        .minReplays(opt.replays);
    for (double cv : cvs) {
        sim::Config cfg;
        cfg.set("gpu.tb_time_cv", cv);
        std::string label = "cv=" + harness::fmt(cv, 1);
        suite.scheme(label + "/cs",
                     {"dss", "context_switch", "fcfs"}, cfg);
        suite.scheme(label + "/drain", {"dss", "draining", "fcfs"},
                     cfg);
    }
    harness::Batch batch = suite.build();

    harness::Runner runner(args.config(), opt.jobs);
    opt.configureRunner(runner);
    runner.setProgress(progressMeter("ablation_cv"));
    auto results = bench::runAll(runner, batch.requests);

    harness::AsciiTable t({"TB time CV", "ANTT CS", "ANTT Drain",
                           "STP CS", "STP Drain"});

    for (std::size_t v = 0; v < cvs.size(); ++v) {
        double antt_cs = 0, antt_drain = 0, stp_cs = 0, stp_drain = 0;
        for (std::size_t pi = 0; pi < batch.numPlans(0); ++pi) {
            const auto &cs = results[batch.indexOf(0, pi, 2 * v)];
            const auto &drain =
                results[batch.indexOf(0, pi, 2 * v + 1)];
            antt_cs += cs.metrics.antt;
            antt_drain += drain.metrics.antt;
            stp_cs += cs.metrics.stp;
            stp_drain += drain.metrics.stp;
        }
        double n = static_cast<double>(batch.numPlans(0));
        t.addRow({harness::fmt(cvs[v], 1), harness::fmt(antt_cs / n),
                  harness::fmt(antt_drain / n),
                  harness::fmt(stp_cs / n),
                  harness::fmt(stp_drain / n)});
    }

    std::cout << "Ablation: thread-block duration variability "
                 "(4-process DSS workloads)\n\n";
    emitTable(t, opt.csv, opt.jsonl);
    std::cout << "\nDraining must wait for the slowest resident block "
                 "while the SM empties out;\nthe longer the tail, the "
                 "longer the SM runs underutilized.  Context-switch\n"
                 "latency depends only on the context size, not on "
                 "the block durations.\n";
    return 0;
}
