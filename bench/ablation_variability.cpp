/**
 * @file
 * Ablation: thread-block duration variability.
 *
 * The paper attributes part of the draining mechanism's throughput
 * loss to "the variable execution times of the thread blocks"
 * leaving draining SMs underutilized (Section 4.3).  The profile
 * replays are deterministic by default (cv = 0); this bench sweeps a
 * lognormal coefficient of variation over the per-TB durations and
 * compares the two mechanisms under DSS, showing that draining's
 * disadvantage grows with variability while context switch is
 * insensitive to it.
 *
 * Usage: ablation_variability [--workloads=N] [--replays=N] [--seed=N]
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "workload/generator.hh"

using namespace gpump;
using namespace gpump::bench;

int
main(int argc, char **argv)
{
    harness::Args args(argc, argv);
    BenchOptions opt = BenchOptions::fromArgs(args);
    int nprocs = 4;

    harness::AsciiTable t({"TB time CV", "ANTT CS", "ANTT Drain",
                           "STP CS", "STP Drain"});

    for (double cv : {0.0, 0.2, 0.5}) {
        sim::Config cfg = args.config();
        cfg.set("gpu.tb_time_cv", cv);
        harness::Experiment exp(cfg);
        exp.setMinReplays(opt.replays);

        auto plans =
            workload::makeUniformPlans(nprocs, opt.workloads, opt.seed);
        double antt_cs = 0, antt_drain = 0, stp_cs = 0, stp_drain = 0;
        int done = 0;
        for (const auto &plan : plans) {
            auto cs =
                exp.run(plan, {"dss", "context_switch", "fcfs"});
            auto drain = exp.run(plan, {"dss", "draining", "fcfs"});
            antt_cs += cs.metrics.antt;
            antt_drain += drain.metrics.antt;
            stp_cs += cs.metrics.stp;
            stp_drain += drain.metrics.stp;
            progress("ablation_cv", nprocs, ++done,
                     static_cast<int>(plans.size()));
        }
        double n = static_cast<double>(opt.workloads);
        t.addRow({harness::fmt(cv, 1), harness::fmt(antt_cs / n),
                  harness::fmt(antt_drain / n),
                  harness::fmt(stp_cs / n),
                  harness::fmt(stp_drain / n)});
    }

    std::cout << "Ablation: thread-block duration variability "
                 "(4-process DSS workloads)\n\n";
    t.print(std::cout);
    std::cout << "\nDraining must wait for the slowest resident block "
                 "while the SM empties out;\nthe longer the tail, the "
                 "longer the SM runs underutilized.  Context-switch\n"
                 "latency depends only on the context size, not on "
                 "the block durations.\n";
    return 0;
}
