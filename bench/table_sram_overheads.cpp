/**
 * @file
 * Regenerates the hardware-overhead accounting of Section 3.3: the
 * scheduling framework's on-chip SRAM bill.  The paper states that
 * command buffers, KSRT, SMST and the active queue together take less
 * than 0.5 KB, and the PTBQs take 21 KB (context-switch mechanism
 * only).
 *
 * Usage: table_sram_overheads [--csv] [--jsonl[=path]] [key=value ...]
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "core/tables.hh"
#include "harness/args.hh"
#include "harness/report.hh"

using namespace gpump;

int
main(int argc, char **argv)
{
    harness::Args args(argc, argv);
    gpu::GpuParams params = gpu::GpuParams::fromConfig(args.config());
    core::FrameworkSramCosts c = core::frameworkSramCosts(params);

    harness::AsciiTable t({"Structure", "Entries", "Entry(bits)",
                           "Bytes"});
    int n = params.numSms;
    t.addRow({"Command buffers", harness::fmt(n, 0),
              harness::fmt(core::commandBufferEntryBits, 0),
              harness::fmt(static_cast<double>(c.commandBuffersBytes),
                           0)});
    t.addRow({"Active queue", harness::fmt(n, 0),
              harness::fmt(core::activeQueueEntryBits, 0),
              harness::fmt(static_cast<double>(c.activeQueueBytes), 0)});
    t.addRow({"KSRT", harness::fmt(n, 0),
              harness::fmt(core::ksrEntryBits, 0),
              harness::fmt(static_cast<double>(c.ksrtBytes), 0)});
    t.addRow({"SMST", harness::fmt(n, 0),
              harness::fmt(core::smstEntryBits, 0),
              harness::fmt(static_cast<double>(c.smstBytes), 0)});
    t.addSeparator();
    t.addRow({"PTBQ (ctx switch only)",
              harness::fmt(n, 0) + " x " +
                  harness::fmt(core::ptbqCapacityPerKernel(params), 0),
              harness::fmt(core::ptbqEntryBits, 0),
              harness::fmt(static_cast<double>(c.ptbqBytes), 0)});

    std::cout << "Scheduling framework SRAM overheads (Section 3.3)\n\n";
    bench::emitTable(
        t, args.hasFlag("csv"),
        bench::BenchOptions::jsonlPath(args, "table_sram_overheads"));
    std::cout << "\nCore structures total: " << c.coreBytes()
              << " B (paper: < 0.5 KB)\n";
    std::cout << "PTBQ total:            " << c.ptbqBytes << " B = "
              << harness::fmt(static_cast<double>(c.ptbqBytes) / 1024.0,
                              1)
              << " KB (paper: 21 KB)\n";
    std::cout << "Grand total with context-switch mechanism: "
              << c.totalBytes() << " B\n";
    return 0;
}
