#!/usr/bin/env bash
# Run every figure/table bench binary and collect the outputs under
# results/ (one .txt per bench). Bench programs are long; this is a
# manual tool, not part of the tier-1 gate.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT_DIR=${OUT_DIR:-results}

if [ ! -d "$BUILD_DIR/bench" ]; then
    echo "error: $BUILD_DIR/bench not found — build first (scripts/check.sh)" >&2
    exit 1
fi

JOBS=${JOBS:-$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)}
WORKERS=${WORKERS:-$JOBS}

# Each bench gets a scratch result cache under one temp root: a bench
# that dies mid-sweep (OOM kill, Ctrl-C) can be rerun by hand against
# the same directory to resume.  Strict mode makes unconsumed/stale
# entries — fingerprints that match no request, i.e. the cache and the
# sweep disagree — a loud failure instead of silent recomputation.
CACHE_ROOT=$(mktemp -d "${TMPDIR:-/tmp}/gpump-bench-cache.XXXXXX")
trap 'rm -rf "$CACHE_ROOT"' EXIT
export GPUMP_EXEC_CACHE_STRICT=1

mkdir -p "$OUT_DIR"
status=0
ran=0
for bin in "$BUILD_DIR"/bench/bench_*; do
    [ -x "$bin" ] || continue
    ran=$((ran + 1))
    name=$(basename "$bin")
    # The figure/table benches run their batches on the multi-process
    # executor (forked workers + resumable result cache; output is
    # byte-identical to --jobs for any worker count); micro_simcore is
    # Google Benchmark and rejects foreign flags.
    jobs_flag="--jobs=$JOBS --workers=$WORKERS --cache-dir=$CACHE_ROOT/$name"
    extra_flags=""
    case "$name" in
        *micro*) jobs_flag="" ;;
        # The serving sweep also lands its per-run records (per-class
        # p99/miss/goodput vs load) as JSONL for replotting.
        *serve*) extra_flags="--jsonl=$OUT_DIR/$name.jsonl" ;;
    esac
    echo "== $name"
    if "$bin" $jobs_flag $extra_flags "$@" > "$OUT_DIR/$name.txt" 2>&1; then
        echo "   -> $OUT_DIR/$name.txt"
    else
        echo "   FAILED (see $OUT_DIR/$name.txt)" >&2
        status=1
    fi
done
if [ "$ran" -eq 0 ]; then
    echo "error: no bench binaries in $BUILD_DIR/bench — build first" >&2
    exit 1
fi
exit $status
