#!/usr/bin/env python3
"""Determinism lint for the gpump source tree (DESIGN.md §12).

The simulator's headline guarantee is byte-identical output across
--jobs x --shards x --workers (DESIGN.md §4/§7/§10).  The goldens and
`cmp` checks in CI catch a violation *after* it changed the numbers;
this lint rejects the constructs that cause violations at review time,
before any golden moves.

Rules (each has a stable ID; see --list-rules):

  wall-clock        No wall-clock / time-of-day reads anywhere in src/:
                    time(), gettimeofday(), clock(), localtime(),
                    gmtime(), std::chrono::system_clock and
                    high_resolution_clock (which may alias it).
                    std::chrono::steady_clock is allowed — it is
                    monotonic and only feeds the wallSeconds telemetry
                    that is explicitly outside the determinism contract.

  raw-rand          No rand()/srand()/rand_r()/drand48()/random_device
                    outside sim::Rng (src/sim/random.*).  All
                    randomness must flow through the seeded,
                    fork-deterministic sim::Rng stream.

  unordered-output  No unordered_map/unordered_set in any file that
                    feeds report/wire/JSONL output (harness/report,
                    harness/exec/wire, harness/runner, harness/suite,
                    harness/experiment, metrics/, serve/slo).  This is
                    deliberately stronger than banning just iteration:
                    a hash container declared in an output path is one
                    refactor away from being iterated, and iteration
                    order depends on hash seeding and pointer values.

  float-format      No %e/%f/%g-style double formatting in
                    harness/exec/wire.* — the worker/coordinator wire
                    codec must round-trip doubles bit-exactly, so only
                    hexfloat (%a/%A) conversions are permitted there.

  ptr-sort          No std::sort/std::stable_sort over containers of
                    raw pointers without an explicit comparator:
                    default operator< on pointers sorts by address,
                    which differs run to run under ASLR.

Suppressions: append `// gpump-lint: allow(<rule-id>)` to the flagged
line.  Each pragma covers exactly one line and one rule (repeat the
pragma for several rules).  An unused pragma is itself an error, so
stale allowlist entries cannot accumulate.

Exit status: 0 = clean, 1 = findings, 2 = usage/IO error.
"""

import argparse
import re
import sys
from pathlib import Path

# ---------------------------------------------------------------------------
# Rule definitions
# ---------------------------------------------------------------------------

# Files whose bytes (or whose in-memory ordering) reach report/wire/
# JSONL output.  Relative to the repository root, forward slashes.
OUTPUT_PATH_PATTERNS = (
    r"src/harness/report\.(hh|cc)$",
    r"src/harness/exec/wire\.(hh|cc)$",
    r"src/harness/runner\.(hh|cc)$",
    r"src/harness/suite\.(hh|cc)$",
    r"src/harness/experiment\.(hh|cc)$",
    r"src/metrics/.*\.(hh|cc)$",
    r"src/serve/slo\.(hh|cc)$",
)

# Files allowed to touch raw randomness: the sim::Rng implementation.
RNG_PATH_PATTERNS = (r"src/sim/random\.(hh|cc)$",)

# Files held to the hexfloat-only contract.
WIRE_PATH_PATTERNS = (r"src/harness/exec/wire\.(hh|cc)$",)

WALL_CLOCK_RE = re.compile(
    r"(?:\b(?:time|gettimeofday|clock|localtime|localtime_r|gmtime|"
    r"gmtime_r|ftime|clock_gettime)\s*\()"
    r"|(?:std\s*::\s*chrono\s*::\s*system_clock)"
    r"|(?:std\s*::\s*chrono\s*::\s*high_resolution_clock)"
    r"|(?:\bsystem_clock\s*::)"
    r"|(?:\bhigh_resolution_clock\s*::)"
)

RAW_RAND_RE = re.compile(
    r"(?:\b(?:rand|srand|rand_r|drand48|lrand48|mrand48)\s*\()"
    r"|(?:\brandom_device\b)"
)

UNORDERED_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")

# A printf conversion ending in a decimal floating conversion letter.
# %a/%A (hexfloat) and %% are fine; flags/width/precision/length are
# consumed so "%-12.6f" and "%.17g" are caught.
FLOAT_FORMAT_RE = re.compile(r"%[-+ #0]*[\d*]*(?:\.[\d*]+)?(?:[hlLqjzt]|ll|hh)?[efgEFG]")

SORT_CALL_RE = re.compile(r"\bstd\s*::\s*(?:stable_)?sort\s*\(")

# Container-of-raw-pointer declarations: `std::vector<Foo *> names`,
# `std::deque<const Bar*> &q` (reference parameters included) etc.
# Captures the variable name.
PTR_CONTAINER_DECL_RE = re.compile(
    r"\b(?:vector|deque)\s*<[^<>]*\*\s*>\s*&?\s*(\w+)"
)

PRAGMA_RE = re.compile(r"//\s*gpump-lint:\s*allow\(([a-z-]+)\)")

ALL_RULES = {
    "wall-clock": "wall-clock/time-of-day reads (steady_clock is allowed)",
    "raw-rand": "raw randomness outside sim::Rng",
    "unordered-output": "unordered containers in report/wire/JSONL paths",
    "float-format": "decimal double formatting in the wire codec "
                    "(hexfloat only)",
    "ptr-sort": "std::sort over raw pointers without a comparator",
}


def matches_any(rel: str, patterns) -> bool:
    return any(re.search(p, rel) for p in patterns)


# ---------------------------------------------------------------------------
# Comment / string stripping
# ---------------------------------------------------------------------------

def strip_code(text: str):
    """Blank out comments and string/char literals, preserving line
    structure, so rule regexes only see code.  Returns the stripped
    text; pragmas are extracted from the raw text separately."""
    out = []
    i, n = 0, len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR = range(5)
    state = NORMAL
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = STRING
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = CHAR
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == LINE_COMMENT:
            if c == "\n":
                state = NORMAL
                out.append("\n")
            else:
                out.append(" ")
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = NORMAL
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in (STRING, CHAR):
            quote = '"' if state == STRING else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = NORMAL
                out.append(quote)
            elif c == "\n":  # unterminated; keep line structure
                state = NORMAL
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def strip_strings_keep_comments_blanked(text: str) -> str:
    # Convenience wrapper used for the wire float-format rule, where
    # the *format strings themselves* carry the violation: strip only
    # comments, keep string literal contents.
    out = []
    i, n = 0, len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING = range(4)
    state = NORMAL
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = STRING
            out.append(c)
        elif state == LINE_COMMENT:
            out.append("\n" if c == "\n" else " ")
            if c == "\n":
                state = NORMAL
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = NORMAL
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # STRING
            if c == "\\" and nxt:
                out.append(c + nxt)
                i += 2
                continue
            if c == '"' or c == "\n":
                state = NORMAL
            out.append(c)
        i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Per-file linting
# ---------------------------------------------------------------------------

class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def find_statement_end(lines, start):
    """Index (inclusive) of the line where the statement opened on
    `start` closes (first `;` at or after it)."""
    for j in range(start, min(start + 20, len(lines))):
        if ";" in lines[j]:
            return j
    return start


def lint_file(path: Path, rel: str):
    try:
        raw = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)

    raw_lines = raw.splitlines()
    code = strip_code(raw)
    code_lines = code.splitlines()
    with_strings = strip_strings_keep_comments_blanked(raw)
    with_strings_lines = with_strings.splitlines()

    # pragmas[line_no] = set of allowed rule ids on that raw line
    pragmas = {}
    for ln, line in enumerate(raw_lines, 1):
        for m in PRAGMA_RE.finditer(line):
            pragmas.setdefault(ln, set()).add(m.group(1))
    used_pragmas = set()

    findings = []

    def flag(ln, rule, message):
        if rule in pragmas.get(ln, set()):
            used_pragmas.add((ln, rule))
            return
        findings.append(Finding(rel, ln, rule, message))

    in_output_path = matches_any(rel, OUTPUT_PATH_PATTERNS)
    in_rng_path = matches_any(rel, RNG_PATH_PATTERNS)
    in_wire_path = matches_any(rel, WIRE_PATH_PATTERNS)

    for ln, line in enumerate(code_lines, 1):
        m = WALL_CLOCK_RE.search(line)
        if m:
            flag(ln, "wall-clock",
                 f"wall-clock read {m.group(0).strip()!r}: determinism "
                 "forbids time-of-day; use sim time or steady_clock "
                 "telemetry")
        if not in_rng_path:
            m = RAW_RAND_RE.search(line)
            if m:
                flag(ln, "raw-rand",
                     f"raw randomness {m.group(0).strip()!r}: draw from "
                     "the seeded sim::Rng stream instead")
        if in_output_path:
            m = UNORDERED_RE.search(line)
            if m:
                flag(ln, "unordered-output",
                     f"{m.group(0)} in an output-feeding file: hash "
                     "iteration order is not deterministic; use "
                     "std::map/std::set or a sorted vector")

    if in_wire_path:
        for ln, line in enumerate(with_strings_lines, 1):
            m = FLOAT_FORMAT_RE.search(line)
            if m:
                flag(ln, "float-format",
                     f"decimal double conversion {m.group(0)!r} in the "
                     "wire codec: doubles must round-trip bit-exactly; "
                     "use hexfloat %a")

    # ptr-sort: two passes — collect pointer-container names, then
    # examine each std::sort statement that references one.
    ptr_containers = set()
    for line in code_lines:
        for m in PTR_CONTAINER_DECL_RE.finditer(line):
            ptr_containers.add(m.group(1))
    if ptr_containers:
        for ln0, line in enumerate(code_lines):
            if not SORT_CALL_RE.search(line):
                continue
            end = find_statement_end(code_lines, ln0)
            stmt = " ".join(code_lines[ln0:end + 1])
            referenced = [v for v in ptr_containers
                          if re.search(rf"\b{re.escape(v)}\b", stmt)]
            if not referenced:
                continue
            # A comparator shows up as a lambda or a named callable
            # after the range arguments; the reliable tell for the
            # two-argument (comparator-less) form is exactly one
            # top-level comma inside the call parens.
            call = stmt[stmt.index("sort"):]
            depth = 0
            commas = 0
            for ch in call[call.index("("):]:
                if ch in "([{<":
                    depth += 1
                elif ch in ")]}>":
                    depth -= 1
                    if depth == 0:
                        break
                elif ch == "," and depth == 1:
                    commas += 1
            if commas <= 1:
                flag(ln0 + 1, "ptr-sort",
                     f"std::sort over pointer container "
                     f"{referenced[0]!r} without a comparator sorts by "
                     "address (ASLR-dependent); pass an explicit key")

    # Stale pragmas are findings too: an allow() that suppresses
    # nothing hides future violations on that line.
    for ln, rules in sorted(pragmas.items()):
        for rule in sorted(rules):
            if rule not in ALL_RULES:
                findings.append(Finding(
                    rel, ln, "bad-pragma",
                    f"unknown rule {rule!r} in gpump-lint pragma"))
            elif (ln, rule) not in used_pragmas:
                findings.append(Finding(
                    rel, ln, "stale-pragma",
                    f"allow({rule}) suppresses nothing on this line; "
                    "remove it"))

    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def collect_sources(roots):
    files = []
    for root in roots:
        p = Path(root)
        if p.is_file():
            files.append(p)
        elif p.is_dir():
            files.extend(sorted(p.rglob("*.hh")))
            files.extend(sorted(p.rglob("*.cc")))
            files.extend(sorted(p.rglob("*.cpp")))
            files.extend(sorted(p.rglob("*.h")))
        else:
            print(f"error: no such file or directory: {root}",
                  file=sys.stderr)
            sys.exit(2)
    return sorted(set(files))


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="gpump determinism lint (see DESIGN.md §12)")
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories to lint (default: src/)")
    ap.add_argument("--repo-root", default=None,
                    help="repository root for path classification "
                         "(default: parent of this script's directory)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule table and exit")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, desc in ALL_RULES.items():
            print(f"{rule:18} {desc}")
        return 0

    repo_root = Path(args.repo_root) if args.repo_root \
        else Path(__file__).resolve().parent.parent
    roots = args.paths or [repo_root / "src"]

    all_findings = []
    files = collect_sources(roots)
    for f in files:
        try:
            rel = f.resolve().relative_to(repo_root.resolve()).as_posix()
        except ValueError:
            rel = f.as_posix()
        all_findings.extend(lint_file(f, rel))

    for finding in all_findings:
        print(finding)
    if all_findings:
        print(f"lint_determinism: {len(all_findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"lint_determinism: {len(files)} file(s) clean",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
