#!/usr/bin/env bash
# Benchmark the simulator core and record the numbers.
#
# Builds the Release configuration (the perf numbers are meaningless
# under Debug/sanitizers), runs the Google-Benchmark micro suite's
# event-core, workload-layer and end-to-end cases, and writes the JSON
# results to BENCH_simcore.json at the repo root so the perf
# trajectory is tracked in-tree from PR to PR.  Compare against the
# committed baseline before and after touching sim/, gpu/, core/ or
# workload/ hot paths.
#
# The emitted file is validated as *strict* JSON (python's default
# json module accepts NaN/Infinity; we reject them) so a non-finite
# number can never land in the committed baseline unnoticed.
#
# Usage: scripts/bench_simcore.sh [output.json]
#   BUILD_DIR  build directory (default: build-bench, Release)
#   FILTER     benchmark_filter regex (default: the simcore set)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-bench}
OUT=${1:-BENCH_simcore.json}
FILTER=${FILTER:-'BM_EventQueueScheduleRun|BM_EventQueueCancelHalf|BM_IsolatedRun|BM_MultiprogrammedDssRun|BM_ProcessReplay|BM_WorkloadIssueLoop|BM_PredictorUpdate'}
JOBS=${JOBS:-$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)}

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
    -DGPUMP_BUILD_TESTS=OFF -DGPUMP_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_micro_simcore \
    2>/dev/null || {
    echo "error: bench_micro_simcore did not build — is Google" \
        "Benchmark (libbenchmark-dev) installed?" >&2
    exit 1
}

# The workload-layer benchmarks must exist in the binary: a silently
# missing BM_ProcessReplay (renamed, gated out, filtered away) would
# leave the committed baseline stale without anyone noticing.
for bench in BM_ProcessReplay BM_WorkloadIssueLoop \
    BM_MultiprogrammedDssRun BM_ContendedSwitch \
    BM_PredictorUpdate; do
    "$BUILD_DIR/bench/bench_micro_simcore" --benchmark_list_tests \
        | grep -qx "$bench" || {
        echo "error: $bench missing from the gbench listing" >&2
        exit 1
    }
done

"$BUILD_DIR/bench/bench_micro_simcore" \
    --benchmark_filter="$FILTER" \
    --benchmark_repetitions="${REPS:-3}" \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json > "$OUT"

# Validate strict JSON (catches the bare-nan class of bug forever),
# then print a human-readable digest next to the raw file.
python3 - "$OUT" << 'EOF'
import json, sys

def reject_nonfinite(tok):
    raise ValueError(f"non-strict JSON constant {tok!r} in output")

text = open(sys.argv[1]).read()
data = json.loads(text, parse_constant=reject_nonfinite)
print(f"{sys.argv[1]}: strict JSON ok ({len(text)} bytes)")

ctx = data.get("context", {})
print(f"host: {ctx.get('host_name', '?')}  "
      f"cpus: {ctx.get('num_cpus', '?')}  date: {ctx.get('date', '?')}")
for b in data.get("benchmarks", []):
    if not b["name"].endswith("_median"):
        continue
    name = b["name"].removesuffix("_median")
    ips = b.get("items_per_second")
    rate = f"{ips / 1e6:8.2f}M items/s" if ips else f"{b['real_time']:10.0f} {b['time_unit']}"
    print(f"  {name:40s} {rate}")
EOF
echo "wrote $OUT"
