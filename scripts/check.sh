#!/usr/bin/env bash
# Tier-1 verify: configure, build everything, run the labelled suite.
# Used locally and by .github/workflows/ci.yml — keep them in sync.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)}

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" "$@"
