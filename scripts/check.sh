#!/usr/bin/env bash
# Tier-1 verify: configure, build everything, run the labelled suite.
# Used locally and by .github/workflows/ci.yml — keep them in sync.
#
# Modes (mutually exclusive, must be the first argument):
#   (none)   build + ctest; extra arguments are forwarded to ctest
#   --lint   run the determinism lint over src/ (scripts/lint_determinism.py)
#   --tidy   run the clang-tidy gate (scripts/tidy.sh)
set -euo pipefail

cd "$(dirname "$0")/.."

case "${1:-}" in
--lint)
    exec python3 scripts/lint_determinism.py
    ;;
--tidy)
    exec scripts/tidy.sh
    ;;
esac

BUILD_DIR=${BUILD_DIR:-build}
JOBS=${JOBS:-$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)}

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" "$@"
