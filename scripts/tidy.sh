#!/usr/bin/env bash
# clang-tidy driver: configure an export-compile-commands build and
# run the curated .clang-tidy check set over every src/ translation
# unit.  Exit nonzero on any finding (WarningsAsErrors: '*').
#
# The container toolchain may not ship clang-tidy; by default a
# missing tool is a loud SKIP (exit 0) so local tier-1 verifies stay
# runnable anywhere.  CI sets GPUMP_TIDY_REQUIRED=1 to turn a missing
# tool into a failure.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${TIDY_BUILD_DIR:-build-tidy}
JOBS=${JOBS:-$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)}

find_clang_tidy() {
    if [[ -n "${CLANG_TIDY:-}" ]]; then
        command -v "$CLANG_TIDY" && return 0
    fi
    local cand
    for cand in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
        clang-tidy-16 clang-tidy-15 clang-tidy-14; do
        if command -v "$cand" > /dev/null 2>&1; then
            command -v "$cand"
            return 0
        fi
    done
    return 1
}

if ! TIDY=$(find_clang_tidy); then
    if [[ "${GPUMP_TIDY_REQUIRED:-0}" == "1" ]]; then
        echo "tidy.sh: clang-tidy not found and GPUMP_TIDY_REQUIRED=1" >&2
        exit 2
    fi
    echo "tidy.sh: SKIPPED — clang-tidy not found on PATH" \
        "(set CLANG_TIDY=... or install clang-tidy; CI runs this gate)" >&2
    exit 0
fi
echo "tidy.sh: using $TIDY" >&2

# Tests/bench/examples are off: the gate covers the library sources,
# and skipping gtest/gbench keeps the compile database free of
# third-party headers.
cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DGPUMP_BUILD_TESTS=OFF \
    -DGPUMP_BUILD_BENCH=OFF \
    -DGPUMP_BUILD_EXAMPLES=OFF > /dev/null

mapfile -t SOURCES < <(find src -name '*.cc' | sort)
echo "tidy.sh: checking ${#SOURCES[@]} translation units" >&2

# run-clang-tidy parallelizes when present; otherwise xargs does.
if RUNNER=$(command -v run-clang-tidy "run-clang-tidy-${TIDY##*-}" \
    2>/dev/null | head -1) && [[ -n "$RUNNER" ]]; then
    "$RUNNER" -clang-tidy-binary "$TIDY" -p "$BUILD_DIR" -j "$JOBS" \
        -quiet "${SOURCES[@]/#/$PWD/}"
else
    printf '%s\n' "${SOURCES[@]}" \
        | xargs -P "$JOBS" -I{} "$TIDY" -p "$BUILD_DIR" --quiet {}
fi
echo "tidy.sh: clean" >&2
