/**
 * @file
 * Arrival processes for open-loop serving scenarios (DESIGN.md §9).
 *
 * Production GPU sharing is open-loop: requests arrive continuously
 * whether or not the device keeps up.  This module turns an
 * ArrivalSpec into a deterministic request timeline — the absolute
 * simulated times at which a tenant's requests are released.  Three
 * processes cover the serving literature's standard shapes:
 *
 *  - Poisson: memoryless arrivals at a fixed mean rate, the classic
 *    open-system assumption;
 *  - Bursty (on-off MMPP): exponentially-dwelling ON periods emitting
 *    Poisson arrivals separated by silent OFF periods — the
 *    diurnal-burst pattern that makes tail latency interesting;
 *  - Trace: an explicit timeline (inline or from a file), for
 *    replaying measured production arrival logs.
 *
 * Determinism contract: a timeline is a pure function of (spec, RNG
 * seed, horizon, cap).  Stochastic draws ride sim::Rng's batched
 * fill* APIs, which are bit-identical to sequential single-sample
 * calls (sim/random.hh), so generation is chunk-size-invariant and
 * regenerating from the same seed reproduces the timeline bit for
 * bit — the same contract workload::Generator's plans rely on.
 */

#ifndef GPUMP_SERVE_ARRIVAL_HH
#define GPUMP_SERVE_ARRIVAL_HH

#include <cstddef>
#include <string>
#include <vector>

#include "sim/random.hh"
#include "sim/types.hh"

namespace gpump {
namespace serve {

/** How one tenant's requests arrive. */
struct ArrivalSpec
{
    enum class Kind
    {
        Poisson, ///< exponential inter-arrival gaps at ratePerSec
        Bursty,  ///< on-off process: Poisson bursts, silent gaps
        Trace,   ///< explicit timeline (traceUs or traceFile)
    };

    Kind kind = Kind::Poisson;

    /** Mean arrival rate (requests/second).  Poisson: the overall
     *  rate; Bursty: the rate *inside* ON periods. */
    double ratePerSec = 1000.0;

    /** Bursty only: mean ON-period (burst) length, microseconds. */
    double burstMeanUs = 1000.0;
    /** Bursty only: mean OFF-period (silence) length, microseconds. */
    double idleMeanUs = 1000.0;

    /** Trace only: arrival offsets in microseconds, nondecreasing.
     *  Takes precedence over traceFile when non-empty. */
    std::vector<double> traceUs;
    /** Trace only: file of arrival offsets (one decimal number of
     *  microseconds per line; '#' comments and blank lines skipped). */
    std::string traceFile;

    /** Raises fatal() on out-of-range parameters. */
    void validate() const;
};

/**
 * Generate the deterministic request timeline of @p spec: absolute
 * arrival times in [0, horizon), nondecreasing, at most @p
 * max_requests entries (a cap, not a target — the horizon is the
 * usual bound).  Stochastic kinds consume draws from @p rng; the
 * Trace kind consumes none.
 */
std::vector<sim::SimTime> makeTimeline(const ArrivalSpec &spec,
                                       sim::Rng &rng,
                                       sim::SimTime horizon,
                                       std::size_t max_requests = 1u
                                           << 20);

/**
 * Read an arrival-trace file: one arrival offset (microseconds) per
 * line, nondecreasing and non-negative; '#' comments and blank lines
 * are skipped.  Raises fatal() on unreadable files or malformed
 * content.
 */
std::vector<double> readArrivalTrace(const std::string &path);

/** Write @p arrivals_us as an arrival-trace file readArrivalTrace
 *  round-trips exactly (full double precision). */
void writeArrivalTrace(const std::string &path,
                       const std::vector<double> &arrivals_us);

} // namespace serve
} // namespace gpump

#endif // GPUMP_SERVE_ARRIVAL_HH
