#include "serve/scenario.hh"

#include <cmath>

#include "sim/logging.hh"
#include "trace/parboil.hh"

namespace gpump {
namespace serve {

void
ScenarioSpec::validate() const
{
    if (tenants.empty())
        sim::fatal("scenario '%s' has no tenants", name.c_str());
    if (!(horizonUs > 0.0) || !std::isfinite(horizonUs))
        sim::fatal("scenario '%s' needs a positive horizon, got %f us",
                   name.c_str(), horizonUs);
    if (windowUs < 0.0 || !std::isfinite(windowUs))
        sim::fatal("scenario '%s': bad fairness window %f us",
                   name.c_str(), windowUs);
    for (const TenantSpec &t : tenants) {
        trace::findBenchmark(t.benchmark); // fatal on unknown names
        if (t.maxBacklog < 0)
            sim::fatal("tenant '%s': negative admission backlog",
                       t.benchmark.c_str());
        if (!std::isfinite(t.deadlineUs))
            sim::fatal("tenant '%s': non-finite deadline",
                       t.benchmark.c_str());
        t.arrivals.validate();
    }
}

std::string
ScenarioSpec::fingerprint() const
{
    // Hexfloat ("%a") renders every double exactly, so two scenarios
    // fingerprint equal iff every parameter is bit-equal.
    auto hex = [](double v) { return sim::strformat("%a", v); };
    std::string out = "scenario{name=" + name;
    out += ";horizon=" + hex(horizonUs);
    out += ";max_req=" + std::to_string(maxRequestsPerTenant);
    out += ";window=" + hex(windowUs);
    out += ";seed=" + std::to_string(seed);
    for (const TenantSpec &t : tenants) {
        out += ";tenant{" + t.name + "|" + t.benchmark + "|" +
            t.className + "|" + std::to_string(t.priority) + "|" +
            hex(t.deadlineUs) + "|" + std::to_string(t.maxBacklog);
        const ArrivalSpec &a = t.arrivals;
        out += "|arr=" +
            std::to_string(static_cast<int>(a.kind)) + "," +
            hex(a.ratePerSec) + "," + hex(a.burstMeanUs) + "," +
            hex(a.idleMeanUs);
        if (!a.traceUs.empty()) {
            out += ",trace:";
            for (std::size_t i = 0; i < a.traceUs.size(); ++i)
                out += (i ? " " : "") + hex(a.traceUs[i]);
        } else if (!a.traceFile.empty()) {
            out += ",file:" + a.traceFile;
        }
        out += "}";
    }
    out += "}";
    return out;
}

std::vector<std::vector<sim::SimTime>>
makeTimelines(const ScenarioSpec &spec)
{
    spec.validate();
    const sim::SimTime horizon = sim::microseconds(spec.horizonUs);
    // One fork per tenant in declaration order: tenant i's timeline
    // is pinned by (seed, i, arrivals) alone.
    sim::Rng root(spec.seed);
    std::vector<std::vector<sim::SimTime>> timelines;
    timelines.reserve(spec.tenants.size());
    for (const TenantSpec &t : spec.tenants) {
        sim::Rng child = root.fork();
        timelines.push_back(makeTimeline(t.arrivals, child, horizon,
                                         spec.maxRequestsPerTenant));
    }
    return timelines;
}

workload::SystemSpec
toSystemSpec(const ScenarioSpec &spec, const std::string &policy,
             const std::string &mechanism,
             const std::string &transferPolicy)
{
    workload::SystemSpec sys;
    sys.arrivalSchedules = makeTimelines(spec); // validates the spec
    for (const TenantSpec &t : spec.tenants) {
        sys.benchmarks.push_back(t.benchmark);
        sys.priorities.push_back(t.priority);
        sys.admissionBacklogs.push_back(t.maxBacklog);
    }
    sys.policy = policy;
    sys.mechanism = mechanism;
    sys.transferPolicy = transferPolicy;
    sys.seed = spec.seed;
    return sys;
}

workload::SystemResult
runScenario(const ScenarioSpec &spec, const std::string &policy,
            const std::string &mechanism,
            const std::string &transferPolicy,
            const sim::Config &overrides, sim::SimTime limit)
{
    workload::System system(
        toSystemSpec(spec, policy, mechanism, transferPolicy),
        overrides);
    return system.run(limit);
}

} // namespace serve
} // namespace gpump
