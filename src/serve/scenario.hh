/**
 * @file
 * Multi-tenant cloud-serving scenarios (DESIGN.md §9).
 *
 * A scenario models one GPU shared by many *request streams*: each
 * tenant holds a GPU context, a kernel-DAG template (a benchmark
 * trace), a priority/deadline class and an arrival process.  Every
 * request is one open-loop execution of the tenant's template,
 * released at its arrival time, queued FIFO behind the tenant's
 * in-flight request, and optionally dropped by admission control
 * under overload — workload::Process's arrival-schedule mode.
 *
 * The mapping onto workload::System is deliberately thin: a scenario
 * compiles to a SystemSpec whose arrival schedules were generated up
 * front (deterministically, from the scenario seed alone — the same
 * timelines under every scheme, so scheme comparisons see identical
 * offered load), and the run ends when every stream has been served.
 */

#ifndef GPUMP_SERVE_SCENARIO_HH
#define GPUMP_SERVE_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/arrival.hh"
#include "workload/system.hh"

namespace gpump {
namespace serve {

/** One tenant: a request stream with a class and a template. */
struct TenantSpec
{
    /** Tenant label; defaults to the benchmark name when empty. */
    std::string name;
    /** Kernel-DAG template: a trace::parboilSuite benchmark name. */
    std::string benchmark;
    /** Priority/deadline class the metrics aggregate by (e.g.
     *  "latency", "batch"). */
    std::string className = "default";
    /** Scheduler priority (higher wins under priority policies). */
    int priority = 0;
    /** Per-request deadline relative to arrival, microseconds;
     *  <= 0 = no deadline (misses only from admission drops). */
    double deadlineUs = 0.0;
    /** How this tenant's requests arrive. */
    ArrivalSpec arrivals;
    /** Admission bound: an arrival finding this many requests queued
     *  is dropped; 0 = unbounded backlog. */
    int maxBacklog = 0;
};

/** One multi-tenant serving scenario. */
struct ScenarioSpec
{
    std::string name = "serve";
    std::vector<TenantSpec> tenants;
    /** Arrival-generation window: requests arrive in [0, horizonUs).
     *  The simulation itself runs until the last admitted request
     *  completes. */
    double horizonUs = 100e3;
    /** Per-tenant request cap (a safety bound on timeline length). */
    std::size_t maxRequestsPerTenant = 1u << 20;
    /** Fairness window width (sliding-window fairness, serve/slo.hh);
     *  0 = horizonUs / 10. */
    double windowUs = 0.0;
    /** Seed for the arrival timelines AND the simulation run. */
    std::uint64_t seed = 1;

    /** Raises fatal() on an empty or inconsistent scenario. */
    void validate() const;

    /** Canonical one-line rendering of the full scenario identity
     *  (tenants, arrival processes, horizon, seed; no newlines).
     *  Equal scenarios have equal fingerprints — the serving arm of
     *  the multi-process executor's work-unit key (harness/exec).
     *  Trace-file arrivals key on the file *path*, not its contents;
     *  callers who rewrite trace files between sweeps must use a
     *  fresh cache directory. */
    std::string fingerprint() const;
};

/**
 * Generate every tenant's request timeline, deterministically.
 *
 * A root RNG is seeded from spec.seed and forked once per tenant in
 * declaration order, so a tenant's timeline depends only on (seed,
 * tenant index, its ArrivalSpec) — adding a scheme or reordering a
 * sweep never perturbs the offered load.
 */
std::vector<std::vector<sim::SimTime>>
makeTimelines(const ScenarioSpec &spec);

/**
 * Compile the scenario into a runnable workload::SystemSpec under the
 * given scheme: tenant benchmarks/priorities, the generated arrival
 * schedules and admission bounds, and the scenario seed.
 */
workload::SystemSpec toSystemSpec(const ScenarioSpec &spec,
                                  const std::string &policy,
                                  const std::string &mechanism,
                                  const std::string &transferPolicy);

/**
 * Convenience: compile and run the scenario in one call.
 *
 * @param overrides config overrides applied to the simulation.
 * @param limit     safety horizon forwarded to System::run.
 */
workload::SystemResult runScenario(const ScenarioSpec &spec,
                                   const std::string &policy,
                                   const std::string &mechanism,
                                   const std::string &transferPolicy,
                                   const sim::Config &overrides,
                                   sim::SimTime limit = sim::maxTime);

} // namespace serve
} // namespace gpump

#endif // GPUMP_SERVE_SCENARIO_HH
