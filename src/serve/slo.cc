#include "serve/slo.hh"

#include <cmath>
#include <limits>
#include <map>

#include "sim/logging.hh"

namespace gpump {
namespace serve {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/**
 * Worst-window cross-class fairness (file doc of serve/slo.hh).
 *
 * Completions are bucketed into fixed windows by completion time
 * (tail completions past the horizon land in later windows — work
 * admitted before the horizon still counts).  A window qualifies when
 * at least two classes complete in it; its fairness is the min/max
 * ratio of the classes' mean normalized latencies.  Returns the
 * minimum over qualifying windows, NaN when none qualifies.
 */
double
worstWindowFairness(const ScenarioSpec &spec,
                    const workload::SystemResult &result,
                    const std::vector<double> &isolated_us,
                    const std::vector<std::size_t> &class_of_tenant,
                    std::size_t num_classes, double window_us)
{
    if (isolated_us.empty() || num_classes < 2)
        return kNaN;
    // (window, class) -> (sum of normalized latencies, count).
    std::map<std::int64_t, std::vector<std::pair<double, std::int64_t>>>
        windows;
    for (std::size_t i = 0; i < spec.tenants.size(); ++i) {
        double iso = isolated_us[i];
        if (!(iso > 0.0) || !std::isfinite(iso))
            return kNaN; // degenerate baseline: fairness undefined
        for (const workload::RunRecord &r : result.runs[i]) {
            double end_us = sim::toMicroseconds(r.end);
            auto w = static_cast<std::int64_t>(end_us / window_us);
            auto &cells = windows[w];
            if (cells.empty())
                cells.resize(num_classes, {0.0, 0});
            auto &cell = cells[class_of_tenant[i]];
            cell.first += sim::toMicroseconds(r.latency()) / iso;
            cell.second += 1;
        }
    }
    double worst = kNaN;
    for (const auto &entry : windows) {
        double lo = 0.0, hi = 0.0;
        int present = 0;
        for (const auto &cell : entry.second) {
            if (cell.second == 0)
                continue;
            double mean =
                cell.first / static_cast<double>(cell.second);
            if (present == 0) {
                lo = hi = mean;
            } else {
                lo = mean < lo ? mean : lo;
                hi = mean > hi ? mean : hi;
            }
            ++present;
        }
        if (present < 2)
            continue;
        double f = hi > 0.0 ? lo / hi : 1.0;
        if (std::isnan(worst) || f < worst)
            worst = f;
    }
    return worst;
}

} // namespace

int
ServingMetrics::classIndex(const std::string &class_name) const
{
    for (std::size_t i = 0; i < classes.size(); ++i) {
        if (classes[i].name == class_name)
            return static_cast<int>(i);
    }
    return -1;
}

ServingMetrics
computeServingMetrics(const ScenarioSpec &spec,
                      const workload::SystemResult &result,
                      const std::vector<double> &isolated_us)
{
    GPUMP_ASSERT(result.runs.size() == spec.tenants.size() &&
                     result.droppedRequests.size() ==
                         spec.tenants.size(),
                 "scenario/result tenant count mismatch (%zu vs %zu)",
                 spec.tenants.size(), result.runs.size());
    GPUMP_ASSERT(isolated_us.empty() ||
                     isolated_us.size() == spec.tenants.size(),
                 "isolated baselines/tenants size mismatch (%zu vs "
                 "%zu)",
                 isolated_us.size(), spec.tenants.size());

    ServingMetrics out;
    out.windowUs =
        spec.windowUs > 0.0 ? spec.windowUs : spec.horizonUs / 10.0;

    // Classes in first-appearance order across the tenants.
    std::vector<std::size_t> class_of_tenant(spec.tenants.size());
    for (std::size_t i = 0; i < spec.tenants.size(); ++i) {
        int idx = out.classIndex(spec.tenants[i].className);
        if (idx < 0) {
            idx = static_cast<int>(out.classes.size());
            ClassMetrics c;
            c.name = spec.tenants[i].className;
            out.classes.push_back(std::move(c));
        }
        class_of_tenant[i] = static_cast<std::size_t>(idx);
    }

    // Per-class tallies over every tenant's request records.  A run's
    // requests all resolve by the end of the run (completed or
    // dropped), so requests = completed + dropped.
    std::vector<std::vector<double>> latencies(out.classes.size());
    for (std::size_t i = 0; i < spec.tenants.size(); ++i) {
        const TenantSpec &t = spec.tenants[i];
        ClassMetrics &c = out.classes[class_of_tenant[i]];
        c.dropped += result.droppedRequests[i];
        for (const workload::RunRecord &r : result.runs[i]) {
            double lat_us = sim::toMicroseconds(r.latency());
            latencies[class_of_tenant[i]].push_back(lat_us);
            ++c.completed;
            if (t.deadlineUs > 0.0 && lat_us > t.deadlineUs)
                ++c.deadlineMisses;
        }
    }

    const double horizon_sec = spec.horizonUs / 1e6;
    for (std::size_t ci = 0; ci < out.classes.size(); ++ci) {
        ClassMetrics &c = out.classes[ci];
        c.requests = c.completed + c.dropped;
        c.latency = metrics::summarizeLatencies(std::move(latencies[ci]));
        c.missRate = c.requests > 0
            ? static_cast<double>(c.deadlineMisses + c.dropped) /
                static_cast<double>(c.requests)
            : kNaN;
        c.throughputPerSec =
            static_cast<double>(c.completed) / horizon_sec;
        c.goodputPerSec =
            static_cast<double>(c.completed - c.deadlineMisses) /
            horizon_sec;
    }

    out.windowFairness = worstWindowFairness(
        spec, result, isolated_us, class_of_tenant, out.classes.size(),
        out.windowUs);
    return out;
}

} // namespace serve
} // namespace gpump
