#include "serve/arrival.hh"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace gpump {
namespace serve {

namespace {

/** Gap samples per fillExponential call.  The chunk size is a pure
 *  amortization knob: fill* is bit-identical to sequential draws, so
 *  the generated timeline does not depend on it. */
constexpr std::size_t kGapChunk = 64;

std::vector<sim::SimTime>
poissonTimeline(double rate_per_sec, sim::Rng &rng, sim::SimTime horizon,
                std::size_t max_requests)
{
    const double mean_gap_us = 1e6 / rate_per_sec;
    std::vector<sim::SimTime> out;
    double gaps[kGapChunk];
    double t_us = 0.0;
    const double horizon_us = sim::toMicroseconds(horizon);
    for (;;) {
        rng.fillExponential(gaps, kGapChunk, mean_gap_us);
        for (std::size_t i = 0; i < kGapChunk; ++i) {
            t_us += gaps[i];
            if (t_us >= horizon_us || out.size() >= max_requests)
                return out;
            out.push_back(sim::microseconds(t_us));
        }
    }
}

std::vector<sim::SimTime>
burstyTimeline(const ArrivalSpec &spec, sim::Rng &rng,
               sim::SimTime horizon, std::size_t max_requests)
{
    // On-off MMPP: the process alternates exponentially-dwelling ON
    // periods (Poisson arrivals at ratePerSec) and silent OFF
    // periods, starting ON at t=0.  Draw order per cycle is fixed —
    // ON length, then the gap draws inside it (one past the period
    // end), then the OFF length — so the timeline is a pure function
    // of the RNG state.
    const double mean_gap_us = 1e6 / spec.ratePerSec;
    const double horizon_us = sim::toMicroseconds(horizon);
    std::vector<sim::SimTime> out;
    double t_us = 0.0;
    while (t_us < horizon_us && out.size() < max_requests) {
        const double on_end_us =
            t_us + rng.exponential(spec.burstMeanUs);
        double arr_us = t_us;
        for (;;) {
            arr_us += rng.exponential(mean_gap_us);
            if (arr_us >= on_end_us || arr_us >= horizon_us ||
                out.size() >= max_requests)
                break;
            out.push_back(sim::microseconds(arr_us));
        }
        t_us = on_end_us + rng.exponential(spec.idleMeanUs);
    }
    return out;
}

std::vector<sim::SimTime>
traceTimeline(const ArrivalSpec &spec, sim::SimTime horizon,
              std::size_t max_requests)
{
    const std::vector<double> &us = spec.traceUs.empty()
        ? readArrivalTrace(spec.traceFile)
        : spec.traceUs;
    std::vector<sim::SimTime> out;
    out.reserve(us.size());
    double prev = 0.0;
    for (double u : us) {
        if (!std::isfinite(u) || u < 0.0)
            sim::fatal("arrival trace: bad offset %f us", u);
        if (u < prev)
            sim::fatal("arrival trace: offsets must be nondecreasing "
                       "(%f after %f)",
                       u, prev);
        prev = u;
        sim::SimTime t = sim::microseconds(u);
        if (t >= horizon || out.size() >= max_requests)
            break;
        out.push_back(t);
    }
    return out;
}

} // namespace

void
ArrivalSpec::validate() const
{
    switch (kind) {
      case Kind::Poisson:
        if (!(ratePerSec > 0.0) || !std::isfinite(ratePerSec))
            sim::fatal("Poisson arrivals need ratePerSec > 0, got %f",
                       ratePerSec);
        break;
      case Kind::Bursty:
        if (!(ratePerSec > 0.0) || !std::isfinite(ratePerSec))
            sim::fatal("bursty arrivals need ratePerSec > 0, got %f",
                       ratePerSec);
        if (!(burstMeanUs > 0.0) || !(idleMeanUs > 0.0))
            sim::fatal("bursty arrivals need positive burst/idle "
                       "means, got %f/%f",
                       burstMeanUs, idleMeanUs);
        break;
      case Kind::Trace:
        if (traceUs.empty() && traceFile.empty())
            sim::fatal("trace arrivals need traceUs or traceFile");
        break;
    }
}

std::vector<sim::SimTime>
makeTimeline(const ArrivalSpec &spec, sim::Rng &rng, sim::SimTime horizon,
             std::size_t max_requests)
{
    spec.validate();
    if (horizon <= 0)
        sim::fatal("arrival timeline needs a positive horizon");
    switch (spec.kind) {
      case ArrivalSpec::Kind::Poisson:
        return poissonTimeline(spec.ratePerSec, rng, horizon,
                               max_requests);
      case ArrivalSpec::Kind::Bursty:
        return burstyTimeline(spec, rng, horizon, max_requests);
      case ArrivalSpec::Kind::Trace:
        return traceTimeline(spec, horizon, max_requests);
    }
    sim::fatal("unreachable arrival kind");
}

std::vector<double>
readArrivalTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        sim::fatal("cannot read arrival trace '%s'", path.c_str());
    std::vector<double> out;
    std::string line;
    int lineno = 0;
    double prev = 0.0;
    while (std::getline(in, line)) {
        ++lineno;
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        double us;
        if (!(ls >> us)) {
            std::string rest;
            if (ls.clear(), ls >> rest)
                sim::fatal("arrival trace %s:%d: malformed line",
                           path.c_str(), lineno);
            continue; // blank or comment-only line
        }
        std::string trailing;
        if (ls >> trailing)
            sim::fatal("arrival trace %s:%d: trailing tokens",
                       path.c_str(), lineno);
        if (!std::isfinite(us) || us < 0.0)
            sim::fatal("arrival trace %s:%d: bad offset", path.c_str(),
                       lineno);
        if (us < prev)
            sim::fatal("arrival trace %s:%d: offsets must be "
                       "nondecreasing",
                       path.c_str(), lineno);
        prev = us;
        out.push_back(us);
    }
    return out;
}

void
writeArrivalTrace(const std::string &path,
                  const std::vector<double> &arrivals_us)
{
    std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
    }
    std::ofstream out(path);
    if (!out)
        sim::fatal("cannot write arrival trace '%s'", path.c_str());
    out << "# arrival offsets, microseconds, one per line\n";
    char buf[64];
    for (double us : arrivals_us) {
        // %.17g round-trips every finite double exactly.
        std::snprintf(buf, sizeof buf, "%.17g\n", us);
        out << buf;
    }
    if (!out)
        sim::fatal("failed writing arrival trace '%s'", path.c_str());
}

} // namespace serve
} // namespace gpump
