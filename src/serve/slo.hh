/**
 * @file
 * Per-class serving metrics: tail latency, deadline misses, goodput
 * and sliding-window fairness (DESIGN.md §9).
 *
 * These are the numbers production GPU serving is judged by, computed
 * from a scenario run's request records and reported *alongside* the
 * paper's ANTT/STP (which the harness still derives from the same
 * run):
 *
 *  - latency percentiles: exact order statistics over each class's
 *    completed-request response times (arrival -> completion,
 *    backlog wait included), via metrics/slo.hh — p50/p99/p999 with
 *    pinned small-sample semantics, never histograms;
 *  - deadline-miss rate: (completed late + dropped) / requests for
 *    classes with a deadline; drops always count as misses;
 *  - goodput: deadline-meeting completions per second of scenario
 *    horizon (all completions for deadline-less classes) — the
 *    overload metric: offered load beyond capacity shows up as the
 *    gap between throughput and goodput;
 *  - sliding-window fairness: the run is cut into fixed windows; in
 *    each, every class's mean *normalized* latency (response time
 *    over its tenants' isolated execution time — the serving analogue
 *    of the paper's NTT) is compared, and the window's fairness is
 *    min/max across classes, exactly the Eyerman-Eeckhout fairness
 *    shape.  The reported value is the worst window — a scheduler
 *    that starves a class for one window cannot hide behind a good
 *    whole-run average.
 */

#ifndef GPUMP_SERVE_SLO_HH
#define GPUMP_SERVE_SLO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/slo.hh"
#include "serve/scenario.hh"

namespace gpump {
namespace serve {

/** Serving metrics of one priority/deadline class. */
struct ClassMetrics
{
    std::string name;
    /** Released requests (timeline entries) across the class. */
    std::int64_t requests = 0;
    /** Requests that completed execution. */
    std::int64_t completed = 0;
    /** Requests rejected by admission control. */
    std::int64_t dropped = 0;
    /** Completed requests that finished after their deadline. */
    std::int64_t deadlineMisses = 0;

    /** Response-time (latency) summary over completed requests,
     *  microseconds.  All-NaN when the class completed nothing. */
    metrics::LatencySummary latency;

    /** (deadlineMisses + dropped) / requests; NaN when the class
     *  released no requests. */
    double missRate = 0.0;
    /** Completions per second of scenario horizon. */
    double throughputPerSec = 0.0;
    /** Deadline-meeting completions per second of scenario horizon
     *  (== throughputPerSec for deadline-less classes). */
    double goodputPerSec = 0.0;
};

/** The full serving metric set of one scenario run. */
struct ServingMetrics
{
    /** Per-class metrics, in first-appearance order of the classes
     *  across the scenario's tenants. */
    std::vector<ClassMetrics> classes;
    /** Worst-window cross-class fairness in [0, 1] (see file doc);
     *  NaN when fewer than two classes ever complete in the same
     *  window, or when no isolated baselines were supplied. */
    double windowFairness = 0.0;
    /** The window width used, microseconds. */
    double windowUs = 0.0;

    /** Index of @p class_name in classes; -1 when absent. */
    int classIndex(const std::string &class_name) const;
};

/**
 * Compute the serving metric set of one scenario run.
 *
 * @param spec        the scenario that produced @p result.
 * @param result      the run (per-tenant records and drop counts).
 * @param isolated_us per-tenant isolated execution times for the
 *                    normalized window fairness; empty = fairness
 *                    reported as NaN.
 */
ServingMetrics
computeServingMetrics(const ScenarioSpec &spec,
                      const workload::SystemResult &result,
                      const std::vector<double> &isolated_us = {});

} // namespace serve
} // namespace gpump

#endif // GPUMP_SERVE_SLO_HH
