/**
 * @file
 * System-level multiprogramming metrics (Section 4.1), calculated as
 * suggested by Eyerman & Eeckhout, "System-level performance metrics
 * for multiprogram workloads", IEEE Micro 2008:
 *
 *  - NTT_i  = T_multi_i / T_iso_i        (per-process slowdown, >= 1
 *             for work-conserving schedulers);
 *  - ANTT   = arithmetic mean of NTT_i   (lower is better);
 *  - STP    = sum of T_iso_i / T_multi_i (higher is better, <= n);
 *  - Fairness = min_i NTT_i / max_i NTT_i in [0, 1] (the minimum over
 *             process pairs of their relative progress; 1 = perfectly
 *             equal slowdowns, 0 = starvation).
 */

#ifndef GPUMP_METRICS_METRICS_HH
#define GPUMP_METRICS_METRICS_HH

#include <vector>

namespace gpump {
namespace metrics {

/** The Eyerman-Eeckhout metric set for one workload run. */
struct SystemMetrics
{
    /** Per-process normalized turnaround times. */
    std::vector<double> ntt;
    /** Average normalized turnaround time. */
    double antt = 0.0;
    /** System throughput. */
    double stp = 0.0;
    /** Fairness in [0, 1]. */
    double fairness = 0.0;
};

/**
 * Compute the metric set.
 *
 * @param isolated_us per-process isolated execution times.
 * @param multi_us    per-process mean turnaround times inside the
 *                    multiprogrammed workload.
 *
 * Raises fatal() on size mismatch or an empty workload.  A
 * non-positive or non-finite time (a degenerate plan or baseline)
 * does NOT abort: the affected NTT entry — and therefore ANTT, STP
 * and fairness — becomes quiet NaN, which the report writers
 * serialize as JSON null (see harness/report.hh).
 */
SystemMetrics computeMetrics(const std::vector<double> &isolated_us,
                             const std::vector<double> &multi_us);

/** Arithmetic mean of @p values. @pre not empty */
double mean(const std::vector<double> &values);

/** Geometric mean of @p values. @pre all positive */
double geomean(const std::vector<double> &values);

} // namespace metrics
} // namespace gpump

#endif // GPUMP_METRICS_METRICS_HH
