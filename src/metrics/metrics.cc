#include "metrics/metrics.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace gpump {
namespace metrics {

SystemMetrics
computeMetrics(const std::vector<double> &isolated_us,
               const std::vector<double> &multi_us)
{
    if (isolated_us.size() != multi_us.size())
        sim::fatal("metrics: %zu isolated times vs %zu workload times",
                   isolated_us.size(), multi_us.size());
    if (isolated_us.empty())
        sim::fatal("metrics: empty workload");

    SystemMetrics m;
    m.ntt.reserve(isolated_us.size());
    for (std::size_t i = 0; i < isolated_us.size(); ++i) {
        if (isolated_us[i] <= 0.0 || multi_us[i] <= 0.0)
            sim::fatal("metrics: non-positive execution time for "
                       "process %zu", i);
        m.ntt.push_back(multi_us[i] / isolated_us[i]);
        m.stp += isolated_us[i] / multi_us[i];
    }
    m.antt = mean(m.ntt);

    double lo = *std::min_element(m.ntt.begin(), m.ntt.end());
    double hi = *std::max_element(m.ntt.begin(), m.ntt.end());
    m.fairness = hi > 0.0 ? lo / hi : 0.0;
    return m;
}

double
mean(const std::vector<double> &values)
{
    GPUMP_ASSERT(!values.empty(), "mean of nothing");
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geomean(const std::vector<double> &values)
{
    GPUMP_ASSERT(!values.empty(), "geomean of nothing");
    double log_sum = 0.0;
    for (double v : values) {
        GPUMP_ASSERT(v > 0.0, "geomean of non-positive value");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace metrics
} // namespace gpump
