#include "metrics/metrics.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/logging.hh"

namespace gpump {
namespace metrics {

SystemMetrics
computeMetrics(const std::vector<double> &isolated_us,
               const std::vector<double> &multi_us)
{
    if (isolated_us.size() != multi_us.size())
        sim::fatal("metrics: %zu isolated times vs %zu workload times",
                   isolated_us.size(), multi_us.size());
    if (isolated_us.empty())
        sim::fatal("metrics: empty workload");

    // Degenerate inputs — a zero/non-finite isolated baseline (an
    // empty or degenerate plan) or turnaround — must not abort a
    // whole batch over one broken cell.  The affected ratios become
    // quiet NaN and propagate into ANTT/STP/fairness; the report
    // writers serialize every non-finite double as JSON null, so the
    // output stays valid and the breakage stays visible.
    constexpr double nan = std::numeric_limits<double>::quiet_NaN();

    SystemMetrics m;
    m.ntt.reserve(isolated_us.size());
    bool degenerate = false;
    for (std::size_t i = 0; i < isolated_us.size(); ++i) {
        double iso = isolated_us[i];
        double mul = multi_us[i];
        if (iso > 0.0 && mul > 0.0 && std::isfinite(iso) &&
            std::isfinite(mul)) {
            m.ntt.push_back(mul / iso);
            m.stp += iso / mul;
        } else {
            m.ntt.push_back(nan);
            m.stp = nan;
            degenerate = true;
        }
    }
    m.antt = mean(m.ntt);

    if (degenerate) {
        m.fairness = nan;
        return m;
    }
    double lo = *std::min_element(m.ntt.begin(), m.ntt.end());
    double hi = *std::max_element(m.ntt.begin(), m.ntt.end());
    m.fairness = hi > 0.0 ? lo / hi : 0.0;
    return m;
}

double
mean(const std::vector<double> &values)
{
    GPUMP_ASSERT(!values.empty(), "mean of nothing");
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geomean(const std::vector<double> &values)
{
    GPUMP_ASSERT(!values.empty(), "geomean of nothing");
    double log_sum = 0.0;
    for (double v : values) {
        GPUMP_ASSERT(v > 0.0, "geomean of non-positive value");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace metrics
} // namespace gpump
