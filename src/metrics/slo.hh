/**
 * @file
 * Tail-latency statistics for serving workloads (DESIGN.md §9).
 *
 * Percentiles are computed as *exact order statistics* over the full
 * sample — never from histograms, whose bucket error is unpinned —
 * with the nearest-rank definition:
 *
 *     P(q) = x_(ceil(q * n))        (1-based rank into the sorted
 *                                    sample, clamped to [1, n])
 *
 * The definition is total on every sample size, which pins the edge
 * cases the serving metrics depend on:
 *  - n = 0: no order statistics exist — every percentile is quiet
 *    NaN, which the JSONL writers serialize as null (the PR 5
 *    non-finite contract, harness/report.hh);
 *  - n = 1: every percentile is the single sample;
 *  - small n: P(0.99) with n < 100 is the maximum (ceil rounds up to
 *    rank n), P(0.999) likewise for n < 1000 — a p99 over a tiny
 *    sample honestly degrades to the worst case rather than
 *    interpolating data that is not there.
 */

#ifndef GPUMP_METRICS_SLO_HH
#define GPUMP_METRICS_SLO_HH

#include <cstdint>
#include <vector>

namespace gpump {
namespace metrics {

/**
 * Nearest-rank percentile of an ascending-sorted sample.
 *
 * @param sorted ascending sample (not checked; sort it).
 * @param q      quantile in [0, 1]; q <= 0 gives the minimum and
 *               q >= 1 the maximum.
 * @return quiet NaN for an empty sample.
 */
double percentileSorted(const std::vector<double> &sorted, double q);

/** Exact-order-statistic latency summary of one sample. */
struct LatencySummary
{
    std::int64_t n = 0;
    /** All quiet NaN when n == 0 (JSON null in reports). */
    double mean = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
    double max = 0.0;
};

/** Summarize @p samples (copied and sorted internally). */
LatencySummary summarizeLatencies(std::vector<double> samples);

} // namespace metrics
} // namespace gpump

#endif // GPUMP_METRICS_SLO_HH
