#include "metrics/slo.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/logging.hh"

namespace gpump {
namespace metrics {

double
percentileSorted(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return std::numeric_limits<double>::quiet_NaN();
    GPUMP_ASSERT(std::isfinite(q), "non-finite quantile");
    const std::size_t n = sorted.size();
    // Nearest rank: ceil(q * n), clamped to [1, n].
    double r = std::ceil(q * static_cast<double>(n));
    std::size_t rank = r < 1.0 ? 1
        : r > static_cast<double>(n)
        ? n
        : static_cast<std::size_t>(r);
    return sorted[rank - 1];
}

LatencySummary
summarizeLatencies(std::vector<double> samples)
{
    LatencySummary s;
    s.n = static_cast<std::int64_t>(samples.size());
    if (samples.empty()) {
        const double nan = std::numeric_limits<double>::quiet_NaN();
        s.mean = s.p50 = s.p99 = s.p999 = s.max = nan;
        return s;
    }
    std::sort(samples.begin(), samples.end());
    double sum = 0.0;
    for (double v : samples)
        sum += v;
    s.mean = sum / static_cast<double>(samples.size());
    s.p50 = percentileSorted(samples, 0.50);
    s.p99 = percentileSorted(samples, 0.99);
    s.p999 = percentileSorted(samples, 0.999);
    s.max = samples.back();
    return s;
}

} // namespace metrics
} // namespace gpump
