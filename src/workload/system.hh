/**
 * @file
 * System: one fully assembled simulated machine.
 *
 * Builds the evaluation platform of Section 4.1 — a multicore CPU
 * attached to a discrete GK110-like GPU over PCIe — around a workload
 * of processes, a scheduling policy and a preemption mechanism, and
 * runs it until every process has completed the required number of
 * executions (Section 4.1's replay methodology) — or, when the spec
 * carries arrival schedules, until every open-loop request stream has
 * been served (the serve/ layer's cloud-serving model, DESIGN.md §9).
 */

#ifndef GPUMP_WORKLOAD_SYSTEM_HH
#define GPUMP_WORKLOAD_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/framework.hh"
#include "core/policy.hh"
#include "core/preemption.hh"
#include "gpu/dispatcher.hh"
#include "gpu/gpu_config.hh"
#include "gpu/gpu_context.hh"
#include "gpu/stream.hh"
#include "gpu/transfer_engine.hh"
#include "memory/gpu_memory.hh"
#include "memory/page_table.hh"
#include "memory/pcie.hh"
#include "memory/residency.hh"
#include "sim/simulation.hh"
#include "trace/app_model.hh"
#include "workload/host_cpu.hh"
#include "workload/process.hh"

namespace gpump {
namespace workload {

/** Everything needed to instantiate one simulation run. */
struct SystemSpec
{
    /** Benchmark names, one per process (see trace::parboilSuite). */
    std::vector<std::string> benchmarks;
    /** Custom application specs, one per process.  When non-empty it
     *  replaces `benchmarks`; the pointed-to specs must outlive the
     *  System.  Lets applications not in the built-in suite (user
     *  workloads, synthetic kernels) run through the same machinery. */
    std::vector<const trace::BenchmarkSpec *> customSpecs;
    /** Per-process priorities; empty = all zero.  Higher wins. */
    std::vector<int> priorities;
    /** Kernel scheduling policy: any core::policyRegistry() name
     *  (run a bench with --list-schemes for the live list). */
    std::string policy = "fcfs";
    /** Preemption mechanism: any core::mechanismRegistry() name. */
    std::string mechanism = "context_switch";
    /** Transfer engine policy: "fcfs" or "priority". */
    std::string transferPolicy = "fcfs";
    /** Root RNG seed. */
    std::uint64_t seed = 1;
    /** Executions each process must complete before the run ends
     *  (closed-loop §4.1 replay; ignored under arrival schedules). */
    int minReplays = 3;

    /**
     * Open-loop request streams (the serve/ layer's model): when
     * non-empty, one schedule per process switches the whole system
     * to open loop — each process executes one run per arrival time
     * (Process::setArrivalSchedule) and the run ends when every
     * process has handled its entire schedule, not after minReplays.
     * Schedules are absolute nondecreasing times; an empty inner
     * vector is a tenant with no requests.
     */
    std::vector<std::vector<sim::SimTime>> arrivalSchedules;
    /** Per-process admission backlog bound for open-loop streams:
     *  an arrival finding this many requests queued is dropped.
     *  Empty = unbounded everywhere; 0 entries = unbounded. */
    std::vector<int> admissionBacklogs;
};

/** Outcome of one run. */
struct SystemResult
{
    /** Per-process completed-execution records. */
    std::vector<std::vector<RunRecord>> runs;
    /** Per-process mean turnaround (us) over completed executions. */
    std::vector<double> meanTurnaroundUs;
    /** Per-process mean response time (arrival to completion, us);
     *  equals meanTurnaroundUs for closed-loop runs. */
    std::vector<double> meanLatencyUs;
    /** Per-process requests rejected by admission control (always 0
     *  for closed-loop runs). */
    std::vector<std::int64_t> droppedRequests;
    /** Simulated time when the stop condition was met. */
    sim::SimTime endTime = 0;
    /** Events executed (simulator effort). */
    std::uint64_t eventsExecuted = 0;
    /** Engine counters for overhead analyses. */
    std::uint64_t kernelsCompleted = 0;
    std::uint64_t preemptions = 0;
    double contextBytesSaved = 0.0;
    /** Deepest PTBQ seen (context-switch mechanism sizing). */
    double maxPtbqDepth = 0.0;
};

/** One assembled machine + workload. */
class System
{
  public:
    /**
     * @param spec      workload and scheme description.
     * @param overrides config overrides applied to every component.
     */
    explicit System(const SystemSpec &spec,
                    const sim::Config &overrides = sim::Config());

    sim::Simulation &sim() { return *sim_; }
    core::SchedulingFramework &framework() { return *framework_; }
    gpu::TransferEngine &transferEngine() { return *transferEngine_; }
    /** Device-memory residency (swap accounting for tests/analyses). */
    memory::ResidencyManager &residency() { return *residency_; }
    HostCpu &hostCpu() { return *hostCpu_; }
    const gpu::GpuParams &gpuParams() const { return gpuParams_; }
    /** The command pool all processes draw from (observability for
     *  tests of the allocation-free replay path). */
    gpu::CommandPool &commandPool() { return cmdPool_; }

    int numProcesses() const
    {
        return static_cast<int>(processes_.size());
    }
    Process &process(int i)
    {
        return *processes_[static_cast<std::size_t>(i)];
    }

    /**
     * Run until every process completed spec.minReplays executions.
     *
     * @param limit safety horizon; exceeding it raises fatal() (it
     *        means a livelocked schedule, e.g. draining a persistent
     *        kernel).
     */
    SystemResult run(sim::SimTime limit = sim::maxTime);

  private:
    SystemSpec spec_;
    /** Recycles command allocations across replays.  Declared before
     *  every component that can hold a CommandPtr (engines, framework,
     *  streams), so it is destroyed last — the pool must outlive its
     *  commands (CommandPool lifetime contract). */
    gpu::CommandPool cmdPool_;
    std::unique_ptr<sim::Simulation> sim_;
    gpu::GpuParams gpuParams_;
    std::unique_ptr<memory::GpuMemory> gmem_;
    std::unique_ptr<memory::FrameAllocator> frames_;
    std::unique_ptr<memory::PcieBus> pcie_;
    std::unique_ptr<gpu::TransferEngine> transferEngine_;
    std::unique_ptr<gpu::Dispatcher> dispatcher_;
    std::unique_ptr<core::SchedulingFramework> framework_;
    /** Declared after framework_: the manager's callbacks point into
     *  the framework and must be torn down first. */
    std::unique_ptr<memory::ResidencyManager> residency_;
    std::unique_ptr<HostCpu> hostCpu_;
    std::vector<std::unique_ptr<gpu::GpuContext>> contexts_;
    std::vector<std::unique_ptr<gpu::Stream>> streams_;
    std::vector<std::unique_ptr<Process>> processes_;
    int stillRunning_ = 0;
    bool done_ = false;
};

} // namespace workload
} // namespace gpump

#endif // GPUMP_WORKLOAD_SYSTEM_HH
