/**
 * @file
 * Multiprogrammed workload generation (Section 4.1).
 *
 * Workloads co-schedule randomly chosen benchmark applications.  Two
 * flavours match the paper's experiments:
 *  - prioritized plans (Figures 5/6): one process is designated
 *    high-priority, and across the plan set every benchmark appears
 *    the same number of times as the high-priority process;
 *  - uniform plans (Figures 7/8): all processes equal, random mixes.
 */

#ifndef GPUMP_WORKLOAD_GENERATOR_HH
#define GPUMP_WORKLOAD_GENERATOR_HH

#include <cstdint>
#include <string>
#include <vector>

namespace gpump {
namespace workload {

/** One workload to simulate (benchmarks + optional prioritized one). */
struct WorkloadPlan
{
    /** Benchmark names; index 0 is the high-priority process in
     *  prioritized plans. */
    std::vector<std::string> benchmarks;
    /** Index of the high-priority process; -1 when none. */
    int highPriorityIndex = -1;
    /** Seed for this workload's simulation runs. */
    std::uint64_t seed = 1;

    /** Priorities vector for SystemSpec: 1 for the high-priority
     *  process, 0 for the rest (empty when no prioritization). */
    std::vector<int> priorities() const;

    /** Canonical one-line rendering of the full plan identity (no
     *  newlines).  Equal plans have equal fingerprints; combined with
     *  the config fingerprint it keys work units of the multi-process
     *  executor's result cache (harness/exec). */
    std::string fingerprint() const;
};

/**
 * Prioritized plans: for every benchmark of the suite, @p per_bench
 * workloads of @p nprocs processes in which that benchmark is the
 * high-priority process and the others are drawn randomly (without
 * replacement) from the rest of the suite.
 *
 * @pre 2 <= nprocs <= suite size.
 */
std::vector<WorkloadPlan>
makePrioritizedPlans(int nprocs, int per_bench, std::uint64_t base_seed);

/**
 * Uniform plans: @p count random workloads of @p nprocs distinct
 * benchmarks each, all with equal priority.
 */
std::vector<WorkloadPlan>
makeUniformPlans(int nprocs, int count, std::uint64_t base_seed);

} // namespace workload
} // namespace gpump

#endif // GPUMP_WORKLOAD_GENERATOR_HH
