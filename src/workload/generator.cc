#include "workload/generator.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "trace/parboil.hh"

namespace gpump {
namespace workload {

namespace {

std::vector<std::string>
suiteNames()
{
    std::vector<std::string> names;
    for (const auto &b : trace::parboilSuite())
        names.push_back(b.name);
    return names;
}

/** Deterministic Fisher-Yates with our portable RNG. */
void
shuffle(std::vector<std::string> &v, sim::Rng &rng)
{
    for (std::size_t i = v.size(); i > 1; --i) {
        auto j = static_cast<std::size_t>(rng.uniformInt(
            static_cast<std::uint64_t>(i)));
        std::swap(v[i - 1], v[j]);
    }
}

} // namespace

std::string
WorkloadPlan::fingerprint() const
{
    std::string out = "plan{benchmarks=";
    for (std::size_t i = 0; i < benchmarks.size(); ++i)
        out += (i ? "," : "") + benchmarks[i];
    out += ";hi=" + std::to_string(highPriorityIndex);
    out += ";seed=" + std::to_string(seed) + "}";
    return out;
}

std::vector<int>
WorkloadPlan::priorities() const
{
    if (highPriorityIndex < 0)
        return {};
    std::vector<int> prio(benchmarks.size(), 0);
    prio[static_cast<std::size_t>(highPriorityIndex)] = 1;
    return prio;
}

std::vector<WorkloadPlan>
makePrioritizedPlans(int nprocs, int per_bench, std::uint64_t base_seed)
{
    auto names = suiteNames();
    if (nprocs < 2 || nprocs > static_cast<int>(names.size())) {
        sim::fatal("prioritized plans need 2..%zu processes, got %d",
                   names.size(), nprocs);
    }

    sim::Rng rng(base_seed);
    std::vector<WorkloadPlan> plans;
    for (const auto &hp : names) {
        for (int rep = 0; rep < per_bench; ++rep) {
            std::vector<std::string> others;
            for (const auto &n : names) {
                if (n != hp)
                    others.push_back(n);
            }
            shuffle(others, rng);

            WorkloadPlan plan;
            plan.benchmarks.push_back(hp);
            for (int i = 0; i < nprocs - 1; ++i)
                plan.benchmarks.push_back(others[
                    static_cast<std::size_t>(i)]);
            plan.highPriorityIndex = 0;
            plan.seed = rng.next() | 1;
            plans.push_back(std::move(plan));
        }
    }
    return plans;
}

std::vector<WorkloadPlan>
makeUniformPlans(int nprocs, int count, std::uint64_t base_seed)
{
    auto names = suiteNames();
    if (nprocs < 1 || nprocs > static_cast<int>(names.size())) {
        sim::fatal("uniform plans need 1..%zu processes, got %d",
                   names.size(), nprocs);
    }

    sim::Rng rng(base_seed);
    std::vector<WorkloadPlan> plans;
    plans.reserve(static_cast<std::size_t>(count));
    for (int w = 0; w < count; ++w) {
        auto pool = names;
        shuffle(pool, rng);
        WorkloadPlan plan;
        plan.benchmarks.assign(pool.begin(), pool.begin() + nprocs);
        plan.seed = rng.next() | 1;
        plans.push_back(std::move(plan));
    }
    return plans;
}

} // namespace workload
} // namespace gpump
