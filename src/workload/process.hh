/**
 * @file
 * A simulated process replaying its application trace (Section 4.1).
 *
 * The process walks its BenchmarkSpec's TraceOps: CPU phases consume
 * host time (stretched under CPU oversubscription), kernel launches
 * and memcpys become GPU commands on the process's stream, blocking
 * memcpys and device synchronisations wait for completions.  When the
 * trace ends the execution is recorded and the process is replayed
 * immediately, matching the paper's "replay until every benchmark
 * completed at least 3 times" methodology.
 */

#ifndef GPUMP_WORKLOAD_PROCESS_HH
#define GPUMP_WORKLOAD_PROCESS_HH

#include <functional>
#include <vector>

#include "gpu/gpu_context.hh"
#include "gpu/stream.hh"
#include "sim/simulation.hh"
#include "sim/types.hh"
#include "trace/app_model.hh"
#include "workload/host_cpu.hh"

namespace gpump {
namespace workload {

/** Timing record of one completed application execution. */
struct RunRecord
{
    sim::SimTime start;
    sim::SimTime end;

    sim::SimTime turnaround() const { return end - start; }
};

/** One process of the multiprogrammed workload. */
class Process
{
  public:
    /**
     * @param sim      simulation context.
     * @param id       process id (also used in stats names).
     * @param spec     the benchmark this process runs.
     * @param priority process priority (priority schedulers).
     * @param cpu      host CPU (phase accounting).
     * @param ctx      this process's GPU context.
     * @param stream   this process's stream.
     * @param launch_overhead_us CPU cost of a kernel-launch API call.
     */
    Process(sim::Simulation &sim, sim::ProcessId id,
            const trace::BenchmarkSpec *spec, int priority, HostCpu &cpu,
            gpu::GpuContext &ctx, gpu::Stream &stream,
            double launch_overhead_us);

    sim::ProcessId id() const { return id_; }
    const trace::BenchmarkSpec &spec() const { return *spec_; }
    int priority() const { return priority_; }
    gpu::GpuContext &context() { return *ctx_; }

    /** Begin executing (first run starts now). */
    void start();

    /** Completed executions so far. */
    int completedRuns() const
    {
        return static_cast<int>(records_.size());
    }

    /** Records of all completed executions. */
    const std::vector<RunRecord> &records() const { return records_; }

    /** Mean turnaround over completed executions (microseconds). */
    double meanTurnaroundUs() const;

    /** Invoked after each completed execution. */
    void setOnRunCompleted(std::function<void(Process &)> cb)
    {
        onRunCompleted_ = std::move(cb);
    }

  private:
    void step();
    void opDone();

    sim::Simulation *sim_;
    sim::ProcessId id_;
    const trace::BenchmarkSpec *spec_;
    int priority_;
    HostCpu *cpu_;
    gpu::GpuContext *ctx_;
    gpu::Stream *stream_;
    sim::SimTime launchOverhead_;

    std::size_t cursor_ = 0;
    sim::SimTime runStart_ = 0;
    std::vector<RunRecord> records_;
    std::function<void(Process &)> onRunCompleted_;
};

} // namespace workload
} // namespace gpump

#endif // GPUMP_WORKLOAD_PROCESS_HH
