/**
 * @file
 * A simulated process replaying its application trace (Section 4.1).
 *
 * The process walks its BenchmarkSpec's TraceOps: CPU phases consume
 * host time (stretched under CPU oversubscription), kernel launches
 * and memcpys become GPU commands on the process's stream, blocking
 * memcpys and device synchronisations wait for completions.  When the
 * trace ends the execution is recorded and the process is replayed
 * immediately, matching the paper's "replay until every benchmark
 * completed at least 3 times" methodology.
 *
 * Replay is the simulator's per-event hot path (every event the GPU
 * side retires re-enters step() within a few calls), so the trace is
 * compiled once, at construction, into a flat array of ReplayOps —
 * kernel-profile pointers resolved, memcpy directions and command
 * kinds precomputed — and the replay state is two integers (the op
 * cursor and the completed-run count).  Commands come from the
 * System's CommandPool, so steady-state replay allocates nothing.
 */

#ifndef GPUMP_WORKLOAD_PROCESS_HH
#define GPUMP_WORKLOAD_PROCESS_HH

#include <functional>
#include <vector>

#include "gpu/command.hh"
#include "gpu/gpu_context.hh"
#include "gpu/stream.hh"
#include "sim/simulation.hh"
#include "sim/types.hh"
#include "trace/app_model.hh"
#include "workload/host_cpu.hh"

namespace gpump {
namespace workload {

/** Timing record of one completed application execution. */
struct RunRecord
{
    sim::SimTime start;
    sim::SimTime end;

    sim::SimTime turnaround() const { return end - start; }
};

/** One process of the multiprogrammed workload. */
class Process
{
  public:
    /**
     * @param sim      simulation context.
     * @param id       process id (also used in stats names).
     * @param spec     the benchmark this process runs.
     * @param priority process priority (priority schedulers).
     * @param cpu      host CPU (phase accounting).
     * @param ctx      this process's GPU context.
     * @param stream   this process's stream.
     * @param pool     command pool (recycled command allocations).
     * @param launch_overhead_us CPU cost of a kernel-launch API call.
     */
    Process(sim::Simulation &sim, sim::ProcessId id,
            const trace::BenchmarkSpec *spec, int priority, HostCpu &cpu,
            gpu::GpuContext &ctx, gpu::Stream &stream,
            gpu::CommandPool &pool, double launch_overhead_us);

    sim::ProcessId id() const { return id_; }
    const trace::BenchmarkSpec &spec() const { return *spec_; }
    int priority() const { return priority_; }
    gpu::GpuContext &context() { return *ctx_; }

    /** Begin executing (first run starts now). */
    void start();

    /** Completed executions so far. */
    int completedRuns() const { return completedRuns_; }

    /** Records of all completed executions. */
    const std::vector<RunRecord> &records() const { return records_; }

    /** Mean turnaround over completed executions (microseconds). */
    double meanTurnaroundUs() const;

    /** Hint the expected execution count (reserves the record log so
     *  steady-state replay never regrows it). */
    void reserveRuns(int n);

    /** Invoked after each completed execution. */
    void setOnRunCompleted(std::function<void(Process &)> cb)
    {
        onRunCompleted_ = std::move(cb);
    }

  private:
    /** One precompiled trace operation (flat replay program). */
    struct ReplayOp
    {
        trace::TraceOp::Kind kind;
        /** Memcpy*: blocking cudaMemcpy semantics. */
        bool synchronous;
        /** CpuPhase: host time consumed (before contention stretch). */
        sim::SimTime duration;
        /** Memcpy*: payload size and command kind. */
        std::int64_t bytes;
        gpu::Command::Kind memcpyKind;
        /** KernelLaunch: resolved kernel profile. */
        const trace::KernelProfile *profile;
    };

    void step();
    void opDone();

    sim::Simulation *sim_;
    sim::ProcessId id_;
    const trace::BenchmarkSpec *spec_;
    int priority_;
    HostCpu *cpu_;
    gpu::GpuContext *ctx_;
    gpu::Stream *stream_;
    gpu::CommandPool *pool_;
    sim::SimTime launchOverhead_;

    /** The compiled trace; replayed cursor_ = 0..ops_.size() per run. */
    std::vector<ReplayOp> ops_;
    std::size_t cursor_ = 0;
    int completedRuns_ = 0;
    sim::SimTime runStart_ = 0;
    std::vector<RunRecord> records_;
    std::function<void(Process &)> onRunCompleted_;
};

} // namespace workload
} // namespace gpump

#endif // GPUMP_WORKLOAD_PROCESS_HH
