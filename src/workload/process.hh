/**
 * @file
 * A simulated process replaying its application trace (Section 4.1).
 *
 * The process walks its BenchmarkSpec's TraceOps: CPU phases consume
 * host time (stretched under CPU oversubscription), kernel launches
 * and memcpys become GPU commands on the process's stream, blocking
 * memcpys and device synchronisations wait for completions.  When the
 * trace ends the execution is recorded and the process is replayed
 * immediately, matching the paper's "replay until every benchmark
 * completed at least 3 times" methodology.
 *
 * A process can instead be driven *open loop* by an arrival schedule
 * (setArrivalSchedule): each execution is released at a request's
 * arrival time, queues in a FIFO backlog while a predecessor is still
 * executing, and can be dropped by admission control under overload —
 * the cloud-serving request-stream model of the serve/ layer
 * (DESIGN.md §9).
 *
 * Replay is the simulator's per-event hot path (every event the GPU
 * side retires re-enters step() within a few calls), so the trace is
 * compiled once, at construction, into a flat array of ReplayOps —
 * kernel-profile pointers resolved, memcpy directions and command
 * kinds precomputed — and the replay state is two integers (the op
 * cursor and the completed-run count).  Commands come from the
 * System's CommandPool, so steady-state replay allocates nothing.
 */

#ifndef GPUMP_WORKLOAD_PROCESS_HH
#define GPUMP_WORKLOAD_PROCESS_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "gpu/command.hh"
#include "gpu/gpu_context.hh"
#include "gpu/stream.hh"
#include "sim/simulation.hh"
#include "sim/types.hh"
#include "trace/app_model.hh"
#include "workload/host_cpu.hh"

namespace gpump {
namespace workload {

/** Timing record of one completed application execution. */
struct RunRecord
{
    /** When the execution began stepping its trace. */
    sim::SimTime start;
    sim::SimTime end;
    /** When the execution was *requested*.  Closed-loop replays run
     *  back to back, so release == start; under an open-loop arrival
     *  schedule the release is the request's arrival time and
     *  start - release is the time it waited in the stream's backlog
     *  (see Process::setArrivalSchedule). */
    sim::SimTime release;

    /** Service time: trace start to trace end. */
    sim::SimTime turnaround() const { return end - start; }
    /** Response time: arrival to completion (backlog wait included).
     *  Equals turnaround() for closed-loop runs. */
    sim::SimTime latency() const { return end - release; }

    friend bool operator==(const RunRecord &a, const RunRecord &b)
    {
        return a.start == b.start && a.end == b.end &&
            a.release == b.release;
    }
};

/** One process of the multiprogrammed workload. */
class Process
{
  public:
    /**
     * @param sim      simulation context.
     * @param id       process id (also used in stats names).
     * @param spec     the benchmark this process runs.
     * @param priority process priority (priority schedulers).
     * @param cpu      host CPU (phase accounting).
     * @param ctx      this process's GPU context.
     * @param stream   this process's stream.
     * @param pool     command pool (recycled command allocations).
     * @param launch_overhead_us CPU cost of a kernel-launch API call.
     */
    Process(sim::Simulation &sim, sim::ProcessId id,
            const trace::BenchmarkSpec *spec, int priority, HostCpu &cpu,
            gpu::GpuContext &ctx, gpu::Stream &stream,
            gpu::CommandPool &pool, double launch_overhead_us);

    sim::ProcessId id() const { return id_; }
    const trace::BenchmarkSpec &spec() const { return *spec_; }
    int priority() const { return priority_; }
    gpu::GpuContext &context() { return *ctx_; }

    /**
     * Switch this process to an open-loop request stream.
     *
     * Instead of replaying back to back, one execution is *released*
     * at each of @p arrivals (absolute simulated times, nondecreasing):
     * an arrival at an idle process starts executing immediately;
     * arrivals during an execution queue in a FIFO backlog and start
     * when the predecessor finishes.  With @p max_backlog > 0 an
     * arrival finding that many requests already queued is dropped
     * (admission control under overload) and only counted.  The
     * process is finished when every arrival has either completed or
     * been dropped; it then fires the onFinished callback instead of
     * replaying.  Must be called before start().
     */
    void setArrivalSchedule(std::vector<sim::SimTime> arrivals,
                            int max_backlog = 0);

    /** True when an arrival schedule drives this process. */
    bool openLoop() const { return openLoop_; }

    /** Requests rejected by admission control (open loop only). */
    std::int64_t droppedRequests() const { return dropped_; }

    /** Invoked once, when an open-loop process has handled its whole
     *  arrival schedule (every request completed or dropped). */
    void setOnFinished(std::function<void()> cb)
    {
        onFinished_ = std::move(cb);
    }

    /** Begin executing: the first run starts now, or — under an
     *  arrival schedule — the first request is armed at its arrival
     *  time (an empty schedule finishes immediately). */
    void start();

    /** Completed executions so far. */
    int completedRuns() const { return completedRuns_; }

    /** Records of all completed executions. */
    const std::vector<RunRecord> &records() const { return records_; }

    /** Mean turnaround over completed executions (microseconds). */
    double meanTurnaroundUs() const;

    /** Mean response time (arrival to completion) over completed
     *  executions, microseconds.  Equals meanTurnaroundUs() for
     *  closed-loop processes. */
    double meanLatencyUs() const;

    /** Hint the expected execution count (reserves the record log so
     *  steady-state replay never regrows it). */
    void reserveRuns(int n);

    /** Invoked after each completed execution. */
    void setOnRunCompleted(std::function<void(Process &)> cb)
    {
        onRunCompleted_ = std::move(cb);
    }

  private:
    /** One precompiled trace operation (flat replay program). */
    struct ReplayOp
    {
        trace::TraceOp::Kind kind;
        /** Memcpy*: blocking cudaMemcpy semantics. */
        bool synchronous;
        /** CpuPhase: host time consumed (before contention stretch). */
        sim::SimTime duration;
        /** Memcpy*: payload size and command kind. */
        std::int64_t bytes;
        gpu::Command::Kind memcpyKind;
        /** KernelLaunch: resolved kernel profile. */
        const trace::KernelProfile *profile;
    };

    void step();
    void opDone();
    /** Deliver arrival arrivals_[nextArrival_] (open loop). */
    void onArrival();
    /** Fire onFinished_ when the whole schedule has been handled. */
    void maybeFinish();

    sim::Simulation *sim_;
    sim::ProcessId id_;
    const trace::BenchmarkSpec *spec_;
    int priority_;
    HostCpu *cpu_;
    gpu::GpuContext *ctx_;
    gpu::Stream *stream_;
    gpu::CommandPool *pool_;
    sim::SimTime launchOverhead_;

    /** The compiled trace; replayed cursor_ = 0..ops_.size() per run. */
    std::vector<ReplayOp> ops_;
    std::size_t cursor_ = 0;
    int completedRuns_ = 0;
    sim::SimTime runStart_ = 0;
    /** Release (arrival) time of the execution in progress; equals
     *  runStart_ in closed-loop mode. */
    sim::SimTime release_ = 0;
    std::vector<RunRecord> records_;
    std::function<void(Process &)> onRunCompleted_;

    /** @name Open-loop request stream state (setArrivalSchedule) @{ */
    bool openLoop_ = false;
    bool running_ = false;
    std::vector<sim::SimTime> arrivals_;
    std::size_t nextArrival_ = 0;
    int maxBacklog_ = 0;
    /** Release times of admitted-but-waiting requests, FIFO. */
    std::deque<sim::SimTime> backlog_;
    std::int64_t dropped_ = 0;
    std::function<void()> onFinished_;
    /** @} */
};

} // namespace workload
} // namespace gpump

#endif // GPUMP_WORKLOAD_PROCESS_HH
