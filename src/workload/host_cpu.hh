/**
 * @file
 * Coarse-grained multicore CPU model (Section 4.1 / Table 2).
 *
 * The paper models the CPU coarsely: application CPU phases come from
 * trace timestamps, and the simulated machine (4 cores, 2-way SMT)
 * has at least as many hardware threads as the largest workload has
 * processes.  This model reproduces that: phases run at full speed
 * until more processes compute simultaneously than hardware threads
 * exist, at which point new phases are stretched proportionally.
 */

#ifndef GPUMP_WORKLOAD_HOST_CPU_HH
#define GPUMP_WORKLOAD_HOST_CPU_HH

#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace gpump {
namespace sim {
class Simulation;
}
namespace workload {

/** Table 2 CPU parameters. */
struct CpuParams
{
    int cores = 4;
    int threadsPerCore = 2;
    double clockGhz = 2.8;
    /** Stretch phases when runnable threads exceed hardware threads. */
    bool modelContention = true;

    int hwThreads() const { return cores * threadsPerCore; }

    /** Build from config keys "cpu.*". */
    static CpuParams fromConfig(const sim::Config &cfg);
};

/** The host CPU: tracks how many processes compute simultaneously.
 *  The per-phase methods are inline: every replayed CPU phase passes
 *  through begin/slowdown/end, so they sit on the workload layer's
 *  per-event hot path. */
class HostCpu
{
  public:
    HostCpu(sim::Simulation &sim, const CpuParams &params);

    const CpuParams &params() const { return params_; }

    /** A process enters a CPU phase. */
    void beginPhase()
    {
        ++running_;
        ++phases_;
        if (running_ > hwThreads_)
            ++oversubscribedPhases_;
    }

    /** A process leaves its CPU phase. */
    void endPhase()
    {
        GPUMP_ASSERT(running_ > 0, "endPhase with no phase running");
        --running_;
    }

    /** Number of processes currently in a CPU phase. */
    int running() const { return running_; }

    /**
     * Stretch factor applied to a phase *starting now*: 1.0 while the
     * machine is not oversubscribed, runnable/hwThreads beyond that.
     * (Coarse: the factor is sampled at phase start, matching the
     * granularity of the paper's CPU model.)
     */
    double slowdownFactor() const
    {
        if (!params_.modelContention || running_ <= hwThreads_)
            return 1.0;
        return static_cast<double>(running_) /
            static_cast<double>(hwThreads_);
    }

  private:
    CpuParams params_;
    /** params_.hwThreads(), precomputed off the per-phase path. */
    int hwThreads_;
    int running_ = 0;
    sim::Scalar phases_;
    sim::Scalar oversubscribedPhases_;
};

} // namespace workload
} // namespace gpump

#endif // GPUMP_WORKLOAD_HOST_CPU_HH
