#include "workload/system.hh"

#include "sim/logging.hh"
#include "trace/parboil.hh"

namespace gpump {
namespace workload {

System::System(const SystemSpec &spec, const sim::Config &overrides)
    : spec_(spec)
{
    // Resolve the per-process application specs up front.
    std::vector<const trace::BenchmarkSpec *> apps;
    if (!spec_.customSpecs.empty()) {
        if (!spec_.benchmarks.empty())
            sim::fatal("give either benchmark names or custom specs, "
                       "not both");
        for (const trace::BenchmarkSpec *s : spec_.customSpecs) {
            if (s == nullptr)
                sim::fatal("null custom benchmark spec");
            s->validate();
            apps.push_back(s);
        }
    } else {
        for (const auto &name : spec_.benchmarks)
            apps.push_back(&trace::findBenchmark(name));
    }
    if (apps.empty())
        sim::fatal("system with no processes");
    if (!spec_.priorities.empty() &&
        spec_.priorities.size() != apps.size()) {
        sim::fatal("priorities/processes size mismatch (%zu vs %zu)",
                   spec_.priorities.size(), apps.size());
    }
    if (spec_.minReplays < 1)
        sim::fatal("minReplays must be at least 1");
    if (!spec_.arrivalSchedules.empty() &&
        spec_.arrivalSchedules.size() != apps.size()) {
        sim::fatal("arrival-schedules/processes size mismatch "
                   "(%zu vs %zu)",
                   spec_.arrivalSchedules.size(), apps.size());
    }
    if (!spec_.admissionBacklogs.empty() &&
        spec_.admissionBacklogs.size() != apps.size()) {
        sim::fatal("admission-backlogs/processes size mismatch "
                   "(%zu vs %zu)",
                   spec_.admissionBacklogs.size(), apps.size());
    }
    if (spec_.arrivalSchedules.empty() &&
        !spec_.admissionBacklogs.empty()) {
        sim::fatal("admission backlogs require arrival schedules");
    }

    sim_ = std::make_unique<sim::Simulation>(spec_.seed, overrides);
    const sim::Config &cfg = sim_->config();

    gpuParams_ = gpu::GpuParams::fromConfig(cfg);
    gmem_ = std::make_unique<memory::GpuMemory>(
        sim_->stats(), memory::GpuMemoryParams::fromConfig(cfg));
    frames_ = std::make_unique<memory::FrameAllocator>(
        static_cast<std::uint64_t>(gmem_->params().capacity) /
        memory::gpuPageBytes);
    pcie_ = std::make_unique<memory::PcieBus>(
        sim_->stats(), memory::PcieParams::fromConfig(cfg));

    transferEngine_ = std::make_unique<gpu::TransferEngine>(
        *sim_, *pcie_,
        gpu::TransferEngine::policyFromName(spec_.transferPolicy));
    dispatcher_ = std::make_unique<gpu::Dispatcher>(*sim_,
                                                    *transferEngine_);
    transferEngine_->setCompletionNotifier(
        [this](gpu::CommandQueue *q) {
            dispatcher_->onCommandCompleted(q);
        });

    framework_ = std::make_unique<core::SchedulingFramework>(
        *sim_, gpuParams_, *gmem_, *dispatcher_);
    framework_->setTransferEngine(transferEngine_.get());

    // Mechanisms get the same assembly-defaults hook as policies (the
    // block below): a chance to fill contextual tunable defaults from
    // the machine and workload sizes before the factory validates the
    // config.  No built-in mechanism declares one today.
    const core::MechanismRegistry::Descriptor &mech_desc =
        core::mechanismRegistry().at(spec_.mechanism);
    sim::Config mech_cfg = cfg;
    if (mech_desc.assemblyDefaults) {
        mech_desc.assemblyDefaults(mech_cfg, gpuParams_.numSms,
                                   static_cast<int>(apps.size()));
    }
    framework_->setMechanism(core::makeMechanism(spec_.mechanism,
                                                 mech_cfg));

    // Device-memory residency: swap transfers ride the same transfer
    // engine as workload copies; the engine-side questions (pinning,
    // TLB shootdown after a remap) route back into the framework.
    residency_ = std::make_unique<memory::ResidencyManager>(
        sim_->stats(), *gmem_,
        [this](sim::ContextId ctx, int priority, std::int64_t bytes,
               bool to_device, std::function<void()> done) {
            framework_->submitContextTransfer(
                ctx, priority, bytes,
                to_device ? gpu::Command::Kind::MemcpyH2D
                          : gpu::Command::Kind::MemcpyD2H,
                std::move(done));
        });
    residency_->setPinQuery([this](sim::ContextId ctx) {
        return framework_->contextPinned(ctx);
    });
    residency_->setRemapNotifier([this](sim::ContextId ctx) {
        framework_->onContextRemapped(ctx);
    });
    framework_->setResidency(residency_.get());

    // Let the selected policy fill contextual defaults now that the
    // machine and workload sizes are known (e.g. DSS's equal-share
    // token budget, Section 4.4: tc = floor(NSMs / Nprocs) plus the
    // remainder as bonus tokens).
    const core::PolicyRegistry::Descriptor &policy_desc =
        core::policyRegistry().at(spec_.policy);
    sim::Config policy_cfg = cfg;
    if (policy_desc.assemblyDefaults) {
        policy_desc.assemblyDefaults(policy_cfg, gpuParams_.numSms,
                                     static_cast<int>(apps.size()));
    }
    framework_->setPolicy(core::makePolicy(spec_.policy, policy_cfg));

    hostCpu_ = std::make_unique<HostCpu>(*sim_,
                                         CpuParams::fromConfig(cfg));

    double launch_overhead_us =
        cfg.getDouble("cpu.kernel_launch_overhead_us", 3.0);
    std::int64_t scratch_bytes =
        cfg.getInt("process.scratch_bytes", 32ll * 1024 * 1024);

    for (std::size_t i = 0; i < apps.size(); ++i) {
        const trace::BenchmarkSpec &bench = *apps[i];
        int priority =
            spec_.priorities.empty() ? 0 : spec_.priorities[i];

        auto ctx = std::make_unique<gpu::GpuContext>(
            static_cast<sim::ContextId>(i),
            static_cast<sim::ProcessId>(i), priority, *frames_);

        // The process's device footprint: inputs, outputs and scratch.
        // The residency manager admits it — resident immediately when
        // it fits next to the contexts already admitted (the common
        // case, exactly the old direct allocation), swapped out
        // otherwise; only a footprint too big for the device on its
        // own is fatal.
        std::int64_t footprint =
            bench.bytesH2D() + bench.bytesD2H() + scratch_bytes;
        residency_->registerContext(ctx->id(), priority, footprint,
                                    ctx->pageTable());

        gpu::CommandQueue *queue = dispatcher_->createQueue(
            ctx->id(), gpuParams_.numHwQueues);
        auto stream = std::make_unique<gpu::Stream>(
            *sim_, *ctx, *dispatcher_, queue,
            gpuParams_.commandSubmitLatency);
        auto process = std::make_unique<Process>(
            *sim_, static_cast<sim::ProcessId>(i), &bench, priority,
            *hostCpu_, *ctx, *stream, cmdPool_, launch_overhead_us);
        if (!spec_.arrivalSchedules.empty()) {
            int backlog = spec_.admissionBacklogs.empty()
                ? 0
                : spec_.admissionBacklogs[i];
            process->setArrivalSchedule(spec_.arrivalSchedules[i],
                                        backlog);
        } else {
            process->reserveRuns(spec_.minReplays);
        }

        contexts_.push_back(std::move(ctx));
        streams_.push_back(std::move(stream));
        processes_.push_back(std::move(process));
    }
}

SystemResult
System::run(sim::SimTime limit)
{
    stillRunning_ = numProcesses();
    done_ = numProcesses() == 0;

    for (auto &p : processes_) {
        Process *proc = p.get();
        if (proc->openLoop()) {
            // Open loop: a process is done when its whole arrival
            // schedule has been handled (completed or dropped).
            proc->setOnFinished([this] {
                if (--stillRunning_ == 0)
                    done_ = true;
            });
        } else {
            proc->setOnRunCompleted([this](Process &q) {
                if (q.completedRuns() == spec_.minReplays) {
                    if (--stillRunning_ == 0)
                        done_ = true;
                }
            });
        }
        // All processes start at t=0, co-scheduled (Section 4.1);
        // open-loop processes merely arm their first arrival.
        sim_->events().schedule(0, [proc] { proc->start(); });
    }

    while (!done_) {
        if (!sim_->events().step()) {
            sim::fatal("simulation deadlocked: event queue empty with "
                       "%d process(es) incomplete",
                       stillRunning_);
        }
        if (sim_->now() > limit) {
            sim::fatal("simulation exceeded its horizon (%lld ns) with "
                       "%d process(es) incomplete; a kernel may be "
                       "unpreemptible under the configured mechanism",
                       static_cast<long long>(limit), stillRunning_);
        }
    }

    SystemResult result;
    result.endTime = sim_->now();
    result.eventsExecuted = sim_->events().executed();
    result.kernelsCompleted = framework_->kernelsCompleted();
    result.preemptions = framework_->preemptions();
    result.contextBytesSaved = framework_->contextBytesSaved();
    result.maxPtbqDepth = framework_->maxPtbqDepth();
    for (auto &p : processes_) {
        result.runs.push_back(p->records());
        result.meanTurnaroundUs.push_back(p->meanTurnaroundUs());
        result.meanLatencyUs.push_back(p->meanLatencyUs());
        result.droppedRequests.push_back(p->droppedRequests());
    }
    return result;
}

} // namespace workload
} // namespace gpump
