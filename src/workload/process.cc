#include "workload/process.hh"

#include "sim/logging.hh"

namespace gpump {
namespace workload {

Process::Process(sim::Simulation &sim, sim::ProcessId id,
                 const trace::BenchmarkSpec *spec, int priority,
                 HostCpu &cpu, gpu::GpuContext &ctx, gpu::Stream &stream,
                 double launch_overhead_us)
    : sim_(&sim), id_(id), spec_(spec), priority_(priority), cpu_(&cpu),
      ctx_(&ctx), stream_(&stream),
      launchOverhead_(sim::microseconds(launch_overhead_us))
{
    GPUMP_ASSERT(spec != nullptr, "process without a benchmark");
    GPUMP_ASSERT(!spec->ops.empty(), "benchmark %s has an empty trace",
                 spec->name.c_str());
}

void
Process::start()
{
    runStart_ = sim_->now();
    cursor_ = 0;
    step();
}

double
Process::meanTurnaroundUs() const
{
    if (records_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : records_)
        sum += sim::toMicroseconds(r.turnaround());
    return sum / static_cast<double>(records_.size());
}

void
Process::opDone()
{
    ++cursor_;
    step();
}

void
Process::step()
{
    using Kind = trace::TraceOp::Kind;

    while (cursor_ < spec_->ops.size()) {
        const trace::TraceOp &op = spec_->ops[cursor_];
        switch (op.kind) {
          case Kind::CpuPhase: {
            // Stretch under oversubscription, sampled at phase start
            // (coarse-grained CPU model, Section 4.1).
            auto duration = static_cast<sim::SimTime>(
                static_cast<double>(op.duration) *
                cpu_->slowdownFactor());
            cpu_->beginPhase();
            sim_->events().scheduleIn(duration, [this] {
                cpu_->endPhase();
                opDone();
            });
            return;
          }
          case Kind::KernelLaunch: {
            auto cmd = gpu::Command::makeKernel(
                ctx_->id(), priority_,
                &spec_->kernels[static_cast<std::size_t>(op.kernelIndex)]);
            stream_->enqueue(std::move(cmd));
            // The launch API call costs a little host time.
            sim_->events().scheduleIn(launchOverhead_,
                                      [this] { opDone(); });
            return;
          }
          case Kind::MemcpyH2D:
          case Kind::MemcpyD2H: {
            auto direction = op.kind == Kind::MemcpyH2D
                ? gpu::Command::Kind::MemcpyH2D
                : gpu::Command::Kind::MemcpyD2H;
            auto cmd = gpu::Command::makeMemcpy(ctx_->id(), priority_,
                                                direction, op.bytes);
            if (op.synchronous) {
                cmd->onComplete = [this] { opDone(); };
                stream_->enqueue(std::move(cmd));
                return; // blocked until the copy finishes
            }
            stream_->enqueue(std::move(cmd));
            ++cursor_;
            break; // asynchronous: fall through to the next op
          }
          case Kind::DeviceSync: {
            if (ctx_->idle()) {
                ++cursor_;
                break;
            }
            ctx_->waitIdle([this] { opDone(); });
            return;
          }
        }
    }

    // Trace exhausted: one execution completed.
    records_.push_back(RunRecord{runStart_, sim_->now()});
    if (onRunCompleted_)
        onRunCompleted_(*this);

    // Replay immediately (paper Section 4.1): the next execution's
    // first CPU phase provides the natural inter-run gap.
    runStart_ = sim_->now();
    cursor_ = 0;
    step();
}

} // namespace workload
} // namespace gpump
