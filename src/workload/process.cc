#include "workload/process.hh"

#include "sim/logging.hh"

namespace gpump {
namespace workload {

Process::Process(sim::Simulation &sim, sim::ProcessId id,
                 const trace::BenchmarkSpec *spec, int priority,
                 HostCpu &cpu, gpu::GpuContext &ctx, gpu::Stream &stream,
                 gpu::CommandPool &pool, double launch_overhead_us)
    : sim_(&sim), id_(id), spec_(spec), priority_(priority), cpu_(&cpu),
      ctx_(&ctx), stream_(&stream), pool_(&pool),
      launchOverhead_(sim::microseconds(launch_overhead_us))
{
    GPUMP_ASSERT(spec != nullptr, "process without a benchmark");
    GPUMP_ASSERT(!spec->ops.empty(), "benchmark %s has an empty trace",
                 spec->name.c_str());

    // Compile the trace once: resolve kernel indices to profile
    // pointers and memcpy kinds to command kinds, so the replay loop
    // is a flat array walk with no per-replay re-derivation.
    ops_.reserve(spec->ops.size());
    for (const trace::TraceOp &op : spec->ops) {
        ReplayOp r;
        r.kind = op.kind;
        r.synchronous = op.synchronous;
        r.duration = op.duration;
        r.bytes = op.bytes;
        r.memcpyKind = op.kind == trace::TraceOp::Kind::MemcpyH2D
            ? gpu::Command::Kind::MemcpyH2D
            : gpu::Command::Kind::MemcpyD2H;
        r.profile = nullptr;
        if (op.kind == trace::TraceOp::Kind::KernelLaunch) {
            GPUMP_ASSERT(op.kernelIndex >= 0 &&
                             static_cast<std::size_t>(op.kernelIndex) <
                                 spec->kernels.size(),
                         "benchmark %s: kernel index %d out of range",
                         spec->name.c_str(), op.kernelIndex);
            r.profile =
                &spec->kernels[static_cast<std::size_t>(op.kernelIndex)];
        }
        ops_.push_back(r);
    }
}

void
Process::setArrivalSchedule(std::vector<sim::SimTime> arrivals,
                            int max_backlog)
{
    GPUMP_ASSERT(!running_ && completedRuns_ == 0,
                 "arrival schedule must be set before start()");
    GPUMP_ASSERT(max_backlog >= 0, "negative admission backlog");
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        GPUMP_ASSERT(arrivals[i] >= 0, "negative arrival time");
        GPUMP_ASSERT(i == 0 || arrivals[i] >= arrivals[i - 1],
                     "arrival schedule must be nondecreasing");
    }
    openLoop_ = true;
    arrivals_ = std::move(arrivals);
    maxBacklog_ = max_backlog;
    records_.reserve(arrivals_.size());
}

void
Process::start()
{
    if (openLoop_) {
        if (arrivals_.empty()) {
            maybeFinish();
            return;
        }
        sim_->events().schedule(arrivals_[0], [this] { onArrival(); });
        return;
    }
    runStart_ = sim_->now();
    release_ = runStart_;
    cursor_ = 0;
    step();
}

void
Process::onArrival()
{
    sim::SimTime release = arrivals_[nextArrival_++];
    // Arm the next arrival before acting on this one so the stream
    // keeps exactly one pending arrival event (O(streams) queue
    // pressure, not O(requests)).
    if (nextArrival_ < arrivals_.size()) {
        sim_->events().schedule(arrivals_[nextArrival_],
                                [this] { onArrival(); });
    }
    if (!running_) {
        running_ = true;
        release_ = release;
        runStart_ = sim_->now();
        cursor_ = 0;
        step();
        return;
    }
    if (maxBacklog_ > 0 &&
        backlog_.size() >= static_cast<std::size_t>(maxBacklog_)) {
        ++dropped_; // admission control: reject, don't queue
        maybeFinish();
        return;
    }
    backlog_.push_back(release);
}

void
Process::maybeFinish()
{
    if (static_cast<std::size_t>(completedRuns_) +
            static_cast<std::size_t>(dropped_) ==
        arrivals_.size()) {
        if (onFinished_) {
            auto cb = std::move(onFinished_);
            onFinished_ = nullptr; // fire exactly once
            cb();
        }
    }
}

void
Process::reserveRuns(int n)
{
    if (n > 0)
        records_.reserve(static_cast<std::size_t>(n));
}

double
Process::meanTurnaroundUs() const
{
    if (records_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : records_)
        sum += sim::toMicroseconds(r.turnaround());
    return sum / static_cast<double>(records_.size());
}

double
Process::meanLatencyUs() const
{
    if (records_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : records_)
        sum += sim::toMicroseconds(r.latency());
    return sum / static_cast<double>(records_.size());
}

void
Process::opDone()
{
    ++cursor_;
    step();
}

void
Process::step()
{
    using Kind = trace::TraceOp::Kind;

    // Outer loop = replays; the trace restarts immediately when it
    // ends (paper Section 4.1), so a run boundary must not grow the
    // stack the way the old tail-recursive replay did.
    for (;;) {
        const ReplayOp *ops = ops_.data();
        const std::size_t n = ops_.size();
        while (cursor_ < n) {
            const ReplayOp &op = ops[cursor_];
            switch (op.kind) {
              case Kind::CpuPhase: {
                // Stretch under oversubscription, sampled at phase
                // start (coarse-grained CPU model, Section 4.1).
                auto duration = static_cast<sim::SimTime>(
                    static_cast<double>(op.duration) *
                    cpu_->slowdownFactor());
                cpu_->beginPhase();
                sim_->events().scheduleIn(duration, [this] {
                    cpu_->endPhase();
                    opDone();
                });
                return;
              }
              case Kind::KernelLaunch: {
                stream_->enqueue(
                    pool_->makeKernel(ctx_->id(), priority_, op.profile));
                // The launch API call costs a little host time.
                sim_->events().scheduleIn(launchOverhead_,
                                          [this] { opDone(); });
                return;
              }
              case Kind::MemcpyH2D:
              case Kind::MemcpyD2H: {
                auto cmd = pool_->makeMemcpy(ctx_->id(), priority_,
                                             op.memcpyKind, op.bytes);
                if (op.synchronous) {
                    cmd->onComplete = [this] { opDone(); };
                    stream_->enqueue(std::move(cmd));
                    return; // blocked until the copy finishes
                }
                stream_->enqueue(std::move(cmd));
                ++cursor_;
                break; // asynchronous: fall through to the next op
              }
              case Kind::DeviceSync: {
                if (ctx_->idle()) {
                    ++cursor_;
                    break;
                }
                ctx_->waitIdle([this] { opDone(); });
                return;
              }
            }
        }

        // Trace exhausted: one execution completed.
        records_.push_back(RunRecord{runStart_, sim_->now(), release_});
        ++completedRuns_;
        if (onRunCompleted_)
            onRunCompleted_(*this);
        if (openLoop_) {
            // Open loop: pop the oldest backlogged request, or go
            // idle until the next arrival.
            if (backlog_.empty()) {
                running_ = false;
                maybeFinish();
                return;
            }
            release_ = backlog_.front();
            backlog_.pop_front();
            runStart_ = sim_->now();
            cursor_ = 0;
            continue;
        }
        // Closed loop: replay immediately (the next execution's first
        // CPU phase provides the natural inter-run gap).
        runStart_ = sim_->now();
        release_ = runStart_;
        cursor_ = 0;
    }
}

} // namespace workload
} // namespace gpump
