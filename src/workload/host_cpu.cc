#include "workload/host_cpu.hh"

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace gpump {
namespace workload {

CpuParams
CpuParams::fromConfig(const sim::Config &cfg)
{
    CpuParams p;
    p.cores = static_cast<int>(cfg.getInt("cpu.cores", p.cores));
    p.threadsPerCore = static_cast<int>(
        cfg.getInt("cpu.threads_per_core", p.threadsPerCore));
    p.clockGhz = cfg.getDouble("cpu.clock_ghz", p.clockGhz);
    p.modelContention =
        cfg.getBool("cpu.model_contention", p.modelContention);
    if (p.cores <= 0 || p.threadsPerCore <= 0)
        sim::fatal("invalid CPU parameters");
    return p;
}

HostCpu::HostCpu(sim::Simulation &sim, const CpuParams &params)
    : params_(params), hwThreads_(params.hwThreads()),
      phases_(sim.stats(), "cpu.phases", "CPU phases executed"),
      oversubscribedPhases_(sim.stats(), "cpu.oversubscribed_phases",
                            "phases started with more runnable threads "
                            "than hardware threads")
{
}

} // namespace workload
} // namespace gpump
