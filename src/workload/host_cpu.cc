#include "workload/host_cpu.hh"

#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace gpump {
namespace workload {

CpuParams
CpuParams::fromConfig(const sim::Config &cfg)
{
    CpuParams p;
    p.cores = static_cast<int>(cfg.getInt("cpu.cores", p.cores));
    p.threadsPerCore = static_cast<int>(
        cfg.getInt("cpu.threads_per_core", p.threadsPerCore));
    p.clockGhz = cfg.getDouble("cpu.clock_ghz", p.clockGhz);
    p.modelContention =
        cfg.getBool("cpu.model_contention", p.modelContention);
    if (p.cores <= 0 || p.threadsPerCore <= 0)
        sim::fatal("invalid CPU parameters");
    return p;
}

HostCpu::HostCpu(sim::Simulation &sim, const CpuParams &params)
    : params_(params),
      phases_(sim.stats(), "cpu.phases", "CPU phases executed"),
      oversubscribedPhases_(sim.stats(), "cpu.oversubscribed_phases",
                            "phases started with more runnable threads "
                            "than hardware threads")
{
}

void
HostCpu::beginPhase()
{
    ++running_;
    ++phases_;
    if (running_ > params_.hwThreads())
        ++oversubscribedPhases_;
}

void
HostCpu::endPhase()
{
    GPUMP_ASSERT(running_ > 0, "endPhase with no phase running");
    --running_;
}

double
HostCpu::slowdownFactor() const
{
    if (!params_.modelContention)
        return 1.0;
    int hw = params_.hwThreads();
    if (running_ <= hw)
        return 1.0;
    return static_cast<double>(running_) / static_cast<double>(hw);
}

} // namespace workload
} // namespace gpump
