#include "sim/simulation.hh"

namespace gpump {
namespace sim {

Simulation::Simulation(std::uint64_t seed, Config config)
    : config_(std::move(config)), rng_(seed)
{
}

} // namespace sim
} // namespace gpump
