#include "sim/random.hh"

#include <cmath>

#include "sim/logging.hh"

namespace gpump {
namespace sim {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t x = seed_value;
    for (auto &s : state_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    GPUMP_ASSERT(n > 0, "uniformInt: n must be positive");
    // Rejection sampling to remove modulo bias.
    std::uint64_t threshold = (0 - n) % n;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    GPUMP_ASSERT(lo <= hi, "uniformInt: empty range [%lld, %lld]",
                 static_cast<long long>(lo), static_cast<long long>(hi));
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

double
Rng::normal()
{
    // Box-Muller; draw both uniforms every call so that the stream
    // consumed per sample is fixed (important for reproducibility).
    double u1 = uniform();
    double u2 = uniform();
    while (u1 <= 0.0)
        u1 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
        std::cos(2.0 * 3.14159265358979323846 * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormal(double mean, double cv)
{
    GPUMP_ASSERT(mean > 0.0, "lognormal: mean must be positive");
    GPUMP_ASSERT(cv >= 0.0, "lognormal: cv must be non-negative");
    if (cv == 0.0)
        return mean;
    // For LogN(mu, sigma^2): E = exp(mu + sigma^2/2),
    // CV^2 = exp(sigma^2) - 1.  Solve for (mu, sigma).
    double sigma2 = std::log(1.0 + cv * cv);
    double mu = std::log(mean) - 0.5 * sigma2;
    return std::exp(normal(mu, std::sqrt(sigma2)));
}

double
Rng::exponential(double mean)
{
    GPUMP_ASSERT(mean > 0.0, "exponential: mean must be positive");
    double u = uniform();
    while (u <= 0.0)
        u = uniform();
    return -mean * std::log(u);
}

Rng
Rng::fork()
{
    // Derive a child seed from the parent stream; the child is then
    // seeded through SplitMix64 so the streams are decorrelated.
    return Rng(next() ^ 0xd1b54a32d192ed03ull);
}

} // namespace sim
} // namespace gpump
