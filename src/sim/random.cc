#include "sim/random.hh"

#include <cmath>

#include "sim/logging.hh"

namespace gpump {
namespace sim {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
/** Smallest nonzero value uniform() can return (53 mantissa bits). */
constexpr double kMinUniform = 0x1.0p-53;

/** Remap a zero unit-interval draw to the smallest nonzero one, so
 *  log(u) stays finite without a rejection loop (fixed draw count). */
double
nonzero(double u)
{
    return u > 0.0 ? u : kMinUniform;
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t x = seed_value;
    for (auto &s : state_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    GPUMP_ASSERT(n > 0, "uniformInt: n must be positive");
    // Rejection sampling to remove modulo bias.
    std::uint64_t threshold = (0 - n) % n;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    GPUMP_ASSERT(lo <= hi, "uniformInt: empty range [%lld, %lld]",
                 static_cast<long long>(lo), static_cast<long long>(hi));
    // The width hi - lo + 1 can exceed INT64_MAX (and the naive
    // signed subtraction overflows, which is UB); do all range
    // arithmetic in uint64, where wrap-around is defined and the
    // width is exact.  A span of 0 means the range covers the entire
    // 64-bit domain, so any raw draw is a valid sample.
    std::uint64_t span = static_cast<std::uint64_t>(hi) -
        static_cast<std::uint64_t>(lo) + 1;
    std::uint64_t offset = span == 0 ? next() : uniformInt(span);
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                     offset);
}

double
Rng::boxMuller(double u1, double u2)
{
    return std::sqrt(-2.0 * std::log(nonzero(u1))) *
        std::cos(kTwoPi * u2);
}

double
Rng::normal()
{
    // Box-Muller; both uniforms are drawn every call and a zero u1 is
    // remapped (not redrawn), so the raw-draw stream consumed per
    // sample is fixed — the invariant the batched fill* APIs and the
    // reproducibility contract rely on — and the result is finite for
    // every possible draw.
    double u1 = uniform();
    double u2 = uniform();
    return boxMuller(u1, u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormal(double mean, double cv)
{
    GPUMP_ASSERT(mean > 0.0, "lognormal: mean must be positive");
    GPUMP_ASSERT(cv >= 0.0, "lognormal: cv must be non-negative");
    if (cv == 0.0)
        return mean;
    // For LogN(mu, sigma^2): E = exp(mu + sigma^2/2),
    // CV^2 = exp(sigma^2) - 1.  Solve for (mu, sigma).
    double sigma2 = std::log(1.0 + cv * cv);
    double mu = std::log(mean) - 0.5 * sigma2;
    return std::exp(normal(mu, std::sqrt(sigma2)));
}

double
Rng::exponential(double mean)
{
    GPUMP_ASSERT(mean > 0.0, "exponential: mean must be positive");
    return -mean * std::log(nonzero(uniform()));
}

void
Rng::fillUniform(double *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = uniform();
}

void
Rng::fillNormal(double *out, std::size_t n, double mean, double stddev)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = mean + stddev * normal();
}

void
Rng::fillLognormal(double *out, std::size_t n, double mean, double cv)
{
    GPUMP_ASSERT(mean > 0.0, "lognormal: mean must be positive");
    GPUMP_ASSERT(cv >= 0.0, "lognormal: cv must be non-negative");
    if (cv == 0.0) {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = mean;
        return;
    }
    // The (mu, sigma) solve — two logs and a square root per sample
    // in the sequential path — is hoisted out of the loop; each
    // sample then runs exactly the arithmetic lognormal() runs, so
    // the outputs are bit-identical to n sequential calls.
    double sigma2 = std::log(1.0 + cv * cv);
    double mu = std::log(mean) - 0.5 * sigma2;
    double sigma = std::sqrt(sigma2);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = std::exp(normal(mu, sigma));
}

void
Rng::fillExponential(double *out, std::size_t n, double mean)
{
    GPUMP_ASSERT(mean > 0.0, "exponential: mean must be positive");
    for (std::size_t i = 0; i < n; ++i)
        out[i] = -mean * std::log(nonzero(uniform()));
}

Rng
Rng::fork()
{
    // Derive a child seed from the parent stream; the child is then
    // seeded through SplitMix64 so the streams are decorrelated.
    return Rng(next() ^ 0xd1b54a32d192ed03ull);
}

} // namespace sim
} // namespace gpump
