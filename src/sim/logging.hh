/**
 * @file
 * Logging and error-reporting helpers.
 *
 * Follows the gem5 convention of distinguishing user errors from
 * simulator bugs:
 *  - fatal():  the simulation cannot continue because of a condition
 *              that is the caller's fault (bad configuration, invalid
 *              arguments).  Throws FatalError.
 *  - panic():  something happened that should never happen regardless
 *              of input (an internal invariant was violated).  Throws
 *              PanicError.
 *  - warn()/inform(): status messages that never stop the simulation.
 *
 * Errors are thrown (rather than calling std::abort) so that unit
 * tests can assert on them and library users can recover.
 */

#ifndef GPUMP_SIM_LOGGING_HH
#define GPUMP_SIM_LOGGING_HH

#include <atomic>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <string>

namespace gpump {
namespace sim {

/** Raised by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Raised by fatal(): the input or configuration is unusable. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Verbosity levels, in increasing order of chattiness. */
enum class LogLevel
{
    Silent = 0,
    Warn = 1,
    Inform = 2,
    Debug = 3,
    Trace = 4,
};

/**
 * printf-style formatting into a std::string.
 *
 * @param fmt printf format string.
 * @return the formatted string.
 */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Process-wide logger with a verbosity threshold.
 *
 * The logger is the one piece of state shared across concurrent
 * simulation runs (harness::Runner executes independent Systems on a
 * thread pool), so it must be thread-safe: the level is atomic and
 * emission is serialized under a mutex so lines from different runs
 * never interleave.  The interesting output still goes through the
 * stats package, not the log.
 */
class Logger
{
  public:
    /** The process-wide logger instance. */
    static Logger &global();

    void setLevel(LogLevel level)
    {
        level_.store(level, std::memory_order_relaxed);
    }
    LogLevel level() const
    {
        return level_.load(std::memory_order_relaxed);
    }

    /** True when messages at @p level would be emitted. */
    bool enabled(LogLevel level) const { return level <= this->level(); }

    /** Emit one log line (with level prefix) to stderr. */
    void emit(LogLevel level, const std::string &msg);

  private:
    std::atomic<LogLevel> level_{LogLevel::Warn};
    std::mutex emitMutex_;
};

/** Report a non-fatal suspicious condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Verbose debugging output, off by default. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Abort the simulation: user/configuration error.  Throws FatalError. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Abort the simulation: internal bug.  Throws PanicError. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** panic() unless @p cond holds.  The message should state the invariant. */
#define GPUMP_ASSERT(cond, ...)                                             \
    do {                                                                    \
        if (!(cond))                                                        \
            ::gpump::sim::panic(__VA_ARGS__);                               \
    } while (0)

} // namespace sim
} // namespace gpump

#endif // GPUMP_SIM_LOGGING_HH
