/**
 * @file
 * Simulation: the per-run context object.
 *
 * Bundles the event queue, root RNG, stat registry and configuration
 * that every model component needs.  One Simulation corresponds to one
 * independent experiment run (e.g. one workload under one policy);
 * nothing is global, so runs can be constructed back to back without
 * leaking state into each other.
 */

#ifndef GPUMP_SIM_SIMULATION_HH
#define GPUMP_SIM_SIMULATION_HH

#include <cstdint>

#include "sim/config.hh"
#include "sim/event.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace gpump {
namespace sim {

/** Per-run simulation context. */
class Simulation
{
  public:
    /**
     * @param seed  root RNG seed; pins every stochastic choice in
     *              the run.
     * @param config parameter overrides applied on top of model
     *              defaults.
     */
    explicit Simulation(std::uint64_t seed = 1, Config config = Config());

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    EventQueue &events() { return events_; }
    Rng &rng() { return rng_; }
    StatRegistry &stats() { return stats_; }
    Config &config() { return config_; }
    const Config &config() const { return config_; }

    /** Shorthand for events().now(). */
    SimTime now() const { return events_.now(); }

    /**
     * Run the event loop until it drains or @p limit is reached.
     * @return the simulated time afterwards.
     */
    SimTime run(SimTime limit = maxTime) { return events_.run(limit); }

  private:
    Config config_;
    EventQueue events_;
    Rng rng_;
    StatRegistry stats_;
};

} // namespace sim
} // namespace gpump

#endif // GPUMP_SIM_SIMULATION_HH
