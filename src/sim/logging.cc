#include "sim/logging.hh"

#include <cstdarg>
#include <vector>

namespace gpump {
namespace sim {

namespace {

std::string
vformat(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

const char *
levelPrefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Warn: return "warn: ";
      case LogLevel::Inform: return "info: ";
      case LogLevel::Debug: return "debug: ";
      case LogLevel::Trace: return "trace: ";
      default: return "";
    }
}

} // namespace

std::string
strformat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string result = vformat(fmt, args);
    va_end(args);
    return result;
}

Logger &
Logger::global()
{
    static Logger instance;
    return instance;
}

void
Logger::emit(LogLevel level, const std::string &msg)
{
    if (!enabled(level))
        return;
    std::lock_guard<std::mutex> lock(emitMutex_);
    std::fprintf(stderr, "%s%s\n", levelPrefix(level), msg.c_str());
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    Logger::global().emit(LogLevel::Warn, msg);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    Logger::global().emit(LogLevel::Inform, msg);
}

void
debugLog(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    Logger::global().emit(LogLevel::Debug, msg);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    throw FatalError(msg);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    throw PanicError(msg);
}

} // namespace sim
} // namespace gpump
