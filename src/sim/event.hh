/**
 * @file
 * Discrete-event core: a cancellable, deterministic event queue.
 *
 * The whole simulator is single threaded and driven by one EventQueue.
 * Determinism guarantees:
 *  - events fire in nondecreasing time order;
 *  - events at the same time fire in ascending priority value;
 *  - events with equal (time, priority) fire in ascending sequence
 *    number (scheduling order, unless the caller reserved a sequence
 *    number explicitly — see reserveSeq / scheduleWithSeq).
 *
 * Cancellation is first-class because preemption must revoke the
 * completion events of thread blocks that are context-switched out.
 *
 * The engine is allocation-free on the hot path: callbacks live in a
 * small-buffer-optimized storage (no heap for captures up to
 * EventCallback::inlineBytes), event state lives in a slab of
 * recycled slots, and queue entries are POD.  Handles are
 * generation-counted (slot index, generation) pairs, so a stale
 * handle — one whose event already ran, was cancelled, or whose slot
 * was since recycled — stays safe to query or cancel without any
 * reference counting.  Unlike the previous shared_ptr-based design,
 * a Handle must not be used after its EventQueue is destroyed.
 */

#ifndef GPUMP_SIM_EVENT_HH
#define GPUMP_SIM_EVENT_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/audit.hh"
#include "sim/types.hh"

namespace gpump {
namespace sim {

/**
 * Priority values for simultaneous events.  Lower fires first.
 *
 * The ordering encodes the hardware's intra-cycle precedence: state
 * updates (completions) are observed before the logic that reacts to
 * them (drivers, policies) runs, and generic callbacks go last.
 */
enum EventPriority : int
{
    prioCompletion = 0, ///< engine/TB completions, state becomes visible
    prioDriver = 10,    ///< SM driver / dispatcher reactions
    prioPolicy = 20,    ///< scheduling policy invocations
    prioDefault = 30,   ///< everything else
};

/**
 * Move-only `void()` callable with small-buffer optimization.
 *
 * Every event callback in the simulator captures a handful of
 * pointers (and occasionally one small vector); those are stored
 * inline, so scheduling an event performs no heap allocation.
 * Larger or alignment-exotic callables fall back to the heap
 * transparently.
 */
class EventCallback
{
  public:
    /** Inline capacity: two pointers' worth of captures — what the
     *  simulator's hot-path callbacks (completion, setup, driver)
     *  actually carry.  Rarer, fatter captures (a transfer command's
     *  shared_ptr, a preemption's saved-TB vector) take the heap
     *  fallback; with a 16-byte buffer the whole callback is 24
     *  bytes and an event slot packs two to a cache line. */
    static constexpr std::size_t inlineBytes = 16;
    /** Captures are pointer-aligned; anything stricter goes to the
     *  heap fallback. */
    static constexpr std::size_t inlineAlign = 8;

    EventCallback() noexcept = default;
    EventCallback(std::nullptr_t) noexcept {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventCallback(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            ops_ = &inlineOps<Fn>;
        } else {
            ::new (static_cast<void *>(buf_))
                Fn *(new Fn(std::forward<F>(f)));
            ops_ = &heapOps<Fn>;
        }
    }

    EventCallback(EventCallback &&other) noexcept { moveFrom(other); }

    EventCallback &operator=(EventCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventCallback &operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { reset(); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    friend bool operator==(const EventCallback &f, std::nullptr_t) noexcept
    {
        return f.ops_ == nullptr;
    }
    friend bool operator!=(const EventCallback &f, std::nullptr_t) noexcept
    {
        return f.ops_ != nullptr;
    }

    /** Invoke the target.  @pre non-null. */
    void operator()() { ops_->invoke(buf_); }

  private:
    /**
     * Dispatch table.  relocate == nullptr marks a target that is
     * relocated by plain memcpy (trivially-copyable captures — the
     * overwhelmingly common case — and the heap fallback's raw
     * pointer), which keeps moves free of indirect calls; destroy ==
     * nullptr marks a target whose destruction is a no-op.
     */
    struct Ops
    {
        void (*invoke)(void *storage);
        /** Move the target from @p src storage into @p dst storage and
         *  destroy the source; nullptr = memcpy suffices. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *storage); ///< nullptr = no-op
    };

    template <typename Fn>
    static constexpr bool fitsInline()
    {
        return sizeof(Fn) <= inlineBytes && alignof(Fn) <= inlineAlign &&
            std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *s) { (*static_cast<Fn *>(s))(); },
        std::is_trivially_copyable_v<Fn>
            ? nullptr
            : +[](void *dst, void *src) {
                  ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
                  static_cast<Fn *>(src)->~Fn();
              },
        std::is_trivially_destructible_v<Fn>
            ? nullptr
            : +[](void *s) { static_cast<Fn *>(s)->~Fn(); },
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void *s) { (**static_cast<Fn **>(s))(); },
        nullptr, // the stored pointer relocates by memcpy
        [](void *s) { delete *static_cast<Fn **>(s); },
    };

    void reset() noexcept
    {
        if (ops_) {
            if (ops_->destroy)
                ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    void moveFrom(EventCallback &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_) {
            if (ops_->relocate)
                ops_->relocate(buf_, other.buf_);
            else
                __builtin_memcpy(buf_, other.buf_, inlineBytes);
            other.ops_ = nullptr;
        }
    }

    alignas(inlineAlign) unsigned char buf_[inlineBytes];
    const Ops *ops_ = nullptr;
};

/**
 * Deterministic event queue with O(1) cancellation, amortized
 * O(log n) ordering work per event and bounded dead-entry overhead.
 *
 * Internals (see DESIGN.md §5): event callbacks live in a slab of
 * generation-counted slots recycled through a free list; the
 * priority structure holds 24-byte POD entries referencing slots by
 * index.  Instead of a binary heap, entries sit in two tiers — a
 * small sorted "bottom" array popped by index bump and an unsorted
 * "future" buffer refilled from in sorted chunks — trading the
 * pointer-chasing sift loops for sequential selection and sort
 * passes.  Cancellation bumps the slot's generation (invalidating
 * the entry and every outstanding handle); dead entries are skipped
 * when reached, or swept eagerly when they come to outnumber live
 * ones.
 */
class EventQueue
{
  public:
    using Callback = EventCallback;

    /**
     * Handle to a scheduled event; allows cancellation.
     *
     * Handles are two machine words and cheap to copy.  A
     * default-constructed handle is inert.  A handle whose event has
     * run or been cancelled — even if its slot has since been reused
     * for another event — answers pending() == false and refuses to
     * cancel().  Handles must not outlive the queue.
     */
    class Handle
    {
      public:
        Handle() = default;

        /** True if the event is still scheduled (not run or cancelled). */
        bool pending() const
        {
            return queue_ != nullptr && queue_->slotLive(slot_, gen_);
        }

        /**
         * Cancel the event if still pending.
         * @return true if this call cancelled it, false if it had
         *         already run or been cancelled.
         */
        bool cancel()
        {
            if (!pending())
                return false;
            queue_->cancelSlot(slot_);
            return true;
        }

      private:
        friend class EventQueue;
        Handle(EventQueue *queue, std::uint32_t slot, std::uint32_t gen)
            : queue_(queue), slot_(slot), gen_(gen)
        {
        }

        EventQueue *queue_ = nullptr;
        std::uint32_t slot_ = 0;
        std::uint32_t gen_ = 0;
    };

    EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * @pre when >= now()
     */
    Handle schedule(SimTime when, Callback cb, int priority = prioDefault);

    /** Schedule @p cb to run @p delay after now. @pre delay >= 0 */
    Handle scheduleIn(SimTime delay, Callback cb, int priority = prioDefault);

    /**
     * Reserve the next FIFO sequence number without scheduling.
     *
     * Callers that coalesce many logical events behind one scheduled
     * event (the per-SM completion timeline) reserve one sequence
     * number per logical event at the instant the old design would
     * have scheduled it, then arm the physical event with
     * scheduleWithSeq.  Ties at equal (time, priority) then resolve
     * exactly as if every logical event had been scheduled
     * individually, which keeps simulations bit-identical.
     */
    std::uint64_t reserveSeq() { return seq_++; }

    /**
     * Schedule @p cb with an explicitly reserved FIFO sequence number.
     * @pre when >= now() and seq was obtained from reserveSeq()
     */
    Handle scheduleWithSeq(SimTime when, std::uint64_t seq, Callback cb,
                           int priority = prioDefault);

    /** Number of live (non-cancelled, not yet run) events.  O(1). */
    std::size_t pending() const { return heapEntries() - deadEntries_; }

    /** True when no live events remain.  O(1). */
    bool empty() const { return pending() == 0; }

    /**
     * Run the next live event.
     * @return false when no live event remains.
     */
    bool step();

    /**
     * Run events until the queue drains or the next event lies beyond
     * @p limit (events exactly at @p limit run).
     *
     * @return the current time after the last executed event.
     */
    SimTime run(SimTime limit = maxTime);

    /** Total number of events executed since construction. */
    std::uint64_t executed() const { return executed_; }

    /** Queue entries currently held, live and dead (observability for
     *  tests of the compaction policy). */
    std::size_t heapEntries() const
    {
        return (bottom_.size() - bottomPos_) + future_.size();
    }

    /** Slab cells ever allocated (observability for tests of slot
     *  recycling; steady-state workloads plateau at their peak
     *  concurrent event count). */
    std::size_t slotsAllocated() const { return slots_.size(); }

#if GPUMP_AUDIT_ENABLED
    /** Test hook (audit builds only): deliberately corrupt the firing
     *  key of the next pending entry so the two-tier ordering audit
     *  in step() trips.  Exists so tests/test_audit.cpp can prove the
     *  audit layer detects a corrupted queue; never compiled into
     *  default builds.  @pre at least one live entry is pending. */
    void auditCorruptFrontKeyForTest();
#endif

  private:
    /**
     * POD heap entry; the callback lives in the slot slab.
     *
     * The (when, priority, seq) firing key is packed into two 64-bit
     * words — keyHi = when, keyLo = biased 16-bit priority over a
     * 48-bit sequence — so entries are 24 bytes and the comparison is
     * two branch-free integer compares, which matters enormously in
     * the sift loops (comparisons on random keys mispredict).
     */
    struct Entry
    {
        std::uint64_t keyHi;
        std::uint64_t keyLo;
        std::uint32_t slot;
        std::uint32_t gen;

        SimTime when() const { return static_cast<SimTime>(keyHi); }
    };

    /** Half the biased priority range; priorities must fit 16 bits. */
    static constexpr int priorityBias = 1 << 15;
    /** Sequence numbers occupy the low 48 bits of keyLo. */
    static constexpr std::uint64_t maxSeq = (1ull << 48) - 1;

    /** One slab cell: callback storage + generation + free-list link. */
    struct Slot
    {
        Callback callback;
        std::uint32_t gen = 0;
        std::uint32_t nextFree = 0;
    };

    /** True when key (hi1, lo1) fires strictly before (hi2, lo2).
     *  Written with bitwise operators so both compares evaluate
     *  unconditionally and feed conditional moves, not branches. */
    static bool keyBefore(std::uint64_t hi1, std::uint64_t lo1,
                          std::uint64_t hi2, std::uint64_t lo2)
    {
        return bool(hi1 < hi2) | (bool(hi1 == hi2) & bool(lo1 < lo2));
    }

    /** Comparator functor over entries (inlines into sorts). */
    struct FiresBefore
    {
        bool operator()(const Entry &a, const Entry &b) const
        {
            return keyBefore(a.keyHi, a.keyLo, b.keyHi, b.keyLo);
        }
    };

    bool slotLive(std::uint32_t slot, std::uint32_t gen) const
    {
        return slots_[slot].gen == gen;
    }
    /** An entry is dead once its slot's generation moved past it. */
    bool entryDead(const Entry &e) const { return !slotLive(e.slot, e.gen); }

    void cancelSlot(std::uint32_t slot);
    Handle doSchedule(SimTime when, std::uint64_t seq, Callback &&cb,
                      int priority);
    std::uint32_t acquireSlot(Callback &&cb);
    void releaseSlot(std::uint32_t slot);
    void compactIfWorthIt();

    /** @name Two-tier priority structure
     * A small sorted "bottom" array (next event = index bump) over an
     * unsorted "future" buffer.  Scheduling beyond the boundary is an
     * O(1) append; scheduling below it is a sorted insert into the
     * (small) bottom.  When the bottom drains, the smallest chunk of
     * the future is selected with nth_element and sorted — sequential
     * passes that replace the pointer-chasing sift loops of a binary
     * heap and amortize to O(log n) comparisons per event with far
     * better locality.  See DESIGN.md §5.
     * @{ */
    void insertEntry(const Entry &e);
    /** Next live entry (skipping dead ones, refilling the bottom),
     *  or nullptr when drained.  The pointer is invalidated by any
     *  mutation of the queue. */
    const Entry *peekFront();
    void refillBottom();
    void spillBottom();
    /** @} */

    SimTime now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    /** Entries whose event was cancelled but not yet swept; live
     *  events are the remaining entries (pending()). */
    std::size_t deadEntries_ = 0;

    /** Sorted ascending by key; bottom_[bottomPos_] fires next. */
    std::vector<Entry> bottom_;
    std::size_t bottomPos_ = 0;
    /** Unsorted; every key here is >= (boundaryHi_, boundaryLo_). */
    std::vector<Entry> future_;
    /** Keys strictly below the boundary belong to the bottom.  The
     *  initial zero boundary routes everything to the future until
     *  the first refill. */
    std::uint64_t boundaryHi_ = 0;
    std::uint64_t boundaryLo_ = 0;

    std::vector<Slot> slots_;
    static constexpr std::uint32_t noSlot = 0xffffffffu;
    std::uint32_t freeHead_ = noSlot;
};

} // namespace sim
} // namespace gpump

#endif // GPUMP_SIM_EVENT_HH
