/**
 * @file
 * Discrete-event core: a cancellable, deterministic event queue.
 *
 * The whole simulator is single threaded and driven by one EventQueue.
 * Determinism guarantees:
 *  - events fire in nondecreasing time order;
 *  - events at the same time fire in ascending priority value;
 *  - events with equal (time, priority) fire in scheduling order.
 *
 * Cancellation is first-class because preemption must revoke the
 * completion events of thread blocks that are context-switched out.
 */

#ifndef GPUMP_SIM_EVENT_HH
#define GPUMP_SIM_EVENT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace gpump {
namespace sim {

/**
 * Priority values for simultaneous events.  Lower fires first.
 *
 * The ordering encodes the hardware's intra-cycle precedence: state
 * updates (completions) are observed before the logic that reacts to
 * them (drivers, policies) runs, and generic callbacks go last.
 */
enum EventPriority : int
{
    prioCompletion = 0, ///< engine/TB completions, state becomes visible
    prioDriver = 10,    ///< SM driver / dispatcher reactions
    prioPolicy = 20,    ///< scheduling policy invocations
    prioDefault = 30,   ///< everything else
};

/**
 * Deterministic event queue with O(log n) schedule/pop and lazy
 * cancellation.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /**
     * Handle to a scheduled event; allows cancellation.
     *
     * Handles are cheap to copy; a default-constructed handle is
     * inert.  A handle may outlive the queue: it keeps only the shared
     * cancellation record alive.
     */
    class Handle
    {
      public:
        Handle() = default;

        /** True if the event is still scheduled (not run or cancelled). */
        bool pending() const;

        /**
         * Cancel the event if still pending.
         * @return true if this call cancelled it, false if it had
         *         already run or been cancelled.
         */
        bool cancel();

      private:
        friend class EventQueue;
        struct Record;
        explicit Handle(std::shared_ptr<Record> rec) : rec_(std::move(rec)) {}
        std::shared_ptr<Record> rec_;
    };

    EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * @pre when >= now()
     */
    Handle schedule(SimTime when, Callback cb, int priority = prioDefault);

    /** Schedule @p cb to run @p delay after now. @pre delay >= 0 */
    Handle scheduleIn(SimTime delay, Callback cb, int priority = prioDefault);

    /** Number of live (non-cancelled, not yet run) events. */
    std::size_t pending() const { return *live_; }

    /** True when no live events remain. */
    bool empty() const { return *live_ == 0; }

    /**
     * Run the next live event.
     * @return false when no live event remains.
     */
    bool step();

    /**
     * Run events until the queue drains or the next event lies beyond
     * @p limit (events exactly at @p limit run).
     *
     * @return the current time after the last executed event.
     */
    SimTime run(SimTime limit = maxTime);

    /** Total number of events executed since construction. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Entry
    {
        SimTime when;
        int priority;
        std::uint64_t seq;
        std::shared_ptr<Handle::Record> rec;
    };
    struct EntryOrder
    {
        bool operator()(const Entry &a, const Entry &b) const;
    };

    SimTime now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    /// Shared with handle records so Handle::cancel can maintain it.
    std::shared_ptr<std::size_t> live_;
    std::priority_queue<Entry, std::vector<Entry>, EntryOrder> heap_;
};

} // namespace sim
} // namespace gpump

#endif // GPUMP_SIM_EVENT_HH
