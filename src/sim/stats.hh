/**
 * @file
 * Lightweight statistics package.
 *
 * Components declare named statistics against a StatRegistry; the
 * harness dumps them as text or CSV at the end of a run.  Three stat
 * kinds cover the simulator's needs:
 *  - Scalar:       a single accumulating value (counts, sums);
 *  - Distribution: streaming moments plus min/max (Welford);
 *  - Histogram:    fixed-width bins with under/overflow.
 */

#ifndef GPUMP_SIM_STATS_HH
#define GPUMP_SIM_STATS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace gpump {
namespace sim {

class StatRegistry;

/** Common base: every stat has a dotted path name and a description. */
class Stat
{
  public:
    /** Registers with @p registry; the registry must outlive the
     *  stat, which unregisters itself on destruction. */
    Stat(StatRegistry &registry, std::string name, std::string desc);
    virtual ~Stat();

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return name_; }
    const std::string &description() const { return desc_; }

    /** Render this stat's value(s) into @p os, one line per value. */
    virtual void dump(std::ostream &os) const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

  private:
    StatRegistry *registry_;
    std::string name_;
    std::string desc_;
};

/** A single accumulating double. */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator++() { value_ += 1.0; return *this; }
    void set(double v) { value_ = v; }
    double value() const { return value_; }

    void dump(std::ostream &os) const override;
    void reset() override { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** Streaming sample statistics: count, sum, min, max, mean, stddev. */
class Distribution : public Stat
{
  public:
    using Stat::Stat;

    /** Record one sample. */
    void sample(double v);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? mean_ : 0.0; }
    /** Population standard deviation. */
    double stddev() const;

    void dump(std::ostream &os) const override;
    void reset() override;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/** Fixed-width-bin histogram over [lo, hi) with under/overflow bins. */
class Histogram : public Stat
{
  public:
    /**
     * @param lo inclusive lower bound of the binned range.
     * @param hi exclusive upper bound; must exceed @p lo.
     * @param bins number of equal-width bins; must be positive.
     */
    Histogram(StatRegistry &registry, std::string name, std::string desc,
              double lo, double hi, std::size_t bins);

    void sample(double v);

    std::uint64_t count() const { return count_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    const std::vector<std::uint64_t> &bins() const { return bins_; }

    void dump(std::ostream &os) const override;
    void reset() override;

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t count_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
};

/**
 * Registry of stats.  Stats register themselves at construction and
 * unregister at destruction; the registry does not own them (they are
 * members of their components) but must outlive every registered
 * stat, since ~Stat calls back into remove().
 */
class StatRegistry
{
  public:
    /** Register @p stat; name collisions are a programming error. */
    void add(Stat *stat);

    /** Remove @p stat (called from Stat's owner on destruction). */
    void remove(Stat *stat);

    /** Look up a stat by full dotted name; nullptr if absent. */
    Stat *find(const std::string &name) const;

    /** All registered stats in registration order. */
    const std::vector<Stat *> &all() const { return stats_; }

    /** Dump every stat as "name value # description" text lines. */
    void dump(std::ostream &os) const;

    /** Reset every stat. */
    void resetAll();

  private:
    std::vector<Stat *> stats_;
};

} // namespace sim
} // namespace gpump

#endif // GPUMP_SIM_STATS_HH
