#include "sim/stats.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace gpump {
namespace sim {

Stat::Stat(StatRegistry &registry, std::string name, std::string desc)
    : registry_(&registry), name_(std::move(name)), desc_(std::move(desc))
{
    registry.add(this);
}

Stat::~Stat()
{
    // Unregister so a stat destroyed before its registry (including a
    // derived constructor that throws after the base registered the
    // object) cannot leave a dangling pointer behind.
    registry_->remove(this);
}

void
Scalar::dump(std::ostream &os) const
{
    os << name() << " " << value_ << " # " << description() << "\n";
}

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    // Welford's online update.
    double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
}

double
Distribution::stddev() const
{
    if (count_ < 2)
        return 0.0;
    return std::sqrt(m2_ / static_cast<double>(count_));
}

void
Distribution::dump(std::ostream &os) const
{
    os << name() << ".count " << count_ << " # " << description() << "\n";
    os << name() << ".mean " << mean() << "\n";
    os << name() << ".stddev " << stddev() << "\n";
    os << name() << ".min " << min() << "\n";
    os << name() << ".max " << max() << "\n";
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
    mean_ = 0.0;
    m2_ = 0.0;
}

Histogram::Histogram(StatRegistry &registry, std::string name,
                     std::string desc, double lo, double hi,
                     std::size_t bins)
    : Stat(registry, std::move(name), std::move(desc)),
      lo_(lo), hi_(hi), bins_(bins, 0)
{
    GPUMP_ASSERT(hi > lo, "histogram range is empty");
    GPUMP_ASSERT(bins > 0, "histogram needs at least one bin");
}

void
Histogram::sample(double v)
{
    ++count_;
    if (v < lo_) {
        ++underflow_;
        return;
    }
    if (v >= hi_) {
        ++overflow_;
        return;
    }
    double width = (hi_ - lo_) / static_cast<double>(bins_.size());
    auto idx = static_cast<std::size_t>((v - lo_) / width);
    idx = std::min(idx, bins_.size() - 1);
    ++bins_[idx];
}

void
Histogram::dump(std::ostream &os) const
{
    os << name() << ".count " << count_ << " # " << description() << "\n";
    os << name() << ".underflow " << underflow_ << "\n";
    double width = (hi_ - lo_) / static_cast<double>(bins_.size());
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        os << name() << ".bin[" << lo_ + width * static_cast<double>(i)
           << "," << lo_ + width * static_cast<double>(i + 1) << ") "
           << bins_[i] << "\n";
    }
    os << name() << ".overflow " << overflow_ << "\n";
}

void
Histogram::reset()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    count_ = 0;
    underflow_ = 0;
    overflow_ = 0;
}

void
StatRegistry::add(Stat *stat)
{
    GPUMP_ASSERT(stat != nullptr, "null stat registered");
    GPUMP_ASSERT(find(stat->name()) == nullptr,
                 "duplicate stat name '%s'", stat->name().c_str());
    stats_.push_back(stat);
}

void
StatRegistry::remove(Stat *stat)
{
    stats_.erase(std::remove(stats_.begin(), stats_.end(), stat),
                 stats_.end());
}

Stat *
StatRegistry::find(const std::string &name) const
{
    for (Stat *s : stats_) {
        if (s->name() == name)
            return s;
    }
    return nullptr;
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const Stat *s : stats_)
        s->dump(os);
}

void
StatRegistry::resetAll()
{
    for (Stat *s : stats_)
        s->reset();
}

} // namespace sim
} // namespace gpump
