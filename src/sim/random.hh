/**
 * @file
 * Deterministic pseudo-random number generation for simulations.
 *
 * The simulator must be reproducible: the same seed must produce the
 * same schedule on every platform and standard library.  We therefore
 * avoid std::{mt19937,distributions} (whose outputs are not pinned
 * across implementations for all distributions) and implement
 * xoshiro256** plus the handful of distributions the models need.
 */

#ifndef GPUMP_SIM_RANDOM_HH
#define GPUMP_SIM_RANDOM_HH

#include <array>
#include <cstdint>

namespace gpump {
namespace sim {

/**
 * xoshiro256** generator (Blackman & Vigna) with SplitMix64 seeding.
 *
 * Fast, high-quality and fully portable.  One instance per simulation;
 * components draw from the simulation's generator so that a single
 * seed pins the entire run.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Re-seed in place, restoring a deterministic state. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /**
     * Uniform integer in [0, n).
     *
     * Uses rejection sampling, so the result is exactly uniform.
     * @pre n > 0
     */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller (deterministic, no cache). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Lognormal parameterised by its *linear-domain* mean and
     * coefficient of variation.
     *
     * This is the natural parameterisation for thread-block durations:
     * the mean is the calibrated duration from the kernel profile and
     * the CV expresses run-to-run variability.  cv == 0 degenerates to
     * the deterministic mean.
     *
     * @pre mean > 0, cv >= 0
     */
    double lognormal(double mean, double cv);

    /** Exponential with the given mean. @pre mean > 0 */
    double exponential(double mean);

    /**
     * Fork a child generator with an independent stream.
     *
     * Used to give each process/workload its own stream so that adding
     * a component does not perturb the draws seen by the others.
     */
    Rng fork();

  private:
    std::array<std::uint64_t, 4> state_;
};

} // namespace sim
} // namespace gpump

#endif // GPUMP_SIM_RANDOM_HH
