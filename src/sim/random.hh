/**
 * @file
 * Deterministic pseudo-random number generation for simulations.
 *
 * The simulator must be reproducible: the same seed must produce the
 * same schedule on every platform and standard library.  We therefore
 * avoid std::{mt19937,distributions} (whose outputs are not pinned
 * across implementations for all distributions) and implement
 * xoshiro256** plus the handful of distributions the models need.
 *
 * Every distribution consumes a FIXED number of raw draws per sample
 * (uniform/exponential: 1, normal/lognormal: 2).  That invariant is
 * what makes the batched fill* APIs below bit-identical to sequential
 * single-sample calls: a batch of n samples consumes exactly the
 * draws the n sequential calls would have, in the same order, and
 * performs the same per-sample arithmetic — only the per-call
 * parameter setup (the lognormal's (mu, sigma) solve, the normal's
 * scaling) is hoisted out of the loop.
 */

#ifndef GPUMP_SIM_RANDOM_HH
#define GPUMP_SIM_RANDOM_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace gpump {
namespace sim {

/**
 * xoshiro256** generator (Blackman & Vigna) with SplitMix64 seeding.
 *
 * Fast, high-quality and fully portable.  One instance per simulation;
 * components draw from the simulation's generator so that a single
 * seed pins the entire run.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Re-seed in place, restoring a deterministic state. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /**
     * Uniform integer in [0, n).
     *
     * Uses rejection sampling, so the result is exactly uniform.
     * @pre n > 0
     */
    std::uint64_t uniformInt(std::uint64_t n);

    /**
     * Uniform integer in [lo, hi] inclusive. @pre lo <= hi
     *
     * The range width is computed in unsigned 64-bit arithmetic, so
     * ranges spanning most (or all) of the int64 domain — where
     * `hi - lo + 1` overflows a signed 64-bit integer — are handled
     * exactly; [INT64_MIN, INT64_MAX] degenerates to a raw draw.
     */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller (deterministic, no cache). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * The Box-Muller transform on two unit-interval draws.
     *
     * A zero @p u1 (which uniform() produces with probability 2^-53)
     * is remapped to 2^-53, the smallest nonzero value uniform() can
     * return, so the logarithm — and therefore normal(), lognormal()
     * and every duration sampled from them — can never be infinite.
     * The remap (rather than a rejection loop) keeps the per-sample
     * draw count fixed, which the batched fill* APIs rely on.
     */
    static double boxMuller(double u1, double u2);

    /**
     * Lognormal parameterised by its *linear-domain* mean and
     * coefficient of variation.
     *
     * This is the natural parameterisation for thread-block durations:
     * the mean is the calibrated duration from the kernel profile and
     * the CV expresses run-to-run variability.  cv == 0 degenerates to
     * the deterministic mean.
     *
     * @pre mean > 0, cv >= 0
     */
    double lognormal(double mean, double cv);

    /** Exponential with the given mean. @pre mean > 0 */
    double exponential(double mean);

    /** @name Batched draws
     * Fill out[0..n) with samples.  Each produces the exact bit
     * pattern the corresponding n sequential single-sample calls
     * would have produced (same raw-draw consumption, same per-sample
     * arithmetic), while hoisting the per-call parameter setup out of
     * the loop — the issue loop's amortization win when sampling a
     * wave of thread-block durations from one kernel profile.
     * @{ */
    void fillUniform(double *out, std::size_t n);
    void fillNormal(double *out, std::size_t n, double mean,
                    double stddev);
    /** @pre mean > 0, cv >= 0 */
    void fillLognormal(double *out, std::size_t n, double mean,
                       double cv);
    /** @pre mean > 0 */
    void fillExponential(double *out, std::size_t n, double mean);
    /** @} */

    /**
     * Fork a child generator with an independent stream.
     *
     * Used to give each process/workload its own stream so that adding
     * a component does not perturb the draws seen by the others.
     */
    Rng fork();

  private:
    std::array<std::uint64_t, 4> state_;
};

} // namespace sim
} // namespace gpump

#endif // GPUMP_SIM_RANDOM_HH
