#include "sim/config.hh"

#include <cerrno>
#include <cstdlib>

#include "sim/logging.hh"

namespace gpump {
namespace sim {

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

void
Config::set(const std::string &key, double value)
{
    values_[key] = strformat("%.17g", value);
}

void
Config::set(const std::string &key, std::int64_t value)
{
    values_[key] = strformat("%lld", static_cast<long long>(value));
}

void
Config::set(const std::string &key, bool value)
{
    values_[key] = value ? "true" : "false";
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

bool
Config::parse(const std::string &token)
{
    auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    values_[token.substr(0, eq)] = token.substr(eq + 1);
    return true;
}

void
Config::parseAll(const std::vector<std::string> &tokens)
{
    for (const auto &t : tokens) {
        if (!parse(t))
            fatal("malformed config token '%s' (expected key=value)",
                  t.c_str());
    }
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

double
Config::getDouble(const std::string &key, double def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (errno != 0 || end == it->second.c_str() || *end != '\0')
        fatal("config key '%s' has non-numeric value '%s'",
              key.c_str(), it->second.c_str());
    return v;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(it->second.c_str(), &end, 0);
    if (errno != 0 || end == it->second.c_str() || *end != '\0')
        fatal("config key '%s' has non-integer value '%s'",
              key.c_str(), it->second.c_str());
    return static_cast<std::int64_t>(v);
}

bool
Config::getBool(const std::string &key, bool def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    fatal("config key '%s' has non-boolean value '%s'",
          key.c_str(), v.c_str());
}

void
Config::merge(const Config &overrides)
{
    for (const auto &kv : overrides.values_)
        values_[kv.first] = kv.second;
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &kv : values_)
        out.push_back(kv.first);
    return out;
}

void
Config::dump(std::ostream &os) const
{
    for (const auto &kv : values_)
        os << kv.first << " = " << kv.second << "\n";
}

std::string
Config::fingerprint() const
{
    // Escape the separators so distinct configs can never render to
    // the same fingerprint (values may contain '=' or ';').
    auto escape = [](const std::string &s, std::string &out) {
        for (char c : s) {
            if (c == '\\' || c == '=' || c == ';')
                out += '\\';
            out += c;
        }
    };
    std::string out;
    for (const auto &kv : values_) {
        escape(kv.first, out);
        out += '=';
        escape(kv.second, out);
        out += ';';
    }
    return out;
}

} // namespace sim
} // namespace gpump
