/**
 * @file
 * Fundamental simulation types: time, identifiers and unit helpers.
 *
 * All simulated time is kept as a signed 64-bit count of nanoseconds.
 * A signed representation makes interval arithmetic (deltas, slacks)
 * safe, and 64-bit nanoseconds cover ~292 years of simulated time,
 * far beyond any experiment in this repository.
 */

#ifndef GPUMP_SIM_TYPES_HH
#define GPUMP_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace gpump {
namespace sim {

/** Simulated time in nanoseconds. */
using SimTime = std::int64_t;

/** Sentinel for "never" / unbounded horizons. */
constexpr SimTime maxTime = std::numeric_limits<SimTime>::max();

/** @name Unit constructors
 *  Convert human-friendly units into SimTime nanoseconds.
 *  Double-precision inputs are rounded to the nearest nanosecond.
 *  @{
 */
constexpr SimTime
nanoseconds(std::int64_t n)
{
    return n;
}

constexpr SimTime
microseconds(double us)
{
    return static_cast<SimTime>(us * 1e3 + (us >= 0 ? 0.5 : -0.5));
}

constexpr SimTime
milliseconds(double ms)
{
    return static_cast<SimTime>(ms * 1e6 + (ms >= 0 ? 0.5 : -0.5));
}

constexpr SimTime
seconds(double s)
{
    return static_cast<SimTime>(s * 1e9 + (s >= 0 ? 0.5 : -0.5));
}
/** @} */

/** @name Unit extractors
 *  Convert SimTime back to floating-point human units.
 *  @{
 */
constexpr double
toMicroseconds(SimTime t)
{
    return static_cast<double>(t) / 1e3;
}

constexpr double
toMilliseconds(SimTime t)
{
    return static_cast<double>(t) / 1e6;
}

constexpr double
toSeconds(SimTime t)
{
    return static_cast<double>(t) / 1e9;
}
/** @} */

/**
 * Time needed to move @p bytes at @p bytes_per_second, rounded up to
 * a whole nanosecond so that zero-cost transfers cannot be fabricated
 * by rounding.
 */
constexpr SimTime
transferTime(double bytes, double bytes_per_second)
{
    if (bytes <= 0.0)
        return 0;
    double ns = bytes / bytes_per_second * 1e9;
    SimTime t = static_cast<SimTime>(ns);
    return (static_cast<double>(t) < ns) ? t + 1 : t;
}

/** Identifier of a GPU context (one per process). */
using ContextId = std::int32_t;

/** Identifier of an SM inside the execution engine. */
using SmId = std::int32_t;

/** Index of a Kernel Status Register inside the KSRT. */
using KsrIndex = std::int32_t;

/** Identifier of a simulated process. */
using ProcessId = std::int32_t;

/** Invalid-value sentinels for the identifier types above. */
constexpr ContextId invalidContext = -1;
constexpr SmId invalidSm = -1;
constexpr KsrIndex invalidKsr = -1;
constexpr ProcessId invalidProcess = -1;

} // namespace sim
} // namespace gpump

#endif // GPUMP_SIM_TYPES_HH
