#include "sim/event.hh"

#include <utility>

#include "sim/logging.hh"

namespace gpump {
namespace sim {

/**
 * Shared cancellation record.  The callback lives here so that
 * cancelling an event also releases whatever the callback captured.
 * The record shares the queue's live-event counter so cancellation
 * can maintain it without holding a pointer back to the queue.
 */
struct EventQueue::Handle::Record
{
    EventQueue::Callback callback;
    std::shared_ptr<std::size_t> live;
    bool cancelled = false;
    bool done = false;
};

bool
EventQueue::Handle::pending() const
{
    return rec_ && !rec_->cancelled && !rec_->done;
}

bool
EventQueue::Handle::cancel()
{
    if (!pending())
        return false;
    rec_->cancelled = true;
    rec_->callback = nullptr;
    --*rec_->live;
    return true;
}

bool
EventQueue::EntryOrder::operator()(const Entry &a, const Entry &b) const
{
    // std::priority_queue is a max-heap; invert to pop the smallest.
    if (a.when != b.when)
        return a.when > b.when;
    if (a.priority != b.priority)
        return a.priority > b.priority;
    return a.seq > b.seq;
}

EventQueue::EventQueue()
    : live_(std::make_shared<std::size_t>(0))
{
}

EventQueue::Handle
EventQueue::schedule(SimTime when, Callback cb, int priority)
{
    GPUMP_ASSERT(when >= now_,
                 "event scheduled in the past (when=%lld now=%lld)",
                 static_cast<long long>(when), static_cast<long long>(now_));
    GPUMP_ASSERT(cb != nullptr, "event scheduled with null callback");

    auto rec = std::make_shared<Handle::Record>();
    rec->callback = std::move(cb);
    rec->live = live_;
    heap_.push(Entry{when, priority, seq_++, rec});
    ++*live_;
    return Handle(std::move(rec));
}

EventQueue::Handle
EventQueue::scheduleIn(SimTime delay, Callback cb, int priority)
{
    GPUMP_ASSERT(delay >= 0, "negative event delay %lld",
                 static_cast<long long>(delay));
    return schedule(now_ + delay, std::move(cb), priority);
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        Entry top = heap_.top();
        heap_.pop();
        if (top.rec->cancelled)
            continue; // live counter already adjusted by cancel()
        now_ = top.when;
        top.rec->done = true;
        --*live_;
        ++executed_;
        Callback cb = std::move(top.rec->callback);
        top.rec->callback = nullptr;
        cb();
        return true;
    }
    return false;
}

SimTime
EventQueue::run(SimTime limit)
{
    while (!heap_.empty()) {
        // Drop cancelled entries without advancing time.
        if (heap_.top().rec->cancelled) {
            heap_.pop();
            continue;
        }
        if (heap_.top().when > limit)
            break;
        step();
    }
    return now_;
}

} // namespace sim
} // namespace gpump
