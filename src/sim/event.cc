#include "sim/event.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace gpump {
namespace sim {

namespace {

/** Compaction only pays off once the queue is big enough to matter. */
constexpr std::size_t compactionMinEntries = 64;

/** Smallest refill chunk. */
constexpr std::size_t refillMin = 32;

/** Up to this many future entries the refill takes everything in one
 *  sort, skipping the selection passes; typical simulator runs hold
 *  a few dozen live events and always hit this path. */
constexpr std::size_t smallQueue = 1024;

/** Sorted-insert ceiling for the bottom: beyond this many pending
 *  entries the upper half is spilled back to the future, keeping the
 *  memmove cost of below-boundary scheduling bounded. */
constexpr std::size_t spillLimit = 256;

constexpr std::uint64_t maxKey = ~0ull;

/** Initial capacity of the slab and both tiers: growing a vector of
 *  live slots relocates every callback, so start big enough that
 *  typical runs never pay it. */
constexpr std::size_t initialCapacity = 128;

} // namespace

EventQueue::EventQueue()
{
    slots_.reserve(initialCapacity);
    bottom_.reserve(initialCapacity);
    future_.reserve(initialCapacity);
}

std::uint32_t
EventQueue::acquireSlot(Callback &&cb)
{
    std::uint32_t slot;
    if (freeHead_ != noSlot) {
        slot = freeHead_;
        freeHead_ = slots_[slot].nextFree;
    } else {
        GPUMP_ASSERT(slots_.size() < noSlot, "event slot slab exhausted");
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
    }
    slots_[slot].callback = std::move(cb);
    return slot;
}

void
EventQueue::releaseSlot(std::uint32_t slot)
{
    // Slab-generation sanity: a released slot must be a real slab cell
    // and must not still hold a callback (cancel/step clear it first,
    // so a live callback here means a double release).
    GPUMP_AUDIT(slot < slots_.size(),
                "slot %u released beyond the %zu-cell slab",
                slot, slots_.size());
    GPUMP_AUDIT(slots_[slot].callback == nullptr,
                "slot %u released while its callback is still armed "
                "(double release or missed cancel)", slot);
    slots_[slot].nextFree = freeHead_;
    freeHead_ = slot;
}

void
EventQueue::cancelSlot(std::uint32_t slot)
{
    // Invalidate the entry (and all handles) by bumping the
    // generation, and release the captures right away.  The slot is
    // recycled when its dead entry is popped over or compacted out.
    GPUMP_AUDIT(slot < slots_.size(),
                "cancel of slot %u beyond the %zu-cell slab", slot,
                slots_.size());
    GPUMP_AUDIT(slots_[slot].gen != ~0u,
                "slot %u generation counter about to wrap "
                "(stale handles would revalidate)", slot);
    ++slots_[slot].gen;
    slots_[slot].callback = nullptr;
    ++deadEntries_;
    compactIfWorthIt();
}

void
EventQueue::compactIfWorthIt()
{
    // Sweep dead entries once they outnumber the live ones; otherwise
    // a cancelled far-future event would occupy the queue until its
    // timestamp came up, which for workloads that cancel most of what
    // they schedule (preemption-heavy runs) means unbounded growth.
    if (heapEntries() < compactionMinEntries ||
        deadEntries_ * 2 <= heapEntries())
        return;
    // Drop the consumed prefix first so only inspectable entries
    // remain, then filter both tiers.  remove_if keeps the relative
    // order, so the bottom stays sorted.
    bottom_.erase(bottom_.begin(),
                  bottom_.begin() +
                      static_cast<std::ptrdiff_t>(bottomPos_));
    bottomPos_ = 0;
    auto sweep = [this](std::vector<Entry> &entries) {
        auto live_end = std::remove_if(
            entries.begin(), entries.end(), [this](const Entry &e) {
                if (!entryDead(e))
                    return false;
                releaseSlot(e.slot);
                return true;
            });
        entries.erase(live_end, entries.end());
    };
    sweep(bottom_);
    sweep(future_);
    deadEntries_ = 0;
}

void
EventQueue::insertEntry(const Entry &e)
{
    if (!keyBefore(e.keyHi, e.keyLo, boundaryHi_, boundaryLo_)) {
        future_.push_back(e);
        return;
    }
    auto pos = std::upper_bound(
        bottom_.begin() + static_cast<std::ptrdiff_t>(bottomPos_),
        bottom_.end(), e, FiresBefore());
    auto ins = bottom_.insert(pos, e);
    // Two-tier ordering: a below-boundary insert must land in sorted
    // position (its neighbours bracket it).  Catches a comparator or
    // boundary regression at the insert, not replays later.
    GPUMP_AUDIT(
        (ins == bottom_.begin() + static_cast<std::ptrdiff_t>(bottomPos_) ||
         !keyBefore(e.keyHi, e.keyLo, (ins - 1)->keyHi, (ins - 1)->keyLo)) &&
            (ins + 1 == bottom_.end() ||
             !keyBefore((ins + 1)->keyHi, (ins + 1)->keyLo, e.keyHi,
                        e.keyLo)),
        "sorted-bottom insert out of order (when=%llu)",
        static_cast<unsigned long long>(e.keyHi));
    if (bottom_.size() - bottomPos_ > spillLimit)
        spillBottom();
}

void
EventQueue::spillBottom()
{
    // Keep the near half sorted, hand the far half back to the future
    // and tighten the boundary to the spill point.
    std::size_t pending = bottom_.size() - bottomPos_;
    auto mid = bottom_.begin() +
        static_cast<std::ptrdiff_t>(bottomPos_ + pending / 2);
    boundaryHi_ = mid->keyHi;
    boundaryLo_ = mid->keyLo;
    future_.insert(future_.end(), mid, bottom_.end());
    bottom_.erase(mid, bottom_.end());
}

void
EventQueue::refillBottom()
{
    // Move the smallest chunk of the future into the bottom.  Taking
    // an eighth amortizes the O(n) selection to a constant number of
    // comparisons per event while keeping the bottom small enough
    // that below-boundary sorted inserts stay cheap.
    std::size_t n = future_.size();
    std::size_t take = n <= smallQueue ? n : std::max(refillMin, n / 8);
    if (take < n) {
        std::nth_element(future_.begin(),
                         future_.begin() +
                             static_cast<std::ptrdiff_t>(take),
                         future_.end(), FiresBefore());
        boundaryHi_ = future_[take].keyHi;
        boundaryLo_ = future_[take].keyLo;
    } else {
        boundaryHi_ = maxKey;
        boundaryLo_ = maxKey;
    }
    bottom_.assign(future_.begin(),
                   future_.begin() + static_cast<std::ptrdiff_t>(take));
    future_.erase(future_.begin(),
                  future_.begin() + static_cast<std::ptrdiff_t>(take));
    std::sort(bottom_.begin(), bottom_.end(), FiresBefore());
    bottomPos_ = 0;
#if GPUMP_AUDIT_ENABLED
    // Two-tier ordering after a refill: the bottom is sorted and every
    // entry left in the future belongs at or beyond the new boundary.
    // O(n) — audit builds trade throughput for machine-checked
    // structure.
    for (std::size_t i = 1; i < bottom_.size(); ++i) {
        GPUMP_AUDIT(!keyBefore(bottom_[i].keyHi, bottom_[i].keyLo,
                               bottom_[i - 1].keyHi, bottom_[i - 1].keyLo),
                    "refilled bottom not sorted at index %zu", i);
    }
    for (std::size_t i = 0; i < future_.size(); ++i) {
        GPUMP_AUDIT(!keyBefore(future_[i].keyHi, future_[i].keyLo,
                               boundaryHi_, boundaryLo_),
                    "future entry %zu fires below the refill boundary "
                    "(the bottom would skip it)", i);
    }
#endif
}

const EventQueue::Entry *
EventQueue::peekFront()
{
    for (;;) {
        if (bottomPos_ < bottom_.size()) {
            const Entry &e = bottom_[bottomPos_];
            if (!entryDead(e))
                return &e;
            releaseSlot(e.slot);
            ++bottomPos_;
            --deadEntries_;
            continue;
        }
        bottom_.clear();
        bottomPos_ = 0;
        if (future_.empty()) {
            // Drained: subsequent schedules sorted-insert into the
            // bottom directly (and spill if they pile up).
            boundaryHi_ = maxKey;
            boundaryLo_ = maxKey;
            return nullptr;
        }
        refillBottom();
    }
}

EventQueue::Handle
EventQueue::schedule(SimTime when, Callback cb, int priority)
{
    return doSchedule(when, seq_++, std::move(cb), priority);
}

EventQueue::Handle
EventQueue::scheduleWithSeq(SimTime when, std::uint64_t seq, Callback cb,
                            int priority)
{
    GPUMP_ASSERT(seq < seq_, "sequence %llu was never reserved",
                 static_cast<unsigned long long>(seq));
    return doSchedule(when, seq, std::move(cb), priority);
}

EventQueue::Handle
EventQueue::doSchedule(SimTime when, std::uint64_t seq, Callback &&cb,
                       int priority)
{
    GPUMP_ASSERT(when >= now_,
                 "event scheduled in the past (when=%lld now=%lld)",
                 static_cast<long long>(when), static_cast<long long>(now_));
    GPUMP_ASSERT(cb != nullptr, "event scheduled with null callback");
    GPUMP_ASSERT(priority >= -priorityBias && priority < priorityBias,
                 "event priority %d outside the 16-bit key range",
                 priority);
    GPUMP_ASSERT(seq <= maxSeq, "sequence space exhausted");

    std::uint32_t slot = acquireSlot(std::move(cb));
    std::uint32_t gen = slots_[slot].gen;
    std::uint64_t key_lo =
        (static_cast<std::uint64_t>(
             static_cast<std::uint32_t>(priority + priorityBias))
         << 48) |
        seq;
    insertEntry(Entry{static_cast<std::uint64_t>(when), key_lo, slot, gen});
    return Handle(this, slot, gen);
}

EventQueue::Handle
EventQueue::scheduleIn(SimTime delay, Callback cb, int priority)
{
    GPUMP_ASSERT(delay >= 0, "negative event delay %lld",
                 static_cast<long long>(delay));
    return schedule(now_ + delay, std::move(cb), priority);
}

bool
EventQueue::step()
{
    const Entry *front = peekFront();
    if (front == nullptr)
        return false;
    const Entry top = *front;
    // The queue's headline guarantee, checked at the moment it could
    // break: events fire in nondecreasing time order.
    GPUMP_AUDIT(top.when() >= now_,
                "event fires at %lld but time already reached %lld "
                "(two-tier ordering violated)",
                static_cast<long long>(top.when()),
                static_cast<long long>(now_));
    GPUMP_AUDIT(slots_[top.slot].callback != nullptr,
                "front entry's slot %u has no callback "
                "(generation bookkeeping corrupt)", top.slot);
    ++bottomPos_; // consume before the callback can mutate the queue
    now_ = top.when();
    ++slots_[top.slot].gen; // the event is no longer pending
    Callback cb = std::move(slots_[top.slot].callback);
    releaseSlot(top.slot);
    ++executed_;
    cb();
    return true;
}

#if GPUMP_AUDIT_ENABLED
void
EventQueue::auditCorruptFrontKeyForTest()
{
    const Entry *front = peekFront();
    GPUMP_ASSERT(front != nullptr,
                 "no pending entry to corrupt for the audit test");
    // peekFront() leaves the live front at bottom_[bottomPos_]; zero
    // its firing key so the next step() sees an event "before" the
    // current time and the two-tier ordering audit trips.
    bottom_[bottomPos_].keyHi = 0;
}
#endif

SimTime
EventQueue::run(SimTime limit)
{
    for (;;) {
        const Entry *front = peekFront();
        if (front == nullptr || front->when() > limit)
            break;
        // step()'s re-peek is O(1): the front was just validated.
        step();
    }
    return now_;
}

} // namespace sim
} // namespace gpump
