/**
 * @file
 * Key-value configuration store.
 *
 * Every tunable in the simulator reads its value through a Config so
 * that benches and examples can override any parameter from the
 * command line as "key=value" tokens without recompiling.  Typed
 * accessors validate and convert; absent keys fall back to the
 * caller-provided default (the model's published value).  Keys under
 * a config namespace claimed by a registered scheduling scheme
 * ("dss.*", "adaptive.*", ...) are additionally validated against
 * the scheme's declared tunables at construction time — unknown or
 * ill-typed ones are hard errors, not silent no-ops (see
 * core/registry.hh).
 */

#ifndef GPUMP_SIM_CONFIG_HH
#define GPUMP_SIM_CONFIG_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace gpump {
namespace sim {

/** String-keyed configuration with typed, validated accessors. */
class Config
{
  public:
    Config() = default;

    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);
    void set(const std::string &key, double value);
    void set(const std::string &key, std::int64_t value);
    void set(const std::string &key, bool value);

    /** True when @p key has been set. */
    bool has(const std::string &key) const;

    /**
     * Parse one "key=value" token.
     * @return false (leaving the config untouched) if the token has
     *         no '=' or an empty key.
     */
    bool parse(const std::string &token);

    /**
     * Parse a list of "key=value" tokens, e.g. trailing CLI arguments.
     * Tokens that fail to parse raise fatal().
     */
    void parseAll(const std::vector<std::string> &tokens);

    /** @name Typed getters with defaults
     *  Return the stored value converted to the requested type, or
     *  @p def when the key is absent.  Conversion failures raise
     *  fatal() naming the offending key.
     *  @{
     */
    std::string getString(const std::string &key,
                          const std::string &def) const;
    double getDouble(const std::string &key, double def) const;
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    bool getBool(const std::string &key, bool def) const;
    /** @} */

    /**
     * Overlay @p overrides on top of this config: every key set in
     * @p overrides replaces (or adds to) the current value.  Used by
     * the harness to apply per-request overrides to a base config.
     */
    void merge(const Config &overrides);

    /** All keys in sorted order (for reproducible dumps). */
    std::vector<std::string> keys() const;

    /** Dump as "key = value" lines. */
    void dump(std::ostream &os) const;

    /**
     * Canonical one-line "k=v;..." rendering of the full config, in
     * sorted key order.  Equal configs have equal fingerprints, so it
     * can key caches of config-dependent results.
     */
    std::string fingerprint() const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace sim
} // namespace gpump

#endif // GPUMP_SIM_CONFIG_HH
