#include "gpu/gpu_config.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace gpump {
namespace gpu {

GpuParams
GpuParams::fromConfig(const sim::Config &cfg)
{
    GpuParams p;
    p.numSms = static_cast<int>(cfg.getInt("gpu.num_sms", p.numSms));
    p.clockGhz = cfg.getDouble("gpu.clock_ghz", p.clockGhz);
    p.pipelinesPerSm =
        static_cast<int>(cfg.getInt("gpu.pipelines_per_sm",
                                    p.pipelinesPerSm));
    p.regsPerSm =
        static_cast<int>(cfg.getInt("gpu.regs_per_sm", p.regsPerSm));
    p.maxThreadsPerSm =
        static_cast<int>(cfg.getInt("gpu.max_threads_per_sm",
                                    p.maxThreadsPerSm));
    p.maxTbSlotsPerSm =
        static_cast<int>(cfg.getInt("gpu.max_tb_slots_per_sm",
                                    p.maxTbSlotsPerSm));
    p.smSetupLatency = sim::microseconds(
        cfg.getDouble("gpu.sm_setup_us",
                      sim::toMicroseconds(p.smSetupLatency)));
    p.contextLoadLatency = sim::microseconds(
        cfg.getDouble("gpu.context_load_us",
                      sim::toMicroseconds(p.contextLoadLatency)));
    p.pipelineDrainLatency = sim::microseconds(
        cfg.getDouble("gpu.pipeline_drain_us",
                      sim::toMicroseconds(p.pipelineDrainLatency)));
    p.commandSubmitLatency = sim::microseconds(
        cfg.getDouble("gpu.command_submit_us",
                      sim::toMicroseconds(p.commandSubmitLatency)));
    p.tbTimeCv = cfg.getDouble("gpu.tb_time_cv", p.tbTimeCv);
    p.numHwQueues =
        static_cast<int>(cfg.getInt("gpu.num_hw_queues", p.numHwQueues));

    if (p.numSms <= 0 || p.regsPerSm <= 0 || p.maxThreadsPerSm <= 0 ||
        p.maxTbSlotsPerSm <= 0 || p.numHwQueues <= 0) {
        sim::fatal("invalid GPU parameters (counts must be positive)");
    }
    if (p.tbTimeCv < 0)
        sim::fatal("gpu.tb_time_cv must be non-negative");
    return p;
}

int
selectShmemConfig(const trace::KernelProfile &k, const GpuParams &p)
{
    GPUMP_ASSERT(!p.shmemConfigs.empty(), "no shared memory configurations");
    GPUMP_ASSERT(std::is_sorted(p.shmemConfigs.begin(),
                                p.shmemConfigs.end()),
                 "shared memory configurations must be ascending");
    for (int cfg : p.shmemConfigs) {
        if (k.sharedMemPerTb <= cfg)
            return cfg;
    }
    sim::fatal("kernel %s needs %d B of shared memory per TB; the largest "
               "SM configuration is %d B",
               k.fullName().c_str(), k.sharedMemPerTb,
               p.shmemConfigs.back());
}

int
maxTbsPerSm(const trace::KernelProfile &k, const GpuParams &p)
{
    GPUMP_ASSERT(k.threadsPerTb > 0, "kernel %s has no threads",
                 k.fullName().c_str());

    int limit = p.maxTbSlotsPerSm;
    if (k.regsPerTb > 0)
        limit = std::min(limit, p.regsPerSm / k.regsPerTb);
    if (k.sharedMemPerTb > 0) {
        int cfg = selectShmemConfig(k, p);
        limit = std::min(limit, cfg / k.sharedMemPerTb);
    }
    limit = std::min(limit, p.maxThreadsPerSm / k.threadsPerTb);

    if (limit <= 0) {
        sim::fatal("kernel %s does not fit on an SM (regs=%d shmem=%d "
                   "threads=%d)",
                   k.fullName().c_str(), k.regsPerTb, k.sharedMemPerTb,
                   k.threadsPerTb);
    }
    return limit;
}

std::int64_t
smContextBytes(const trace::KernelProfile &k, const GpuParams &p)
{
    return k.contextBytesPerTb() *
        static_cast<std::int64_t>(maxTbsPerSm(k, p));
}

double
smResourceFraction(const trace::KernelProfile &k, const GpuParams &p)
{
    double storage =
        static_cast<double>(p.regsPerSm) *
            static_cast<double>(trace::bytesPerRegister) +
        static_cast<double>(p.shmemConfigs.back());
    return static_cast<double>(smContextBytes(k, p)) / storage;
}

} // namespace gpu
} // namespace gpump
