/**
 * @file
 * Hardware command queues and the command dispatcher (Section 2.2).
 *
 * The CPU issues commands into hardware queues (NVIDIA Hyper-Q).  The
 * dispatcher inspects the head of every queue and issues commands to
 * the matching engine: kernel launches to the execution engine (via
 * the scheduling framework's per-context command buffers) and data
 * transfers to the transfer engine.  After issuing from a queue the
 * dispatcher stops inspecting it until the engine reports the command
 * complete, which preserves the in-order semantics of the stream that
 * feeds the queue.
 */

#ifndef GPUMP_GPU_DISPATCHER_HH
#define GPUMP_GPU_DISPATCHER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "gpu/command.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace gpump {
namespace gpu {

class TransferEngine;

/**
 * Consumer of kernel-launch commands.  Implemented by the scheduling
 * framework (core/framework.hh): offerKernel places the command into
 * the per-context command buffer when that buffer is free.
 */
class KernelSink
{
  public:
    virtual ~KernelSink() = default;

    /**
     * Try to accept @p cmd.
     * @return false when the context's command buffer is occupied;
     *         the dispatcher will retry after kernelBufferFreed().
     */
    virtual bool offerKernel(const CommandPtr &cmd) = 0;
};

/** One hardware command queue (one Hyper-Q channel). */
class CommandQueue
{
  public:
    CommandQueue(int index, sim::ContextId ctx)
        : index_(index), ctx_(ctx)
    {
    }

    int index() const { return index_; }
    sim::ContextId ctx() const { return ctx_; }
    bool busy() const { return busy_; }
    bool empty() const { return fifo_.empty(); }
    std::size_t depth() const { return fifo_.size(); }
    const CommandPtr &head() const { return fifo_.front(); }

  private:
    friend class Dispatcher;
    int index_;
    sim::ContextId ctx_;
    bool busy_ = false;          ///< issued command still in flight
    std::deque<CommandPtr> fifo_;
};

/** The command dispatcher. */
class Dispatcher
{
  public:
    Dispatcher(sim::Simulation &sim, TransferEngine &transfer_engine);

    /** Wire the execution-engine side (called once at assembly). */
    void setKernelSink(KernelSink *sink);

    /**
     * Create a hardware queue for @p ctx.  Raises fatal() when all
     * hardware queues are in use.
     *
     * @param max_queues the Hyper-Q queue count (GpuParams).
     */
    CommandQueue *createQueue(sim::ContextId ctx, int max_queues);

    /**
     * Push @p cmd into @p queue.  Stamps the device-wide arrival
     * sequence number and timestamp, then inspects queues.
     */
    void enqueue(CommandQueue *queue, const CommandPtr &cmd);

    /**
     * Stamp a driver-originated command (context save/restore,
     * residency swap) with the device-wide arrival sequence number and
     * timestamp without routing it through a hardware queue.  Such
     * commands are handed straight to an engine by their producer; the
     * stamp keeps priority tie-breaking and wait-time accounting
     * consistent with workload commands.
     */
    void stampInternal(const CommandPtr &cmd);

    /** Engine notification: the command issued from @p queue finished. */
    void onCommandCompleted(CommandQueue *queue);

    /** Framework notification: a command buffer slot opened up. */
    void onKernelBufferFreed();

    /** Number of commands sitting in hardware queues. */
    std::size_t pendingCommands() const;

  private:
    void inspect();

    sim::Simulation *sim_;
    TransferEngine *transferEngine_;
    KernelSink *kernelSink_ = nullptr;
    std::vector<std::unique_ptr<CommandQueue>> queues_;
    std::uint64_t nextSeq_ = 0;
    bool inspecting_ = false;
    bool reinspect_ = false;
    /** Queues whose head is actionable (!busy && !empty), maintained
     *  incrementally so inspect() can skip the all-queues scan when
     *  there is provably nothing to dispatch. */
    std::size_t readyQueues_ = 0;

    sim::Scalar dispatched_;
    sim::Scalar kernelStalls_;
};

} // namespace gpu
} // namespace gpump

#endif // GPUMP_GPU_DISPATCHER_HH
