#include "gpu/command.hh"

#include "sim/logging.hh"

namespace gpump {
namespace gpu {

std::shared_ptr<Command>
Command::makeKernel(sim::ContextId ctx, int priority,
                    const trace::KernelProfile *profile)
{
    GPUMP_ASSERT(profile != nullptr, "kernel command without a profile");
    auto cmd = std::make_shared<Command>();
    cmd->kind = Kind::KernelLaunch;
    cmd->ctx = ctx;
    cmd->priority = priority;
    cmd->profile = profile;
    return cmd;
}

std::shared_ptr<Command>
Command::makeMemcpy(sim::ContextId ctx, int priority, Kind direction,
                    std::int64_t bytes)
{
    GPUMP_ASSERT(direction != Kind::KernelLaunch,
                 "memcpy command with kernel kind");
    GPUMP_ASSERT(bytes >= 0, "negative memcpy size");
    auto cmd = std::make_shared<Command>();
    cmd->kind = direction;
    cmd->ctx = ctx;
    cmd->priority = priority;
    cmd->bytes = bytes;
    return cmd;
}

} // namespace gpu
} // namespace gpump
