#include "gpu/command.hh"

#include <new>

#include "core/audit.hh"
#include "gpu/gpu_context.hh"
#include "sim/logging.hh"

namespace gpump {
namespace gpu {

void
Command::complete()
{
    if (notifyCtx != nullptr)
        notifyCtx->commandCompleted();
    if (onComplete)
        onComplete();
}

void
Command::dispose(Command *c) noexcept
{
    // A disposed command must really be unreferenced: a nonzero count
    // here means a CommandPtr still points at the block about to be
    // recycled, and the next acquire() would alias it.
    GPUMP_AUDIT(c->refs_ == 0,
                "command disposed with %u live references", c->refs_);
    // Both allocation paths (pool blocks and the plain-new heap
    // factories) are raw ::operator new storage, so explicit
    // destruction + operator delete / recycle covers both.
    CommandPool *pool = c->pool_;
    c->~Command();
    if (pool != nullptr)
        pool->recycle(c);
    else
        ::operator delete(c);
}

namespace {

/** Shared validation + field initialization of the pooled and heap
 *  factories, so the two paths cannot drift apart.  @p alloc runs
 *  after validation, so a panicking argument never leaks a block. @{ */
template <typename Alloc>
Command *
makeKernelWith(Alloc &&alloc, sim::ContextId ctx, int priority,
               const trace::KernelProfile *profile)
{
    GPUMP_ASSERT(profile != nullptr, "kernel command without a profile");
    Command *cmd = alloc();
    cmd->kind = Command::Kind::KernelLaunch;
    cmd->ctx = ctx;
    cmd->priority = priority;
    cmd->profile = profile;
    return cmd;
}

template <typename Alloc>
Command *
makeMemcpyWith(Alloc &&alloc, sim::ContextId ctx, int priority,
               Command::Kind direction, std::int64_t bytes)
{
    GPUMP_ASSERT(direction != Command::Kind::KernelLaunch,
                 "memcpy command with kernel kind");
    GPUMP_ASSERT(bytes >= 0, "negative memcpy size");
    Command *cmd = alloc();
    cmd->kind = direction;
    cmd->ctx = ctx;
    cmd->priority = priority;
    cmd->bytes = bytes;
    return cmd;
}
/** @} */

Command *
heapCommand()
{
    return new (::operator new(sizeof(Command))) Command;
}

} // namespace

CommandPtr
Command::makeKernel(sim::ContextId ctx, int priority,
                    const trace::KernelProfile *profile)
{
    return CommandPtr::adopt(
        makeKernelWith(heapCommand, ctx, priority, profile));
}

CommandPtr
Command::makeMemcpy(sim::ContextId ctx, int priority, Kind direction,
                    std::int64_t bytes)
{
    return CommandPtr::adopt(
        makeMemcpyWith(heapCommand, ctx, priority, direction, bytes));
}

CommandPool::~CommandPool()
{
    for (void *block : free_)
        ::operator delete(block);
}

Command *
CommandPool::acquire()
{
    void *block;
    if (!free_.empty()) {
        block = free_.back();
        free_.pop_back();
    } else {
        block = ::operator new(sizeof(Command));
        ++allocated_;
    }
    Command *cmd = new (block) Command;
    cmd->pool_ = this;
    // Free-list discipline: the pool can never have handed out more
    // blocks than it ever allocated, or recycle() double-stacked one.
    GPUMP_AUDIT(free_.size() <= allocated_,
                "command pool free list (%zu) outgrew its %zu "
                "allocations (double recycle)",
                free_.size(), allocated_);
    return cmd;
}

CommandPtr
CommandPool::makeKernel(sim::ContextId ctx, int priority,
                        const trace::KernelProfile *profile)
{
    return CommandPtr::adopt(makeKernelWith(
        [this] { return acquire(); }, ctx, priority, profile));
}

CommandPtr
CommandPool::makeMemcpy(sim::ContextId ctx, int priority,
                        Command::Kind direction, std::int64_t bytes)
{
    return CommandPtr::adopt(makeMemcpyWith(
        [this] { return acquire(); }, ctx, priority, direction, bytes));
}

} // namespace gpu
} // namespace gpump
