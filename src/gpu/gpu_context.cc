#include "gpu/gpu_context.hh"

#include <utility>

#include "sim/logging.hh"

namespace gpump {
namespace gpu {

GpuContext::GpuContext(sim::ContextId id, sim::ProcessId owner,
                       int priority, memory::FrameAllocator &frames)
    : id_(id), owner_(owner), priority_(priority), pageTable_(frames)
{
}

void
GpuContext::commandCompleted()
{
    GPUMP_ASSERT(outstanding_ > 0,
                 "context %d completed more commands than it enqueued",
                 id_);
    --outstanding_;
    if (outstanding_ == 0 && !waiters_.empty()) {
        // Waiters may enqueue new work from inside the callback; move
        // the list out first so re-registration is safe.  The firing
        // list is a member so its capacity survives across syncs (one
        // device synchronisation per replay is hot-path work); a
        // nested completion cycle — possible only if a waiter's
        // callback synchronously drives another full enqueue/complete
        // round — falls back to a local list.
        if (firingWaiters_) {
            std::vector<std::function<void()>> ready;
            ready.swap(waiters_);
            for (auto &cb : ready)
                cb();
            return;
        }
        firingWaiters_ = true;
        firingScratch_.swap(waiters_);
        for (auto &cb : firingScratch_)
            cb();
        firingScratch_.clear();
        firingWaiters_ = false;
    }
}

void
GpuContext::waitIdle(std::function<void()> cb)
{
    if (idle()) {
        cb();
        return;
    }
    waiters_.push_back(std::move(cb));
}

} // namespace gpu
} // namespace gpump
