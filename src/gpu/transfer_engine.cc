#include "gpu/transfer_engine.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace gpump {
namespace gpu {

TransferEngine::Policy
TransferEngine::policyFromName(const std::string &name)
{
    if (name == "fcfs")
        return Policy::Fcfs;
    if (name == "priority")
        return Policy::Priority;
    sim::fatal("unknown transfer engine policy '%s'", name.c_str());
}

TransferEngine::TransferEngine(sim::Simulation &sim, memory::PcieBus &bus,
                               Policy policy)
    : sim_(&sim), bus_(&bus), policy_(policy),
      transfersDone_(sim.stats(), "xfer.transfers", "completed transfers"),
      waitTime_(sim.stats(), "xfer.wait_us",
                "queueing delay of transfers (us)"),
      serviceTime_(sim.stats(), "xfer.service_us",
                   "on-the-wire time of transfers (us)")
{
}

void
TransferEngine::setCompletionNotifier(std::function<void(CommandQueue *)> fn)
{
    notifier_ = std::move(fn);
}

sim::SimTime
TransferEngine::modeledBacklog() const
{
    sim::SimTime t = 0;
    if (current_ != nullptr)
        t += bus_->transferDuration(current_->bytes);
    for (const CommandPtr &cmd : queue_)
        t += bus_->transferDuration(cmd->bytes);
    return t;
}

void
TransferEngine::submit(const CommandPtr &cmd)
{
    GPUMP_ASSERT(cmd && cmd->isTransfer(),
                 "transfer engine given a non-transfer command");
    queue_.push_back(cmd);
    if (!busy())
        startNext();
}

void
TransferEngine::startNext()
{
    GPUMP_ASSERT(!busy(), "transfer engine started while busy");
    if (queue_.empty())
        return;

    auto pick = queue_.begin();
    if (policy_ == Policy::Priority) {
        // Highest priority wins; FCFS (sequence order) within a level.
        pick = std::max_element(
            queue_.begin(), queue_.end(),
            [](const CommandPtr &a, const CommandPtr &b) {
                if (a->priority != b->priority)
                    return a->priority < b->priority;
                return a->seq > b->seq; // earlier seq preferred
            });
    }
    current_ = *pick;
    queue_.erase(pick);

    waitTime_.sample(sim::toMicroseconds(sim_->now() -
                                         current_->enqueuedAt));
    sim::SimTime duration = bus_->transferDuration(current_->bytes);
    serviceTime_.sample(sim::toMicroseconds(duration));
    bus_->recordTransfer(current_->bytes, duration);

    sim_->events().scheduleIn(
        duration, [this] { finishCurrent(); }, sim::prioCompletion);
}

void
TransferEngine::finishCurrent()
{
    GPUMP_ASSERT(current_ != nullptr,
                 "transfer completion with nothing in flight");
    CommandPtr cmd = std::move(current_);
    current_ = nullptr;
    ++transfersDone_;

    // Re-enable the hardware queue first so in-order successors are
    // visible to the dispatcher, then run the software callback.
    if (notifier_ && cmd->queue)
        notifier_(cmd->queue);
    cmd->complete();

    if (!busy())
        startNext();
}

} // namespace gpu
} // namespace gpump
