#include "gpu/stream.hh"

#include <utility>

#include "sim/logging.hh"

namespace gpump {
namespace gpu {

Stream::Stream(sim::Simulation &sim, GpuContext &ctx,
               Dispatcher &dispatcher, CommandQueue *queue,
               sim::SimTime submit_latency)
    : sim_(&sim), ctx_(&ctx), dispatcher_(&dispatcher), queue_(queue),
      submitLatency_(submit_latency)
{
    GPUMP_ASSERT(queue != nullptr, "stream bound to null queue");
    GPUMP_ASSERT(queue->ctx() == ctx.id(),
                 "stream bound to another context's queue");
}

void
Stream::enqueue(CommandPtr cmd)
{
    GPUMP_ASSERT(cmd != nullptr, "null command enqueued");
    GPUMP_ASSERT(cmd->ctx == ctx_->id(),
                 "command context %d enqueued on stream of context %d",
                 cmd->ctx, ctx_->id());

    ctx_->commandEnqueued();
    cmd->notifyCtx = ctx_;
    submitPipe_.push_back(std::move(cmd));

    // Same-time events fire in scheduling order, so a burst of
    // enqueues stays in order through the submission delay and the
    // fired event always matches the pipe head.
    sim_->events().scheduleIn(submitLatency_, [this] { submitHead(); },
                              sim::prioDriver);
}

void
Stream::submitHead()
{
    GPUMP_ASSERT(!submitPipe_.empty(),
                 "submission event fired on an empty pipe");
    CommandPtr cmd = std::move(submitPipe_.front());
    submitPipe_.pop_front();
    dispatcher_->enqueue(queue_, cmd);
}

} // namespace gpu
} // namespace gpump
