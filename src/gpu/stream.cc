#include "gpu/stream.hh"

#include <utility>

#include "sim/logging.hh"

namespace gpump {
namespace gpu {

Stream::Stream(sim::Simulation &sim, GpuContext &ctx,
               Dispatcher &dispatcher, CommandQueue *queue,
               sim::SimTime submit_latency)
    : sim_(&sim), ctx_(&ctx), dispatcher_(&dispatcher), queue_(queue),
      submitLatency_(submit_latency)
{
    GPUMP_ASSERT(queue != nullptr, "stream bound to null queue");
    GPUMP_ASSERT(queue->ctx() == ctx.id(),
                 "stream bound to another context's queue");
}

void
Stream::enqueue(CommandPtr cmd)
{
    GPUMP_ASSERT(cmd != nullptr, "null command enqueued");
    GPUMP_ASSERT(cmd->ctx == ctx_->id(),
                 "command context %d enqueued on stream of context %d",
                 cmd->ctx, ctx_->id());

    ctx_->commandEnqueued();
    auto user_cb = std::move(cmd->onComplete);
    GpuContext *ctx = ctx_;
    cmd->onComplete = [ctx, user_cb = std::move(user_cb)] {
        ctx->commandCompleted();
        if (user_cb)
            user_cb();
    };

    // Same-time events fire in scheduling order, so a burst of
    // enqueues stays in order through the submission delay.
    sim_->events().scheduleIn(
        submitLatency_,
        [this, cmd] { dispatcher_->enqueue(queue_, cmd); },
        sim::prioDriver);
}

} // namespace gpu
} // namespace gpump
