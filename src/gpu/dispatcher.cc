#include "gpu/dispatcher.hh"

#include <utility>

#include "gpu/transfer_engine.hh"
#include "sim/logging.hh"

namespace gpump {
namespace gpu {

Dispatcher::Dispatcher(sim::Simulation &sim, TransferEngine &transfer_engine)
    : sim_(&sim), transferEngine_(&transfer_engine),
      dispatched_(sim.stats(), "dispatcher.commands",
                  "commands issued to engines"),
      kernelStalls_(sim.stats(), "dispatcher.kernel_stalls",
                    "kernel issues deferred on a full command buffer")
{
}

void
Dispatcher::setKernelSink(KernelSink *sink)
{
    GPUMP_ASSERT(kernelSink_ == nullptr, "kernel sink already wired");
    kernelSink_ = sink;
}

CommandQueue *
Dispatcher::createQueue(sim::ContextId ctx, int max_queues)
{
    if (static_cast<int>(queues_.size()) >= max_queues) {
        sim::fatal("out of hardware command queues (%d in use)",
                   max_queues);
    }
    queues_.push_back(std::make_unique<CommandQueue>(
        static_cast<int>(queues_.size()), ctx));
    return queues_.back().get();
}

void
Dispatcher::enqueue(CommandQueue *queue, const CommandPtr &cmd)
{
    GPUMP_ASSERT(queue != nullptr && cmd != nullptr,
                 "enqueue with null queue/command");
    cmd->seq = nextSeq_++;
    cmd->enqueuedAt = sim_->now();
    cmd->queue = queue;
    if (!queue->busy_ && queue->fifo_.empty())
        ++readyQueues_; // idle and empty -> head now actionable
    queue->fifo_.push_back(cmd);
    inspect();
}

void
Dispatcher::stampInternal(const CommandPtr &cmd)
{
    GPUMP_ASSERT(cmd != nullptr, "stamp of null command");
    GPUMP_ASSERT(cmd->queue == nullptr,
                 "internal command already bound to a hardware queue");
    cmd->seq = nextSeq_++;
    cmd->enqueuedAt = sim_->now();
}

void
Dispatcher::onCommandCompleted(CommandQueue *queue)
{
    GPUMP_ASSERT(queue != nullptr, "completion for null queue");
    GPUMP_ASSERT(queue->busy_, "completion for a queue with nothing issued");
    queue->busy_ = false;
    if (!queue->fifo_.empty())
        ++readyQueues_;
    inspect();
}

void
Dispatcher::onKernelBufferFreed()
{
    inspect();
}

std::size_t
Dispatcher::pendingCommands() const
{
    std::size_t n = 0;
    for (const auto &q : queues_)
        n += q->fifo_.size();
    return n;
}

void
Dispatcher::inspect()
{
    // Engines and the framework call back into the dispatcher
    // synchronously; flatten the recursion into a retry loop.
    if (inspecting_) {
        reinspect_ = true;
        return;
    }
    inspecting_ = true;
    do {
        reinspect_ = false;
        // readyQueues_ counts queues whose head is actionable (not
        // busy, non-empty); when it is zero — the common case after a
        // completion that empties its queue — the scan over every
        // hardware queue can be skipped entirely.  A scan with zero
        // ready queues would have dispatched nothing, so skipping it
        // is behaviour-preserving (kernel stalls leave their queue
        // counted ready and are rescanned on onKernelBufferFreed).
        if (readyQueues_ == 0)
            break;
        for (auto &q : queues_) {
            if (q->busy_ || q->fifo_.empty())
                continue;
            const CommandPtr &head = q->fifo_.front();
            if (head->isKernel()) {
                GPUMP_ASSERT(kernelSink_ != nullptr,
                             "kernel command with no execution engine");
                if (kernelSink_->offerKernel(head)) {
                    q->busy_ = true;
                    q->fifo_.pop_front();
                    --readyQueues_;
                    ++dispatched_;
                } else {
                    ++kernelStalls_;
                }
            } else {
                CommandPtr cmd = std::move(q->fifo_.front());
                q->busy_ = true;
                q->fifo_.pop_front();
                --readyQueues_;
                ++dispatched_;
                transferEngine_->submit(cmd);
            }
        }
    } while (reinspect_);
    inspecting_ = false;
}

} // namespace gpu
} // namespace gpump
