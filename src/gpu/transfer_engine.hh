/**
 * @file
 * The data transfer engine (Section 2.2).
 *
 * Executes memcpy commands over the PCIe bus, one at a time.  The DMA
 * queue can be drained FCFS (the baseline) or by priority (the NPQ
 * transfer-engine policy used in the Figure 5/6 experiments; the
 * paper keeps kernel and transfer scheduling policies independent).
 */

#ifndef GPUMP_GPU_TRANSFER_ENGINE_HH
#define GPUMP_GPU_TRANSFER_ENGINE_HH

#include <deque>
#include <functional>
#include <string>

#include "gpu/command.hh"
#include "memory/pcie.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"

namespace gpump {
namespace gpu {

class CommandQueue;

/** The GPU's DMA / copy engine. */
class TransferEngine
{
  public:
    /** Queueing discipline of the DMA queue. */
    enum class Policy
    {
        Fcfs,     ///< arrival order
        Priority, ///< highest process priority first, FCFS within
    };

    /** Parse "fcfs" / "priority"; raises fatal() otherwise. */
    static Policy policyFromName(const std::string &name);

    TransferEngine(sim::Simulation &sim, memory::PcieBus &bus,
                   Policy policy);

    /**
     * Engines notify the dispatcher through this hook so the command
     * queue the transfer came from can be re-enabled.  Wired once at
     * assembly.
     */
    void setCompletionNotifier(std::function<void(CommandQueue *)> fn);

    /** Accept a memcpy command from the dispatcher. */
    void submit(const CommandPtr &cmd);

    bool busy() const { return current_ != nullptr; }
    std::size_t queued() const { return queue_.size(); }
    Policy policy() const { return policy_; }

    /** The bus this engine drives (duration queries for cost models). */
    const memory::PcieBus &bus() const { return *bus_; }

    /**
     * Modeled time until everything currently ahead of a new FCFS
     * submission has drained: the full duration of the in-flight
     * transfer (the engine does not expose partial progress) plus the
     * durations of every queued command.  Under the priority policy a
     * high-priority submission may overtake parts of the queue, so
     * this is an upper bound there.  Used by the drain-vs-switch cost
     * models when context saves ride this engine
     * (gmem.contended_switch).
     */
    sim::SimTime modeledBacklog() const;

  private:
    void startNext();
    /** Completion event fired for the in-flight transfer.  The event
     *  captures only `this` (inline in the event slab); the command
     *  itself is owned by current_ until this runs. */
    void finishCurrent();

    sim::Simulation *sim_;
    memory::PcieBus *bus_;
    Policy policy_;
    std::function<void(CommandQueue *)> notifier_;
    std::deque<CommandPtr> queue_;
    CommandPtr current_;

    sim::Scalar transfersDone_;
    sim::Distribution waitTime_;
    sim::Distribution serviceTime_;
};

} // namespace gpu
} // namespace gpump

#endif // GPUMP_GPU_TRANSFER_ENGINE_HH
