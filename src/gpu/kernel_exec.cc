#include "gpu/kernel_exec.hh"

#include <algorithm>

#include "core/audit.hh"
#include "sim/logging.hh"

namespace gpump {
namespace gpu {

KernelExec::KernelExec(sim::KsrIndex ksr, CommandPtr cmd,
                       const GpuParams &params, int ptbq_capacity)
{
    assign(ksr, std::move(cmd), params, ptbq_capacity);
}

void
KernelExec::assign(sim::KsrIndex ksr, CommandPtr cmd,
                   const GpuParams &params, int ptbq_capacity)
{
    GPUMP_ASSERT(cmd != nullptr && cmd->isKernel(),
                 "KernelExec from non-kernel command");
    ksr_ = ksr;
    cmd_ = std::move(cmd);
    occupancy_ = maxTbsPerSm(*cmd_->profile, params);
    ctxBytesPerTb_ = cmd_->profile->contextBytesPerTb();
    totalTbs_ = cmd_->profile->numThreadBlocks;
    ptbqCapacity_ = ptbq_capacity;
    nextFresh_ = 0;
    completed_ = 0;
    running_ = 0;
    ptbq_.clear();
    restoreCredit_ = 0;
    restoreInFlight_ = 0;
    ++generation_;
    tokens = 0;
    hasBonusToken = false;
    smsHeld = 0;
    smsReserved = 0;
    startedIssuing = false;
    firstIssuedAt = 0;
    GPUMP_ASSERT(totalTbs_ > 0, "kernel %s with empty grid",
                 cmd_->profile->fullName().c_str());
}

int
KernelExec::takeFreshTb()
{
    GPUMP_ASSERT(hasFreshTbs(), "takeFreshTb with no fresh TBs left");
    return nextFresh_++;
}

PreemptedTb
KernelExec::takePreemptedTb()
{
    GPUMP_ASSERT(hasPreemptedTbs(), "takePreemptedTb on empty PTBQ");
    PreemptedTb tb = ptbq_.front();
    ptbq_.pop_front();
    // An uncredited take (inline-restore path) can shrink the queue
    // below the credit count; clamp so prefetched credit never
    // outlives the entries it was fetched for.
    if (restoreCredit_ > static_cast<int>(ptbq_.size()))
        restoreCredit_ = static_cast<int>(ptbq_.size());
    // Prefetched credit must never outlive the queue entries it was
    // fetched for — otherwise an SM issues a "restored" TB that has no
    // context behind it.
    GPUMP_AUDIT(restoreCredit_ >= 0 && restoreInFlight_ >= 0 &&
                    restoreCredit_ <= static_cast<int>(ptbq_.size()),
                "restore-credit accounting corrupt after take "
                "(credit=%d inflight=%d ptbq=%zu)",
                restoreCredit_, restoreInFlight_, ptbq_.size());
    return tb;
}

void
KernelExec::pushPreemptedTb(const PreemptedTb &tb)
{
    GPUMP_ASSERT(static_cast<int>(ptbq_.size()) < ptbqCapacity_,
                 "PTBQ overflow for kernel %s (capacity %d)",
                 profile().fullName().c_str(), ptbqCapacity_);
    ptbq_.push_back(tb);
}

void
KernelExec::restoreRequested(int n)
{
    GPUMP_ASSERT(n > 0, "empty restore request");
    GPUMP_ASSERT(restoreCredit_ + restoreInFlight_ + n <=
                     static_cast<int>(ptbq_.size()),
                 "restore request beyond the PTBQ for kernel %s",
                 profile().fullName().c_str());
    restoreInFlight_ += n;
}

void
KernelExec::restoreArrived(int n)
{
    GPUMP_ASSERT(n > 0 && restoreInFlight_ >= n,
                 "restore arrival of %d with %d in flight", n,
                 restoreInFlight_);
    restoreInFlight_ -= n;
    restoreCredit_ = std::min(restoreCredit_ + n,
                              static_cast<int>(ptbq_.size()));
    // The sum credit + inflight can transiently exceed the queue when
    // inline takes raced a staged fetch (the arrival clamp here is the
    // cleanup), but credit itself must never outgrow the entries it
    // covers.
    GPUMP_AUDIT(restoreCredit_ <= static_cast<int>(ptbq_.size()) &&
                    restoreInFlight_ >= 0,
                "restore-credit clamp failed on arrival "
                "(credit=%d inflight=%d ptbq=%zu)",
                restoreCredit_, restoreInFlight_, ptbq_.size());
}

bool
KernelExec::consumeRestoreCredit()
{
    if (restoreCredit_ <= 0)
        return false;
    --restoreCredit_;
    return true;
}

void
KernelExec::tbStarted()
{
    ++running_;
    GPUMP_ASSERT(running_ <= totalTbs_, "more TBs running than exist");
}

void
KernelExec::tbEnded(bool completed)
{
    GPUMP_ASSERT(running_ > 0, "tbEnded with no running TBs");
    --running_;
    if (completed) {
        ++completed_;
        GPUMP_ASSERT(completed_ <= totalTbs_,
                     "kernel %s completed more TBs than its grid",
                     profile().fullName().c_str());
    }
}

} // namespace gpu
} // namespace gpump
