/**
 * @file
 * GPU architecture parameters (Table 2) and the static-partitioning
 * occupancy model (Section 2.3).
 *
 * The defaults describe the NVIDIA GK110 / Tesla K20c configuration
 * the paper simulates: 13 SMs with 32 pipelines each, 65536 registers
 * and 2048 thread slots per SM, at most 16 resident thread blocks,
 * and 16/32/48 KB shared-memory configurations.
 */

#ifndef GPUMP_GPU_GPU_CONFIG_HH
#define GPUMP_GPU_GPU_CONFIG_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"
#include "sim/types.hh"
#include "trace/kernel_profile.hh"

namespace gpump {
namespace gpu {

/** Architecture and timing parameters of the modelled GPU. */
struct GpuParams
{
    /** @name Table 2 architecture parameters
     * @{ */
    int numSms = 13;
    double clockGhz = 0.706;
    int pipelinesPerSm = 32;
    int regsPerSm = 65536;
    int maxThreadsPerSm = 2048;
    int maxTbSlotsPerSm = 16;
    /** Selectable shared-memory configurations, ascending (bytes). */
    std::vector<int> shmemConfigs{16 * 1024, 32 * 1024, 48 * 1024};
    /** @} */

    /** @name Timing model knobs
     * @{ */
    /** SM driver setup of an SM before issuing thread blocks. */
    sim::SimTime smSetupLatency = sim::microseconds(1.0);
    /** Extra setup cost when the SM is re-targeted to a different
     *  context (loading context registers, flushing the TLB). */
    sim::SimTime contextLoadLatency = sim::microseconds(0.5);
    /** Pipeline drain before the context-save trap can run (precise
     *  exceptions, Section 3.2). */
    sim::SimTime pipelineDrainLatency = sim::microseconds(0.5);
    /** CPU-to-GPU command submission latency. */
    sim::SimTime commandSubmitLatency = sim::microseconds(5.0);
    /** Coefficient of variation of thread-block durations (lognormal);
     *  0 replays the profile means exactly. */
    double tbTimeCv = 0.0;
    /** Number of hardware command queues (Hyper-Q). */
    int numHwQueues = 32;
    /** @} */

    /** Build from config keys "gpu.*" with Table 2 defaults. */
    static GpuParams fromConfig(const sim::Config &cfg);
};

/**
 * The shared-memory configuration the SM uses for @p k: the first
 * (smallest) configuration that fits the kernel's per-TB usage
 * (paper, footnote 1).  Raises fatal() when none fits.
 */
int selectShmemConfig(const trace::KernelProfile &k, const GpuParams &p);

/**
 * Static-partitioning occupancy: how many thread blocks of @p k fit
 * on one SM, limited by the first fully used resource (registers,
 * shared memory, thread slots or TB slots).  Raises fatal() when even
 * a single TB does not fit.
 *
 * Reproduces the "TBs/SM" column of Table 1 for all 24 kernels.
 */
int maxTbsPerSm(const trace::KernelProfile &k, const GpuParams &p);

/**
 * Bytes of architectural state a fully occupied SM holds for @p k:
 * occupancy x (register allocation + shared-memory partition).
 * This is what the context-switch mechanism moves to memory.
 */
std::int64_t smContextBytes(const trace::KernelProfile &k,
                            const GpuParams &p);

/**
 * Fraction of the SM's context storage (register file plus largest
 * shared-memory configuration) that @p k occupies when fully
 * resident.  Reproduces the "Resour./SM %" column of Table 1.
 */
double smResourceFraction(const trace::KernelProfile &k,
                          const GpuParams &p);

} // namespace gpu
} // namespace gpump

#endif // GPUMP_GPU_GPU_CONFIG_HH
