/**
 * @file
 * Sm: one streaming multiprocessor of the execution engine.
 *
 * The SM holds the resident thread blocks of exactly one kernel
 * (static hardware partitioning, Section 2.3), the per-SM context
 * extension of Section 3.1 (context id / base page table registers,
 * modelled with a TLB that is flushed on re-targeting), and the
 * preemption state machine driven by the SM driver:
 *
 *     Idle -> Setup -> Running -> (Draining | Saving) -> ...
 *
 * Draining and Saving are the in-flight phases of the two preemption
 * mechanisms of Section 3.2.  The architectural SMST view (Idle /
 * Running / Reserved) is derived from this detailed state plus the
 * reserved flag.
 */

#ifndef GPUMP_GPU_SM_HH
#define GPUMP_GPU_SM_HH

#include <cstdint>
#include <vector>

#include "memory/page_table.hh"
#include "sim/event.hh"
#include "sim/types.hh"

namespace gpump {
namespace gpu {

class KernelExec;

/**
 * One thread block resident on an SM.
 *
 * Resident TBs do not own individual completion events: the SM keeps
 * them ordered by (endAt, seq) and arms exactly one event for the
 * earliest (the per-SM completion timeline), so the global event
 * queue holds O(SMs) completion events instead of O(resident TBs).
 */
struct ResidentTb
{
    /** Thread block index within its kernel's grid. */
    int tbIndex;
    /** When execution (including any restore prefix) began. */
    sim::SimTime startedAt;
    /** When the block completes if not preempted. */
    sim::SimTime endAt;
    /** FIFO sequence reserved at issue; the tie-break key that keeps
     *  same-instant completions firing in issue order across SMs,
     *  exactly as when every TB owned its own event. */
    std::uint64_t seq;
};

/** One streaming multiprocessor. */
class Sm
{
  public:
    /** Detailed execution state (see file comment). */
    enum class State
    {
        Idle,     ///< no kernel assigned
        Setup,    ///< SM driver configuring the SM for a kernel
        Running,  ///< executing thread blocks
        Draining, ///< reserved, running TBs to completion (mechanism 2)
        Saving,   ///< reserved, context being saved (mechanism 1)
    };

    /** Architectural state as stored in the SMST (Section 3.3). */
    enum class SmstState
    {
        Idle,
        Running,
        Reserved,
    };

    Sm(sim::SmId id, std::size_t tlb_entries);

    sim::SmId id() const { return id_; }

    /** @name State (written by the SM driver / framework)
     * @{ */
    State state = State::Idle;
    /** Kernel currently owning the SM (nullptr when Idle). */
    KernelExec *kernel = nullptr;
    /** Kernel the SM is reserved for (SMST "next" field). */
    KernelExec *nextKernel = nullptr;
    /** SMST reserved bit. */
    bool reserved = false;
    /** Thread blocks resident right now, ordered by (endAt, seq);
     *  the front one is the next to complete. */
    std::vector<ResidentTb> resident;
    /** Pending setup / save-completion event. */
    sim::EventQueue::Handle pendingEvent;
    /** The single armed completion event of the timeline (fires for
     *  resident.front(); cancelled on context-switch preemption). */
    sim::EventQueue::Handle completionEvent;
    /** Sequence number completionEvent is armed with (meaningful only
     *  while completionEvent is pending). */
    std::uint64_t armedSeq = 0;
    /** Bumped by clearKernel(): callbacks staged while the SM waited
     *  in Setup (e.g. a residency swap-in) capture the epoch and drop
     *  themselves when the assignment was unwound meanwhile. */
    std::uint64_t setupEpoch = 0;

    /** Insert an issued TB into the timeline, keeping (endAt, seq)
     *  order.  Occupancy is small (<= a few tens), so ordered insert
     *  beats a heap. */
    void insertResident(const ResidentTb &tb);
    /** Context whose state (context id register, base page table
     *  register, TLB) is loaded; persists across kernels of the same
     *  context so back-to-back launches avoid the reload cost. */
    sim::ContextId loadedContext = sim::invalidContext;
    /** @} */

    /** The SMST view of this SM. */
    SmstState smstState() const;

    /** True when a kernel is set up on this SM (any non-idle state). */
    bool busy() const { return state != State::Idle; }

    /** Per-SM TLB (flushed when re-targeted to another context). */
    memory::Tlb &tlb() { return tlb_; }

    /** Number of additional TBs that fit, given the current kernel's
     *  occupancy; 0 when idle or reserved. */
    int freeSlots() const;

    /** Drop all per-kernel state, returning to Idle.  The caller is
     *  responsible for having unwound resident TBs first. */
    void clearKernel();

  private:
    sim::SmId id_;
    memory::Tlb tlb_;
};

/** Printable SM state names (for logs and tests). */
const char *smStateName(Sm::State s);
const char *smstStateName(Sm::SmstState s);

} // namespace gpu
} // namespace gpump

#endif // GPUMP_GPU_SM_HH
