#include "gpu/sm.hh"

#include <algorithm>

#include "core/audit.hh"
#include "gpu/kernel_exec.hh"
#include "sim/logging.hh"

namespace gpump {
namespace gpu {

Sm::Sm(sim::SmId id, std::size_t tlb_entries)
    : id_(id), tlb_(tlb_entries)
{
}

Sm::SmstState
Sm::smstState() const
{
    if (reserved)
        return SmstState::Reserved;
    return busy() ? SmstState::Running : SmstState::Idle;
}

int
Sm::freeSlots() const
{
    if (!kernel || reserved || state == State::Saving)
        return 0;
    int occ = kernel->occupancy();
    int used = static_cast<int>(resident.size());
    return occ > used ? occ - used : 0;
}

void
Sm::insertResident(const ResidentTb &tb)
{
    auto pos = std::upper_bound(
        resident.begin(), resident.end(), tb,
        [](const ResidentTb &a, const ResidentTb &b) {
            if (a.endAt != b.endAt)
                return a.endAt < b.endAt;
            return a.seq < b.seq;
        });
    auto ins = resident.insert(pos, tb);
    // The drain/preempt paths walk `resident` front-to-back assuming
    // (endAt, seq) order; an out-of-order insert silently reorders
    // preemption victims.
    GPUMP_AUDIT((ins == resident.begin() ||
                 (ins - 1)->endAt < tb.endAt ||
                 ((ins - 1)->endAt == tb.endAt && (ins - 1)->seq < tb.seq)) &&
                    (ins + 1 == resident.end() ||
                     tb.endAt < (ins + 1)->endAt ||
                     (tb.endAt == (ins + 1)->endAt && tb.seq < (ins + 1)->seq)),
                "SM %d resident timeline out of (endAt,seq) order "
                "(endAt=%lld seq=%llu)",
                id_, static_cast<long long>(tb.endAt),
                static_cast<unsigned long long>(tb.seq));
}

void
Sm::clearKernel()
{
    GPUMP_ASSERT(resident.empty(),
                 "SM %d cleared with %zu resident TBs", id_,
                 resident.size());
    GPUMP_ASSERT(!completionEvent.pending(),
                 "SM %d cleared with an armed completion event", id_);
    kernel = nullptr;
    nextKernel = nullptr;
    reserved = false;
    state = State::Idle;
    pendingEvent = sim::EventQueue::Handle();
    completionEvent = sim::EventQueue::Handle();
    ++setupEpoch;
}

const char *
smStateName(Sm::State s)
{
    switch (s) {
      case Sm::State::Idle: return "Idle";
      case Sm::State::Setup: return "Setup";
      case Sm::State::Running: return "Running";
      case Sm::State::Draining: return "Draining";
      case Sm::State::Saving: return "Saving";
    }
    return "?";
}

const char *
smstStateName(Sm::SmstState s)
{
    switch (s) {
      case Sm::SmstState::Idle: return "Idle";
      case Sm::SmstState::Running: return "Running";
      case Sm::SmstState::Reserved: return "Reserved";
    }
    return "?";
}

} // namespace gpu
} // namespace gpump
