/**
 * @file
 * CUDA-style streams: the software work queues of the programming
 * model (Section 2.1).
 *
 * Commands pushed into one stream execute in order; the hardware
 * enforces this because a stream maps onto one hardware command queue
 * and the dispatcher issues at most one command per queue at a time.
 * The stream's job here is the CPU-side plumbing: stamping context
 * accounting, chaining completion callbacks and charging the
 * CPU-to-GPU submission latency.
 */

#ifndef GPUMP_GPU_STREAM_HH
#define GPUMP_GPU_STREAM_HH

#include "gpu/command.hh"
#include "gpu/dispatcher.hh"
#include "gpu/gpu_context.hh"
#include "sim/simulation.hh"

namespace gpump {
namespace gpu {

/** One software stream bound to one hardware command queue. */
class Stream
{
  public:
    /**
     * @param sim    simulation context.
     * @param ctx    owning GPU context.
     * @param dispatcher the device's command dispatcher.
     * @param queue  hardware queue this stream maps onto.
     * @param submit_latency CPU-to-GPU command submission latency.
     */
    Stream(sim::Simulation &sim, GpuContext &ctx, Dispatcher &dispatcher,
           CommandQueue *queue, sim::SimTime submit_latency);

    GpuContext &context() { return *ctx_; }

    /**
     * Enqueue @p cmd.  The command reaches the hardware queue after
     * the submission latency; its onComplete (if any) runs when the
     * command finishes on the device, after the context's outstanding
     * count has been decremented.
     */
    void enqueue(CommandPtr cmd);

  private:
    sim::Simulation *sim_;
    GpuContext *ctx_;
    Dispatcher *dispatcher_;
    CommandQueue *queue_;
    sim::SimTime submitLatency_;
};

} // namespace gpu
} // namespace gpump

#endif // GPUMP_GPU_STREAM_HH
