/**
 * @file
 * CUDA-style streams: the software work queues of the programming
 * model (Section 2.1).
 *
 * Commands pushed into one stream execute in order; the hardware
 * enforces this because a stream maps onto one hardware command queue
 * and the dispatcher issues at most one command per queue at a time.
 * The stream's job here is the CPU-side plumbing: stamping context
 * accounting, wiring the completion notification and charging the
 * CPU-to-GPU submission latency.
 *
 * Hot-path note: commands in the submission pipe (enqueued but not
 * yet past the submission latency) are owned by a FIFO inside the
 * stream, so the submission event captures only `this` — a trivially
 * copyable capture that stays inline in the event slab instead of
 * forcing the shared_ptr onto the heap-fallback path.  Events with
 * equal delay fire in scheduling order, so popping the FIFO head is
 * exactly the command the fired event was armed for.
 */

#ifndef GPUMP_GPU_STREAM_HH
#define GPUMP_GPU_STREAM_HH

#include <deque>

#include "gpu/command.hh"
#include "gpu/dispatcher.hh"
#include "gpu/gpu_context.hh"
#include "sim/simulation.hh"

namespace gpump {
namespace gpu {

/** One software stream bound to one hardware command queue. */
class Stream
{
  public:
    /**
     * @param sim    simulation context.
     * @param ctx    owning GPU context.
     * @param dispatcher the device's command dispatcher.
     * @param queue  hardware queue this stream maps onto.
     * @param submit_latency CPU-to-GPU command submission latency.
     */
    Stream(sim::Simulation &sim, GpuContext &ctx, Dispatcher &dispatcher,
           CommandQueue *queue, sim::SimTime submit_latency);

    GpuContext &context() { return *ctx_; }

    /**
     * Enqueue @p cmd.  The command reaches the hardware queue after
     * the submission latency; its onComplete (if any) runs when the
     * command finishes on the device, after the context's outstanding
     * count has been decremented (see Command::complete).
     */
    void enqueue(CommandPtr cmd);

  private:
    /** Submission latency elapsed: hand the pipe head to the
     *  dispatcher. */
    void submitHead();

    sim::Simulation *sim_;
    GpuContext *ctx_;
    Dispatcher *dispatcher_;
    CommandQueue *queue_;
    sim::SimTime submitLatency_;
    /** Commands in flight between enqueue() and the dispatcher. */
    std::deque<CommandPtr> submitPipe_;
};

} // namespace gpu
} // namespace gpump

#endif // GPUMP_GPU_STREAM_HH
