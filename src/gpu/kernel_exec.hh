/**
 * @file
 * KernelExec: one active kernel in the execution engine.
 *
 * Corresponds to a valid Kernel Status Register (KSR) entry augmented
 * with its GPU context id (Section 3.3): grid bookkeeping (how many
 * thread blocks remain to issue / complete), the kernel's occupancy
 * and context footprint, the Preempted Thread Block Queue contents,
 * and the policy-owned token count used by DSS.
 */

#ifndef GPUMP_GPU_KERNEL_EXEC_HH
#define GPUMP_GPU_KERNEL_EXEC_HH

#include <cstdint>
#include <deque>

#include "gpu/command.hh"
#include "gpu/gpu_config.hh"
#include "sim/types.hh"

namespace gpump {
namespace gpu {

/** Handler of a preempted thread block (one PTBQ entry): its id and
 *  how much execution time it still needs (the saved stack pointer in
 *  real hardware; remaining time in this timing model). */
struct PreemptedTb
{
    int tbIndex;
    sim::SimTime remaining;
};

/** One active kernel (a live KSRT entry). */
class KernelExec
{
  public:
    /**
     * @param ksr     KSRT slot this kernel occupies.
     * @param cmd     the kernel-launch command (grid, context,
     *                priority, completion callback).
     * @param params  architecture parameters for occupancy and
     *                context-size derivation.
     * @param ptbq_capacity PTBQ entries available to this kernel
     *                (NSMs x Tmax, Section 3.3).
     */
    KernelExec(sim::KsrIndex ksr, CommandPtr cmd, const GpuParams &params,
               int ptbq_capacity);

    /**
     * Reinitialize a recycled entry for a new kernel (same semantics
     * as constructing one).  The framework pools retired KernelExec
     * objects: a kernel launch happens once per trace op per replay,
     * and reassignment keeps the object's PTBQ storage instead of
     * paying an allocation per launch.
     */
    void assign(sim::KsrIndex ksr, CommandPtr cmd,
                const GpuParams &params, int ptbq_capacity);

    /** Drop the command reference before the object parks in the
     *  recycle pool (the command must be completable independently). */
    void releaseCommand() { cmd_.reset(); }

    /** @name Identity
     * @{ */
    sim::KsrIndex ksr() const { return ksr_; }
    const trace::KernelProfile &profile() const { return *cmd_->profile; }
    sim::ContextId ctx() const { return cmd_->ctx; }
    int priority() const { return cmd_->priority; }
    std::uint64_t seq() const { return cmd_->seq; }
    const CommandPtr &command() const { return cmd_; }
    /** @} */

    /** @name Static execution properties
     * @{ */
    /** Thread blocks of this kernel that fit on one SM. */
    int occupancy() const { return occupancy_; }
    /** Context bytes to save/restore per thread block. */
    std::int64_t contextBytesPerTb() const { return ctxBytesPerTb_; }
    int totalTbs() const { return totalTbs_; }
    /** @} */

    /** @name Thread-block issue bookkeeping
     * @{ */
    int issuedFresh() const { return nextFresh_; }
    int completed() const { return completed_; }
    int running() const { return running_; }
    bool hasFreshTbs() const { return nextFresh_ < totalTbs_; }
    bool hasPreemptedTbs() const { return !ptbq_.empty(); }
    /** True while the SM driver could issue a TB of this kernel. */
    bool hasIssuableTbs() const
    {
        return hasPreemptedTbs() || hasFreshTbs();
    }
    bool finished() const { return completed_ == totalTbs_; }
    std::size_t ptbqDepth() const { return ptbq_.size(); }

    /** Take the next fresh thread block index. @pre hasFreshTbs() */
    int takeFreshTb();

    /** Pop the oldest preempted TB. @pre hasPreemptedTbs() */
    PreemptedTb takePreemptedTb();

    /** Queue a preempted TB; panics if the PTBQ overflows (the sizing
     *  of Section 3.3 makes overflow impossible by construction). */
    void pushPreemptedTb(const PreemptedTb &tb);

    /** A TB of this kernel started executing on some SM. */
    void tbStarted();

    /** A TB of this kernel finished (or was preempted before
     *  completing: @p completed false). */
    void tbEnded(bool completed);
    /** @} */

    /** @name Restore staging (contended-switch / proactive prefetch)
     *
     * A PTBQ entry's saved context can be fetched back ahead of
     * re-issue: the framework stages a restore transfer (in flight),
     * and on arrival the entries gain restore *credit* — a credited
     * entry re-issues without paying the inline restore prefix.
     * Credit never exceeds the PTBQ depth, so prefetched state cannot
     * leak onto blocks saved by a later preemption.
     * @{ */
    /** Bumped by every assign(); lets async restore completions detect
     *  that the KernelExec was recycled for a different kernel. */
    std::uint64_t generation() const { return generation_; }
    int restoreCredit() const { return restoreCredit_; }
    int restoreInFlight() const { return restoreInFlight_; }
    /** A restore fetch covering @p n PTBQ entries was submitted. */
    void restoreRequested(int n);
    /** A fetch covering @p n entries landed: convert to credit. */
    void restoreArrived(int n);
    /** Consume one credit; false when none is available. */
    bool consumeRestoreCredit();
    /** @} */

    /** @name Policy-owned scratch state
     *
     * The scheduling policy is the only writer; the framework never
     * interprets these.
     * @{ */
    /** DSS token count (may go negative: debt, Section 3.4). */
    int tokens = 0;
    /** True while this kernel holds one of the r remainder tokens. */
    bool hasBonusToken = false;
    /** @} */

    /** @name SM accounting (maintained by the framework)
     * @{ */
    int smsHeld = 0;     ///< SMs currently set up for this kernel
    int smsReserved = 0; ///< SMs being preempted on this kernel's behalf
    bool startedIssuing = false; ///< first TB has been issued
    /** When the first TB was issued (meaningful once startedIssuing).
     *  Driver-observable service-time anchor for the measurement-fed
     *  schedulers (predict/observe.hh). */
    sim::SimTime firstIssuedAt = 0;
    /** @} */

  private:
    sim::KsrIndex ksr_;
    CommandPtr cmd_;
    int occupancy_;
    std::int64_t ctxBytesPerTb_;
    int totalTbs_;
    int ptbqCapacity_;
    int nextFresh_ = 0;
    int completed_ = 0;
    int running_ = 0;
    int restoreCredit_ = 0;
    int restoreInFlight_ = 0;
    std::uint64_t generation_ = 0;
    std::deque<PreemptedTb> ptbq_;
};

} // namespace gpu
} // namespace gpump

#endif // GPUMP_GPU_KERNEL_EXEC_HH
