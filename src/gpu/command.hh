/**
 * @file
 * GPU commands: what the CPU pushes through the command queues.
 *
 * The paper's command taxonomy (Section 2.1): kernel launches go to
 * the execution engine, data-transfer commands go to the transfer
 * engine.  Commands carry their context, their process priority and a
 * monotonically increasing sequence number that defines FCFS arrival
 * order across the whole device.
 *
 * Commands sit on the workload layer's per-event hot path: a
 * replaying process creates, routes and retires one per trace op per
 * replay, and each one changes hands many times (stream -> submission
 * pipe -> hardware queue -> engine -> completion).  CommandPtr is
 * therefore an intrusive, NON-atomic reference-counted pointer — the
 * simulation is single-threaded by design, so every copy is a plain
 * integer bump instead of the contended atomic a shared_ptr pays —
 * and CommandPool recycles the underlying blocks through a free list
 * so steady-state replay performs no heap allocation for commands
 * (see DESIGN.md §7).
 */

#ifndef GPUMP_GPU_COMMAND_HH
#define GPUMP_GPU_COMMAND_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/types.hh"
#include "trace/kernel_profile.hh"

namespace gpump {
namespace gpu {

class CommandQueue;
class CommandPool;
class GpuContext;
struct Command;

/**
 * Intrusive reference-counted handle to a Command.
 *
 * Semantics match shared_ptr where the simulator uses it (copy, move,
 * null tests, get/deref) but the count is a plain integer: commands
 * belong to exactly one single-threaded simulation and never cross
 * threads.  When the last handle drops, the command returns to its
 * CommandPool (or the heap for the pool-less factory helpers).
 */
class CommandPtr
{
  public:
    CommandPtr() noexcept = default;
    CommandPtr(std::nullptr_t) noexcept {}
    CommandPtr(const CommandPtr &other) noexcept : p_(other.p_)
    {
        retain();
    }
    CommandPtr(CommandPtr &&other) noexcept : p_(other.p_)
    {
        other.p_ = nullptr;
    }
    CommandPtr &operator=(const CommandPtr &other) noexcept
    {
        CommandPtr(other).swap(*this);
        return *this;
    }
    CommandPtr &operator=(CommandPtr &&other) noexcept
    {
        CommandPtr(std::move(other)).swap(*this);
        return *this;
    }
    CommandPtr &operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }
    ~CommandPtr() { release(); }

    void reset() noexcept
    {
        release();
        p_ = nullptr;
    }
    void swap(CommandPtr &other) noexcept { std::swap(p_, other.p_); }

    Command *get() const noexcept { return p_; }
    Command &operator*() const noexcept { return *p_; }
    Command *operator->() const noexcept { return p_; }
    explicit operator bool() const noexcept { return p_ != nullptr; }

    friend bool operator==(const CommandPtr &a, const CommandPtr &b) noexcept
    {
        return a.p_ == b.p_;
    }
    friend bool operator!=(const CommandPtr &a, const CommandPtr &b) noexcept
    {
        return a.p_ != b.p_;
    }
    friend bool operator==(const CommandPtr &a, std::nullptr_t) noexcept
    {
        return a.p_ == nullptr;
    }
    friend bool operator!=(const CommandPtr &a, std::nullptr_t) noexcept
    {
        return a.p_ != nullptr;
    }
    friend bool operator==(std::nullptr_t, const CommandPtr &a) noexcept
    {
        return a.p_ == nullptr;
    }
    friend bool operator!=(std::nullptr_t, const CommandPtr &a) noexcept
    {
        return a.p_ != nullptr;
    }

  private:
    friend struct Command;
    friend class CommandPool;

    /** Take ownership of a freshly constructed command (refs 0 -> 1). */
    static CommandPtr adopt(Command *c) noexcept;

    inline void retain() noexcept;
    inline void release() noexcept;

    Command *p_ = nullptr;
};

/** One command as seen by the hardware. */
struct Command
{
    enum class Kind
    {
        KernelLaunch,
        MemcpyH2D,
        MemcpyD2H,
    };

    Kind kind = Kind::KernelLaunch;
    /** Issuing GPU context. */
    sim::ContextId ctx = sim::invalidContext;
    /** Process priority (higher value = more important). */
    int priority = 0;
    /** Device-wide arrival sequence number (FCFS order). */
    std::uint64_t seq = 0;
    /** Time the command entered the hardware queue. */
    sim::SimTime enqueuedAt = 0;

    /** KernelLaunch: the kernel to execute. */
    const trace::KernelProfile *profile = nullptr;
    /** Memcpy*: payload size in bytes. */
    std::int64_t bytes = 0;

    /** Hardware queue the command was popped from (set on enqueue);
     *  engines use it to re-enable the queue on completion. */
    CommandQueue *queue = nullptr;

    /** Context whose outstanding-command count this command holds
     *  (set by Stream::enqueue; null for commands injected directly
     *  into the dispatcher by tests).  Decremented by complete()
     *  before onComplete runs, exactly as the stream's completion
     *  chain always behaved. */
    GpuContext *notifyCtx = nullptr;

    /** Invoked exactly once when the command completes. */
    std::function<void()> onComplete;

    bool isKernel() const { return kind == Kind::KernelLaunch; }
    bool isTransfer() const { return !isKernel(); }

    /**
     * Run the completion protocol: the context's outstanding count is
     * decremented first (device synchronisation may release waiters),
     * then onComplete (if any) runs.  Engines call this exactly once
     * per command, after re-enabling the hardware queue.
     */
    void complete();

    /** Factory helpers (plain heap allocation, for tests and one-off
     *  commands; the workload hot path uses a CommandPool). @{ */
    static CommandPtr makeKernel(sim::ContextId ctx, int priority,
                                 const trace::KernelProfile *profile);
    static CommandPtr makeMemcpy(sim::ContextId ctx, int priority,
                                 Kind direction, std::int64_t bytes);
    /** @} */

  private:
    friend class CommandPtr;
    friend class CommandPool;

    /** Last reference dropped: destroy, and recycle or free the block. */
    static void dispose(Command *c) noexcept;

    /** Intrusive reference count (non-atomic by design — see file
     *  comment). */
    std::uint32_t refs_ = 0;
    /** Owning pool the block returns to; null = plain heap. */
    CommandPool *pool_ = nullptr;
};

inline void
CommandPtr::retain() noexcept
{
    if (p_ != nullptr)
        ++p_->refs_;
}

inline void
CommandPtr::release() noexcept
{
    if (p_ != nullptr && --p_->refs_ == 0)
        Command::dispose(p_);
}

inline CommandPtr
CommandPtr::adopt(Command *c) noexcept
{
    CommandPtr p;
    p.p_ = c;
    c->refs_ = 1;
    return p;
}

/**
 * Recycling arena for commands.
 *
 * makeKernel/makeMemcpy return CommandPtrs whose storage comes from a
 * free list of fixed-size blocks; when the last reference drops, the
 * block is parked for reuse instead of freed.  Steady-state replay
 * therefore allocates nothing per command.
 *
 * Lifetime contract: the pool must outlive every command drawn from
 * it (System declares its pool ahead of the engines so destruction
 * order guarantees this).  NOT thread-safe: one pool belongs to one
 * single-threaded simulation.
 */
class CommandPool
{
  public:
    CommandPool() = default;
    CommandPool(const CommandPool &) = delete;
    CommandPool &operator=(const CommandPool &) = delete;
    ~CommandPool();

    /** Pool equivalents of the Command::make* factories. @{ */
    CommandPtr makeKernel(sim::ContextId ctx, int priority,
                          const trace::KernelProfile *profile);
    CommandPtr makeMemcpy(sim::ContextId ctx, int priority,
                          Command::Kind direction, std::int64_t bytes);
    /** @} */

    /** @name Observability (tests of the recycling behaviour)
     * @{ */
    /** Blocks ever carved from the heap; plateaus at the peak number
     *  of concurrently live commands. */
    std::size_t blocksAllocated() const { return allocated_; }
    /** Blocks currently parked on the free list. */
    std::size_t blocksFree() const { return free_.size(); }
    /** @} */

  private:
    friend struct Command;

    /** Fresh default-constructed command on a pooled block. */
    Command *acquire();
    /** Called by Command::dispose after destruction. */
    void recycle(void *block) noexcept { free_.push_back(block); }

    std::vector<void *> free_;
    std::size_t allocated_ = 0;
};

} // namespace gpu
} // namespace gpump

#endif // GPUMP_GPU_COMMAND_HH
