/**
 * @file
 * GPU commands: what the CPU pushes through the command queues.
 *
 * The paper's command taxonomy (Section 2.1): kernel launches go to
 * the execution engine, data-transfer commands go to the transfer
 * engine.  Commands carry their context, their process priority and a
 * monotonically increasing sequence number that defines FCFS arrival
 * order across the whole device.
 */

#ifndef GPUMP_GPU_COMMAND_HH
#define GPUMP_GPU_COMMAND_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/types.hh"
#include "trace/kernel_profile.hh"

namespace gpump {
namespace gpu {

class CommandQueue;

/** One command as seen by the hardware. */
struct Command
{
    enum class Kind
    {
        KernelLaunch,
        MemcpyH2D,
        MemcpyD2H,
    };

    Kind kind = Kind::KernelLaunch;
    /** Issuing GPU context. */
    sim::ContextId ctx = sim::invalidContext;
    /** Process priority (higher value = more important). */
    int priority = 0;
    /** Device-wide arrival sequence number (FCFS order). */
    std::uint64_t seq = 0;
    /** Time the command entered the hardware queue. */
    sim::SimTime enqueuedAt = 0;

    /** KernelLaunch: the kernel to execute. */
    const trace::KernelProfile *profile = nullptr;
    /** Memcpy*: payload size in bytes. */
    std::int64_t bytes = 0;

    /** Hardware queue the command was popped from (set on enqueue);
     *  engines use it to re-enable the queue on completion. */
    CommandQueue *queue = nullptr;

    /** Invoked exactly once when the command completes. */
    std::function<void()> onComplete;

    bool isKernel() const { return kind == Kind::KernelLaunch; }
    bool isTransfer() const { return !isKernel(); }

    /** Factory helpers. @{ */
    static std::shared_ptr<Command>
    makeKernel(sim::ContextId ctx, int priority,
               const trace::KernelProfile *profile);
    static std::shared_ptr<Command>
    makeMemcpy(sim::ContextId ctx, int priority, Kind direction,
               std::int64_t bytes);
    /** @} */
};

using CommandPtr = std::shared_ptr<Command>;

} // namespace gpu
} // namespace gpump

#endif // GPUMP_GPU_COMMAND_HH
