/**
 * @file
 * GPU contexts: the per-process device state.
 *
 * Each process using the GPU gets its own context holding the page
 * table of its GPU address space and its streams (Section 2.1).  The
 * multiprogramming extensions make the execution engine aware of
 * multiple active contexts through the context table (Section 3.1);
 * this class is one entry of that table plus the software-visible
 * bookkeeping (outstanding commands for cudaDeviceSynchronize).
 */

#ifndef GPUMP_GPU_GPU_CONTEXT_HH
#define GPUMP_GPU_GPU_CONTEXT_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "memory/page_table.hh"
#include "sim/types.hh"

namespace gpump {
namespace gpu {

/** One GPU context (one per process). */
class GpuContext
{
  public:
    /**
     * @param id      device-unique context id.
     * @param owner   owning process.
     * @param priority process priority used by priority schedulers.
     * @param frames  the device's physical frame allocator.
     */
    GpuContext(sim::ContextId id, sim::ProcessId owner, int priority,
               memory::FrameAllocator &frames);

    sim::ContextId id() const { return id_; }
    sim::ProcessId owner() const { return owner_; }
    int priority() const { return priority_; }

    /** The OS may retune priorities on the fly (Section 3.3). */
    void setPriority(int priority) { priority_ = priority; }

    memory::PageTable &pageTable() { return pageTable_; }

    /** @name Outstanding-command tracking (device synchronisation)
     * @{ */
    void commandEnqueued() { ++outstanding_; }
    void commandCompleted();
    int outstanding() const { return outstanding_; }
    bool idle() const { return outstanding_ == 0; }

    /**
     * Invoke @p cb once all currently outstanding commands complete.
     * Called back immediately (synchronously) when already idle.
     */
    void waitIdle(std::function<void()> cb);
    /** @} */

  private:
    sim::ContextId id_;
    sim::ProcessId owner_;
    int priority_;
    memory::PageTable pageTable_;
    int outstanding_ = 0;
    std::vector<std::function<void()>> waiters_;
    /** Reused firing list (capacity survives across device syncs) and
     *  its re-entrancy guard; see commandCompleted(). */
    std::vector<std::function<void()>> firingScratch_;
    bool firingWaiters_ = false;
};

} // namespace gpu
} // namespace gpump

#endif // GPUMP_GPU_GPU_CONTEXT_HH
