#include "harness/runner.hh"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>
#include <utility>

#include "core/policy.hh"
#include "core/preemption.hh"
#include "harness/exec/coordinator.hh"
#include "harness/interrupt.hh"
#include "sim/logging.hh"

namespace gpump {
namespace harness {

std::string
Scheme::label() const
{
    // Registry-driven: aliases canonicalize ("cs" -> "context_switch")
    // and policies that never preempt (fcfs, npq, ...) collapse the
    // mechanism component, so distinct registered schemes can never
    // share a label.  Unregistered names pass through verbatim (the
    // label must be printable even for a scheme that will fail to
    // construct).
    const auto *pd = core::policyRegistry().find(policy);
    const auto *md = core::mechanismRegistry().find(mechanism);
    std::string base = pd ? pd->name : policy;
    if (pd == nullptr || pd->usesMechanism)
        base += "/" + (md ? md->name : mechanism);
    if (transferPolicy != "fcfs")
        base += "/" + transferPolicy + "-xfer";
    return base;
}

double
IsolatedBaselineCache::timeUs(const std::string &benchmark,
                              const sim::Config &cfg, int minReplays)
{
    const std::string key = benchmark + "\n" +
        std::to_string(minReplays) + "\n" + cfg.fingerprint();

    std::promise<double> promise;
    bool compute = false;
    std::shared_future<double> future;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = futures_.find(key);
        if (it == futures_.end()) {
            future = promise.get_future().share();
            futures_.emplace(key, future);
            compute = true;
        } else {
            future = it->second;
        }
    }

    if (compute) {
        try {
            workload::SystemSpec spec;
            spec.benchmarks = {benchmark};
            spec.policy = "fcfs";
            spec.mechanism = "context_switch";
            spec.transferPolicy = "fcfs";
            spec.seed = 0x150ca7ed; // isolated runs share one fixed seed
            spec.minReplays = minReplays;

            workload::System system(spec, cfg);
            workload::SystemResult result = system.run();
            double us = result.meanTurnaroundUs.at(0);
            GPUMP_ASSERT(us > 0.0, "isolated run of %s took no time",
                         benchmark.c_str());
            computations_.fetch_add(1, std::memory_order_relaxed);
            promise.set_value(us);
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

Runner::Runner(sim::Config base, int jobs)
    : base_(std::move(base))
{
    setJobs(jobs);
}

void
Runner::setJobs(int jobs)
{
    jobs_ = jobs < 1 ? 1 : jobs;
}

void
Runner::setRunShards(int shards)
{
    runShards_ = shards < 1 ? 1 : shards;
}

namespace {

/** Joins a shard pool on every exit path (a fatal() from the main
 *  simulation must not leak running threads). */
struct ShardPool
{
    std::vector<std::thread> threads;

    ~ShardPool()
    {
        for (auto &t : threads) {
            if (t.joinable())
                t.join();
        }
    }
};

} // namespace

RunResult
Runner::execute(const RunRequest &request)
{
    sim::Config cfg = base_;
    cfg.merge(request.overrides);

    // A serving request compiles its scenario (open-loop arrival
    // schedules, admission bounds, tenant priorities); a plain
    // request replays its plan closed-loop.  Everything downstream —
    // sharded baselines, ANTT/STP, result collection — is shared, so
    // the serving path inherits the batch determinism contract as-is.
    workload::SystemSpec spec;
    if (request.serving) {
        spec = serve::toSystemSpec(*request.serving,
                                   request.scheme.policy,
                                   request.scheme.mechanism,
                                   request.scheme.transferPolicy);
    } else {
        spec.benchmarks = request.plan.benchmarks;
        spec.priorities = request.plan.priorities();
        spec.policy = request.scheme.policy;
        spec.mechanism = request.scheme.mechanism;
        spec.transferPolicy = request.scheme.transferPolicy;
        spec.seed = request.plan.seed;
        spec.minReplays = request.minReplays;
    }
    // Baselines follow the processes actually simulated (== the plan's
    // benchmarks for plain requests; serving requests may leave the
    // plan empty).
    const std::vector<std::string> &benchmarks = spec.benchmarks;

    workload::System system(spec, cfg);

    // Intra-run sharding: the request's isolated-baseline replays are
    // independent simulations, so with runShards_ > 1 they run on a
    // worker pool *concurrently* with the multiprogrammed run below.
    // Workers only warm the memoizing cache (each distinct benchmark
    // is computed exactly once, whichever thread gets there first);
    // the ordered collection loop after the join performs the
    // deterministic merge, so results are bit-identical to the serial
    // path for any shard count.  Worker-side failures are swallowed
    // here and rethrown, once, from the collection loop via the
    // cache's shared_future.
    std::vector<std::string> distinct;
    std::atomic<std::size_t> nextShard{0};
    ShardPool shards;
    if (runShards_ > 1) {
        for (const auto &b : benchmarks) {
            if (std::find(distinct.begin(), distinct.end(), b) ==
                distinct.end())
                distinct.push_back(b);
        }
        std::size_t pool = static_cast<std::size_t>(runShards_);
        if (pool > distinct.size())
            pool = distinct.size();
        shards.threads.reserve(pool);
        for (std::size_t t = 0; t < pool; ++t) {
            shards.threads.emplace_back(
                [this, &nextShard, &distinct, &cfg, &request] {
                    for (;;) {
                        std::size_t i = nextShard.fetch_add(
                            1, std::memory_order_relaxed);
                        if (i >= distinct.size())
                            return;
                        try {
                            baselines_.timeUs(distinct[i], cfg,
                                              request.minReplays);
                        } catch (...) {
                            // Recorded in the cache entry; surfaced
                            // by the ordered collection below.
                        }
                    }
                });
        }
    }

    RunResult out;
    out.index = request.index;
    out.tag = request.tag;
    out.scheme = request.scheme;
    auto t0 = std::chrono::steady_clock::now();
    out.sys = system.run(request.limit);
    out.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    for (auto &t : shards.threads)
        t.join();
    out.isolatedUs.reserve(benchmarks.size());
    for (const auto &b : benchmarks)
        out.isolatedUs.push_back(
            baselines_.timeUs(b, cfg, request.minReplays));
    out.metrics = metrics::computeMetrics(out.isolatedUs,
                                          out.sys.meanTurnaroundUs);
    if (request.serving) {
        out.servingRun = true;
        out.serving = serve::computeServingMetrics(
            *request.serving, out.sys, out.isolatedUs);
    }
    return out;
}

RunResult
Runner::runOne(const RunRequest &request)
{
    return execute(request);
}

double
Runner::isolatedTimeUs(const std::string &benchmark, int minReplays)
{
    return baselines_.timeUs(benchmark, base_, minReplays);
}

std::vector<RunResult>
Runner::run(const std::vector<RunRequest> &requests)
{
    // Multi-process backend: --workers and/or --cache-dir hand the
    // whole batch to the exec coordinator.  Same request-order merge,
    // so the results are byte-identical to the thread pool below.
    if (exec_.enabled())
        return exec::runBatch(*this, requests, exec_);

    std::vector<RunResult> results(requests.size());
    if (requests.empty())
        return results;

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::exception_ptr first_error;

    auto worker = [&] {
        for (;;) {
            // Claim the next unexecuted request; results are stored
            // by request position, never by completion order.  A
            // failure anywhere aborts the rest of the batch.
            if (failed.load(std::memory_order_relaxed) ||
                interruptRequested())
                return;
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= requests.size())
                return;
            try {
                results[i] = execute(requests[i]);
                results[i].index = i;
            } catch (...) {
                failed.store(true, std::memory_order_relaxed);
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                continue;
            }
            std::size_t d = done.fetch_add(1,
                                           std::memory_order_relaxed) +
                1;
            if (progress_)
                progress_(d, requests.size(), requests[i], results[i]);
        }
    };

    std::size_t pool = static_cast<std::size_t>(jobs_);
    if (pool > requests.size())
        pool = requests.size();
    if (pool <= 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(pool);
        for (std::size_t t = 0; t < pool; ++t)
            threads.emplace_back(worker);
        for (auto &t : threads)
            t.join();
    }

    if (first_error)
        std::rethrow_exception(first_error);
    if (interruptRequested()) {
        int sig = interruptSignal();
        throw InterruptedError(
            sim::strformat(
                "batch interrupted by signal %d after %zu/%zu requests",
                sig, done.load(std::memory_order_relaxed),
                requests.size()),
            sig);
    }
    return results;
}

} // namespace harness
} // namespace gpump
