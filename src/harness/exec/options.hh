/**
 * @file
 * Knobs of the multi-process batch executor (harness/exec).
 *
 * Kept dependency-free so harness::Runner can embed an ExecOptions
 * without pulling the coordinator (which includes runner.hh) into its
 * own header.
 */

#ifndef GPUMP_HARNESS_EXEC_OPTIONS_HH
#define GPUMP_HARNESS_EXEC_OPTIONS_HH

#include <cstdint>
#include <string>

namespace gpump {
namespace harness {
namespace exec {

/** Configuration of one exec::runBatch campaign. */
struct ExecOptions
{
    /** Forked worker processes; 0 = multi-process backend disabled
     *  (unless cacheDir is set, in which case it runs with
     *  max(1, Runner jobs) workers). */
    int workers = 0;

    /** On-disk result cache directory; empty = no cache.  Keyed by
     *  request fingerprint, so an interrupted sweep rerun against the
     *  same directory resumes from where it stopped. */
    std::string cacheDir;

    /**
     * Per-request watchdog, seconds: a worker whose in-flight request
     * exceeds this is SIGKILLed and the request is requeued (counting
     * one retry).  0 disables the watchdog.
     */
    double requestTimeoutSec = 0.0;

    /** Requeue attempts per request after worker deaths/timeouts
     *  before the coordinator falls back to executing it in-process.
     *  (A request that *fails* — sim::FatalError — is never retried:
     *  the failure is deterministic and aborts the batch, matching
     *  the in-process thread pool.) */
    int maxRetries = 2;

    /** Consecutive deaths of one worker slot (without an intervening
     *  completed result) before that slot is abandoned.  When every
     *  slot is abandoned the remaining requests run in-process. */
    int maxRespawns = 3;

    /** Base of the exponential respawn backoff: a slot's k-th
     *  consecutive respawn waits backoffBaseSec * 2^(k-1) seconds. */
    double backoffBaseSec = 0.25;

    /** Fail the sweep when the cache directory holds entries whose
     *  keys match no request of this batch (stale fingerprints).
     *  Scripts/CI set this via GPUMP_EXEC_CACHE_STRICT=1. */
    bool strictCache = false;

    /** @name Fault-injection test hooks
     * Exercised by tests/test_exec.cpp and the CI bench-smoke job;
     * settable from the environment via applyTestEnv().  @{ */
    /** SIGKILL one live worker right after the n-th computed result
     *  arrives (1-based); < 0 = off.  (GPUMP_EXEC_TEST_KILL_AFTER) */
    int testKillAfterResults = -1;
    /** Workers hang (pause forever) instead of executing this request
     *  index; < 0 = off.  The coordinator's watchdog + in-process
     *  fallback must finish the sweep regardless. */
    std::int64_t testHangOnIndex = -1;
    /** Coordinator _exit(3)s right after the n-th result is written
     *  to the cache (1-based); < 0 = off.  Simulates a sweep killed
     *  mid-run for resume tests.  (GPUMP_EXEC_TEST_ABORT_AFTER) */
    int testAbortAfterResults = -1;
    /** @} */

    /** True when runBatch should be used instead of the in-process
     *  thread pool. */
    bool enabled() const { return workers > 0 || !cacheDir.empty(); }

    /** Overlay the GPUMP_EXEC_TEST_KILL_AFTER /
     *  GPUMP_EXEC_TEST_ABORT_AFTER / GPUMP_EXEC_CACHE_STRICT
     *  environment hooks (CI fault injection). */
    void applyTestEnv();
};

} // namespace exec
} // namespace harness
} // namespace gpump

#endif // GPUMP_HARNESS_EXEC_OPTIONS_HH
