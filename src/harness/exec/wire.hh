/**
 * @file
 * Wire format of the multi-process batch executor.
 *
 * The coordinator and its forked workers exchange newline-delimited
 * JSON records over pipes, and the on-disk result cache stores the
 * same records, so one codec serves both (DESIGN.md §10).  Two parts:
 *
 *  - a minimal strict JSON reader (harness emits JSON everywhere but
 *    until now never had to parse it back).  Numeric tokens keep
 *    their raw spelling so 64-bit integers round-trip exactly;
 *  - encodeResult()/decodeResult(): a complete, *bit-exact*
 *    serialization of harness::RunResult.  Doubles travel as hexfloat
 *    strings ("0x1.91eb8p+1", "nan", "-inf"), which round-trip every
 *    binary64 value by construction — the merge-side output must be
 *    byte-identical to an in-process run, so "close enough" decimal
 *    formatting is not an option.
 */

#ifndef GPUMP_HARNESS_EXEC_WIRE_HH
#define GPUMP_HARNESS_EXEC_WIRE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "harness/runner.hh"

namespace gpump {
namespace harness {
namespace exec {

/** One parsed JSON value.  Numbers keep their raw token in `text` so
 *  integer precision is never laundered through a double. */
struct JsonValue
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    /** String payload, or the raw numeric token for Number. */
    std::string text;
    std::vector<JsonValue> items; ///< Array elements.
    std::vector<std::pair<std::string, JsonValue>> members; ///< Object.

    /** Member lookup; nullptr when absent (Object only). */
    const JsonValue *find(const std::string &key) const;

    /** @name Checked accessors — raise fatal() on a type mismatch,
     *  naming @p what (the field being decoded). @{ */
    const JsonValue &get(const std::string &key,
                         const char *what) const;
    std::int64_t asInt64(const char *what) const;
    double asDouble(const char *what) const;
    const std::string &asString(const char *what) const;
    bool asBool(const char *what) const;
    /** @} */
};

/**
 * Parse one JSON document (object, array or scalar).  Strict: raises
 * fatal() on malformed input or trailing garbage.  Depth-limited, so
 * hostile cache files cannot overflow the stack.
 */
JsonValue parseJson(const std::string &text);

/** @name Exact double <-> string
 * Hexfloat spelling ("%a"), with "nan"/"inf"/"-inf" for the
 * non-finite values; parseHexDouble() inverts encodeHexDouble()
 * bit-exactly for every binary64 value. @{ */
std::string encodeHexDouble(double value);
/** Raises fatal() when @p text is not a number. */
double parseHexDouble(const std::string &text, const char *what);
/** @} */

/** Serialize @p result as one JSON line (no trailing newline).
 *  Everything a bench or report can read out of a RunResult is
 *  included: metrics, baselines, the full SystemResult (run records
 *  too) and serving metrics. */
std::string encodeResult(const RunResult &result);

/** Inverse of encodeResult(); raises fatal() on malformed or
 *  version-mismatched input. */
RunResult decodeResult(const std::string &line);

/** Decode from an already-parsed document (the coordinator parses
 *  each worker message once to inspect its type, then decodes). */
RunResult decodeResult(const JsonValue &parsed);

/** decodeResult() that reports failure instead of raising — the
 *  result-cache path, where a torn or corrupt entry must degrade to
 *  a cache miss, never to an aborted sweep. */
bool tryDecodeResult(const std::string &line, RunResult &out);

} // namespace exec
} // namespace harness
} // namespace gpump

#endif // GPUMP_HARNESS_EXEC_WIRE_HH
