#include "harness/exec/cache.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "harness/exec/wire.hh"
#include "sim/logging.hh"

namespace gpump {
namespace harness {
namespace exec {

namespace {

/** First line of every entry file; bump with the wire version. */
constexpr const char *cacheMagic = "gpump-exec-cache v1";

} // namespace

std::string
requestKey(const sim::Config &base, const RunRequest &request)
{
    sim::Config cfg = base;
    cfg.merge(request.overrides);
    std::string key = "cfg{" + cfg.fingerprint() + "};";
    if (request.serving)
        key += request.serving->fingerprint();
    else
        key += request.plan.fingerprint();
    key += ";scheme{" + request.scheme.policy + "/" +
        request.scheme.mechanism + "/" + request.scheme.transferPolicy +
        "}";
    key += ";replays=" + std::to_string(request.minReplays);
    key += ";limit=" + std::to_string(request.limit);
    return key;
}

std::string
hashKey(const std::string &key)
{
    std::uint64_t h = 14695981039346656037ull;
    for (unsigned char c : key) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return sim::strformat("%016llx",
                          static_cast<unsigned long long>(h));
}

ResultCache::ResultCache(const std::string &dir)
    : dir_(dir)
{
    GPUMP_ASSERT(!dir.empty(), "ResultCache needs a directory");
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec || !std::filesystem::is_directory(dir_)) {
        sim::fatal("cache-dir '%s' cannot be created: %s", dir_.c_str(),
                   ec.message().c_str());
    }
}

std::string
ResultCache::entryPath(const std::string &key) const
{
    return dir_ + "/" + hashKey(key) + ".entry";
}

bool
ResultCache::lookup(const std::string &key, RunResult &out)
{
    const std::string path = entryPath(key);
    std::ifstream in(path);
    if (!in) {
        ++misses_;
        return false;
    }
    std::string magic, stored_key, payload, terminator;
    bool ok = static_cast<bool>(std::getline(in, magic)) &&
        static_cast<bool>(std::getline(in, stored_key)) &&
        static_cast<bool>(std::getline(in, payload)) &&
        static_cast<bool>(std::getline(in, terminator));
    ok = ok && magic == cacheMagic && terminator == "ok";
    // A colliding hash stores a different key under our file name;
    // that entry is valid for *its* request, so it is a miss here but
    // must not be deleted.
    bool collision = ok && stored_key != key;
    ok = ok && !collision && tryDecodeResult(payload, out);
    in.close();
    if (!ok && !collision) {
        // Torn, truncated or corrupt: drop the entry so the slot is
        // rewritten cleanly when the request is recomputed.
        std::error_code ec;
        std::filesystem::remove(path, ec);
    }
    if (!ok) {
        ++misses_;
        return false;
    }
    ++hits_;
    return true;
}

void
ResultCache::store(const std::string &key, const RunResult &result)
{
    const std::string path = entryPath(key);
    // Same-directory temp name (rename() must not cross filesystems),
    // unique per process so concurrent sweeps sharing a cache-dir
    // never interleave writes into one temp file.
    const std::string tmp = path + ".tmp." +
        std::to_string(static_cast<long long>(::getpid()));
    {
        std::ofstream os(tmp, std::ios::out | std::ios::trunc);
        if (!os)
            sim::fatal("cache-dir '%s': cannot write '%s'",
                       dir_.c_str(), tmp.c_str());
        os << cacheMagic << "\n"
           << key << "\n"
           << encodeResult(result) << "\n"
           << "ok\n";
        os.flush();
        if (!os)
            sim::fatal("cache-dir '%s': write failed (disk full?)",
                       dir_.c_str());
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        sim::fatal("cache-dir '%s': rename to '%s' failed: %s",
                   dir_.c_str(), path.c_str(), ec.message().c_str());
    }
    ++stores_;
}

std::vector<std::string>
ResultCache::staleEntries(const std::set<std::string> &liveKeys) const
{
    std::vector<std::string> stale;
    std::error_code ec;
    for (const auto &de :
         std::filesystem::directory_iterator(dir_, ec)) {
        const std::string name = de.path().filename().string();
        if (name.size() < 6 ||
            name.compare(name.size() - 6, 6, ".entry") != 0)
            continue; // temp files and foreign litter
        std::ifstream in(de.path());
        std::string magic, stored_key;
        if (std::getline(in, magic) &&
            std::getline(in, stored_key) && magic == cacheMagic &&
            liveKeys.count(stored_key) != 0)
            continue;
        stale.push_back(de.path().string());
    }
    std::sort(stale.begin(), stale.end());
    return stale;
}

} // namespace exec
} // namespace harness
} // namespace gpump
