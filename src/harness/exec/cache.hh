/**
 * @file
 * Resumable on-disk result cache of the multi-process sweep executor.
 *
 * Work units are keyed by a *request fingerprint*: the canonical
 * rendering of everything that determines a RunResult — the merged
 * sim::Config fingerprint, the workload plan (or serving scenario)
 * fingerprint, the scheme and the replay/limit knobs.  A cache entry
 * is one small file named by the FNV-1a hash of its key, holding the
 * key itself (hash collisions degrade to misses, never to wrong
 * results) and the wire-encoded RunResult.
 *
 * Crash safety (DESIGN.md §10):
 *  - store() writes to a temp file in the same directory and
 *    rename()s it into place, so a sweep killed mid-write can never
 *    leave a half-written entry under a live name;
 *  - lookup() re-verifies the stored key and a trailing terminator
 *    line and re-decodes the result; *any* mismatch — torn write,
 *    truncation, corruption, stale wire version — deletes the entry
 *    and reports a miss, so the request is simply recomputed.
 *
 * Resume contract: rerunning the same sweep against the same
 * directory turns every previously completed request into a hit;
 * entries whose keys no longer match any request of the sweep are
 * "stale" (the fingerprint changed: different config, code or seed)
 * and can be enumerated for loud failure in CI (staleEntries()).
 */

#ifndef GPUMP_HARNESS_EXEC_CACHE_HH
#define GPUMP_HARNESS_EXEC_CACHE_HH

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "harness/runner.hh"

namespace gpump {
namespace harness {
namespace exec {

/** The work-unit key of @p request under @p base (the Runner's base
 *  config): merged-config fingerprint + plan/scenario fingerprint +
 *  scheme + replays + limit, one line. */
std::string requestKey(const sim::Config &base,
                       const RunRequest &request);

/** FNV-1a 64-bit hash, rendered as 16 hex digits (entry filenames). */
std::string hashKey(const std::string &key);

class ResultCache
{
  public:
    /** Opens (creating if needed) the cache directory; raises
     *  fatal() when the directory cannot be created. */
    explicit ResultCache(const std::string &dir);

    const std::string &dir() const { return dir_; }

    /**
     * Load the entry for @p key into @p out.  Returns false — after
     * deleting the offending file — when the entry is absent, torn,
     * corrupt, truncated or keyed by a colliding fingerprint.
     */
    bool lookup(const std::string &key, RunResult &out);

    /** Atomically persist @p result under @p key (write-then-rename;
     *  overwrites any previous entry). */
    void store(const std::string &key, const RunResult &result);

    /**
     * Entry files whose stored key is not in @p liveKeys (or cannot
     * be read at all): leftovers of a sweep with different
     * fingerprints.  Used by scripts/CI for stale detection.
     */
    std::vector<std::string>
    staleEntries(const std::set<std::string> &liveKeys) const;

    /** @name Telemetry for logs and tests @{ */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t stores() const { return stores_; }
    /** @} */

  private:
    std::string entryPath(const std::string &key) const;

    std::string dir_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t stores_ = 0;
};

} // namespace exec
} // namespace harness
} // namespace gpump

#endif // GPUMP_HARNESS_EXEC_CACHE_HH
