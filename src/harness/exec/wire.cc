#include "harness/exec/wire.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "harness/report.hh"
#include "sim/logging.hh"

namespace gpump {
namespace harness {
namespace exec {

// ---------------------------------------------------------------------
// JSON reader
// ---------------------------------------------------------------------

namespace {

/** Recursive-descent parser over a string view of the input. */
class Parser
{
  public:
    explicit Parser(const std::string &text)
        : s_(text)
    {
    }

    JsonValue parse()
    {
        JsonValue v = value(0);
        skipWs();
        if (pos_ != s_.size())
            sim::fatal("JSON: trailing garbage at offset %zu", pos_);
        return v;
    }

  private:
    static constexpr int maxDepth = 64;

    const std::string &s_;
    std::size_t pos_ = 0;

    [[noreturn]] void bad(const char *what)
    {
        sim::fatal("JSON: %s at offset %zu", what, pos_);
    }

    void skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    char peek()
    {
        if (pos_ >= s_.size())
            bad("unexpected end of input");
        return s_[pos_];
    }

    void expect(char c)
    {
        if (pos_ >= s_.size() || s_[pos_] != c)
            bad("unexpected character");
        ++pos_;
    }

    bool literal(const char *word)
    {
        std::size_t n = std::strlen(word);
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    std::string string()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= s_.size())
                bad("unterminated string");
            char c = s_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= s_.size())
                    bad("unterminated escape");
                char e = s_[pos_++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > s_.size())
                        bad("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = s_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            bad("bad \\u escape");
                    }
                    // The harness only ever \u-escapes control
                    // characters; emit the code point as UTF-8 for
                    // completeness.
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xc0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (code >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((code >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    }
                    break;
                  }
                  default: bad("unknown escape");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                bad("raw control character in string");
            } else {
                out += c;
            }
        }
    }

    JsonValue number()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        JsonValue v;
        v.type = JsonValue::Type::Number;
        v.text = s_.substr(start, pos_ - start);
        // Validate the token now so asInt64/asDouble can trust it.
        char *end = nullptr;
        std::strtod(v.text.c_str(), &end);
        if (v.text.empty() || end != v.text.c_str() + v.text.size())
            bad("malformed number");
        return v;
    }

    JsonValue value(int depth)
    {
        if (depth > maxDepth)
            bad("nesting too deep");
        skipWs();
        char c = peek();
        JsonValue v;
        switch (c) {
          case '{': {
            ++pos_;
            v.type = JsonValue::Type::Object;
            skipWs();
            if (peek() == '}') {
                ++pos_;
                return v;
            }
            for (;;) {
                skipWs();
                std::string key = string();
                skipWs();
                expect(':');
                v.members.emplace_back(std::move(key),
                                       value(depth + 1));
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect('}');
                return v;
            }
          }
          case '[': {
            ++pos_;
            v.type = JsonValue::Type::Array;
            skipWs();
            if (peek() == ']') {
                ++pos_;
                return v;
            }
            for (;;) {
                v.items.push_back(value(depth + 1));
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect(']');
                return v;
            }
          }
          case '"':
            v.type = JsonValue::Type::String;
            v.text = string();
            return v;
          case 't':
            if (!literal("true"))
                bad("bad literal");
            v.type = JsonValue::Type::Bool;
            v.boolean = true;
            return v;
          case 'f':
            if (!literal("false"))
                bad("bad literal");
            v.type = JsonValue::Type::Bool;
            v.boolean = false;
            return v;
          case 'n':
            if (!literal("null"))
                bad("bad literal");
            v.type = JsonValue::Type::Null;
            return v;
          default:
            return number();
        }
    }
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &m : members) {
        if (m.first == key)
            return &m.second;
    }
    return nullptr;
}

const JsonValue &
JsonValue::get(const std::string &key, const char *what) const
{
    const JsonValue *v = find(key);
    if (v == nullptr)
        sim::fatal("wire: missing field '%s' (%s)", key.c_str(), what);
    return *v;
}

std::int64_t
JsonValue::asInt64(const char *what) const
{
    if (type != Type::Number)
        sim::fatal("wire: field %s is not a number", what);
    char *end = nullptr;
    long long v = std::strtoll(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size())
        sim::fatal("wire: field %s is not an integer ('%s')", what,
                   text.c_str());
    return static_cast<std::int64_t>(v);
}

double
JsonValue::asDouble(const char *what) const
{
    if (type != Type::Number)
        sim::fatal("wire: field %s is not a number", what);
    return std::strtod(text.c_str(), nullptr);
}

const std::string &
JsonValue::asString(const char *what) const
{
    if (type != Type::String)
        sim::fatal("wire: field %s is not a string", what);
    return text;
}

bool
JsonValue::asBool(const char *what) const
{
    if (type != Type::Bool)
        sim::fatal("wire: field %s is not a bool", what);
    return boolean;
}

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).parse();
}

// ---------------------------------------------------------------------
// Exact doubles
// ---------------------------------------------------------------------

std::string
encodeHexDouble(double value)
{
    if (std::isnan(value))
        return "nan";
    if (std::isinf(value))
        return value > 0 ? "inf" : "-inf";
    return sim::strformat("%a", value);
}

double
parseHexDouble(const std::string &text, const char *what)
{
    // strtod accepts hexfloat, "nan", "inf" and "-inf" — exactly the
    // encodeHexDouble() vocabulary.
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (text.empty() || end != text.c_str() + text.size())
        sim::fatal("wire: field %s is not a hexfloat ('%s')", what,
                   text.c_str());
    return v;
}

// ---------------------------------------------------------------------
// RunResult codec
// ---------------------------------------------------------------------

namespace {

/** Format bump whenever the encoding changes shape: a cache entry
 *  from another version must read as a miss, not misdecode. */
constexpr std::int64_t wireVersion = 1;

std::string
hexArray(const std::vector<double> &values)
{
    std::string out = "[";
    for (std::size_t i = 0; i < values.size(); ++i)
        out += (i ? "," : "") + jsonQuote(encodeHexDouble(values[i]));
    out += ']';
    return out;
}

std::string
intArray(const std::vector<std::int64_t> &values)
{
    std::string out = "[";
    for (std::size_t i = 0; i < values.size(); ++i)
        out += (i ? "," : "") + std::to_string(values[i]);
    out += ']';
    return out;
}

std::vector<double>
decodeHexArray(const JsonValue &v, const char *what)
{
    if (v.type != JsonValue::Type::Array)
        sim::fatal("wire: field %s is not an array", what);
    std::vector<double> out;
    out.reserve(v.items.size());
    for (const JsonValue &e : v.items)
        out.push_back(parseHexDouble(e.asString(what), what));
    return out;
}

std::vector<std::int64_t>
decodeIntArray(const JsonValue &v, const char *what)
{
    if (v.type != JsonValue::Type::Array)
        sim::fatal("wire: field %s is not an array", what);
    std::vector<std::int64_t> out;
    out.reserve(v.items.size());
    for (const JsonValue &e : v.items)
        out.push_back(e.asInt64(what));
    return out;
}

} // namespace

std::string
encodeResult(const RunResult &r)
{
    std::string out = "{";
    out += "\"v\":" + std::to_string(wireVersion);
    out += ",\"index\":" + std::to_string(r.index);
    out += ",\"tag\":" + jsonQuote(r.tag);
    out += ",\"policy\":" + jsonQuote(r.scheme.policy);
    out += ",\"mechanism\":" + jsonQuote(r.scheme.mechanism);
    out += ",\"transfer\":" + jsonQuote(r.scheme.transferPolicy);
    out += ",\"ntt\":" + hexArray(r.metrics.ntt);
    out += ",\"antt\":" + jsonQuote(encodeHexDouble(r.metrics.antt));
    out += ",\"stp\":" + jsonQuote(encodeHexDouble(r.metrics.stp));
    out += ",\"fairness\":" +
        jsonQuote(encodeHexDouble(r.metrics.fairness));
    out += ",\"isolated_us\":" + hexArray(r.isolatedUs);
    out += ",\"turnaround_us\":" + hexArray(r.sys.meanTurnaroundUs);
    out += ",\"latency_us\":" + hexArray(r.sys.meanLatencyUs);
    out += ",\"dropped\":" + intArray(r.sys.droppedRequests);
    // Per-process run records as [start, end, release] triples: the
    // full SystemResult survives the hop, not just its aggregates.
    out += ",\"runs\":[";
    for (std::size_t p = 0; p < r.sys.runs.size(); ++p) {
        out += (p ? ",[" : "[");
        const auto &recs = r.sys.runs[p];
        for (std::size_t i = 0; i < recs.size(); ++i) {
            out += (i ? ",[" : "[");
            out += std::to_string(recs[i].start) + "," +
                std::to_string(recs[i].end) + "," +
                std::to_string(recs[i].release) + "]";
        }
        out += ']';
    }
    out += ']';
    out += ",\"end_time\":" + std::to_string(r.sys.endTime);
    out += ",\"events\":" + std::to_string(r.sys.eventsExecuted);
    out += ",\"kernels\":" + std::to_string(r.sys.kernelsCompleted);
    out += ",\"preemptions\":" + std::to_string(r.sys.preemptions);
    out += ",\"ctx_bytes\":" +
        jsonQuote(encodeHexDouble(r.sys.contextBytesSaved));
    out += ",\"max_ptbq\":" +
        jsonQuote(encodeHexDouble(r.sys.maxPtbqDepth));
    out += ",\"wall_seconds\":" +
        jsonQuote(encodeHexDouble(r.wallSeconds));
    out += ",\"serving\":";
    out += r.servingRun ? "true" : "false";
    if (r.servingRun) {
        out += ",\"classes\":[";
        for (std::size_t i = 0; i < r.serving.classes.size(); ++i) {
            const serve::ClassMetrics &c = r.serving.classes[i];
            out += (i ? ",{" : "{");
            out += "\"name\":" + jsonQuote(c.name);
            out += ",\"requests\":" + std::to_string(c.requests);
            out += ",\"completed\":" + std::to_string(c.completed);
            out += ",\"dropped\":" + std::to_string(c.dropped);
            out += ",\"misses\":" + std::to_string(c.deadlineMisses);
            out += ",\"n\":" + std::to_string(c.latency.n);
            out += ",\"mean\":" +
                jsonQuote(encodeHexDouble(c.latency.mean));
            out += ",\"p50\":" +
                jsonQuote(encodeHexDouble(c.latency.p50));
            out += ",\"p99\":" +
                jsonQuote(encodeHexDouble(c.latency.p99));
            out += ",\"p999\":" +
                jsonQuote(encodeHexDouble(c.latency.p999));
            out += ",\"max\":" +
                jsonQuote(encodeHexDouble(c.latency.max));
            out += ",\"miss_rate\":" +
                jsonQuote(encodeHexDouble(c.missRate));
            out += ",\"tput\":" +
                jsonQuote(encodeHexDouble(c.throughputPerSec));
            out += ",\"goodput\":" +
                jsonQuote(encodeHexDouble(c.goodputPerSec));
            out += '}';
        }
        out += ']';
        out += ",\"window_fairness\":" +
            jsonQuote(encodeHexDouble(r.serving.windowFairness));
        out += ",\"window_us\":" +
            jsonQuote(encodeHexDouble(r.serving.windowUs));
    }
    out += '}';
    return out;
}

RunResult
decodeResult(const std::string &line)
{
    return decodeResult(parseJson(line));
}

RunResult
decodeResult(const JsonValue &v)
{
    if (v.type != JsonValue::Type::Object)
        sim::fatal("wire: result is not an object");
    if (v.get("v", "version").asInt64("version") != wireVersion)
        sim::fatal("wire: result version mismatch");

    RunResult r;
    r.index = static_cast<std::size_t>(
        v.get("index", "index").asInt64("index"));
    r.tag = v.get("tag", "tag").asString("tag");
    r.scheme.policy = v.get("policy", "policy").asString("policy");
    r.scheme.mechanism =
        v.get("mechanism", "mechanism").asString("mechanism");
    r.scheme.transferPolicy =
        v.get("transfer", "transfer").asString("transfer");
    r.metrics.ntt = decodeHexArray(v.get("ntt", "ntt"), "ntt");
    r.metrics.antt =
        parseHexDouble(v.get("antt", "antt").asString("antt"), "antt");
    r.metrics.stp =
        parseHexDouble(v.get("stp", "stp").asString("stp"), "stp");
    r.metrics.fairness = parseHexDouble(
        v.get("fairness", "fairness").asString("fairness"), "fairness");
    r.isolatedUs =
        decodeHexArray(v.get("isolated_us", "isolated_us"),
                       "isolated_us");
    r.sys.meanTurnaroundUs = decodeHexArray(
        v.get("turnaround_us", "turnaround_us"), "turnaround_us");
    r.sys.meanLatencyUs =
        decodeHexArray(v.get("latency_us", "latency_us"), "latency_us");
    r.sys.droppedRequests =
        decodeIntArray(v.get("dropped", "dropped"), "dropped");

    const JsonValue &runs = v.get("runs", "runs");
    if (runs.type != JsonValue::Type::Array)
        sim::fatal("wire: field runs is not an array");
    r.sys.runs.reserve(runs.items.size());
    for (const JsonValue &proc : runs.items) {
        if (proc.type != JsonValue::Type::Array)
            sim::fatal("wire: runs entry is not an array");
        std::vector<workload::RunRecord> recs;
        recs.reserve(proc.items.size());
        for (const JsonValue &rec : proc.items) {
            if (rec.type != JsonValue::Type::Array ||
                rec.items.size() != 3)
                sim::fatal("wire: run record is not a triple");
            workload::RunRecord rr;
            rr.start = rec.items[0].asInt64("run.start");
            rr.end = rec.items[1].asInt64("run.end");
            rr.release = rec.items[2].asInt64("run.release");
            recs.push_back(rr);
        }
        r.sys.runs.push_back(std::move(recs));
    }

    r.sys.endTime = v.get("end_time", "end_time").asInt64("end_time");
    r.sys.eventsExecuted = static_cast<std::uint64_t>(
        v.get("events", "events").asInt64("events"));
    r.sys.kernelsCompleted = static_cast<std::uint64_t>(
        v.get("kernels", "kernels").asInt64("kernels"));
    r.sys.preemptions = static_cast<std::uint64_t>(
        v.get("preemptions", "preemptions").asInt64("preemptions"));
    r.sys.contextBytesSaved = parseHexDouble(
        v.get("ctx_bytes", "ctx_bytes").asString("ctx_bytes"),
        "ctx_bytes");
    r.sys.maxPtbqDepth = parseHexDouble(
        v.get("max_ptbq", "max_ptbq").asString("max_ptbq"), "max_ptbq");
    r.wallSeconds = parseHexDouble(
        v.get("wall_seconds", "wall_seconds").asString("wall_seconds"),
        "wall_seconds");
    r.servingRun = v.get("serving", "serving").asBool("serving");
    if (r.servingRun) {
        const JsonValue &classes = v.get("classes", "classes");
        if (classes.type != JsonValue::Type::Array)
            sim::fatal("wire: field classes is not an array");
        for (const JsonValue &e : classes.items) {
            if (e.type != JsonValue::Type::Object)
                sim::fatal("wire: class entry is not an object");
            serve::ClassMetrics c;
            c.name = e.get("name", "class.name").asString("class.name");
            c.requests = e.get("requests", "class.requests")
                             .asInt64("class.requests");
            c.completed = e.get("completed", "class.completed")
                              .asInt64("class.completed");
            c.dropped = e.get("dropped", "class.dropped")
                            .asInt64("class.dropped");
            c.deadlineMisses =
                e.get("misses", "class.misses").asInt64("class.misses");
            c.latency.n = e.get("n", "class.n").asInt64("class.n");
            auto hex = [&e](const char *key) {
                return parseHexDouble(e.get(key, key).asString(key),
                                      key);
            };
            c.latency.mean = hex("mean");
            c.latency.p50 = hex("p50");
            c.latency.p99 = hex("p99");
            c.latency.p999 = hex("p999");
            c.latency.max = hex("max");
            c.missRate = hex("miss_rate");
            c.throughputPerSec = hex("tput");
            c.goodputPerSec = hex("goodput");
            r.serving.classes.push_back(std::move(c));
        }
        r.serving.windowFairness = parseHexDouble(
            v.get("window_fairness", "window_fairness")
                .asString("window_fairness"),
            "window_fairness");
        r.serving.windowUs = parseHexDouble(
            v.get("window_us", "window_us").asString("window_us"),
            "window_us");
    }
    return r;
}

bool
tryDecodeResult(const std::string &line, RunResult &out)
{
    try {
        out = decodeResult(line);
        return true;
    } catch (const std::exception &) {
        return false;
    }
}

} // namespace exec
} // namespace harness
} // namespace gpump
