#include "harness/exec/coordinator.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <memory>
#include <set>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "harness/exec/cache.hh"
#include "harness/exec/wire.hh"
#include "harness/interrupt.hh"
#include "harness/report.hh"
#include "sim/logging.hh"

namespace gpump {
namespace harness {
namespace exec {

void
ExecOptions::applyTestEnv()
{
    // getenv runs once, on the main thread, before any worker exists;
    // nothing writes the environment concurrently.
    // NOLINTBEGIN(concurrency-mt-unsafe)
    if (const char *v = std::getenv("GPUMP_EXEC_TEST_KILL_AFTER"))
        testKillAfterResults = std::atoi(v);
    if (const char *v = std::getenv("GPUMP_EXEC_TEST_ABORT_AFTER"))
        testAbortAfterResults = std::atoi(v);
    if (const char *v = std::getenv("GPUMP_EXEC_CACHE_STRICT"))
        strictCache = v[0] != '\0' && v[0] != '0';
    // NOLINTEND(concurrency-mt-unsafe)
}

namespace {

double
monoSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** write() the whole buffer; false on any unrecoverable error. */
bool
writeAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Worker process body: read one assignment at a time, execute it via
 * Runner::runOne (the request list is inherited through fork, so only
 * the *index* crosses the pipe), ship the wire-encoded result back.
 * A request failure travels back as an "error" message; the worker
 * itself stays up — the coordinator decides what aborts the batch.
 */
[[noreturn]] void
workerMain(Runner &runner, const std::vector<RunRequest> &requests,
           const ExecOptions &opt, int inFd, int outFd)
{
    // The coordinator's interrupt handlers and pipes belong to the
    // parent: default dispositions here, so Ctrl-C on the process
    // group kills workers while the coordinator winds down cleanly.
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGPIPE, SIG_IGN);

    std::string buf;
    char chunk[4096];
    auto nextLine = [&](std::string &line) -> bool {
        for (;;) {
            std::size_t nl = buf.find('\n');
            if (nl != std::string::npos) {
                line.assign(buf, 0, nl);
                buf.erase(0, nl + 1);
                return true;
            }
            ssize_t n = ::read(inFd, chunk, sizeof chunk);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            if (n == 0)
                return false;
            buf.append(chunk, static_cast<std::size_t>(n));
        }
    };

    std::string line;
    while (nextLine(line)) {
        std::int64_t idx = -1;
        try {
            JsonValue msg = parseJson(line);
            const std::string &type =
                msg.get("type", "command").asString("command");
            if (type == "quit")
                ::_exit(0);
            if (type != "run")
                ::_exit(2);
            idx = msg.get("index", "command").asInt64("command");
            if (idx < 0 ||
                static_cast<std::size_t>(idx) >= requests.size())
                ::_exit(2);
        } catch (const std::exception &) {
            ::_exit(2); // protocol garbage: die, coordinator requeues
        }

        // Fault-injection hook: simulate a wedged worker (infinite
        // syscall loop) so the watchdog/requeue path is testable.
        if (opt.testHangOnIndex == idx) {
            for (;;)
                ::pause();
        }

        std::string out;
        try {
            RunResult r =
                runner.runOne(requests[static_cast<std::size_t>(idx)]);
            r.index = static_cast<std::size_t>(idx);
            out = encodeResult(r);
        } catch (const std::exception &e) {
            JsonObject o;
            o.add("type", "error")
                .add("index", idx)
                .add("message", std::string(e.what()));
            out = o.str();
        }
        out += '\n';
        if (!writeAll(outFd, out))
            ::_exit(1); // coordinator is gone
    }
    ::_exit(0);
}

/** One forked worker and its coordinator-side state. */
struct Slot
{
    pid_t pid = -1;
    int toFd = -1;   ///< Coordinator -> worker commands.
    int fromFd = -1; ///< Worker -> coordinator results.
    std::string rxBuf;
    /** Request index in flight; -1 when idle. */
    std::int64_t inflight = -1;
    /** Watchdog deadline (monotonic seconds); 0 = none armed. */
    double deadline = 0.0;
    /** Deaths since the last completed result (requeue/backoff state
     *  machine; reset to 0 by every result). */
    int consecutiveFailures = 0;
    /** Do not respawn before this time (exponential backoff). */
    double respawnAt = 0.0;
    /** Slot gave up: consecutiveFailures exceeded maxRespawns. */
    bool abandoned = false;

    bool running() const { return pid > 0; }
};

class Coordinator
{
  public:
    Coordinator(Runner &runner, const std::vector<RunRequest> &requests,
                const ExecOptions &opt)
        : runner_(runner), requests_(requests), opt_(opt),
          results_(requests.size()), have_(requests.size(), 0),
          retries_(requests.size(), 0)
    {
    }

    ~Coordinator() { killAll(); }

    std::vector<RunResult> run(ExecStats *stats);

  private:
    void spawn(std::size_t si, bool respawn);
    void dispatch();
    void handleLine(std::size_t si, const std::string &line);
    void onDeath(std::size_t si, const char *why);
    void runLocal(std::size_t idx);
    void finish(std::size_t idx, RunResult r);
    void killAll();
    void windDown();
    void checkStaleEntries();

    bool anyInflight() const
    {
        for (const Slot &s : slots_) {
            if (s.inflight >= 0)
                return true;
        }
        return false;
    }

    bool allAbandoned() const
    {
        for (const Slot &s : slots_) {
            if (!s.abandoned)
                return false;
        }
        return true;
    }

    Runner &runner_;
    const std::vector<RunRequest> &requests_;
    ExecOptions opt_;
    std::vector<RunResult> results_;
    std::vector<char> have_;
    std::vector<int> retries_;
    std::vector<std::string> keys_;
    std::unique_ptr<ResultCache> cache_;
    std::vector<Slot> slots_;
    std::deque<std::size_t> pending_;
    std::size_t completed_ = 0;
    std::exception_ptr firstError_;
    ExecStats stats_;
    bool killHookFired_ = false;
};

void
Coordinator::killAll()
{
    for (Slot &s : slots_) {
        if (!s.running())
            continue;
        ::kill(s.pid, SIGKILL);
        int status = 0;
        ::waitpid(s.pid, &status, 0);
        ::close(s.toFd);
        ::close(s.fromFd);
        s.pid = -1;
        s.toFd = s.fromFd = -1;
    }
}

void
Coordinator::spawn(std::size_t si, bool respawn)
{
    Slot &s = slots_[si];
    int cmd[2], res[2];
    // The coordinator is single-threaded; strerror's static buffer is
    // safe here (and the process dies on this path anyway).
    if (::pipe(cmd) != 0 || ::pipe(res) != 0)
        sim::fatal("exec: pipe() failed: %s",
                   std::strerror(errno)); // NOLINT(concurrency-mt-unsafe)
    // Buffered stdio written twice after fork() would corrupt the
    // bench's (deterministic) stdout.
    std::fflush(stdout);
    std::fflush(stderr);
    pid_t pid = ::fork();
    if (pid < 0)
        sim::fatal("exec: fork() failed: %s",
                   std::strerror(errno)); // NOLINT(concurrency-mt-unsafe)
    if (pid == 0) {
        // Child: drop every coordinator-side fd — holding a sibling's
        // pipe end open would mask that sibling's EOF from the
        // coordinator's poll loop.
        ::close(cmd[1]);
        ::close(res[0]);
        for (const Slot &other : slots_) {
            if (!other.running())
                continue;
            ::close(other.toFd);
            ::close(other.fromFd);
        }
        workerMain(runner_, requests_, opt_, cmd[0], res[1]);
    }
    ::close(cmd[0]);
    ::close(res[1]);
    s.pid = pid;
    s.toFd = cmd[1];
    s.fromFd = res[0];
    s.rxBuf.clear();
    s.inflight = -1;
    s.deadline = 0.0;
    if (respawn) {
        ++stats_.respawns;
        std::fprintf(stderr, "[exec] worker %zu respawned (pid %ld)\n",
                     si, static_cast<long>(pid));
    }
}

void
Coordinator::finish(std::size_t idx, RunResult r)
{
    if (have_[idx])
        return; // defensive: never double-complete a request
    r.index = idx;
    results_[idx] = std::move(r);
    have_[idx] = 1;
    ++completed_;
    if (cache_) {
        cache_->store(keys_[idx], results_[idx]);
        if (opt_.testAbortAfterResults >= 0 &&
            cache_->stores() >=
                static_cast<std::uint64_t>(opt_.testAbortAfterResults)) {
            // Fault-injection hook: die the hard way mid-sweep (after
            // the entry above was committed atomically), so resume
            // tests get a genuinely interrupted cache directory.
            std::fprintf(stderr,
                         "[exec] test hook: aborting after %llu cached "
                         "results\n",
                         static_cast<unsigned long long>(
                             cache_->stores()));
            std::fflush(stderr);
            ::_exit(3);
        }
    }
    if (runner_.progressFn())
        runner_.progressFn()(completed_, requests_.size(),
                             requests_[idx], results_[idx]);
}

void
Coordinator::runLocal(std::size_t idx)
{
    try {
        RunResult r = runner_.runOne(requests_[idx]);
        ++stats_.inProcess;
        finish(idx, std::move(r));
    } catch (...) {
        if (!firstError_)
            firstError_ = std::current_exception();
    }
}

void
Coordinator::onDeath(std::size_t si, const char *why)
{
    Slot &s = slots_[si];
    if (!s.running())
        return;
    ::kill(s.pid, SIGKILL); // idempotent; ensures reaping terminates
    int status = 0;
    ::waitpid(s.pid, &status, 0);
    ::close(s.toFd);
    ::close(s.fromFd);
    s.pid = -1;
    s.toFd = s.fromFd = -1;
    s.rxBuf.clear();
    std::int64_t idx = s.inflight;
    s.inflight = -1;
    s.deadline = 0.0;
    ++s.consecutiveFailures;

    if (idx >= 0) {
        ++stats_.requeues;
        std::size_t u = static_cast<std::size_t>(idx);
        ++retries_[u];
        std::fprintf(stderr,
                     "[exec] worker %zu died (%s); requeueing request "
                     "%lld (attempt %d/%d)\n",
                     si, why, static_cast<long long>(idx), retries_[u],
                     opt_.maxRetries + 1);
        if (retries_[u] > opt_.maxRetries) {
            std::fprintf(stderr,
                         "[exec] request %lld: retries exhausted; "
                         "degrading to in-process execution\n",
                         static_cast<long long>(idx));
            runLocal(u);
        } else {
            pending_.push_front(u);
        }
    } else {
        std::fprintf(stderr, "[exec] worker %zu died (%s) while idle\n",
                     si, why);
    }

    if (s.consecutiveFailures > opt_.maxRespawns) {
        s.abandoned = true;
        std::fprintf(stderr,
                     "[exec] worker %zu: %d consecutive failures; "
                     "abandoning the slot\n",
                     si, s.consecutiveFailures);
    } else {
        int k = s.consecutiveFailures;
        double backoff = opt_.backoffBaseSec *
            static_cast<double>(1u << static_cast<unsigned>(
                                    std::min(k - 1, 10)));
        s.respawnAt = monoSeconds() + backoff;
    }
}

void
Coordinator::handleLine(std::size_t si, const std::string &line)
{
    Slot &s = slots_[si];
    try {
        JsonValue msg = parseJson(line);
        if (const JsonValue *type = msg.find("type")) {
            // Request failure: deterministic, so never retried — it
            // aborts the batch exactly like the thread pool does.
            const std::string &t = type->asString("message type");
            if (t != "error")
                sim::fatal("exec: unexpected message type '%s'",
                           t.c_str());
            std::int64_t idx =
                msg.get("index", "error index").asInt64("error index");
            const std::string &what =
                msg.get("message", "error message")
                    .asString("error message");
            if (!firstError_) {
                std::string tag = idx >= 0 &&
                        static_cast<std::size_t>(idx) <
                            requests_.size()
                    ? requests_[static_cast<std::size_t>(idx)].tag
                    : std::string("?");
                firstError_ = std::make_exception_ptr(sim::FatalError(
                    "request '" + tag + "' failed: " + what));
            }
            s.inflight = -1;
            s.deadline = 0.0;
            s.consecutiveFailures = 0;
            return;
        }
        RunResult r = decodeResult(msg);
        if (s.inflight < 0 ||
            r.index != static_cast<std::size_t>(s.inflight))
            sim::fatal("exec: worker %zu answered request %zu while "
                       "%lld was in flight",
                       si, r.index,
                       static_cast<long long>(s.inflight));
        s.inflight = -1;
        s.deadline = 0.0;
        s.consecutiveFailures = 0;
        ++stats_.computed;
        finish(r.index, std::move(r));
    } catch (const sim::FatalError &) {
        // Undecodable or out-of-protocol message: treat like a crash
        // so the in-flight request is requeued, not lost.
        onDeath(si, "protocol error");
    }
}

void
Coordinator::dispatch()
{
    for (std::size_t si = 0; si < slots_.size(); ++si) {
        Slot &s = slots_[si];
        if (!s.running() || s.inflight >= 0 || firstError_)
            continue;
        if (pending_.empty())
            return;
        std::size_t idx = pending_.front();
        pending_.pop_front();
        s.inflight = static_cast<std::int64_t>(idx);
        s.deadline = opt_.requestTimeoutSec > 0
            ? monoSeconds() + opt_.requestTimeoutSec
            : 0.0;
        JsonObject o;
        o.add("type", "run")
            .add("index", static_cast<std::int64_t>(idx));
        if (!writeAll(s.toFd, o.str() + "\n"))
            onDeath(si, "command write failed");
    }
}

void
Coordinator::windDown()
{
    for (Slot &s : slots_) {
        if (!s.running())
            continue;
        JsonObject o;
        o.add("type", "quit");
        writeAll(s.toFd, o.str() + "\n"); // best effort
        ::close(s.toFd);
        int status = 0;
        ::waitpid(s.pid, &status, 0);
        ::close(s.fromFd);
        s.pid = -1;
        s.toFd = s.fromFd = -1;
    }
}

void
Coordinator::checkStaleEntries()
{
    if (!cache_)
        return;
    std::set<std::string> live(keys_.begin(), keys_.end());
    std::vector<std::string> stale = cache_->staleEntries(live);
    stats_.staleEntries = stale.size();
    if (stale.empty())
        return;
    std::fprintf(stderr,
                 "[exec] cache-dir '%s': %zu stale entries "
                 "(fingerprints match no request of this sweep)\n",
                 cache_->dir().c_str(), stale.size());
    for (std::size_t i = 0; i < stale.size() && i < 5; ++i)
        std::fprintf(stderr, "[exec]   stale: %s\n", stale[i].c_str());
    if (opt_.strictCache) {
        sim::fatal("cache-dir '%s' holds %zu stale entries "
                   "(GPUMP_EXEC_CACHE_STRICT=1)",
                   cache_->dir().c_str(), stale.size());
    }
}

std::vector<RunResult>
Coordinator::run(ExecStats *stats)
{
    const std::size_t total = requests_.size();
    stats_.total = total;

    // Writing to a worker that died between poll()s must surface as
    // an error return from write(), never a fatal signal.
    std::signal(SIGPIPE, SIG_IGN);

    // Resume: serve every request the cache already holds.  Keys are
    // computed up front — they also drive stale-entry detection.
    if (!opt_.cacheDir.empty()) {
        cache_ = std::make_unique<ResultCache>(opt_.cacheDir);
        keys_.reserve(total);
        for (const RunRequest &req : requests_)
            keys_.push_back(requestKey(runner_.baseConfig(), req));
        for (std::size_t i = 0; i < total; ++i) {
            RunResult r;
            if (cache_->lookup(keys_[i], r)) {
                r.index = i;
                results_[i] = std::move(r);
                have_[i] = 1;
                ++completed_;
            }
        }
        stats_.cacheHits = completed_;
        std::fprintf(stderr,
                     "[exec] %zu/%zu results loaded from cache\n",
                     completed_, total);
    }

    for (std::size_t i = 0; i < total; ++i) {
        if (!have_[i])
            pending_.push_back(i);
    }

    int want = opt_.workers > 0 ? opt_.workers
                                : std::max(1, runner_.jobs());
    std::size_t nworkers =
        std::min(static_cast<std::size_t>(want), pending_.size());
    slots_.resize(nworkers);
    for (std::size_t si = 0; si < nworkers; ++si)
        spawn(si, false);

    while (completed_ < total) {
        if (interruptRequested()) {
            int sig = interruptSignal();
            killAll();
            throw InterruptedError(
                sim::strformat(
                    "sweep interrupted by signal %d after %zu/%zu "
                    "requests%s",
                    sig, completed_, total,
                    cache_ ? " (completed results are cached; rerun "
                             "with the same --cache-dir to resume)"
                           : ""),
                sig);
        }
        if (firstError_) {
            if (!anyInflight())
                break;
        } else if (slots_.empty() || allAbandoned()) {
            // Graceful degradation: no worker will ever come back;
            // the coordinator finishes the sweep itself.
            if (!pending_.empty()) {
                std::fprintf(stderr,
                             "[exec] no usable workers left; running "
                             "%zu remaining requests in-process\n",
                             pending_.size());
            }
            while (!pending_.empty() && !firstError_) {
                std::size_t idx = pending_.front();
                pending_.pop_front();
                runLocal(idx);
            }
            if (firstError_)
                break;
            continue;
        }

        double now = monoSeconds();
        for (std::size_t si = 0; si < slots_.size(); ++si) {
            Slot &s = slots_[si];
            if (!s.running() && !s.abandoned && !firstError_ &&
                !pending_.empty() && now >= s.respawnAt)
                spawn(si, true);
        }

        dispatch();

        // Fault-injection hook: SIGKILL a busy worker once the n-th
        // computed result has landed, exercising requeue + respawn.
        if (opt_.testKillAfterResults >= 0 && !killHookFired_ &&
            stats_.computed >=
                static_cast<std::size_t>(opt_.testKillAfterResults)) {
            for (Slot &s : slots_) {
                if (s.running() && s.inflight >= 0) {
                    std::fprintf(stderr,
                                 "[exec] test hook: SIGKILLing worker "
                                 "pid %ld\n",
                                 static_cast<long>(s.pid));
                    ::kill(s.pid, SIGKILL);
                    killHookFired_ = true;
                    break;
                }
            }
        }

        // Poll timeout: the nearest of watchdog deadlines and respawn
        // cooldowns, capped so interrupts stay responsive.
        double wait = 0.2;
        for (const Slot &s : slots_) {
            if (s.running() && s.inflight >= 0 && s.deadline > 0.0)
                wait = std::min(wait, s.deadline - now);
            if (!s.running() && !s.abandoned && !pending_.empty())
                wait = std::min(wait, s.respawnAt - now);
        }
        int timeoutMs =
            std::max(0, static_cast<int>(wait * 1000.0) + 1);

        std::vector<struct pollfd> fds;
        std::vector<std::size_t> fdSlot;
        for (std::size_t si = 0; si < slots_.size(); ++si) {
            if (!slots_[si].running())
                continue;
            fds.push_back({slots_[si].fromFd, POLLIN, 0});
            fdSlot.push_back(si);
        }
        int rc = ::poll(fds.empty() ? nullptr : fds.data(),
                        static_cast<nfds_t>(fds.size()), timeoutMs);
        if (rc < 0 && errno != EINTR)
            sim::fatal("exec: poll() failed: %s",
                       std::strerror(errno)); // NOLINT(concurrency-mt-unsafe)

        for (std::size_t f = 0; f < fds.size(); ++f) {
            if (fds[f].revents == 0)
                continue;
            std::size_t si = fdSlot[f];
            Slot &s = slots_[si];
            if (!s.running())
                continue; // a protocol error above already reaped it
            char chunk[65536];
            ssize_t n = ::read(s.fromFd, chunk, sizeof chunk);
            if (n > 0) {
                s.rxBuf.append(chunk, static_cast<std::size_t>(n));
                std::size_t nl;
                while (s.running() &&
                       (nl = s.rxBuf.find('\n')) !=
                           std::string::npos) {
                    std::string line = s.rxBuf.substr(0, nl);
                    s.rxBuf.erase(0, nl + 1);
                    handleLine(si, line);
                }
            } else if (n == 0) {
                onDeath(si, "exited");
            } else if (errno != EINTR && errno != EAGAIN) {
                onDeath(si, "read error");
            }
        }

        if (opt_.requestTimeoutSec > 0) {
            now = monoSeconds();
            for (std::size_t si = 0; si < slots_.size(); ++si) {
                Slot &s = slots_[si];
                if (s.running() && s.inflight >= 0 &&
                    s.deadline > 0.0 && now > s.deadline) {
                    ++stats_.timeouts;
                    std::fprintf(
                        stderr,
                        "[exec] worker %zu exceeded the %.3fs request "
                        "timeout; killing it\n",
                        si, opt_.requestTimeoutSec);
                    onDeath(si, "request timeout");
                }
            }
        }
    }

    windDown();
    if (firstError_)
        std::rethrow_exception(firstError_);

    checkStaleEntries();
    std::fprintf(stderr,
                 "[exec] %zu requests: %zu cached, %zu computed on %zu "
                 "workers, %zu requeued (%zu timeouts), %zu respawns, "
                 "%zu in-process\n",
                 total, stats_.cacheHits, stats_.computed,
                 slots_.size(), stats_.requeues, stats_.timeouts,
                 stats_.respawns, stats_.inProcess);
    if (stats)
        *stats = stats_;
    return std::move(results_);
}

} // namespace

std::vector<RunResult>
runBatch(Runner &runner, const std::vector<RunRequest> &requests,
         const ExecOptions &options, ExecStats *stats)
{
    ExecOptions opt = options;
    opt.applyTestEnv();
    if (requests.empty()) {
        if (stats)
            *stats = ExecStats();
        return {};
    }
    Coordinator coordinator(runner, requests, opt);
    return coordinator.run(stats);
}

} // namespace exec
} // namespace harness
} // namespace gpump
