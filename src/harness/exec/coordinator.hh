/**
 * @file
 * Multi-process backend of harness::Runner (DESIGN.md §10).
 *
 * runBatch() partitions a RunRequest batch across forked worker
 * processes: a coordinator keeps one request in flight per worker,
 * ships work assignments and wire-encoded RunResults over pipes, and
 * merges results *by request position*, so the returned vector — and
 * therefore every table and JSONL line derived from it — is
 * byte-identical to the in-process `--jobs` thread pool for any
 * worker count.
 *
 * Robustness is the point of the subsystem:
 *  - a worker that exits, is killed, or trips the per-request
 *    watchdog has its in-flight request requeued to the surviving
 *    workers, with bounded retries per request;
 *  - dead worker slots are respawned after an exponential backoff; a
 *    slot that keeps dying is abandoned, and when every slot is gone
 *    the remaining requests degrade to in-process execution in the
 *    coordinator — the sweep still completes;
 *  - with ExecOptions::cacheDir set, every completed result is
 *    persisted (atomic write-then-rename) under its request
 *    fingerprint, so rerunning an interrupted sweep resumes from
 *    where it stopped;
 *  - a sim::FatalError raised *by a request* is not retried (it is
 *    deterministic): the batch aborts with that error, matching the
 *    thread-pool contract.
 */

#ifndef GPUMP_HARNESS_EXEC_COORDINATOR_HH
#define GPUMP_HARNESS_EXEC_COORDINATOR_HH

#include <cstddef>
#include <vector>

#include "harness/exec/options.hh"
#include "harness/runner.hh"

namespace gpump {
namespace harness {
namespace exec {

/** What a runBatch campaign did (telemetry for logs and tests). */
struct ExecStats
{
    std::size_t total = 0;       ///< Requests in the batch.
    std::size_t cacheHits = 0;   ///< Served from the result cache.
    std::size_t computed = 0;    ///< Executed by worker processes.
    std::size_t inProcess = 0;   ///< Degraded to coordinator-local runs.
    std::size_t requeues = 0;    ///< In-flight requests requeued.
    std::size_t timeouts = 0;    ///< Workers killed by the watchdog.
    std::size_t respawns = 0;    ///< Replacement workers forked.
    std::size_t staleEntries = 0; ///< Cache files matching no request.
};

/**
 * Execute @p requests for @p runner across forked workers and return
 * results in request order.  @p runner supplies the base config, the
 * per-request execution (Runner::runOne, in the children) and the
 * progress callback.  Raises InterruptedError after a SIGINT/SIGTERM
 * wind-down and rethrows the first request failure.
 *
 * @param stats out-parameter for campaign telemetry; may be null.
 */
std::vector<RunResult> runBatch(Runner &runner,
                                const std::vector<RunRequest> &requests,
                                const ExecOptions &options,
                                ExecStats *stats = nullptr);

} // namespace exec
} // namespace harness
} // namespace gpump

#endif // GPUMP_HARNESS_EXEC_COORDINATOR_HH
