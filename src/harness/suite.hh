/**
 * @file
 * Suite: declarative experiment grids.
 *
 * A Suite describes a whole figure/table campaign as data — workload
 * sizes, a plan generator (prioritized or uniform, as in Section 4.1)
 * and a list of named schemes, optionally with per-scheme config
 * overrides (for ablations) — and expands it into an ordered batch of
 * RunRequests for the Runner.  The expansion order is size-major,
 * then plan, then scheme, and Batch::indexOf maps a grid coordinate
 * back to its position so benches can aggregate results without
 * hand-rolled run loops.
 */

#ifndef GPUMP_HARNESS_SUITE_HH
#define GPUMP_HARNESS_SUITE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/runner.hh"

namespace gpump {
namespace harness {

/** One named scheme column of a suite. */
struct SchemeSpec
{
    /** Column name for reports and request tags. */
    std::string name;
    Scheme scheme;
    /** Per-scheme config overrides (ablation knobs). */
    sim::Config overrides;
    /** Run each plan with prioritization stripped (the nonprioritized
     *  baseline of Figure 5). */
    bool dropPriorities = false;
};

/** A built suite: the request list plus its grid layout. */
struct Batch
{
    std::string name;
    /** Workload sizes (process counts), one plan list each. */
    std::vector<int> sizes;
    std::vector<std::vector<workload::WorkloadPlan>> plansBySize;
    std::vector<SchemeSpec> schemes;
    /** All requests, ordered size-major, then plan, then scheme. */
    std::vector<RunRequest> requests;

    /** Number of plans generated for sizes[sizeIdx]. */
    std::size_t numPlans(std::size_t sizeIdx) const
    {
        return plansBySize[sizeIdx].size();
    }

    /** Request position of grid cell (size, plan, scheme). */
    std::size_t indexOf(std::size_t sizeIdx, std::size_t planIdx,
                        std::size_t schemeIdx) const;

  private:
    friend class Suite;
    /** Cumulative request offset of each size bucket. */
    std::vector<std::size_t> sizeOffsets_;
};

/** Builder for experiment grids. */
class Suite
{
  public:
    /** @param name suite name, used in request tags and reports. */
    explicit Suite(std::string name);

    /** Workload sizes (process counts) of the grid. */
    Suite &sizes(std::vector<int> s);

    /**
     * Prioritized plans per size (Figures 5/6): per_bench workloads
     * per benchmark in which that benchmark is the high-priority
     * process; each size uses seed base_seed + size, matching the
     * figure benches' convention.
     */
    Suite &prioritized(int per_bench, std::uint64_t base_seed);

    /** Uniform plans per size (Figures 7/8): count random workloads
     *  of equal-priority processes, seeded base_seed + size. */
    Suite &uniform(int count, std::uint64_t base_seed);

    /** A fixed, caller-built plan list (single size bucket). */
    Suite &fixedPlans(std::vector<workload::WorkloadPlan> plans);

    /**
     * Cloud-serving scenarios (single size bucket, one "plan" per
     * scenario): every request carries its scenario, the Runner
     * builds the simulation from it (open-loop arrivals, admission
     * control), and results gain per-class SLO metrics next to
     * ANTT/STP.  Each scenario's plan lists the tenant benchmarks
     * (for the isolated baselines) under the scenario seed.
     * Scenarios are validated here, before any simulation runs.
     */
    Suite &serving(std::vector<serve::ScenarioSpec> scenarios);

    /** Append a scheme column. */
    Suite &scheme(std::string name, Scheme s);

    /** Append a scheme column with config overrides (ablations). */
    Suite &scheme(std::string name, Scheme s, sim::Config overrides);

    /** Append a scheme column run with prioritization stripped. */
    Suite &schemeNonprioritized(std::string name, Scheme s);

    /**
     * Append one column per registered scheme: the cross-product of
     * every registered policy with every registered mechanism (for
     * policies that use one; non-preemptive policies contribute a
     * single column), all with the default transfer policy.  Column
     * names are the Scheme labels.  Registering a new policy or
     * mechanism — even out of tree — automatically widens every
     * suite built this way.
     */
    Suite &allSchemes();

    /** Replays every process must complete (default 3). */
    Suite &minReplays(int n);

    /** Safety horizon for every run (default: unlimited). */
    Suite &limit(sim::SimTime t);

    /**
     * Expand the grid into an ordered request batch.
     *
     * Fails fast (before any simulation runs) when a scheme names an
     * unregistered policy/mechanism — the error lists every
     * registered entry — or when two columns collide on name or on
     * the full scheme identity (label + overrides + prioritization),
     * which would make report columns indistinguishable.
     */
    Batch build() const;

  private:
    std::string name_;
    std::vector<int> sizes_{0};
    std::function<std::vector<workload::WorkloadPlan>(int)> plansFor_;
    /** Scenario behind each plan of the single serving bucket; empty
     *  for plain (closed-loop) suites. */
    std::vector<std::shared_ptr<const serve::ScenarioSpec>> serving_;
    std::vector<SchemeSpec> schemes_;
    int minReplays_ = 3;
    sim::SimTime limit_ = sim::maxTime;
};

/**
 * Structured result emission: one JSON object per run appended to
 * @p path (conventionally under results/), with the request identity,
 * the grid coordinate and the full metric set.  Parent directories
 * are created.  Returns the path written.
 */
std::string writeResultsJsonl(const std::string &path, const Batch &batch,
                              const std::vector<RunResult> &results);

} // namespace harness
} // namespace gpump

#endif // GPUMP_HARNESS_SUITE_HH
