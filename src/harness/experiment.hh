/**
 * @file
 * Experiment: the serial, single-run convenience wrapper over the
 * batch runner.
 *
 * Historically this was the whole harness ("call Experiment::run in a
 * loop"); batch work now goes through harness::Suite + harness::Runner
 * (see runner.hh for the declarative API and its determinism
 * contract).  Experiment remains for one-off runs and tests: it owns
 * a Runner configured for in-thread execution and shares its
 * thread-safe isolated-baseline cache.
 */

#ifndef GPUMP_HARNESS_EXPERIMENT_HH
#define GPUMP_HARNESS_EXPERIMENT_HH

#include <string>
#include <vector>

#include "harness/runner.hh"

namespace gpump {
namespace harness {

/** Result of one workload under one scheme. */
struct SchemeResult
{
    metrics::SystemMetrics metrics;
    std::vector<double> meanTurnaroundUs;
    std::uint64_t preemptions = 0;
    std::uint64_t kernelsCompleted = 0;
    double contextBytesSaved = 0.0;
    sim::SimTime endTime = 0;
};

/** Runs workloads under schemes against cached isolated baselines. */
class Experiment
{
  public:
    /** @param base config overrides applied to every simulation. */
    explicit Experiment(sim::Config base = sim::Config());

    const sim::Config &baseConfig() const
    {
        return runner_.baseConfig();
    }

    /**
     * Isolated execution time of @p benchmark (microseconds): the
     * application alone on the machine under FCFS, mean turnaround
     * over minReplays executions.  Cached (thread-safe).
     */
    double isolatedTimeUs(const std::string &benchmark);

    /** Run @p plan under @p scheme and compute the metric set. */
    SchemeResult run(const workload::WorkloadPlan &plan,
                     const Scheme &scheme);

    /** Replays each process must complete (default 3, Section 4.1). */
    void setMinReplays(int n) { minReplays_ = n; }
    int minReplays() const { return minReplays_; }

  private:
    Runner runner_;
    int minReplays_ = 3;
};

} // namespace harness
} // namespace gpump

#endif // GPUMP_HARNESS_EXPERIMENT_HH
