/**
 * @file
 * Experiment runner: the glue between workload plans, systems and
 * metrics.
 *
 * An Experiment caches per-benchmark isolated execution times (the
 * denominator of every Eyerman-Eeckhout metric) and runs (plan,
 * scheme) pairs to SystemMetrics.  All benches build on this.
 */

#ifndef GPUMP_HARNESS_EXPERIMENT_HH
#define GPUMP_HARNESS_EXPERIMENT_HH

#include <map>
#include <string>
#include <vector>

#include "metrics/metrics.hh"
#include "sim/config.hh"
#include "workload/generator.hh"
#include "workload/system.hh"

namespace gpump {
namespace harness {

/** A scheduling scheme: the knobs the paper's figures compare. */
struct Scheme
{
    std::string policy = "fcfs";
    std::string mechanism = "context_switch";
    std::string transferPolicy = "fcfs";

    /** "policy/mechanism" label for reports. */
    std::string label() const;
};

/** Result of one workload under one scheme. */
struct SchemeResult
{
    metrics::SystemMetrics metrics;
    std::vector<double> meanTurnaroundUs;
    std::uint64_t preemptions = 0;
    std::uint64_t kernelsCompleted = 0;
    double contextBytesSaved = 0.0;
    sim::SimTime endTime = 0;
};

/** Runs workloads under schemes against cached isolated baselines. */
class Experiment
{
  public:
    /** @param base config overrides applied to every simulation. */
    explicit Experiment(sim::Config base = sim::Config());

    const sim::Config &baseConfig() const { return base_; }

    /**
     * Isolated execution time of @p benchmark (microseconds): the
     * application alone on the machine under FCFS, mean turnaround
     * over minReplays executions.  Cached.
     */
    double isolatedTimeUs(const std::string &benchmark);

    /** Run @p plan under @p scheme and compute the metric set. */
    SchemeResult run(const workload::WorkloadPlan &plan,
                     const Scheme &scheme);

    /** Replays each process must complete (default 3, Section 4.1). */
    void setMinReplays(int n) { minReplays_ = n; }
    int minReplays() const { return minReplays_; }

  private:
    sim::Config base_;
    int minReplays_ = 3;
    std::map<std::string, double> isolatedCache_;
};

} // namespace harness
} // namespace gpump

#endif // GPUMP_HARNESS_EXPERIMENT_HH
