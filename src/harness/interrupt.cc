#include "harness/interrupt.hh"

#include <csignal>

namespace gpump {
namespace harness {

namespace {

volatile std::sig_atomic_t g_signal = 0;

extern "C" void
interruptHandler(int sig)
{
    g_signal = sig;
}

} // namespace

void
installInterruptHandlers()
{
    struct sigaction sa;
    sa.sa_handler = interruptHandler;
    sigemptyset(&sa.sa_mask);
    // One-shot: after the first signal the default disposition is
    // restored, so a second Ctrl-C kills a wedged sweep outright.
    sa.sa_flags = SA_RESETHAND;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

bool
interruptRequested()
{
    return g_signal != 0;
}

int
interruptSignal()
{
    return static_cast<int>(g_signal);
}

void
clearInterruptForTesting()
{
    g_signal = 0;
}

} // namespace harness
} // namespace gpump
