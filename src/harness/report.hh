/**
 * @file
 * Result reporting: aligned ASCII tables and CSV emission.
 *
 * Every bench prints the rows/series of its paper table or figure in
 * both human-readable and machine-readable (CSV) form so results can
 * be compared against the published numbers and replotted.
 */

#ifndef GPUMP_HARNESS_REPORT_HH
#define GPUMP_HARNESS_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

namespace gpump {
namespace harness {

/** Aligned-column ASCII table builder. */
class AsciiTable
{
  public:
    /** @param headers column titles. */
    explicit AsciiTable(std::vector<std::string> headers);

    /** Append one row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render with padded columns. */
    void print(std::ostream &os) const;

    /** Render as CSV (separators omitted). */
    void printCsv(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_; ///< empty row = separator
};

/** Format helpers for table cells. @{ */
std::string fmt(double value, int decimals = 2);
std::string fmtTimes(double value, int decimals = 2); ///< "1.53x"
/** @} */

} // namespace harness
} // namespace gpump

#endif // GPUMP_HARNESS_REPORT_HH
