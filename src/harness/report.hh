/**
 * @file
 * Result reporting: aligned ASCII tables, CSV and JSON-lines
 * emission.
 *
 * Every bench prints the rows/series of its paper table or figure in
 * both human-readable and machine-readable (CSV / JSONL) form so
 * results can be compared against the published numbers and
 * replotted.  JSON-lines files conventionally live under results/.
 */

#ifndef GPUMP_HARNESS_REPORT_HH
#define GPUMP_HARNESS_REPORT_HH

#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace gpump {
namespace harness {

/** Aligned-column ASCII table builder. */
class AsciiTable
{
  public:
    /** @param headers column titles. */
    explicit AsciiTable(std::vector<std::string> headers);

    /** Append one row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render with padded columns. */
    void print(std::ostream &os) const;

    /** Render as CSV (separators omitted). */
    void printCsv(std::ostream &os) const;

    /**
     * Render as JSON lines: one object per row, keyed by the column
     * headers (separators omitted).  Cells are emitted as JSON
     * strings — they are already formatted for display.
     */
    void printJsonl(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_; ///< empty row = separator
};

/** JSON-escape and quote @p s (including the surrounding '"'). */
std::string jsonQuote(const std::string &s);

/**
 * One flat JSON object with insertion-ordered keys.
 *
 * Deliberately minimal: the harness emits records, it does not parse
 * them.  Non-finite doubles render as null.
 */
class JsonObject
{
  public:
    JsonObject &add(const std::string &key, const std::string &value);
    JsonObject &add(const std::string &key, const char *value);
    JsonObject &add(const std::string &key, double value);
    JsonObject &add(const std::string &key, std::int64_t value);
    JsonObject &add(const std::string &key, bool value);
    JsonObject &add(const std::string &key,
                    const std::vector<double> &values);
    JsonObject &add(const std::string &key,
                    const std::vector<std::int64_t> &values);
    JsonObject &add(const std::string &key,
                    const std::vector<std::string> &values);

    /** Render as one-line "{...}". */
    std::string str() const;

  private:
    /** Keys paired with already-rendered JSON values. */
    std::vector<std::pair<std::string, std::string>> fields_;
};

/**
 * Appends one JSON object per line to a file, creating parent
 * directories as needed.  The file is truncated on open.
 */
class JsonlWriter
{
  public:
    /** @param path output file; raises fatal() when unwritable. */
    explicit JsonlWriter(const std::string &path);

    void write(const JsonObject &object);

    /** The underlying stream, e.g. for AsciiTable::printJsonl. */
    std::ostream &stream() { return os_; }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::ofstream os_;
};

/** Format helpers for table cells. @{ */
std::string fmt(double value, int decimals = 2);
std::string fmtTimes(double value, int decimals = 2); ///< "1.53x"
/** @} */

} // namespace harness
} // namespace gpump

#endif // GPUMP_HARNESS_REPORT_HH
