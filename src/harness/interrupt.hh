/**
 * @file
 * Graceful SIGINT/SIGTERM handling for batch sweeps.
 *
 * A long sweep must be interruptible without corrupting its outputs:
 * on the first signal the harness stops dispatching new runs, lets
 * (or makes) in-flight work wind down, flushes only *complete* JSONL
 * lines and result-cache entries, and exits non-zero.  The handler
 * just records the signal in a sig_atomic_t flag; harness::Runner's
 * dispatch loops poll interruptRequested() and raise
 * InterruptedError once their workers have stopped.  SA_RESETHAND
 * restores the default disposition, so a second Ctrl-C always kills
 * the process immediately.
 *
 * Handlers are opt-in (benches install them; unit tests and library
 * users keep default dispositions unless they ask) and the poll is a
 * relaxed atomic read, so the flag costs nothing when unused.
 */

#ifndef GPUMP_HARNESS_INTERRUPT_HH
#define GPUMP_HARNESS_INTERRUPT_HH

#include <stdexcept>
#include <string>

namespace gpump {
namespace harness {

/** Raised by Runner::run / exec::runBatch after a SIGINT/SIGTERM
 *  wind-down.  Callers print the message and exit non-zero
 *  (conventionally 128 + signal). */
class InterruptedError : public std::runtime_error
{
  public:
    InterruptedError(std::string msg, int sig)
        : std::runtime_error(std::move(msg)), signal_(sig)
    {
    }

    /** The signal that interrupted the sweep. */
    int signal() const { return signal_; }

  private:
    int signal_;
};

/** Install the flag-recording SIGINT/SIGTERM handlers (idempotent). */
void installInterruptHandlers();

/** True once a handled signal has arrived. */
bool interruptRequested();

/** The recorded signal number; 0 when none arrived. */
int interruptSignal();

/** Reset the flag (tests that raise() signals on purpose). */
void clearInterruptForTesting();

} // namespace harness
} // namespace gpump

#endif // GPUMP_HARNESS_INTERRUPT_HH
