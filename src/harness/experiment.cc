#include "harness/experiment.hh"

namespace gpump {
namespace harness {

Experiment::Experiment(sim::Config base)
    : runner_(std::move(base), /*jobs=*/1)
{
}

double
Experiment::isolatedTimeUs(const std::string &benchmark)
{
    return runner_.isolatedTimeUs(benchmark, minReplays_);
}

SchemeResult
Experiment::run(const workload::WorkloadPlan &plan, const Scheme &scheme)
{
    RunRequest req;
    req.plan = plan;
    req.scheme = scheme;
    req.minReplays = minReplays_;
    RunResult r = runner_.runOne(req);

    SchemeResult out;
    out.metrics = std::move(r.metrics);
    out.meanTurnaroundUs = std::move(r.sys.meanTurnaroundUs);
    out.preemptions = r.sys.preemptions;
    out.kernelsCompleted = r.sys.kernelsCompleted;
    out.contextBytesSaved = r.sys.contextBytesSaved;
    out.endTime = r.sys.endTime;
    return out;
}

} // namespace harness
} // namespace gpump
