#include "harness/experiment.hh"

#include "sim/logging.hh"

namespace gpump {
namespace harness {

std::string
Scheme::label() const
{
    if (policy == "fcfs" || policy == "npq")
        return policy;
    return policy + "/" + mechanism;
}

Experiment::Experiment(sim::Config base)
    : base_(std::move(base))
{
}

double
Experiment::isolatedTimeUs(const std::string &benchmark)
{
    auto it = isolatedCache_.find(benchmark);
    if (it != isolatedCache_.end())
        return it->second;

    workload::SystemSpec spec;
    spec.benchmarks = {benchmark};
    spec.policy = "fcfs";
    spec.mechanism = "context_switch";
    spec.transferPolicy = "fcfs";
    spec.seed = 0x150ca7ed; // isolated runs share one fixed seed
    spec.minReplays = minReplays_;

    workload::System system(spec, base_);
    workload::SystemResult result = system.run();
    double us = result.meanTurnaroundUs.at(0);
    GPUMP_ASSERT(us > 0.0, "isolated run of %s took no time",
                 benchmark.c_str());
    isolatedCache_.emplace(benchmark, us);
    return us;
}

SchemeResult
Experiment::run(const workload::WorkloadPlan &plan, const Scheme &scheme)
{
    workload::SystemSpec spec;
    spec.benchmarks = plan.benchmarks;
    spec.priorities = plan.priorities();
    spec.policy = scheme.policy;
    spec.mechanism = scheme.mechanism;
    spec.transferPolicy = scheme.transferPolicy;
    spec.seed = plan.seed;
    spec.minReplays = minReplays_;

    workload::System system(spec, base_);
    workload::SystemResult run_result = system.run();

    std::vector<double> isolated;
    isolated.reserve(plan.benchmarks.size());
    for (const auto &b : plan.benchmarks)
        isolated.push_back(isolatedTimeUs(b));

    SchemeResult out;
    out.metrics = metrics::computeMetrics(isolated,
                                          run_result.meanTurnaroundUs);
    out.meanTurnaroundUs = run_result.meanTurnaroundUs;
    out.preemptions = run_result.preemptions;
    out.kernelsCompleted = run_result.kernelsCompleted;
    out.contextBytesSaved = run_result.contextBytesSaved;
    out.endTime = run_result.endTime;
    return out;
}

} // namespace harness
} // namespace gpump
