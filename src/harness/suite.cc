#include "harness/suite.hh"

#include <set>
#include <utility>

#include "core/policy.hh"
#include "core/preemption.hh"
#include "harness/report.hh"
#include "sim/logging.hh"

namespace gpump {
namespace harness {

std::size_t
Batch::indexOf(std::size_t sizeIdx, std::size_t planIdx,
               std::size_t schemeIdx) const
{
    GPUMP_ASSERT(sizeIdx < sizes.size() &&
                     planIdx < plansBySize[sizeIdx].size() &&
                     schemeIdx < schemes.size(),
                 "batch cell (%zu, %zu, %zu) out of range", sizeIdx,
                 planIdx, schemeIdx);
    return sizeOffsets_[sizeIdx] + planIdx * schemes.size() + schemeIdx;
}

Suite::Suite(std::string name)
    : name_(std::move(name))
{
}

Suite &
Suite::sizes(std::vector<int> s)
{
    sizes_ = std::move(s);
    return *this;
}

Suite &
Suite::prioritized(int per_bench, std::uint64_t base_seed)
{
    plansFor_ = [per_bench, base_seed](int size) {
        return workload::makePrioritizedPlans(
            size, per_bench, base_seed + static_cast<unsigned>(size));
    };
    return *this;
}

Suite &
Suite::uniform(int count, std::uint64_t base_seed)
{
    plansFor_ = [count, base_seed](int size) {
        return workload::makeUniformPlans(
            size, count, base_seed + static_cast<unsigned>(size));
    };
    return *this;
}

Suite &
Suite::fixedPlans(std::vector<workload::WorkloadPlan> plans)
{
    int size = plans.empty()
        ? 0
        : static_cast<int>(plans.front().benchmarks.size());
    sizes_ = {size};
    plansFor_ = [plans = std::move(plans)](int) { return plans; };
    return *this;
}

Suite &
Suite::serving(std::vector<serve::ScenarioSpec> scenarios)
{
    GPUMP_ASSERT(!scenarios.empty(),
                 "suite '%s': serving() needs at least one scenario",
                 name_.c_str());
    serving_.clear();
    std::vector<workload::WorkloadPlan> plans;
    std::set<std::string> names;
    for (serve::ScenarioSpec &sc : scenarios) {
        sc.validate();
        if (!names.insert(sc.name).second) {
            sim::fatal("suite '%s' has two scenarios named '%s'",
                       name_.c_str(), sc.name.c_str());
        }
        auto shared = std::make_shared<const serve::ScenarioSpec>(
            std::move(sc));
        workload::WorkloadPlan plan;
        for (const serve::TenantSpec &t : shared->tenants)
            plan.benchmarks.push_back(t.benchmark);
        plan.seed = shared->seed;
        plans.push_back(std::move(plan));
        serving_.push_back(std::move(shared));
    }
    // One size bucket; the "size" coordinate is meaningless for
    // scenarios (tenant counts may differ per plan), so it is 0 and
    // reports key on the scenario name instead.
    sizes_ = {0};
    plansFor_ = [plans = std::move(plans)](int) { return plans; };
    return *this;
}

Suite &
Suite::scheme(std::string name, Scheme s)
{
    return scheme(std::move(name), std::move(s), sim::Config());
}

Suite &
Suite::scheme(std::string name, Scheme s, sim::Config overrides)
{
    SchemeSpec spec;
    spec.name = std::move(name);
    spec.scheme = std::move(s);
    spec.overrides = std::move(overrides);
    schemes_.push_back(std::move(spec));
    return *this;
}

Suite &
Suite::schemeNonprioritized(std::string name, Scheme s)
{
    SchemeSpec spec;
    spec.name = std::move(name);
    spec.scheme = std::move(s);
    spec.dropPriorities = true;
    schemes_.push_back(std::move(spec));
    return *this;
}

Suite &
Suite::allSchemes()
{
    // Make sure the built-in registrars ran before walking the
    // registries (see registry.hh on static-archive link anchors).
    core::linkBuiltinPolicies();
    core::linkBuiltinMechanisms();
    for (const std::string &p : core::policyRegistry().list()) {
        const auto &pd = core::policyRegistry().at(p);
        if (!pd.usesMechanism) {
            Scheme s{p, "context_switch", "fcfs"};
            scheme(s.label(), s);
            continue;
        }
        for (const std::string &m : core::mechanismRegistry().list()) {
            Scheme s{p, m, "fcfs"};
            scheme(s.label(), s);
        }
    }
    return *this;
}

Suite &
Suite::minReplays(int n)
{
    minReplays_ = n;
    return *this;
}

Suite &
Suite::limit(sim::SimTime t)
{
    limit_ = t;
    return *this;
}

Batch
Suite::build() const
{
    GPUMP_ASSERT(plansFor_ != nullptr,
                 "suite '%s' has no plan source (call prioritized(), "
                 "uniform() or fixedPlans())",
                 name_.c_str());
    GPUMP_ASSERT(!schemes_.empty(), "suite '%s' has no schemes",
                 name_.c_str());

    // Registry-driven validation: fail fast on unknown scheme names
    // (the registry error lists every registered entry) and on
    // colliding columns, before any simulation time is spent.
    core::linkBuiltinPolicies();
    core::linkBuiltinMechanisms();
    std::set<std::string> names;
    std::set<std::string> identities;
    for (const SchemeSpec &spec : schemes_) {
        core::policyRegistry().at(spec.scheme.policy);
        core::mechanismRegistry().at(spec.scheme.mechanism);
        if (!names.insert(spec.name).second) {
            sim::fatal("suite '%s' has two scheme columns named '%s'",
                       name_.c_str(), spec.name.c_str());
        }
        std::string identity = spec.scheme.label() + "\n" +
            spec.overrides.fingerprint() + "\n" +
            (spec.dropPriorities ? "noprio" : "prio");
        if (!identities.insert(identity).second) {
            sim::fatal("suite '%s': columns duplicate the scheme '%s' "
                       "(same overrides and prioritization)",
                       name_.c_str(), spec.scheme.label().c_str());
        }
    }

    Batch batch;
    batch.name = name_;
    batch.sizes = sizes_;
    batch.schemes = schemes_;
    for (int size : sizes_) {
        batch.sizeOffsets_.push_back(batch.requests.size());
        batch.plansBySize.push_back(plansFor_(size));
        const auto &plans = batch.plansBySize.back();
        for (std::size_t pi = 0; pi < plans.size(); ++pi) {
            for (const auto &spec : schemes_) {
                RunRequest req;
                req.plan = plans[pi];
                if (spec.dropPriorities)
                    req.plan.highPriorityIndex = -1;
                req.scheme = spec.scheme;
                req.overrides = spec.overrides;
                req.minReplays = minReplays_;
                req.limit = limit_;
                req.index = batch.requests.size();
                if (!serving_.empty()) {
                    req.serving = serving_[pi];
                    req.tag = name_ + "/" + req.serving->name + "/" +
                        spec.name;
                } else {
                    req.tag = name_ + "/size=" + std::to_string(size) +
                        "/plan=" + std::to_string(pi) + "/" + spec.name;
                }
                batch.requests.push_back(std::move(req));
            }
        }
    }
    return batch;
}

namespace {

/** Registered doc string of a scheme's policy ("" when unknown). */
std::string
policyDocOf(const Scheme &s)
{
    const auto *d = core::policyRegistry().find(s.policy);
    return d ? d->doc : "";
}

/** Registered doc string of a scheme's mechanism; "" for unknown
 *  names and for policies the mechanism never acts under. */
std::string
mechanismDocOf(const Scheme &s)
{
    const auto *pd = core::policyRegistry().find(s.policy);
    if (pd != nullptr && !pd->usesMechanism)
        return "";
    const auto *d = core::mechanismRegistry().find(s.mechanism);
    return d ? d->doc : "";
}

} // namespace

std::string
writeResultsJsonl(const std::string &path, const Batch &batch,
                  const std::vector<RunResult> &results)
{
    GPUMP_ASSERT(results.size() == batch.requests.size(),
                 "writeResultsJsonl: %zu results for %zu requests",
                 results.size(), batch.requests.size());

    JsonlWriter out(path);
    for (std::size_t si = 0; si < batch.sizes.size(); ++si) {
        for (std::size_t pi = 0; pi < batch.numPlans(si); ++pi) {
            for (std::size_t ci = 0; ci < batch.schemes.size(); ++ci) {
                std::size_t idx = batch.indexOf(si, pi, ci);
                const RunRequest &req = batch.requests[idx];
                const RunResult &r = results[idx];
                JsonObject o;
                o.add("suite", batch.name)
                    .add("index", static_cast<std::int64_t>(idx))
                    .add("tag", r.tag)
                    .add("size", static_cast<std::int64_t>(
                                     batch.sizes[si]))
                    .add("plan", static_cast<std::int64_t>(pi))
                    .add("scheme", batch.schemes[ci].name)
                    .add("label", r.scheme.label())
                    .add("policy_doc", policyDocOf(r.scheme))
                    .add("mechanism_doc", mechanismDocOf(r.scheme))
                    .add("benchmarks", req.plan.benchmarks)
                    .add("seed",
                         sim::strformat("%llu",
                                        static_cast<unsigned long long>(
                                            req.plan.seed)))
                    .add("antt", r.metrics.antt)
                    .add("stp", r.metrics.stp)
                    .add("fairness", r.metrics.fairness)
                    .add("ntt", r.metrics.ntt)
                    .add("turnaround_us", r.sys.meanTurnaroundUs)
                    .add("isolated_us", r.isolatedUs)
                    .add("preemptions", static_cast<std::int64_t>(
                                            r.sys.preemptions))
                    .add("kernels_completed",
                         static_cast<std::int64_t>(
                             r.sys.kernelsCompleted))
                    .add("end_time_us",
                         sim::toMicroseconds(r.sys.endTime))
                    .add("events_executed",
                         static_cast<std::int64_t>(r.sys.eventsExecuted))
                    .add("wall_seconds", r.wallSeconds)
                    .add("events_per_sec", r.eventsPerSec());
                if (r.servingRun) {
                    // Per-class SLO metrics, index-aligned vectors
                    // (non-finite values — empty classes, undefined
                    // fairness — render as null by JsonObject's
                    // convention).
                    std::vector<std::string> cls;
                    std::vector<std::int64_t> requests, completed,
                        dropped, misses, counts;
                    std::vector<double> mean, p50, p99, p999, maxv,
                        miss_rate, tput, goodput;
                    for (const serve::ClassMetrics &c :
                         r.serving.classes) {
                        cls.push_back(c.name);
                        requests.push_back(c.requests);
                        completed.push_back(c.completed);
                        dropped.push_back(c.dropped);
                        misses.push_back(c.deadlineMisses);
                        counts.push_back(c.latency.n);
                        mean.push_back(c.latency.mean);
                        p50.push_back(c.latency.p50);
                        p99.push_back(c.latency.p99);
                        p999.push_back(c.latency.p999);
                        maxv.push_back(c.latency.max);
                        miss_rate.push_back(c.missRate);
                        tput.push_back(c.throughputPerSec);
                        goodput.push_back(c.goodputPerSec);
                    }
                    o.add("scenario", req.serving->name)
                        .add("horizon_us", req.serving->horizonUs)
                        .add("classes", cls)
                        .add("requests", requests)
                        .add("completed", completed)
                        .add("dropped", dropped)
                        .add("deadline_misses", misses)
                        .add("latency_n", counts)
                        .add("latency_mean_us", mean)
                        .add("latency_p50_us", p50)
                        .add("latency_p99_us", p99)
                        .add("latency_p999_us", p999)
                        .add("latency_max_us", maxv)
                        .add("miss_rate", miss_rate)
                        .add("throughput_per_sec", tput)
                        .add("goodput_per_sec", goodput)
                        .add("window_fairness", r.serving.windowFairness)
                        .add("window_us", r.serving.windowUs);
                }
                out.write(o);
            }
        }
    }
    return out.path();
}

} // namespace harness
} // namespace gpump
