#include "harness/report.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace gpump {
namespace harness {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    GPUMP_ASSERT(!headers_.empty(), "table with no columns");
}

void
AsciiTable::addRow(std::vector<std::string> cells)
{
    GPUMP_ASSERT(cells.size() == headers_.size(),
                 "row with %zu cells in a %zu-column table",
                 cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

void
AsciiTable::addSeparator()
{
    rows_.emplace_back(); // empty row marks a separator
}

void
AsciiTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_line = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "" : "  ");
            os << cells[c];
            os << std::string(widths[c] - cells[c].size(), ' ');
        }
        os << "\n";
    };
    auto print_rule = [&] {
        std::size_t total = 0;
        for (std::size_t c = 0; c < widths.size(); ++c)
            total += widths[c] + (c == 0 ? 0 : 2);
        os << std::string(total, '-') << "\n";
    };

    print_line(headers_);
    print_rule();
    for (const auto &row : rows_) {
        if (row.empty())
            print_rule();
        else
            print_line(row);
    }
}

void
AsciiTable::printCsv(std::ostream &os) const
{
    auto print_line = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << (c == 0 ? "" : ",") << cells[c];
        os << "\n";
    };
    print_line(headers_);
    for (const auto &row : rows_) {
        if (!row.empty())
            print_line(row);
    }
}

std::string
fmt(double value, int decimals)
{
    return sim::strformat("%.*f", decimals, value);
}

std::string
fmtTimes(double value, int decimals)
{
    return sim::strformat("%.*fx", decimals, value);
}

} // namespace harness
} // namespace gpump
