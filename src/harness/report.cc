#include "harness/report.hh"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <ostream>

#include "sim/logging.hh"

namespace gpump {
namespace harness {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    GPUMP_ASSERT(!headers_.empty(), "table with no columns");
}

void
AsciiTable::addRow(std::vector<std::string> cells)
{
    GPUMP_ASSERT(cells.size() == headers_.size(),
                 "row with %zu cells in a %zu-column table",
                 cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

void
AsciiTable::addSeparator()
{
    rows_.emplace_back(); // empty row marks a separator
}

void
AsciiTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_line = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "" : "  ");
            os << cells[c];
            os << std::string(widths[c] - cells[c].size(), ' ');
        }
        os << "\n";
    };
    auto print_rule = [&] {
        std::size_t total = 0;
        for (std::size_t c = 0; c < widths.size(); ++c)
            total += widths[c] + (c == 0 ? 0 : 2);
        os << std::string(total, '-') << "\n";
    };

    print_line(headers_);
    print_rule();
    for (const auto &row : rows_) {
        if (row.empty())
            print_rule();
        else
            print_line(row);
    }
}

void
AsciiTable::printCsv(std::ostream &os) const
{
    auto print_line = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << (c == 0 ? "" : ",") << cells[c];
        os << "\n";
    };
    print_line(headers_);
    for (const auto &row : rows_) {
        if (!row.empty())
            print_line(row);
    }
}

void
AsciiTable::printJsonl(std::ostream &os) const
{
    for (const auto &row : rows_) {
        if (row.empty())
            continue;
        JsonObject o;
        for (std::size_t c = 0; c < row.size(); ++c)
            o.add(headers_[c], row[c]);
        os << o.str() << "\n";
    }
}

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char ch : s) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20)
                out += sim::strformat("\\u%04x",
                                      static_cast<unsigned>(ch));
            else
                out += ch;
        }
    }
    out += '"';
    return out;
}

namespace {

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    return sim::strformat("%.17g", value);
}

} // namespace

JsonObject &
JsonObject::add(const std::string &key, const std::string &value)
{
    fields_.emplace_back(key, jsonQuote(value));
    return *this;
}

JsonObject &
JsonObject::add(const std::string &key, const char *value)
{
    return add(key, std::string(value));
}

JsonObject &
JsonObject::add(const std::string &key, double value)
{
    fields_.emplace_back(key, jsonNumber(value));
    return *this;
}

JsonObject &
JsonObject::add(const std::string &key, std::int64_t value)
{
    fields_.emplace_back(
        key, sim::strformat("%lld", static_cast<long long>(value)));
    return *this;
}

JsonObject &
JsonObject::add(const std::string &key, bool value)
{
    fields_.emplace_back(key, value ? "true" : "false");
    return *this;
}

JsonObject &
JsonObject::add(const std::string &key, const std::vector<double> &values)
{
    std::string arr = "[";
    for (std::size_t i = 0; i < values.size(); ++i)
        arr += (i ? "," : "") + jsonNumber(values[i]);
    arr += ']';
    fields_.emplace_back(key, std::move(arr));
    return *this;
}

JsonObject &
JsonObject::add(const std::string &key,
                const std::vector<std::int64_t> &values)
{
    std::string arr = "[";
    for (std::size_t i = 0; i < values.size(); ++i)
        arr += (i ? "," : "") + std::to_string(values[i]);
    arr += ']';
    fields_.emplace_back(key, std::move(arr));
    return *this;
}

JsonObject &
JsonObject::add(const std::string &key,
                const std::vector<std::string> &values)
{
    std::string arr = "[";
    for (std::size_t i = 0; i < values.size(); ++i)
        arr += (i ? "," : "") + jsonQuote(values[i]);
    arr += ']';
    fields_.emplace_back(key, std::move(arr));
    return *this;
}

std::string
JsonObject::str() const
{
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
        out += (i ? "," : "") + jsonQuote(fields_[i].first) + ":" +
            fields_[i].second;
    }
    out += '}';
    return out;
}

JsonlWriter::JsonlWriter(const std::string &path)
    : path_(path)
{
    std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
    }
    os_.open(path, std::ios::out | std::ios::trunc);
    if (!os_)
        sim::fatal("cannot open '%s' for writing", path.c_str());
}

void
JsonlWriter::write(const JsonObject &object)
{
    // One flush per record: if the process dies between writes —
    // interrupt, crashed sweep, OOM kill — the file ends on a record
    // boundary, never on a torn line.
    os_ << object.str() << "\n" << std::flush;
    if (!os_)
        sim::fatal("write to '%s' failed (disk full?)", path_.c_str());
}

std::string
fmt(double value, int decimals)
{
    return sim::strformat("%.*f", decimals, value);
}

std::string
fmtTimes(double value, int decimals)
{
    return sim::strformat("%.*fx", decimals, value);
}

} // namespace harness
} // namespace gpump
