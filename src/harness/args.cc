#include "harness/args.hh"

#include <cstdlib>

#include "sim/logging.hh"

namespace gpump {
namespace harness {

Args::Args(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string tok = argv[i];
        if (tok.rfind("--", 0) == 0) {
            auto eq = tok.find('=');
            if (eq == std::string::npos) {
                flags_[tok.substr(2)] = "true";
            } else {
                flags_[tok.substr(2, eq - 2)] = tok.substr(eq + 1);
            }
        } else if (!config_.parse(tok)) {
            sim::fatal("malformed argument '%s' (expected --flag[=v] "
                       "or key=value)",
                       tok.c_str());
        }
    }
}

bool
Args::hasFlag(const std::string &name) const
{
    return flags_.count(name) != 0;
}

std::string
Args::flag(const std::string &name, const std::string &def) const
{
    auto it = flags_.find(name);
    return it == flags_.end() ? def : it->second;
}

std::int64_t
Args::flagInt(const std::string &name, std::int64_t def) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return def;
    char *end = nullptr;
    long long v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        sim::fatal("flag --%s expects an integer, got '%s'",
                   name.c_str(), it->second.c_str());
    return static_cast<std::int64_t>(v);
}

std::vector<int>
Args::flagIntList(const std::string &name, std::vector<int> def) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return def;
    std::vector<int> out;
    const std::string &v = it->second;
    std::size_t pos = 0;
    while (pos <= v.size()) {
        std::size_t comma = v.find(',', pos);
        std::string item = v.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        char *end = nullptr;
        long long n = std::strtoll(item.c_str(), &end, 0);
        if (item.empty() || end == item.c_str() || *end != '\0') {
            sim::fatal("flag --%s expects a comma-separated integer "
                       "list, got '%s'",
                       name.c_str(), v.c_str());
        }
        out.push_back(static_cast<int>(n));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

double
Args::flagDouble(const std::string &name, double def) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return def;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        sim::fatal("flag --%s expects a number, got '%s'",
                   name.c_str(), it->second.c_str());
    return v;
}

} // namespace harness
} // namespace gpump
