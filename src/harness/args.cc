#include "harness/args.hh"

#include <cstdlib>
#include <iostream>

#include "core/policy.hh"
#include "core/preemption.hh"
#include "sim/logging.hh"

namespace gpump {
namespace harness {

namespace {

/** Print one registry section ("Scheduling policies", ...). */
template <typename Base>
void
printRegistry(std::ostream &os, const char *title,
              const core::SchemeRegistry<Base> &registry)
{
    os << title << ":\n";
    for (const std::string &name : registry.list()) {
        const auto &d = registry.at(name);
        os << "  " << name;
        if (!d.aliases.empty()) {
            os << " (";
            for (std::size_t i = 0; i < d.aliases.size(); ++i)
                os << (i ? ", " : "") << d.aliases[i];
            os << ")";
        }
        os << "\n      " << d.doc << "\n";
        for (const core::Tunable &t : d.tunables) {
            os << "      " << t.key << "  ("
               << core::tunableTypeName(t.type) << ", default "
               << (t.def.empty() ? "contextual" : t.def) << ")\n"
               << "          " << t.doc << "\n";
        }
    }
    os << "\n";
}

} // namespace

void
printSchemes(std::ostream &os)
{
    core::linkBuiltinPolicies();
    core::linkBuiltinMechanisms();
    printRegistry(os, "Scheduling policies", core::policyRegistry());
    printRegistry(os, "Preemption mechanisms",
                  core::mechanismRegistry());
    os << "Select with a harness::Scheme{policy, mechanism, "
          "transfer} and tune with bare key=value arguments.\n";
}

Args::Args(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string tok = argv[i];
        if (tok.rfind("--", 0) == 0) {
            auto eq = tok.find('=');
            if (eq == std::string::npos) {
                flags_[tok.substr(2)] = "true";
            } else {
                flags_[tok.substr(2, eq - 2)] = tok.substr(eq + 1);
            }
        } else if (!config_.parse(tok)) {
            sim::fatal("malformed argument '%s' (expected --flag[=v] "
                       "or key=value)",
                       tok.c_str());
        }
    }
    if (hasFlag("list-schemes")) {
        printSchemes(std::cout);
        std::exit(0);
    }
}

bool
Args::hasFlag(const std::string &name) const
{
    return flags_.count(name) != 0;
}

std::string
Args::flag(const std::string &name, const std::string &def) const
{
    auto it = flags_.find(name);
    return it == flags_.end() ? def : it->second;
}

std::int64_t
Args::flagInt(const std::string &name, std::int64_t def) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return def;
    char *end = nullptr;
    long long v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        sim::fatal("flag --%s expects an integer, got '%s'",
                   name.c_str(), it->second.c_str());
    return static_cast<std::int64_t>(v);
}

std::int64_t
Args::flagPositiveInt(const std::string &name, std::int64_t def) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return def;
    char *end = nullptr;
    long long v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0' || v < 1)
        sim::fatal("flag --%s expects a positive integer, got '%s'",
                   name.c_str(), it->second.c_str());
    return static_cast<std::int64_t>(v);
}

std::vector<int>
Args::flagIntList(const std::string &name, std::vector<int> def) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return def;
    std::vector<int> out;
    const std::string &v = it->second;
    std::size_t pos = 0;
    while (pos <= v.size()) {
        std::size_t comma = v.find(',', pos);
        std::string item = v.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        char *end = nullptr;
        long long n = std::strtoll(item.c_str(), &end, 0);
        if (item.empty() || end == item.c_str() || *end != '\0') {
            sim::fatal("flag --%s expects a comma-separated integer "
                       "list, got '%s'",
                       name.c_str(), v.c_str());
        }
        out.push_back(static_cast<int>(n));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

double
Args::flagDouble(const std::string &name, double def) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return def;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        sim::fatal("flag --%s expects a number, got '%s'",
                   name.c_str(), it->second.c_str());
    return v;
}

} // namespace harness
} // namespace gpump
