/**
 * @file
 * Batch runner: execute many (plan, scheme) simulation requests
 * across a thread pool, deterministically.
 *
 * The harness API is declarative: benches describe *what* to run as a
 * list of RunRequest values (usually produced by a harness::Suite
 * grid) and hand the whole batch to a Runner.  The Runner executes
 * requests on up to `jobs` worker threads — every request constructs
 * its own workload::System, and the sim layer keeps no global mutable
 * state — and returns results *in request order*, so the output of a
 * batch is bit-identical for any job count.
 *
 * Determinism contract:
 *  - each request's simulation is seeded solely by its plan.seed (the
 *    per-run RNG forks from there; see DESIGN.md §3), so a run's
 *    result does not depend on which thread executes it or when;
 *  - isolated baselines are memoized in a thread-safe cache keyed by
 *    (benchmark, replays, config); concurrent first access computes
 *    the value exactly once;
 *  - results are collected into a vector indexed by request position,
 *    never by completion order.
 */

#ifndef GPUMP_HARNESS_RUNNER_HH
#define GPUMP_HARNESS_RUNNER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "harness/exec/options.hh"
#include "metrics/metrics.hh"
#include "serve/slo.hh"
#include "sim/config.hh"
#include "workload/generator.hh"
#include "workload/system.hh"

namespace gpump {
namespace harness {

/** A scheduling scheme: the knobs the paper's figures compare.
 *  Policy and mechanism names resolve through the core scheme
 *  registries (core/registry.hh); run any bench with --list-schemes
 *  for the live list. */
struct Scheme
{
    std::string policy = "fcfs";
    std::string mechanism = "context_switch";
    std::string transferPolicy = "fcfs";

    /**
     * "policy/mechanism" label for reports, driven by the registry:
     * aliases canonicalize, policies that never preempt drop the
     * mechanism component, and the transfer policy is appended when
     * it is not the default ("fcfs"), so distinct registered schemes
     * always get distinct labels.
     */
    std::string label() const;
};

/** One simulation to run: a workload plan under a scheme. */
struct RunRequest
{
    /** The workload (benchmarks + optional prioritized process). */
    workload::WorkloadPlan plan;
    /** Cloud-serving mode: when set, the simulation is built from
     *  this scenario (open-loop arrival schedules, admission bounds,
     *  tenant priorities) instead of from `plan`, and the result
     *  additionally carries serving metrics.  The scenario's tenant
     *  benchmarks drive the isolated-baseline replays, so `plan` may
     *  be left empty.  Shared because many requests of a batch
     *  (scheme columns) run the same scenario. */
    std::shared_ptr<const serve::ScenarioSpec> serving;
    /** The scheduling scheme to run it under. */
    Scheme scheme;
    /** Config overrides merged on top of the Runner's base config. */
    sim::Config overrides;
    /** Executions each process must complete (Section 4.1). */
    int minReplays = 3;
    /** Safety horizon forwarded to System::run. */
    sim::SimTime limit = sim::maxTime;
    /** Stable human-readable tag, echoed into the result. */
    std::string tag;
    /** Position in the batch.  Suite::build sets it; Runner::run
     *  overrides every result's index with the actual batch position
     *  regardless, so hand-built request lists need not fill it. */
    std::size_t index = 0;
};

/** Outcome of one request: the full run plus derived metrics. */
struct RunResult
{
    /** @name Request identity, echoed back. @{ */
    std::size_t index = 0;
    std::string tag;
    Scheme scheme;
    /** @} */

    /** Eyerman-Eeckhout metric set against isolated baselines. */
    metrics::SystemMetrics metrics;
    /** Isolated per-process baselines the metrics were computed from. */
    std::vector<double> isolatedUs;
    /** Full simulation outcome (turnarounds, counters, run records). */
    workload::SystemResult sys;

    /** True when the request carried a serving scenario. */
    bool servingRun = false;
    /** Per-class tail-latency/SLO metrics (serve/slo.hh); only
     *  meaningful when servingRun is set. */
    serve::ServingMetrics serving;

    /** @name Simulator throughput telemetry
     * Wall-clock cost of the run and the resulting simulation rate.
     * Host-dependent by nature, so excluded from the determinism
     * contract (and from bit-identity comparisons); everything else
     * in a RunResult is a pure function of the request.
     * @{ */
    /** Wall-clock seconds Runner::execute spent in System::run. */
    double wallSeconds = 0.0;
    /** Simulator throughput over sys.eventsExecuted; quiet NaN when
     *  the run took no measurable wall time (unknown rate, not zero).
     *  Consistent with the non-finite-metrics convention: the JSONL
     *  writer serializes it as null rather than a misleading 0. */
    double eventsPerSec() const
    {
        return wallSeconds > 0.0
            ? static_cast<double>(sys.eventsExecuted) / wallSeconds
            : std::numeric_limits<double>::quiet_NaN();
    }
    /** @} */
};

/**
 * Thread-safe memoized isolated-baseline store.
 *
 * The isolated execution time of a benchmark (the denominator of
 * every Eyerman-Eeckhout metric) depends only on the benchmark, the
 * replay count and the config, so it is computed once per distinct
 * key and shared across all runs of a batch.  Concurrent first access
 * is serialized through a shared_future: exactly one thread computes,
 * the others wait and observe the same value.
 */
class IsolatedBaselineCache
{
  public:
    /**
     * Isolated execution time of @p benchmark (microseconds): the
     * application alone on the machine under FCFS with a fixed seed,
     * mean turnaround over @p minReplays executions.
     */
    double timeUs(const std::string &benchmark, const sim::Config &cfg,
                  int minReplays);

    /** Number of actual computations performed (for tests). */
    std::uint64_t computations() const
    {
        return computations_.load(std::memory_order_relaxed);
    }

  private:
    std::mutex mutex_;
    std::map<std::string, std::shared_future<double>> futures_;
    std::atomic<std::uint64_t> computations_{0};
};

/**
 * Executes batches of RunRequests across a thread pool.
 *
 * One Runner corresponds to one experiment campaign: it owns the base
 * config and the isolated-baseline cache shared by every request.
 */
class Runner
{
  public:
    /**
     * Progress callback: invoked after each completed request with
     * the number of completed requests so far (from an atomic
     * counter), the batch size, the request that just finished and
     * its result (e.g. for throughput reporting).  Called from
     * worker threads; must be thread-safe.
     */
    using ProgressFn = std::function<void(
        std::size_t done, std::size_t total, const RunRequest &req,
        const RunResult &res)>;

    /**
     * @param base config overrides applied to every simulation.
     * @param jobs worker threads for run(); 1 = serial (in-thread).
     */
    explicit Runner(sim::Config base = sim::Config(), int jobs = 1);

    const sim::Config &baseConfig() const { return base_; }

    /** Worker threads used by run(); clamped to >= 1. */
    void setJobs(int jobs);
    int jobs() const { return jobs_; }

    /**
     * Intra-run sharding: worker threads used *within* one request.
     *
     * A multiprogrammed run needs one isolated-baseline replay per
     * distinct benchmark in its plan (the denominators of its
     * Eyerman-Eeckhout metrics).  Those replays are independent
     * simulations, so with shards > 1 they execute on a small worker
     * pool concurrently with the request's own multiprogrammed
     * simulation, and the results are merged in process order once
     * everything joins.  The merge is deterministic and bit-identical
     * to shards == 1 for any shard count: every replay is a pure
     * function of (benchmark, replays, config) with a fixed seed, and
     * the memoizing baseline cache guarantees each is computed
     * exactly once no matter which worker gets there first — the same
     * contract as run()'s --jobs determinism (DESIGN.md §4, §7).
     *
     * Clamped to >= 1; 1 (the default) keeps the request fully
     * serial in its calling thread.
     */
    void setRunShards(int shards);
    int runShards() const { return runShards_; }

    void setProgress(ProgressFn fn) { progress_ = std::move(fn); }
    const ProgressFn &progressFn() const { return progress_; }

    /**
     * Multi-process backend (harness/exec): when the options are
     * enabled() — worker processes requested and/or a result cache
     * directory set — run() delegates the batch to exec::runBatch
     * instead of the in-thread pool.  Same ordering and bit-identity
     * contract; adds crash-isolation, requeue/retry and resumability
     * (DESIGN.md §10).
     */
    void setExec(exec::ExecOptions options)
    {
        exec_ = std::move(options);
    }
    const exec::ExecOptions &execOptions() const { return exec_; }

    /**
     * Execute the whole batch and return results in request order.
     *
     * Requests are distributed over the job pool; results are placed
     * by request position, so the returned vector is bit-identical
     * for any job count.  A failing request (e.g. sim::FatalError on
     * a livelocked schedule) aborts the rest of the batch: no new
     * requests are claimed, and the first exception is rethrown once
     * all workers have stopped.
     *
     * Responds to installInterruptHandlers() (harness/interrupt.hh):
     * after SIGINT/SIGTERM no new requests are claimed, in-flight
     * runs finish, and the batch raises InterruptedError so front
     * ends can exit non-zero without tearing output mid-record.
     */
    std::vector<RunResult> run(const std::vector<RunRequest> &requests);

    /** Execute one request in the calling thread. */
    RunResult runOne(const RunRequest &request);

    /**
     * Isolated execution time of @p benchmark under the base config
     * (see IsolatedBaselineCache::timeUs).  Memoized and thread-safe.
     */
    double isolatedTimeUs(const std::string &benchmark,
                          int minReplays = 3);

    /** The cache shared by every request of this Runner. */
    IsolatedBaselineCache &baselines() { return baselines_; }

  private:
    RunResult execute(const RunRequest &request);

    sim::Config base_;
    int jobs_ = 1;
    int runShards_ = 1;
    exec::ExecOptions exec_;
    ProgressFn progress_;
    IsolatedBaselineCache baselines_;
};

} // namespace harness
} // namespace gpump

#endif // GPUMP_HARNESS_RUNNER_HH
