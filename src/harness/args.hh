/**
 * @file
 * Minimal command-line handling for benches and examples.
 *
 * Every experiment binary accepts:
 *  - "--name=value" flags (consumed by the binary itself, e.g.
 *    --workloads=20);
 *  - bare "key=value" tokens, forwarded into the simulation Config so
 *    any model parameter can be overridden without recompiling;
 *  - "--list-schemes", handled right here in the Args constructor:
 *    prints every registered scheduling policy and preemption
 *    mechanism with doc strings and declared tunables, then exits —
 *    so every bench and example answers "what schemes exist?" without
 *    per-binary code.
 */

#ifndef GPUMP_HARNESS_ARGS_HH
#define GPUMP_HARNESS_ARGS_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/config.hh"

namespace gpump {
namespace harness {

/** Parsed command line. */
class Args
{
  public:
    /** Parse argv; raises fatal() on malformed tokens.  A
     *  --list-schemes flag is handled immediately: the scheme
     *  registries are printed to stdout and the process exits 0. */
    Args(int argc, char **argv);

    /** Config overrides collected from bare key=value tokens. */
    const sim::Config &config() const { return config_; }

    /** @name Flag accessors (--name=value), with defaults
     * @{ */
    bool hasFlag(const std::string &name) const;
    std::string flag(const std::string &name,
                     const std::string &def) const;
    std::int64_t flagInt(const std::string &name, std::int64_t def) const;
    /** flagInt that additionally rejects zero and negative values —
     *  the shared validator for parallelism degrees (--jobs, --shards,
     *  --workers), so every bench fails with the same message. */
    std::int64_t flagPositiveInt(const std::string &name,
                                 std::int64_t def) const;
    double flagDouble(const std::string &name, double def) const;
    /** Comma-separated integer list, e.g. --sizes=2,4,6,8. */
    std::vector<int> flagIntList(const std::string &name,
                                 std::vector<int> def) const;
    /** @} */

  private:
    sim::Config config_;
    std::map<std::string, std::string> flags_;
};

/**
 * Print every registered scheduling policy and preemption mechanism —
 * name, aliases, one-line doc, and declared tunables with types,
 * defaults and docs — to @p os.  The --list-schemes implementation,
 * also usable directly by examples.
 */
void printSchemes(std::ostream &os);

} // namespace harness
} // namespace gpump

#endif // GPUMP_HARNESS_ARGS_HH
