/**
 * @file
 * Per-context page tables and the per-SM TLB model.
 *
 * Section 3.1 of the paper extends each SM with a base page table
 * register so that SMs running kernels from different contexts can
 * translate through different address spaces (the baseline shared one
 * page table across the whole engine).  The memory hierarchy below
 * the private levels uses physical addresses, so no further changes
 * are needed.
 *
 * The functional model here provides:
 *  - a frame allocator and per-context page table (map/translate);
 *  - a small fully-associative LRU TLB per SM that must be flushed
 *    when the SM is re-targeted to a different context.
 */

#ifndef GPUMP_MEMORY_PAGE_TABLE_HH
#define GPUMP_MEMORY_PAGE_TABLE_HH

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "sim/types.hh"

namespace gpump {
namespace memory {

/** Virtual / physical addresses in the GPU address spaces. */
using VirtAddr = std::uint64_t;
using PhysAddr = std::uint64_t;

/** Page size used by the GPU MMU (64 KB, typical for GPUs). */
constexpr std::uint64_t gpuPageBytes = 64 * 1024;

/** Hands out physical frames; shared by all contexts on one device. */
class FrameAllocator
{
  public:
    /** @param frames total number of physical frames. */
    explicit FrameAllocator(std::uint64_t frames);

    /** Allocate one frame; std::nullopt when physical memory is full. */
    std::optional<PhysAddr> allocate();

    /** Return a frame to the pool.  Panics on an unaligned address, a
     *  frame this allocator never handed out, or a double free — all
     *  of which would silently corrupt the free pool. */
    void release(PhysAddr frame_base);

    std::uint64_t freeFrames() const;
    std::uint64_t totalFrames() const { return totalFrames_; }

  private:
    std::uint64_t totalFrames_;
    std::uint64_t nextNever_ = 0;       ///< frames never handed out yet
    std::list<PhysAddr> freeList_;      ///< recycled frames (FIFO)
    /** Membership mirror of freeList_: release() must reject frames
     *  already free in O(1) without disturbing the FIFO recycling
     *  order allocate() hands frames back in. */
    std::unordered_set<PhysAddr> freeSet_;
};

/**
 * One context's page table.  Walks are functional; the walk *latency*
 * is charged by the TLB model on a miss.
 */
class PageTable
{
  public:
    explicit PageTable(FrameAllocator &frames) : frames_(&frames) {}
    ~PageTable();

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    /**
     * Map @p bytes of virtual space starting at @p base.
     * @return false when physical frames are exhausted (no swap-out
     *         exists on this hardware), in which case nothing is
     *         mapped.
     */
    bool map(VirtAddr base, std::uint64_t bytes);

    /** Unmap a previously mapped range (page granular). */
    void unmap(VirtAddr base, std::uint64_t bytes);

    /** Translate; std::nullopt on unmapped access. */
    std::optional<PhysAddr> translate(VirtAddr va) const;

    std::size_t mappedPages() const { return entries_.size(); }

  private:
    FrameAllocator *frames_;
    std::unordered_map<std::uint64_t, PhysAddr> entries_; ///< vpage -> frame
};

/**
 * Fully-associative LRU TLB, one per SM.
 *
 * On a context switch of the SM the TLB must be flushed because the
 * new kernel translates through a different page table.
 */
class Tlb
{
  public:
    explicit Tlb(std::size_t entries = 64);

    /**
     * Look up @p va against @p pt, filling on miss.
     * @return the translation, or std::nullopt for an unmapped access
     *         (which is a fault; nothing is cached).
     */
    std::optional<PhysAddr> access(const PageTable &pt, VirtAddr va);

    /** Drop all entries (SM re-targeted to another context, or the
     *  context's physical mapping changed under it). */
    void flush();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    /** Times flush() ran (tests audit that every context change of an
     *  SM flushed its TLB). */
    std::uint64_t flushes() const { return flushes_; }
    std::size_t capacity() const { return capacity_; }

  private:
    std::size_t capacity_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t flushes_ = 0;
    /// LRU order: front = most recent.  Maps vpage -> paddr base.
    std::list<std::pair<std::uint64_t, PhysAddr>> lru_;
    std::unordered_map<std::uint64_t, decltype(lru_)::iterator> index_;
};

} // namespace memory
} // namespace gpump

#endif // GPUMP_MEMORY_PAGE_TABLE_HH
