/**
 * @file
 * PCI Express bus timing model.
 *
 * Matches the evaluation platform of Table 2: a 500 MHz, 32-lane link
 * moving data in 4 KB bursts (16 GB/s effective).  The bus is a pure
 * timing/utilization model; queueing discipline lives in the transfer
 * engine that drives it (gpu/transfer_engine).
 */

#ifndef GPUMP_MEMORY_PCIE_HH
#define GPUMP_MEMORY_PCIE_HH

#include <cstdint>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace gpump {
namespace memory {

/** Table 2 PCIe parameters, overridable through Config. */
struct PcieParams
{
    /** Link clock in Hz (Table 2: 500 MHz). */
    double clockHz = 500e6;
    /** Number of lanes (Table 2: 32). */
    int lanes = 32;
    /** Burst (maximum payload) size in bytes (Table 2: 4 KB). */
    std::int64_t burstBytes = 4096;
    /** Payload bytes moved per lane per clock. */
    double bytesPerLanePerClock = 1.0;
    /** Fixed DMA setup cost per transfer. */
    sim::SimTime setupLatency = sim::microseconds(2.0);

    /** Effective bandwidth in bytes/second. */
    double bandwidth() const
    {
        return clockHz * static_cast<double>(lanes) * bytesPerLanePerClock;
    }

    /** Build from config keys "pcie.*" with Table 2 defaults. */
    static PcieParams fromConfig(const sim::Config &cfg);
};

/**
 * The bus itself: computes transfer durations and tracks utilization.
 *
 * Transfers are padded to whole bursts, as real DMA engines move whole
 * max-payload packets.
 */
class PcieBus
{
  public:
    PcieBus(sim::StatRegistry &stats, const PcieParams &params);

    const PcieParams &params() const { return params_; }

    /**
     * Time to move @p bytes across the link, including per-transfer
     * DMA setup.  Zero-byte transfers still pay the setup cost (they
     * are real API calls).
     *
     * @pre bytes >= 0
     */
    sim::SimTime transferDuration(std::int64_t bytes) const;

    /** Account a completed transfer for the utilization statistics. */
    void recordTransfer(std::int64_t bytes, sim::SimTime duration);

    /** Total bytes moved so far. */
    double bytesMoved() const { return bytesMoved_.value(); }

    /** Total time the link spent busy. */
    sim::SimTime busyTime() const
    {
        return static_cast<sim::SimTime>(busyTime_.value());
    }

  private:
    PcieParams params_;
    sim::Scalar bytesMoved_;
    sim::Scalar transfers_;
    sim::Scalar busyTime_;
};

} // namespace memory
} // namespace gpump

#endif // GPUMP_MEMORY_PCIE_HH
