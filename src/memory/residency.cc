#include "memory/residency.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace gpump {
namespace memory {

ResidencyManager::ResidencyManager(sim::StatRegistry &stats,
                                   GpuMemory &gmem, SwapSubmit submit)
    : gmem_(&gmem), submit_(std::move(submit)),
      swapInsStat_(stats, "residency.swap_ins",
                   "contexts swapped into device memory"),
      swapOutsStat_(stats, "residency.swap_outs",
                    "contexts evicted from device memory"),
      swapBytes_(stats, "residency.swap_bytes",
                 "bytes moved by residency swaps (both directions)")
{
    GPUMP_ASSERT(submit_ != nullptr, "residency without a swap path");
}

void
ResidencyManager::setPinQuery(std::function<bool(sim::ContextId)> fn)
{
    pinned_ = std::move(fn);
}

void
ResidencyManager::setRemapNotifier(std::function<void(sim::ContextId)> fn)
{
    remapNotify_ = std::move(fn);
}

ResidencyManager::CtxInfo &
ResidencyManager::info(sim::ContextId ctx)
{
    auto it = ctxs_.find(ctx);
    GPUMP_ASSERT(it != ctxs_.end(), "unregistered context %d", ctx);
    return it->second;
}

const ResidencyManager::CtxInfo *
ResidencyManager::find(sim::ContextId ctx) const
{
    auto it = ctxs_.find(ctx);
    return it == ctxs_.end() ? nullptr : &it->second;
}

void
ResidencyManager::registerContext(sim::ContextId ctx, int priority,
                                  std::int64_t footprint, PageTable &pt)
{
    GPUMP_ASSERT(footprint >= 0, "negative footprint");
    GPUMP_ASSERT(ctxs_.find(ctx) == ctxs_.end(),
                 "context %d registered twice", ctx);
    if (footprint > gmem_->params().capacity) {
        sim::fatal("context %d footprint %lld exceeds device capacity "
                   "%lld on its own; no co-residency can make it fit",
                   ctx, static_cast<long long>(footprint),
                   static_cast<long long>(gmem_->params().capacity));
    }

    CtxInfo c;
    c.priority = priority;
    c.footprint = footprint;
    c.pt = &pt;
    c.lastUse = ++useClock_;

    // Admission: take residency immediately when the footprint fits
    // alongside the contexts already admitted (the common,
    // non-oversubscribed case behaves exactly as before); otherwise
    // start swapped out and pay the swap-in when first scheduled.
    if (footprint <= gmem_->params().capacity - gmem_->totalAllocated()) {
        gmem_->allocate(ctx, footprint);
        if (!pt.map(0, static_cast<std::uint64_t>(footprint)))
            sim::fatal("out of GPU page frames for context %d", ctx);
        c.state = State::Resident;
    } else {
        c.state = State::SwappedOut;
    }
    ctxs_.emplace(ctx, std::move(c));
#if GPUMP_AUDIT_ENABLED
    auditCapacity();
#endif
}

#if GPUMP_AUDIT_ENABLED

void
ResidencyManager::auditCapacity() const
{
    std::int64_t covered = 0;
    for (const auto &kv : ctxs_) {
        GPUMP_AUDIT(kv.second.footprint >= 0,
                    "context %d carries a negative footprint", kv.first);
        if (kv.second.state != State::SwappedOut)
            covered += kv.second.footprint;
    }
    // The modelled device cannot demand-page: state that does not fit
    // does not exist, so more covered footprint than capacity means
    // the simulation is now timing accesses to memory that was never
    // there.
    GPUMP_AUDIT(covered <= gmem_->params().capacity,
                "resident + swapping-in footprint %lld exceeds device "
                "capacity %lld",
                static_cast<long long>(covered),
                static_cast<long long>(gmem_->params().capacity));
    GPUMP_AUDIT(gmem_->totalAllocated() <= gmem_->params().capacity,
                "GpuMemory allocation total %lld exceeds capacity %lld",
                static_cast<long long>(gmem_->totalAllocated()),
                static_cast<long long>(gmem_->params().capacity));
}

void
ResidencyManager::auditForceResidentForTest(sim::ContextId ctx)
{
    info(ctx).state = State::Resident;
}

#endif // GPUMP_AUDIT_ENABLED

bool
ResidencyManager::resident(sim::ContextId ctx) const
{
    const CtxInfo *c = find(ctx);
    // Unregistered contexts (tests driving the framework directly)
    // have no footprint to swap: treat them as always resident.
    return c == nullptr || c->state == State::Resident;
}

void
ResidencyManager::ensureResident(sim::ContextId ctx,
                                 std::function<void()> ready)
{
    auto it = ctxs_.find(ctx);
    if (it == ctxs_.end()) {
        ready(); // unregistered: nothing to swap
        return;
    }
    CtxInfo &c = it->second;
    c.lastUse = ++useClock_;
#if GPUMP_AUDIT_ENABLED
    auditCapacity();
#endif
    switch (c.state) {
    case State::Resident:
        ready();
        return;
    case State::SwappingIn:
        c.waiters.push_back(std::move(ready));
        return;
    case State::SwappedOut:
        c.waiters.push_back(std::move(ready));
        if (!tryStartSwapIn(ctx) && !c.parked) {
            c.parked = true;
            parked_.push_back(ctx);
        }
        return;
    }
}

bool
ResidencyManager::makeRoom(std::int64_t bytes, sim::ContextId incoming)
{
    while (bytes > gmem_->params().capacity - gmem_->totalAllocated()) {
        sim::ContextId victim = sim::invalidContext;
        std::uint64_t oldest = 0;
        for (const auto &kv : ctxs_) {
            const CtxInfo &c = kv.second;
            if (kv.first == incoming || c.state != State::Resident)
                continue;
            if (pinned_ && pinned_(kv.first))
                continue;
            if (victim == sim::invalidContext || c.lastUse < oldest) {
                victim = kv.first;
                oldest = c.lastUse;
            }
        }
        if (victim == sim::invalidContext)
            return false;
        evict(victim);
    }
    return true;
}

void
ResidencyManager::evict(sim::ContextId victim)
{
    CtxInfo &v = info(victim);
    GPUMP_ASSERT(v.state == State::Resident, "evicting non-resident %d",
                 victim);
    v.pt->unmap(0, static_cast<std::uint64_t>(v.footprint));
    gmem_->freeAll(victim);
    v.state = State::SwappedOut;
    ++swapOuts_;
    ++swapOutsStat_;
    swapBytes_ += static_cast<double>(v.footprint);
    // The victim's frames are reusable now; any SM still holding its
    // translations must flush before the frames are re-handed out.
    if (remapNotify_)
        remapNotify_(victim);
    // The write-back occupies the transfer path; ordering with a
    // subsequent swap-in of the same context is preserved by the
    // transfer engine's own queueing.
    submit_(victim, v.priority, v.footprint, /*to_device=*/false,
            [this] { retryParked(); });
#if GPUMP_AUDIT_ENABLED
    auditCapacity();
#endif
}

bool
ResidencyManager::tryStartSwapIn(sim::ContextId ctx)
{
    CtxInfo &c = info(ctx);
    GPUMP_ASSERT(c.state == State::SwappedOut,
                 "swap-in of context %d in the wrong state", ctx);
    if (!makeRoom(c.footprint, ctx))
        return false;
    gmem_->allocate(ctx, c.footprint);
    if (!c.pt->map(0, static_cast<std::uint64_t>(c.footprint)))
        sim::fatal("out of GPU page frames swapping in context %d", ctx);
    c.state = State::SwappingIn;
    ++swapIns_;
    ++swapInsStat_;
    swapBytes_ += static_cast<double>(c.footprint);
    submit_(ctx, c.priority, c.footprint, /*to_device=*/true,
            [this, ctx] { finishSwapIn(ctx); });
#if GPUMP_AUDIT_ENABLED
    auditCapacity();
#endif
    return true;
}

void
ResidencyManager::finishSwapIn(sim::ContextId ctx)
{
    CtxInfo &c = info(ctx);
    GPUMP_ASSERT(c.state == State::SwappingIn,
                 "swap-in completion for context %d in the wrong state",
                 ctx);
    c.state = State::Resident;
    c.lastUse = ++useClock_;
#if GPUMP_AUDIT_ENABLED
    auditCapacity();
#endif
    std::vector<std::function<void()>> waiters = std::move(c.waiters);
    c.waiters.clear();
    for (auto &w : waiters)
        w();
    // The waiters may have changed pinning; give parked requests a go.
    retryParked();
}

void
ResidencyManager::onPinsReleased()
{
    retryParked();
}

void
ResidencyManager::retryParked()
{
    if (parked_.empty())
        return;
    // One pass over the current parked set, FIFO; requests that still
    // cannot make room re-park (and new parks during the pass append).
    std::vector<sim::ContextId> round = std::move(parked_);
    parked_.clear();
    for (sim::ContextId ctx : round) {
        CtxInfo &c = info(ctx);
        c.parked = false;
        if (c.state != State::SwappedOut || c.waiters.empty())
            continue; // resolved some other way
        if (!tryStartSwapIn(ctx) && !c.parked) {
            c.parked = true;
            parked_.push_back(ctx);
        }
    }
}

} // namespace memory
} // namespace gpump
