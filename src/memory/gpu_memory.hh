/**
 * @file
 * GPU physical memory model.
 *
 * Current-generation GPUs (our GK110 baseline included) do not demand
 * page: every allocation from every context must fit in device memory
 * (paper Section 2.2).  This model tracks per-context allocations
 * against the physical capacity and provides the bandwidth-share
 * arithmetic the context-switch preemption mechanism relies on
 * (Section 3.2 / Table 1: an SM saving its context gets 1/NSMs of the
 * 208 GB/s of global memory bandwidth).
 */

#ifndef GPUMP_MEMORY_GPU_MEMORY_HH
#define GPUMP_MEMORY_GPU_MEMORY_HH

#include <cstdint>
#include <map>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace gpump {
namespace memory {

/** Device-memory parameters (Table 2 / K20c defaults). */
struct GpuMemoryParams
{
    /** Global memory bandwidth in bytes/second (Table 2: 208 GB/s). */
    double bandwidth = 208e9;
    /** Physical capacity in bytes (K20c: 5 GB). */
    std::int64_t capacity = 5ll * 1000 * 1000 * 1000;
    /** When set, context save/restore bytes travel as first-class
     *  transfer commands on the transfer engine (contending with the
     *  workload's own DMA traffic) instead of being charged the
     *  contention-free bandwidth-share time below.  Off by default:
     *  the share model is what Table 1 validates. */
    bool contendedSwitch = false;

    /** Build from config keys "gmem.*". */
    static GpuMemoryParams fromConfig(const sim::Config &cfg);
};

/**
 * Tracks allocations per context and answers bandwidth-share timing
 * queries.
 */
class GpuMemory
{
  public:
    GpuMemory(sim::StatRegistry &stats, const GpuMemoryParams &params);

    const GpuMemoryParams &params() const { return params_; }

    /**
     * Allocate @p bytes on behalf of @p ctx.
     *
     * Raises fatal() when the device would be oversubscribed, mirroring
     * the out-of-memory failure a real allocation would report (no
     * swap-out exists on the modelled hardware).
     */
    void allocate(sim::ContextId ctx, std::int64_t bytes);

    /** Free @p bytes of @p ctx's allocations. @pre ctx owns >= bytes */
    void free(sim::ContextId ctx, std::int64_t bytes);

    /** Free everything @p ctx owns (context destruction). */
    void freeAll(sim::ContextId ctx);

    /** Bytes currently allocated by @p ctx. */
    std::int64_t allocated(sim::ContextId ctx) const;

    /** Bytes currently allocated across all contexts. */
    std::int64_t totalAllocated() const { return total_; }

    /**
     * The bandwidth one of @p shares equal consumers observes.
     * Used for context save/restore: an SM gets BW / NSMs.
     * @pre shares > 0
     */
    double bandwidthShare(int shares) const;

    /**
     * Time to move @p bytes at a 1/@p shares bandwidth share.
     * This is exactly the "Save Time" model validated against Table 1.
     * @pre bytes >= 0 (zero-byte moves take zero time, matching the
     *      zero-burst case of the PCIe path less its setup latency)
     */
    sim::SimTime moveTime(std::int64_t bytes, int shares) const;

  private:
    GpuMemoryParams params_;
    std::map<sim::ContextId, std::int64_t> perContext_;
    std::int64_t total_ = 0;
    sim::Scalar peakAllocated_;
    sim::Scalar allocCalls_;
};

} // namespace memory
} // namespace gpump

#endif // GPUMP_MEMORY_GPU_MEMORY_HH
