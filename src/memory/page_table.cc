#include "memory/page_table.hh"

#include <vector>

#include "sim/logging.hh"

namespace gpump {
namespace memory {

FrameAllocator::FrameAllocator(std::uint64_t frames)
    : totalFrames_(frames)
{
    GPUMP_ASSERT(frames > 0, "frame allocator with zero frames");
}

std::optional<PhysAddr>
FrameAllocator::allocate()
{
    if (!freeList_.empty()) {
        PhysAddr f = freeList_.front();
        freeList_.pop_front();
        freeSet_.erase(f);
        return f;
    }
    if (nextNever_ < totalFrames_)
        return (nextNever_++) * gpuPageBytes;
    return std::nullopt;
}

void
FrameAllocator::release(PhysAddr frame_base)
{
    GPUMP_ASSERT(frame_base % gpuPageBytes == 0,
                 "release of unaligned frame");
    GPUMP_ASSERT(frame_base / gpuPageBytes < nextNever_,
                 "release of frame %llu never allocated",
                 static_cast<unsigned long long>(frame_base));
    bool newly_freed = freeSet_.insert(frame_base).second;
    GPUMP_ASSERT(newly_freed, "double release of frame %llu",
                 static_cast<unsigned long long>(frame_base));
    freeList_.push_back(frame_base);
}

std::uint64_t
FrameAllocator::freeFrames() const
{
    return (totalFrames_ - nextNever_) + freeList_.size();
}

PageTable::~PageTable()
{
    for (const auto &kv : entries_)
        frames_->release(kv.second);
}

bool
PageTable::map(VirtAddr base, std::uint64_t bytes)
{
    if (bytes == 0)
        return true;
    std::uint64_t first = base / gpuPageBytes;
    std::uint64_t last = (base + bytes - 1) / gpuPageBytes;

    std::vector<std::pair<std::uint64_t, PhysAddr>> staged;
    staged.reserve(static_cast<std::size_t>(last - first + 1));
    for (std::uint64_t vp = first; vp <= last; ++vp) {
        if (entries_.count(vp))
            continue; // already mapped; keep existing frame
        auto frame = frames_->allocate();
        if (!frame) {
            // Roll back so a failed map leaves no partial state.
            for (const auto &kv : staged)
                frames_->release(kv.second);
            return false;
        }
        staged.emplace_back(vp, *frame);
    }
    for (const auto &kv : staged)
        entries_.emplace(kv.first, kv.second);
    return true;
}

void
PageTable::unmap(VirtAddr base, std::uint64_t bytes)
{
    if (bytes == 0)
        return;
    std::uint64_t first = base / gpuPageBytes;
    std::uint64_t last = (base + bytes - 1) / gpuPageBytes;
    for (std::uint64_t vp = first; vp <= last; ++vp) {
        auto it = entries_.find(vp);
        if (it == entries_.end())
            continue;
        frames_->release(it->second);
        entries_.erase(it);
    }
}

std::optional<PhysAddr>
PageTable::translate(VirtAddr va) const
{
    auto it = entries_.find(va / gpuPageBytes);
    if (it == entries_.end())
        return std::nullopt;
    return it->second + va % gpuPageBytes;
}

Tlb::Tlb(std::size_t entries)
    : capacity_(entries)
{
    GPUMP_ASSERT(entries > 0, "TLB with zero entries");
}

std::optional<PhysAddr>
Tlb::access(const PageTable &pt, VirtAddr va)
{
    std::uint64_t vp = va / gpuPageBytes;
    auto it = index_.find(vp);
    if (it != index_.end()) {
        ++hits_;
        lru_.splice(lru_.begin(), lru_, it->second);
        return it->second->second + va % gpuPageBytes;
    }

    ++misses_;
    auto frame = pt.translate(va);
    if (!frame)
        return std::nullopt; // fault: do not cache
    PhysAddr base = *frame - va % gpuPageBytes;

    if (lru_.size() >= capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
    }
    lru_.emplace_front(vp, base);
    index_[vp] = lru_.begin();
    return *frame;
}

void
Tlb::flush()
{
    ++flushes_;
    lru_.clear();
    index_.clear();
}

} // namespace memory
} // namespace gpump
