#include "memory/gpu_memory.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace gpump {
namespace memory {

GpuMemoryParams
GpuMemoryParams::fromConfig(const sim::Config &cfg)
{
    GpuMemoryParams p;
    p.bandwidth = cfg.getDouble("gmem.bandwidth", p.bandwidth);
    p.capacity = cfg.getInt("gmem.capacity", p.capacity);
    p.contendedSwitch =
        cfg.getBool("gmem.contended_switch", p.contendedSwitch);
    if (p.bandwidth <= 0 || p.capacity <= 0)
        sim::fatal("invalid GPU memory parameters");
    return p;
}

GpuMemory::GpuMemory(sim::StatRegistry &stats, const GpuMemoryParams &params)
    : params_(params),
      peakAllocated_(stats, "gmem.peak_allocated", "peak bytes allocated"),
      allocCalls_(stats, "gmem.alloc_calls", "number of allocations")
{
}

void
GpuMemory::allocate(sim::ContextId ctx, std::int64_t bytes)
{
    GPUMP_ASSERT(bytes >= 0, "negative allocation");
    // total_ <= capacity and both operands are non-negative, so the
    // subtraction cannot overflow; the natural `total_ + bytes` form
    // can, for adversarial capacity/allocation pairs (signed overflow
    // is UB and would let an oversized allocation through).
    if (bytes > params_.capacity - total_) {
        sim::fatal("GPU out of memory: %lld + %lld exceeds capacity %lld",
                   static_cast<long long>(total_),
                   static_cast<long long>(bytes),
                   static_cast<long long>(params_.capacity));
    }
    perContext_[ctx] += bytes;
    total_ += bytes;
    ++allocCalls_;
    peakAllocated_.set(
        std::max(peakAllocated_.value(), static_cast<double>(total_)));
}

void
GpuMemory::free(sim::ContextId ctx, std::int64_t bytes)
{
    auto it = perContext_.find(ctx);
    GPUMP_ASSERT(it != perContext_.end() && it->second >= bytes,
                 "context %d freeing %lld bytes it does not own",
                 ctx, static_cast<long long>(bytes));
    it->second -= bytes;
    total_ -= bytes;
    if (it->second == 0)
        perContext_.erase(it);
}

void
GpuMemory::freeAll(sim::ContextId ctx)
{
    auto it = perContext_.find(ctx);
    if (it == perContext_.end())
        return;
    total_ -= it->second;
    perContext_.erase(it);
}

std::int64_t
GpuMemory::allocated(sim::ContextId ctx) const
{
    auto it = perContext_.find(ctx);
    return it == perContext_.end() ? 0 : it->second;
}

double
GpuMemory::bandwidthShare(int shares) const
{
    GPUMP_ASSERT(shares > 0, "bandwidth share of %d consumers", shares);
    return params_.bandwidth / static_cast<double>(shares);
}

sim::SimTime
GpuMemory::moveTime(std::int64_t bytes, int shares) const
{
    GPUMP_ASSERT(bytes >= 0, "moveTime of %lld bytes",
                 static_cast<long long>(bytes));
    return sim::transferTime(static_cast<double>(bytes),
                             bandwidthShare(shares));
}

} // namespace memory
} // namespace gpump
