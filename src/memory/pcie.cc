#include "memory/pcie.hh"

#include "sim/logging.hh"

namespace gpump {
namespace memory {

PcieParams
PcieParams::fromConfig(const sim::Config &cfg)
{
    PcieParams p;
    p.clockHz = cfg.getDouble("pcie.clock_hz", p.clockHz);
    p.lanes = static_cast<int>(cfg.getInt("pcie.lanes", p.lanes));
    p.burstBytes = cfg.getInt("pcie.burst_bytes", p.burstBytes);
    p.bytesPerLanePerClock =
        cfg.getDouble("pcie.bytes_per_lane_per_clock", p.bytesPerLanePerClock);
    p.setupLatency = sim::microseconds(
        cfg.getDouble("pcie.setup_latency_us",
                      sim::toMicroseconds(p.setupLatency)));
    if (p.clockHz <= 0 || p.lanes <= 0 || p.burstBytes <= 0)
        sim::fatal("invalid PCIe parameters (clock/lanes/burst must be > 0)");
    return p;
}

PcieBus::PcieBus(sim::StatRegistry &stats, const PcieParams &params)
    : params_(params),
      bytesMoved_(stats, "pcie.bytes_moved", "payload bytes moved"),
      transfers_(stats, "pcie.transfers", "completed transfers"),
      busyTime_(stats, "pcie.busy_ns", "time the link was busy (ns)")
{
}

sim::SimTime
PcieBus::transferDuration(std::int64_t bytes) const
{
    GPUMP_ASSERT(bytes >= 0, "negative transfer size %lld",
                 static_cast<long long>(bytes));
    std::int64_t bursts =
        (bytes + params_.burstBytes - 1) / params_.burstBytes;
    double wire_bytes =
        static_cast<double>(bursts) * static_cast<double>(params_.burstBytes);
    return params_.setupLatency +
        sim::transferTime(wire_bytes, params_.bandwidth());
}

void
PcieBus::recordTransfer(std::int64_t bytes, sim::SimTime duration)
{
    bytesMoved_ += static_cast<double>(bytes);
    ++transfers_;
    busyTime_ += static_cast<double>(duration);
}

} // namespace memory
} // namespace gpump
