/**
 * @file
 * Device-memory residency: capacity enforcement plus context swapping.
 *
 * The modelled hardware does not demand page (Section 2.2), so the
 * seed's rule was blunt: the sum of every process's footprint had to
 * fit in device memory or assembly raised fatal().  This manager
 * relaxes that to per-context admission — a context's footprint must
 * fit in physical memory *alone* — and lets co-resident processes
 * oversubscribe the device: when a context's kernels need the GPU and
 * its state is not resident, the least-recently-used unpinned resident
 * context is swapped out (write-back over the transfer path) and the
 * incoming context pays a swap-in transfer before its kernels issue.
 *
 * A context's device state — inputs, outputs, scratch and any saved
 * thread-block contexts — swaps as one footprint-sized unit; the
 * timing model charges whole-footprint transfers and does not track
 * dirty subsets.
 *
 * Layering: this file lives in memory/ and must not depend on gpu/ or
 * core/, so the actual transfer submission and the two engine-side
 * questions ("is this context pinned on an SM?", "who must flush TLBs
 * after a remap?") are injected as callbacks at assembly
 * (workload::System wires them to the scheduling framework).
 */

#ifndef GPUMP_MEMORY_RESIDENCY_HH
#define GPUMP_MEMORY_RESIDENCY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

// audit.hh is dependency-free by design, so including it here does
// not violate memory/'s no-core-dependency rule (see its file
// comment).
#include "core/audit.hh"
#include "memory/gpu_memory.hh"
#include "memory/page_table.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace gpump {
namespace memory {

/** Tracks which contexts' state is in device memory and swaps on
 *  demand. */
class ResidencyManager
{
  public:
    /**
     * Submit one swap transfer on the device's transfer path.
     * @param to_device true for swap-in (H2D), false for write-back.
     * @param done      runs when the transfer completes.
     */
    using SwapSubmit = std::function<void(
        sim::ContextId ctx, int priority, std::int64_t bytes,
        bool to_device, std::function<void()> done)>;

    ResidencyManager(sim::StatRegistry &stats, GpuMemory &gmem,
                     SwapSubmit submit);

    /** True when @p ctx may not be swapped out (its kernels hold or
     *  are promised SMs).  Unset = nothing is ever pinned. */
    void setPinQuery(std::function<bool(sim::ContextId)> fn);

    /** Ran after a context loses its physical frames, so stale
     *  per-SM translations can be flushed. */
    void setRemapNotifier(std::function<void(sim::ContextId)> fn);

    /**
     * Admit a context with a fixed device footprint.  Raises fatal()
     * only when the footprint alone exceeds physical capacity; a
     * context that does not fit *now* is admitted swapped out.
     * Resident contexts hold their GpuMemory allocation and page-table
     * mapping; swapped-out contexts hold neither.
     */
    void registerContext(sim::ContextId ctx, int priority,
                         std::int64_t footprint, PageTable &pt);

    /** True when @p ctx's state is in device memory right now. */
    bool resident(sim::ContextId ctx) const;

    /**
     * Run @p ready once @p ctx's state is resident: synchronously when
     * it already is, otherwise after the swap-in transfer (and any
     * evictions making room for it) completes.  Requests that cannot
     * make room yet — every resident context pinned — park until
     * onPinsReleased().
     */
    void ensureResident(sim::ContextId ctx, std::function<void()> ready);

    /** An SM released its kernel somewhere: retry parked requests. */
    void onPinsReleased();

    /** @name Swap accounting (tests, analyses)
     * @{ */
    std::uint64_t swapIns() const { return swapIns_; }
    std::uint64_t swapOuts() const { return swapOuts_; }
    double swapBytes() const { return swapBytes_.value(); }
    /** Requests currently parked for want of an evictable victim. */
    std::size_t parkedRequests() const { return parked_.size(); }
    /** @} */

#if GPUMP_AUDIT_ENABLED
    /** Test hook (audit builds only): mark @p ctx Resident without
     *  allocating device memory, deliberately breaking the
     *  covered-footprint ≤ capacity invariant so tests/test_audit.cpp
     *  can watch auditCapacity() trip on the next mutator. */
    void auditForceResidentForTest(sim::ContextId ctx);
#endif

  private:
    enum class State
    {
        Resident,   ///< allocation + mapping held, state on device
        SwappingIn, ///< allocation held, swap-in transfer in flight
        SwappedOut, ///< no allocation, state lives on the host
    };

    struct CtxInfo
    {
        State state = State::SwappedOut;
        int priority = 0;
        std::int64_t footprint = 0;
        PageTable *pt = nullptr;
        std::uint64_t lastUse = 0; ///< LRU clock for victim selection
        bool parked = false;       ///< sitting in parked_
        std::vector<std::function<void()>> waiters;
    };

    CtxInfo &info(sim::ContextId ctx);
    const CtxInfo *find(sim::ContextId ctx) const;

    /** Evict LRU unpinned residents until @p bytes fit; false when no
     *  victim remains (caller parks the request). */
    bool makeRoom(std::int64_t bytes, sim::ContextId incoming);
    void evict(sim::ContextId victim);
    /** Allocate, map and start the swap-in transfer; false when room
     *  could not be made. */
    bool tryStartSwapIn(sim::ContextId ctx);
    void finishSwapIn(sim::ContextId ctx);
    void retryParked();

#if GPUMP_AUDIT_ENABLED
    /** O(#contexts) walk: every byte of Resident/SwappingIn footprint
     *  must fit in device capacity, as must GpuMemory's own
     *  allocation total.  Called after every residency transition. */
    void auditCapacity() const;
#endif

    GpuMemory *gmem_;
    SwapSubmit submit_;
    std::function<bool(sim::ContextId)> pinned_;
    std::function<void(sim::ContextId)> remapNotify_;
    std::map<sim::ContextId, CtxInfo> ctxs_;
    std::uint64_t useClock_ = 0;
    std::vector<sim::ContextId> parked_; ///< FIFO of waiting contexts

    std::uint64_t swapIns_ = 0;
    std::uint64_t swapOuts_ = 0;
    sim::Scalar swapInsStat_;
    sim::Scalar swapOutsStat_;
    sim::Scalar swapBytes_;
};

} // namespace memory
} // namespace gpump

#endif // GPUMP_MEMORY_RESIDENCY_HH
