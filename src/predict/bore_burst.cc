#include "predict/bore_burst.hh"

#include "core/framework.hh"
#include "sim/logging.hh"

namespace gpump {
namespace predict {

BoreBurstPolicy::BoreBurstPolicy(int smoothness, int max_offset,
                                 double decay_us, bool exclusive)
    : PpqPolicy(exclusive),
      burst_(smoothness, max_offset, decay_us)
{
}

void
BoreBurstPolicy::bind(core::SchedulingFramework &fw)
{
    PpqPolicy::bind(fw);
    fw.addCompletionObserver(this);
}

void
BoreBurstPolicy::observeKernel(const gpu::KernelExec &k,
                               sim::SimTime first_issued, sim::SimTime now)
{
    burst_.observeKernel(k, first_issued, now);
}

int
BoreBurstPolicy::penaltyOf(const gpu::KernelExec *k) const
{
    return burst_.burstScore(k->ctx(), fw_->sim().now());
}

int
BoreBurstPolicy::effectivePriority(const gpu::KernelExec *k) const
{
    return k->priority() - penaltyOf(k);
}

// --------------------------------------------------------- registry

namespace {

[[maybe_unused]] const bool registered_bore_burst = [] {
    core::PolicyRegistry::Descriptor d;
    d.name = "bore_burst";
    d.doc = "Preemptive priority queues with BORE-style burstiness "
            "demotion: a context's observed kernel service times "
            "lower its effective priority by the log2 bucket of its "
            "smoothed burst length, decaying while it idles";
    d.configPrefix = "bore";
    d.tunables = {
        {"bore.smoothness", core::TunableType::Int, "2",
         "EWMA shift of the burst average: each kernel moves it by "
         "1/2^smoothness of the error (>= 0)"},
        {"bore.max_offset", core::TunableType::Int, "8",
         "cap on the burst-score priority demotion (>= 0)"},
        {"bore.decay_us", core::TunableType::Double, "2000",
         "idle time per bucket of burst-score decay, microseconds "
         "(> 0)"},
        {"bore.exclusive", core::TunableType::Bool, "false",
         "run on top of exclusive-mode PPQ instead of shared mode"},
    };
    d.factory = [](const sim::Config &cfg) {
        int smoothness =
            static_cast<int>(cfg.getInt("bore.smoothness", 2));
        int max_offset =
            static_cast<int>(cfg.getInt("bore.max_offset", 8));
        if (smoothness < 0 || max_offset < 0)
            sim::fatal("bore.smoothness and bore.max_offset must be "
                       ">= 0");
        double decay_us = cfg.getDouble("bore.decay_us", 2000.0);
        if (decay_us <= 0)
            sim::fatal("bore.decay_us must be positive");
        bool exclusive = cfg.getBool("bore.exclusive", false);
        return std::make_unique<BoreBurstPolicy>(smoothness, max_offset,
                                                 decay_us, exclusive);
    };
    core::policyRegistry().add(std::move(d));
    return true;
}();

} // namespace

} // namespace predict

namespace core {
GPUMP_DEFINE_LINK_ANCHOR(BoreBurstPolicy)
} // namespace core

} // namespace gpump
