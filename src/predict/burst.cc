#include "predict/burst.hh"

#include <algorithm>
#include <cmath>

#include "gpu/kernel_exec.hh"
#include "sim/logging.hh"

namespace gpump {
namespace predict {

BurstEstimator::BurstEstimator(int smoothness, int max_score,
                               double decay_us)
    : smoothness_(smoothness), maxScore_(max_score),
      decay_(sim::microseconds(decay_us))
{
    GPUMP_ASSERT(smoothness >= 0, "negative burst smoothness");
    GPUMP_ASSERT(max_score >= 0, "negative burst score cap");
    GPUMP_ASSERT(decay_ > 0, "non-positive burst decay interval");
}

void
BurstEstimator::observeKernel(const gpu::KernelExec &k,
                              sim::SimTime first_issued, sim::SimTime now)
{
    GPUMP_ASSERT(now >= first_issued, "kernel finished before it issued");
    auto idx = static_cast<std::size_t>(k.ctx());
    if (idx >= state_.size())
        state_.resize(idx + 1);
    State &s = state_[idx];
    double burst_us = sim::toMicroseconds(now - first_issued);
    if (!s.any) {
        s.avgUs = burst_us;
        s.any = true;
    } else {
        // bore.c-style binary-shift smoothing.
        s.avgUs += (burst_us - s.avgUs) /
            static_cast<double>(std::int64_t{1} << smoothness_);
    }
    s.lastFinish = now;
    ++observed_;
}

int
BurstEstimator::burstScore(sim::ContextId ctx, sim::SimTime now) const
{
    auto idx = static_cast<std::size_t>(ctx);
    if (ctx < 0 || idx >= state_.size() || !state_[idx].any)
        return 0;
    const State &s = state_[idx];
    int raw = static_cast<int>(std::floor(std::log2(1.0 + s.avgUs)));
    sim::SimTime idle = std::max<sim::SimTime>(0, now - s.lastFinish);
    auto decayed = static_cast<std::int64_t>(raw) - idle / decay_;
    return static_cast<int>(std::clamp<std::int64_t>(decayed, 0,
                                                     maxScore_));
}

double
BurstEstimator::avgBurstUs(sim::ContextId ctx) const
{
    auto idx = static_cast<std::size_t>(ctx);
    if (ctx < 0 || idx >= state_.size() || !state_[idx].any)
        return 0.0;
    return state_[idx].avgUs;
}

} // namespace predict
} // namespace gpump
