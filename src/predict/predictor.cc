#include "predict/predictor.hh"

#include <algorithm>

#include "core/audit.hh"
#include "gpu/kernel_exec.hh"
#include "gpu/sm.hh"
#include "sim/logging.hh"
#include "trace/kernel_profile.hh"

namespace gpump {
namespace predict {

RuntimePredictor::RuntimePredictor(double ewma_alpha)
    : alpha_(ewma_alpha)
{
    GPUMP_ASSERT(ewma_alpha > 0.0 && ewma_alpha <= 1.0,
                 "pred ewma_alpha must be in (0, 1]");
}

const RuntimePredictor::Model *
RuntimePredictor::find(sim::ContextId ctx,
                       const trace::KernelProfile *prof) const
{
    auto it = models_.find(Key{ctx, prof});
    return it == models_.end() ? nullptr : &it->second;
}

void
RuntimePredictor::observeTb(const gpu::Sm &, const gpu::KernelExec &k,
                            sim::SimTime started, sim::SimTime now)
{
    GPUMP_ASSERT(now >= started, "TB completion before its issue");
    double service_us = sim::toMicroseconds(now - started);
    Model &m = models_[Key{k.ctx(), &k.profile()}];
    if (m.samples == 0 && m.priorWeight == 1.0)
        m.ewmaUs = k.profile().timePerTbUs; // seed with the prior
    m.ewmaUs = alpha_ * service_us + (1.0 - alpha_) * m.ewmaUs;
    m.priorWeight *= 1.0 - alpha_;
    ++m.samples;
    ++observed_;
    // priorWeight = (1-alpha)^samples by construction; a value outside
    // [0,1] (NaN included, via the negated compare) would push the
    // derived confidence out of range and corrupt every policy that
    // scales on it.
    GPUMP_AUDIT(m.priorWeight >= 0.0 && m.priorWeight <= 1.0,
                "EWMA prior weight %g left [0,1] after %llu samples",
                m.priorWeight,
                static_cast<unsigned long long>(m.samples));
    GPUMP_AUDIT(m.ewmaUs >= 0.0,
                "EWMA service-time estimate went negative (%g us)",
                m.ewmaUs);
}

Estimate
RuntimePredictor::tbEstimate(sim::ContextId ctx,
                             const trace::KernelProfile *prof) const
{
    GPUMP_ASSERT(prof != nullptr, "estimate for null profile");
    Estimate e;
    const Model *m = find(ctx, prof);
    if (m == nullptr) {
        // Cold start: the declared launch profile is all we have.
        e.tbUs = prof->timePerTbUs;
        return e;
    }
    e.tbUs = m->ewmaUs;
    e.confidence = 1.0 - m->priorWeight;
    e.samples = m->samples;
    GPUMP_AUDIT(e.confidence >= 0.0 && e.confidence <= 1.0,
                "prediction confidence %g outside [0,1]", e.confidence);
    return e;
}

double
RuntimePredictor::estimatedDrainTimeUs(const gpu::Sm &sm,
                                       sim::SimTime now) const
{
    GPUMP_ASSERT(sm.kernel != nullptr && !sm.resident.empty(),
                 "drain prediction on an empty SM");
    Estimate est = tbEstimate(sm.kernel->ctx(), &sm.kernel->profile());
    double drain_us = 0.0;
    for (const gpu::ResidentTb &tb : sm.resident) {
        double elapsed_us = sim::toMicroseconds(now - tb.startedAt);
        drain_us =
            std::max(drain_us, std::max(0.0, est.tbUs - elapsed_us));
    }
    return drain_us;
}

double
RuntimePredictor::estimatedRemainingWorkUs(const gpu::KernelExec &k) const
{
    Estimate est = tbEstimate(k.ctx(), &k.profile());
    int remaining = k.totalTbs() - k.completed();
    return est.tbUs * static_cast<double>(std::max(0, remaining));
}

} // namespace predict
} // namespace gpump
