#include "predict/pred_adaptive.hh"

#include "core/adaptive.hh"
#include "core/framework.hh"
#include "sim/logging.hh"

namespace gpump {
namespace predict {

PredAdaptiveMechanism::PredAdaptiveMechanism(double ewma_alpha,
                                             double confidence_min,
                                             double bias)
    : confidenceMin_(confidence_min), bias_(bias), predictor_(ewma_alpha)
{
    GPUMP_ASSERT(confidence_min >= 0.0 && confidence_min <= 1.0,
                 "pred confidence_min outside [0, 1]");
    GPUMP_ASSERT(bias >= 0.0, "negative pred bias");
}

void
PredAdaptiveMechanism::bind(core::SchedulingFramework &fw)
{
    PreemptionMechanism::bind(fw);
    contextSwitch_.bind(fw);
    draining_.bind(fw);
    pending_.assign(static_cast<std::size_t>(fw.params().numSms),
                    PendingDrain());
    // Predictor first: by the time this mechanism audits a completed
    // drain, the model has already folded the completing block in.
    fw.addCompletionObserver(&predictor_);
    fw.addCompletionObserver(this);
}

void
PredAdaptiveMechanism::beginPreemption(gpu::Sm *sm)
{
    GPUMP_ASSERT(fw_ != nullptr, "mechanism not bound");
    GPUMP_ASSERT(!sm->resident.empty(),
                 "pred_adaptive preemption on SM %d with nothing "
                 "resident",
                 sm->id());

    Estimate est = predictor_.tbEstimate(sm->kernel->ctx(),
                                         &sm->kernel->profile());
    if (est.confidence < confidenceMin_) {
        // Not enough evidence to trust a drain estimate; take the
        // bounded-cost choice.
        ++coldStarts_;
        ++switches_;
        contextSwitch_.beginPreemption(sm);
        return;
    }

    sim::SimTime now = fw_->sim().now();
    double drain_us = predictor_.estimatedDrainTimeUs(*sm, now);
    double save_us = sim::toMicroseconds(
        core::modeledContextSaveCost(*fw_, sm));
    if (drain_us <= bias_ * save_us) {
        ++drains_;
        PendingDrain &p = pending_[static_cast<std::size_t>(sm->id())];
        p.active = true;
        p.predictedUs = drain_us;
        p.decidedAt = now;
        draining_.beginPreemption(sm);
    } else {
        ++switches_;
        contextSwitch_.beginPreemption(sm);
    }
}

void
PredAdaptiveMechanism::observeTb(const gpu::Sm &sm,
                                 const gpu::KernelExec &k,
                                 sim::SimTime started, sim::SimTime now)
{
    (void)k;
    (void)started;
    PendingDrain &p = pending_[static_cast<std::size_t>(sm.id())];
    if (!p.active || !sm.resident.empty())
        return;
    // The predicted drain just finished (the observer runs after the
    // block left the timeline, so an empty SM means drain complete).
    p.active = false;
    double actual_us = sim::toMicroseconds(now - p.decidedAt);
    if (actual_us > 2.0 * p.predictedUs + 1.0)
        ++mispredictions_;
}

// --------------------------------------------------------- registry

namespace {

[[maybe_unused]] const bool registered_pred_adaptive = [] {
    core::MechanismRegistry::Descriptor d;
    d.name = "pred_adaptive";
    d.doc = "Adaptive drain-vs-switch from the online runtime "
            "predictor instead of the oracle timeline: per-(context, "
            "kernel) EWMA of observed TB service times, cold-start "
            "prior from the launch profile, context switch while "
            "confidence is below pred.confidence_min";
    d.configPrefix = "pred";
    d.tunables = {
        {"pred.ewma_alpha", core::TunableType::Double, "0.25",
         "EWMA smoothing factor in (0, 1]: weight of each new TB "
         "observation"},
        {"pred.confidence_min", core::TunableType::Double, "0.5",
         "minimum model confidence (1 - (1-alpha)^n) to trust a "
         "drain estimate; below it the mechanism context-switches"},
        {"pred.bias", core::TunableType::Double, "1",
         "drain when predicted drain time <= bias x modeled save "
         "cost; >1 favours draining"},
    };
    d.factory = [](const sim::Config &cfg) {
        double alpha = cfg.getDouble("pred.ewma_alpha", 0.25);
        if (alpha <= 0 || alpha > 1)
            sim::fatal("pred.ewma_alpha must be in (0, 1]");
        double cmin = cfg.getDouble("pred.confidence_min", 0.5);
        if (cmin < 0 || cmin > 1)
            sim::fatal("pred.confidence_min must be in [0, 1]");
        double bias = cfg.getDouble("pred.bias", 1.0);
        if (bias < 0)
            sim::fatal("pred.bias must be >= 0");
        return std::make_unique<PredAdaptiveMechanism>(alpha, cmin,
                                                       bias);
    };
    core::mechanismRegistry().add(std::move(d));
    return true;
}();

} // namespace

} // namespace predict

namespace core {
GPUMP_DEFINE_LINK_ANCHOR(PredAdaptiveMechanism)
} // namespace core

} // namespace gpump
