/**
 * @file
 * pred_adaptive: the adaptive drain-vs-switch mechanism rebuilt on
 * measurements instead of the oracle.
 *
 * AdaptiveMechanism (core/adaptive.hh) estimates drain time by reading
 * the resident blocks' *scheduled* completion times — simulator state
 * no real driver has.  PredAdaptiveMechanism makes the same per-SM
 * decision from the RuntimePredictor's online model: the per-(context,
 * kernel) EWMA of observed TB service times, combined with how long
 * each resident block has been executing.  The save-cost side of the
 * comparison is the same modeledContextSaveCost() the oracle scheme
 * uses (it is a model either way, and queue-aware under
 * gmem.contended_switch).
 *
 * Cold start: while the model's confidence for the victim kernel is
 * below pred.confidence_min, the mechanism context-switches — the
 * bounded-cost choice — rather than trusting a prior-only drain
 * estimate, and counts the event.  Warm decisions record the predicted
 * drain time; when the drain completes, the actual time is compared
 * against it and gross misses (actual > 2x predicted + 1us slack)
 * increment the misprediction counter, so the prediction-to-oracle gap
 * is observable per run, not just in aggregate benchmarks.
 *
 * Registers as "pred_adaptive" with tunables pred.ewma_alpha,
 * pred.confidence_min and pred.bias.
 */

#ifndef GPUMP_PREDICT_PRED_ADAPTIVE_HH
#define GPUMP_PREDICT_PRED_ADAPTIVE_HH

#include <cstdint>
#include <vector>

#include "core/context_switch.hh"
#include "core/draining.hh"
#include "predict/predictor.hh"

namespace gpump {
namespace predict {

/** Measurement-driven per-SM drain-vs-switch selection. */
class PredAdaptiveMechanism : public core::PreemptionMechanism,
                              public CompletionObserver
{
  public:
    /**
     * @param ewma_alpha     predictor smoothing factor in (0, 1]
     * @param confidence_min minimum model confidence to trust a drain
     *        estimate; below it the mechanism context-switches
     * @param bias           drain when predicted drain time <= bias x
     *        modeled save cost; must be >= 0
     */
    explicit PredAdaptiveMechanism(double ewma_alpha = 0.25,
                                   double confidence_min = 0.5,
                                   double bias = 1.0);

    const char *name() const override { return "pred_adaptive"; }

    /** May context-switch, so the PTBQs must exist. */
    bool savesContext() const override { return true; }

    /** Binds the base mechanisms and registers the predictor and this
     *  mechanism as completion observers. */
    void bind(core::SchedulingFramework &fw) override;

    void beginPreemption(gpu::Sm *sm) override;

    /** Closes the drain-prediction audit when a predicted drain's SM
     *  empties. */
    void observeTb(const gpu::Sm &sm, const gpu::KernelExec &k,
                   sim::SimTime started, sim::SimTime now) override;

    double bias() const { return bias_; }
    double confidenceMin() const { return confidenceMin_; }

    /** The online model feeding the decisions (tests, analyses). */
    const RuntimePredictor &predictor() const { return predictor_; }

    /** @name Decision counters (tests, analyses)
     * @{ */
    std::uint64_t drainsChosen() const { return drains_; }
    std::uint64_t switchesChosen() const { return switches_; }
    /** Switches forced by confidence below pred.confidence_min
     *  (subset of switchesChosen). */
    std::uint64_t coldStarts() const { return coldStarts_; }
    /** Completed drains whose actual time exceeded twice the
     *  prediction (plus 1us slack). */
    std::uint64_t mispredictions() const { return mispredictions_; }
    /** @} */

  private:
    /** Audit record of one in-flight predicted drain. */
    struct PendingDrain
    {
        bool active = false;
        double predictedUs = 0.0;
        sim::SimTime decidedAt = 0;
    };

    double confidenceMin_;
    double bias_;
    RuntimePredictor predictor_;
    core::ContextSwitchMechanism contextSwitch_;
    core::DrainingMechanism draining_;
    std::vector<PendingDrain> pending_; // indexed by SM id
    std::uint64_t drains_ = 0;
    std::uint64_t switches_ = 0;
    std::uint64_t coldStarts_ = 0;
    std::uint64_t mispredictions_ = 0;
};

} // namespace predict
} // namespace gpump

#endif // GPUMP_PREDICT_PRED_ADAPTIVE_HH
