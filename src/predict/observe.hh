/**
 * @file
 * The completion-observation hook: how measurement-fed schedulers see
 * the machine.
 *
 * The oracle-fed schemes (core/adaptive.hh) read the SM's resident
 * timeline — scheduled completion times no real driver knows.  The
 * predict/ subsystem instead consumes only what a driver can measure:
 * when a thread block was issued, when it completed, and when a kernel
 * finished.  CompletionObserver is that contract.  Observers register
 * with the scheduling framework at bind time
 * (SchedulingFramework::addCompletionObserver) and are invoked
 * synchronously on the TB/kernel completion path, in registration
 * order, which keeps runs deterministic for any --jobs/--shards
 * partitioning (the observer list is per-System state, never shared).
 *
 * Contract for implementations:
 *  - no oracle reads: an observer may inspect issue-side facts
 *    (ResidentTb::startedAt, occupancy, remaining-TB counts) but must
 *    never read ResidentTb::endAt or other scheduled-future state;
 *  - no allocation in steady state: hooks run per TB completion, the
 *    hottest event in the simulator;
 *  - no re-entrancy: hooks must not call back into scheduling
 *    operations (assignSm / reserveSm / admit) — they observe.
 */

#ifndef GPUMP_PREDICT_OBSERVE_HH
#define GPUMP_PREDICT_OBSERVE_HH

#include "sim/types.hh"

namespace gpump {
namespace gpu {
class Sm;
class KernelExec;
}
namespace predict {

/** Measurement-side view of TB / kernel completions. */
class CompletionObserver
{
  public:
    virtual ~CompletionObserver() = default;

    /**
     * A thread block of @p k completed on @p sm at @p now; it began
     * executing (including any restore prefix) at @p started.  Called
     * after the block left the SM's timeline, so @p sm reflects the
     * post-completion state (e.g. resident.empty() when this was the
     * last block of a drain).
     */
    virtual void observeTb(const gpu::Sm &sm, const gpu::KernelExec &k,
                           sim::SimTime started, sim::SimTime now)
    {
        (void)sm;
        (void)k;
        (void)started;
        (void)now;
    }

    /**
     * Kernel @p k completed its whole grid at @p now; its first thread
     * block was issued at @p first_issued.  The KernelExec is valid
     * only for the duration of the call (the slot is recycled).
     */
    virtual void observeKernel(const gpu::KernelExec &k,
                               sim::SimTime first_issued, sim::SimTime now)
    {
        (void)k;
        (void)first_issued;
        (void)now;
    }
};

} // namespace predict
} // namespace gpump

#endif // GPUMP_PREDICT_OBSERVE_HH
