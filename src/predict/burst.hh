/**
 * @file
 * BORE-style burstiness scoring of processes (after the BORE "Burst-
 * Oriented Response Enhancer" CFS variant; see ROADMAP).
 *
 * BORE's idea, transplanted from CPU threads to GPU contexts: score
 * each process by the *burst lengths* it has been observed to run —
 * here the service time of its kernels, from first TB issue to grid
 * completion — and let the scheduler demote long-burst (batch)
 * processes relative to short-burst (interactive) ones.
 *
 * Mechanics mirror bore.c's shape on this codebase's observation
 * stream:
 *  - smoothing: the per-context average burst is updated with a
 *    binary-shift EWMA, avg += (observed - avg) / 2^smoothness;
 *  - log2 bucketing: the raw score is floor(log2(1 + avg_us)), so
 *    scores grow with the order of magnitude of the burst, not
 *    linearly (a 10x longer kernel is ~3 buckets worse);
 *  - decay on wait: while a context sits idle (no kernel completing),
 *    its score decays one bucket per decay_us of idleness — a process
 *    that stopped bursting earns its priority back.
 *
 * The score is capped so a runaway burst cannot push a process
 * arbitrarily far down; the bore_burst policy subtracts it from the
 * launch priority via the NpqPolicy::effectivePriority hook.
 *
 * Deterministic and allocation-free in steady state: per-context
 * state lives in a flat vector indexed by the dense context id.
 */

#ifndef GPUMP_PREDICT_BURST_HH
#define GPUMP_PREDICT_BURST_HH

#include <cstdint>
#include <vector>

#include "predict/observe.hh"
#include "sim/types.hh"

namespace gpump {
namespace predict {

/** Per-process burstiness scoring from kernel service times. */
class BurstEstimator : public CompletionObserver
{
  public:
    /**
     * @param smoothness EWMA shift (>= 0): each observation moves the
     *        average by 1/2^smoothness of the error.
     * @param max_score  cap on the burst score (>= 0).
     * @param decay_us   idle time per bucket of score decay (> 0).
     */
    BurstEstimator(int smoothness, int max_score, double decay_us);

    /** Fold a completed kernel's service time into its context's
     *  average burst. */
    void observeKernel(const gpu::KernelExec &k, sim::SimTime first_issued,
                       sim::SimTime now) override;

    /**
     * The context's burst score at @p now: the log2 bucket of its
     * average burst, minus one per decay_us elapsed since its last
     * observed completion, clamped to [0, max_score].  Unobserved
     * contexts score 0 (no evidence of bursting).
     */
    int burstScore(sim::ContextId ctx, sim::SimTime now) const;

    /** The smoothed average burst (us); 0 when unobserved (tests). */
    double avgBurstUs(sim::ContextId ctx) const;

    /** Kernel completions ingested (tests). */
    std::uint64_t observations() const { return observed_; }

  private:
    struct State
    {
        double avgUs = 0.0;
        sim::SimTime lastFinish = 0;
        bool any = false;
    };

    int smoothness_;
    int maxScore_;
    sim::SimTime decay_;
    std::vector<State> state_; // indexed by dense context id
    std::uint64_t observed_ = 0;
};

} // namespace predict
} // namespace gpump

#endif // GPUMP_PREDICT_BURST_HH
