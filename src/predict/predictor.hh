/**
 * @file
 * Online structural runtime prediction (after Pai et al., "Preemptive
 * Thread Block Scheduling with Online Structural Runtime Prediction";
 * PAPERS.md).
 *
 * The predictor maintains one model per (context, kernel): an EWMA of
 * the observed per-TB service time, seeded with a structural cold-start
 * prior (the kernel's declared per-TB time from its launch profile —
 * metadata a real driver has at launch, unlike the simulator's drawn
 * completion times).  Confidence tracks how much of the EWMA mass
 * comes from observations rather than the prior: after n updates with
 * smoothing factor alpha the prior retains (1-alpha)^n of the weight,
 * so confidence = 1 - (1-alpha)^n.
 *
 * Queries combine the per-TB estimate with *structural* remaining
 * counts — how many blocks are resident and how long each has been
 * executing, how many grid blocks remain — never with the scheduled
 * completion times the oracle schemes read.  estimatedDrainTimeUs()
 * is the drop-in replacement for AdaptiveMechanism's oracle drain
 * estimate.
 *
 * Determinism: the model is per-System state fed by the deterministic
 * completion stream; lookups never iterate the key map, so pointer
 * keys cannot leak address order into decisions.  Steady state is
 * allocation-free (one map node per (context, kernel), created on
 * first observation).
 */

#ifndef GPUMP_PREDICT_PREDICTOR_HH
#define GPUMP_PREDICT_PREDICTOR_HH

#include <cstdint>
#include <map>
#include <utility>

#include "predict/observe.hh"
#include "sim/types.hh"

namespace gpump {
namespace trace {
struct KernelProfile;
}
namespace predict {

/** One per-TB service-time estimate with its provenance. */
struct Estimate
{
    /** Predicted per-TB service time (us). */
    double tbUs = 0.0;
    /** Fraction of the estimate backed by observations (0 = prior
     *  only, asymptotically 1). */
    double confidence = 0.0;
    /** TB completions folded into the estimate. */
    std::uint64_t samples = 0;
};

/** Online per-(context, kernel) runtime model. */
class RuntimePredictor : public CompletionObserver
{
  public:
    /** @param ewma_alpha EWMA smoothing factor in (0, 1]: the weight
     *         of each new observation. */
    explicit RuntimePredictor(double ewma_alpha = 0.25);

    /** Fold one observed TB service time into the model. */
    void observeTb(const gpu::Sm &sm, const gpu::KernelExec &k,
                   sim::SimTime started, sim::SimTime now) override;

    /** The current per-TB estimate for (@p ctx, @p prof); cold keys
     *  answer the declared-profile prior at confidence 0. */
    Estimate tbEstimate(sim::ContextId ctx,
                        const trace::KernelProfile *prof) const;

    /**
     * Predicted time (us) until @p sm would drain: for every resident
     * block, the per-TB estimate minus how long it has been executing
     * (clamped at 0 — an overrunning block predicts "any moment now"),
     * maximised over the blocks.  Uses only issue-side facts
     * (startedAt), never the scheduled endAt.
     * @pre sm runs a kernel with at least one resident block
     */
    double estimatedDrainTimeUs(const gpu::Sm &sm, sim::SimTime now) const;

    /** Predicted total remaining time (us) of @p k: its structural
     *  remaining-TB count (grid minus completed) times the per-TB
     *  estimate, ignoring parallelism — an upper-bound "work left"
     *  figure for burst/length classification. */
    double estimatedRemainingWorkUs(const gpu::KernelExec &k) const;

    double ewmaAlpha() const { return alpha_; }

    /** Total TB observations ingested (tests). */
    std::uint64_t observations() const { return observed_; }

  private:
    struct Model
    {
        double ewmaUs = 0.0;
        /** EWMA mass still attributable to the cold-start prior. */
        double priorWeight = 1.0;
        std::uint64_t samples = 0;
    };

    using Key = std::pair<sim::ContextId, const trace::KernelProfile *>;

    const Model *find(sim::ContextId ctx,
                      const trace::KernelProfile *prof) const;

    double alpha_;
    std::map<Key, Model> models_;
    std::uint64_t observed_ = 0;
};

} // namespace predict
} // namespace gpump

#endif // GPUMP_PREDICT_PREDICTOR_HH
