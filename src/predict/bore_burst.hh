/**
 * @file
 * bore_burst: preemptive priority queues with BORE-style burstiness
 * demotion.
 *
 * PPQ orders kernels by their static launch priority, so a batch
 * process that launches long kernels at the same priority as an
 * interactive one gets equal treatment while hurting the
 * interactive process's latency far more than the reverse.  BORE's
 * answer on CPUs is to *measure* burstiness and fold it into the
 * effective priority; this policy transplants that onto PPQ: each
 * context's observed kernel service times feed a BurstEstimator
 * (predict/burst.hh), and the resulting burst score — a log2 bucket
 * of the smoothed burst length, decaying while the context is idle —
 * is subtracted from the launch priority through the
 * NpqPolicy::effectivePriority hook.  Long-burst contexts sink,
 * short-burst contexts keep their rank, and a context that stops
 * bursting earns its priority back after a few decay intervals.
 *
 * Entirely measurement-fed (a CompletionObserver like the runtime
 * predictor): no oracle reads, deterministic, and default-off — a
 * system that never selects "bore_burst" never registers the
 * observer.
 *
 * Registers as "bore_burst" with tunables bore.smoothness,
 * bore.max_offset, bore.decay_us and bore.exclusive.
 */

#ifndef GPUMP_PREDICT_BORE_BURST_HH
#define GPUMP_PREDICT_BORE_BURST_HH

#include "core/priority.hh"
#include "predict/burst.hh"

namespace gpump {
namespace predict {

/** PPQ with burst-score priority demotion. */
class BoreBurstPolicy : public core::PpqPolicy,
                        public CompletionObserver
{
  public:
    /**
     * @param smoothness EWMA shift of the burst average (>= 0)
     * @param max_offset cap on the priority demotion (>= 0)
     * @param decay_us   idle time per bucket of score decay (> 0)
     * @param exclusive  PPQ access mode to run on top of
     */
    BoreBurstPolicy(int smoothness, int max_offset, double decay_us,
                    bool exclusive);

    const char *name() const override { return "bore_burst"; }

    /** Registers this policy as a completion observer. */
    void bind(core::SchedulingFramework &fw) override;

    /** Feeds the burst estimator. */
    void observeKernel(const gpu::KernelExec &k, sim::SimTime first_issued,
                       sim::SimTime now) override;

    /** The burst model behind the demotion (tests, analyses). */
    const BurstEstimator &burst() const { return burst_; }

    /** The demotion currently applied to @p k's context. */
    int penaltyOf(const gpu::KernelExec *k) const;

  protected:
    /** Launch priority minus the context's burst score. */
    int effectivePriority(const gpu::KernelExec *k) const override;

  private:
    BurstEstimator burst_;
};

} // namespace predict
} // namespace gpump

#endif // GPUMP_PREDICT_BORE_BURST_HH
