/**
 * @file
 * Per-kernel execution profiles (the rows of Table 1 of the paper).
 *
 * A KernelProfile carries everything the GPU model needs to replay a
 * kernel at thread-block granularity:
 *  - grid shape (thread block count) and per-TB duration;
 *  - per-TB resource demands (registers, shared memory, threads) that
 *    determine static-partitioning occupancy;
 *  - the derived context footprint used by the context-switch
 *    preemption mechanism.
 *
 * The per-TB duration is the paper's "Time/TB" column; see DESIGN.md
 * for why that column (rather than the measured kernel wall time) is
 * the authoritative input to the simulation.
 */

#ifndef GPUMP_TRACE_KERNEL_PROFILE_HH
#define GPUMP_TRACE_KERNEL_PROFILE_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace gpump {
namespace trace {

/** Bytes of storage one architectural register occupies. */
constexpr std::int64_t bytesPerRegister = 4;

/** Static description of one GPU kernel (one Table 1 row). */
struct KernelProfile
{
    /** Owning benchmark, e.g. "lbm". */
    std::string benchmark;
    /** Kernel name, e.g. "StreamCollide". */
    std::string kernel;

    /** Number of launches per application execution (Table 1). */
    int launches = 1;
    /** Measured kernel wall time on the K20c, microseconds (Table 1).
     *  Kept for regenerating Table 1; the simulation derives kernel
     *  times from timePerTbUs instead. */
    double avgTimeUs = 0.0;
    /** Thread blocks per launch (Table 1). */
    int numThreadBlocks = 1;
    /** Mean thread-block execution time, microseconds (Table 1). */
    double timePerTbUs = 0.0;
    /** Shared memory per thread block, bytes (Table 1). */
    int sharedMemPerTb = 0;
    /** Architectural registers per thread block (Table 1). */
    int regsPerTb = 0;
    /** Threads per thread block.  Not published; values chosen from
     *  the Parboil sources such that the published occupancy of every
     *  kernel is reproduced (see DESIGN.md). */
    int threadsPerTb = 1;

    /**
     * Bytes that must be saved/restored per thread block on a context
     * switch: the register allocation plus the shared-memory
     * partition.  Validated against Table 1 ("Save Time" column).
     */
    std::int64_t contextBytesPerTb() const
    {
        return bytesPerRegister * regsPerTb + sharedMemPerTb;
    }

    /** Mean thread-block duration as SimTime. */
    sim::SimTime tbDuration() const
    {
        return sim::microseconds(timePerTbUs);
    }

    /** "benchmark.kernel" for messages and stats. */
    std::string fullName() const { return benchmark + "." + kernel; }
};

} // namespace trace
} // namespace gpump

#endif // GPUMP_TRACE_KERNEL_PROFILE_HH
