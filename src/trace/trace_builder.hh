/**
 * @file
 * Fluent builder for application traces.
 *
 * parboil.cc uses this to express each benchmark's call structure
 * compactly; user applications can use it to describe their own
 * workloads (see examples/).
 */

#ifndef GPUMP_TRACE_TRACE_BUILDER_HH
#define GPUMP_TRACE_TRACE_BUILDER_HH

#include <cstdint>

#include "trace/app_model.hh"

namespace gpump {
namespace trace {

/**
 * Appends TraceOps to a BenchmarkSpec under construction.
 *
 * All methods return *this so call sites read like the traced API
 * stream:  b.cpu(300).h2d(2_MB).launch(0).sync().d2h(256_KB);
 */
class TraceBuilder
{
  public:
    /** Build into @p spec (must outlive the builder). */
    explicit TraceBuilder(BenchmarkSpec &spec) : spec_(&spec) {}

    /** Host compute phase of @p us microseconds. */
    TraceBuilder &cpu(double us);

    /** Blocking host-to-device copy. */
    TraceBuilder &h2d(std::int64_t bytes);

    /** Blocking device-to-host copy. */
    TraceBuilder &d2h(std::int64_t bytes);

    /** Non-blocking host-to-device copy (cudaMemcpyAsync). */
    TraceBuilder &h2dAsync(std::int64_t bytes);

    /** Non-blocking device-to-host copy. */
    TraceBuilder &d2hAsync(std::int64_t bytes);

    /** Asynchronous kernel launch of spec.kernels[@p kernel_index]. */
    TraceBuilder &launch(int kernel_index);

    /** cudaDeviceSynchronize equivalent. */
    TraceBuilder &sync();

  private:
    BenchmarkSpec *spec_;
};

/** Convenience byte-size helpers for trace definitions. */
constexpr std::int64_t
kib(std::int64_t n)
{
    return n * 1024;
}

constexpr std::int64_t
mib(std::int64_t n)
{
    return n * 1024 * 1024;
}

} // namespace trace
} // namespace gpump

#endif // GPUMP_TRACE_TRACE_BUILDER_HH
