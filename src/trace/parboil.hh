/**
 * @file
 * The Parboil benchmark suite models used in the paper's evaluation.
 *
 * Ten of the eleven Parboil benchmarks (BFS excluded, as in the
 * paper), with all 24 kernels of Table 1.  Kernel-side numbers
 * (launch counts, grid sizes, per-TB durations, register/shared-memory
 * footprints) are transcribed from Table 1.  Thread counts per block
 * and the CPU/transfer phases are documented estimates (DESIGN.md,
 * Section 1) chosen to reproduce the published occupancies and the
 * Class 2 application-length grouping.
 */

#ifndef GPUMP_TRACE_PARBOIL_HH
#define GPUMP_TRACE_PARBOIL_HH

#include <string>
#include <vector>

#include "trace/app_model.hh"

namespace gpump {
namespace trace {

/**
 * The full benchmark suite, in Table 1 order:
 * lbm, histo, tpacf, spmv, mri-q, sad, sgemm, stencil, cutcp,
 * mri-gridding.
 *
 * The vector is built once and cached; all specs pass validate().
 */
const std::vector<BenchmarkSpec> &parboilSuite();

/** Look up a benchmark by name; raises fatal() when unknown. */
const BenchmarkSpec &findBenchmark(const std::string &name);

/** Flattened view of all 24 kernel profiles, in Table 1 order. */
std::vector<const KernelProfile *> allKernelProfiles();

} // namespace trace
} // namespace gpump

#endif // GPUMP_TRACE_PARBOIL_HH
