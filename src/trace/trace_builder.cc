#include "trace/trace_builder.hh"

#include "sim/logging.hh"

namespace gpump {
namespace trace {

TraceBuilder &
TraceBuilder::cpu(double us)
{
    GPUMP_ASSERT(us >= 0.0, "negative CPU phase");
    TraceOp op;
    op.kind = TraceOp::Kind::CpuPhase;
    op.duration = sim::microseconds(us);
    spec_->ops.push_back(op);
    return *this;
}

TraceBuilder &
TraceBuilder::h2d(std::int64_t bytes)
{
    TraceOp op;
    op.kind = TraceOp::Kind::MemcpyH2D;
    op.bytes = bytes;
    op.synchronous = true;
    spec_->ops.push_back(op);
    return *this;
}

TraceBuilder &
TraceBuilder::d2h(std::int64_t bytes)
{
    TraceOp op;
    op.kind = TraceOp::Kind::MemcpyD2H;
    op.bytes = bytes;
    op.synchronous = true;
    spec_->ops.push_back(op);
    return *this;
}

TraceBuilder &
TraceBuilder::h2dAsync(std::int64_t bytes)
{
    TraceOp op;
    op.kind = TraceOp::Kind::MemcpyH2D;
    op.bytes = bytes;
    op.synchronous = false;
    spec_->ops.push_back(op);
    return *this;
}

TraceBuilder &
TraceBuilder::d2hAsync(std::int64_t bytes)
{
    TraceOp op;
    op.kind = TraceOp::Kind::MemcpyD2H;
    op.bytes = bytes;
    op.synchronous = false;
    spec_->ops.push_back(op);
    return *this;
}

TraceBuilder &
TraceBuilder::launch(int kernel_index)
{
    GPUMP_ASSERT(kernel_index >= 0 &&
                 kernel_index < static_cast<int>(spec_->kernels.size()),
                 "launch of unknown kernel index %d", kernel_index);
    TraceOp op;
    op.kind = TraceOp::Kind::KernelLaunch;
    op.kernelIndex = kernel_index;
    spec_->ops.push_back(op);
    return *this;
}

TraceBuilder &
TraceBuilder::sync()
{
    TraceOp op;
    op.kind = TraceOp::Kind::DeviceSync;
    spec_->ops.push_back(op);
    return *this;
}

} // namespace trace
} // namespace gpump
