#include "trace/app_model.hh"

#include <vector>

#include "sim/logging.hh"

namespace gpump {
namespace trace {

const char *
durationClassName(DurationClass c)
{
    switch (c) {
      case DurationClass::Short: return "SHORT";
      case DurationClass::Medium: return "MEDIUM";
      case DurationClass::Long: return "LONG";
    }
    return "?";
}

int
BenchmarkSpec::totalLaunches() const
{
    int n = 0;
    for (const auto &op : ops) {
        if (op.kind == TraceOp::Kind::KernelLaunch)
            ++n;
    }
    return n;
}

std::int64_t
BenchmarkSpec::bytesH2D() const
{
    std::int64_t n = 0;
    for (const auto &op : ops) {
        if (op.kind == TraceOp::Kind::MemcpyH2D)
            n += op.bytes;
    }
    return n;
}

std::int64_t
BenchmarkSpec::bytesD2H() const
{
    std::int64_t n = 0;
    for (const auto &op : ops) {
        if (op.kind == TraceOp::Kind::MemcpyD2H)
            n += op.bytes;
    }
    return n;
}

sim::SimTime
BenchmarkSpec::cpuTime() const
{
    sim::SimTime t = 0;
    for (const auto &op : ops) {
        if (op.kind == TraceOp::Kind::CpuPhase)
            t += op.duration;
    }
    return t;
}

void
BenchmarkSpec::validate() const
{
    std::vector<int> counts(kernels.size(), 0);
    for (const auto &op : ops) {
        switch (op.kind) {
          case TraceOp::Kind::KernelLaunch:
            if (op.kernelIndex < 0 ||
                op.kernelIndex >= static_cast<int>(kernels.size())) {
                sim::fatal("%s: launch references kernel index %d "
                           "out of %zu kernels",
                           name.c_str(), op.kernelIndex, kernels.size());
            }
            ++counts[static_cast<std::size_t>(op.kernelIndex)];
            break;
          case TraceOp::Kind::CpuPhase:
            if (op.duration < 0)
                sim::fatal("%s: negative CPU phase", name.c_str());
            break;
          case TraceOp::Kind::MemcpyH2D:
          case TraceOp::Kind::MemcpyD2H:
            if (op.bytes < 0)
                sim::fatal("%s: negative transfer size", name.c_str());
            break;
          case TraceOp::Kind::DeviceSync:
            break;
        }
    }
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        if (counts[i] != kernels[i].launches) {
            sim::fatal("%s: kernel %s launched %d times in trace but "
                       "Table 1 says %d",
                       name.c_str(), kernels[i].kernel.c_str(),
                       counts[i], kernels[i].launches);
        }
    }
}

} // namespace trace
} // namespace gpump
