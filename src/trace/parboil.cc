#include "trace/parboil.hh"

#include "sim/logging.hh"
#include "trace/trace_builder.hh"

namespace gpump {
namespace trace {

namespace {

/**
 * Shorthand for one Table 1 row.
 * Arguments follow the column order of the table; threads_per_tb is
 * our addition (see kernel_profile.hh).
 */
KernelProfile
row(const char *benchmark, const char *kernel, int launches,
    double avg_time_us, int num_tbs, double time_per_tb_us,
    int shmem_per_tb, int regs_per_tb, int threads_per_tb)
{
    KernelProfile k;
    k.benchmark = benchmark;
    k.kernel = kernel;
    k.launches = launches;
    k.avgTimeUs = avg_time_us;
    k.numThreadBlocks = num_tbs;
    k.timePerTbUs = time_per_tb_us;
    k.sharedMemPerTb = shmem_per_tb;
    k.regsPerTb = regs_per_tb;
    k.threadsPerTb = threads_per_tb;
    return k;
}

BenchmarkSpec
makeLbm()
{
    BenchmarkSpec s;
    s.name = "lbm";
    s.dataset = "short";
    s.kernelClass = DurationClass::Medium;
    s.appClass = DurationClass::Long;
    s.kernels = {
        row("lbm", "StreamCollide", 100, 2905.81, 18000, 2.42, 0, 4320, 120),
    };
    // Lattice-Boltzmann: copy the source/destination lattices in, run
    // 100 timesteps back to back (no host work between steps beyond
    // launch overhead), copy the result out.
    TraceBuilder b(s);
    b.cpu(2000).h2d(mib(24));
    for (int i = 0; i < 100; ++i)
        b.cpu(5).launch(0);
    b.sync().d2h(mib(12)).cpu(200);
    return s;
}

BenchmarkSpec
makeHisto()
{
    BenchmarkSpec s;
    s.name = "histo";
    s.dataset = "default";
    s.kernelClass = DurationClass::Short;
    s.appClass = DurationClass::Medium;
    s.kernels = {
        row("histo", "final", 20, 70.24, 42, 5.02, 0, 19456, 512),
        row("histo", "prescan", 20, 20.87, 64, 1.30, 4096, 9216, 512),
        row("histo", "intermediates", 20, 77.88, 65, 4.79, 0, 8964, 512),
        row("histo", "main", 20, 372.58, 84, 4.44, 24576, 16896, 512),
    };
    // 20 iterations of the 4-kernel pipeline, synchronising each
    // iteration to read back the histogram.
    TraceBuilder b(s);
    b.cpu(1000).h2d(mib(4));
    for (int i = 0; i < 20; ++i) {
        b.cpu(30).launch(1).launch(2).launch(3).launch(0).sync().cpu(10);
    }
    b.d2h(mib(1)).cpu(200);
    return s;
}

BenchmarkSpec
makeTpacf()
{
    BenchmarkSpec s;
    s.name = "tpacf";
    s.dataset = "small";
    s.kernelClass = DurationClass::Long;
    s.appClass = DurationClass::Medium;
    s.kernels = {
        row("tpacf", "genhists", 1, 14615.33, 201, 72.71, 13312, 7680, 256),
    };
    // Angular correlation: long host phase reading the point files,
    // one long kernel, small histogram read-back.
    TraceBuilder b(s);
    b.cpu(4000).h2d(mib(1)).launch(0).sync().d2h(kib(128)).cpu(500);
    return s;
}

BenchmarkSpec
makeSpmv()
{
    BenchmarkSpec s;
    s.name = "spmv";
    s.dataset = "medium";
    s.kernelClass = DurationClass::Short;
    s.appClass = DurationClass::Short;
    s.kernels = {
        row("spmv", "spmvjds", 50, 42.38, 374, 1.81, 0, 928, 64),
    };
    // 50 SpMV iterations queued back to back.
    TraceBuilder b(s);
    b.cpu(300).h2d(mib(2));
    for (int i = 0; i < 50; ++i)
        b.cpu(3).launch(0);
    b.sync().d2h(kib(256)).cpu(100);
    return s;
}

BenchmarkSpec
makeMriQ()
{
    BenchmarkSpec s;
    s.name = "mri-q";
    s.dataset = "large";
    s.kernelClass = DurationClass::Medium;
    s.appClass = DurationClass::Short;
    s.kernels = {
        row("mri-q", "ComputeQ", 2, 3389.71, 1024, 26.48, 0, 5376, 256),
        row("mri-q", "ComputePhiMag", 1, 4.70, 4, 4.70, 0, 6144, 512),
    };
    TraceBuilder b(s);
    b.cpu(400).h2d(kib(1536)).launch(1).sync().cpu(50)
     .launch(0).launch(0).sync().d2h(kib(512)).cpu(100);
    return s;
}

BenchmarkSpec
makeSad()
{
    BenchmarkSpec s;
    s.name = "sad";
    s.dataset = "large";
    s.kernelClass = DurationClass::Long;
    s.appClass = DurationClass::Long;
    s.kernels = {
        row("sad", "largersadcalc8", 1, 8174.21, 8040, 16.27, 0, 3328, 128),
        row("sad", "largersadcalc16", 1, 1529.38, 8040, 3.04, 0, 832, 32),
        row("sad", "mbsadcalc", 1, 15446.02, 128640, 0.84, 2224, 2135, 96),
    };
    // Sum-of-absolute-differences over video frames: heavy host-side
    // frame I/O around three dependent kernels and a large SAD-array
    // read-back.
    TraceBuilder b(s);
    b.cpu(4000).h2d(mib(1))
     .launch(2).launch(0).launch(1).sync()
     .d2h(mib(24)).cpu(4000);
    return s;
}

BenchmarkSpec
makeSgemm()
{
    BenchmarkSpec s;
    s.name = "sgemm";
    s.dataset = "medium";
    s.kernelClass = DurationClass::Medium;
    s.appClass = DurationClass::Short;
    s.kernels = {
        row("sgemm", "mysgemmNT", 1, 3717.18, 528, 98.56, 512, 4480, 128),
    };
    TraceBuilder b(s);
    b.cpu(250).h2d(mib(3)).launch(0).sync().d2h(mib(1)).cpu(100);
    return s;
}

BenchmarkSpec
makeStencil()
{
    BenchmarkSpec s;
    s.name = "stencil";
    s.dataset = "default";
    s.kernelClass = DurationClass::Medium;
    s.appClass = DurationClass::Long;
    s.kernels = {
        row("stencil", "block2Dregtiling", 100, 2227.30, 256, 8.70,
            0, 41984, 512),
    };
    // 100 Jacobi sweeps queued back to back.
    TraceBuilder b(s);
    b.cpu(800).h2d(mib(8));
    for (int i = 0; i < 100; ++i)
        b.cpu(2).launch(0);
    b.sync().d2h(mib(8)).cpu(100);
    return s;
}

BenchmarkSpec
makeCutcp()
{
    BenchmarkSpec s;
    s.name = "cutcp";
    s.dataset = "small";
    s.kernelClass = DurationClass::Medium;
    s.appClass = DurationClass::Medium;
    s.kernels = {
        row("cutcp", "lattice6overlap", 11, 1520.11, 121, 37.69,
            4116, 3328, 128),
    };
    // Cutoff Coulomb potential: 11 lattice slabs, each synchronised
    // because the host rebins atoms between launches.
    TraceBuilder b(s);
    b.cpu(900).h2d(mib(1));
    for (int i = 0; i < 11; ++i)
        b.cpu(40).launch(0).sync();
    b.d2h(mib(4)).cpu(200);
    return s;
}

BenchmarkSpec
makeMriGridding()
{
    BenchmarkSpec s;
    s.name = "mri-gridding";
    s.dataset = "small";
    s.kernelClass = DurationClass::Long;
    s.appClass = DurationClass::Long;
    s.kernels = {
        row("mri-gridding", "binning", 1, 2021.41, 5188, 1.56,
            0, 4096, 512),          // 0
        row("mri-gridding", "scaninter1", 9, 7.59, 29, 4.14,
            665, 1173, 64),         // 1
        row("mri-gridding", "scanL1", 8, 826.12, 2084, 1.19,
            4368, 9216, 512),       // 2
        row("mri-gridding", "uniformAdd", 8, 127.30, 2084, 0.24,
            16, 4096, 512),         // 3
        row("mri-gridding", "reorder", 1, 2535.30, 5188, 1.95,
            0, 8192, 512),          // 4
        row("mri-gridding", "splitSort", 7, 3838.84, 2594, 4.44,
            4484, 10240, 512),      // 5
        row("mri-gridding", "griddingGPU", 1, 208398.47, 65536, 31.80,
            1536, 3648, 128),       // 6
        row("mri-gridding", "splitRearrange", 7, 1622.93, 2594, 1.88,
            4160, 5888, 512),       // 7
        row("mri-gridding", "scaninter2", 9, 8.81, 29, 4.80,
            665, 1173, 64),         // 8
    };
    // Binning, a 7-round radix-sort style phase (with scan inside),
    // a final partial scan pass, reorder, and the long gridding
    // kernel.  The loop structure honours every Table 1 launch count.
    TraceBuilder b(s);
    b.cpu(2500).h2d(mib(2)).launch(0).sync();
    for (int i = 0; i < 7; ++i) {
        b.cpu(10).launch(5).launch(2).launch(1).launch(8).launch(3)
         .launch(7).sync();
    }
    // Remaining scan work outside the sort rounds.
    b.cpu(10).launch(2).launch(1).launch(8).launch(3).sync();
    b.cpu(10).launch(1).launch(8).sync();
    b.cpu(50).launch(4).launch(6).sync().d2h(mib(16)).cpu(1000);
    return s;
}

} // namespace

const std::vector<BenchmarkSpec> &
parboilSuite()
{
    static const std::vector<BenchmarkSpec> suite = [] {
        std::vector<BenchmarkSpec> v;
        v.push_back(makeLbm());
        v.push_back(makeHisto());
        v.push_back(makeTpacf());
        v.push_back(makeSpmv());
        v.push_back(makeMriQ());
        v.push_back(makeSad());
        v.push_back(makeSgemm());
        v.push_back(makeStencil());
        v.push_back(makeCutcp());
        v.push_back(makeMriGridding());
        for (const auto &s : v)
            s.validate();
        return v;
    }();
    return suite;
}

const BenchmarkSpec &
findBenchmark(const std::string &name)
{
    for (const auto &s : parboilSuite()) {
        if (s.name == name)
            return s;
    }
    sim::fatal("unknown benchmark '%s'", name.c_str());
}

std::vector<const KernelProfile *>
allKernelProfiles()
{
    std::vector<const KernelProfile *> out;
    for (const auto &s : parboilSuite()) {
        for (const auto &k : s.kernels)
            out.push_back(&k);
    }
    return out;
}

} // namespace trace
} // namespace gpump
