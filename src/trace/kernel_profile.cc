#include "trace/kernel_profile.hh"

// KernelProfile is a plain aggregate; this translation unit exists so
// the library has a home for future out-of-line helpers and so the
// header's self-containedness is compiler-checked.

namespace gpump {
namespace trace {

} // namespace trace
} // namespace gpump
