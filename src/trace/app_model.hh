/**
 * @file
 * Application (benchmark) models.
 *
 * The paper traces each benchmark "from the first CUDA call to the
 * last CUDA call, capturing all the memory transfer, kernel execution
 * and CPU execution phases" (Section 4.1).  A BenchmarkSpec is our
 * synthetic equivalent of such a trace: the kernel side is pinned by
 * Table 1 (launch counts, grids, per-TB times, resources), while the
 * CPU phases and transfer sizes are documented estimates chosen so
 * that each application lands in its published duration class
 * (Table 1, "Class 2").
 */

#ifndef GPUMP_TRACE_APP_MODEL_HH
#define GPUMP_TRACE_APP_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "trace/kernel_profile.hh"

namespace gpump {
namespace trace {

/** Duration classes used to group results (Table 1, Classes 1 & 2). */
enum class DurationClass
{
    Short,
    Medium,
    Long,
};

/** Human-readable class name ("SHORT"/"MEDIUM"/"LONG"). */
const char *durationClassName(DurationClass c);

/** One operation of an application trace (one CUDA API call or one
 *  stretch of host execution between calls). */
struct TraceOp
{
    enum class Kind
    {
        CpuPhase,     ///< host computation between API calls
        MemcpyH2D,    ///< host-to-device transfer
        MemcpyD2H,    ///< device-to-host transfer
        KernelLaunch, ///< asynchronous kernel launch
        DeviceSync,   ///< wait for all outstanding GPU work
    };

    Kind kind = Kind::CpuPhase;
    /** CpuPhase: host time consumed. */
    sim::SimTime duration = 0;
    /** Memcpy*: payload size. */
    std::int64_t bytes = 0;
    /** KernelLaunch: index into BenchmarkSpec::kernels. */
    int kernelIndex = -1;
    /** Memcpy*: true for blocking cudaMemcpy semantics. */
    bool synchronous = true;
};

/** A benchmark application: kernels plus its per-execution trace. */
struct BenchmarkSpec
{
    /** Benchmark name, e.g. "lbm". */
    std::string name;
    /** Input set name from Table 1, e.g. "short". */
    std::string dataset;
    /** Grouping by kernel execution time (Table 1, Class 1). */
    DurationClass kernelClass = DurationClass::Medium;
    /** Grouping by application execution time (Table 1, Class 2). */
    DurationClass appClass = DurationClass::Medium;

    /** All kernels this benchmark launches (Table 1 rows). */
    std::vector<KernelProfile> kernels;
    /** The per-execution trace, first CUDA call to last CUDA call. */
    std::vector<TraceOp> ops;

    /** Total kernel launches in one execution (for validation). */
    int totalLaunches() const;

    /** Total bytes transferred each way in one execution. */
    std::int64_t bytesH2D() const;
    std::int64_t bytesD2H() const;

    /** Sum of CPU-phase time in one execution. */
    sim::SimTime cpuTime() const;

    /**
     * Validate internal consistency: every KernelLaunch op references
     * a valid kernel, and per-kernel launch counts in the trace match
     * the Table 1 launch counts.  Raises fatal() on violation.
     */
    void validate() const;
};

} // namespace trace
} // namespace gpump

#endif // GPUMP_TRACE_APP_MODEL_HH
