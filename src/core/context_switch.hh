/**
 * @file
 * The context-switch preemption mechanism (Section 3.2, mechanism 1).
 *
 * On preemption the SM's pipeline is drained (precise exceptions),
 * then a microprogrammed trap routine saves the execution context of
 * every resident thread block — architectural registers, the shared
 * memory partition, and per-block control state — to preallocated
 * off-chip memory at the SM's share of the global memory bandwidth.
 * Thread blocks are pushed to the kernel's PTBQ with their remaining
 * work and re-issued (restore first) before fresh blocks.
 */

#ifndef GPUMP_CORE_CONTEXT_SWITCH_HH
#define GPUMP_CORE_CONTEXT_SWITCH_HH

#include <vector>

#include "core/preemption.hh"
#include "gpu/kernel_exec.hh"

namespace gpump {
namespace core {

/** Save/restore preemption. */
class ContextSwitchMechanism : public PreemptionMechanism
{
  public:
    const char *name() const override { return "context_switch"; }
    bool savesContext() const override { return true; }
    void beginPreemption(gpu::Sm *sm) override;

  private:
    /** Saved context is off the SM: queue the blocks and release it. */
    void finishSave(gpu::Sm *sm, gpu::KernelExec *k,
                    const std::vector<gpu::PreemptedTb> &saved);
};

} // namespace core
} // namespace gpump

#endif // GPUMP_CORE_CONTEXT_SWITCH_HH
