/**
 * @file
 * The scheduling framework (Section 3.3) plus the extended SM driver
 * (Section 3.2, Figure 3).
 *
 * The framework owns the hardware structures that track kernels and
 * SMs — per-context command buffers, the active queue, the KSRT, the
 * SMST (realised as the Sm objects) and the PTBQs (inside KernelExec)
 * — and the driver logic that sets SMs up, issues thread blocks
 * (preempted ones first), reacts to completions and carries out
 * reservations through the pluggable preemption mechanism.
 *
 * The scheduling *policy* plugs in on top: the framework calls the
 * policy on the events of interest (command waiting, SM idle, kernel
 * finished, preemption complete) and the policy drives the framework
 * through admit / assignSm / reserveSm.
 */

#ifndef GPUMP_CORE_FRAMEWORK_HH
#define GPUMP_CORE_FRAMEWORK_HH

#include <memory>
#include <vector>

#include "core/preemption.hh"
#include "core/tables.hh"
#include "gpu/dispatcher.hh"
#include "gpu/gpu_config.hh"
#include "gpu/kernel_exec.hh"
#include "gpu/sm.hh"
#include "memory/gpu_memory.hh"
#include "predict/observe.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"

namespace gpump {
namespace gpu {
class TransferEngine;
}
namespace memory {
class ResidencyManager;
}
namespace core {

class SchedulingPolicy;

/**
 * Optional observer of engine events.  Used by examples (timelines)
 * and tests (ordering assertions); all hooks default to no-ops so
 * observers implement only what they need.
 */
class EngineObserver
{
  public:
    virtual ~EngineObserver() = default;
    virtual void kernelAdmitted(const gpu::KernelExec &) {}
    /** First thread block of the kernel issued. */
    virtual void kernelStarted(const gpu::KernelExec &) {}
    virtual void kernelFinished(const gpu::KernelExec &) {}
    virtual void smAssigned(const gpu::Sm &, const gpu::KernelExec &) {}
    virtual void preemptionRequested(const gpu::Sm &,
                                     const gpu::KernelExec & /*victim*/,
                                     const gpu::KernelExec & /*next*/) {}
    virtual void preemptionCompleted(const gpu::Sm &) {}
};

/** The execution engine's scheduling framework + SM driver. */
class SchedulingFramework : public gpu::KernelSink
{
  public:
    SchedulingFramework(sim::Simulation &sim, const gpu::GpuParams &params,
                        memory::GpuMemory &gmem,
                        gpu::Dispatcher &dispatcher);
    ~SchedulingFramework() override;

    /** @name Assembly
     * @{ */
    void setPolicy(std::unique_ptr<SchedulingPolicy> policy);
    void setMechanism(std::unique_ptr<PreemptionMechanism> mechanism);
    SchedulingPolicy &policy() { return *policy_; }
    PreemptionMechanism &mechanism() { return *mechanism_; }

    /** Install an observer (nullptr to remove).  Not owned. */
    void setObserver(EngineObserver *observer) { observer_ = observer; }

    /**
     * Register a measurement-side completion observer (assembly; not
     * owned — typically a mechanism or policy registering itself or a
     * predictor from its bind()).  Observers are notified on every TB
     * and kernel completion, in registration order; the completion
     * path skips the dispatch entirely while the list is empty, so
     * default-off runs are untouched (see predict/observe.hh for the
     * observer contract).
     */
    void addCompletionObserver(predict::CompletionObserver *observer)
    {
        GPUMP_ASSERT(observer != nullptr, "null completion observer");
        completionObservers_.push_back(observer);
    }

    /** Wire the transfer engine carrying contended context save /
     *  restore traffic and residency swaps (assembly; optional —
     *  without it gmem.contended_switch must stay off and no
     *  residency manager may be installed).  Not owned. */
    void setTransferEngine(gpu::TransferEngine *xfer) { xfer_ = xfer; }

    /** Wire the residency manager enforcing device-memory capacity
     *  (assembly; optional — absent means every context is always
     *  resident, the seed behaviour).  Not owned. */
    void setResidency(memory::ResidencyManager *residency)
    {
        residency_ = residency;
    }
    /** @} */

    sim::Simulation &sim() { return *sim_; }
    const gpu::GpuParams &params() const { return params_; }
    memory::GpuMemory &gmem() { return *gmem_; }

    /** True when context save/restore bytes ride the transfer engine
     *  (gmem.contended_switch) instead of the bandwidth-share model. */
    bool contendedSwitch() const { return contendedSwitch_; }

    /** The transfer engine carrying contended context traffic, or
     *  nullptr when none is wired.  Mechanisms use it to model the
     *  queueing their own save would suffer (their DMA engine's state
     *  is driver-visible, not workload oracle). */
    gpu::TransferEngine *transferEngine() const { return xfer_; }

    /** @name Command buffers (dispatcher-facing)
     * @{ */
    bool offerKernel(const gpu::CommandPtr &cmd) override;

    /** Contexts with a buffered command, in arrival (seq) order. */
    std::vector<sim::ContextId> waitingBuffers() const;
    /** Allocation-free variant: clears and refills @p out (policies
     *  keep a scratch vector across calls on the admit hot path). */
    void waitingBuffers(std::vector<sim::ContextId> &out) const;
    /** The earliest-arrived buffered context — waitingBuffers()
     *  .front() without materializing the vector — or
     *  sim::invalidContext when nothing is buffered.  The admit loops
     *  of arrival-ordered policies run on every command arrival and
     *  kernel completion, so this probe must not allocate. */
    sim::ContextId frontWaitingBuffer() const;
    bool hasBufferedCommand(sim::ContextId ctx) const;
    const gpu::CommandPtr &bufferedCommand(sim::ContextId ctx) const;
    /** @} */

    /** @name Active queue / KSRT
     * @{ */
    bool activeQueueFull() const;
    int numActiveKernels() const;

    /**
     * Admit @p ctx's buffered command: allocate a KSR, append to the
     * active queue, free the command buffer.  Called by the policy.
     * @pre hasBufferedCommand(ctx) and not activeQueueFull().
     */
    gpu::KernelExec *admit(sim::ContextId ctx);

    /** Active kernels in admission order. */
    const std::vector<gpu::KernelExec *> &activeKernels() const
    {
        return activeQueue_;
    }
    /** @} */

    /** @name SMs
     * @{ */
    int numSms() const { return static_cast<int>(sms_.size()); }
    gpu::Sm *sm(sim::SmId id) { return sms_[static_cast<size_t>(id)].get(); }
    const std::vector<std::unique_ptr<gpu::Sm>> &sms() const { return sms_; }

    /** First idle, unreserved SM; nullptr when none. */
    gpu::Sm *findIdleSm();

    /** Context occupying the engine (any SM with a kernel), or
     *  sim::invalidContext when the engine is empty.  Baseline
     *  policies use this to enforce one-context-at-a-time. */
    sim::ContextId engineContext() const;

    /**
     * Thread blocks of @p k not yet covered by SM capacity already
     * granted to it: issuable TBs minus free slots on its SMs (Setup
     * SMs count at full occupancy).  Policies assign SMs only while
     * this is positive, mirroring the SM driver's "issue until fully
     * occupied" behaviour.
     */
    int unallocatedTbs(const gpu::KernelExec *k) const;
    /** @} */

    /** @name Scheduling operations (policy-facing)
     * @{ */
    /**
     * Set @p sm (idle, unreserved) up for @p k and start issuing its
     * thread blocks after the setup latency.
     */
    void assignSm(gpu::Sm *sm, gpu::KernelExec *k);

    /**
     * Reserve @p sm for @p next, triggering the preemption mechanism.
     * Reserving an already-reserved SM retargets the reservation
     * (Section 3.4 optimisation).
     * @pre sm->busy() and sm->kernel != next
     */
    void reserveSm(gpu::Sm *sm, gpu::KernelExec *next);

    /** Change the kernel a reserved SM is reserved for. */
    void retargetReservation(gpu::Sm *sm, gpu::KernelExec *next);
    /** @} */

    /** @name Driver internals (mechanism-facing)
     * @{ */
    /** Fill @p sm's free slots with thread blocks (preempted first). */
    void issueThreadBlocks(gpu::Sm *sm);

    /**
     * Preemption of @p sm finished: release it from its kernel and
     * hand it to the reservation target via the policy.
     */
    void completePreemption(gpu::Sm *sm);
    /** @} */

    /** @name Statistics queries (harness-facing)
     * @{ */
    std::uint64_t kernelsCompleted() const
    {
        return static_cast<std::uint64_t>(kernelsCompleted_.value());
    }
    std::uint64_t tbsCompleted() const
    {
        return static_cast<std::uint64_t>(tbsCompleted_.value());
    }
    std::uint64_t preemptions() const
    {
        return static_cast<std::uint64_t>(preemptions_.value());
    }
    double contextBytesSaved() const { return ctxBytesSaved_.value(); }
    /** @} */

    /** @name Context-transfer path (mechanism/residency-facing)
     * @{ */
    /**
     * Submit a driver-originated transfer command (context save or
     * restore, residency swap) to the transfer engine: it queues,
     * contends and completes exactly like a workload memcpy, but is
     * bound to no hardware queue.  @p done runs on completion.
     * @pre a transfer engine is wired
     */
    void submitContextTransfer(sim::ContextId ctx, int priority,
                               std::int64_t bytes,
                               gpu::Command::Kind kind,
                               std::function<void()> done);

    /**
     * Stage restore fetches for up to @p max_tbs of @p k's PTBQ
     * entries that are neither credited nor already being fetched.
     * Under the contended-switch model the fetch is an H2D transfer
     * command; otherwise it takes the bandwidth-share move time
     * without contending.  On arrival the entries gain restore credit
     * and every SM running @p k is re-driven.
     * @return the number of TBs actually staged (0 when fully covered).
     */
    int stageRestore(gpu::KernelExec *k, int max_tbs);

    /**
     * A context's physical mapping changed under it (residency swap):
     * flush the TLB of every SM with that context loaded and force the
     * context-load cost on the next assignment.
     */
    void onContextRemapped(sim::ContextId ctx);

    /** True while any SM runs or is reserved for a kernel of @p ctx
     *  (such contexts must not be swapped out). */
    bool contextPinned(sim::ContextId ctx) const;

    /** TBs granted restore credit so far (tests). */
    std::uint64_t tbsPrefetched() const
    {
        return static_cast<std::uint64_t>(tbsPrefetched_.value());
    }
    /** Driver-originated transfer commands submitted (tests). */
    std::uint64_t contextTransfers() const
    {
        return static_cast<std::uint64_t>(ctxTransfers_.value());
    }
    /** @} */

    /** Used by the context-switch mechanism to account saved bytes. */
    void recordContextSave(std::int64_t bytes, int tbs);

    /** Record a kernel's PTBQ depth after a save (sizing analyses). */
    void recordPtbqDepth(std::size_t depth);

    /** Deepest PTBQ observed during the run. */
    double maxPtbqDepth() const { return ptbqDepth_.max(); }

  private:
    /** Charge the setup (and context-load) latency and schedule
     *  finishSetup; runs once the kernel's context is resident. */
    void beginSetup(gpu::Sm *sm);
    void finishSetup(gpu::Sm *sm);
    /** Restore fetch staged with @p gen landed; grants credit and
     *  re-drives the kernel's SMs unless the KernelExec was recycled
     *  meanwhile. */
    void restoreArrived(gpu::KernelExec *k, std::uint64_t gen, int n);
    /** True when @p sm should stay parked on its kernel instead of
     *  going idle: contended-switch restores are in flight and the SM
     *  re-drives when they land. */
    bool parkedForRestore(const gpu::Sm *sm) const;
    void onTbCompleted(gpu::Sm *sm);
    /** (Re)arm @p sm's single completion event for the head of its
     *  timeline; disarms when nothing is resident.  The event carries
     *  the head TB's issue-time sequence number, so firing order is
     *  identical to one-event-per-TB scheduling. */
    void armCompletion(gpu::Sm *sm);
    void smBecameIdle(gpu::Sm *sm);
    void finalizeKernel(gpu::KernelExec *k);
    /** Place one TB (index @p tb_index, running for @p duration) on
     *  @p sm's timeline with a freshly reserved completion sequence. */
    void placeResident(gpu::Sm *sm, gpu::KernelExec *k, int tb_index,
                       sim::SimTime duration);

    sim::Simulation *sim_;
    gpu::GpuParams params_;
    memory::GpuMemory *gmem_;
    gpu::Dispatcher *dispatcher_;
    gpu::TransferEngine *xfer_ = nullptr;
    memory::ResidencyManager *residency_ = nullptr;
    /** Cached gmem params flag: save/restore rides the transfer
     *  engine.  Checked on the TB-issue hot path. */
    bool contendedSwitch_ = false;
    std::unique_ptr<SchedulingPolicy> policy_;
    std::unique_ptr<PreemptionMechanism> mechanism_;
    EngineObserver *observer_ = nullptr;
    /** Measurement-side completion observers (predict/), empty in
     *  every default-off assembly.  Not owned. */
    std::vector<predict::CompletionObserver *> completionObservers_;

    /** Issue preempted TBs before fresh ones (Section 3.3 keeps the
     *  PTBQ bounded this way).  Config "engine.preempted_first";
     *  disabled only by the PTBQ-order ablation bench. */
    bool preemptedFirst_ = true;

    std::vector<std::unique_ptr<gpu::Sm>> sms_;
    /** KSRT: slot -> active kernel (empty slot = nullptr). */
    std::vector<std::unique_ptr<gpu::KernelExec>> ksrt_;
    std::vector<sim::KsrIndex> freeKsrs_;
    /** Retired KernelExec objects recycled by admit(): kernel launch
     *  is per-replay work, and a fresh KernelExec costs an allocation
     *  plus its PTBQ deque's initial node — the recycled object keeps
     *  both. */
    std::vector<std::unique_ptr<gpu::KernelExec>> ksrPool_;
    /** Active queue, admission order. */
    std::vector<gpu::KernelExec *> activeQueue_;
    /**
     * Per-context single-command buffers, flat-indexed by context id
     * (context ids are small and dense — one per process).  Replaced
     * a std::map: the buffer probe runs on every kernel offer, admit
     * and policy decision, so it must be an array load, not a tree
     * walk.  Grown on demand; empty slot = nullptr.
     */
    std::vector<gpu::CommandPtr> buffers_;
    /** Occupied slots of buffers_ (fast emptiness/size probes). */
    std::size_t buffered_ = 0;
    /** Per-SM reservation timestamps (preemption latency stat). */
    std::vector<sim::SimTime> reserveTime_;
    /** Scratch for batched fresh-TB duration draws (issueThreadBlocks);
     *  member so the capacity survives across waves. */
    std::vector<double> tbDurationsUs_;

    sim::Scalar kernelsCompleted_;
    sim::Scalar tbsCompleted_;
    sim::Scalar tbsRestored_;
    sim::Scalar preemptions_;
    sim::Scalar ctxBytesSaved_;
    sim::Scalar tbsSaved_;
    sim::Scalar tbsPrefetched_;
    sim::Scalar ctxTransfers_;
    sim::Distribution preemptLatencyUs_;
    sim::Distribution kernelQueueTimeUs_;
    sim::Distribution ptbqDepth_;
};

} // namespace core
} // namespace gpump

#endif // GPUMP_CORE_FRAMEWORK_HH
