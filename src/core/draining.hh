/**
 * @file
 * The SM-draining preemption mechanism (Section 3.2, mechanism 2).
 *
 * Exploits thread-block independence: the SM driver stops issuing new
 * thread blocks to the reserved SM, and the preemption completes when
 * the last resident block finishes.  No context is saved or restored;
 * the cost is a preemption latency that depends on the running
 * blocks' remaining execution time — unbounded for persistent or
 * malicious kernels.
 */

#ifndef GPUMP_CORE_DRAINING_HH
#define GPUMP_CORE_DRAINING_HH

#include "core/preemption.hh"

namespace gpump {
namespace core {

/** Drain-to-thread-block-boundary preemption. */
class DrainingMechanism : public PreemptionMechanism
{
  public:
    const char *name() const override { return "draining"; }
    bool savesContext() const override { return false; }
    void beginPreemption(gpu::Sm *sm) override;
};

} // namespace core
} // namespace gpump

#endif // GPUMP_CORE_DRAINING_HH
