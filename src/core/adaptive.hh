/**
 * @file
 * The adaptive preemption mechanism: draining or context switch,
 * chosen per SM.
 *
 * The paper quantifies a tradeoff between the two base mechanisms
 * (Figures 6-7): draining is free in memory traffic but its latency
 * is the resident blocks' remaining execution time, while a context
 * switch costs a bounded, data-size-dependent save.  This mechanism
 * plays the tradeoff per preemption: it estimates the remaining drain
 * time from the SM's issue timeline (the resident blocks' scheduled
 * completion times) and the save cost from the kernel's context
 * footprint at the SM's bandwidth share, then delegates to whichever
 * base mechanism is cheaper.  The "adaptive.bias" tunable skews the
 * comparison (bias > 1 favours draining).
 *
 * The mechanism registers as "adaptive" and is built entirely against
 * the public mechanism API — it owns a ContextSwitchMechanism and a
 * DrainingMechanism and dispatches between them.
 */

#ifndef GPUMP_CORE_ADAPTIVE_HH
#define GPUMP_CORE_ADAPTIVE_HH

#include <cstdint>

#include "core/context_switch.hh"
#include "core/draining.hh"

namespace gpump {
namespace core {

/**
 * Modeled cost of saving @p sm's resident contexts, shared by every
 * drain-vs-switch mechanism (adaptive, pred_adaptive): pipeline drain
 * plus the context-transfer time.  Under the default (uncontended)
 * switch model the transfer is the context bytes at a 1/NSMs global
 * memory bandwidth share.  Under gmem.contended_switch the save is a
 * D2H command on the transfer engine, so the model also charges the
 * engine's current backlog — queued and in-flight transfers the save
 * would wait behind — before the context bytes go on the wire.
 */
sim::SimTime modeledContextSaveCost(SchedulingFramework &fw,
                                    const gpu::Sm *sm);

/** Per-SM drain-vs-switch selection. */
class AdaptiveMechanism : public PreemptionMechanism
{
  public:
    /** @param bias drain when estimated drain time <= bias x modeled
     *         save cost; must be >= 0. */
    explicit AdaptiveMechanism(double bias = 1.0);

    const char *name() const override { return "adaptive"; }

    /** May context-switch, so the PTBQs must exist. */
    bool savesContext() const override { return true; }

    void bind(SchedulingFramework &fw) override;
    void beginPreemption(gpu::Sm *sm) override;

    double bias() const { return bias_; }

    /** @name Decision counters (tests, analyses)
     * @{ */
    std::uint64_t drainsChosen() const { return drains_; }
    std::uint64_t switchesChosen() const { return switches_; }
    /** @} */

    /** Estimated time until @p sm drains: the latest scheduled
     *  completion among its resident blocks, relative to now. */
    sim::SimTime estimatedDrainTime(const gpu::Sm *sm) const;

    /** Modeled cost of saving @p sm's resident contexts; delegates to
     *  modeledContextSaveCost() (queue-aware under
     *  gmem.contended_switch). */
    sim::SimTime modeledSaveCost(const gpu::Sm *sm) const;

  private:
    double bias_;
    ContextSwitchMechanism contextSwitch_;
    DrainingMechanism draining_;
    std::uint64_t drains_ = 0;
    std::uint64_t switches_ = 0;
};

} // namespace core
} // namespace gpump

#endif // GPUMP_CORE_ADAPTIVE_HH
