#include "core/tables.hh"

namespace gpump {
namespace core {

namespace {

std::int64_t
bitsToBytes(std::int64_t bits)
{
    return (bits + 7) / 8;
}

} // namespace

FrameworkSramCosts
frameworkSramCosts(const gpu::GpuParams &params)
{
    const std::int64_t n = params.numSms;
    FrameworkSramCosts c;
    c.commandBuffersBytes = bitsToBytes(n * commandBufferEntryBits);
    c.activeQueueBytes = bitsToBytes(n * activeQueueEntryBits);
    c.ksrtBytes = bitsToBytes(n * ksrEntryBits);
    c.smstBytes = bitsToBytes(n * smstEntryBits);
    c.ptbqBytes = bitsToBytes(
        n * static_cast<std::int64_t>(ptbqCapacityPerKernel(params)) *
        ptbqEntryBits);
    return c;
}

int
maxActiveKernels(const gpu::GpuParams &params)
{
    return params.numSms;
}

int
ptbqCapacityPerKernel(const gpu::GpuParams &params)
{
    return params.numSms * params.maxTbSlotsPerSm;
}

} // namespace core
} // namespace gpump
