#include "core/timemux.hh"

#include "core/framework.hh"
#include "sim/logging.hh"

namespace gpump {
namespace core {

TimeMuxPolicy::TimeMuxPolicy(sim::SimTime quantum)
    : quantum_(quantum)
{
    GPUMP_ASSERT(quantum > 0, "non-positive time quantum");
}

void
TimeMuxPolicy::onCommandWaiting(sim::ContextId)
{
    admit();
    schedule();
    armTimer();
}

void
TimeMuxPolicy::onSmIdle(gpu::Sm *)
{
    schedule();
}

void
TimeMuxPolicy::onKernelFinished(gpu::KernelExec *)
{
    // Ring positions shift when a kernel leaves the active queue;
    // clamping keeps the ring pointer valid.  If the slice owner
    // itself finished, the next kernel inherits the rest of the slice
    // (it gets the SMs anyway through the idle path).
    admit();
    const auto &active = fw_->activeKernels();
    if (!active.empty())
        ringPos_ %= active.size();
    else
        ringPos_ = 0;
    schedule();
}

void
TimeMuxPolicy::onPreemptionComplete(gpu::Sm *sm, gpu::KernelExec *next)
{
    if (next != nullptr && fw_->unallocatedTbs(next) > 0) {
        fw_->assignSm(sm, next);
        return;
    }
    schedule();
}

void
TimeMuxPolicy::admit()
{
    while (!fw_->activeQueueFull()) {
        sim::ContextId ctx = fw_->frontWaitingBuffer();
        if (ctx == sim::invalidContext)
            break;
        fw_->admit(ctx); // arrival order
    }
}

gpu::KernelExec *
TimeMuxPolicy::current() const
{
    const auto &active = fw_->activeKernels();
    if (active.empty())
        return nullptr;
    return active[ringPos_ % active.size()];
}

void
TimeMuxPolicy::schedule()
{
    const auto &active = fw_->activeKernels();
    if (active.empty())
        return;
    // Slice owner first, then the others in ring order (back-fill).
    for (std::size_t i = 0; i < active.size(); ++i) {
        gpu::KernelExec *k =
            active[(ringPos_ + i) % active.size()];
        while (fw_->unallocatedTbs(k) > 0) {
            gpu::Sm *sm = fw_->findIdleSm();
            if (!sm)
                return;
            fw_->assignSm(sm, k);
        }
    }
}

void
TimeMuxPolicy::armTimer()
{
    if (timer_.pending())
        return;
    if (fw_->numActiveKernels() < 2)
        return; // nothing to multiplex
    timer_ = fw_->sim().events().scheduleIn(
        quantum_, [this] { rotate(); }, sim::prioPolicy);
}

void
TimeMuxPolicy::rotate()
{
    const auto &active = fw_->activeKernels();
    if (active.size() < 2) {
        // Lone kernel keeps the engine; re-arm when contention is
        // back (onCommandWaiting).
        return;
    }

    // If the previous rotation is still vacating SMs, extend the
    // slice instead of stacking reservations.
    for (const auto &sm : fw_->sms()) {
        if (sm->reserved) {
            armTimer();
            return;
        }
    }

    gpu::KernelExec *outgoing = current();
    ringPos_ = (ringPos_ + 1) % active.size();
    gpu::KernelExec *incoming = current();
    ++rotations_;

    if (incoming != outgoing) {
        for (const auto &sm : fw_->sms()) {
            if (sm->kernel == outgoing && !sm->reserved &&
                (sm->state == gpu::Sm::State::Running ||
                 sm->state == gpu::Sm::State::Setup)) {
                fw_->reserveSm(sm.get(), incoming);
            }
        }
    }
    schedule();
    armTimer();
}

// --------------------------------------------------------- registry

namespace {

[[maybe_unused]] const bool registered_tmux = [] {
    PolicyRegistry::Descriptor d;
    d.name = "tmux";
    d.doc = "Round-robin whole-engine time slicing: active kernels "
            "take turns owning the engine for a quantum; idle SMs are "
            "back-filled in ring order";
    d.configPrefix = "tmux";
    d.tunables = {
        {"tmux.quantum_us", TunableType::Double, "200",
         "engine time slice per kernel, microseconds (> 0)"},
    };
    d.factory = [](const sim::Config &cfg) {
        double quantum_us = cfg.getDouble("tmux.quantum_us", 200.0);
        if (quantum_us <= 0)
            sim::fatal("tmux.quantum_us must be positive");
        return std::make_unique<TimeMuxPolicy>(
            sim::microseconds(quantum_us));
    };
    policyRegistry().add(std::move(d));
    return true;
}();

} // namespace

GPUMP_DEFINE_LINK_ANCHOR(TimeMuxPolicy)

} // namespace core
} // namespace gpump
