/**
 * @file
 * Dynamic Spatial Sharing (Section 3.4, Algorithm 1).
 *
 * DSS partitions the SMs among active kernels using tokens that
 * represent SM ownership.  A kernel pays one token per SM it is
 * assigned and is refunded when an SM is taken away; kernels may go
 * into debt (negative counts) so idle SMs are never wasted.  The
 * partition procedure runs when a kernel enters the active queue and
 * when an SM goes idle, and rebalances by preempting SMs of the
 * token-poorest kernel for the token-richest kernel until the spread
 * is at most one.
 *
 * Notes relative to the paper's pseudo-code: the published Algorithm 1
 * returns when the maximum and minimum counts are equal, which read
 * literally would leave SMs idle whenever all counts coincide (and
 * would never start a lone kernel).  The prose — debt exists exactly
 * so that "kernels are allowed to occupy more SMs" when SMs would
 * otherwise idle — resolves the ambiguity: the equal-count early-out
 * applies to the preemption branch only, and idle SMs are always
 * handed to the richest kernel with work.  That is what this
 * implementation does.
 */

#ifndef GPUMP_CORE_DSS_HH
#define GPUMP_CORE_DSS_HH

#include "core/policy.hh"

namespace gpump {
namespace core {

/** The DSS scheduling policy. */
class DssPolicy : public SchedulingPolicy
{
  public:
    /**
     * @param tokens_per_kernel SM budget granted to each kernel on
     *        admission (equal sharing: floor(NSMs / Nprocesses)).
     * @param bonus_tokens the remainder r = NSMs mod Nprocesses,
     *        granted one-per-kernel to the first r admitted kernels
     *        and recycled when a holder finishes.
     * @param retarget enable re-targeting of in-flight reservations
     *        when their beneficiary no longer needs the SM
     *        (Section 3.4 optimisation; ablated in
     *        bench/ablation_retarget).
     * @param weight_by_priority scale the token grant by
     *        (1 + process priority): the OS-controlled weighted
     *        sharing the token abstraction was designed for
     *        (Section 3.4: tokens "represent their SM budget").
     *        Steady-state SM shares become proportional to grants.
     */
    DssPolicy(int tokens_per_kernel, int bonus_tokens, bool retarget,
              bool weight_by_priority = false);

    const char *name() const override { return "dss"; }

    void onCommandWaiting(sim::ContextId ctx) override;
    void onSmIdle(gpu::Sm *sm) override;
    void onKernelFinished(gpu::KernelExec *k) override;
    void onPreemptionComplete(gpu::Sm *sm, gpu::KernelExec *next) override;

    int bonusPool() const { return bonusPool_; }

  private:
    void admit();
    void partition();
    void partitionLoop();
    void retargetOrphans();

    /** SM capacity @p k still needs beyond held + promised SMs. */
    int needExtra(const gpu::KernelExec *k) const;

    /** Token-richest kernel that still needs capacity (gainer). */
    gpu::KernelExec *findMax() const;

    /** Token-poorest kernel holding at least one preemptible SM. */
    gpu::KernelExec *findMin() const;

    /** Cheapest preemptible SM of @p k (fewest resident TBs). */
    gpu::Sm *pickVictim(gpu::KernelExec *k) const;

    int tokensPerKernel_;
    int bonusPool_;
    bool retarget_;
    bool weightByPriority_;
    bool inPartition_ = false;
    bool partitionAgain_ = false;
};

} // namespace core
} // namespace gpump

#endif // GPUMP_CORE_DSS_HH
